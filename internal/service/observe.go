package service

import (
	"strconv"
	"sync"

	"github.com/embodiedai/create/internal/obs"
)

// serviceMetrics gathers the serving tier's instrument families in one
// place, so every metric name and help string the daemon exposes is
// declared here (and documented in docs/METRICS.md). All observation
// happens at job boundaries — submit, dequeue, terminal transition —
// never inside the episode hot path.
type serviceMetrics struct {
	reg      *obs.Registry
	inflight *obs.Gauge

	mu      sync.Mutex
	tenants map[string]struct{} // distinct tenant label values admitted so far
}

// maxTenantSeries caps how many distinct tenant values become their own
// metric label; the registry never expires series, so without a cap any
// client could grow /metrics output and registry memory without bound by
// inventing tenants. Tenants past the cap are accounted under "other".
const maxTenantSeries = 64

func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	return &serviceMetrics{
		reg: reg,
		inflight: reg.Gauge("create_jobs_inflight",
			"Jobs currently executing on the worker pool."),
		tenants: make(map[string]struct{}),
	}
}

// tenantLabel maps a tenant to its metric label value, diverting tenants
// past the cardinality cap into the shared "other" bucket. Timing records
// and dedupe keys keep the exact tenant — only the label space is capped,
// and job retention already bounds those surfaces.
func (m *serviceMetrics) tenantLabel(tenant string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tenants[tenant]; ok {
		return tenant
	}
	if len(m.tenants) >= maxTenantSeries {
		return "other"
	}
	m.tenants[tenant] = struct{}{}
	return tenant
}

// registerQueueDepth exposes the live submission-queue length. Called once
// the admission queue exists.
func (m *serviceMetrics) registerQueueDepth(depth func() float64) {
	m.reg.GaugeFunc("create_queue_depth",
		"Jobs waiting in the bounded admission queue, across all tenants.", depth)
}

// admissionRejected counts one submission turned away at admission:
// reason "tenant_quota" (429) or "queue_full" (503).
func (m *serviceMetrics) admissionRejected(tenant, reason string) {
	m.reg.Counter("create_admission_rejections_total",
		"Submissions rejected by admission control, by tenant and reason (tenant_quota, queue_full).",
		"tenant", m.tenantLabel(tenant), "reason", reason).Inc()
}

// tenantQueue is the per-tenant queued-jobs gauge, maintained at enqueue,
// dequeue, and cancel-while-queued (the tenant label space is capped, so
// overflow tenants share the "other" series).
func (m *serviceMetrics) tenantQueue(tenant string) *obs.Gauge {
	return m.reg.Gauge("create_tenant_queue_depth",
		"Jobs queued per tenant in the weighted-fair admission queue.",
		"tenant", m.tenantLabel(tenant))
}

// jobTerminal counts one job reaching a terminal state.
func (m *serviceMetrics) jobTerminal(experiment, tenant string, state State) {
	m.reg.Counter("create_jobs_total",
		"Jobs by experiment, tenant, and terminal state.",
		"experiment", experiment, "tenant", m.tenantLabel(tenant), "state", string(state)).Inc()
}

// dedupeJoin counts a live submission coalescing onto an in-flight job.
func (m *serviceMetrics) dedupeJoin(experiment, tenant string) {
	m.reg.Counter("create_job_dedupe_joins_total",
		"Submissions coalesced onto an identical live job.",
		"experiment", experiment, "tenant", m.tenantLabel(tenant)).Inc()
}

// observeStages records the per-stage latency histograms from a finalized
// timing record. Only stages the job actually reached are observed.
func (m *serviceMetrics) observeStages(t *obs.JobTiming) {
	stage := func(name string) *obs.Histogram {
		return m.reg.Histogram("create_job_stage_seconds",
			"Per-job latency by stage: queue wait, cache-aware planning, grid compute, render.",
			obs.DefaultStageBuckets, "stage", name)
	}
	if !t.StartedAt.IsZero() {
		stage("queue").Observe(t.QueueWaitSeconds)
	}
	if !t.PlannedAt.IsZero() {
		stage("plan").Observe(t.PlanSeconds)
	}
	if !t.ComputedAt.IsZero() {
		stage("compute").Observe(t.ComputeSeconds)
	}
	if !t.RenderedAt.IsZero() {
		stage("render").Observe(t.RenderSeconds)
	}
}

// httpRequest records one served HTTP request: a counter by route
// pattern and status code, and a duration histogram by route. Called
// from the instrument middleware after the handler returns.
func (m *serviceMetrics) httpRequest(route string, code int, seconds float64) {
	m.reg.Counter("create_http_requests_total",
		"HTTP requests served, by route pattern and status code.",
		"route", route, "code", strconv.Itoa(code)).Inc()
	m.reg.Histogram("create_http_request_seconds",
		"HTTP request duration in seconds, by route pattern.",
		obs.DefaultHTTPBuckets, "route", route).Observe(seconds)
}

// points accounts a finished job's grid points by where they came from.
func (m *serviceMetrics) points(cacheHits, computed int64) {
	src := func(name string) *obs.Counter {
		return m.reg.Counter("create_job_points_total",
			"Grid points consumed by jobs, by source.", "source", name)
	}
	src("cache").Add(cacheHits)
	src("computed").Add(computed)
}

// Package service is the evaluation-as-a-service tier: an HTTP daemon that
// accepts experiment jobs, runs them through the typed registry on a
// bounded worker pool, and serves rendered results and progress events —
// all backed by the same content-addressed Summary cache the CLIs use, so
// results computed anywhere (a CLI run, a sharded CI fleet, an earlier
// job) are served to later submissions without recomputation.
//
// API (see docs/OPERATIONS.md for a worked curl session):
//
//	POST /v1/jobs            submit {experiment, trials, seed, workers, shard, tenant}
//	GET  /v1/jobs            list all jobs, newest last
//	GET  /v1/jobs/{id}       poll one job
//	GET  /v1/jobs/{id}/events NDJSON stream of state transitions until terminal
//	GET  /v1/jobs/{id}/result rendered text (?format=json for typed rows)
//	GET  /v1/jobs/{id}/timing flat per-job stage timing record (?format=csv)
//	GET  /v1/cache/stats     shared cache accounting (one source with /metrics)
//	GET  /v1/experiments     registry listing with per-experiment cache plans
//	GET  /metrics            Prometheus text exposition of the obs registry
//	GET  /healthz            liveness + load snapshot (also GET /v1/healthz)
//
// Observability: every job is stamped at its stage boundaries
// (queued→planned→computed→rendered) into an obs.JobTiming record served
// at /v1/jobs/{id}/timing once terminal, and the same boundaries feed the
// create_job_* metric families on /metrics (see docs/METRICS.md).
// Instrumentation lives only at job and grid-point boundaries — the
// deterministic engine underneath is never touched.
//
// Scheduling: jobs enter a bounded per-tenant weighted-fair admission
// queue (admission.go) and are executed by a fixed pool of job workers.
// Tenants drain in deterministic round-robin rotation — one job per turn,
// highest priority first within a tenant — so no tenant starves another;
// an optional per-tenant quota on queued+running jobs converts one
// tenant's flood into 429s for that tenant alone. The total core budget is
// divided between concurrent jobs with the same sim.Split arithmetic the
// sweep grids use internally, so concurrent jobs cannot oversubscribe the
// machine. Identical live submissions (same experiment, trials, seed,
// shard) coalesce onto one job, which — together with per-point cache
// dedupe — guarantees a grid is computed at most once no matter how often
// or how concurrently it is requested.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/obs"
	"github.com/embodiedai/create/internal/obs/trace"
	"github.com/embodiedai/create/internal/registry"
	"github.com/embodiedai/create/internal/sim"
)

//create:walltime-ok job submit/start/finish timestamps, event-stream heartbeats and shutdown deadlines are operational metadata; figure bytes come from the deterministic engine underneath

// now is the service tier's single wall-clock seam: every timestamp the
// package stamps (job stages, events, HTTP durations, retention) flows
// through it, so tests substitute a fake clock and assert exact stage
// durations instead of mere monotonicity.
var now = time.Now

// DefaultTrials and DefaultSeed match the CLIs' defaults, so an
// unqualified job renders exactly what an unqualified create-bench run
// prints.
const (
	DefaultTrials = 48
	DefaultSeed   = 2026
)

// State is a job's lifecycle stage.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether a state is final.
func terminal(s State) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobSpec is a submission: which experiment to run and at what scale.
// Seed is a pointer so an absent field defaults to DefaultSeed while an
// explicit 0 — a legitimate, honoured seed — stays distinguishable.
// Workers caps this job's parallelism below the server's per-job budget;
// Shard is the CLI's k/n grid selector for remote shard workers.
type JobSpec struct {
	Experiment string `json:"experiment"`
	Trials     int    `json:"trials,omitempty"`
	Seed       *int64 `json:"seed,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	Shard      string `json:"shard,omitempty"`
	// Tenant labels the submission for per-tenant accounting in metrics
	// and timing records, and keys the per-tenant admission queue and
	// quota; empty normalizes to "default".
	Tenant string `json:"tenant,omitempty"`
	// Priority orders jobs within one tenant's admission queue: higher
	// drains first, equal priorities drain in submission order. It never
	// lets one tenant jump another's turn in the round-robin rotation.
	// Bounded to [-100, 100]; 0 is the default.
	Priority int `json:"priority,omitempty"`
}

// key is the dedupe identity of a normalized spec: two live submissions
// with the same key coalesce onto one execution. Workers is excluded — it
// changes wall-clock only, never rows. Tenant is included so each
// tenant's jobs are accounted separately; identical grids still share
// compute through the point cache and singleflight underneath.
func (s JobSpec) key() string {
	k := s.Experiment + "|" + strconv.Itoa(s.Trials) + "|" +
		strconv.FormatInt(*s.Seed, 10) + "|" + s.Shard + "|" + s.Tenant
	// Priority is part of the identity (a high-priority duplicate must not
	// silently coalesce onto a low-priority queued job), appended only when
	// set so priority-0 specs keep their historical keys and trace IDs.
	if s.Priority != 0 {
		k += "|p" + strconv.Itoa(s.Priority)
	}
	return k
}

// CacheDelta is the shared store's accounting delta across one job's run:
// Misses is the number of newly computed grid points. Exact when jobs run
// alone (the e2e contract); approximate while jobs overlap, since the
// counters are store-global.
type CacheDelta struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Event is one NDJSON progress record.
type Event struct {
	Seq     int       `json:"seq"`
	Time    time.Time `json:"time"`
	Job     string    `json:"job"`
	State   State     `json:"state"`
	Message string    `json:"message,omitempty"`
}

// JobStatus is the wire representation of a job.
type JobStatus struct {
	ID         string         `json:"id"`
	TraceID    string         `json:"trace_id,omitempty"`
	Spec       JobSpec        `json:"spec"`
	State      State          `json:"state"`
	Deduped    bool           `json:"deduped,omitempty"`
	Plan       *registry.Plan `json:"plan,omitempty"`
	Error      string         `json:"error,omitempty"`
	CreatedAt  time.Time      `json:"created_at"`
	StartedAt  *time.Time     `json:"started_at,omitempty"`
	FinishedAt *time.Time     `json:"finished_at,omitempty"`
	Cache      *CacheDelta    `json:"cache,omitempty"`
}

// job is the server-side record.
type job struct {
	id   string
	spec JobSpec
	key  string

	// ctx is canceled by DELETE /v1/jobs/{id}; a running job's sweep polls
	// it between grid points.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	err      string
	plan     *registry.Plan
	output   []byte
	rows     any
	delta    *CacheDelta
	created  time.Time
	started  time.Time
	planned  time.Time
	computed time.Time
	finished time.Time
	// dedupeJoins counts submissions that coalesced onto this job while it
	// was live; timing is the flat stage record, built at terminal state.
	dedupeJoins int
	timing      *obs.JobTiming
	events      []Event
	done        chan struct{} // closed at terminal state

	// rec collects the job's spans (immutable pointer, set at submit);
	// rootSpan is the root span ID, allocated at submit so every log line
	// can carry it; parent is the remote span context a traceparent header
	// supplied, making this job part of a coordinator's fleet-wide trace.
	rec      *trace.Recorder
	rootSpan string
	parent   trace.SpanContext
}

func (j *job) appendEventLocked(state State, msg string) {
	j.events = append(j.events, Event{
		Seq: len(j.events), Time: now(), Job: j.id, State: state, Message: msg,
	})
}

func (j *job) event(state State, msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(state, msg)
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Spec: j.spec, State: j.state, Plan: j.plan,
		Error: j.err, CreatedAt: j.created, Cache: j.delta,
	}
	if j.rec != nil {
		st.TraceID = j.rec.TraceID()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// eventsSince returns events[from:] plus whether the job has terminated.
func (j *job) eventsSince(from int) ([]Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var evs []Event
	if from < len(j.events) {
		evs = append(evs, j.events[from:]...)
	}
	return evs, terminal(j.state)
}

// Config assembles a Server.
type Config struct {
	// Env is the shared evaluation substrate; Env.Cache should point at
	// Store so jobs and planning agree on residency.
	Env *experiments.Env
	// Store is the shared Summary cache behind /v1/cache/stats.
	Store *cache.Store
	// Workers is the total core budget across all concurrent jobs
	// (0 = all schedulable cores).
	Workers int
	// MaxConcurrentJobs sizes the worker pool (default 2).
	MaxConcurrentJobs int
	// QueueDepth bounds the total queued jobs across all tenants (default
	// 64); a full queue rejects submissions with 503 (plus a Retry-After
	// hint) rather than buffering unboundedly.
	QueueDepth int
	// TenantQuota, when positive, caps each tenant's queued+running jobs:
	// submissions past the quota are rejected with 429 and a Retry-After
	// hint while other tenants keep being admitted. 0 disables the quota.
	TenantQuota int
	// EventKeepalive is how long an idle events stream goes before a
	// keepalive line ({"keepalive":true}) is written, so readers can tell
	// a long compute from a hung connection (default 10s; negative
	// disables).
	EventKeepalive time.Duration
	// MaxFinishedJobs bounds how many terminal jobs (with their rendered
	// output, typed rows and event history) stay queryable (default 256).
	// Older finished jobs are forgotten, keeping a long-lived daemon's
	// memory flat; their computed points live on in the shared cache.
	MaxFinishedJobs int
	// FinishedJobTTL, when positive, additionally expires terminal jobs by
	// age: a janitor retires any job finished longer than this ago, even
	// when the count cap has room. 0 disables age-based expiry.
	FinishedJobTTL time.Duration
	// Metrics receives the daemon's instrument families and is served at
	// GET /metrics. nil allocates a private registry, so instrumentation
	// is always on; pass a shared registry to co-expose other subsystems.
	Metrics *obs.Registry
	// Logger receives structured job-path logs; every line carries
	// trace_id/span_id/job_id/tenant so log streams join against traces
	// and timing records. nil discards (obs.NewLogger builds one).
	Logger *slog.Logger
}

// Server is the HTTP daemon state. Create with New, launch workers with
// Start, and drain with Close.
type Server struct {
	cfg        Config
	jobWorkers int // concurrent job executors
	perJob     int // default core budget per executing job
	metrics    *serviceMetrics
	log        *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string        // submission order, for listing
	byKey    map[string]*job // live (queued/running) jobs, for coalescing
	finished []finishedRec   // terminal jobs, oldest first, for retention
	closed   bool
	nextID   int

	adm         *admission
	wg          sync.WaitGroup
	janitorStop chan struct{}
}

// finishedRec is one terminal job in retirement order, stamped with when
// it terminated so the TTL janitor can expire by age without touching the
// job's own lock.
type finishedRec struct {
	id string
	at time.Time
}

// New validates the config and builds a server. The total worker budget is
// split across the job pool exactly like a sweep splits its budget across
// nested grids: jobWorkers*perJob never exceeds the budget.
func New(cfg Config) *Server {
	if cfg.MaxConcurrentJobs <= 0 {
		cfg.MaxConcurrentJobs = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxFinishedJobs <= 0 {
		cfg.MaxFinishedJobs = 256
	}
	if cfg.EventKeepalive == 0 {
		cfg.EventKeepalive = 10 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	jobWorkers, perJob := sim.Split(cfg.Workers, cfg.MaxConcurrentJobs)
	s := &Server{
		cfg:         cfg,
		jobWorkers:  jobWorkers,
		perJob:      perJob,
		metrics:     newServiceMetrics(cfg.Metrics),
		log:         logger,
		jobs:        make(map[string]*job),
		byKey:       make(map[string]*job),
		adm:         newAdmission(cfg.QueueDepth, cfg.TenantQuota, jobWorkers),
		janitorStop: make(chan struct{}),
	}
	s.metrics.registerQueueDepth(func() float64 { return float64(s.adm.depth()) })
	if cfg.Store != nil {
		cfg.Store.Register(cfg.Metrics)
	}
	return s
}

// Start launches the job worker pool and, with a FinishedJobTTL
// configured, the retention janitor.
func (s *Server) Start() {
	for i := 0; i < s.jobWorkers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for s.runNext() {
			}
		}()
	}
	if ttl := s.cfg.FinishedJobTTL; ttl > 0 {
		interval := ttl / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		if interval > time.Minute {
			interval = time.Minute
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-s.janitorStop:
					return
				case <-ticker.C:
					s.mu.Lock()
					s.evictFinishedLocked(now())
					s.mu.Unlock()
				}
			}
		}()
	}
}

// Close stops accepting submissions, drains every queued and running job,
// and waits for the pool (and janitor) to exit. Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.adm.close()
	close(s.janitorStop)
	s.wg.Wait()
}

// runNext executes the next admitted job, blocking until one is available.
// false means the queue is closed and drained — the worker exits. The
// quota slot a dequeued job holds is released here, exactly once, whatever
// path run takes (including the skip of a job canceled between dequeue and
// run).
func (s *Server) runNext() bool {
	j, ok := s.adm.dequeue()
	if !ok {
		return false
	}
	s.metrics.tenantQueue(j.spec.Tenant).Add(-1)
	s.run(j)
	s.adm.release(j.spec.Tenant)
	return true
}

// Submit validates and enqueues a spec, returning the (possibly coalesced)
// job status. The bool reports whether the spec coalesced onto a live job.
func (s *Server) Submit(spec JobSpec) (JobStatus, bool, error) {
	return s.SubmitTraced(spec, trace.SpanContext{})
}

// SubmitTraced is Submit with an optional remote trace parent (the
// decoded traceparent header): when valid, the job joins the caller's
// trace and its root span nests under the caller's span, which is how a
// coordinator's fleet-wide timeline absorbs worker jobs. A zero parent
// starts a fresh trace whose ID derives from the spec fingerprint and
// the submit sequence — fully deterministic, so replayed submission
// sequences yield byte-stable traces.
func (s *Server) SubmitTraced(spec JobSpec, parent trace.SpanContext) (JobStatus, bool, error) {
	if spec.Trials <= 0 {
		spec.Trials = DefaultTrials
	}
	if spec.Seed == nil {
		seed := int64(DefaultSeed)
		spec.Seed = &seed
	}
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if err := validateTenant(spec.Tenant); err != nil {
		return JobStatus{}, false, err
	}
	if spec.Priority < -100 || spec.Priority > 100 {
		return JobStatus{}, false, fmt.Errorf("priority %d out of range [-100, 100]", spec.Priority)
	}
	if _, ok := registry.Lookup(spec.Experiment); !ok {
		return JobStatus{}, false, fmt.Errorf("unknown experiment %q (registered: %s)",
			spec.Experiment, strings.Join(registry.Names(), ", "))
	}
	if _, numShards, err := experiments.ParseShard(spec.Shard); err != nil {
		return JobStatus{}, false, err
	} else if numShards > 1 && (s.cfg.Store == nil || s.cfg.Store.Dir() == "") {
		return JobStatus{}, false, fmt.Errorf("sharded jobs need a disk-backed cache (start the server with -cache-dir) to persist their points")
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, false, errShuttingDown
	}
	key := spec.key()
	if live, ok := s.byKey[key]; ok {
		// Count the join while still holding s.mu (lock order s.mu → j.mu):
		// the job cannot be retired from byKey concurrently, and a job that
		// already reached its terminal state — and froze its timing record —
		// is joined without counting, so create_job_dedupe_joins_total and
		// the timing record's DedupeJoins field always agree.
		live.mu.Lock()
		counted := !terminal(live.state)
		if counted {
			live.dedupeJoins++
		}
		live.mu.Unlock()
		s.mu.Unlock()
		if counted {
			s.metrics.dedupeJoin(spec.Experiment, spec.Tenant)
			s.log.Info("job coalesced onto live job",
				"job_id", live.id, "trace_id", live.rec.TraceID(), "span_id", live.rootSpan,
				"tenant", spec.Tenant, "experiment", spec.Experiment)
		}
		return live.status(), true, nil
	}
	s.nextID++
	// Trace identity: join the remote trace when a valid parent came in,
	// otherwise derive a fresh trace ID from the spec fingerprint and the
	// submit sequence. The span-ID scope folds in the job id and parent so
	// two processes contributing to one trace can never mint colliding IDs.
	id := "job-" + strconv.Itoa(s.nextID)
	traceID := trace.DeriveTraceID(key, s.nextID)
	if parent.Valid() {
		traceID = parent.TraceID
	}
	rec := trace.NewRecorder(traceID, id+"|"+key+"|"+parent.SpanID)
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:       id,
		spec:     spec,
		key:      key,
		ctx:      ctx,
		cancel:   cancel,
		state:    StateQueued,
		created:  now(),
		done:     make(chan struct{}),
		rec:      rec,
		rootSpan: rec.NewSpanID(),
		parent:   parent,
	}
	j.appendEventLocked(StateQueued, "")
	if err := s.adm.enqueue(j); err != nil {
		s.mu.Unlock()
		var ae *AdmissionError
		if errors.As(err, &ae) {
			s.metrics.admissionRejected(spec.Tenant, ae.Reason)
			s.log.Warn("job rejected at admission",
				"tenant", spec.Tenant, "experiment", spec.Experiment,
				"reason", ae.Reason, "retry_after_seconds", ae.RetryAfterSeconds)
		}
		return JobStatus{}, false, err
	}
	s.metrics.tenantQueue(spec.Tenant).Add(1)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.byKey[key] = j
	s.mu.Unlock()
	s.log.Info("job queued",
		"job_id", j.id, "trace_id", traceID, "span_id", j.rootSpan,
		"tenant", spec.Tenant, "experiment", spec.Experiment,
		"trials", spec.Trials, "shard", spec.Shard)
	return j.status(), false, nil
}

var errShuttingDown = fmt.Errorf("server is shutting down")

// maxTenantLen bounds the tenant field. Tenant values become Prometheus
// label values and dedupe-key components, so they must stay short and
// well-formed; docs/METRICS.md states the cardinality contract.
const maxTenantLen = 64

// validateTenant enforces the tenant charset ([a-zA-Z0-9_.-]) and length
// cap, rejecting arbitrary client strings before they can become metric
// labels.
func validateTenant(t string) error {
	if len(t) > maxTenantLen {
		return fmt.Errorf("tenant exceeds %d bytes", maxTenantLen)
	}
	for _, r := range t {
		ok := r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("tenant %q contains %q; allowed characters are [a-zA-Z0-9_.-]", t, r)
		}
	}
	return nil
}

// Job returns a job's status by id.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// run executes one job on a pool worker.
func (s *Server) run(j *job) {
	d, _ := registry.Lookup(j.spec.Experiment) // validated at submit
	opt := experiments.Options{Trials: j.spec.Trials, Seed: *j.spec.Seed, Workers: s.perJob, Ctx: j.ctx}
	if j.spec.Workers > 0 && j.spec.Workers < s.perJob {
		opt.Workers = j.spec.Workers
	}
	opt.Shard, opt.NumShards, _ = experiments.ParseShard(j.spec.Shard) // validated at submit

	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled while queued: already terminal and retired; nothing to run.
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = now()
	j.appendEventLocked(StateRunning, "")
	j.mu.Unlock()
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	s.log.Info("job started", j.logAttrs()...)

	// Cache-aware planning before compute: the plan is surfaced in the
	// status and the event stream, so clients see upfront whether the job
	// will be served from cache.
	plan := registry.PlanFor(d, s.cfg.Env, opt)
	j.mu.Lock()
	j.plan = &plan
	j.planned = now()
	j.appendEventLocked(StateRunning, fmt.Sprintf("planned: %d grid points, %d cached, %d to compute",
		plan.GridPoints, plan.Cached, plan.ToCompute))
	j.mu.Unlock()
	s.log.Info("job planned", append(j.logAttrs(),
		"grid_points", plan.GridPoints, "cached", plan.Cached, "to_compute", plan.ToCompute)...)

	var hits0, misses0 int64
	if s.cfg.Store != nil {
		hits0, misses0 = s.cfg.Store.Hits(), s.cfg.Store.Misses()
	}

	var buf bytes.Buffer
	var rows any
	var computedAt time.Time
	canceled := false
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(experiments.Canceled); ok {
					canceled = true
					err = fmt.Errorf("canceled")
					return
				}
				err = fmt.Errorf("experiment panicked: %v", r)
			}
		}()
		res := d.Run(s.cfg.Env, opt)
		computedAt = now() // grid fully computed/replayed; render next
		res.Render(&buf)
		rows = res.Rows
		return nil
	}()

	var delta *CacheDelta
	if s.cfg.Store != nil {
		delta = &CacheDelta{
			Hits:   s.cfg.Store.Hits() - hits0,
			Misses: s.cfg.Store.Misses() - misses0,
		}
	}

	j.mu.Lock()
	j.finished = now()
	j.computed = computedAt
	j.delta = delta
	switch {
	case canceled:
		j.state = StateCanceled
		j.err = "canceled"
		j.appendEventLocked(StateCanceled, "canceled at a grid-point boundary")
	case err != nil:
		j.state = StateFailed
		j.err = err.Error()
		j.appendEventLocked(StateFailed, j.err)
	default:
		j.state = StateDone
		j.output = buf.Bytes()
		j.rows = rows
		msg := fmt.Sprintf("rendered %d bytes", len(j.output))
		if delta != nil {
			msg += fmt.Sprintf(" (%d cache hits, %d computed)", delta.Hits, delta.Misses)
		}
		j.appendEventLocked(StateDone, msg)
	}
	state, errMsg := j.state, j.err
	tm := j.buildTimingLocked()
	j.buildTraceLocked()
	j.mu.Unlock()
	close(j.done)
	j.cancel() // release the context's resources

	s.metrics.jobTerminal(j.spec.Experiment, j.spec.Tenant, state)
	s.metrics.observeStages(tm)
	if delta != nil {
		s.metrics.points(delta.Hits, delta.Misses)
	}
	attrs := append(j.logAttrs(), "outcome", string(state), "total_seconds", tm.TotalSeconds)
	if delta != nil {
		attrs = append(attrs, "cache_hits", delta.Hits, "computed_points", delta.Misses)
	}
	if state == StateFailed {
		s.log.Error("job finished", append(attrs, "error", errMsg)...)
	} else {
		s.log.Info("job finished", attrs...)
	}

	s.mu.Lock()
	s.retireLocked(j)
	s.mu.Unlock()
}

// buildTimingLocked assembles the flat stage-timing record from the
// timestamps run stamped at each boundary. Caller holds j.mu and has
// already set the terminal state; unreached stages stay zero.
func (j *job) buildTimingLocked() *obs.JobTiming {
	tm := &obs.JobTiming{
		Job:         j.id,
		Experiment:  j.spec.Experiment,
		Tenant:      j.spec.Tenant,
		Shard:       j.spec.Shard,
		Outcome:     string(j.state),
		QueuedAt:    j.created,
		StartedAt:   j.started,
		PlannedAt:   j.planned,
		ComputedAt:  j.computed,
		DedupeJoins: j.dedupeJoins,
	}
	if j.state == StateDone {
		tm.RenderedAt = j.finished
	}
	if j.plan != nil {
		tm.GridPoints = j.plan.GridPoints
	}
	if j.delta != nil {
		tm.CacheHits = int(j.delta.Hits)
		tm.ComputedPoints = int(j.delta.Misses)
	}
	tm.Finalize()
	j.timing = tm
	return tm
}

// retireLocked moves a job that just reached a terminal state into
// retention: the dedupe slot is released — later identical submissions
// re-run (and are served from cache) rather than returning this
// historical job — and the oldest finished jobs past the count cap or the
// TTL are forgotten. Caller holds s.mu.
func (s *Server) retireLocked(j *job) {
	if s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
	s.finished = append(s.finished, finishedRec{id: j.id, at: now()})
	s.evictFinishedLocked(now())
}

// evictFinishedLocked enforces finished-job retention: the count cap
// always, and — when a TTL is configured — age expiry against now. Caller
// holds s.mu.
func (s *Server) evictFinishedLocked(now time.Time) {
	expired := func(rec finishedRec) bool {
		if len(s.finished) > s.cfg.MaxFinishedJobs {
			return true
		}
		return s.cfg.FinishedJobTTL > 0 && now.Sub(rec.at) > s.cfg.FinishedJobTTL
	}
	for len(s.finished) > 0 && expired(s.finished[0]) {
		evict := s.finished[0].id
		s.finished = s.finished[1:]
		delete(s.jobs, evict)
		for i, id := range s.order {
			if id == evict {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
}

// Cancel requests cancellation of a job. Queued jobs terminate
// immediately (the worker skips them on dequeue); running jobs have their
// context canceled and stop at the next grid-point boundary. The bool
// reports whether the call changed anything — false means the job was
// already terminal.
func (s *Server) Cancel(id string) (JobStatus, bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false, fmt.Errorf("no such job")
	}
	j.mu.Lock()
	switch {
	case terminal(j.state):
		j.mu.Unlock()
		return j.status(), false, nil
	case j.state == StateRunning:
		j.appendEventLocked(StateRunning, "cancel requested; stopping at the next grid point")
		j.mu.Unlock()
		j.cancel()
		s.log.Info("job cancel requested", j.logAttrs()...)
		return j.status(), true, nil
	default: // queued
		// Pull the job out of the admission queue while it is still there;
		// if a worker already dequeued it, run() will observe the canceled
		// state and skip it, and that worker settles the quota instead.
		if s.adm.remove(j) {
			s.metrics.tenantQueue(j.spec.Tenant).Add(-1)
		}
		j.state = StateCanceled
		j.err = "canceled"
		j.finished = now()
		j.appendEventLocked(StateCanceled, "canceled while queued")
		j.buildTimingLocked()
		j.buildTraceLocked()
		j.mu.Unlock()
		close(j.done)
		j.cancel()
		s.metrics.jobTerminal(j.spec.Experiment, j.spec.Tenant, StateCanceled)
		s.mu.Lock()
		s.retireLocked(j)
		s.mu.Unlock()
		s.log.Info("job canceled while queued", j.logAttrs()...)
		return j.status(), true, nil
	}
}

// ---------------------------------------------------------------------------
// HTTP layer.

// Handler routes the service API. Every route is wrapped in the
// request-metrics middleware; the pattern string doubles as the `route`
// label, so the label space is fixed at compile time (no per-path
// cardinality).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	handle("POST /v1/jobs", s.handleSubmit)
	handle("GET /v1/jobs", s.handleList)
	handle("GET /v1/jobs/{id}", s.handleJob)
	handle("DELETE /v1/jobs/{id}", s.handleCancel)
	handle("GET /v1/jobs/{id}/events", s.handleEvents)
	handle("GET /v1/jobs/{id}/result", s.handleResult)
	handle("GET /v1/jobs/{id}/timing", s.handleTiming)
	handle("GET /v1/jobs/{id}/trace", s.handleTrace)
	handle("GET /v1/cache/stats", s.handleCacheStats)
	handle("POST /v1/cache/export", s.handleCacheExport)
	handle("POST /v1/cache/import", s.handleCacheImport)
	handle("GET /v1/experiments", s.handleExperiments)
	handle("GET /metrics", s.cfg.Metrics.Handler().ServeHTTP)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /v1/healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	// A well-formed traceparent header joins this job to the caller's
	// trace (the coordinator fleet path); a missing or malformed header
	// silently starts a fresh trace, per W3C trace-context semantics.
	parent, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
	st, deduped, err := s.SubmitTraced(spec, parent)
	var ae *AdmissionError
	switch {
	case errors.As(err, &ae):
		// Admission rejections carry a machine-readable reason and a
		// depth-proportional Retry-After hint, so a polite client (the
		// coordinator's request retry, say) can back off exactly as long
		// as the queue needs.
		w.Header().Set("Retry-After", strconv.Itoa(ae.RetryAfterSeconds))
		writeJSON(w, ae.Status, map[string]any{
			"error":               ae.Error(),
			"reason":              ae.Reason,
			"retry_after_seconds": ae.RetryAfterSeconds,
		})
		return
	case err == errShuttingDown:
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st.Deduped = deduped
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]JobStatus, 0, len(s.order))
	js := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		js = append(js, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range js {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
	}
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams a job's progress as NDJSON: the recorded history
// first, then live transitions until the job terminates or the client
// disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Keepalive cadence is counted in poll ticks rather than clock reads,
	// so an idle stream emits {"keepalive":true} lines without consuming
	// the fake-clock seam the timing tests pin.
	const pollTick = 100 * time.Millisecond
	keepaliveTicks := int(s.cfg.EventKeepalive / pollTick)
	if keepaliveTicks < 1 {
		keepaliveTicks = 1
	}
	next, idleTicks := 0, 0
	for {
		evs, terminal := j.eventsSince(next)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(evs)
		if len(evs) > 0 {
			idleTicks = 0
			if flusher != nil {
				flusher.Flush()
			}
		}
		if terminal {
			return
		}
		if s.cfg.EventKeepalive > 0 && idleTicks >= keepaliveTicks {
			idleTicks = 0
			if _, err := io.WriteString(w, "{\"keepalive\":true}\n"); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			// Loop once more to drain the terminal events.
		case <-time.After(pollTick):
			idleTicks++
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	state, errMsg, output, rows := j.state, j.err, j.output, j.rows
	j.mu.Unlock()
	switch state {
	case StateFailed:
		writeError(w, http.StatusConflict, "job failed: "+errMsg)
		return
	case StateCanceled:
		writeError(w, http.StatusConflict, "job was canceled")
		return
	case StateQueued, StateRunning:
		writeError(w, http.StatusConflict, "job is "+string(state)+"; poll until done")
		return
	}
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, map[string]any{
			"experiment": j.spec.Experiment,
			"rows":       rows,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(output)
}

// handleCancel is DELETE /v1/jobs/{id}: queued jobs dequeue immediately,
// running jobs stop at the next grid-point boundary (202 — poll for the
// canceled state), already-terminal jobs are a 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, changed, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !changed {
		writeError(w, http.StatusConflict, "job already "+string(st.State))
		return
	}
	code := http.StatusOK
	if st.State == StateRunning {
		code = http.StatusAccepted // cancellation lands at the next grid point
	}
	writeJSON(w, code, st)
}

// handleCacheExport streams cache entries as NDJSON (the format
// Store.ImportFrom and the coordinator's shard pull consume). The
// optional JSON body {"keys": [...]} restricts the export to a manifest;
// an empty body exports everything. Requires a disk-backed cache.
func (s *Server) handleCacheExport(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Store
	if st == nil || st.Dir() == "" {
		writeError(w, http.StatusConflict, "cache export needs a disk-backed cache (start the server with -cache-dir)")
		return
	}
	var req struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, "bad export request: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	// Errors past this point cut the stream; the importer's validation
	// rejects the truncated tail.
	n, _ := st.ExportTo(w, req.Keys)
	pc, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
	s.log.Info("cache export served",
		"entries", n, "keys_requested", len(req.Keys),
		"trace_id", pc.TraceID, "span_id", pc.SpanID)
}

// handleCacheImport lands an NDJSON entry stream (ExportTo's format) into
// the shared cache — the pre-warm path a coordinator uses to ship points
// it already holds to a worker. Every record is validated against its
// content address before it is written.
func (s *Server) handleCacheImport(w http.ResponseWriter, r *http.Request) {
	st := s.cfg.Store
	if st == nil {
		writeError(w, http.StatusConflict, "no cache attached")
		return
	}
	n, err := st.ImportFrom(r.Body)
	pc, _ := trace.ParseTraceparent(r.Header.Get("traceparent"))
	if err != nil {
		s.log.Error("cache import failed",
			"entries", n, "error", err.Error(),
			"trace_id", pc.TraceID, "span_id", pc.SpanID)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("import failed after %d entries: %v", n, err))
		return
	}
	s.log.Info("cache import landed",
		"entries", n, "trace_id", pc.TraceID, "span_id", pc.SpanID)
	writeJSON(w, http.StatusOK, map[string]any{"imported": n})
}

// handleTiming serves a job's flat stage-timing record. The record is
// built exactly once, at the terminal transition; polling a live job is a
// 409, like /result.
func (s *Server) handleTiming(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	tm, state := j.timing, j.state
	j.mu.Unlock()
	if tm == nil {
		writeError(w, http.StatusConflict, "job is "+string(state)+"; timing is recorded when it terminates")
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, obs.TimingCSVHeader)
		fmt.Fprintln(w, tm.CSVRow())
		return
	}
	writeJSON(w, http.StatusOK, tm)
}

// handleCacheStats reports the store's accounting snapshot — the same
// counters Register exposes on /metrics, so the two surfaces can't drift.
func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	st := s.cfg.Store
	if st == nil {
		writeError(w, http.StatusNotFound, "no cache attached")
		return
	}
	writeJSON(w, http.StatusOK, st.Stats())
}

// handleExperiments lists the registry with a cache plan per experiment at
// the requested (trials, seed) scale — the "which figures are already free"
// view.
func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	opt := experiments.Options{Trials: DefaultTrials, Seed: DefaultSeed}
	if v := r.URL.Query().Get("trials"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			opt.Trials = n
		}
	}
	if v := r.URL.Query().Get("seed"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			opt.Seed = n
		}
	}
	type entry struct {
		Name  string        `json:"name"`
		Title string        `json:"title"`
		Plan  registry.Plan `json:"plan"`
	}
	var out []entry
	for _, d := range registry.All() {
		out = append(out, entry{Name: d.Name, Title: d.Title, Plan: registry.PlanFor(d, s.cfg.Env, opt)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"trials": opt.Trials, "seed": opt.Seed, "experiments": out})
}

// handleHealthz serves liveness plus the lightweight load snapshot the
// coordinator's worker probes read: queue depth, in-flight jobs, and cache
// accounting. Served on both /healthz (the original liveness path) and
// /v1/healthz (the probe path).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := map[string]any{
		"status":      "ok",
		"job_workers": s.jobWorkers,
		"per_job":     s.perJob,
		"queue_depth": s.adm.depth(),
		"inflight":    s.metrics.inflight.Value(),
	}
	if s.cfg.Store != nil {
		h["cache"] = s.cfg.Store.Stats()
	}
	writeJSON(w, http.StatusOK, h)
}

package service

import "net/http"

//create:walltime-ok HTTP request durations are operational metadata measured at the server edge

// statusWriter captures the status code a handler writes so the request
// middleware can label its metrics. It forwards Flush so streaming
// handlers (the NDJSON event follow) keep working behind it.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route in the server-level request metrics:
// create_http_requests_total{route,code} and the
// create_http_request_seconds{route} duration histogram. The route label
// is the registration pattern, never the raw path, so label cardinality
// is fixed by the route table.
func (s *Server) instrument(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := now()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		s.metrics.httpRequest(route, code, now().Sub(start).Seconds())
	})
}

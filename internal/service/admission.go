package service

import (
	"fmt"
	"net/http"
	"sync"
)

// admission is the per-tenant weighted-fair submission queue that replaced
// the single FIFO channel: each tenant owns its own queue (priority-ordered,
// FIFO among equals), workers drain tenants in deterministic round-robin
// rotation so no tenant can starve another by submitting faster, and a
// per-tenant quota on queued+running jobs turns a hostile tenant's flood
// into 429s for that tenant alone instead of 503s for everyone.
//
// Admission decisions are deterministic given the submission sequence: the
// rotation order is arrival order of tenants with queued work, and within a
// tenant, higher JobSpec.Priority drains first with ties broken by
// submission order. No clock and no randomness are involved, so a replayed
// submission sequence dequeues in exactly the same order.
type admission struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool

	maxDepth int // total queued jobs across tenants (the old QueueDepth bound)
	quota    int // per-tenant cap on queued+running jobs; 0 = unlimited
	workers  int // pool size, for the depth-proportional Retry-After hint

	total  int                     // queued jobs across all tenants
	queues map[string]*tenantQueue // tenants with queued jobs
	rr     []string                // round-robin rotation of tenants with queued jobs
	inUse  map[string]int          // queued+running jobs per tenant (the quota base)
}

// tenantQueue is one tenant's pending jobs, highest priority first and
// FIFO within a priority level.
type tenantQueue struct {
	jobs []*job
}

func newAdmission(maxDepth, quota, workers int) *admission {
	a := &admission{
		maxDepth: maxDepth,
		quota:    quota,
		workers:  workers,
		queues:   make(map[string]*tenantQueue),
		inUse:    make(map[string]int),
	}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// AdmissionError is a rejected submission: the HTTP layer maps it to its
// status code, sets a Retry-After header from the hint, and serializes the
// reason so clients (and the coordinator's retry backoff) can tell a full
// queue from an exhausted tenant quota.
type AdmissionError struct {
	// Status is the HTTP status the rejection maps to: 429 for
	// tenant_quota, 503 for queue_full.
	Status int
	// Reason labels the rejection in metrics and response bodies:
	// "tenant_quota" or "queue_full".
	Reason string
	// RetryAfterSeconds is the depth-proportional backoff hint served in
	// the Retry-After header (always >= 1).
	RetryAfterSeconds int
	msg               string
}

func (e *AdmissionError) Error() string { return e.msg }

// maxRetryAfterHint caps the advisory backoff so a deep queue never tells
// clients to go away for minutes.
const maxRetryAfterHint = 60

// enqueue admits j or rejects it with an *AdmissionError. The quota counts
// queued+running jobs, so a tenant cannot sidestep it by keeping jobs
// in flight; dedupe-coalesced submissions never reach here and are
// therefore always admitted.
func (a *admission) enqueue(j *job) error {
	tenant := j.spec.Tenant
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.quota > 0 && a.inUse[tenant] >= a.quota {
		hint := 1 + a.inUse[tenant]
		if hint > maxRetryAfterHint {
			hint = maxRetryAfterHint
		}
		return &AdmissionError{
			Status: http.StatusTooManyRequests, Reason: "tenant_quota",
			RetryAfterSeconds: hint,
			msg: fmt.Sprintf("tenant %q has %d job(s) queued or running, at its quota of %d",
				tenant, a.inUse[tenant], a.quota),
		}
	}
	if a.total >= a.maxDepth {
		// Hint proportionally to how many pool passes it takes to drain the
		// backlog: depth jobs over `workers` executors.
		hint := 1 + a.total/max(1, a.workers)
		if hint > maxRetryAfterHint {
			hint = maxRetryAfterHint
		}
		return &AdmissionError{
			Status: http.StatusServiceUnavailable, Reason: "queue_full",
			RetryAfterSeconds: hint,
			msg:               fmt.Sprintf("job queue is full (%d queued)", a.total),
		}
	}
	q := a.queues[tenant]
	if q == nil {
		q = &tenantQueue{}
		a.queues[tenant] = q
		a.rr = append(a.rr, tenant)
	}
	// Insert after the last job with priority >= this one: priority order,
	// submission order among equals.
	i := len(q.jobs)
	for i > 0 && q.jobs[i-1].spec.Priority < j.spec.Priority {
		i--
	}
	q.jobs = append(q.jobs, nil)
	copy(q.jobs[i+1:], q.jobs[i:])
	q.jobs[i] = j
	a.total++
	a.inUse[tenant]++
	a.cond.Signal()
	return nil
}

// dequeue blocks until a job is available or the queue is closed and
// drained (ok=false — the worker exits). The head-of-rotation tenant
// yields its highest-priority job, then rotates to the back of the line,
// so tenants interleave one job at a time whatever their backlog sizes.
func (a *admission) dequeue() (*job, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.total == 0 {
		if a.closed {
			return nil, false
		}
		a.cond.Wait()
	}
	tenant := a.rr[0]
	q := a.queues[tenant]
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	a.total--
	if len(q.jobs) == 0 {
		delete(a.queues, tenant)
		a.rr = a.rr[1:]
	} else {
		a.rr = append(a.rr[1:], tenant)
	}
	// The job leaves the queue but stays in the tenant's quota (it is about
	// to run); release() settles the account when it reaches a terminal
	// state.
	return j, true
}

// remove takes a still-queued job out of its tenant's queue (the
// cancel-while-queued path) and releases its quota slot. false means the
// job was already dequeued by a worker — that worker's release() settles
// the quota instead.
func (a *admission) remove(j *job) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	tenant := j.spec.Tenant
	q := a.queues[tenant]
	if q == nil {
		return false
	}
	for i, queued := range q.jobs {
		if queued != j {
			continue
		}
		q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
		a.total--
		a.inUse[tenant]--
		if len(q.jobs) == 0 {
			delete(a.queues, tenant)
			for k, t := range a.rr {
				if t == tenant {
					a.rr = append(a.rr[:k], a.rr[k+1:]...)
					break
				}
			}
		}
		return true
	}
	return false
}

// release settles a dequeued job's quota slot once it reaches a terminal
// state (or was skipped because it got canceled between dequeue and run).
// Called exactly once per dequeued job, by the worker that dequeued it.
func (a *admission) release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inUse[tenant] > 0 {
		a.inUse[tenant]--
	}
	if a.inUse[tenant] == 0 {
		delete(a.inUse, tenant)
	}
}

// close wakes every blocked worker; they drain the remaining queued jobs
// and then exit — the graceful-shutdown contract the channel queue had.
func (a *admission) close() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	a.cond.Broadcast()
}

// depth reports the total queued jobs (the create_queue_depth gauge).
func (a *admission) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/obs/trace"
)

// fakeClock is a stepping clock for the package's `now` seam: every read
// advances exactly one second, so stage durations become exact integers a
// test can assert on instead of mere monotonicity.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

// withFakeClock swaps the service tier's clock seam for the test's
// lifetime. Tests in this package do not run in parallel.
func withFakeClock(t *testing.T, base time.Time) *fakeClock {
	t.Helper()
	clk := &fakeClock{t: base}
	old := now
	now = clk.Now
	t.Cleanup(func() { now = old })
	return clk
}

// unstartedServer builds a server whose pool is never started, so the
// test drives the job lifecycle by hand (deterministic clock-call order).
func unstartedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func fetchTrace(t *testing.T, ts *httptest.Server, id, query string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("trace returned %d, want %d", resp.StatusCode, wantCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceEndpointSpanTree: a finished job serves a queue→plan→compute→
// render span tree under one root, and — because IDs are derived, not
// random, and the clock is faked — a replayed submission against a fresh
// server yields byte-identical NDJSON.
func TestTraceEndpointSpanTree(t *testing.T) {
	spec := JobSpec{Experiment: "fig19", Trials: 3, Seed: seedOf(2026)}
	base := time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC)

	runOnce := func() ([]byte, []byte, JobStatus) {
		withFakeClock(t, base)
		s, ts := unstartedServer(t)
		st, _, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		s.runNext()
		return fetchTrace(t, ts, st.ID, "", http.StatusOK),
			fetchTrace(t, ts, st.ID, "?format=chrome", http.StatusOK),
			st
	}

	nd, chrome, st := runOnce()
	spans, err := trace.ReadNDJSON(bytes.NewReader(nd))
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID == "" || len(st.TraceID) != 32 {
		t.Fatalf("job status trace id = %q, want 32 hex digits", st.TraceID)
	}

	byName := map[string]trace.Span{}
	ids := map[string]bool{}
	for _, sp := range spans {
		if sp.TraceID != st.TraceID {
			t.Fatalf("span %s has trace %s, want %s", sp.Name, sp.TraceID, st.TraceID)
		}
		byName[sp.Name] = sp
		ids[sp.SpanID] = true
	}
	root, ok := byName["job fig19"]
	if !ok || root.ParentID != "" {
		t.Fatalf("missing or non-root job span: %+v", byName)
	}
	for _, name := range []string{"queue", "plan", "compute", "render"} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("missing %s span; got %v", name, byName)
		}
		if sp.ParentID != root.SpanID {
			t.Fatalf("%s span parents %s, want root %s", name, sp.ParentID, root.SpanID)
		}
		if sp.End.Before(sp.Start) {
			t.Fatalf("%s span ends before it starts: %+v", name, sp)
		}
	}
	for _, sp := range spans {
		if sp.ParentID != "" && !ids[sp.ParentID] {
			t.Fatalf("span %s has dangling parent %s", sp.Name, sp.ParentID)
		}
	}
	if got := byName["compute"].Attrs["grid_points"]; got == "" || got == "0" {
		t.Fatalf("compute span carries no grid accounting: %+v", byName["compute"].Attrs)
	}
	if out := root.Attrs["outcome"]; out != "done" {
		t.Fatalf("root outcome = %q, want done", out)
	}

	// Fake clock: every stage boundary is exactly one clock tick apart
	// (created=+1s, started=+3s, planned=+5s, computed=+7s, finished=+8s).
	for name, want := range map[string]time.Duration{
		"queue": 2 * time.Second, "plan": 2 * time.Second,
		"compute": 2 * time.Second, "render": time.Second,
		"job fig19": 7 * time.Second,
	} {
		if got := byName[name].End.Sub(byName[name].Start); got != want {
			t.Errorf("%s span duration = %v, want %v", name, got, want)
		}
	}

	// Chrome export: valid JSON with events for every span plus metadata.
	var ct struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &ct); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	var complete int
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete != len(spans) {
		t.Fatalf("chrome trace has %d complete events for %d spans", complete, len(spans))
	}

	// Byte-stable replay: same submission sequence, fresh server and
	// clock, identical NDJSON and Chrome bytes.
	nd2, chrome2, st2 := runOnce()
	if st2.TraceID != st.TraceID {
		t.Fatalf("replayed trace id %s != %s", st2.TraceID, st.TraceID)
	}
	if !bytes.Equal(nd, nd2) {
		t.Fatalf("replayed NDJSON diverged:\n--- first ---\n%s\n--- second ---\n%s", nd, nd2)
	}
	if !bytes.Equal(chrome, chrome2) {
		t.Fatal("replayed chrome trace diverged")
	}
}

// TestFakeClockExactStageDurations: with the stepping clock, the timing
// record's derived durations are exact integers — the clock seam makes
// stage arithmetic testable instead of merely monotonic.
func TestFakeClockExactStageDurations(t *testing.T) {
	withFakeClock(t, time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC))
	s, ts := unstartedServer(t)
	st, _, err := s.Submit(JobSpec{Experiment: "fig19", Trials: 3, Seed: seedOf(2026)})
	if err != nil {
		t.Fatal(err)
	}
	s.runNext()

	s.mu.Lock()
	j := s.jobs[st.ID]
	s.mu.Unlock()
	j.mu.Lock()
	tm := j.timing
	j.mu.Unlock()
	if tm == nil {
		t.Fatal("no timing record after terminal state")
	}
	for name, got := range map[string]float64{
		"queue_wait": tm.QueueWaitSeconds,
		"plan":       tm.PlanSeconds,
		"compute":    tm.ComputeSeconds,
	} {
		if got != 2 {
			t.Errorf("%s = %v seconds, want exactly 2", name, got)
		}
	}
	if tm.RenderSeconds != 1 {
		t.Errorf("render = %v seconds, want exactly 1", tm.RenderSeconds)
	}
	if tm.TotalSeconds != 7 {
		t.Errorf("total = %v seconds, want exactly 7", tm.TotalSeconds)
	}

	// The CSV row renders those exact stamps.
	body := string(fetchTiming(t, ts, st.ID))
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv timing malformed:\n%s", body)
	}
	if !strings.Contains(lines[1], ",2.000000,2.000000,2.000000,1.000000,7.000000,") {
		t.Fatalf("csv row missing exact durations: %s", lines[1])
	}
}

func fetchTiming(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/timing?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timing csv returned %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceJoinsTraceparent: a submission carrying a W3C traceparent
// header joins the remote trace — the job reports the caller's trace ID
// and its root span nests under the caller's span. This is the mechanism
// that stitches worker jobs into a coordinator's fleet timeline.
func TestTraceJoinsTraceparent(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir())
	parentTrace := strings.Repeat("ab", 16)
	parentSpan := strings.Repeat("cd", 8)

	body, _ := json.Marshal(JobSpec{Experiment: "fig19", Trials: 3, Seed: seedOf(2026)})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+parentTrace+"-"+parentSpan+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.TraceID != parentTrace {
		t.Fatalf("job trace id = %s, want the traceparent's %s", st.TraceID, parentTrace)
	}

	st = await(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	spans, err := trace.ReadNDJSON(bytes.NewReader(fetchTrace(t, ts, st.ID, "", http.StatusOK)))
	if err != nil {
		t.Fatal(err)
	}
	var root *trace.Span
	for i := range spans {
		if spans[i].Name == "job fig19" {
			root = &spans[i]
		}
		if spans[i].TraceID != parentTrace {
			t.Fatalf("span %s has trace %s, want %s", spans[i].Name, spans[i].TraceID, parentTrace)
		}
	}
	if root == nil || root.ParentID != parentSpan {
		t.Fatalf("root span should nest under the remote parent %s: %+v", parentSpan, root)
	}
}

// TestTraceUnavailableBeforeTerminal: /trace for a live job is a 409, for
// an unknown job a 404, and a job canceled while queued serves a trace of
// just its root and queue spans.
func TestTraceUnavailableBeforeTerminal(t *testing.T) {
	s, ts := unstartedServer(t)
	st, _, err := s.Submit(JobSpec{Experiment: "fig19", Trials: 3, Seed: seedOf(7)})
	if err != nil {
		t.Fatal(err)
	}
	fetchTrace(t, ts, st.ID, "", http.StatusConflict)
	fetchTrace(t, ts, "nope", "", http.StatusNotFound)

	if _, changed, err := s.Cancel(st.ID); err != nil || !changed {
		t.Fatalf("cancel: changed=%v err=%v", changed, err)
	}
	spans, err := trace.ReadNDJSON(bytes.NewReader(fetchTrace(t, ts, st.ID, "", http.StatusOK)))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("canceled-queued trace has %d spans, want root+queue: %+v", len(spans), spans)
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
	}
	if !names["job fig19"] || !names["queue"] {
		t.Fatalf("canceled-queued trace spans = %v, want job+queue", names)
	}

	// Its timing CSV is also served, with unreached stages empty.
	row := strings.Split(strings.TrimRight(string(fetchTiming(t, ts, st.ID)), "\n"), "\n")[1]
	if !strings.Contains(row, ",canceled,") {
		t.Fatalf("canceled csv row missing outcome: %s", row)
	}
}

// TestHTTPRequestMetrics: every route is wrapped in the request-metrics
// middleware — counter by (route pattern, status code) plus a duration
// histogram — with the pattern as the label, so cardinality stays fixed.
func TestHTTPRequestMetrics(t *testing.T) {
	_, ts, _ := testServer(t, t.TempDir())
	for _, path := range []string{"/healthz", "/v1/jobs/nope", "/v1/cache/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`create_http_requests_total{code="200",route="GET /healthz"} 1`,
		`create_http_requests_total{code="404",route="GET /v1/jobs/{id}"} 1`,
		`create_http_requests_total{code="200",route="GET /v1/cache/stats"} 1`,
		`create_http_request_seconds_count{route="GET /healthz"} 1`,
		`create_http_request_seconds_bucket{route="GET /healthz",le="+Inf"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q in:\n%s", want, buf.String())
		}
	}
}

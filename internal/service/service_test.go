package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/obs"
	"github.com/embodiedai/create/internal/registry"
)

// seedOf builds the wire representation of an explicit seed.
func seedOf(v int64) *int64 { return &v }

// testServer wires a server over a fresh environment and an httptest
// listener. The returned cleanup drains the pool.
func testServer(t *testing.T, dir string) (*Server, *httptest.Server, *cache.Store) {
	t.Helper()
	store, err := cache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 2, MaxConcurrentJobs: 2, QueueDepth: 8})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts, store
}

func submit(t *testing.T, ts *httptest.Server, spec JobSpec, wantCode int) JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		t.Fatalf("submit returned %d, want %d: %s", resp.StatusCode, wantCode, msg.String())
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func await(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if terminal(st.State) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result returned %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEndToEndJobMatchesLibraryCall is the acceptance gate: a job submitted
// over HTTP renders byte-identically to the equivalent direct library call
// (which is also what create-bench prints), and resubmitting the same spec
// completes entirely from cache — zero newly computed grid points, asserted
// through the job's cache delta and /v1/cache/stats.
func TestEndToEndJobMatchesLibraryCall(t *testing.T) {
	const exp = "fig19"
	spec := JobSpec{Experiment: exp, Trials: 4, Seed: seedOf(2026)}

	// Reference: the direct library call on a fresh environment.
	d, ok := registry.Lookup(exp)
	if !ok {
		t.Fatal("experiment not registered")
	}
	var want bytes.Buffer
	refEnv := experiments.NewEnv()
	refStore, _ := cache.New("")
	refEnv.Cache = refStore
	d.Run(refEnv, experiments.Options{Trials: spec.Trials, Seed: *spec.Seed}).Render(&want)

	_, ts, store := testServer(t, t.TempDir())

	st := submit(t, ts, spec, http.StatusAccepted)
	st = await(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if got := fetchResult(t, ts, st.ID); !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served rows diverge from the library call:\n--- served ---\n%s\n--- library ---\n%s", got, want.String())
	}
	if st.Cache == nil || st.Cache.Misses == 0 {
		t.Fatalf("first run should compute points, cache delta %+v", st.Cache)
	}
	if st.Plan == nil || st.Plan.ToCompute != st.Plan.GridPoints {
		t.Fatalf("cold plan should predict all points as to-compute: %+v", st.Plan)
	}

	// Resubmit the identical spec: a fresh job (the first one released its
	// dedupe slot at completion) that must be served from cache with zero
	// newly computed grid points — and byte-identical output.
	missesBefore := store.Misses()
	st2 := submit(t, ts, spec, http.StatusAccepted)
	if st2.ID == st.ID {
		t.Fatal("completed job must not swallow a resubmission")
	}
	st2 = await(t, ts, st2.ID)
	if st2.State != StateDone {
		t.Fatalf("replay job failed: %s", st2.Error)
	}
	if st2.Cache == nil || st2.Cache.Misses != 0 {
		t.Fatalf("replay computed %+v, want zero misses", st2.Cache)
	}
	if st2.Plan == nil || !st2.Plan.Free() {
		t.Fatalf("replay plan should be free: %+v", st2.Plan)
	}
	if store.Misses() != missesBefore {
		t.Fatalf("store computed %d new points on replay", store.Misses()-missesBefore)
	}
	if got := fetchResult(t, ts, st2.ID); !bytes.Equal(got, want.Bytes()) {
		t.Fatal("replayed job rendered different bytes")
	}

	// The shared-cache stats endpoint reflects the same accounting.
	resp, err := http.Get(ts.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
		Resident int   `json:"resident"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Misses != store.Misses() || stats.Resident != store.Len() {
		t.Fatalf("stats endpoint diverges from the store: %+v", stats)
	}
}

// TestConcurrentIdenticalJobsComputeOnce: however two identical
// submissions interleave — coalesced onto one live job, or a second job
// replaying the first's cache — the grid is computed exactly once.
func TestConcurrentIdenticalJobsComputeOnce(t *testing.T) {
	_, ts, store := testServer(t, "")
	spec := JobSpec{Experiment: "fig15", Trials: 4, Seed: seedOf(2026)}

	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	outs := make([][]byte, 2)
	for i, id := range ids {
		st := await(t, ts, id)
		if st.State != StateDone {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		outs[i] = fetchResult(t, ts, id)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("identical specs rendered different bytes")
	}

	// However the two submissions raced, each unique grid point was
	// computed exactly once: total misses equals resident points.
	if store.Misses() != int64(store.Len()) {
		t.Fatalf("%d misses for %d unique points: the grid was computed more than once",
			store.Misses(), store.Len())
	}
}

// TestSubmitCoalescesLiveDuplicates pins the dedupe path deterministically:
// with a single worker occupied by an earlier job, two identical queued
// submissions must resolve to one job ID.
func TestSubmitCoalescesLiveDuplicates(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1, QueueDepth: 8})
	// No Start(): nothing drains the queue, so both submissions stay
	// queued and the second must coalesce with the first.
	spec := JobSpec{Experiment: "table6", Trials: 2, Seed: seedOf(7)}
	first, deduped, err := s.Submit(spec)
	if err != nil || deduped {
		t.Fatalf("first submit: %v deduped=%v", err, deduped)
	}
	second, deduped, err := s.Submit(spec)
	if err != nil || !deduped {
		t.Fatalf("second submit should coalesce: %v deduped=%v", err, deduped)
	}
	if first.ID != second.ID {
		t.Fatalf("coalesced submission got a fresh job: %s vs %s", first.ID, second.ID)
	}
	// A different spec is its own job.
	other, deduped, err := s.Submit(JobSpec{Experiment: "table6", Trials: 3, Seed: seedOf(7)})
	if err != nil || deduped || other.ID == first.ID {
		t.Fatalf("distinct spec coalesced: %v %v %s", err, deduped, other.ID)
	}
	s.Start()
	s.Close() // drain the three queued jobs
}

// TestEventsStreamNDJSON: the events endpoint replays the full history as
// one JSON object per line, ending at the terminal state.
func TestEventsStreamNDJSON(t *testing.T) {
	_, ts, _ := testServer(t, "")
	st := submit(t, ts, JobSpec{Experiment: "table2", Trials: 2, Seed: seedOf(1)}, http.StatusAccepted)
	await(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected at least queued/running/done events, got %d lines: %q", len(lines), buf.String())
	}
	var last Event
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %q", i, line)
		}
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		last = ev
	}
	if last.State != StateDone {
		t.Fatalf("stream ended on %q, want done", last.State)
	}
}

// TestSubmitValidation: unknown experiments are rejected with the list of
// registered names; malformed shard specs are rejected; results of
// unfinished jobs are refused.
func TestSubmitValidation(t *testing.T) {
	s, ts, _ := testServer(t, "")

	body := []byte(`{"experiment":"fig99"}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var msg struct {
		Error string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&msg)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown experiment returned %d", resp.StatusCode)
	}
	for _, name := range []string{"fig16", "table6"} {
		if !strings.Contains(msg.Error, name) {
			t.Fatalf("rejection should list registered names, got %q", msg.Error)
		}
	}

	// An unseeded spec resolves to the CLI defaults — the byte-identity
	// contract with an unqualified create-bench run — while an explicit
	// seed 0 stays a distinct, honoured seed.
	defaulted, _, err := s.Submit(JobSpec{Experiment: "table2"})
	if err != nil {
		t.Fatal(err)
	}
	if defaulted.Spec.Trials != DefaultTrials || defaulted.Spec.Seed == nil || *defaulted.Spec.Seed != DefaultSeed {
		t.Fatalf("unseeded spec not normalized to the CLI defaults: %+v", defaulted.Spec)
	}
	zeroSeed, zeroDeduped, err := s.Submit(JobSpec{Experiment: "table2", Seed: seedOf(0)})
	if err != nil {
		t.Fatal(err)
	}
	if zeroDeduped || zeroSeed.ID == defaulted.ID || *zeroSeed.Spec.Seed != 0 {
		t.Fatalf("explicit seed 0 collapsed into the default: %+v", zeroSeed)
	}

	if _, _, err := s.Submit(JobSpec{Experiment: "fig19", Shard: "5/3"}); err == nil {
		t.Fatal("bad shard spec accepted")
	}
	// Sharded jobs need a disk-backed cache; this server is memory-only.
	if _, _, err := s.Submit(JobSpec{Experiment: "fig19", Shard: "1/3"}); err == nil {
		t.Fatal("sharded job accepted without a disk cache")
	}

	// Tenant becomes a Prometheus label and a dedupe-key component, so
	// arbitrary client strings are rejected at submit (docs/METRICS.md).
	if _, _, err := s.Submit(JobSpec{Experiment: "fig19", Tenant: "bad tenant!"}); err == nil {
		t.Fatal("tenant with disallowed characters accepted")
	}
	if _, _, err := s.Submit(JobSpec{Experiment: "fig19", Tenant: strings.Repeat("a", maxTenantLen+1)}); err == nil {
		t.Fatal("overlong tenant accepted")
	}

	st := submit(t, ts, JobSpec{Experiment: "fig15", Trials: 4, Seed: seedOf(99)}, http.StatusAccepted)
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict && resp2.StatusCode != http.StatusOK {
		t.Fatalf("unfinished result returned %d", resp2.StatusCode)
	}
	await(t, ts, st.ID)

	if resp, err := http.Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("missing job returned %d", resp.StatusCode)
		}
	}
}

// TestExperimentsListingPlans: the listing covers the whole registry and
// carries usable cache plans at the requested scale.
func TestExperimentsListingPlans(t *testing.T) {
	_, ts, _ := testServer(t, "")
	st := submit(t, ts, JobSpec{Experiment: "fig15", Trials: 4, Seed: seedOf(2026)}, http.StatusAccepted)
	await(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/v1/experiments?trials=4&seed=2026")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Trials      int `json:"trials"`
		Experiments []struct {
			Name string        `json:"name"`
			Plan registry.Plan `json:"plan"`
		} `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Trials != 4 || len(listing.Experiments) != len(registry.Names()) {
		t.Fatalf("listing covers %d experiments at trials=%d", len(listing.Experiments), listing.Trials)
	}
	for _, e := range listing.Experiments {
		if e.Name != "fig15" {
			continue
		}
		if !e.Plan.Free() || e.Plan.Cached != e.Plan.GridPoints {
			t.Fatalf("fig15 just ran at this scale and should plan free: %+v", e.Plan)
		}
		return
	}
	t.Fatal("fig15 missing from the listing")
}

// TestGracefulShutdownDrains: Close finishes queued jobs before returning,
// and later submissions are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1, QueueDepth: 8})

	var sts []JobStatus
	for i := 0; i < 3; i++ {
		st, _, err := s.Submit(JobSpec{Experiment: "table2", Trials: 2, Seed: seedOf(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		sts = append(sts, st)
	}
	s.Start()
	s.Close()

	for _, st := range sts {
		got, ok := s.Job(st.ID)
		if !ok || got.State != StateDone {
			t.Fatalf("job %s not drained: %+v", st.ID, got)
		}
	}
	if _, _, err := s.Submit(JobSpec{Experiment: "table2"}); err != errShuttingDown {
		t.Fatalf("post-shutdown submit: %v", err)
	}
	s.Close() // idempotent
}

// TestFinishedJobRetention: a long-lived daemon forgets its oldest
// terminal jobs past the cap, so memory stays flat; recent jobs remain
// queryable and the listing never dangles.
func TestFinishedJobRetention(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1, QueueDepth: 8, MaxFinishedJobs: 2})

	var ids []string
	for i := 0; i < 4; i++ {
		st, _, err := s.Submit(JobSpec{Experiment: "table2", Trials: 2, Seed: seedOf(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	s.Start()
	s.Close()

	for i, id := range ids {
		_, ok := s.Job(id)
		if want := i >= 2; ok != want {
			t.Fatalf("job %s (index %d) queryable=%v, want %v", id, i, ok, want)
		}
	}
	s.mu.Lock()
	order := append([]string(nil), s.order...)
	s.mu.Unlock()
	if len(order) != 2 {
		t.Fatalf("listing retains %d jobs, want 2", len(order))
	}
	for _, id := range order {
		if _, ok := s.Job(id); !ok {
			t.Fatalf("listing dangles: %s", id)
		}
	}
}

// TestQueueFull: a bounded queue rejects the overflow submission with a
// typed, distinguishable error instead of buffering unboundedly.
func TestQueueFull(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1, QueueDepth: 2})
	// No Start(): the queue only fills.
	for i := 0; i < 2; i++ {
		if _, _, err := s.Submit(JobSpec{Experiment: "table2", Seed: seedOf(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := s.Submit(JobSpec{Experiment: "table2", Seed: seedOf(99)})
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != "queue_full" || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: %v", err)
	}
	if ae.RetryAfterSeconds < 1 {
		t.Fatalf("queue-full rejection carries no backoff hint: %+v", ae)
	}
	s.Start()
	s.Close()
}

// TestServedJobSharesCLICache: a job served by a daemon whose cache dir was
// populated by an earlier (CLI-shaped) run computes nothing — the disk
// cache is the contract between the batch and serving tiers.
func TestServedJobSharesCLICache(t *testing.T) {
	dir := t.TempDir()
	opt := experiments.Options{Trials: 4, Seed: 2026}

	// The "CLI run": a direct library call persisting into dir.
	cliStore, err := cache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	cliEnv := experiments.NewEnv()
	cliEnv.Cache = cliStore
	d, _ := registry.Lookup("fig15")
	var want bytes.Buffer
	d.Run(cliEnv, opt).Render(&want)

	// A fresh daemon over the same dir serves the job without computing.
	_, ts, _ := testServer(t, dir)
	st := submit(t, ts, JobSpec{Experiment: "fig15", Trials: 4, Seed: seedOf(2026)}, http.StatusAccepted)
	st = await(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Cache == nil || st.Cache.Misses != 0 {
		t.Fatalf("daemon recomputed a CLI-cached grid: %+v", st.Cache)
	}
	if got := fetchResult(t, ts, st.ID); !bytes.Equal(got, want.Bytes()) {
		t.Fatal("daemon rendered different bytes than the CLI run")
	}
}

// TestCancelQueuedJob: DELETE on a queued job terminates it immediately,
// releases its dedupe slot, and the worker pool later skips it.
func TestCancelQueuedJob(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1, QueueDepth: 8})
	// No Start(): the job stays queued until we cancel it.
	spec := JobSpec{Experiment: "fig15", Trials: 2, Seed: seedOf(5)}
	st, _, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, changed, err := s.Cancel(st.ID)
	if err != nil || !changed || got.State != StateCanceled {
		t.Fatalf("cancel queued: changed=%v state=%s err=%v", changed, got.State, err)
	}
	// The slot is free: an identical resubmission is a fresh job, not a
	// coalescence onto the canceled one.
	st2, deduped, err := s.Submit(spec)
	if err != nil || deduped || st2.ID == st.ID {
		t.Fatalf("canceled job still coalesces: deduped=%v id=%s err=%v", deduped, st2.ID, err)
	}
	// A second cancel reports no change.
	if _, changed, err := s.Cancel(st.ID); err != nil || changed {
		t.Fatalf("double cancel: changed=%v err=%v", changed, err)
	}
	s.Start()
	s.Close() // drains: the canceled job must be skipped, the fresh one runs
	final, ok := s.Job(st.ID)
	if !ok || final.State != StateCanceled {
		t.Fatalf("canceled job was resurrected: %+v", final)
	}
	if fresh, ok := s.Job(st2.ID); !ok || fresh.State != StateDone {
		t.Fatalf("resubmission did not run: %+v", fresh)
	}
	if _, _, err := s.Cancel("job-999"); err == nil {
		t.Fatal("cancel of a missing job succeeded")
	}
}

// TestCancelRunningJob: DELETE on a running job cancels its context; the
// sweep stops at the next grid-point boundary and the job terminates as
// canceled, not failed — and without computing the rest of its grid.
func TestCancelRunningJob(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1, QueueDepth: 8})
	s.Start()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A grid big enough that cancellation always lands mid-run.
	st := submit(t, ts, JobSpec{Experiment: "fig16", Trials: 6, Seed: seedOf(2026)}, http.StatusAccepted)
	deadline := time.Now().Add(time.Minute)
	for {
		cur, _ := s.Job(st.ID)
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel of a running job returned %d", resp.StatusCode)
	}
	final := await(t, ts, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("canceled job ended %s (%s)", final.State, final.Error)
	}
	if final.Plan != nil && store.Len() >= final.Plan.GridPoints {
		t.Fatalf("cancellation computed the whole grid anyway (%d points)", store.Len())
	}
	// The result endpoint refuses a canceled job.
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusConflict {
		t.Fatalf("canceled result returned %d", rresp.StatusCode)
	}
}

// TestFinishedJobTTL: with a TTL configured, terminal jobs are forgotten
// by age even when the count cap has room.
func TestFinishedJobTTL(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1, QueueDepth: 8,
		MaxFinishedJobs: 100, FinishedJobTTL: 50 * time.Millisecond})
	st, _, err := s.Submit(JobSpec{Experiment: "table2", Trials: 2, Seed: seedOf(1)})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.Job(st.ID); !ok {
			return // expired
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job outlived its TTL")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCacheExportImportEndpoints: a worker's computed entries round-trip
// over POST /v1/cache/export into a second daemon via /v1/cache/import,
// after which the second daemon serves the same spec with zero newly
// computed points — the transfer behind the coordinator's shard pull and
// pre-warm.
func TestCacheExportImportEndpoints(t *testing.T) {
	_, tsA, storeA := testServer(t, t.TempDir())
	st := submit(t, tsA, JobSpec{Experiment: "fig15", Trials: 4, Seed: seedOf(2026)}, http.StatusAccepted)
	st = await(t, tsA, st.ID)
	if st.State != StateDone {
		t.Fatalf("seed job failed: %s", st.Error)
	}
	want := fetchResult(t, tsA, st.ID)

	resp, err := http.Post(tsA.URL+"/v1/cache/export", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("export returned %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var stream bytes.Buffer
	if _, err := stream.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if int64(bytes.Count(stream.Bytes(), []byte("\n"))) != storeA.Misses() {
		t.Fatalf("export carried %d entries, worker computed %d",
			bytes.Count(stream.Bytes(), []byte("\n")), storeA.Misses())
	}

	_, tsB, storeB := testServer(t, t.TempDir())
	iresp, err := http.Post(tsB.URL+"/v1/cache/import", "application/x-ndjson", bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var imported struct {
		Imported int `json:"imported"`
	}
	err = json.NewDecoder(iresp.Body).Decode(&imported)
	iresp.Body.Close()
	if err != nil || iresp.StatusCode != http.StatusOK || imported.Imported == 0 {
		t.Fatalf("import returned %d, landed %d entries, err %v", iresp.StatusCode, imported.Imported, err)
	}

	st2 := submit(t, tsB, JobSpec{Experiment: "fig15", Trials: 4, Seed: seedOf(2026)}, http.StatusAccepted)
	st2 = await(t, tsB, st2.ID)
	if st2.State != StateDone {
		t.Fatalf("replay job failed: %s", st2.Error)
	}
	if st2.Cache == nil || st2.Cache.Misses != 0 {
		t.Fatalf("imported cache did not serve the job: %+v", st2.Cache)
	}
	if got := fetchResult(t, tsB, st2.ID); !bytes.Equal(got, want) {
		t.Fatal("imported replay rendered different bytes")
	}
	if storeB.Misses() != 0 {
		t.Fatalf("second daemon computed %d points", storeB.Misses())
	}

	// A memory-only daemon refuses export (no complete on-disk record) but
	// accepts imports.
	_, tsM, _ := testServer(t, "")
	mresp, err := http.Post(tsM.URL+"/v1/cache/export", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusConflict {
		t.Fatalf("memory-only export returned %d", mresp.StatusCode)
	}

	// A corrupt stream is rejected.
	cresp, err := http.Post(tsB.URL+"/v1/cache/import", "application/x-ndjson",
		strings.NewReader(`{"key":"deadbeef","entry":{"fingerprint":"task=forged","summary":{}}}`))
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forged import returned %d", cresp.StatusCode)
	}
}

// TestTimingRecordEndToEnd: a finished job serves a flat stage-timing
// record with monotonic non-zero stage timestamps and point counts that
// reconcile with its plan; a cache-warm replay attributes every point to
// the cache. Also scrapes /metrics for the families those stages feed.
func TestTimingRecordEndToEnd(t *testing.T) {
	spec := JobSpec{Experiment: "fig19", Trials: 4, Seed: seedOf(2026)}
	_, ts, _ := testServer(t, t.TempDir())

	st := submit(t, ts, spec, http.StatusAccepted)
	st = await(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}

	fetchTiming := func(id string) obs.JobTiming {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/timing")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("timing returned %d", resp.StatusCode)
		}
		var tm obs.JobTiming
		if err := json.NewDecoder(resp.Body).Decode(&tm); err != nil {
			t.Fatal(err)
		}
		return tm
	}

	tm := fetchTiming(st.ID)
	if tm.Job != st.ID || tm.Experiment != "fig19" || tm.Tenant != "default" || tm.Outcome != "done" {
		t.Fatalf("timing identity wrong: %+v", tm)
	}
	stages := []struct {
		name string
		at   time.Time
	}{
		{"queued", tm.QueuedAt}, {"started", tm.StartedAt}, {"planned", tm.PlannedAt},
		{"computed", tm.ComputedAt}, {"rendered", tm.RenderedAt},
	}
	for i, s := range stages {
		if s.at.IsZero() {
			t.Fatalf("stage %s has zero timestamp: %+v", s.name, tm)
		}
		if i > 0 && s.at.Before(stages[i-1].at) {
			t.Fatalf("stage %s precedes %s: %+v", s.name, stages[i-1].name, tm)
		}
	}
	for name, d := range map[string]float64{
		"queue_wait": tm.QueueWaitSeconds, "plan": tm.PlanSeconds,
		"compute": tm.ComputeSeconds, "render": tm.RenderSeconds,
	} {
		if d < 0 {
			t.Errorf("%s duration negative: %v", name, d)
		}
	}
	if tm.TotalSeconds <= 0 {
		t.Errorf("total duration = %v, want > 0", tm.TotalSeconds)
	}
	if st.Plan == nil || tm.GridPoints != st.Plan.GridPoints {
		t.Fatalf("timing grid points %d != plan %+v", tm.GridPoints, st.Plan)
	}
	if tm.CacheHits+tm.ComputedPoints != tm.GridPoints {
		t.Fatalf("cache hits %d + computed %d != grid points %d",
			tm.CacheHits, tm.ComputedPoints, tm.GridPoints)
	}
	if tm.ComputedPoints != tm.GridPoints {
		t.Fatalf("cold run should compute every point: %+v", tm)
	}

	// Replay: every point now comes from cache.
	st2 := submit(t, ts, spec, http.StatusAccepted)
	st2 = await(t, ts, st2.ID)
	tm2 := fetchTiming(st2.ID)
	if tm2.CacheHits != tm2.GridPoints || tm2.ComputedPoints != 0 {
		t.Fatalf("replay should be all cache hits: %+v", tm2)
	}

	// CSV rendering: header plus one row with matching field counts.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/timing?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 || lines[0] != obs.TimingCSVHeader {
		t.Fatalf("csv timing malformed:\n%s", buf.String())
	}
	if got, want := len(strings.Split(lines[1], ",")), len(strings.Split(lines[0], ",")); got != want {
		t.Fatalf("csv row has %d fields, header %d", got, want)
	}

	// The same stages feed /metrics: scrape and check the families.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("metrics content type = %q", ct)
	}
	var mb bytes.Buffer
	if _, err := mb.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`create_jobs_total{experiment="fig19",state="done",tenant="default"} 2`,
		`create_job_stage_seconds_count{stage="compute"} 2`,
		`create_job_points_total{source="computed"} ` + strconv.Itoa(tm.GridPoints),
		`create_job_points_total{source="cache"}`,
		`create_cache_hits_total`,
		`create_cache_misses_total`,
		`create_queue_depth 0`,
		`create_jobs_inflight 0`,
	} {
		if !strings.Contains(mb.String(), want) {
			t.Errorf("metrics missing %q in:\n%s", want, mb.String())
		}
	}
}

// TestTimingUnavailableBeforeTerminal: timing for a queued job is a 409,
// and for an unknown job a 404.
func TestTimingUnavailableBeforeTerminal(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store}) // never Started: jobs stay queued
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _, err := s.Submit(JobSpec{Experiment: "fig19", Trials: 4, Seed: seedOf(7)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/timing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("queued timing returned %d, want 409", resp.StatusCode)
	}
	missing, err := http.Get(ts.URL + "/v1/jobs/nope/timing")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing timing returned %d, want 404", missing.StatusCode)
	}
}

// TestDedupeJoinAndTenantAccounting: a coalesced submission increments the
// dedupe counter and lands in the job's timing record; a different tenant
// never coalesces even with an otherwise identical spec.
func TestDedupeJoinAndTenantAccounting(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store}) // never Started: jobs stay queued

	spec := JobSpec{Experiment: "fig19", Trials: 4, Seed: seedOf(7)}
	st1, dd1, err := s.Submit(spec)
	if err != nil || dd1 {
		t.Fatalf("first submit: dedup=%v err=%v", dd1, err)
	}
	st2, dd2, err := s.Submit(spec)
	if err != nil || !dd2 || st2.ID != st1.ID {
		t.Fatalf("identical live submit should coalesce: dedup=%v id=%s err=%v", dd2, st2.ID, err)
	}
	other := spec
	other.Tenant = "acme"
	st3, dd3, err := s.Submit(other)
	if err != nil || dd3 || st3.ID == st1.ID {
		t.Fatalf("cross-tenant submit must not coalesce: dedup=%v err=%v", dd3, err)
	}

	var b bytes.Buffer
	s.cfg.Metrics.WritePrometheus(&b)
	if want := `create_job_dedupe_joins_total{experiment="fig19",tenant="default"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("metrics missing %q in:\n%s", want, b.String())
	}

	// Cancel the queued job: its timing record exists at terminal state and
	// carries the join count.
	if _, changed, err := s.Cancel(st1.ID); err != nil || !changed {
		t.Fatalf("cancel: changed=%v err=%v", changed, err)
	}
	s.mu.Lock()
	j := s.jobs[st1.ID]
	s.mu.Unlock()
	j.mu.Lock()
	tm := j.timing
	j.mu.Unlock()
	if tm == nil || tm.Outcome != string(StateCanceled) || tm.DedupeJoins != 1 {
		t.Fatalf("canceled-queued timing record wrong: %+v", tm)
	}
	if tm.TotalSeconds != 0 || !tm.StartedAt.IsZero() {
		t.Fatalf("never-started job should have zero stage timestamps: %+v", tm)
	}
}

package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
)

// qjob builds a minimal queued job for direct admission-queue tests.
func qjob(id, tenant string, priority int) *job {
	return &job{id: id, spec: JobSpec{Tenant: tenant, Priority: priority}}
}

// TestAdmissionRoundRobinAndPriority: tenants drain one job per turn in
// arrival-order rotation, and within a tenant higher priority drains
// first with submission order breaking ties — fully deterministic.
func TestAdmissionRoundRobinAndPriority(t *testing.T) {
	a := newAdmission(64, 0, 1)
	for _, j := range []*job{
		qjob("a1", "alpha", 0),
		qjob("a2", "alpha", 5),
		qjob("a3", "alpha", 0),
		qjob("b1", "beta", 0),
		qjob("c1", "gamma", 9),
	} {
		if err := a.enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"a2", "b1", "c1", "a1", "a3"}
	for i, id := range want {
		j, ok := a.dequeue()
		if !ok || j.id != id {
			t.Fatalf("dequeue %d = %v (ok=%v), want %s", i, j, ok, id)
		}
	}
	if a.depth() != 0 {
		t.Fatalf("queue depth %d after draining, want 0", a.depth())
	}
}

// TestAdmissionTenantQuota: the quota counts queued plus running jobs, so
// dequeuing does not free a slot — only release (terminal state) does.
func TestAdmissionTenantQuota(t *testing.T) {
	a := newAdmission(64, 2, 1)
	if err := a.enqueue(qjob("h1", "hog", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.enqueue(qjob("h2", "hog", 0)); err != nil {
		t.Fatal(err)
	}
	err := a.enqueue(qjob("h3", "hog", 0))
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != "tenant_quota" || ae.Status != http.StatusTooManyRequests {
		t.Fatalf("over-quota enqueue: %v", err)
	}
	if ae.RetryAfterSeconds < 1 {
		t.Fatalf("quota rejection has no backoff hint: %+v", ae)
	}
	// Another tenant is unaffected by hog's quota exhaustion.
	if err := a.enqueue(qjob("f1", "friend", 0)); err != nil {
		t.Fatalf("friend tenant rejected alongside hog: %v", err)
	}
	// Dequeue moves h1 from queued to running: still two slots in use.
	if j, ok := a.dequeue(); !ok || j.id != "h1" {
		t.Fatalf("dequeue = %v", j)
	}
	if err := a.enqueue(qjob("h4", "hog", 0)); !errors.As(err, &ae) {
		t.Fatalf("quota freed by dequeue alone: %v", err)
	}
	// Terminal release frees the slot.
	a.release("hog")
	if err := a.enqueue(qjob("h5", "hog", 0)); err != nil {
		t.Fatalf("enqueue after release: %v", err)
	}
}

// TestAdmissionRemove: cancel-while-queued pulls the job and its quota
// slot; removing an already-dequeued job reports false and leaves the
// quota for the worker's release.
func TestAdmissionRemove(t *testing.T) {
	a := newAdmission(64, 1, 1)
	j1 := qjob("j1", "t", 0)
	if err := a.enqueue(j1); err != nil {
		t.Fatal(err)
	}
	if !a.remove(j1) {
		t.Fatal("remove of a queued job reported false")
	}
	if a.depth() != 0 {
		t.Fatalf("depth %d after remove", a.depth())
	}
	// The quota slot was released with it.
	if err := a.enqueue(qjob("j2", "t", 0)); err != nil {
		t.Fatalf("quota slot leaked by remove: %v", err)
	}
	j2, _ := a.dequeue()
	if a.remove(j2) {
		t.Fatal("remove of a dequeued job reported true")
	}
}

// TestQueueFullRetryAfterHTTP (satellite): the 503 a full queue returns
// carries a Retry-After header and a JSON body with a machine-readable
// reason and hint, so the coordinator's backoff can honor it.
func TestQueueFullRetryAfterHTTP(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1, QueueDepth: 1})
	// No Start(): the queue only fills.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitRaw := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := submitRaw(`{"experiment":"table2","seed":1}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	resp = submitRaw(`{"experiment":"table2","seed":2}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("503 carries Retry-After %q, want a positive integer", ra)
	}
	var body struct {
		Error      string `json:"error"`
		Reason     string `json:"reason"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("503 body is not JSON: %v", err)
	}
	if body.Reason != "queue_full" || body.RetryAfter < 1 || body.Error == "" {
		t.Fatalf("503 body = %+v", body)
	}
	s.Start()
	s.Close()
}

// TestTenantQuota429HTTP: an over-quota tenant gets 429 with Retry-After
// while another tenant's submission is admitted, and the rejection lands
// on the admission metrics.
func TestTenantQuota429HTTP(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1, QueueDepth: 8, TenantQuota: 1})
	// No Start(): jobs stay queued, keeping quota accounting deterministic.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submitRaw := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := submitRaw(`{"experiment":"table2","seed":1,"tenant":"hog"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first hog submit: %d", resp.StatusCode)
	}
	resp = submitRaw(`{"experiment":"table2","seed":2,"tenant":"hog"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota hog submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	var body struct {
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Reason != "tenant_quota" {
		t.Fatalf("429 body reason = %q err=%v", body.Reason, err)
	}
	resp.Body.Close()
	resp = submitRaw(`{"experiment":"table2","seed":3,"tenant":"friend"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("friend submit alongside hog's quota exhaustion: %d, want 202", resp.StatusCode)
	}

	reg := s.cfg.Metrics
	if got := reg.Counter("create_admission_rejections_total", "",
		"tenant", "hog", "reason", "tenant_quota").Value(); got != 1 {
		t.Fatalf("admission rejections for hog = %d, want 1", got)
	}
	if got := reg.Gauge("create_tenant_queue_depth", "", "tenant", "friend").Value(); got != 1 {
		t.Fatalf("friend tenant queue depth = %d, want 1", got)
	}
	s.Start()
	s.Close()
	// Drained: per-tenant depth gauges return to zero.
	for _, tenant := range []string{"hog", "friend"} {
		if got := reg.Gauge("create_tenant_queue_depth", "", "tenant", tenant).Value(); got != 0 {
			t.Fatalf("tenant %s queue depth = %d after drain, want 0", tenant, got)
		}
	}
}

// TestPriorityOutOfRange: priorities outside [-100, 100] are a 400-class
// validation error, not an admission rejection.
func TestPriorityOutOfRange(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1})
	defer func() { s.Start(); s.Close() }()
	_, _, err := s.Submit(JobSpec{Experiment: "table2", Seed: seedOf(1), Priority: 101})
	var ae *AdmissionError
	if err == nil || errors.As(err, &ae) {
		t.Fatalf("out-of-range priority: %v", err)
	}
}

// TestCancelRacingResubmit (satellite): DELETE racing identical
// resubmissions — the coordinator's shard-retry pattern — must never leave
// an orphaned dedupe slot, a stuck create_jobs_inflight gauge, or a leaked
// quota slot. Run under -race.
func TestCancelRacingResubmit(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 2, MaxConcurrentJobs: 2, QueueDepth: 32, TenantQuota: 8})
	s.Start()
	defer s.Close()

	for i := 0; i < 25; i++ {
		spec := JobSpec{Experiment: "fig15", Trials: 2, Seed: seedOf(int64(i)), Tenant: "racer"}
		st, _, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		ids := make([]string, 3)
		ids[0] = st.ID
		wg.Add(3)
		go func() {
			defer wg.Done()
			_, _, _ = s.Cancel(st.ID)
		}()
		for k := 1; k <= 2; k++ {
			go func(k int) {
				defer wg.Done()
				if st2, _, err := s.Submit(spec); err == nil {
					ids[k] = st2.ID
				}
			}(k)
		}
		wg.Wait()
		// Every job involved reaches a terminal state.
		deadline := time.Now().Add(30 * time.Second)
		for _, id := range ids {
			if id == "" {
				continue
			}
			for {
				cur, ok := s.Job(id)
				if ok && terminal(cur.State) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("job %s never terminated (state %v)", id, cur.State)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}

	// Quiesce: nothing queued, nothing running, no live dedupe slots, no
	// quota in use — then a fresh identical submission is admitted and runs.
	deadline := time.Now().Add(30 * time.Second)
	for {
		s.mu.Lock()
		live := len(s.byKey)
		s.mu.Unlock()
		if live == 0 && s.metrics.inflight.Value() == 0 && s.adm.depth() == 0 {
			s.adm.mu.Lock()
			inUse := len(s.adm.inUse)
			s.adm.mu.Unlock()
			if inUse == 0 {
				break
			}
		}
		if time.Now().After(deadline) {
			s.adm.mu.Lock()
			inUse := len(s.adm.inUse)
			s.adm.mu.Unlock()
			t.Fatalf("state leaked after cancel/resubmit races: byKey=%d inflight=%d depth=%d inUse=%d",
				live, s.metrics.inflight.Value(), s.adm.depth(), inUse)
		}
		time.Sleep(time.Millisecond)
	}
	st, deduped, err := s.Submit(JobSpec{Experiment: "fig15", Trials: 2, Seed: seedOf(7), Tenant: "racer"})
	if err != nil || deduped {
		t.Fatalf("post-race resubmit: deduped=%v err=%v", deduped, err)
	}
	for {
		cur, _ := s.Job(st.ID)
		if terminal(cur.State) {
			if cur.State != StateDone && cur.State != StateCanceled {
				t.Fatalf("post-race job ended %s: %s", cur.State, cur.Error)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEventKeepalive: an idle events stream emits {"keepalive":true}
// lines at the configured cadence, so stream readers can distinguish a
// long compute from a hung connection.
func TestEventKeepalive(t *testing.T) {
	store, _ := cache.New("")
	env := experiments.NewEnv()
	env.Cache = store
	s := New(Config{Env: env, Store: store, Workers: 1, MaxConcurrentJobs: 1, EventKeepalive: 150 * time.Millisecond})
	// No Start(): the job stays queued, so the stream goes idle after the
	// first event.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st, _, err := s.Submit(JobSpec{Experiment: "table2", Seed: seedOf(1)})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sawKeepalive := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		for sc.Scan() {
			if bytes.Contains(sc.Bytes(), []byte(`"keepalive":true`)) {
				sawKeepalive = true
				// Terminate the stream by canceling the queued job.
				_, _, _ = s.Cancel(st.ID)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("events stream never ended")
	}
	if !sawKeepalive {
		t.Fatal("idle events stream emitted no keepalive line")
	}
	s.Start()
	s.Close()
}

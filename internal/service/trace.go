package service

import (
	"net/http"
	"strconv"
	"time"

	"github.com/embodiedai/create/internal/obs/trace"
)

//create:walltime-ok span construction only arranges timestamps already stamped by the job lifecycle; no clock reads here

// logAttrs is the attribute set every job-path log line carries, joining
// log streams to traces and timing records. The fields it reads are
// immutable after submit, so no lock is needed.
func (j *job) logAttrs() []any {
	return []any{
		"job_id", j.id,
		"trace_id", j.rec.TraceID(),
		"span_id", j.rootSpan,
		"tenant", j.spec.Tenant,
		"experiment", j.spec.Experiment,
	}
}

// buildTraceLocked assembles the job's span tree from the stage
// timestamps run stamped at each boundary — the trace twin of
// buildTimingLocked, called at the same terminal transitions. Caller
// holds j.mu. Span IDs come from the job's recorder counter, so a
// replayed submission sequence produces byte-identical spans; stages the
// job never reached produce no spans.
func (j *job) buildTraceLocked() {
	tid := j.rec.TraceID()
	base := func() map[string]string {
		a := map[string]string{"node": "serve", "job": j.id, "tenant": j.spec.Tenant}
		if j.spec.Shard != "" {
			a["shard"] = j.spec.Shard
		}
		return a
	}

	rootAttrs := base()
	rootAttrs["experiment"] = j.spec.Experiment
	rootAttrs["outcome"] = string(j.state)
	if j.err != "" {
		rootAttrs["error"] = j.err
	}
	j.rec.Record(trace.Span{
		TraceID: tid, SpanID: j.rootSpan, ParentID: j.parent.SpanID,
		Name: "job " + j.spec.Experiment, Start: j.created, End: j.finished,
		Attrs: rootAttrs,
	})

	child := func(name string, start, end time.Time, attrs map[string]string) trace.Span {
		s := trace.Span{
			TraceID: tid, SpanID: j.rec.NewSpanID(), ParentID: j.rootSpan,
			Name: name, Start: start, End: end, Attrs: attrs,
		}
		j.rec.Record(s)
		return s
	}

	// Queue wait: submit to dequeue (or straight to terminal when the job
	// was canceled while queued).
	queueEnd := j.started
	if queueEnd.IsZero() {
		queueEnd = j.finished
	}
	child("queue", j.created, queueEnd, base())

	if !j.started.IsZero() && !j.planned.IsZero() {
		child("plan", j.started, j.planned, base())
	}
	if !j.planned.IsZero() && !j.computed.IsZero() {
		computeAttrs := base()
		if j.plan != nil {
			computeAttrs["grid_points"] = strconv.Itoa(j.plan.GridPoints)
		}
		if j.delta != nil {
			computeAttrs["cache_hits"] = strconv.FormatInt(j.delta.Hits, 10)
			computeAttrs["computed_points"] = strconv.FormatInt(j.delta.Misses, 10)
		}
		compute := child("compute", j.planned, j.computed, computeAttrs)
		if j.spec.Shard != "" {
			// Per-shard compute child: the span a coordinator's stitched
			// timeline shows inside this worker's dispatch lane.
			shard := trace.Span{
				TraceID: tid, SpanID: j.rec.NewSpanID(), ParentID: compute.SpanID,
				Name: "shard " + j.spec.Shard, Start: j.planned, End: j.computed,
				Attrs: computeAttrs,
			}
			j.rec.Record(shard)
		}
	}
	if j.state == StateDone && !j.computed.IsZero() {
		child("render", j.computed, j.finished, base())
	}
}

// handleTrace serves a job's span tree, built exactly once at the
// terminal transition (like /timing, a live job is a 409). Default is
// NDJSON — one span per line, the format the coordinator's shard pull
// consumes — and ?format=chrome emits Chrome trace-event JSON loadable
// in Perfetto or chrome://tracing.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	// timing and trace are built under one critical section at the
	// terminal transition, so timing's presence is the readiness signal.
	ready, state := j.timing != nil, j.state
	j.mu.Unlock()
	if !ready {
		writeError(w, http.StatusConflict, "job is "+string(state)+"; its trace is recorded when it terminates")
		return
	}
	spans := j.rec.Spans()
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = trace.WriteChrome(w, spans)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = trace.WriteNDJSON(w, spans)
}

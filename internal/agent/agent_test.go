package agent

import (
	"math"
	"math/rand"
	"testing"

	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

func flatSeverity() bridge.Severity {
	var s bridge.Severity
	s.BoundBit = 14
	s.Width = 64
	for b := range s.Bits {
		s.Bits[b] = 0.1
	}
	return s
}

func testModels() (*bridge.FaultModel, *bridge.FaultModel) {
	pm := bridge.NewPlannerFaultModel(bridge.JARVIS1PlannerShape)
	cm := bridge.NewControllerFaultModel(bridge.JARVIS1ControllerShape)
	pm.SetSeverityFunc(func(bridge.Protection) bridge.Severity { return flatSeverity() })
	cm.SetSeverityFunc(func(bridge.Protection) bridge.Severity { return flatSeverity() })
	return pm, cm
}

func TestErrorFreeEpisodesSucceed(t *testing.T) {
	for _, task := range world.AllTasks {
		s := RunMany(Config{Task: task, UniformBER: 0, Seed: 42}, 12)
		if s.SuccessRate < 0.8 {
			t.Errorf("%s: error-free success only %.0f%%", task, s.SuccessRate*100)
		}
		if s.SuccessRate > 0 && s.AvgSteps <= 0 {
			t.Errorf("%s: missing step accounting", task)
		}
	}
}

func TestEpisodeDeterministicPerSeed(t *testing.T) {
	cfg := Config{Task: world.TaskStone, UniformBER: 0, Seed: 9}
	a, b := Run(cfg), Run(cfg)
	if a.Success != b.Success || a.Steps != b.Steps {
		t.Fatal("same seed must reproduce the episode")
	}
}

func TestControllerFaultsDegradeMonotonically(t *testing.T) {
	_, cm := testModels()
	prev := 1.1
	for _, ber := range []float64{1e-6, 1e-4, 1e-3} {
		s := RunMany(Config{Task: world.TaskStone, Controller: cm, UniformBER: ber, Seed: 3}, 16)
		if s.SuccessRate > prev+0.15 {
			t.Fatalf("success should not improve with BER: %v at %v", s.SuccessRate, ber)
		}
		prev = s.SuccessRate
	}
}

func TestPlannerFaultsInflateSteps(t *testing.T) {
	pm, _ := testModels()
	clean := RunMany(Config{Task: world.TaskStone, UniformBER: 0, Seed: 5}, 16)
	faulty := RunMany(Config{Task: world.TaskStone, Planner: pm, UniformBER: 1e-8, Seed: 5}, 16)
	if faulty.SuccessRate > 0.2 && faulty.AvgSteps < clean.AvgSteps {
		t.Fatalf("planner faults should inflate steps: %v vs %v", faulty.AvgSteps, clean.AvgSteps)
	}
	if faulty.CorruptedCount() == 0 {
		t.Fatal("no subtasks corrupted at BER 1e-8")
	}
}

func TestADProtectionHelps(t *testing.T) {
	_, cm := testModels()
	ber := 3e-4
	bare := RunMany(Config{Task: world.TaskStone, Controller: cm, UniformBER: ber, Seed: 7}, 16)
	ad := RunMany(Config{Task: world.TaskStone, Controller: cm,
		ControlProt: bridge.Protection{AD: true}, UniformBER: ber, Seed: 7}, 16)
	if ad.SuccessRate < bare.SuccessRate {
		t.Fatalf("AD should not hurt: %v vs %v", ad.SuccessRate, bare.SuccessRate)
	}
	if ad.SuccessRate < 0.8 {
		t.Fatalf("AD controller should hold at %v: %v", ber, ad.SuccessRate)
	}
}

func TestStepLimitEnforced(t *testing.T) {
	_, cm := testModels()
	// Hopeless error rate: the episode must stop exactly at the limit.
	r := Run(Config{Task: world.TaskIron, Controller: cm, UniformBER: 0.1, Seed: 11, StepLimit: 500})
	if r.Success {
		t.Fatal("cannot succeed at BER 0.1")
	}
	if r.Steps != 500 {
		t.Fatalf("step limit not enforced: %d", r.Steps)
	}
}

func TestReplanOnStall(t *testing.T) {
	pm, _ := testModels()
	// Heavy planner corruption forces nonsense subtasks and replans.
	r := Run(Config{Task: world.TaskWooden, Planner: pm, UniformBER: 1e-7, Seed: 13})
	if r.PlannerInvocations < 2 && !r.Success {
		t.Fatalf("stalled episode should have replanned: %d invocations", r.PlannerInvocations)
	}
}

func TestVoltageModeUsesTimingModel(t *testing.T) {
	_, cm := testModels()
	tm := timing.Default()
	high := RunMany(Config{Task: world.TaskStone, Controller: cm, UniformBER: VoltageMode,
		Timing: tm, ControllerVoltage: 0.88, Seed: 17}, 12)
	low := RunMany(Config{Task: world.TaskStone, Controller: cm, UniformBER: VoltageMode,
		Timing: tm, ControllerVoltage: 0.65, Seed: 17}, 12)
	if low.SuccessRate > high.SuccessRate {
		t.Fatalf("lower voltage should not help: %v vs %v", low.SuccessRate, high.SuccessRate)
	}
	if _, ok := high.StepsAtMV[880]; !ok {
		t.Fatal("voltage histogram missing the 880 mV bucket")
	}
}

func TestVSPolicyTracksEntropy(t *testing.T) {
	_, cm := testModels()
	cfg := Config{
		Task:       world.TaskLog,
		Controller: cm,
		UniformBER: VoltageMode,
		Timing:     timing.Default(),
		VSPolicy: func(h float64) float64 {
			if h > 2 {
				return 0.70
			}
			return 0.85
		},
		VSInterval: 1,
		Trace:      true,
		Seed:       19,
	}
	r := Run(cfg)
	sawLow, sawHigh := false, false
	for i := range r.VoltageTrace {
		if r.VoltageTrace[i] == 0.70 {
			sawLow = true
			if r.EntropyTrace[i] < 1 {
				// Prediction noise can flip borderline steps, but a
				// low-entropy execute step at the low rail should be rare;
				// tolerate only mild noise via the predictor model.
				continue
			}
		}
		if r.VoltageTrace[i] == 0.85 {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Fatalf("policy never switched rails: low=%v high=%v", sawLow, sawHigh)
	}
	if len(r.StepsAtMV) < 2 {
		t.Fatal("voltage histogram should have both rails")
	}
}

func TestVSIntervalGranularity(t *testing.T) {
	_, cm := testModels()
	base := Config{
		Task:       world.TaskLog,
		Controller: cm,
		UniformBER: VoltageMode,
		Timing:     timing.Default(),
		VSPolicy:   func(h float64) float64 { return 0.70 + 0.01*math.Mod(h, 2) },
		Trace:      true,
		Seed:       23,
	}
	base.VSInterval = 20
	r := Run(base)
	// With interval 20 the voltage may only change every 20 steps.
	for i := 1; i < len(r.VoltageTrace); i++ {
		if i%20 != 0 && r.VoltageTrace[i] != r.VoltageTrace[i-1] {
			t.Fatalf("voltage changed off-interval at step %d", i)
		}
	}
}

func TestNoisyOracleClampsAtZero(t *testing.T) {
	oracle := NoisyOracle(1.0)
	rng := newTestRand()
	for i := 0; i < 100; i++ {
		if oracle(0.05, rng) < 0 {
			t.Fatal("predicted entropy must be non-negative")
		}
	}
}

func TestOverridesTakePriority(t *testing.T) {
	pm, cm := testModels()
	cfg := Config{
		Task:                      world.TaskWooden,
		Planner:                   pm,
		Controller:                cm,
		UniformBER:                0.5, // would be catastrophic...
		PlannerCorruptOverride:    func() float64 { return 0 },
		ControllerCorruptOverride: func(float64) float64 { return 0 },
		Seed:                      29,
	}
	r := Run(cfg)
	if !r.Success {
		t.Fatal("overrides forcing zero corruption should make the episode clean")
	}
	if r.CorruptedActions != 0 || r.CorruptedSubtasks != 0 {
		t.Fatal("override leaked corruption")
	}
}

// CorruptedCount sums subtask corruption across trials for assertions.
func (s Summary) CorruptedCount() int {
	n := 0
	for _, r := range s.Results {
		n += r.CorruptedSubtasks
	}
	return n
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

package agent

import (
	"reflect"
	"testing"

	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// determinismConfigs covers the distinct RNG-consuming code paths: clean
// episodes, uniform-BER controller faults, planner faults, and the
// voltage-scaled path with entropy prediction and tracing.
func determinismConfigs() map[string]Config {
	pm, cm := testModels()
	return map[string]Config{
		"clean": {Task: world.TaskWooden, UniformBER: 0, Seed: 42},
		"controller-uniform": {Task: world.TaskStone, Controller: cm,
			UniformBER: 3e-4, ControlProt: bridge.Protection{AD: true}, Seed: 7},
		"planner-uniform": {Task: world.TaskStone, Planner: pm, UniformBER: 1e-8, Seed: 5},
		"voltage-scaled": {Task: world.TaskLog, Controller: cm, UniformBER: VoltageMode,
			Timing: timing.Default(), Trace: true, Seed: 19,
			VSPolicy: func(h float64) float64 {
				if h > 2 {
					return 0.70
				}
				return 0.85
			}},
	}
}

// TestRunManyParallelDeterminism is the regression gate for the parallel
// engine: for every config and any worker count, RunManyWorkers must return
// a Summary deeply identical to the serial path — same Results order, same
// StepsAtMV histogram, same float aggregates bit for bit.
func TestRunManyParallelDeterminism(t *testing.T) {
	const trials = 8
	for name, cfg := range determinismConfigs() {
		serial := RunManyWorkers(cfg, trials, 1)
		for _, workers := range []int{2, 3, trials, 0} {
			parallel := RunManyWorkers(cfg, trials, workers)
			if !reflect.DeepEqual(serial, parallel) {
				t.Errorf("%s: workers=%d diverged from serial\nserial:   %+v\nparallel: %+v",
					name, workers, serial, parallel)
			}
		}
	}
}

// TestRunManyMatchesRunMany pins the public entry point to the engine: the
// parallel-by-default RunMany must agree with the explicit serial path.
func TestRunManyMatchesRunMany(t *testing.T) {
	cfg := Config{Task: world.TaskStone, UniformBER: 0, Seed: 31}
	if got, want := RunMany(cfg, 6), RunManyWorkers(cfg, 6, 1); !reflect.DeepEqual(got, want) {
		t.Fatalf("RunMany != serial RunManyWorkers\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestSeedStability pins the RNG stream itself: these exact rates were
// produced by the seed implementation, and any refactor that perturbs seed
// derivation (cfg.Seed + t*7919), RNG consumption order, or aggregation
// must fail here rather than silently drifting every figure.
func TestSeedStability(t *testing.T) {
	_, cm := testModels()
	clean := RunManyWorkers(Config{Task: world.TaskWooden, UniformBER: 0, Seed: 42}, 16, 0)
	faulty := RunManyWorkers(Config{Task: world.TaskStone, Controller: cm,
		UniformBER: 2e-4, Seed: 7}, 16, 0)
	if clean.SuccessRate != 1.0 || clean.AvgSteps != 102.8125 {
		t.Errorf("clean wooden@seed42 = (%v, %v), want pinned (1.0, 102.8125)",
			clean.SuccessRate, clean.AvgSteps)
	}
	if faulty.SuccessRate != 0.5 || faulty.AvgSteps != 8421.375 {
		t.Errorf("faulty stone@seed7 = (%v, %v), want pinned (0.5, 8421.375)",
			faulty.SuccessRate, faulty.AvgSteps)
	}
}

// TestPlannerVoltageMVSetOnce guards the aggregation bugfix: the summary's
// planner supply is a config property, not "whatever trial finished last".
func TestPlannerVoltageMVSetOnce(t *testing.T) {
	s := RunManyWorkers(Config{Task: world.TaskWooden, UniformBER: 0,
		PlannerVoltage: 0.85, Seed: 3}, 5, 0)
	if s.PlannerVoltageMV != 850 {
		t.Fatalf("PlannerVoltageMV = %d, want 850", s.PlannerVoltageMV)
	}
	for i, r := range s.Results {
		if r.PlannerVoltageMV != 850 {
			t.Fatalf("trial %d PlannerVoltageMV = %d, want 850", i, r.PlannerVoltageMV)
		}
	}
}

package agent

import (
	"reflect"
	"testing"

	"github.com/embodiedai/create/internal/world"
)

// runWithConfigs is the configuration class mix of the single-episode loops
// this API replaces: characterize's traced clean episodes (Fig7Stages),
// predictor's traced stone-task sweeps (OracleR2), and the fault-injected
// voltage-scaled steady workload.
func runWithConfigs() []Config {
	return []Config{
		{Task: world.TaskLog, UniformBER: 0, Trace: true, Seed: 41},
		{Task: world.TaskStone, UniformBER: 0, Trace: true, Seed: 2026},
		steadyConfig(),
	}
}

// TestRunWithMatchesRun: pooled scratch must be byte-identical to fresh
// scratch for every configuration class, even when the scratch is dirty
// from episodes of a different config.
func TestRunWithMatchesRun(t *testing.T) {
	sc := NewScratch()
	// Dirty the scratch with an unrelated episode first.
	RunWith(Config{Task: world.TaskWool, Seed: 7}, sc)
	for i, cfg := range runWithConfigs() {
		fresh := Run(cfg)
		pooled := RunWith(cfg, sc)
		if !reflect.DeepEqual(fresh, pooled) {
			t.Fatalf("config %d: RunWith diverged from Run\nfresh:  %+v\npooled: %+v", i, fresh, pooled)
		}
	}
}

// TestRunnerMatchesRun: a Runner's seed sweep must reproduce per-call Run
// with the same seeds, sharing one corruption table and scratch throughout.
func TestRunnerMatchesRun(t *testing.T) {
	for i, cfg := range runWithConfigs() {
		runner := NewRunner(cfg)
		for t2 := 0; t2 < 3; t2++ {
			seed := cfg.Seed + int64(t2)*31
			want := func() Result { c := cfg; c.Seed = seed; return Run(c) }()
			got := runner.RunSeed(seed)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("config %d seed %d: Runner diverged\nwant: %+v\ngot:  %+v", i, seed, want, got)
			}
		}
	}
}

package agent

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// steadyConfig is the allocation test's workload: a voltage-scaled,
// fault-injected iron episode — the configuration class that exercises every
// hot-path component at once (expert decisions, shared softmax, VS predictor
// draws, corruption lookups, histogram updates, world stepping). The replan
// limit is effectively disabled so the measured window cannot cross a
// planner invocation (which allocates a fresh plan by design), and iron's
// long horizon keeps the episode mid-flight for the whole window.
func steadyConfig() Config {
	_, cm := testModels()
	return Config{
		Task:        world.TaskIron,
		Controller:  cm,
		ControlProt: bridge.Protection{AD: true},
		UniformBER:  VoltageMode,
		Timing:      timing.Default(),
		VSPolicy:    policy.Default.Func(),
		VSLevels:    policy.Default.VoltageLevels(),
		ReplanLimit: 1 << 30,
		Seed:        2026,
	}
}

// TestStepLoopZeroAllocs locks the steady-state episode step loop at zero
// allocations per step. It warms an episode past its lazy initialization
// (scratch buffers, histogram buckets, corruption table hits), then measures
// a mid-episode window. Any regression — a fresh logit slice, a second
// softmax, a map touch in the histogram — fails here before it can slow
// every sweep above.
func TestStepLoopZeroAllocs(t *testing.T) {
	cfg := steadyConfig().withDefaults()
	table := newCorruptTable(cfg)
	sc := newRunScratch()
	ep := startEpisode(cfg, table, sc)
	for i := 0; i < 500; i++ {
		if ep.step() {
			t.Fatal("episode finished during warmup; pick a longer task")
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		ep.step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state step loop allocates %.1f objects/step, want 0", allocs)
	}
}

// TestRunScratchReuseByteIdentical runs the same trial twice on one scratch
// (dirty from an unrelated episode in between) and demands identical
// results — the reuse contract every buffer in runScratch must honour.
func TestRunScratchReuseByteIdentical(t *testing.T) {
	cfg := steadyConfig().withDefaults()
	cfg.ReplanLimit = DefaultReplanLimit
	cfg.StepLimit = 1500
	table := newCorruptTable(cfg)
	fresh := runEpisode(cfg, table, newRunScratch())

	sc := newRunScratch()
	dirty := cfg
	dirty.Task = world.TaskWool
	dirty.Seed = 99
	runEpisode(dirty, newCorruptTable(dirty), sc)
	reused := runEpisode(cfg, table, sc)
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("scratch reuse diverged\nfresh:  %+v\nreused: %+v", fresh, reused)
	}
}

// summaryHash canonically hashes a Summary: JSON marshalling sorts map keys
// and renders floats at full round-trip precision, so the hash pins every
// aggregate, per-trial result, histogram bucket, and trace byte.
func summaryHash(s Summary) string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// goldenSummaryHashes pins RunMany's exact output for every determinism
// config, captured on the pre-scratch-buffer implementation (PR 5's seed).
// The zero-allocation refactor — shared softmax, reused worlds/experts,
// precomputed corruption tables, indexed voltage histograms — must
// reproduce these byte-for-byte; a mismatch means an optimization changed
// RNG stream consumption or float accumulation order and every published
// figure silently drifted. See PERFORMANCE.md for the bit-identity rules.
var goldenSummaryHashes = map[string]string{
	"clean":              "8955a54572eb25859ac13070a0d9db33a7edc0f070c8abe9768e36174aac9fd0",
	"controller-uniform": "ae209058c0e6ad876e1d04ec51d0f12330e8a2be5cc70618cab68a0cfe3355ca",
	"planner-uniform":    "dbf0812b4122a48a24267579b30bfc1cce084c18cc70d8e2a373d11452dba6f9",
	"voltage-scaled":     "e12860a2a28f64d00848fda9950d0b6b477e07c53dd9b37925f5d098e8f9a731",
}

func TestSummaryGoldenHashes(t *testing.T) {
	for name, cfg := range determinismConfigs() {
		got := summaryHash(RunManyWorkers(cfg, 8, 1))
		if want := goldenSummaryHashes[name]; got != want {
			t.Errorf("%s: summary hash %s, want golden %s — episode bytes changed", name, got, want)
		}
	}
}

// TestVSLevelsHintDoesNotChangeOutcomes: VSLevels only moves where q is
// computed (shared table vs per-episode fallback), never what it is.
func TestVSLevelsHintDoesNotChangeOutcomes(t *testing.T) {
	_, cm := testModels()
	base := Config{
		Task: world.TaskLog, Controller: cm, UniformBER: VoltageMode,
		Timing: timing.Default(), Seed: 19,
		VSPolicy: func(h float64) float64 {
			if h > 2 {
				return 0.70
			}
			return 0.85
		},
	}
	hinted := base
	hinted.VSLevels = []float64{0.70, 0.85}
	want := RunManyWorkers(base, 6, 1)
	got := RunManyWorkers(hinted, 6, 1)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("VSLevels hint changed episode outcomes")
	}
	// Declarations colliding on one mv key coexist in the table (hits
	// require exact float64 equality) — same outcomes.
	collided := hinted
	collided.VSLevels = []float64{0.70, 0.85, 0.85000000000000064}
	if got := RunManyWorkers(collided, 6, 1); !reflect.DeepEqual(want, got) {
		t.Fatal("colliding VSLevels declaration changed episode outcomes")
	}

	// The policy returning an *undeclared* voltage whose mv key collides
	// with a declared one must compute q at the returned float, not serve
	// the declared level's tabulated q: first-seen-wins at the actual
	// voltage, with or without the hint.
	offGrid := base
	offGrid.VSPolicy = func(h float64) float64 {
		if h > 2 {
			return 0.70
		}
		return 0.85000000000000064 // mv 850, distinct float from 0.85
	}
	wantOff := RunManyWorkers(offGrid, 6, 1)
	hintedOff := offGrid
	hintedOff.VSLevels = []float64{0.70, 0.85}
	if got := RunManyWorkers(hintedOff, 6, 1); !reflect.DeepEqual(wantOff, got) {
		t.Fatal("mv-colliding undeclared policy voltage resolved through the table")
	}
}

// TestDiscardResultsKeepsAggregates: the memory-saving option must change
// nothing but the retained slice.
func TestDiscardResultsKeepsAggregates(t *testing.T) {
	cfg := Config{Task: world.TaskWooden, UniformBER: 0, Seed: 42}
	full := RunManyOpts(cfg, 6, RunOptions{Workers: 1})
	lean := RunManyOpts(cfg, 6, RunOptions{Workers: 1, DiscardResults: true})
	if lean.Results != nil {
		t.Fatal("DiscardResults retained the per-trial slice")
	}
	full.Results = nil
	if !reflect.DeepEqual(full, lean) {
		t.Fatalf("aggregates diverged\nfull: %+v\nlean: %+v", full, lean)
	}
}

// BenchmarkStepLoop measures the steady-state per-step cost of the episode
// engine — the figure-of-merit the zero-allocation refactor targets. When
// b.N outlasts the episode (it completes around step 940), the episode is
// restarted off the clock: stepping a finished episode is a trivial
// success short-circuit and would understate the real per-step cost.
func BenchmarkStepLoop(b *testing.B) {
	cfg := steadyConfig().withDefaults()
	table := newCorruptTable(cfg)
	sc := newRunScratch()
	warm := func() *episode {
		ep := startEpisode(cfg, table, sc)
		for i := 0; i < 500; i++ {
			ep.step()
		}
		return ep
	}
	ep := warm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ep.step() {
			b.StopTimer()
			ep = warm()
			b.StartTimer()
		}
	}
}

// BenchmarkEpisode measures a whole episode including per-trial reset on a
// reused scratch (the RunMany inner unit).
func BenchmarkEpisode(b *testing.B) {
	cfg := steadyConfig().withDefaults()
	cfg.StepLimit = 2000
	table := newCorruptTable(cfg)
	sc := newRunScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		runEpisode(cfg, table, sc)
	}
}

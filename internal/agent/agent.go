// Package agent is the episode runtime: it orchestrates the planner and
// controller in the JARVIS-1 execution paradigm (Sec. 2.1) — the planner
// decomposes the task into subtasks, the controller grounds each subtask
// into per-step actions, a subtask that stalls for ReplanLimit steps
// re-invokes the planner, and the episode fails outright at StepLimit steps.
//
// Faults enter through two hooks driven by the bridge's fault models:
// planner invocations corrupt plan subtasks, and controller steps corrupt
// sampled actions. Voltage scaling (Sec. 5.3) modulates the controller's
// corruption probability and is captured per step for energy accounting.
//
// The step loop is the hottest code in the repository — every layer above
// it (parallel trials, cached sweeps, serving, distributed dispatch)
// multiplies its cost — so it is written to be allocation-free in steady
// state: the softmax is computed once per step into a reused probability
// buffer (entropy and the sampled action both derive from it), the expert's
// logits and the world live in per-worker scratch, the controller
// corruption table is precomputed once per RunMany call, and the voltage
// histogram is a compact indexed structure converted to the public map
// shape only at the Result boundary. Every reuse path is bit-identical to
// the allocating one (see PERFORMANCE.md for the rules future optimizations
// must obey).
package agent

import (
	"math"
	"math/rand"

	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/planner"
	"github.com/embodiedai/create/internal/sim"
	"github.com/embodiedai/create/internal/tensor"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// Paper execution limits (Sec. 2.1): a subtask stalling for ReplanLimit
// steps re-invokes the planner; the task fails at StepLimit total steps.
const (
	DefaultReplanLimit = 600
	DefaultStepLimit   = 12000
	DefaultVSInterval  = 5
)

// Config describes one episode setup.
type Config struct {
	Task world.TaskName

	// Fault models (bridge-anchored). Nil models mean error-free execution.
	Planner     *bridge.FaultModel
	Controller  *bridge.FaultModel
	PlannerProt bridge.Protection
	ControlProt bridge.Protection

	// Error condition. If UniformBER >= 0 both models see the uniform error
	// model at that BER (Sec. 4 characterization). Set it to -1 (or use
	// VoltageMode) for voltage-driven per-bit rates through Timing (Sec. 6
	// evaluation).
	UniformBER        float64
	Timing            *timing.Model
	PlannerVoltage    float64
	ControllerVoltage float64

	// VSPolicy, when set, maps predicted entropy to the controller voltage
	// (autonomy-adaptive voltage scaling). It overrides ControllerVoltage.
	VSPolicy func(predictedEntropy float64) float64
	// VSLevels optionally declares the voltages VSPolicy can return. It is
	// purely a performance hint: when set, the controller corruption table
	// is precomputed at exactly these supply values (plus the nominal
	// start) once per RunMany call and shared read-only across all trials,
	// instead of being derived lazily per episode. A voltage the policy
	// returns that is not declared here falls back to the per-episode lazy
	// cache, so an incomplete (or absent) declaration only costs speed,
	// never correctness — and the hint is deliberately not part of the
	// cache fingerprint.
	VSLevels []float64
	// VSInterval is the number of steps between voltage updates (Fig. 15).
	VSInterval int
	// PredictEntropy estimates the step's error-free entropy before
	// execution. Nil uses NoisyOracle(0.34), matching the trained
	// predictor's accuracy (R^2 ~ 0.92, Fig. 14).
	PredictEntropy func(trueEntropy float64, rng *rand.Rand) float64

	ReplanLimit, StepLimit int

	// Overrides let alternative protection techniques (DMR, ThUnderVolt,
	// ABFT — Sec. 6.10) supply their own corruption probabilities instead of
	// the CREATE fault models.
	ControllerCorruptOverride func(voltage float64) float64
	PlannerCorruptOverride    func() float64

	// Trace records per-step entropy/voltage/phase when set (Figs. 10, 14b).
	Trace bool

	Seed int64
}

// withDefaults fills the zero-value knobs exactly the way Run historically
// did, so the episode engine below can assume a fully resolved config.
func (cfg Config) withDefaults() Config {
	if cfg.ReplanLimit == 0 {
		cfg.ReplanLimit = DefaultReplanLimit
	}
	if cfg.StepLimit == 0 {
		cfg.StepLimit = DefaultStepLimit
	}
	if cfg.VSInterval == 0 {
		cfg.VSInterval = DefaultVSInterval
	}
	if cfg.PredictEntropy == nil {
		cfg.PredictEntropy = NoisyOracle(0.34)
	}
	if cfg.PlannerVoltage == 0 {
		cfg.PlannerVoltage = timing.VNominal
	}
	if cfg.ControllerVoltage == 0 {
		cfg.ControllerVoltage = timing.VNominal
	}
	return cfg
}

// Result summarizes one episode.
type Result struct {
	Success bool
	Steps   int

	PlannerInvocations int
	// PlannerVoltageMV is the planner's supply during the episode.
	PlannerVoltageMV int
	// StepsAtMV histograms controller steps by supply millivolts — the
	// input to energy accounting.
	StepsAtMV map[int]int

	CorruptedSubtasks int
	CorruptedActions  int

	// Traces, populated when Config.Trace is set.
	EntropyTrace   []float64
	PredictedTrace []float64
	VoltageTrace   []float64
	PhaseTrace     []world.Phase
}

// NoisyOracle returns an entropy predictor with Gaussian error sigma — the
// behavioural stand-in for the trained CNN+MLP predictor when episodes must
// run fast. Sigma 0.34 reproduces the R^2 = 0.92 accuracy of Fig. 14.
func NoisyOracle(sigma float64) func(float64, *rand.Rand) float64 {
	return func(h float64, rng *rand.Rand) float64 {
		p := h + rng.NormFloat64()*sigma //create:rng-reviewed one Gaussian error draw per prediction; its stream position anchors the traced predictor dataset (Fig. 14)
		if p < 0 {
			p = 0
		}
		return p
	}
}

// ---------------------------------------------------------------------------
// Shared per-config state (hoisted out of the per-trial path).

// corruptTable is the controller's voltage -> corruption-probability lookup,
// precomputed once per RunMany call from the voltages the config declares it
// can visit (the constant supply, or nominal plus VSLevels) and shared
// read-only by every trial. It replaces recomputing the fault-model
// composition per episode — through the bridge's severity mutex — with a
// per-config tabulation.
//
// A hit requires the *exact* float64 supply to match a declared one, not
// just its millivolt key: q is then bit-identical to computing it at that
// voltage, so declaring levels can never change a result. Episode-level
// semantics (the legacy first-seen-wins per-mv cache) live in stepCorrupt,
// which consults this table only the first time an episode sees an mv key.
type corruptTable struct {
	vs  []float64
	mvs []int
	qs  []float64
}

// newCorruptTable tabulates q at every declared voltage of a resolved
// config. Undeclared voltages (a VSPolicy without VSLevels, or a policy
// returning something outside its declaration) miss the table and are
// computed lazily by the episode with legacy semantics.
func newCorruptTable(cfg Config) *corruptTable {
	var vs []float64
	if cfg.VSPolicy == nil {
		vs = []float64{cfg.ControllerVoltage}
	} else {
		// The episode starts at nominal until the first prediction; the
		// policy's reachable set is its declared levels.
		vs = make([]float64, 0, len(cfg.VSLevels)+1)
		vs = append(vs, timing.VNominal)
		vs = append(vs, cfg.VSLevels...)
	}
	t := &corruptTable{}
	for _, v := range vs {
		if _, ok := t.lookup(mv(v), v); ok {
			continue // duplicate declaration of the same supply
		}
		t.vs = append(t.vs, v)
		t.mvs = append(t.mvs, mv(v))
		t.qs = append(t.qs, cfg.controllerCorruptProb(v))
	}
	return t
}

// lookup returns the tabulated q for an exactly matching declared supply.
// The table is tiny (one entry per declared voltage level), so a linear
// scan beats hashing.
//
//create:zeroalloc
func (t *corruptTable) lookup(key int, v float64) (float64, bool) {
	for i, k := range t.mvs {
		if k == key && t.vs[i] == v {
			return t.qs[i], true
		}
	}
	return 0, false
}

// mvHist is the compact per-episode voltage histogram: parallel mv/count
// slices with a most-recent-bucket fast path (the voltage changes at most
// every VSInterval steps, so almost every add hits the previous bucket).
// It exists so the steady-state step loop never touches a Go map; the
// public Result keeps its map shape via toMap at the episode boundary.
type mvHist struct {
	mvs    []int
	counts []int
	last   int
}

//create:zeroalloc
func (h *mvHist) reset() {
	h.mvs = h.mvs[:0]
	h.counts = h.counts[:0]
	h.last = -1
}

//create:zeroalloc
func (h *mvHist) add(key int) {
	if h.last >= 0 && h.mvs[h.last] == key {
		h.counts[h.last]++
		return
	}
	for i, k := range h.mvs {
		if k == key {
			h.counts[i]++
			h.last = i
			return
		}
	}
	h.mvs = append(h.mvs, key) //create:alloc-ok amortized: a distinct mv key appends once, and reset keeps both backing arrays across episodes
	h.counts = append(h.counts, 1)
	h.last = len(h.mvs) - 1
}

// toMap converts to the public Result/energy-accounting shape. Always
// non-nil, matching the historical always-allocated map.
func (h *mvHist) toMap() map[int]int {
	m := make(map[int]int, len(h.mvs))
	for i, k := range h.mvs {
		m[k] = h.counts[i]
	}
	return m
}

// runScratch is one worker's reusable episode state: the world, the expert
// (each fully reseeded per trial), the shared step probability buffer, the
// voltage histogram, and the episode's corruption cache. sim.MapWith hands
// each worker goroutine exactly one of these, so buffer reuse composes with
// parallelism without locks.
type runScratch struct {
	rng    *rand.Rand
	w      *world.World
	expert *world.Expert
	probs  []float32
	hist   mvHist
	// qmvs/qvals is the per-episode corruption cache (reset per trial):
	// first-seen-wins per mv key, exactly the legacy lazy map but on
	// reusable slices.
	qmvs  []int
	qvals []float64
	ep    episode
}

func newRunScratch() *runScratch {
	return &runScratch{
		rng:   rand.New(rand.NewSource(0)),
		probs: make([]float32, world.NumActions),
	}
}

// ---------------------------------------------------------------------------
// Episode engine.

// episode is one in-flight episode over a worker's scratch. Its step method
// is the steady-state hot loop and is allocation-free (locked by the
// TestStepLoopZeroAllocs regression gate).
type episode struct {
	cfg   Config
	table *corruptTable
	sc    *runScratch
	spec  world.TaskSpec

	res            Result
	plan           []world.Subtask
	stepsInSubtask int
	voltage        float64

	// Index of the episode corruption cache's most recently used bucket:
	// between VS updates the voltage is constant, so nearly every step
	// short-circuits on it. -1 = nothing resolved yet.
	lastQIdx int
}

// Run executes one episode.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	return runEpisode(cfg, newCorruptTable(cfg), newRunScratch())
}

// Scratch is a reusable single-episode arena for callers that issue many
// Run-style calls in a loop: world, expert, probability buffer, histogram
// and episode cache are reset — not reallocated — per episode. It is the
// single-episode face of the RunMany worker scratch; byte-identity of reuse
// is locked by TestRunWithMatchesRun. A Scratch must not be shared between
// concurrent episodes.
type Scratch struct {
	rs *runScratch
}

// NewScratch returns an empty arena; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{rs: newRunScratch()} }

// RunWith is Run on a caller-owned Scratch: byte-identical results, none of
// the per-call scratch allocation.
func RunWith(cfg Config, sc *Scratch) Result {
	cfg = cfg.withDefaults()
	return runEpisode(cfg, newCorruptTable(cfg), sc.rs)
}

// Runner executes seed sweeps of one configuration. It resolves the config
// and composes the fault-model corruption table once — the table depends
// only on the config's voltage/error-model fields, never the seed — and
// reuses a Scratch across episodes, so loops that previously paid
// newCorruptTable + newRunScratch per trial pay them once.
type Runner struct {
	cfg   Config
	table *corruptTable
	sc    *runScratch
}

// NewRunner builds a Runner for cfg with its own private Scratch.
func NewRunner(cfg Config) *Runner { return NewRunnerWith(cfg, NewScratch()) }

// NewRunnerWith builds a Runner for cfg on a shared Scratch, so several
// sequential sweeps can ride one arena.
func NewRunnerWith(cfg Config, sc *Scratch) *Runner {
	cfg = cfg.withDefaults()
	return &Runner{cfg: cfg, table: newCorruptTable(cfg), sc: sc.rs}
}

// RunSeed plays one episode of the Runner's configuration at seed,
// byte-identical to agent.Run of the same config with that seed.
func (r *Runner) RunSeed(seed int64) Result {
	cfg := r.cfg
	cfg.Seed = seed
	return runEpisode(cfg, r.table, r.sc)
}

// runEpisode plays one episode on a worker's scratch. cfg must be resolved
// (withDefaults) and carry its per-config corruption table.
func runEpisode(cfg Config, table *corruptTable, sc *runScratch) Result {
	ep := startEpisode(cfg, table, sc)
	for ep.res.Steps < cfg.StepLimit {
		if ep.step() {
			break
		}
	}
	ep.res.StepsAtMV = sc.hist.toMap()
	ep.plan = nil // drop the last plan's backing array until the next trial
	return ep.res
}

// startEpisode resets the scratch for cfg and plays the opening planner
// invocation, returning the episode ready to step. Split from runEpisode so
// the allocation-regression test can measure a mid-episode step window.
func startEpisode(cfg Config, table *corruptTable, sc *runScratch) *episode {
	sc.rng.Seed(cfg.Seed) //create:rng-reviewed per-trial rewind: the agent stream restarts from cfg.Seed so every trial is a function of its seed alone
	spec := world.Specs[cfg.Task]
	if sc.w == nil {
		sc.w = world.New(spec.Biome, cfg.Seed+1)
	} else {
		sc.w.Reset(spec.Biome, cfg.Seed+1)
	}
	if sc.expert == nil {
		sc.expert = world.NewExpert(cfg.Seed + 2)
	} else {
		sc.expert.Reseed(cfg.Seed + 2)
	}
	sc.hist.reset()
	sc.qmvs = sc.qmvs[:0]
	sc.qvals = sc.qvals[:0]

	ep := &sc.ep
	*ep = episode{cfg: cfg, table: table, sc: sc, spec: spec, lastQIdx: -1}
	ep.res = Result{PlannerVoltageMV: mv(cfg.PlannerVoltage)}
	if cfg.Trace {
		// Traced episodes historically regrew four slices thousands of
		// times via append; one up-front allocation each replaces that. The
		// capacity is clamped: short traced episodes (OracleR2's clean
		// calibration runs finish in a few hundred steps) should not pay
		// four StepLimit-sized buffers, and past the clamp a long trace
		// costs only a couple of amortized doublings. The slices are
		// returned in the Result, so they cannot live in scratch.
		traceCap := cfg.StepLimit
		if traceCap > 4096 {
			traceCap = 4096
		}
		ep.res.EntropyTrace = make([]float64, 0, traceCap)
		ep.res.PredictedTrace = make([]float64, 0, traceCap)
		ep.res.VoltageTrace = make([]float64, 0, traceCap)
		ep.res.PhaseTrace = make([]world.Phase, 0, traceCap)
	}

	ep.plan = invokePlanner(cfg, sc.w, sc.rng, &ep.res)
	ep.voltage = cfg.ControllerVoltage
	if cfg.VSPolicy != nil {
		ep.voltage = timing.VNominal // until the first prediction
	}
	return ep
}

// step advances the episode by one controller step (or replans), returning
// true once the task is complete. It is the allocation-free hot loop; the
// only allocating paths are planner invocations (plan construction) and
// trace capture growth, both excluded from steady state.
//
//create:zeroalloc
func (ep *episode) step() (done bool) {
	cfg, sc, w, spec := &ep.cfg, ep.sc, ep.sc.w, &ep.spec

	// Finished plan but task incomplete (corrupted plan): replan.
	for len(ep.plan) > 0 && ep.plan[0].Done(w) {
		ep.plan = ep.plan[1:]
		ep.stepsInSubtask = 0
	}
	if w.Count(spec.Goal) >= spec.Count {
		ep.res.Success = true
		return true
	}
	if len(ep.plan) == 0 || ep.stepsInSubtask >= cfg.ReplanLimit {
		ep.plan = invokePlanner(*cfg, w, sc.rng, &ep.res)
		ep.stepsInSubtask = 0
		if len(ep.plan) == 0 {
			// Planner believes everything is done but the goal is not
			// reached; burn a step exploring to avoid a live-lock.
			ep.plan = []world.Subtask{{Kind: world.Nonsense}} //create:alloc-ok live-lock fallback: allocates only when the planner returns an empty plan, never in steady state
		}
	}
	goal := ep.plan[0]

	dec := sc.expert.Decide(w, goal)
	// One softmax per step: entropy and the sampled action both derive from
	// this probability vector. The arithmetic (SoftmaxInto, EntropyOfProbs,
	// SampleFromProbs) matches the historical Decision.Entropy +
	// Decision.Sample double computation bit for bit — same max
	// subtraction, same float64 accumulation order, same single
	// rng.Float64() draw.
	probs := tensor.SoftmaxInto(sc.probs, dec.Logits)
	needEntropy := cfg.Trace || (cfg.VSPolicy != nil && ep.res.Steps%cfg.VSInterval == 0)
	var entropy float64
	if needEntropy {
		// Entropy is consumed only by the VS predictor and traces; skipping
		// it elsewhere touches no RNG stream, so bytes cannot change.
		entropy = tensor.EntropyOfProbs(probs)
	}

	// Autonomy-adaptive voltage scaling: update every VSInterval steps
	// from the pre-execution entropy prediction (Sec. 5.3).
	if cfg.VSPolicy != nil && ep.res.Steps%cfg.VSInterval == 0 {
		ep.voltage = cfg.VSPolicy(cfg.PredictEntropy(entropy, sc.rng))
	}

	action := world.Action(tensor.SampleFromProbs(probs, sc.rng))
	q := ep.stepCorrupt(ep.voltage)
	if q > 0 && sc.rng.Float64() < q { //create:rng-reviewed corrupt gate short-circuits on q==0 so clean steps draw nothing; the resample below consumes exactly one more draw when the gate fires
		action = world.Action(sc.rng.Intn(world.NumActions))
		ep.res.CorruptedActions++
	}
	w.Step(action, dec.Goal)

	sc.hist.add(mv(ep.voltage))
	ep.res.Steps++
	ep.stepsInSubtask++

	if cfg.Trace {
		ep.res.EntropyTrace = append(ep.res.EntropyTrace, entropy) //create:alloc-ok tracing is diagnostic (Figs. 10, 14b), not the steady-state benchmark path
		// On VS-update steps this is a second predictor draw for the same
		// entropy. Reusing the VS path's value would skip one NormFloat64
		// and shift every subsequent draw in the stream — changing the
		// published bytes of every traced artifact (Fig. 10, Fig. 14's
		// dataset and tracking trace) — so the draw deliberately stays.
		ep.res.PredictedTrace = append(ep.res.PredictedTrace, cfg.PredictEntropy(entropy, sc.rng)) //create:alloc-ok tracing is diagnostic, not the steady-state benchmark path
		ep.res.VoltageTrace = append(ep.res.VoltageTrace, ep.voltage)
		ep.res.PhaseTrace = append(ep.res.PhaseTrace, dec.Phase) //create:alloc-ok tracing is diagnostic, not the steady-state benchmark path
	}
	return false
}

// stepCorrupt resolves the controller corruption probability at voltage v
// with exactly the legacy per-episode semantics: one first-seen-wins cache
// keyed by millivolts, whose first resolution for a key is q at the first
// voltage seen under it. The only difference is where that first q comes
// from — the shared per-config table when the voltage exactly matches a
// declared supply (bit-identical to computing it), a fresh computation
// otherwise — so neither the table nor the VSLevels hint can ever change
// an episode's bytes.
//
//create:zeroalloc
func (ep *episode) stepCorrupt(v float64) float64 {
	sc := ep.sc
	key := mv(v)
	if ep.lastQIdx >= 0 && sc.qmvs[ep.lastQIdx] == key {
		return sc.qvals[ep.lastQIdx]
	}
	for i, k := range sc.qmvs {
		if k == key {
			ep.lastQIdx = i
			return sc.qvals[i]
		}
	}
	q, ok := ep.table.lookup(key, v)
	if !ok {
		q = ep.cfg.controllerCorruptProb(v)
	}
	sc.qmvs = append(sc.qmvs, key) //create:alloc-ok amortized: one append per distinct mv key per episode, worker scratch keeps the capacity
	sc.qvals = append(sc.qvals, q)
	ep.lastQIdx = len(sc.qmvs) - 1
	return q
}

// VoltageMode is the UniformBER sentinel selecting voltage-driven error
// rates.
const VoltageMode = -1

// controllerCorruptProb resolves the per-step action corruption probability
// for the configured error condition at voltage v.
func (cfg Config) controllerCorruptProb(v float64) float64 {
	if cfg.ControllerCorruptOverride != nil {
		return cfg.ControllerCorruptOverride(v)
	}
	if cfg.Controller == nil {
		return 0
	}
	if cfg.UniformBER >= 0 {
		return cfg.Controller.CorruptProbAtBER(cfg.UniformBER, cfg.ControlProt)
	}
	return cfg.Controller.CorruptProbAtVoltage(cfg.Timing, v, cfg.ControlProt)
}

// plannerSubtaskCorruptProb resolves the per-plan-line corruption
// probability of a planner invocation (the planner fault model's unit is
// one subtask line, ~planner.TokensPerSubtask decoded tokens).
func (cfg Config) plannerSubtaskCorruptProb() float64 {
	if cfg.PlannerCorruptOverride != nil {
		return cfg.PlannerCorruptOverride()
	}
	if cfg.Planner == nil {
		return 0
	}
	if cfg.UniformBER >= 0 {
		return cfg.Planner.CorruptProbAtBER(cfg.UniformBER, cfg.PlannerProt)
	}
	return cfg.Planner.CorruptProbAtVoltage(cfg.Timing, cfg.PlannerVoltage, cfg.PlannerProt)
}

// invokePlanner produces a (possibly corrupted) plan for the current state.
func invokePlanner(cfg Config, w *world.World, rng *rand.Rand, res *Result) []world.Subtask {
	res.PlannerInvocations++
	plan := planner.Golden(cfg.Task, w)
	pSub := cfg.plannerSubtaskCorruptProb()
	if pSub <= 0 {
		return plan
	}
	corrupted := planner.Corrupt(plan, pSub, rng)
	for i := range plan {
		if corrupted[i] != plan[i] {
			res.CorruptedSubtasks++
		}
	}
	return corrupted
}

//create:zeroalloc
func mv(v float64) int { return int(math.Round(v * 1000)) }

// Summary aggregates repeated episodes (the paper repeats every trial >= 100
// times; Sec. 6.9 studies the repetition count).
type Summary struct {
	Trials      int
	SuccessRate float64
	// AvgSteps is the mean step count among successful trials (the paper's
	// "average steps" metric).
	AvgSteps float64
	// AvgPlannerInvocations and StepsAtMV aggregate energy inputs across all
	// trials (failed trials count at full execution, Sec. 6.1).
	AvgPlannerInvocations float64
	StepsAtMV             map[int]int
	PlannerVoltageMV      int
	Results               []Result
}

// RunOptions tune a RunMany invocation without touching the episode
// semantics.
type RunOptions struct {
	// Workers bounds the trial fan-out: <= 0 selects runtime.GOMAXPROCS(0),
	// 1 is the fully serial path.
	Workers int
	// DiscardResults drops the per-trial Result slice once the Summary
	// aggregates are computed. Sweeps that only read aggregates (every
	// experiments grid job) would otherwise retain trials x grid-points
	// Result structs — including their StepsAtMV maps and any traces — for
	// the lifetime of the sweep.
	DiscardResults bool
}

// RunMany executes trials episodes with distinct seeds and aggregates them,
// fanning trials out over all schedulable cores. Per-trial seeds are pure
// functions of the trial index (cfg.Seed + t*7919), so the parallel schedule
// cannot perturb any episode, and aggregation runs over the index-ordered
// result slice — the Summary is bit-for-bit identical to a serial loop (see
// TestRunManyParallelDeterminism).
func RunMany(cfg Config, trials int) Summary {
	return RunManyOpts(cfg, trials, RunOptions{})
}

// RunManyWorkers is RunMany with an explicit parallelism knob: workers <= 0
// selects runtime.GOMAXPROCS(0), workers == 1 is the fully serial path.
func RunManyWorkers(cfg Config, trials, workers int) Summary {
	return RunManyOpts(cfg, trials, RunOptions{Workers: workers})
}

// RunManyOpts is the full-control entry point behind RunMany and
// RunManyWorkers. Per-config work — default resolution and the controller
// corruption table — happens exactly once here and is shared read-only by
// every trial; per-worker scratch (world, expert, buffers) rides through
// sim.MapWith, so steady-state trials allocate nothing but their Results.
func RunManyOpts(cfg Config, trials int, o RunOptions) Summary {
	cfg = cfg.withDefaults()
	table := newCorruptTable(cfg)
	s := Summary{Trials: trials, StepsAtMV: make(map[int]int)}
	s.Results = sim.MapWith(trials, o.Workers, newRunScratch, func(t int, sc *runScratch) Result {
		c := cfg
		c.Seed = cfg.Seed + int64(t)*7919
		return runEpisode(c, table, sc)
	})
	successes := 0
	var stepSum, planSum float64
	for t, r := range s.Results {
		if r.Success {
			successes++
			stepSum += float64(r.Steps)
		}
		planSum += float64(r.PlannerInvocations)
		for mv, n := range r.StepsAtMV {
			s.StepsAtMV[mv] += n
		}
		// The planner supply is a config-level property shared by every
		// trial; set it once and assert the invariant rather than letting
		// whichever trial aggregates last win.
		if t == 0 {
			s.PlannerVoltageMV = r.PlannerVoltageMV
		} else if r.PlannerVoltageMV != s.PlannerVoltageMV {
			panic("agent: PlannerVoltageMV diverged across trials of one config")
		}
	}
	s.SuccessRate = float64(successes) / float64(trials)
	if successes > 0 {
		s.AvgSteps = stepSum / float64(successes)
	}
	s.AvgPlannerInvocations = planSum / float64(trials)
	if o.DiscardResults {
		s.Results = nil
	}
	return s
}

// Package agent is the episode runtime: it orchestrates the planner and
// controller in the JARVIS-1 execution paradigm (Sec. 2.1) — the planner
// decomposes the task into subtasks, the controller grounds each subtask
// into per-step actions, a subtask that stalls for ReplanLimit steps
// re-invokes the planner, and the episode fails outright at StepLimit steps.
//
// Faults enter through two hooks driven by the bridge's fault models:
// planner invocations corrupt plan subtasks, and controller steps corrupt
// sampled actions. Voltage scaling (Sec. 5.3) modulates the controller's
// corruption probability and is captured per step for energy accounting.
package agent

import (
	"math"
	"math/rand"

	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/planner"
	"github.com/embodiedai/create/internal/sim"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// Paper execution limits (Sec. 2.1): a subtask stalling for ReplanLimit
// steps re-invokes the planner; the task fails at StepLimit total steps.
const (
	DefaultReplanLimit = 600
	DefaultStepLimit   = 12000
	DefaultVSInterval  = 5
)

// Config describes one episode setup.
type Config struct {
	Task world.TaskName

	// Fault models (bridge-anchored). Nil models mean error-free execution.
	Planner     *bridge.FaultModel
	Controller  *bridge.FaultModel
	PlannerProt bridge.Protection
	ControlProt bridge.Protection

	// Error condition. If UniformBER >= 0 both models see the uniform error
	// model at that BER (Sec. 4 characterization). Set it to -1 (or use
	// VoltageMode) for voltage-driven per-bit rates through Timing (Sec. 6
	// evaluation).
	UniformBER        float64
	Timing            *timing.Model
	PlannerVoltage    float64
	ControllerVoltage float64

	// VSPolicy, when set, maps predicted entropy to the controller voltage
	// (autonomy-adaptive voltage scaling). It overrides ControllerVoltage.
	VSPolicy func(predictedEntropy float64) float64
	// VSInterval is the number of steps between voltage updates (Fig. 15).
	VSInterval int
	// PredictEntropy estimates the step's error-free entropy before
	// execution. Nil uses NoisyOracle(0.34), matching the trained
	// predictor's accuracy (R^2 ~ 0.92, Fig. 14).
	PredictEntropy func(trueEntropy float64, rng *rand.Rand) float64

	ReplanLimit, StepLimit int

	// Overrides let alternative protection techniques (DMR, ThUnderVolt,
	// ABFT — Sec. 6.10) supply their own corruption probabilities instead of
	// the CREATE fault models.
	ControllerCorruptOverride func(voltage float64) float64
	PlannerCorruptOverride    func() float64

	// Trace records per-step entropy/voltage/phase when set (Figs. 10, 14b).
	Trace bool

	Seed int64
}

// Result summarizes one episode.
type Result struct {
	Success bool
	Steps   int

	PlannerInvocations int
	// PlannerVoltageMV is the planner's supply during the episode.
	PlannerVoltageMV int
	// StepsAtMV histograms controller steps by supply millivolts — the
	// input to energy accounting.
	StepsAtMV map[int]int

	CorruptedSubtasks int
	CorruptedActions  int

	// Traces, populated when Config.Trace is set.
	EntropyTrace   []float64
	PredictedTrace []float64
	VoltageTrace   []float64
	PhaseTrace     []world.Phase
}

// NoisyOracle returns an entropy predictor with Gaussian error sigma — the
// behavioural stand-in for the trained CNN+MLP predictor when episodes must
// run fast. Sigma 0.34 reproduces the R^2 = 0.92 accuracy of Fig. 14.
func NoisyOracle(sigma float64) func(float64, *rand.Rand) float64 {
	return func(h float64, rng *rand.Rand) float64 {
		p := h + rng.NormFloat64()*sigma
		if p < 0 {
			p = 0
		}
		return p
	}
}

// Run executes one episode.
func Run(cfg Config) Result {
	if cfg.ReplanLimit == 0 {
		cfg.ReplanLimit = DefaultReplanLimit
	}
	if cfg.StepLimit == 0 {
		cfg.StepLimit = DefaultStepLimit
	}
	if cfg.VSInterval == 0 {
		cfg.VSInterval = DefaultVSInterval
	}
	if cfg.PredictEntropy == nil {
		cfg.PredictEntropy = NoisyOracle(0.34)
	}
	if cfg.PlannerVoltage == 0 {
		cfg.PlannerVoltage = timing.VNominal
	}
	if cfg.ControllerVoltage == 0 {
		cfg.ControllerVoltage = timing.VNominal
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	spec := world.Specs[cfg.Task]
	w := world.New(spec.Biome, cfg.Seed+1)
	expert := world.NewExpert(cfg.Seed + 2)

	res := Result{StepsAtMV: make(map[int]int), PlannerVoltageMV: mv(cfg.PlannerVoltage)}

	// Per-voltage controller corruption cache (the fault-model composition
	// is deterministic per voltage).
	qCache := map[int]float64{}
	stepCorrupt := func(v float64) float64 {
		key := mv(v)
		if q, ok := qCache[key]; ok {
			return q
		}
		q := cfg.controllerCorruptProb(v)
		qCache[key] = q
		return q
	}

	plan := invokePlanner(cfg, w, rng, &res)
	goal := world.Subtask{}
	stepsInSubtask := 0
	voltage := cfg.ControllerVoltage
	if cfg.VSPolicy != nil {
		voltage = timing.VNominal // until the first prediction
	}

	for res.Steps < cfg.StepLimit {
		// Finished plan but task incomplete (corrupted plan): replan.
		for len(plan) > 0 && plan[0].Done(w) {
			plan = plan[1:]
			stepsInSubtask = 0
		}
		if w.Count(spec.Goal) >= spec.Count {
			res.Success = true
			return res
		}
		if len(plan) == 0 || stepsInSubtask >= cfg.ReplanLimit {
			plan = invokePlanner(cfg, w, rng, &res)
			stepsInSubtask = 0
			if len(plan) == 0 {
				// Planner believes everything is done but the goal is not
				// reached; burn a step exploring to avoid a live-lock.
				plan = []world.Subtask{{Kind: world.Nonsense}}
			}
		}
		goal = plan[0]

		dec := expert.Decide(w, goal)
		entropy := dec.Entropy()

		// Autonomy-adaptive voltage scaling: update every VSInterval steps
		// from the pre-execution entropy prediction (Sec. 5.3).
		if cfg.VSPolicy != nil && res.Steps%cfg.VSInterval == 0 {
			voltage = cfg.VSPolicy(cfg.PredictEntropy(entropy, rng))
		}

		action := dec.Sample(rng)
		q := stepCorrupt(voltage)
		if q > 0 && rng.Float64() < q {
			action = world.Action(rng.Intn(world.NumActions))
			res.CorruptedActions++
		}
		w.Step(action, dec.Goal)

		res.StepsAtMV[mv(voltage)]++
		res.Steps++
		stepsInSubtask++

		if cfg.Trace {
			res.EntropyTrace = append(res.EntropyTrace, entropy)
			res.PredictedTrace = append(res.PredictedTrace, cfg.PredictEntropy(entropy, rng))
			res.VoltageTrace = append(res.VoltageTrace, voltage)
			res.PhaseTrace = append(res.PhaseTrace, dec.Phase)
		}
	}
	return res
}

// VoltageMode is the UniformBER sentinel selecting voltage-driven error
// rates.
const VoltageMode = -1

// controllerCorruptProb resolves the per-step action corruption probability
// for the configured error condition at voltage v.
func (cfg Config) controllerCorruptProb(v float64) float64 {
	if cfg.ControllerCorruptOverride != nil {
		return cfg.ControllerCorruptOverride(v)
	}
	if cfg.Controller == nil {
		return 0
	}
	if cfg.UniformBER >= 0 {
		return cfg.Controller.CorruptProbAtBER(cfg.UniformBER, cfg.ControlProt)
	}
	return cfg.Controller.CorruptProbAtVoltage(cfg.Timing, v, cfg.ControlProt)
}

// plannerSubtaskCorruptProb resolves the per-plan-line corruption
// probability of a planner invocation (the planner fault model's unit is
// one subtask line, ~planner.TokensPerSubtask decoded tokens).
func (cfg Config) plannerSubtaskCorruptProb() float64 {
	if cfg.PlannerCorruptOverride != nil {
		return cfg.PlannerCorruptOverride()
	}
	if cfg.Planner == nil {
		return 0
	}
	if cfg.UniformBER >= 0 {
		return cfg.Planner.CorruptProbAtBER(cfg.UniformBER, cfg.PlannerProt)
	}
	return cfg.Planner.CorruptProbAtVoltage(cfg.Timing, cfg.PlannerVoltage, cfg.PlannerProt)
}

// invokePlanner produces a (possibly corrupted) plan for the current state.
func invokePlanner(cfg Config, w *world.World, rng *rand.Rand, res *Result) []world.Subtask {
	res.PlannerInvocations++
	plan := planner.Golden(cfg.Task, w)
	pSub := cfg.plannerSubtaskCorruptProb()
	if pSub <= 0 {
		return plan
	}
	corrupted := planner.Corrupt(plan, pSub, rng)
	for i := range plan {
		if corrupted[i] != plan[i] {
			res.CorruptedSubtasks++
		}
	}
	return corrupted
}

func mv(v float64) int { return int(math.Round(v * 1000)) }

// Summary aggregates repeated episodes (the paper repeats every trial >= 100
// times; Sec. 6.9 studies the repetition count).
type Summary struct {
	Trials      int
	SuccessRate float64
	// AvgSteps is the mean step count among successful trials (the paper's
	// "average steps" metric).
	AvgSteps float64
	// AvgPlannerInvocations and StepsAtMV aggregate energy inputs across all
	// trials (failed trials count at full execution, Sec. 6.1).
	AvgPlannerInvocations float64
	StepsAtMV             map[int]int
	PlannerVoltageMV      int
	Results               []Result
}

// RunMany executes trials episodes with distinct seeds and aggregates them,
// fanning trials out over all schedulable cores. Per-trial seeds are pure
// functions of the trial index (cfg.Seed + t*7919), so the parallel schedule
// cannot perturb any episode, and aggregation runs over the index-ordered
// result slice — the Summary is bit-for-bit identical to a serial loop (see
// TestRunManyParallelDeterminism).
func RunMany(cfg Config, trials int) Summary {
	return RunManyWorkers(cfg, trials, 0)
}

// RunManyWorkers is RunMany with an explicit parallelism knob: workers <= 0
// selects runtime.GOMAXPROCS(0), workers == 1 is the fully serial path.
func RunManyWorkers(cfg Config, trials, workers int) Summary {
	s := Summary{Trials: trials, StepsAtMV: make(map[int]int)}
	s.Results = sim.Map(trials, workers, func(t int) Result {
		c := cfg
		c.Seed = cfg.Seed + int64(t)*7919
		return Run(c)
	})
	successes := 0
	var stepSum, planSum float64
	for t, r := range s.Results {
		if r.Success {
			successes++
			stepSum += float64(r.Steps)
		}
		planSum += float64(r.PlannerInvocations)
		for mv, n := range r.StepsAtMV {
			s.StepsAtMV[mv] += n
		}
		// The planner supply is a config-level property shared by every
		// trial; set it once and assert the invariant rather than letting
		// whichever trial aggregates last win.
		if t == 0 {
			s.PlannerVoltageMV = r.PlannerVoltageMV
		} else if r.PlannerVoltageMV != s.PlannerVoltageMV {
			panic("agent: PlannerVoltageMV diverged across trials of one config")
		}
	}
	s.SuccessRate = float64(successes) / float64(trials)
	if successes > 0 {
		s.AvgSteps = stepSum / float64(successes)
	}
	s.AvgPlannerInvocations = planSum / float64(trials)
	return s
}

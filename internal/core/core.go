// Package core integrates the three CREATE techniques into a deployable
// configuration — the paper's primary contribution (Sec. 5):
//
//   - AD, anomaly detection and clearance, guards both models at the
//     circuit level (Sec. 5.1);
//   - WR, weight-rotation-enhanced planning, hardens the LLM planner at the
//     model level (Sec. 5.2);
//   - VS, autonomy-adaptive voltage scaling, drives the controller's supply
//     from predicted action-logit entropy at the application level
//     (Sec. 5.3).
//
// The paper's deployment rule is AD+WR on the planner and AD+VS on the
// controller, with the planner at the lowest quality-preserving static
// voltage and the controller under a searched entropy-to-voltage policy.
package core

import (
	"math"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/ldo"
	"github.com/embodiedai/create/internal/platforms"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/power"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// Config selects which CREATE techniques are active and how the system is
// supplied.
type Config struct {
	// AD enables anomaly detection and clearance on both models.
	AD bool
	// WR enables weight-rotation-enhanced planning (planner only).
	WR bool
	// VS enables autonomy-adaptive voltage scaling with Policy (nil means
	// policy.Default); when disabled the controller runs at
	// ControllerVoltage.
	VS     bool
	Policy *policy.Mapping

	// PlannerVoltage / ControllerVoltage are the static supplies (defaults:
	// nominal). Under VS the controller voltage acts as the policy ceiling.
	PlannerVoltage    float64
	ControllerVoltage float64

	Trials int
	Seed   int64
}

// Nominal is the all-protections-off, nominal-voltage configuration.
func Nominal() Config {
	return Config{PlannerVoltage: timing.VNominal, ControllerVoltage: timing.VNominal}
}

// Full is the complete CREATE stack at an aggressive supply.
func Full(v float64) Config {
	return Config{AD: true, WR: true, VS: true, PlannerVoltage: v, ControllerVoltage: v}
}

// System is a configured embodied AI deployment: the JARVIS-1-shaped
// planner/controller pair on the voltage-scaled accelerator.
type System struct {
	Timing     *timing.Model
	Power      *power.Model
	LDO        *ldo.LDO
	Planner    *bridge.FaultModel
	Controller *bridge.FaultModel
}

// NewSystem builds the default system.
func NewSystem() *System {
	return &System{
		Timing:     timing.Default(),
		Power:      power.Default(),
		LDO:        ldo.Default(),
		Planner:    platforms.JARVIS1Planner.FaultModel(),
		Controller: platforms.JARVIS1Controller.FaultModel(),
	}
}

// Report summarizes a task evaluation under one configuration.
type Report struct {
	Task               world.TaskName
	SuccessRate        float64
	AvgSteps           float64
	EnergyJ            float64
	EffectiveVoltage   float64
	PlannerInvocations float64
}

// Run evaluates a task under the configuration.
func (s *System) Run(task world.TaskName, cfg Config) Report {
	if cfg.Trials == 0 {
		cfg.Trials = 100
	}
	if cfg.PlannerVoltage == 0 {
		cfg.PlannerVoltage = timing.VNominal
	}
	if cfg.ControllerVoltage == 0 {
		cfg.ControllerVoltage = timing.VNominal
	}
	ac := agent.Config{
		Task:              task,
		Planner:           s.Planner,
		Controller:        s.Controller,
		PlannerProt:       bridge.Protection{AD: cfg.AD, WR: cfg.WR},
		ControlProt:       bridge.Protection{AD: cfg.AD},
		UniformBER:        agent.VoltageMode,
		Timing:            s.Timing,
		PlannerVoltage:    s.LDO.Quantize(cfg.PlannerVoltage),
		ControllerVoltage: s.LDO.Quantize(cfg.ControllerVoltage),
		Seed:              cfg.Seed,
	}
	if cfg.VS {
		m := policy.Default
		if cfg.Policy != nil {
			m = *cfg.Policy
		}
		// Closure and VSLevels declaration share one quantize-then-ceiling
		// transform (VoltageLevelsWith), so the corruption table is built
		// once per Run from exactly the closure's image.
		ceiling := ac.ControllerVoltage
		xform := func(pv float64) float64 {
			v := s.LDO.Quantize(pv)
			if v > ceiling {
				v = ceiling
			}
			return v
		}
		ac.VSPolicy = func(h float64) float64 { return xform(m.Voltage(h)) }
		ac.VSLevels = m.VoltageLevelsWith(xform)
	}
	sum := agent.RunMany(ac, cfg.Trials)

	spec := power.EpisodeSpec{
		PlannerMACsPerCall: platforms.JARVIS1Planner.MACs(),
		ControllerMACsStep: platforms.JARVIS1Controller.MACs(),
	}
	if cfg.VS {
		spec.PredictorMACsStep = platforms.EntropyPredictor.MACs()
	}
	energy := s.Power.EpisodeEnergy(spec, sum.AvgPlannerInvocations*float64(sum.Trials),
		sum.PlannerVoltageMV, sum.StepsAtMV) / float64(sum.Trials)

	return Report{
		Task:               task,
		SuccessRate:        sum.SuccessRate,
		AvgSteps:           sum.AvgSteps,
		EnergyJ:            energy,
		EffectiveVoltage:   s.Power.EffectiveVoltage(sum.StepsAtMV),
		PlannerInvocations: sum.AvgPlannerInvocations,
	}
}

// MinimalVoltage searches the supply (in 25 mV steps) minimizing per-task
// energy subject to preserving at least `floor` of the nominal success rate
// — the Fig. 16(b) procedure. Lowering the voltage past the optimum raises
// error-induced step counts faster than the per-step energy falls (the
// Fig. 1(d) inversion), so the search is by energy among quality-preserving
// points.
func (s *System) MinimalVoltage(task world.TaskName, cfg Config, floor float64) (vmin float64, nominal, best Report) {
	nomCfg := cfg
	nomCfg.PlannerVoltage = timing.VNominal
	nomCfg.ControllerVoltage = timing.VNominal
	nominal = s.Run(task, nomCfg)
	target := nominal.SuccessRate * floor

	vmin = timing.VNominal
	best = nominal
	for v := 0.875; v >= timing.VMin-1e-9; v -= 0.025 {
		c := cfg
		c.PlannerVoltage = v
		c.ControllerVoltage = v
		r := s.Run(task, c)
		if r.SuccessRate+1e-12 < target {
			break
		}
		if r.EnergyJ < best.EnergyJ {
			vmin, best = math.Round(v*1000)/1000, r
		}
	}
	return vmin, nominal, best
}

// Saving is the fractional computational energy saving of `to` versus
// `from`.
func Saving(from, to Report) float64 {
	if from.EnergyJ == 0 {
		return 0
	}
	return 1 - to.EnergyJ/from.EnergyJ
}

package core

import (
	"testing"

	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

func TestNominalRunSucceeds(t *testing.T) {
	sys := NewSystem()
	cfg := Nominal()
	cfg.Trials = 12
	r := sys.Run(world.TaskStone, cfg)
	if r.SuccessRate < 0.9 {
		t.Fatalf("nominal success %.2f", r.SuccessRate)
	}
	if r.EnergyJ <= 0 || r.AvgSteps <= 0 {
		t.Fatalf("missing metrics: %+v", r)
	}
	if r.EffectiveVoltage != timing.VNominal {
		t.Fatalf("nominal effective voltage %v", r.EffectiveVoltage)
	}
}

func TestUnprotectedCollapsesAtLowVoltage(t *testing.T) {
	sys := NewSystem()
	cfg := Config{PlannerVoltage: 0.75, ControllerVoltage: 0.75, Trials: 12}
	r := sys.Run(world.TaskStone, cfg)
	if r.SuccessRate > 0.2 {
		t.Fatalf("unprotected at 0.75V should collapse: %.2f", r.SuccessRate)
	}
}

func TestFullStackSurvivesLowVoltageAndSaves(t *testing.T) {
	sys := NewSystem()
	nom := Nominal()
	nom.Trials = 12
	baseline := sys.Run(world.TaskStone, nom)

	full := Full(0.75)
	full.Trials = 12
	protected := sys.Run(world.TaskStone, full)
	if protected.SuccessRate < baseline.SuccessRate-0.1 {
		t.Fatalf("CREATE at 0.75V lost quality: %.2f vs %.2f",
			protected.SuccessRate, baseline.SuccessRate)
	}
	if s := Saving(baseline, protected); s < 0.1 {
		t.Fatalf("CREATE saving only %.1f%%", s*100)
	}
	if protected.EffectiveVoltage >= baseline.EffectiveVoltage {
		t.Fatal("effective voltage did not drop")
	}
}

func TestMinimalVoltageSearch(t *testing.T) {
	sys := NewSystem()
	cfg := Full(timing.VNominal)
	cfg.Trials = 10
	vmin, nominal, best := sys.MinimalVoltage(world.TaskCoal, cfg, 0.9)
	if vmin >= timing.VNominal {
		t.Fatalf("search found no headroom: vmin=%v", vmin)
	}
	if best.EnergyJ > nominal.EnergyJ {
		t.Fatal("optimum must not exceed nominal energy")
	}
	if best.SuccessRate < nominal.SuccessRate*0.9-1e-9 {
		t.Fatal("optimum violated the quality floor")
	}
}

func TestLDOQuantizationApplied(t *testing.T) {
	sys := NewSystem()
	cfg := Config{PlannerVoltage: 0.8431, ControllerVoltage: 0.8431, Trials: 4}
	r := sys.Run(world.TaskSeed, cfg)
	// The effective voltage must be on the 10 mV LDO grid.
	mv := int(r.EffectiveVoltage*1000 + 0.5)
	if mv%10 != 0 {
		t.Fatalf("voltage not on LDO grid: %v", r.EffectiveVoltage)
	}
}

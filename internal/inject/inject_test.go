package inject

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/embodiedai/create/internal/timing"
)

func TestFlipAccumulatorBitInvolution(t *testing.T) {
	f := func(v int32, bit uint8) bool {
		b := int(bit) % timing.AccBits
		// Keep v inside the 24-bit accumulator domain.
		v = v % (1 << (timing.AccBits - 1))
		return FlipAccumulatorBit(FlipAccumulatorBit(v, b), b) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipLSBChangesParity(t *testing.T) {
	if got := FlipAccumulatorBit(10, 0); got != 11 {
		t.Fatalf("flip LSB of 10 = %d, want 11", got)
	}
	if got := FlipAccumulatorBit(11, 0); got != 10 {
		t.Fatalf("flip LSB of 11 = %d, want 10", got)
	}
}

func TestFlipMSBTogglesSign(t *testing.T) {
	// Flipping bit 23 of a small positive value makes it a large negative
	// value in 24-bit two's complement.
	got := FlipAccumulatorBit(5, timing.AccBits-1)
	want := int32(5 - (1 << (timing.AccBits - 1)))
	if got != want {
		t.Fatalf("MSB flip of 5 = %d, want %d", got, want)
	}
	if back := FlipAccumulatorBit(got, timing.AccBits-1); back != 5 {
		t.Fatalf("MSB flip not involutive: %d", back)
	}
}

func TestNoneInjectorIsNoOp(t *testing.T) {
	acc := []int32{1, 2, 3}
	n := None{}.Inject(acc, rand.New(rand.NewSource(1)))
	if n != 0 || acc[0] != 1 || acc[1] != 2 || acc[2] != 3 {
		t.Fatal("None must not modify anything")
	}
}

func TestUniformFlipCountMatchesExpectation(t *testing.T) {
	const n = 10000
	const ber = 1e-3
	inj := Uniform{BER: ber}
	rng := rand.New(rand.NewSource(42))
	total := 0
	const reps = 50
	for r := 0; r < reps; r++ {
		acc := make([]int32, n)
		total += inj.Inject(acc, rng)
	}
	want := float64(n) * timing.AccBits * ber * reps
	got := float64(total)
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("flip count %v far from expectation %v", got, want)
	}
}

func TestUniformZeroBER(t *testing.T) {
	acc := make([]int32, 100)
	if n := (Uniform{BER: 0}).Inject(acc, rand.New(rand.NewSource(1))); n != 0 {
		t.Fatalf("zero BER injected %d flips", n)
	}
}

func TestVoltageInjectorNominalAlmostClean(t *testing.T) {
	m := timing.Default()
	inj := Voltage{Model: m, V: timing.VNominal}
	rng := rand.New(rand.NewSource(9))
	acc := make([]int32, 100000)
	n := inj.Inject(acc, rng)
	if n > 2 {
		t.Fatalf("nominal voltage should be nearly error free, got %d flips", n)
	}
}

func TestVoltageInjectorLowVoltageErrors(t *testing.T) {
	m := timing.Default()
	inj := Voltage{Model: m, V: 0.62}
	rng := rand.New(rand.NewSource(9))
	acc := make([]int32, 10000)
	n := inj.Inject(acc, rng)
	if n == 0 {
		t.Fatal("0.62V should produce flips")
	}
	exp := ExpectedFlips(len(acc), inj.BitRates())
	if float64(n) < exp*0.5 || float64(n) > exp*1.5 {
		t.Fatalf("flips %d far from expected %v", n, exp)
	}
}

func TestVoltageFlipsConcentrateOnHighBits(t *testing.T) {
	// Inject into zeros and check that the corrupted values are mostly
	// large-magnitude — the Fig. 4(b) "higher bits exhibit frequent large
	// timing errors" pattern.
	m := timing.Default()
	inj := Voltage{Model: m, V: 0.80}
	rng := rand.New(rand.NewSource(5))
	large, total := 0, 0
	for r := 0; r < 200; r++ {
		acc := make([]int32, 5000)
		inj.Inject(acc, rng)
		for _, v := range acc {
			if v != 0 {
				total++
				if v >= 1<<16 || v <= -(1<<16) {
					large++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no flips at 0.80V")
	}
	if frac := float64(large) / float64(total); frac < 0.5 {
		t.Fatalf("only %.2f of flips were large magnitude; expected high-bit dominance", frac)
	}
}

func TestSampleBinomialStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		n int
		p float64
	}{{1000, 0.001}, {100, 0.3}, {1 << 20, 0.01}}
	for _, c := range cases {
		var sum float64
		const reps = 200
		for i := 0; i < reps; i++ {
			sum += float64(sampleBinomial(c.n, c.p, rng))
		}
		mean := sum / reps
		want := float64(c.n) * c.p
		tol := 5 * math.Sqrt(want*(1-c.p)/reps) // 5 sigma of the sample mean
		if math.Abs(mean-want) > tol+1 {
			t.Fatalf("binomial(n=%d,p=%v): mean %v, want %v +- %v", c.n, c.p, mean, want, tol)
		}
	}
	if sampleBinomial(10, 1.5, rng) != 10 {
		t.Fatal("p>=1 must return n")
	}
	if sampleBinomial(0, 0.5, rng) != 0 {
		t.Fatal("n=0 must return 0")
	}
}

func TestExpectedFlips(t *testing.T) {
	rates := []float64{0.1, 0.2, 0.3}
	if e := ExpectedFlips(10, rates); math.Abs(e-6) > 1e-12 {
		t.Fatalf("expected flips = %v, want 6", e)
	}
}

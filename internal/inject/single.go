package inject

import (
	"math/rand"

	"github.com/embodiedai/create/internal/timing"
)

// SingleFlip injects exactly one bit flip at a pre-chosen output index across
// an entire inference pass. The characterization harness uses it to measure
// per-bit fault severity: run once error free to count outputs, pick a
// uniform target index, re-run with a SingleFlip.
type SingleFlip struct {
	// Bit is the accumulator bit to flip (0 = LSB).
	Bit int
	// Target is the global output index (across all GEMM calls of the pass)
	// to corrupt.
	Target int64
	// Fired reports whether the flip happened (false if the pass produced
	// fewer than Target+1 outputs).
	Fired bool

	seen int64
}

// Reset re-arms the injector for another pass with a new target.
func (s *SingleFlip) Reset(bit int, target int64) {
	s.Bit, s.Target, s.Fired, s.seen = bit, target, false, 0
}

// BitRates is zero everywhere; SingleFlip is deterministic, not statistical.
func (s *SingleFlip) BitRates() []float64 { return make([]float64, timing.AccBits) }

// Inject flips the target output's bit if it falls inside this call.
func (s *SingleFlip) Inject(acc []int32, _ *rand.Rand) int {
	if s.Fired {
		return 0
	}
	if s.Target < s.seen+int64(len(acc)) {
		i := s.Target - s.seen
		acc[i] = FlipAccumulatorBit(acc[i], s.Bit)
		s.Fired = true
		s.seen += int64(len(acc))
		return 1
	}
	s.seen += int64(len(acc))
	return 0
}

// OutputCounter counts how many accumulator outputs a pass produces without
// corrupting anything; it sizes the target range for SingleFlip.
type OutputCounter struct{ N int64 }

// BitRates is zero everywhere.
func (c *OutputCounter) BitRates() []float64 { return make([]float64, timing.AccBits) }

// Inject only counts.
func (c *OutputCounter) Inject(acc []int32, _ *rand.Rand) int {
	c.N += int64(len(acc))
	return 0
}

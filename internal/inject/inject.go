// Package inject implements the runtime bit-flip injection framework
// (paper Sec. 3.2). Errors are emulated as bit flips on the 24-bit
// accumulator outputs of quantized GEMMs — the same abstraction the paper
// (and the PyTorchFI-style tools it builds on) uses.
//
// Two error models are provided:
//
//   - Uniform: every accumulator bit flips independently with the same BER.
//     Used for the resilience characterization (Sec. 4) to keep conclusions
//     hardware independent.
//   - Voltage: per-bit rates from the timing model's LUT (Sec. 6), which
//     concentrates flips on the high bits as voltage drops.
//
// Injection is O(expected flips), not O(outputs): the number of flips per
// bit position is drawn from a binomial distribution and only those
// positions are touched, which is what makes task-scale Monte Carlo feasible.
package inject

import (
	"math"
	"math/rand"

	"github.com/embodiedai/create/internal/timing"
)

// Injector perturbs a slice of accumulator values in place and reports how
// many bit flips it applied.
type Injector interface {
	// Inject flips bits in acc according to the error model and returns the
	// number of flips performed.
	Inject(acc []int32, rng *rand.Rand) int
	// BitRates returns the per-bit flip probability for each of the
	// timing.AccBits accumulator bits.
	BitRates() []float64
}

// None is the error-free injector.
type None struct{}

// Inject is a no-op for the error-free injector.
func (None) Inject([]int32, *rand.Rand) int { return 0 }

// BitRates returns all-zero rates.
func (None) BitRates() []float64 { return make([]float64, timing.AccBits) }

// Uniform flips every accumulator bit independently with probability BER.
type Uniform struct {
	BER float64
}

// BitRates returns the uniform per-bit rates.
func (u Uniform) BitRates() []float64 {
	r := make([]float64, timing.AccBits)
	for i := range r {
		r[i] = u.BER
	}
	return r
}

// Inject applies uniform random bit flips to acc.
func (u Uniform) Inject(acc []int32, rng *rand.Rand) int {
	if u.BER <= 0 || len(acc) == 0 {
		return 0
	}
	total := 0
	for bit := 0; bit < timing.AccBits; bit++ {
		total += flipBit(acc, bit, u.BER, rng)
	}
	return total
}

// Voltage flips bits according to the timing model's per-bit rates at the
// configured supply voltage.
type Voltage struct {
	Model *timing.Model
	V     float64
}

// BitRates returns the timing model's per-bit rates at the configured voltage.
func (v Voltage) BitRates() []float64 { return v.Model.BitRates(v.V) }

// Inject applies voltage-dependent bit flips to acc.
func (v Voltage) Inject(acc []int32, rng *rand.Rand) int {
	if len(acc) == 0 {
		return 0
	}
	total := 0
	for bit, p := range v.Model.BitRates(v.V) {
		total += flipBit(acc, bit, p, rng)
	}
	return total
}

// flipBit flips bit `bit` of a binomially sampled subset of acc.
func flipBit(acc []int32, bit int, p float64, rng *rand.Rand) int {
	n := sampleBinomial(len(acc), p, rng)
	for i := 0; i < n; i++ {
		idx := rng.Intn(len(acc))
		acc[idx] = FlipAccumulatorBit(acc[idx], bit)
	}
	return n
}

// FlipAccumulatorBit flips bit `bit` of the value as represented in the
// hardware's AccBits-wide two's-complement accumulator, then sign-extends
// back to int32. Flipping the MSB therefore toggles the sign of the stored
// quantity exactly as it would in the datapath.
func FlipAccumulatorBit(v int32, bit int) int32 {
	mask := uint32(1) << uint(bit)
	raw := uint32(v) & (1<<timing.AccBits - 1)
	raw ^= mask
	// Sign-extend from AccBits to 32 bits.
	if raw&(1<<(timing.AccBits-1)) != 0 {
		raw |= ^uint32(1<<timing.AccBits - 1)
	}
	return int32(raw)
}

// sampleBinomial draws from Binomial(n, p). For the tiny p this package sees
// it uses a Poisson approximation; for larger p it falls back to explicit
// Bernoulli trials (n is then small in our workloads, so this stays cheap).
func sampleBinomial(n int, p float64, rng *rand.Rand) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	lambda := float64(n) * p
	if lambda < 30 && p < 0.05 {
		k := samplePoisson(lambda, rng)
		if k > n {
			k = n
		}
		return k
	}
	if lambda < 4096 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	// Normal approximation for the huge-count regime.
	sigma := math.Sqrt(lambda * (1 - p))
	k := int(math.Round(lambda + rng.NormFloat64()*sigma))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// samplePoisson draws from Poisson(lambda) via Knuth's method (lambda is
// always modest where this is called).
func samplePoisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1<<20 { // safety valve; unreachable for sane lambda
			return k
		}
	}
}

// ExpectedFlips returns the expected number of bit flips when injecting into
// n accumulator outputs under the given per-bit rates.
func ExpectedFlips(n int, bitRates []float64) float64 {
	var s float64
	for _, p := range bitRates {
		s += p
	}
	return s * float64(n)
}

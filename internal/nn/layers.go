package nn

import (
	"math"

	"github.com/embodiedai/create/internal/tensor"
)

// Linear is a y = x*W (+ b) component executed on a Backend. Name identifies
// it to the backend for targeted injection and per-component profiling.
type Linear struct {
	Name string
	W    *tensor.Mat // In x Out
	B    []float32   // optional bias, length Out
}

// Forward applies the linear map to x ((tokens) x In).
func (l *Linear) Forward(be Backend, x *tensor.Mat) *tensor.Mat {
	out := be.MatMul(l.Name, x, l.W)
	if l.B != nil {
		for i := 0; i < out.Rows; i++ {
			row := out.Row(i)
			for j := range row {
				row[j] += l.B[j]
			}
		}
	}
	return out
}

// RMSNorm normalizes each row by its root-mean-square, the pre-norm used by
// LLaMA-family planners. Gain is per-channel; unit gain keeps the norm a pure
// rotation-commuting operation, which the weight-rotation technique relies on
// (Sec. 5.2: Hadamard matrices "preserve the L2 norm as RMSNorm
// denominators").
type RMSNorm struct {
	Gain []float32
	Eps  float32
}

// NewRMSNorm returns a unit-gain RMSNorm over dim channels.
func NewRMSNorm(dim int) *RMSNorm {
	g := make([]float32, dim)
	for i := range g {
		g[i] = 1
	}
	return &RMSNorm{Gain: g, Eps: 1e-5}
}

// Forward returns the row-wise RMS-normalized matrix.
func (n *RMSNorm) Forward(x *tensor.Mat) *tensor.Mat {
	out := tensor.NewMat(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		inv := float32(1 / math.Sqrt(ss/float64(len(row))+float64(n.Eps)))
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = v * inv * n.Gain[j]
		}
	}
	return out
}

// LayerNorm is the mean/variance normalization used by the controller's
// Transformer blocks. Its statistics (mu, sigma) are what a single
// large-magnitude fault skews (Fig. 5(k)/(l)).
type LayerNorm struct {
	Gain, Bias []float32
	Eps        float32
}

// NewLayerNorm returns a unit-gain zero-bias LayerNorm over dim channels.
func NewLayerNorm(dim int) *LayerNorm {
	g := make([]float32, dim)
	for i := range g {
		g[i] = 1
	}
	return &LayerNorm{Gain: g, Bias: make([]float32, dim), Eps: 1e-5}
}

// Forward returns the row-wise layer-normalized matrix.
func (n *LayerNorm) Forward(x *tensor.Mat) *tensor.Mat {
	out := tensor.NewMat(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		mu, sigma := RowMoments(x.Row(i))
		inv := float32(1 / (sigma + float64(n.Eps)))
		row := x.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = (v-float32(mu))*inv*n.Gain[j] + n.Bias[j]
		}
	}
	return out
}

// RowMoments returns the mean and standard deviation of one activation row —
// the normalization statistics the resilience analysis tracks.
func RowMoments(row []float32) (mu, sigma float64) {
	mu = tensor.Mean(row)
	var ss float64
	for _, v := range row {
		d := float64(v) - mu
		ss += d * d
	}
	sigma = math.Sqrt(ss / float64(len(row)))
	return mu, sigma
}

// SiLU applies x*sigmoid(x) element-wise in place (planner MLP activation).
func SiLU(m *tensor.Mat) {
	for i, v := range m.Data {
		m.Data[i] = v * float32(1/(1+math.Exp(-float64(v))))
	}
}

// ReLU applies max(0, x) element-wise in place (controller MLP activation).
func ReLU(m *tensor.Mat) {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// GatedMLP is the planner's SwiGLU feed-forward block: Down(SiLU(Gate(x)) * Up(x)).
type GatedMLP struct {
	Gate, Up, Down *Linear
}

// Forward runs the gated MLP on x.
func (m *GatedMLP) Forward(be Backend, x *tensor.Mat) *tensor.Mat {
	g := m.Gate.Forward(be, x)
	u := m.Up.Forward(be, x)
	SiLU(g)
	for i := range g.Data {
		g.Data[i] *= u.Data[i]
	}
	return m.Down.Forward(be, g)
}

// MLP is the controller's plain two-layer feed-forward block: FC2(ReLU(FC1(x))).
type MLP struct {
	FC1, FC2 *Linear
}

// Forward runs the MLP on x.
func (m *MLP) Forward(be Backend, x *tensor.Mat) *tensor.Mat {
	h := m.FC1.Forward(be, x)
	ReLU(h)
	return m.FC2.Forward(be, h)
}

// Package nn provides the neural-network building blocks of the embodied AI
// stack: the Transformer layers of the planner and controller (inference,
// with a pluggable GEMM backend so the systolic datapath and its error
// injection slot underneath any component), and a small training subset
// (convolutions, pools, linear, MSE, AdamW) used by the entropy predictor.
package nn

import (
	"math"
	"math/rand"
	"strings"

	"github.com/embodiedai/create/internal/inject"
	"github.com/embodiedai/create/internal/systolic"
	"github.com/embodiedai/create/internal/tensor"
)

// Backend executes the matrix products of named network components.
// Implementations decide the datapath: exact float math, or the quantized
// systolic array with error injection. The component name (e.g. "L3.O",
// "L0.FC1") lets backends target individual components, which is how the
// paper's per-component characterization (Fig. 5(e)-(h)) is driven.
type Backend interface {
	MatMul(component string, x, w *tensor.Mat) *tensor.Mat
}

// Float is the exact float32 reference backend.
type Float struct{}

// MatMul computes the exact float product, ignoring the component name.
func (Float) MatMul(_ string, x, w *tensor.Mat) *tensor.Mat { return tensor.MatMul(x, w) }

// Systolic runs every component on a quantized systolic engine, with
// per-component injection control and offline-profiled output ranges.
type Systolic struct {
	Engine *systolic.Engine
	// Target restricts injection to components whose name contains this
	// substring; empty targets every component. (Comparing "K" vs "O"
	// resilience uses Target=".K" / ".O".)
	Target string
	// Profile holds per-component output absolute maxima collected by a
	// calibration pass; the anomaly bound derives from these.
	Profile map[string]float32
	// Headroom loosens the anomaly bound above the profiled maximum so that
	// legitimate values near the observed range never trip the AD units
	// (offline profiling always leaves margin). Default 1.5.
	Headroom float32
	// Calibrating records output ranges instead of consuming them.
	Calibrating bool
}

// NewSystolic wraps an engine with an empty profile.
func NewSystolic(e *systolic.Engine) *Systolic {
	return &Systolic{Engine: e, Profile: make(map[string]float32), Headroom: 1.5}
}

// MatMul executes one component on the systolic engine. During calibration
// it runs error free and records the output range; afterwards it injects
// errors into targeted components and applies AD against the recorded range.
func (s *Systolic) MatMul(component string, x, w *tensor.Mat) *tensor.Mat {
	if s.Calibrating {
		out := s.quiet(x, w, 0)
		mx := tensor.AbsMax(out.Data)
		if mx > s.Profile[component] {
			s.Profile[component] = mx
		}
		return out
	}
	outMax := s.Profile[component] * s.Headroom
	if !s.targeted(component) {
		return s.quiet(x, w, outMax)
	}
	return s.Engine.MatMul(x, w, outMax)
}

// quiet runs one GEMM with injection disabled, restoring the previous
// injector afterwards — the single home of the save/disable/restore dance.
func (s *Systolic) quiet(x, w *tensor.Mat, outMax float32) *tensor.Mat {
	saved := s.Engine.SwapInjector(inject.None{})
	out := s.Engine.MatMul(x, w, outMax)
	s.Engine.SwapInjector(saved)
	return out
}

func (s *Systolic) targeted(component string) bool {
	return s.Target == "" || strings.Contains(component, s.Target)
}

// RandInit fills m with scaled Gaussian entries (std = gain/sqrt(fanIn)),
// the usual Transformer initialization.
func RandInit(m *tensor.Mat, rng *rand.Rand, gain float64) {
	std := gain / math.Sqrt(float64(m.Rows))
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}

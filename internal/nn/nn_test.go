package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/embodiedai/create/internal/systolic"
	"github.com/embodiedai/create/internal/tensor"
)

func TestLinearForward(t *testing.T) {
	w := tensor.FromRows([][]float32{{1, 0}, {0, 2}})
	l := &Linear{Name: "t", W: w, B: []float32{1, -1}}
	x := tensor.FromRows([][]float32{{3, 4}})
	out := l.Forward(Float{}, x)
	if out.At(0, 0) != 4 || out.At(0, 1) != 7 {
		t.Fatalf("linear output %v", out.Data)
	}
}

func TestRMSNormUnitGainProperties(t *testing.T) {
	n := NewRMSNorm(8)
	x := tensor.FromRows([][]float32{{2, -2, 2, -2, 2, -2, 2, -2}})
	out := n.Forward(x)
	// RMS of the row is 2, so outputs are +-1.
	for i, v := range out.Data {
		want := float32(1)
		if i%2 == 1 {
			want = -1
		}
		if math.Abs(float64(v-want)) > 1e-3 {
			t.Fatalf("rmsnorm[%d] = %v", i, v)
		}
	}
}

func TestRMSNormScaleInvariance(t *testing.T) {
	n := NewRMSNorm(16)
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewMat(2, 16)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*4 - 2
	}
	scaled := x.Clone()
	scaled.Scale(7)
	a, b := n.Forward(x), n.Forward(scaled)
	if d := tensor.MaxAbsDiff(a, b); d > 1e-3 {
		t.Fatalf("rmsnorm not scale invariant: %v", d)
	}
}

func TestLayerNormMoments(t *testing.T) {
	n := NewLayerNorm(32)
	rng := rand.New(rand.NewSource(2))
	x := tensor.NewMat(1, 32)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*10 + 3
	}
	out := n.Forward(x)
	mu, sigma := RowMoments(out.Row(0))
	if math.Abs(mu) > 1e-4 {
		t.Fatalf("layernorm mean %v", mu)
	}
	if math.Abs(sigma-1) > 1e-2 {
		t.Fatalf("layernorm sigma %v", sigma)
	}
}

func TestActivations(t *testing.T) {
	m := tensor.FromRows([][]float32{{-1, 0, 2}})
	r := m.Clone()
	ReLU(r)
	if r.Data[0] != 0 || r.Data[1] != 0 || r.Data[2] != 2 {
		t.Fatalf("relu %v", r.Data)
	}
	s := m.Clone()
	SiLU(s)
	if s.Data[1] != 0 {
		t.Fatal("silu(0) != 0")
	}
	if math.Abs(float64(s.Data[2])-2/(1+math.Exp(-2))*1) > 1e-4 {
		t.Fatalf("silu(2) = %v", s.Data[2])
	}
	if s.Data[0] >= 0 {
		t.Fatal("silu(-1) should be negative")
	}
}

func TestAttentionCausality(t *testing.T) {
	// With causal masking, changing a later token must not affect earlier
	// positions' outputs.
	rng := rand.New(rand.NewSource(3))
	dim := 16
	lin := func(name string) *Linear {
		w := tensor.NewMat(dim, dim)
		RandInit(w, rng, 1)
		return &Linear{Name: name, W: w}
	}
	a := &Attention{Heads: 4, Q: lin("q"), K: lin("k"), V: lin("v"), O: lin("o"), Causal: true}
	x := tensor.NewMat(4, dim)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	out1 := a.Forward(Float{}, x)
	x2 := x.Clone()
	for j := 0; j < dim; j++ {
		x2.Set(3, j, 42)
	}
	out2 := a.Forward(Float{}, x2)
	for i := 0; i < 3; i++ {
		for j := 0; j < dim; j++ {
			if out1.At(i, j) != out2.At(i, j) {
				t.Fatalf("causality violated at pos %d", i)
			}
		}
	}
}

func TestSystolicBackendCalibrationAndTargeting(t *testing.T) {
	eng := systolic.NewEngine(1)
	be := NewSystolic(eng)
	rng := rand.New(rand.NewSource(4))
	x := tensor.NewMat(4, 8)
	w := tensor.NewMat(8, 4)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	for i := range w.Data {
		w.Data[i] = rng.Float32()
	}
	be.Calibrating = true
	be.MatMul("L0.K", x, w)
	be.Calibrating = false
	if be.Profile["L0.K"] == 0 {
		t.Fatal("calibration did not record a range")
	}
	// Targeting: a backend targeting ".O" must run ".K" error free.
	be.Target = ".O"
	if be.targeted("L0.K") || !be.targeted("L3.O") {
		t.Fatal("targeting predicate wrong")
	}
}

// --- gradient checks -------------------------------------------------------

func numericalGrad(f func() float64, p *Param, i int) float64 {
	const eps = 1e-3
	old := p.Val[i]
	p.Val[i] = old + eps
	up := f()
	p.Val[i] = old - eps
	down := f()
	p.Val[i] = old
	return (up - down) / (2 * eps)
}

func TestDenseGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(3, 2, rng)
	x := []float32{0.5, -1, 2}
	target := []float32{0.3, -0.7}
	loss := func() float64 {
		l, _ := MSE(d.Forward(x), target)
		return l
	}
	// Analytic gradients.
	_, grad := MSE(d.Forward(x), target)
	d.W.ZeroGrad()
	d.B.ZeroGrad()
	d.Backward(grad)
	for i := 0; i < len(d.W.Val); i++ {
		num := numericalGrad(loss, d.W, i)
		if math.Abs(num-float64(d.W.Grad[i])) > 1e-2*(math.Abs(num)+1e-2) {
			t.Fatalf("dense W grad[%d]: analytic %v numeric %v", i, d.W.Grad[i], num)
		}
	}
	for i := 0; i < len(d.B.Val); i++ {
		num := numericalGrad(loss, d.B, i)
		if math.Abs(num-float64(d.B.Grad[i])) > 1e-2*(math.Abs(num)+1e-2) {
			t.Fatalf("dense B grad[%d]: analytic %v numeric %v", i, d.B.Grad[i], num)
		}
	}
}

func TestConvGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewConv2d(2, 3, 3, 2, 1, rng)
	in := NewVol(2, 5, 5)
	for i := range in.Data {
		in.Data[i] = rng.Float32()*2 - 1
	}
	targetLen := 3 * c.OutDim(5) * c.OutDim(5)
	target := make([]float32, targetLen)
	for i := range target {
		target[i] = rng.Float32()
	}
	loss := func() float64 {
		out := c.Forward(in)
		l, _ := MSE(out.Data, target)
		return l
	}
	out := c.Forward(in)
	_, grad := MSE(out.Data, target)
	c.W.ZeroGrad()
	c.B.ZeroGrad()
	gv := &Vol{C: 3, H: c.OutDim(5), W: c.OutDim(5), Data: grad}
	gradIn := c.Backward(gv)
	for _, i := range []int{0, 7, 13, len(c.W.Val) - 1} {
		num := numericalGrad(loss, c.W, i)
		if math.Abs(num-float64(c.W.Grad[i])) > 2e-2*(math.Abs(num)+1e-2) {
			t.Fatalf("conv W grad[%d]: analytic %v numeric %v", i, c.W.Grad[i], num)
		}
	}
	// Input gradient check via a wrapped parameter.
	ip := &Param{Val: in.Data, Grad: make([]float32, len(in.Data))}
	for _, i := range []int{0, 12, 24} {
		num := numericalGrad(loss, ip, i)
		if math.Abs(num-float64(gradIn.Data[i])) > 2e-2*(math.Abs(num)+1e-2) {
			t.Fatalf("conv input grad[%d]: analytic %v numeric %v", i, gradIn.Data[i], num)
		}
	}
}

func TestPoolingBackward(t *testing.T) {
	p := &MaxPool2{}
	in := NewVol(1, 4, 4)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := p.Forward(in)
	if out.At(0, 0, 0) != 5 || out.At(0, 1, 1) != 15 {
		t.Fatalf("maxpool wrong: %v", out.Data)
	}
	g := NewVol(1, 2, 2)
	g.Data = []float32{1, 2, 3, 4}
	gi := p.Backward(g)
	if gi.Data[5] != 1 || gi.Data[15] != 4 {
		t.Fatal("maxpool backward misrouted")
	}
	var total float32
	for _, v := range gi.Data {
		total += v
	}
	if total != 10 {
		t.Fatalf("maxpool backward lost gradient: %v", total)
	}

	gap := &GlobalAvgPool{}
	feat := gap.Forward(in)
	if math.Abs(float64(feat[0])-7.5) > 1e-6 {
		t.Fatalf("gap mean %v", feat[0])
	}
	gb := gap.Backward([]float32{16})
	for _, v := range gb.Data {
		if v != 1 {
			t.Fatalf("gap backward %v", v)
		}
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := &Dropout{P: 0.5, Train: true}
	x := make([]float32, 1000)
	for i := range x {
		x[i] = 1
	}
	out := d.Forward(x, rng)
	kept := 0
	for _, v := range out {
		if v != 0 {
			if v != 2 {
				t.Fatalf("inverted dropout scale wrong: %v", v)
			}
			kept++
		}
	}
	if kept < 400 || kept > 600 {
		t.Fatalf("dropout kept %d of 1000 at p=0.5", kept)
	}
	d.Train = false
	out = d.Forward(x, rng)
	for _, v := range out {
		if v != 1 {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
}

func TestAdamWReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDense(4, 1, rng)
	opt := NewAdamW(1e-2)
	x := []float32{1, 2, 3, 4}
	target := []float32{10}
	var first, last float64
	for i := 0; i < 200; i++ {
		out := d.Forward(x)
		loss, grad := MSE(out, target)
		if i == 0 {
			first = loss
		}
		last = loss
		d.Backward(grad)
		opt.Step([]*Param{d.W, d.B})
	}
	if last > first/100 {
		t.Fatalf("AdamW failed to fit: %v -> %v", first, last)
	}
}

func TestGatedMLPAndMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dim, hidden := 8, 16
	lin := func(in, out int) *Linear {
		w := tensor.NewMat(in, out)
		RandInit(w, rng, 1)
		return &Linear{Name: "x", W: w}
	}
	g := &GatedMLP{Gate: lin(dim, hidden), Up: lin(dim, hidden), Down: lin(hidden, dim)}
	m := &MLP{FC1: lin(dim, hidden), FC2: lin(hidden, dim)}
	x := tensor.NewMat(2, dim)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	if out := g.Forward(Float{}, x); out.Rows != 2 || out.Cols != dim {
		t.Fatal("gated mlp shape")
	}
	if out := m.Forward(Float{}, x); out.Rows != 2 || out.Cols != dim {
		t.Fatal("mlp shape")
	}
}

package nn

import (
	"math"
	"math/rand"
)

// Dense is a fully connected trainable layer over flat feature vectors.
type Dense struct {
	In, Out int
	W, B    *Param
	lastIn  []float32
}

// NewDense builds a dense layer with Xavier-style initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, W: NewParam(in * out), B: NewParam(out)}
	std := math.Sqrt(2 / float64(in+out))
	for i := range d.W.Val {
		d.W.Val[i] = float32(rng.NormFloat64() * std)
	}
	return d
}

// Forward computes y = W^T x + b and caches x.
func (d *Dense) Forward(x []float32) []float32 {
	d.lastIn = x
	out := make([]float32, d.Out)
	copy(out, d.B.Val)
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := d.W.Val[i*d.Out : (i+1)*d.Out]
		for j, wv := range row {
			out[j] += xv * wv
		}
	}
	return out
}

// Backward accumulates gradients and returns dLoss/dx.
func (d *Dense) Backward(gradOut []float32) []float32 {
	gradIn := make([]float32, d.In)
	for j, g := range gradOut {
		d.B.Grad[j] += g
	}
	for i, xv := range d.lastIn {
		wrow := d.W.Val[i*d.Out : (i+1)*d.Out]
		grow := d.W.Grad[i*d.Out : (i+1)*d.Out]
		var acc float32
		for j, g := range gradOut {
			grow[j] += g * xv
			acc += g * wrow[j]
		}
		gradIn[i] = acc
	}
	return gradIn
}

// ReLUVec is ReLU over flat vectors with backward masking.
type ReLUVec struct{ mask []bool }

// Forward applies ReLU.
func (r *ReLUVec) Forward(x []float32) []float32 {
	r.mask = make([]bool, len(x))
	out := make([]float32, len(x))
	for i, v := range x {
		if v > 0 {
			out[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward gates the gradient by the activation mask.
func (r *ReLUVec) Backward(g []float32) []float32 {
	out := make([]float32, len(g))
	for i, v := range g {
		if r.mask[i] {
			out[i] = v
		}
	}
	return out
}

// Dropout randomly zeroes activations during training (inverted dropout, so
// evaluation needs no rescaling).
type Dropout struct {
	P     float64
	Train bool
	mask  []bool
}

// Forward applies dropout when Train is set; otherwise it is the identity.
func (d *Dropout) Forward(x []float32, rng *rand.Rand) []float32 {
	if !d.Train || d.P <= 0 {
		d.mask = nil
		return x
	}
	out := make([]float32, len(x))
	d.mask = make([]bool, len(x))
	scale := float32(1 / (1 - d.P))
	for i, v := range x {
		if rng.Float64() >= d.P {
			out[i] = v * scale
			d.mask[i] = true
		}
	}
	return out
}

// Backward routes gradients through the kept units.
func (d *Dropout) Backward(g []float32) []float32 {
	if d.mask == nil {
		return g
	}
	out := make([]float32, len(g))
	scale := float32(1 / (1 - d.P))
	for i, v := range g {
		if d.mask[i] {
			out[i] = v * scale
		}
	}
	return out
}

// MSE returns the mean squared error and the gradient w.r.t. pred.
func MSE(pred, target []float32) (loss float64, grad []float32) {
	grad = make([]float32, len(pred))
	for i := range pred {
		d := float64(pred[i]) - float64(target[i])
		loss += d * d
		grad[i] = float32(2 * d / float64(len(pred)))
	}
	return loss / float64(len(pred)), grad
}

// AdamW implements decoupled weight-decay Adam (the optimizer the paper
// trains the entropy predictor with: lr 1e-4, weight decay 1e-2).
type AdamW struct {
	LR, Beta1, Beta2, Eps, WeightDecay float64
	step                               int
}

// NewAdamW returns AdamW with the paper's hyperparameters.
func NewAdamW(lr float64) *AdamW {
	return &AdamW{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: 1e-2}
}

// Step applies one update to every parameter and clears the gradients.
func (a *AdamW) Step(params []*Param) {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		for i := range p.Val {
			g := float64(p.Grad[i])
			m := a.Beta1*float64(p.m[i]) + (1-a.Beta1)*g
			v := a.Beta2*float64(p.v[i]) + (1-a.Beta2)*g*g
			p.m[i], p.v[i] = float32(m), float32(v)
			mHat := m / bc1
			vHat := v / bc2
			upd := a.LR * (mHat/(math.Sqrt(vHat)+a.Eps) + a.WeightDecay*float64(p.Val[i]))
			p.Val[i] -= float32(upd)
			p.Grad[i] = 0
		}
	}
}

package nn

import (
	"math"

	"github.com/embodiedai/create/internal/tensor"
)

// Attention is a multi-head self-attention block. The four projection
// components (Q, K, V, O) run on the Backend — they are the GEMMs the paper
// injects errors into — while the score computation itself stays in float,
// matching the paper's injection sites (outputs of GEMM layers).
type Attention struct {
	Heads      int
	Q, K, V, O *Linear
	Causal     bool
}

// Forward runs self-attention over x (tokens x dim).
func (a *Attention) Forward(be Backend, x *tensor.Mat) *tensor.Mat {
	dim := a.Q.W.Cols
	if dim%a.Heads != 0 {
		panic("nn: head count must divide model dim")
	}
	hd := dim / a.Heads
	q := a.Q.Forward(be, x)
	k := a.K.Forward(be, x)
	v := a.V.Forward(be, x)

	ctx := tensor.NewMat(x.Rows, dim)
	invSqrt := float32(1 / math.Sqrt(float64(hd)))
	scores := make([]float32, x.Rows)
	for h := 0; h < a.Heads; h++ {
		off := h * hd
		for i := 0; i < x.Rows; i++ {
			qi := q.Row(i)[off : off+hd]
			limit := x.Rows
			if a.Causal {
				limit = i + 1
			}
			for j := 0; j < limit; j++ {
				kj := k.Row(j)[off : off+hd]
				var dot float32
				for d := 0; d < hd; d++ {
					dot += qi[d] * kj[d]
				}
				scores[j] = dot * invSqrt
			}
			probs := tensor.Softmax(scores[:limit])
			out := ctx.Row(i)[off : off+hd]
			for j := 0; j < limit; j++ {
				p := probs[j]
				if p == 0 {
					continue
				}
				vj := v.Row(j)[off : off+hd]
				for d := 0; d < hd; d++ {
					out[d] += p * vj[d]
				}
			}
		}
	}
	return a.O.Forward(be, ctx)
}

package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Vol is a CHW-layout activation volume for the convolutional stack of the
// entropy predictor (Table 9 of the paper).
type Vol struct {
	C, H, W int
	Data    []float32
}

// NewVol returns a zeroed C x H x W volume.
func NewVol(c, h, w int) *Vol {
	return &Vol{C: c, H: h, W: w, Data: make([]float32, c*h*w)}
}

// At returns element (c, y, x).
func (v *Vol) At(c, y, x int) float32 { return v.Data[(c*v.H+y)*v.W+x] }

// Set assigns element (c, y, x).
func (v *Vol) Set(c, y, x int, val float32) { v.Data[(c*v.H+y)*v.W+x] = val }

// Param is a trainable tensor with its gradient and AdamW moment buffers.
type Param struct {
	Val, Grad []float32
	m, v      []float32
}

// NewParam allocates a parameter of n elements.
func NewParam(n int) *Param {
	return &Param{Val: make([]float32, n), Grad: make([]float32, n), m: make([]float32, n), v: make([]float32, n)}
}

// ZeroGrad clears the gradient buffer.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Conv2d is a stride-s, padding-p 2-D convolution with square kernels
// (kernel size 3 throughout the predictor, per Table 9).
type Conv2d struct {
	InC, OutC, Kernel, Stride, Pad int
	W, B                           *Param

	lastIn *Vol
}

// NewConv2d builds a convolution with Kaiming-style initialization.
func NewConv2d(inC, outC, kernel, stride, pad int, rng *rand.Rand) *Conv2d {
	c := &Conv2d{InC: inC, OutC: outC, Kernel: kernel, Stride: stride, Pad: pad,
		W: NewParam(outC * inC * kernel * kernel), B: NewParam(outC)}
	std := math.Sqrt(2 / float64(inC*kernel*kernel))
	for i := range c.W.Val {
		c.W.Val[i] = float32(rng.NormFloat64() * std)
	}
	return c
}

// OutDim returns the spatial output size for input size n.
func (c *Conv2d) OutDim(n int) int { return (n+2*c.Pad-c.Kernel)/c.Stride + 1 }

func (c *Conv2d) widx(oc, ic, ky, kx int) int {
	return ((oc*c.InC+ic)*c.Kernel+ky)*c.Kernel + kx
}

// Forward convolves in and caches it for Backward.
func (c *Conv2d) Forward(in *Vol) *Vol {
	if in.C != c.InC {
		panic(fmt.Sprintf("nn: conv expects %d channels, got %d", c.InC, in.C))
	}
	c.lastIn = in
	oh, ow := c.OutDim(in.H), c.OutDim(in.W)
	out := NewVol(c.OutC, oh, ow)
	for oc := 0; oc < c.OutC; oc++ {
		bias := c.B.Val[oc]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := bias
				iy0 := oy*c.Stride - c.Pad
				ix0 := ox*c.Stride - c.Pad
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.Kernel; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= in.H {
							continue
						}
						for kx := 0; kx < c.Kernel; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= in.W {
								continue
							}
							sum += in.At(ic, iy, ix) * c.W.Val[c.widx(oc, ic, ky, kx)]
						}
					}
				}
				out.Set(oc, oy, ox, sum)
			}
		}
	}
	return out
}

// Backward accumulates parameter gradients and returns the input gradient.
func (c *Conv2d) Backward(gradOut *Vol) *Vol {
	in := c.lastIn
	gradIn := NewVol(in.C, in.H, in.W)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < gradOut.H; oy++ {
			for ox := 0; ox < gradOut.W; ox++ {
				g := gradOut.At(oc, oy, ox)
				if g == 0 {
					continue
				}
				c.B.Grad[oc] += g
				iy0 := oy*c.Stride - c.Pad
				ix0 := ox*c.Stride - c.Pad
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.Kernel; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= in.H {
							continue
						}
						for kx := 0; kx < c.Kernel; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= in.W {
								continue
							}
							wi := c.widx(oc, ic, ky, kx)
							c.W.Grad[wi] += g * in.At(ic, iy, ix)
							gradIn.Data[(ic*in.H+iy)*in.W+ix] += g * c.W.Val[wi]
						}
					}
				}
			}
		}
	}
	return gradIn
}

// ReLUVol is an in-place ReLU over volumes with backward masking.
type ReLUVol struct{ mask []bool }

// Forward applies ReLU and records which units were active.
func (r *ReLUVol) Forward(in *Vol) *Vol {
	r.mask = make([]bool, len(in.Data))
	out := NewVol(in.C, in.H, in.W)
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward gates the incoming gradient by the activation mask.
func (r *ReLUVol) Backward(gradOut *Vol) *Vol {
	gradIn := NewVol(gradOut.C, gradOut.H, gradOut.W)
	for i, g := range gradOut.Data {
		if r.mask[i] {
			gradIn.Data[i] = g
		}
	}
	return gradIn
}

// MaxPool2 is a 2x2, stride-2 max pool with argmax caching.
type MaxPool2 struct {
	argmax []int
	inC    int
	inH    int
	inW    int
}

// Forward max-pools in by 2x2.
func (p *MaxPool2) Forward(in *Vol) *Vol {
	oh, ow := in.H/2, in.W/2
	out := NewVol(in.C, oh, ow)
	p.argmax = make([]int, in.C*oh*ow)
	p.inC, p.inH, p.inW = in.C, in.H, in.W
	for c := 0; c < in.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				bestIdx := 0
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						iy, ix := oy*2+dy, ox*2+dx
						idx := (c*in.H+iy)*in.W + ix
						if in.Data[idx] > best {
							best = in.Data[idx]
							bestIdx = idx
						}
					}
				}
				oi := (c*oh+oy)*ow + ox
				out.Data[oi] = best
				p.argmax[oi] = bestIdx
			}
		}
	}
	return out
}

// Backward routes gradients to the argmax positions.
func (p *MaxPool2) Backward(gradOut *Vol) *Vol {
	gradIn := NewVol(p.inC, p.inH, p.inW)
	for oi, g := range gradOut.Data {
		gradIn.Data[p.argmax[oi]] += g
	}
	return gradIn
}

// GlobalAvgPool reduces each channel to its spatial mean (AdaptiveAvgPool to
// output size 1 in Table 9).
type GlobalAvgPool struct {
	inC, inH, inW int
}

// Forward returns the per-channel means as a feature vector.
func (p *GlobalAvgPool) Forward(in *Vol) []float32 {
	p.inC, p.inH, p.inW = in.C, in.H, in.W
	out := make([]float32, in.C)
	n := float32(in.H * in.W)
	for c := 0; c < in.C; c++ {
		var sum float32
		base := c * in.H * in.W
		for i := 0; i < in.H*in.W; i++ {
			sum += in.Data[base+i]
		}
		out[c] = sum / n
	}
	return out
}

// Backward spreads each channel gradient uniformly over its spatial extent.
func (p *GlobalAvgPool) Backward(gradOut []float32) *Vol {
	gradIn := NewVol(p.inC, p.inH, p.inW)
	n := float32(p.inH * p.inW)
	for c, g := range gradOut {
		base := c * p.inH * p.inW
		gv := g / n
		for i := 0; i < p.inH*p.inW; i++ {
			gradIn.Data[base+i] = gv
		}
	}
	return gradIn
}

package cache

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/obs"
	"github.com/embodiedai/create/internal/world"
)

func testPoint() Point {
	return Point{
		Task:        "wooden_pickaxe",
		Controller:  "JARVIS-1 controller/INT8",
		PlannerProt: "none",
		ControlProt: "AD",
		ErrorModel:  "uniform",
		BER:         1e-5,
		PlannerV:    0.9,
		ControllerV: 0.9,
		VSInterval:  5,
		Trials:      4,
		Seed:        2026,
	}
}

// testSummary is a real aggregated run, so the round-trip tests exercise the
// exact value shapes (maps, nested results) the experiments layer caches.
func testSummary(trials int, seed int64) agent.Summary {
	return agent.RunManyWorkers(agent.Config{
		Task: world.TaskWooden, UniformBER: 0, Seed: seed,
	}, trials, 1)
}

func TestHitMissAccounting(t *testing.T) {
	s, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	p := testPoint()
	if _, ok := s.Get(p); ok {
		t.Fatal("empty store returned a hit")
	}
	if s.Hits() != 0 || s.Misses() != 1 {
		t.Fatalf("want 0 hits / 1 miss, got %d/%d", s.Hits(), s.Misses())
	}
	sum := testSummary(3, 2026)
	if err := s.Put(p, sum); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(p)
	if !ok || !reflect.DeepEqual(got, sum) {
		t.Fatal("stored summary not returned intact")
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %d/%d", s.Hits(), s.Misses())
	}
	if s.Len() != 1 {
		t.Fatalf("store should hold one point, holds %d", s.Len())
	}
}

// TestDistinctKeys guards the fingerprint against collisions between grid
// points that differ in exactly one evaluation-relevant dimension.
func TestDistinctKeys(t *testing.T) {
	base := testPoint()
	variants := map[string]func(p Point) Point{
		"seed":        func(p Point) Point { p.Seed = 7; return p },
		"trials":      func(p Point) Point { p.Trials = 100; return p },
		"error model": func(p Point) Point { p.ErrorModel = "voltage"; p.BER = 0; return p },
		"BER":         func(p Point) Point { p.BER = 3e-5; return p },
		"task":        func(p Point) Point { p.Task = "stone_pickaxe"; return p },
		"protection":  func(p Point) Point { p.ControlProt = "none"; return p },
		"fault model": func(p Point) Point { p.Controller = "JARVIS-1 controller/INT4"; return p },
		"voltage":     func(p Point) Point { p.ControllerV = 0.75; return p },
		"policy":      func(p Point) Point { p.Policy = "C"; return p },
	}
	seen := map[string]string{base.Key(): "base"}
	for name, mutate := range variants {
		k := mutate(base).Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("point differing only in %s collides with %s", name, prev)
		}
		seen[k] = name
	}
	if base.Key() != testPoint().Key() {
		t.Fatal("identical points must share a key")
	}
}

// TestDiskRoundTrip persists a real Summary and reloads it through a fresh
// store: the replayed value must be indistinguishable from the computed one.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := testPoint()
	sum := testSummary(4, 2026)

	s1, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(p, sum); err != nil {
		t.Fatal(err)
	}

	s2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(p)
	if !ok {
		t.Fatal("persisted entry not found by a fresh store")
	}
	if !reflect.DeepEqual(got, sum) {
		t.Fatalf("round-trip changed the summary:\nwant %+v\ngot  %+v", sum, got)
	}
	if s2.Hits() != 1 || s2.Misses() != 0 {
		t.Fatalf("disk hit miscounted: %d hits / %d misses", s2.Hits(), s2.Misses())
	}

	// A different seed is a different address — the fresh store must miss.
	other := p
	other.Seed = 1
	if _, ok := s2.Get(other); ok {
		t.Fatal("differing seed must not resolve to the persisted entry")
	}
}

func TestMergeDirs(t *testing.T) {
	root := t.TempDir()
	a := filepath.Join(root, "a")
	b := filepath.Join(root, "b")
	dst := filepath.Join(root, "merged")

	pa, pb := testPoint(), testPoint()
	pb.Seed = 31
	sa, sb := testSummary(2, 2026), testSummary(2, 31)

	storeA, _ := New(a)
	storeB, _ := New(b)
	if err := storeA.Put(pa, sa); err != nil {
		t.Fatal(err)
	}
	// The overlapping point lands in both shards, as happens when two
	// shards' sweeps share a grid point; the union must not double-copy.
	if err := storeB.Put(pa, sa); err != nil {
		t.Fatal(err)
	}
	if err := storeB.Put(pb, sb); err != nil {
		t.Fatal(err)
	}

	n, err := MergeDirs(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("want 2 entries copied, got %d", n)
	}

	merged, _ := New(dst)
	if got, ok := merged.Get(pa); !ok || !reflect.DeepEqual(got, sa) {
		t.Fatal("merged store missing shard A's entry")
	}
	if got, ok := merged.Get(pb); !ok || !reflect.DeepEqual(got, sb) {
		t.Fatal("merged store missing shard B's entry")
	}

	// Idempotent: re-merging copies nothing new.
	if n, err = MergeDirs(dst, a, b); err != nil || n != 0 {
		t.Fatalf("re-merge should be a no-op, copied %d (err %v)", n, err)
	}
}

// TestContainsDoesNotCount: the planning probe must see both memory and
// disk residency without perturbing hit/miss accounting or promoting disk
// entries into memory.
func TestContainsDoesNotCount(t *testing.T) {
	dir := t.TempDir()
	p := testPoint()
	writer, _ := New(dir)
	if err := writer.Put(p, testSummary(2, 2026)); err != nil {
		t.Fatal(err)
	}

	s, _ := New(dir)
	if !s.Contains(p) {
		t.Fatal("Contains missed a disk entry")
	}
	other := p
	other.Seed = 99
	if s.Contains(other) {
		t.Fatal("Contains claimed an absent point")
	}
	if s.Hits() != 0 || s.Misses() != 0 || s.Len() != 0 {
		t.Fatalf("Contains perturbed state: %d hits / %d misses / %d resident",
			s.Hits(), s.Misses(), s.Len())
	}

	mem, _ := New("")
	if mem.Contains(p) {
		t.Fatal("memory store claimed an unseen point")
	}
	_ = mem.Put(p, testSummary(2, 2026))
	if !mem.Contains(p) {
		t.Fatal("Contains missed a memory entry")
	}
}

// TestEvictionLRU: with a size cap armed, the store drops the
// least-recently-read disk entries first — a Get refreshes an entry's
// position, so the hot set survives a cap-exceeding Put.
func TestEvictionLRU(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(dir)

	pts := make([]Point, 3)
	sums := make([]agent.Summary, 3)
	for i := range pts {
		pts[i] = testPoint()
		pts[i].Seed = int64(100 + i)
		sums[i] = testSummary(2, pts[i].Seed)
	}
	if err := s.Put(pts[0], sums[0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(pts[1], sums[1]); err != nil {
		t.Fatal(err)
	}

	// Cap at the current two-entry footprint, then make entry 0 the most
	// recently used.
	if err := s.SetMaxBytes(1 << 30); err != nil { // arm the index to measure
		t.Fatal(err)
	}
	// Slack absorbs the few-byte size difference between entries, so the
	// third Put must evict exactly one LRU victim to fit.
	cap := s.DiskBytes() + 64
	if err := s.SetMaxBytes(cap); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(pts[0]); !ok {
		t.Fatal("entry 0 should be on disk")
	}

	// A third entry overflows the cap: the LRU victim is entry 1.
	if err := s.Put(pts[2], sums[2]); err != nil {
		t.Fatal(err)
	}
	if got := s.DiskBytes(); got > cap {
		t.Fatalf("disk footprint %d exceeds cap %d after eviction", got, cap)
	}
	fresh, _ := New(dir)
	if !fresh.Contains(pts[0]) {
		t.Fatal("recently read entry 0 was evicted")
	}
	if fresh.Contains(pts[1]) {
		t.Fatal("LRU entry 1 survived past the cap")
	}
	if !fresh.Contains(pts[2]) {
		t.Fatal("just-written entry 2 was evicted")
	}

	// Eviction only trims disk: the evicted point is still served from the
	// memory layer of the store that computed it.
	if _, ok := s.Get(pts[1]); !ok {
		t.Fatal("evicted point should remain resident in memory")
	}
	if got := s.Evictions(); got != 1 {
		t.Fatalf("evictions counter = %d, want 1", got)
	}
}

// TestStatsAndRegister asserts the Stats snapshot and the registered
// create_cache_* metric families report the same numbers as the accessor
// methods — the single-source-of-truth contract behind /v1/cache/stats
// and /metrics.
func TestStatsAndRegister(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(dir)
	p := testPoint()
	if _, ok := s.Get(p); ok { // one miss
		t.Fatal("unexpected hit")
	}
	if err := s.Put(p, testSummary(2, 2026)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(p); !ok { // one hit
		t.Fatal("expected hit")
	}

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 || st.Resident != 1 || st.Dir != dir {
		t.Fatalf("stats snapshot out of sync with accessors: %+v", st)
	}

	reg := obs.NewRegistry()
	s.Register(reg)
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	for _, line := range []string{
		"create_cache_hits_total 1",
		"create_cache_misses_total 1",
		"create_cache_evictions_total 0",
		"create_cache_resident_points 1",
		"create_cache_disk_bytes 0",
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("registered metrics missing %q:\n%s", line, b.String())
		}
	}
}

// TestSetMaxBytesScansExistingDir: arming a cap on a pre-populated directory
// enforces it immediately.
func TestSetMaxBytesScansExistingDir(t *testing.T) {
	dir := t.TempDir()
	writer, _ := New(dir)
	var pts []Point
	for i := 0; i < 4; i++ {
		p := testPoint()
		p.Seed = int64(200 + i)
		pts = append(pts, p)
		if err := writer.Put(p, testSummary(2, p.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	full := writer.DiskBytes() // 0: no cap armed yet
	if full != 0 {
		t.Fatalf("footprint tracked before a cap was armed: %d", full)
	}

	s, _ := New(dir)
	if err := s.SetMaxBytes(1); err != nil { // smaller than any entry
		t.Fatal(err)
	}
	left := 0
	for _, p := range pts {
		if s.Contains(p) {
			left++
		}
	}
	if left != 0 {
		t.Fatalf("cap of 1 byte left %d entries on disk", left)
	}
}

// TestMaxResidentBoundsMemory: the in-memory layer stays at the bound no
// matter how many distinct points pass through; dropped entries re-read
// from disk on demand, so nothing is lost for disk-backed stores.
func TestMaxResidentBoundsMemory(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(dir)
	s.SetMaxResident(3)

	pts := make([]Point, 6)
	for i := range pts {
		pts[i] = testPoint()
		pts[i].Seed = int64(300 + i)
		if err := s.Put(pts[i], testSummary(2, pts[i].Seed)); err != nil {
			t.Fatal(err)
		}
		if s.Len() > 3 {
			t.Fatalf("resident layer grew to %d past the bound", s.Len())
		}
	}
	// Every point is still served — from memory or by disk promotion.
	for _, p := range pts {
		if _, ok := s.Get(p); !ok {
			t.Fatalf("point %d lost after resident eviction", p.Seed)
		}
		if s.Len() > 3 {
			t.Fatalf("promotion grew the resident layer to %d", s.Len())
		}
	}
	// Tightening the bound trims immediately.
	s.SetMaxResident(1)
	if s.Len() > 1 {
		t.Fatalf("SetMaxResident(1) left %d resident", s.Len())
	}
}

// TestTouchMemPersistsStaleRecency: a memory-served read flushes its
// recency to the file's timestamps once the persist throttle has lapsed,
// so restart scans rank the hot working set correctly.
func TestTouchMemPersistsStaleRecency(t *testing.T) {
	dir := t.TempDir()
	s, _ := New(dir)
	p := testPoint()
	if err := s.Put(p, testSummary(2, 2026)); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMaxBytes(1 << 30); err != nil {
		t.Fatal(err)
	}
	path := s.path(p.Key())

	// Age both the file and the index entry past the persist interval.
	old := time.Now().Add(-2 * persistInterval)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	s.lru.Lock()
	e := s.lru.entries[path]
	e.atime, e.persisted = old, old
	s.lru.entries[path] = e
	s.lru.Unlock()

	if _, ok := s.Get(p); !ok { // memory hit
		t.Fatal("expected a memory hit")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ModTime().After(old.Add(persistInterval)) {
		t.Fatalf("stale recency not flushed to the file: mtime %v", st.ModTime())
	}
}

// TestCorruptEntryIsMiss: a torn or foreign file at a key's path must read
// as a miss, not poison the run.
func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	p := testPoint()
	s, _ := New(dir)
	if err := s.Put(p, testSummary(2, 2026)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, p.Key()[:2], p.Key()+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, _ := New(dir)
	if _, ok := fresh.Get(p); ok {
		t.Fatal("corrupt entry returned as a hit")
	}
}

// TestPayloadRoundTrip: auxiliary artifacts share the content-addressed
// store with grid points — resident reuse, disk persistence across
// processes, and the same one-hit-or-one-miss accounting.
func TestPayloadRoundTrip(t *testing.T) {
	type artifact struct {
		MSE    float64
		Epochs int
	}
	dir := t.TempDir()
	s, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	const fp = "payload|test-artifact|v1|epochs=3"
	var got artifact
	if s.GetPayload(fp, &got) {
		t.Fatal("empty store returned a payload hit")
	}
	if s.Misses() != 1 {
		t.Fatalf("payload miss not counted: %d", s.Misses())
	}
	want := artifact{MSE: 0.125, Epochs: 3}
	if err := s.PutPayload(fp, want); err != nil {
		t.Fatal(err)
	}
	if !s.GetPayload(fp, &got) || got != want {
		t.Fatalf("payload not returned intact: %+v", got)
	}
	if s.Hits() != 1 {
		t.Fatalf("payload hit not counted: %d", s.Hits())
	}

	// A cold store over the same directory decodes the payload from disk.
	cold, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	got = artifact{}
	if !cold.GetPayload(fp, &got) || got != want {
		t.Fatalf("disk payload replay failed: %+v", got)
	}

	// Unprefixed fingerprints are rejected: they could collide with a grid
	// point's canonical identity.
	if err := s.PutPayload("task=wooden", want); err == nil {
		t.Fatal("unprefixed payload fingerprint accepted")
	}

	// Payload and grid-point entries coexist: a Summary Get for a point
	// never confuses a payload entry and vice versa.
	p := testPoint()
	sum := testSummary(2, 7)
	if err := s.Put(p, sum); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(p); !ok || !reflect.DeepEqual(got, sum) {
		t.Fatal("summary entry disturbed by payload traffic")
	}
}

// TestExportImportStream: a store's entries survive the NDJSON wire format
// — subset export by key manifest, full export, idempotent import, and
// validation that rejects corrupt or address-forging records.
func TestExportImportStream(t *testing.T) {
	src, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := testPoint(), testPoint()
	p2.Seed = 9999
	s1, s2 := testSummary(2, 1), testSummary(2, 2)
	if err := src.Put(p1, s1); err != nil {
		t.Fatal(err)
	}
	if err := src.Put(p2, s2); err != nil {
		t.Fatal(err)
	}
	const fp = "payload|test-artifact|v1"
	if err := src.PutPayload(fp, 42); err != nil {
		t.Fatal(err)
	}

	// Subset export by manifest: one present key, one absent (skipped).
	var buf bytes.Buffer
	absent := Point{Task: "never-computed", Trials: 1}.Key()
	n, err := src.ExportTo(&buf, []string{p1.Key(), absent})
	if err != nil || n != 1 {
		t.Fatalf("subset export wrote %d entries, err %v", n, err)
	}
	dst, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := dst.ImportFrom(bytes.NewReader(buf.Bytes())); err != nil || n != 1 {
		t.Fatalf("import landed %d entries, err %v", n, err)
	}
	if got, ok := dst.Get(p1); !ok || !reflect.DeepEqual(got, s1) {
		t.Fatal("imported entry does not replay")
	}
	// Re-importing the same stream is a no-op: content addresses make the
	// transfer idempotent.
	if n, err := dst.ImportFrom(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("duplicate import landed %d entries, err %v", n, err)
	}

	// Full export moves everything, payloads included.
	buf.Reset()
	if n, err := src.ExportTo(&buf, nil); err != nil || n != 3 {
		t.Fatalf("full export wrote %d entries, err %v", n, err)
	}
	all, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := all.ImportFrom(bytes.NewReader(buf.Bytes())); err != nil || n != 3 {
		t.Fatalf("full import landed %d entries, err %v", n, err)
	}
	var v int
	if !all.GetPayload(fp, &v) || v != 42 {
		t.Fatal("payload did not survive the stream")
	}

	// A memory-only store can import too (entries land resident).
	mem, _ := New("")
	if n, err := mem.ImportFrom(bytes.NewReader(buf.Bytes())); err != nil || n != 3 {
		t.Fatalf("memory import landed %d entries, err %v", n, err)
	}
	if got, ok := mem.Get(p2); !ok || !reflect.DeepEqual(got, s2) {
		t.Fatal("memory import does not replay")
	}
	// ...but cannot export: disk is the complete record it lacks.
	if _, err := mem.ExportTo(&buf, nil); err == nil {
		t.Fatal("memory-only export should be refused")
	}

	// Validation: a record whose claimed key does not match its
	// fingerprint's address is rejected, as is a path-traversing manifest.
	forged := `{"key":"` + absent + `","entry":{"fingerprint":"` + p1.Fingerprint() + `","summary":{}}}`
	if _, err := dst.ImportFrom(strings.NewReader(forged)); err == nil {
		t.Fatal("address-forging record accepted")
	}
	if _, err := src.ExportTo(&buf, []string{"../../etc/passwd"}); err == nil {
		t.Fatal("path-traversing export key accepted")
	}
}

package cache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/world"
)

func testPoint() Point {
	return Point{
		Task:        "wooden_pickaxe",
		Controller:  "JARVIS-1 controller/INT8",
		PlannerProt: "none",
		ControlProt: "AD",
		ErrorModel:  "uniform",
		BER:         1e-5,
		PlannerV:    0.9,
		ControllerV: 0.9,
		VSInterval:  5,
		Trials:      4,
		Seed:        2026,
	}
}

// testSummary is a real aggregated run, so the round-trip tests exercise the
// exact value shapes (maps, nested results) the experiments layer caches.
func testSummary(trials int, seed int64) agent.Summary {
	return agent.RunManyWorkers(agent.Config{
		Task: world.TaskWooden, UniformBER: 0, Seed: seed,
	}, trials, 1)
}

func TestHitMissAccounting(t *testing.T) {
	s, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	p := testPoint()
	if _, ok := s.Get(p); ok {
		t.Fatal("empty store returned a hit")
	}
	if s.Hits() != 0 || s.Misses() != 1 {
		t.Fatalf("want 0 hits / 1 miss, got %d/%d", s.Hits(), s.Misses())
	}
	sum := testSummary(3, 2026)
	if err := s.Put(p, sum); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(p)
	if !ok || !reflect.DeepEqual(got, sum) {
		t.Fatal("stored summary not returned intact")
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %d/%d", s.Hits(), s.Misses())
	}
	if s.Len() != 1 {
		t.Fatalf("store should hold one point, holds %d", s.Len())
	}
}

// TestDistinctKeys guards the fingerprint against collisions between grid
// points that differ in exactly one evaluation-relevant dimension.
func TestDistinctKeys(t *testing.T) {
	base := testPoint()
	variants := map[string]func(p Point) Point{
		"seed":        func(p Point) Point { p.Seed = 7; return p },
		"trials":      func(p Point) Point { p.Trials = 100; return p },
		"error model": func(p Point) Point { p.ErrorModel = "voltage"; p.BER = 0; return p },
		"BER":         func(p Point) Point { p.BER = 3e-5; return p },
		"task":        func(p Point) Point { p.Task = "stone_pickaxe"; return p },
		"protection":  func(p Point) Point { p.ControlProt = "none"; return p },
		"fault model": func(p Point) Point { p.Controller = "JARVIS-1 controller/INT4"; return p },
		"voltage":     func(p Point) Point { p.ControllerV = 0.75; return p },
		"policy":      func(p Point) Point { p.Policy = "C"; return p },
	}
	seen := map[string]string{base.Key(): "base"}
	for name, mutate := range variants {
		k := mutate(base).Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("point differing only in %s collides with %s", name, prev)
		}
		seen[k] = name
	}
	if base.Key() != testPoint().Key() {
		t.Fatal("identical points must share a key")
	}
}

// TestDiskRoundTrip persists a real Summary and reloads it through a fresh
// store: the replayed value must be indistinguishable from the computed one.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p := testPoint()
	sum := testSummary(4, 2026)

	s1, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(p, sum); err != nil {
		t.Fatal(err)
	}

	s2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(p)
	if !ok {
		t.Fatal("persisted entry not found by a fresh store")
	}
	if !reflect.DeepEqual(got, sum) {
		t.Fatalf("round-trip changed the summary:\nwant %+v\ngot  %+v", sum, got)
	}
	if s2.Hits() != 1 || s2.Misses() != 0 {
		t.Fatalf("disk hit miscounted: %d hits / %d misses", s2.Hits(), s2.Misses())
	}

	// A different seed is a different address — the fresh store must miss.
	other := p
	other.Seed = 1
	if _, ok := s2.Get(other); ok {
		t.Fatal("differing seed must not resolve to the persisted entry")
	}
}

func TestMergeDirs(t *testing.T) {
	root := t.TempDir()
	a := filepath.Join(root, "a")
	b := filepath.Join(root, "b")
	dst := filepath.Join(root, "merged")

	pa, pb := testPoint(), testPoint()
	pb.Seed = 31
	sa, sb := testSummary(2, 2026), testSummary(2, 31)

	storeA, _ := New(a)
	storeB, _ := New(b)
	if err := storeA.Put(pa, sa); err != nil {
		t.Fatal(err)
	}
	// The overlapping point lands in both shards, as happens when two
	// shards' sweeps share a grid point; the union must not double-copy.
	if err := storeB.Put(pa, sa); err != nil {
		t.Fatal(err)
	}
	if err := storeB.Put(pb, sb); err != nil {
		t.Fatal(err)
	}

	n, err := MergeDirs(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("want 2 entries copied, got %d", n)
	}

	merged, _ := New(dst)
	if got, ok := merged.Get(pa); !ok || !reflect.DeepEqual(got, sa) {
		t.Fatal("merged store missing shard A's entry")
	}
	if got, ok := merged.Get(pb); !ok || !reflect.DeepEqual(got, sb) {
		t.Fatal("merged store missing shard B's entry")
	}

	// Idempotent: re-merging copies nothing new.
	if n, err = MergeDirs(dst, a, b); err != nil || n != 0 {
		t.Fatalf("re-merge should be a no-op, copied %d (err %v)", n, err)
	}
}

// TestCorruptEntryIsMiss: a torn or foreign file at a key's path must read
// as a miss, not poison the run.
func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	p := testPoint()
	s, _ := New(dir)
	if err := s.Put(p, testSummary(2, 2026)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, p.Key()[:2], p.Key()+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, _ := New(dir)
	if _, ok := fresh.Get(p); ok {
		t.Fatal("corrupt entry returned as a hit")
	}
}

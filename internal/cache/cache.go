// Package cache is the content-addressed evaluation-reuse layer of the
// Monte-Carlo suite. Every cacheable grid point of the experiments layer is
// described by a Point — the canonical fingerprint of one runTask
// invocation: task, fault-model identities, protection labels, error
// condition, voltages, VS policy, trials and seed. Identical fingerprints
// are guaranteed (by the engine's determinism contract) to produce
// bit-identical agent.Summary values, so a Summary computed once can be
// replayed anywhere: within one process (Fig. 16's reliability and
// efficiency sweeps share dozens of runOverall points), across processes
// (warm -cache-dir reruns), and across machines (sharded sweeps whose cache
// directories are merged back into the full result set).
//
// On disk a store is a directory of content-addressed JSON entries,
// <dir>/<key[:2]>/<key>.json, where key = SHA-256(fingerprint). Each entry
// records the full fingerprint alongside the Summary, so files are
// self-describing, collisions are detectable, and shard directories can be
// merged by plain file union (MergeDirs): determinism makes same-key files
// byte-identical, so union order cannot matter.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/obs"
)

//create:walltime-ok hit/miss latency accounting in Stats is operational telemetry; no cached Summary byte depends on it

// Point is the canonical fingerprint of one Monte-Carlo grid point. Its
// fields must fully determine the agent.Config (plus trial count and base
// seed) of the run it names; call sites whose configs contain function
// values the fingerprint cannot inspect (VS policies, corruption overrides)
// identify them through the Policy and Override names.
type Point struct {
	Task string
	// Planner and Controller identify the attached fault models
	// (bridge.FaultModel.ID); "" means error-free on that side.
	Planner    string
	Controller string
	// PlannerProt and ControlProt are protection labels ("none", "AD",
	// "WR", "AD+WR").
	PlannerProt string
	ControlProt string
	// ErrorModel is "uniform" (BER-driven, BER set, voltages irrelevant to
	// corruption but still metered for energy) or "voltage" (timing-model
	// driven at PlannerV/ControllerV).
	ErrorModel  string
	BER         float64
	PlannerV    float64
	ControllerV float64
	// Policy names the VS policy when cfg.VSPolicy is set ("" = constant
	// voltage); Override names corruption-override hooks (baselines).
	Policy     string
	VSInterval int
	Override   string
	Trials     int
	Seed       int64
}

// Fingerprint renders the canonical identity string. Field values are
// plain platform/policy names and never contain the separator.
func (p Point) Fingerprint() string {
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	return strings.Join([]string{
		"task=" + p.Task,
		"planner=" + p.Planner,
		"controller=" + p.Controller,
		"pprot=" + p.PlannerProt,
		"cprot=" + p.ControlProt,
		"errmodel=" + p.ErrorModel,
		"ber=" + f(p.BER),
		"pv=" + f(p.PlannerV),
		"cv=" + f(p.ControllerV),
		"policy=" + p.Policy,
		"vsint=" + strconv.Itoa(p.VSInterval),
		"override=" + p.Override,
		"trials=" + strconv.Itoa(p.Trials),
		"seed=" + strconv.FormatInt(p.Seed, 10),
	}, "|")
}

// Key is the content address of the point: SHA-256 of the fingerprint.
func (p Point) Key() string { return keyOf(p.Fingerprint()) }

// entry is the on-disk record: the fingerprint makes the file
// self-describing and lets Get reject key collisions and stale layouts.
// Grid-point entries carry a Summary; auxiliary artifacts (PutPayload —
// e.g. the Fig. 14 predictor training result) carry a Payload instead.
// Exactly one of the two is set; older stores (Summary-only schema) decode
// unchanged with a nil Payload.
type entry struct {
	Fingerprint string          `json:"fingerprint"`
	Summary     agent.Summary   `json:"summary"`
	Payload     json.RawMessage `json:"payload,omitempty"`
}

// keyOf is the content address of an arbitrary fingerprint string —
// Point.Key for grid points, and the same SHA-256 mapping for payload
// fingerprints, so both entry kinds share one on-disk namespace.
func keyOf(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(sum[:])
}

// Store is a goroutine-safe Summary cache: an in-memory map in front of an
// optional on-disk directory. A dir of "" is a process-local memory cache.
type Store struct {
	dir string

	mu          sync.RWMutex
	mem         map[string]agent.Summary
	payloads    map[string]json.RawMessage // by fingerprint; auxiliary artifacts
	maxResident int

	// hits/misses/evictions are obs counters so /v1/cache/stats, the
	// coordinator summary, and /metrics all read one set of numbers
	// (Register exposes them as create_cache_* families).
	hits, misses, evictions obs.Counter

	// lru tracks the disk footprint once SetMaxBytes arms a size cap.
	// Separate from mu: eviction does file I/O and must not block readers
	// of the memory map.
	lru struct {
		sync.Mutex
		max     int64
		total   int64
		entries map[string]lruEntry // by absolute file path
	}
}

// lruEntry is one disk file's bookkeeping for eviction: its size, the last
// time a Get read it (or its mtime when discovered by a scan), and when
// that recency was last flushed to the file's own timestamps.
type lruEntry struct {
	size      int64
	atime     time.Time
	persisted time.Time
}

// persistInterval throttles how often a memory-served read flushes its
// recency to the backing file's timestamps: often enough that restart
// scans rank the hot working set correctly, rare enough that the hot path
// stays free of per-read syscalls.
const persistInterval = 5 * time.Minute

// New opens (creating if needed) a store rooted at dir, or a memory-only
// store when dir is empty.
func New(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{
		dir:      dir,
		mem:      make(map[string]agent.Summary),
		payloads: make(map[string]json.RawMessage),
	}, nil
}

// Dir returns the backing directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// SetMaxResident bounds the in-memory layer at n summaries (<= 0 removes
// the bound, the default). Past the bound, arbitrary entries are dropped
// from memory — disk-backed stores re-read them on demand, memory-only
// stores recompute — so a long-lived daemon's resident set stays flat no
// matter how many distinct grid points pass through it. Summaries are
// small; the bound is a backstop, not a tuning knob.
func (s *Store) SetMaxResident(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxResident = n
	s.dropOverResidentLocked("")
}

// dropOverResidentLocked trims the memory map to the resident bound,
// sparing the just-touched key.
func (s *Store) dropOverResidentLocked(keep string) {
	if s.maxResident <= 0 {
		return
	}
	for key := range s.mem {
		if len(s.mem) <= s.maxResident {
			return
		}
		if key == keep {
			continue
		}
		delete(s.mem, key)
	}
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get returns the cached Summary for p. Memory is consulted first, then
// disk (promoting the entry to memory). Every call counts as exactly one
// hit or one miss.
func (s *Store) Get(p Point) (agent.Summary, bool) {
	key := p.Key()
	s.mu.RLock()
	sum, ok := s.mem[key]
	s.mu.RUnlock()
	if ok {
		s.touchMem(key)
		s.hits.Inc()
		return sum, true
	}
	if s.dir != "" {
		path := s.path(key)
		if data, err := os.ReadFile(path); err == nil {
			var e entry
			if json.Unmarshal(data, &e) == nil && e.Fingerprint == p.Fingerprint() {
				s.mu.Lock()
				s.mem[key] = e.Summary
				s.dropOverResidentLocked(key)
				s.mu.Unlock()
				s.touch(path, int64(len(data)))
				s.hits.Inc()
				return e.Summary, true
			}
		}
	}
	s.misses.Inc()
	return agent.Summary{}, false
}

// Contains reports whether p is resident in memory or present on disk,
// without counting a hit or miss and without promoting disk entries — the
// read-only probe behind cache-aware planning, where a whole figure's grid
// is interrogated before deciding what a run would actually compute.
func (s *Store) Contains(p Point) bool {
	key := p.Key()
	s.mu.RLock()
	_, ok := s.mem[key]
	s.mu.RUnlock()
	if ok || s.dir == "" {
		return ok
	}
	st, err := os.Stat(s.path(key))
	return err == nil && st.Size() > 0
}

// ContainsKey is Contains by raw content address, for callers that hold
// a key manifest rather than Points (the dispatch tier filtering a shard
// pull down to entries it does not already have). Same contract: no
// accounting, no promotion.
func (s *Store) ContainsKey(key string) bool {
	s.mu.RLock()
	_, ok := s.mem[key]
	s.mu.RUnlock()
	if ok || s.dir == "" || !validKey(key) {
		return ok
	}
	st, err := os.Stat(s.path(key))
	return err == nil && st.Size() > 0
}

// Put stores the Summary for p in memory and, for disk-backed stores,
// persists it atomically (temp file + rename) so concurrent sweep workers
// and crashed runs can never leave a torn entry.
func (s *Store) Put(p Point, sum agent.Summary) error {
	key := p.Key()
	s.mu.Lock()
	s.mem[key] = sum
	s.dropOverResidentLocked(key)
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	data, err := json.Marshal(entry{Fingerprint: p.Fingerprint(), Summary: sum})
	if err != nil {
		return err
	}
	path := s.path(key)
	if err := writeFileAtomic(path, data); err != nil {
		return err
	}
	s.record(path, int64(len(data)))
	return nil
}

// SetMaxBytes caps the disk footprint of a disk-backed store at maxBytes,
// evicting least-recently-used entries (recency = last Get that read the
// file, persisted across processes by bumping the file's timestamps; cold
// entries start from their mtime). The cap is enforced now — scanning the
// directory — and after every Put. maxBytes <= 0 removes the cap. Eviction
// only trims disk files: summaries already promoted to memory stay resident,
// and an evicted point simply recomputes (and re-persists) on next use.
func (s *Store) SetMaxBytes(maxBytes int64) error {
	if s.dir == "" {
		return nil
	}
	s.lru.Lock()
	defer s.lru.Unlock()
	s.lru.max = maxBytes
	if maxBytes <= 0 {
		s.lru.entries, s.lru.total = nil, 0
		return nil
	}
	s.lru.entries = make(map[string]lruEntry)
	s.lru.total = 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with an eviction or merge; skip
		}
		s.lru.entries[path] = lruEntry{size: info.Size(), atime: info.ModTime()}
		s.lru.total += info.Size()
		return nil
	})
	s.evictLocked()
	return err
}

// record notes a freshly written entry and enforces the cap. No-op without
// a cap armed.
func (s *Store) record(path string, size int64) {
	s.lru.Lock()
	defer s.lru.Unlock()
	if s.lru.max <= 0 {
		return
	}
	if old, ok := s.lru.entries[path]; ok {
		s.lru.total -= old.size
	}
	s.lru.entries[path] = lruEntry{size: size, atime: time.Now()}
	s.lru.total += size
	s.evictLocked()
}

// touchMem bumps recency for a read served from the memory layer, so the
// hot working set never ranks as cold on disk. The in-process index is
// updated on every read; the backing file's timestamps — what a restart's
// SetMaxBytes scan ranks by — are flushed at most once per persistInterval
// per entry, keeping the common path free of per-read syscalls. Entries
// the index has never seen are left for the disk-read path to adopt.
func (s *Store) touchMem(key string) {
	if s.dir == "" {
		return
	}
	s.lru.Lock()
	defer s.lru.Unlock()
	if s.lru.max <= 0 {
		return
	}
	path := s.path(key)
	e, ok := s.lru.entries[path]
	if !ok {
		return
	}
	now := time.Now()
	e.atime = now
	if now.Sub(e.persisted) >= persistInterval {
		_ = os.Chtimes(path, now, now)
		e.persisted = now
	}
	s.lru.entries[path] = e
}

// touch bumps an entry's recency on a disk read. Entries the index has
// never seen (e.g. files landed by MergeDirs after the SetMaxBytes scan)
// are adopted lazily. The file's own timestamps are bumped so recency
// survives process restarts.
func (s *Store) touch(path string, size int64) {
	s.lru.Lock()
	defer s.lru.Unlock()
	if s.lru.max <= 0 {
		return
	}
	if old, known := s.lru.entries[path]; known {
		s.lru.total -= old.size
	}
	now := time.Now()
	s.lru.entries[path] = lruEntry{size: size, atime: now, persisted: now}
	s.lru.total += size
	_ = os.Chtimes(path, now, now)
	s.evictLocked()
}

// evictLocked removes oldest-access files until the footprint fits the cap.
// Grid entries are small and evictions rare, so a linear oldest scan per
// removal beats maintaining an ordered structure on every read.
func (s *Store) evictLocked() {
	for s.lru.max > 0 && s.lru.total > s.lru.max && len(s.lru.entries) > 0 {
		var oldest string
		var oldestAt time.Time
		for path, e := range s.lru.entries {
			if oldest == "" || e.atime.Before(oldestAt) {
				oldest, oldestAt = path, e.atime
			}
		}
		s.lru.total -= s.lru.entries[oldest].size
		delete(s.lru.entries, oldest)
		_ = os.Remove(oldest)
		s.evictions.Inc()
	}
}

// DiskBytes reports the tracked on-disk footprint (0 until SetMaxBytes arms
// the index).
func (s *Store) DiskBytes() int64 {
	s.lru.Lock()
	defer s.lru.Unlock()
	return s.lru.total
}

// writeFileAtomic lands data at path via temp file + rename, so concurrent
// writers and crashed runs can never leave a torn entry.
func writeFileAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Hits and Misses report Get accounting; Evictions counts disk files
// removed by the LRU cap; Len is the number of distinct points resident in
// memory (every Put and every promoted disk hit).
func (s *Store) Hits() int64      { return s.hits.Value() }
func (s *Store) Misses() int64    { return s.misses.Value() }
func (s *Store) Evictions() int64 { return s.evictions.Value() }

func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// Stats is one consistent snapshot of the store's accounting — the single
// source behind /v1/cache/stats, the CLI shutdown summaries, and the
// /metrics families, so the numbers cannot drift between surfaces.
type Stats struct {
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Evictions int64  `json:"evictions"`
	Resident  int    `json:"resident"`
	DiskBytes int64  `json:"disk_bytes"`
	Dir       string `json:"dir,omitempty"`
}

// Stats returns the current accounting snapshot.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.Hits(),
		Misses:    s.Misses(),
		Evictions: s.Evictions(),
		Resident:  s.Len(),
		DiskBytes: s.DiskBytes(),
		Dir:       s.dir,
	}
}

// Register exposes the store's accounting on reg as the create_cache_*
// metric families. The registered functions read the same counters Stats
// reports — one code path for every surface.
func (s *Store) Register(reg *obs.Registry) {
	reg.CounterFunc("create_cache_hits_total",
		"Cache reads served from memory or disk.", s.Hits)
	reg.CounterFunc("create_cache_misses_total",
		"Cache reads that found nothing and forced a compute.", s.Misses)
	reg.CounterFunc("create_cache_evictions_total",
		"Disk entries removed by the LRU byte cap.", s.Evictions)
	reg.GaugeFunc("create_cache_resident_points",
		"Distinct grid points resident in the memory layer.",
		func() float64 { return float64(s.Len()) })
	reg.GaugeFunc("create_cache_disk_bytes",
		"Tracked on-disk footprint (0 until a byte cap arms the index).",
		func() float64 { return float64(s.DiskBytes()) })
}

// ---------------------------------------------------------------------------
// Payload entries: auxiliary content-addressed artifacts.

// PutPayload stores an arbitrary JSON-marshalable artifact under a raw
// fingerprint — the reuse path for expensive non-Summary work such as the
// Fig. 14 predictor training result. Payload fingerprints must be prefixed
// "payload|" so they can never collide with a grid point's canonical
// fingerprint (which always starts "task="); the prefix is enforced here.
func (s *Store) PutPayload(fingerprint string, v any) error {
	if !strings.HasPrefix(fingerprint, "payload|") {
		return fmt.Errorf("payload fingerprint %q must be prefixed \"payload|\"", fingerprint)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.payloads[fingerprint] = raw
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	data, err := json.Marshal(entry{Fingerprint: fingerprint, Payload: raw})
	if err != nil {
		return err
	}
	path := s.path(keyOf(fingerprint))
	if err := writeFileAtomic(path, data); err != nil {
		return err
	}
	s.record(path, int64(len(data)))
	return nil
}

// GetPayload retrieves an artifact stored by PutPayload, unmarshalling it
// into v. Accounting mirrors Get: every call is exactly one hit or one
// miss, so a replay that reuses a payload shows up as zero misses.
func (s *Store) GetPayload(fingerprint string, v any) bool {
	s.mu.RLock()
	raw, ok := s.payloads[fingerprint]
	s.mu.RUnlock()
	if ok {
		if json.Unmarshal(raw, v) == nil {
			s.hits.Inc()
			return true
		}
		s.misses.Inc()
		return false
	}
	if s.dir != "" {
		path := s.path(keyOf(fingerprint))
		if data, err := os.ReadFile(path); err == nil {
			var e entry
			if json.Unmarshal(data, &e) == nil && e.Fingerprint == fingerprint &&
				e.Payload != nil && json.Unmarshal(e.Payload, v) == nil {
				s.mu.Lock()
				s.payloads[fingerprint] = e.Payload
				s.mu.Unlock()
				s.touch(path, int64(len(data)))
				s.hits.Inc()
				return true
			}
		}
	}
	s.misses.Inc()
	return false
}

// ---------------------------------------------------------------------------
// Streaming transfer: the wire format behind /v1/cache/export and
// /v1/cache/import, and the coordinator's pull of a worker's shard cache.

// exportRecord is one NDJSON line of a cache transfer: the content address
// plus the raw on-disk entry bytes. Shipping the raw entry keeps the
// stream schema-agnostic — Summary and Payload entries travel identically
// — and lets the importer land files byte-for-byte.
type exportRecord struct {
	Key   string          `json:"key"`
	Entry json.RawMessage `json:"entry"`
}

// ExportTo streams cache entries to w as NDJSON, one exportRecord per
// line, returning how many were written. A nil or empty keys slice exports
// every entry; otherwise only the listed content addresses are exported,
// and keys not present are silently skipped (the caller's manifest may be
// a superset of what this store ever computed — dynamic grids, partial
// shards). Export reads the backing directory, so it requires a
// disk-backed store; with per-point determinism, disk is the complete
// record of everything a disk-backed store holds.
func (s *Store) ExportTo(w io.Writer, keys []string) (int, error) {
	if s.dir == "" {
		return 0, fmt.Errorf("cache export requires a disk-backed store")
	}
	enc := json.NewEncoder(w)
	written := 0
	emit := func(key, path string) error {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if err := enc.Encode(exportRecord{Key: key, Entry: data}); err != nil {
			return err
		}
		written++
		return nil
	}
	if len(keys) > 0 {
		for _, key := range keys {
			if !validKey(key) {
				return written, fmt.Errorf("invalid cache key %q", key)
			}
			if err := emit(key, s.path(key)); err != nil {
				return written, err
			}
		}
		return written, nil
	}
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		return emit(strings.TrimSuffix(filepath.Base(path), ".json"), path)
	})
	return written, err
}

// ImportFrom lands a stream produced by ExportTo, returning how many
// entries were new. Every record is validated before it touches the store:
// the entry must carry a fingerprint whose SHA-256 reproduces the claimed
// key, so a corrupt or adversarial stream can neither poison unrelated
// addresses nor escape the cache directory. Records already present are
// skipped — imports are idempotent, which is what makes a duplicated
// shard transfer merge at most once.
func (s *Store) ImportFrom(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	imported := 0
	for {
		var rec exportRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return imported, nil
		} else if err != nil {
			return imported, fmt.Errorf("corrupt cache stream: %w", err)
		}
		var e entry
		if err := json.Unmarshal(rec.Entry, &e); err != nil || e.Fingerprint == "" {
			return imported, fmt.Errorf("corrupt cache entry for key %q", rec.Key)
		}
		key := keyOf(e.Fingerprint)
		if rec.Key != "" && rec.Key != key {
			return imported, fmt.Errorf("cache entry key mismatch: claimed %q, fingerprint addresses %q", rec.Key, key)
		}
		if s.dir == "" {
			// Memory-only stores land entries directly in the resident maps.
			s.mu.Lock()
			if e.Payload != nil {
				if _, ok := s.payloads[e.Fingerprint]; ok {
					s.mu.Unlock()
					continue
				}
				s.payloads[e.Fingerprint] = e.Payload
			} else {
				if _, ok := s.mem[key]; ok {
					s.mu.Unlock()
					continue
				}
				s.mem[key] = e.Summary
				s.dropOverResidentLocked(key)
			}
			s.mu.Unlock()
			imported++
			continue
		}
		path := s.path(key)
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			continue
		}
		if err := writeFileAtomic(path, rec.Entry); err != nil {
			return imported, err
		}
		s.record(path, int64(len(rec.Entry)))
		imported++
	}
}

// validKey reports whether key is a well-formed content address (64
// lowercase hex chars) — the guard that keeps caller-supplied keys from
// traversing outside the cache directory.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// MergeDirs unions shard cache directories into dst and returns the number
// of entries copied. Entries already present in dst are skipped: identical
// fingerprints hold byte-identical summaries (the engine's determinism
// contract), so a union is the complete merge — no conflict resolution
// exists to get wrong.
func MergeDirs(dst string, srcs ...string) (int, error) {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return 0, err
	}
	copied := 0
	for _, src := range srcs {
		err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".json") {
				return nil
			}
			rel, err := filepath.Rel(src, path)
			if err != nil {
				return err
			}
			target := filepath.Join(dst, rel)
			if _, err := os.Stat(target); err == nil {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if err := writeFileAtomic(target, data); err != nil {
				return err
			}
			copied++
			return nil
		})
		if err != nil {
			return copied, err
		}
	}
	return copied, nil
}

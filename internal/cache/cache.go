// Package cache is the content-addressed evaluation-reuse layer of the
// Monte-Carlo suite. Every cacheable grid point of the experiments layer is
// described by a Point — the canonical fingerprint of one runTask
// invocation: task, fault-model identities, protection labels, error
// condition, voltages, VS policy, trials and seed. Identical fingerprints
// are guaranteed (by the engine's determinism contract) to produce
// bit-identical agent.Summary values, so a Summary computed once can be
// replayed anywhere: within one process (Fig. 16's reliability and
// efficiency sweeps share dozens of runOverall points), across processes
// (warm -cache-dir reruns), and across machines (sharded sweeps whose cache
// directories are merged back into the full result set).
//
// On disk a store is a directory of content-addressed JSON entries,
// <dir>/<key[:2]>/<key>.json, where key = SHA-256(fingerprint). Each entry
// records the full fingerprint alongside the Summary, so files are
// self-describing, collisions are detectable, and shard directories can be
// merged by plain file union (MergeDirs): determinism makes same-key files
// byte-identical, so union order cannot matter.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/embodiedai/create/internal/agent"
)

// Point is the canonical fingerprint of one Monte-Carlo grid point. Its
// fields must fully determine the agent.Config (plus trial count and base
// seed) of the run it names; call sites whose configs contain function
// values the fingerprint cannot inspect (VS policies, corruption overrides)
// identify them through the Policy and Override names.
type Point struct {
	Task string
	// Planner and Controller identify the attached fault models
	// (bridge.FaultModel.ID); "" means error-free on that side.
	Planner    string
	Controller string
	// PlannerProt and ControlProt are protection labels ("none", "AD",
	// "WR", "AD+WR").
	PlannerProt string
	ControlProt string
	// ErrorModel is "uniform" (BER-driven, BER set, voltages irrelevant to
	// corruption but still metered for energy) or "voltage" (timing-model
	// driven at PlannerV/ControllerV).
	ErrorModel  string
	BER         float64
	PlannerV    float64
	ControllerV float64
	// Policy names the VS policy when cfg.VSPolicy is set ("" = constant
	// voltage); Override names corruption-override hooks (baselines).
	Policy     string
	VSInterval int
	Override   string
	Trials     int
	Seed       int64
}

// Fingerprint renders the canonical identity string. Field values are
// plain platform/policy names and never contain the separator.
func (p Point) Fingerprint() string {
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	return strings.Join([]string{
		"task=" + p.Task,
		"planner=" + p.Planner,
		"controller=" + p.Controller,
		"pprot=" + p.PlannerProt,
		"cprot=" + p.ControlProt,
		"errmodel=" + p.ErrorModel,
		"ber=" + f(p.BER),
		"pv=" + f(p.PlannerV),
		"cv=" + f(p.ControllerV),
		"policy=" + p.Policy,
		"vsint=" + strconv.Itoa(p.VSInterval),
		"override=" + p.Override,
		"trials=" + strconv.Itoa(p.Trials),
		"seed=" + strconv.FormatInt(p.Seed, 10),
	}, "|")
}

// Key is the content address of the point: SHA-256 of the fingerprint.
func (p Point) Key() string {
	sum := sha256.Sum256([]byte(p.Fingerprint()))
	return hex.EncodeToString(sum[:])
}

// entry is the on-disk record: the fingerprint makes the file
// self-describing and lets Get reject key collisions and stale layouts.
type entry struct {
	Fingerprint string        `json:"fingerprint"`
	Summary     agent.Summary `json:"summary"`
}

// Store is a goroutine-safe Summary cache: an in-memory map in front of an
// optional on-disk directory. A dir of "" is a process-local memory cache.
type Store struct {
	dir string

	mu  sync.RWMutex
	mem map[string]agent.Summary

	hits, misses atomic.Int64
}

// New opens (creating if needed) a store rooted at dir, or a memory-only
// store when dir is empty.
func New(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir, mem: make(map[string]agent.Summary)}, nil
}

// Dir returns the backing directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get returns the cached Summary for p. Memory is consulted first, then
// disk (promoting the entry to memory). Every call counts as exactly one
// hit or one miss.
func (s *Store) Get(p Point) (agent.Summary, bool) {
	key := p.Key()
	s.mu.RLock()
	sum, ok := s.mem[key]
	s.mu.RUnlock()
	if ok {
		s.hits.Add(1)
		return sum, true
	}
	if s.dir != "" {
		if data, err := os.ReadFile(s.path(key)); err == nil {
			var e entry
			if json.Unmarshal(data, &e) == nil && e.Fingerprint == p.Fingerprint() {
				s.mu.Lock()
				s.mem[key] = e.Summary
				s.mu.Unlock()
				s.hits.Add(1)
				return e.Summary, true
			}
		}
	}
	s.misses.Add(1)
	return agent.Summary{}, false
}

// Put stores the Summary for p in memory and, for disk-backed stores,
// persists it atomically (temp file + rename) so concurrent sweep workers
// and crashed runs can never leave a torn entry.
func (s *Store) Put(p Point, sum agent.Summary) error {
	key := p.Key()
	s.mu.Lock()
	s.mem[key] = sum
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	data, err := json.Marshal(entry{Fingerprint: p.Fingerprint(), Summary: sum})
	if err != nil {
		return err
	}
	return writeFileAtomic(s.path(key), data)
}

// writeFileAtomic lands data at path via temp file + rename, so concurrent
// writers and crashed runs can never leave a torn entry.
func writeFileAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Hits and Misses report Get accounting; Len is the number of distinct
// points resident in memory (every Put and every promoted disk hit).
func (s *Store) Hits() int64   { return s.hits.Load() }
func (s *Store) Misses() int64 { return s.misses.Load() }

func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.mem)
}

// MergeDirs unions shard cache directories into dst and returns the number
// of entries copied. Entries already present in dst are skipped: identical
// fingerprints hold byte-identical summaries (the engine's determinism
// contract), so a union is the complete merge — no conflict resolution
// exists to get wrong.
func MergeDirs(dst string, srcs ...string) (int, error) {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return 0, err
	}
	copied := 0
	for _, src := range srcs {
		err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".json") {
				return nil
			}
			rel, err := filepath.Rel(src, path)
			if err != nil {
				return err
			}
			target := filepath.Join(dst, rel)
			if _, err := os.Stat(target); err == nil {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if err := writeFileAtomic(target, data); err != nil {
				return err
			}
			copied++
			return nil
		})
		if err != nil {
			return copied, err
		}
	}
	return copied, nil
}

// Package ldo is a behavioural model of the distributed digital low-dropout
// regulators that implement the voltage-scaling system (Sec. 5.3, Fig. 12,
// Table 2): 0.6-0.9 V output in 10 mV steps, a 90 ns / 50 mV transient
// response, and 99.8 % peak current efficiency, after the event-driven
// design of [103].
package ldo

import (
	"math"
)

// LDO holds the regulator's Table 2 specifications.
type LDO struct {
	VMin, VMax float64 // output range (V)
	StepV      float64 // output resolution (V)
	// SlewSPerV is the transient response expressed in seconds per volt
	// (90 ns per 50 mV).
	SlewSPerV float64
	// PeakEfficiency at maximum load current.
	PeakEfficiency float64
	// ILoadMax is the maximum load current (A).
	ILoadMax float64
	// AreaMM2 is the regulator macro area.
	AreaMM2 float64
	// CurrentDensity in A/mm^2.
	CurrentDensity float64
}

// Default returns the Table 2 regulator.
func Default() *LDO {
	return &LDO{
		VMin: 0.60, VMax: 0.90, StepV: 0.010,
		SlewSPerV:      90e-9 / 0.050,
		PeakEfficiency: 0.998,
		ILoadMax:       15.2,
		AreaMM2:        0.43,
		CurrentDensity: 35,
	}
}

// Quantize snaps a requested voltage onto the regulator's grid, clamping to
// the output range.
func (l *LDO) Quantize(v float64) float64 {
	if v < l.VMin {
		return l.VMin
	}
	if v > l.VMax {
		return l.VMax
	}
	steps := math.Round((v - l.VMin) / l.StepV)
	// Re-round to whole millivolts so grid values are exact (0.6 + 30*0.01
	// would otherwise land at 0.8999999999999999).
	return math.Round((l.VMin+steps*l.StepV)*1000) / 1000
}

// TransitionTime returns the settling time of a step from one voltage to
// another, in seconds. The full-range 0.6 -> 0.9 V swing takes 540 ns — the
// switching-latency bound of Table 3.
func (l *LDO) TransitionTime(from, to float64) float64 {
	return math.Abs(to-from) * l.SlewSPerV
}

// MaxSwitchingLatency is the full-range transition time (Table 3: 540 ns).
func (l *LDO) MaxSwitchingLatency() float64 { return l.TransitionTime(l.VMin, l.VMax) }

// LossEnergy returns the regulator's own dissipation for delivering `joules`
// to the load: (1-eta)/eta of the delivered energy. At 99.8 % efficiency the
// overhead is negligible, which is why the paper reports "switching power is
// negligible in practice".
func (l *LDO) LossEnergy(joules float64) float64 {
	return joules * (1 - l.PeakEfficiency) / l.PeakEfficiency
}

// WavePoint is one sample of a transition waveform (Fig. 12(d)/(e)).
type WavePoint struct {
	TimeNS  float64
	Voltage float64
}

// Waveform simulates a sequence of target voltages, sampling the output
// every sampleNS nanoseconds while it slews linearly between levels and then
// holds for holdNS.
func (l *LDO) Waveform(targets []float64, holdNS, sampleNS float64) []WavePoint {
	var out []WavePoint
	if len(targets) == 0 || sampleNS <= 0 {
		return out
	}
	t := 0.0
	v := l.Quantize(targets[0])
	out = append(out, WavePoint{0, v})
	for _, raw := range targets {
		target := l.Quantize(raw)
		// Slew phase.
		for v != target {
			dv := l.StepV
			if math.Abs(target-v) < dv {
				dv = math.Abs(target - v)
			}
			if target < v {
				dv = -dv
			}
			v += dv
			t += math.Abs(dv) * l.SlewSPerV * 1e9
			out = append(out, WavePoint{t, v})
		}
		// Hold phase.
		for ht := sampleNS; ht <= holdNS; ht += sampleNS {
			out = append(out, WavePoint{t + ht, v})
		}
		t += holdNS
	}
	return out
}

// Levels returns every voltage the regulator can output, ascending.
func (l *LDO) Levels() []float64 {
	var out []float64
	for v := l.VMin; v <= l.VMax+1e-9; v += l.StepV {
		out = append(out, math.Round(v*1000)/1000)
	}
	return out
}

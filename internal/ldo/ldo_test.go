package ldo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQuantizeGridAndClamp(t *testing.T) {
	l := Default()
	if v := l.Quantize(0.844); math.Abs(v-0.84) > 1e-9 {
		t.Fatalf("quantize 0.844 -> %v", v)
	}
	if v := l.Quantize(0.846); math.Abs(v-0.85) > 1e-9 {
		t.Fatalf("quantize 0.846 -> %v", v)
	}
	if l.Quantize(0.3) != l.VMin || l.Quantize(1.2) != l.VMax {
		t.Fatal("clamping failed")
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	l := Default()
	f := func(raw uint16) bool {
		v := 0.5 + float64(raw%500)/1000
		q := l.Quantize(v)
		return l.Quantize(q) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFullSwingIs540ns(t *testing.T) {
	l := Default()
	// Table 3: 0.6 -> 0.9 V at 90 ns / 50 mV = 540 ns.
	if got := l.MaxSwitchingLatency(); math.Abs(got-540e-9) > 1e-12 {
		t.Fatalf("max switching latency %v", got)
	}
	if tt := l.TransitionTime(0.8, 0.85); math.Abs(tt-90e-9) > 1e-12 {
		t.Fatalf("50mV step took %v", tt)
	}
}

func TestLevels(t *testing.T) {
	l := Default()
	levels := l.Levels()
	if len(levels) != 31 {
		t.Fatalf("10mV grid over 0.6-0.9 should have 31 levels, got %d", len(levels))
	}
	if levels[0] != 0.6 || levels[len(levels)-1] != 0.9 {
		t.Fatalf("level endpoints %v %v", levels[0], levels[len(levels)-1])
	}
}

func TestWaveformMonotoneSlewAndBounds(t *testing.T) {
	l := Default()
	wf := l.Waveform([]float64{0.9, 0.7, 0.85}, 300, 50)
	if len(wf) == 0 {
		t.Fatal("empty waveform")
	}
	prevT := -1.0
	for _, p := range wf {
		if p.TimeNS < prevT {
			t.Fatal("time must be non-decreasing")
		}
		prevT = p.TimeNS
		if p.Voltage < l.VMin-1e-9 || p.Voltage > l.VMax+1e-9 {
			t.Fatalf("voltage %v out of range", p.Voltage)
		}
	}
	// The waveform must actually reach both targets.
	saw07, saw085 := false, false
	for _, p := range wf {
		if math.Abs(p.Voltage-0.70) < 1e-9 {
			saw07 = true
		}
		if math.Abs(p.Voltage-0.85) < 1e-9 {
			saw085 = true
		}
	}
	if !saw07 || !saw085 {
		t.Fatal("waveform missed a target level")
	}
}

func TestLossEnergyTiny(t *testing.T) {
	l := Default()
	// 99.8% efficiency: delivering 1 J loses ~2 mJ.
	if loss := l.LossEnergy(1.0); loss < 0.001 || loss > 0.003 {
		t.Fatalf("LDO loss %v", loss)
	}
}

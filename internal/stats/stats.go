// Package stats provides the statistical helpers the evaluation uses:
// binomial confidence intervals for success rates (Sec. 6.9 targets a 95 %
// CI of 3-5 % with >= 100 repetitions), the coefficient of determination for
// the entropy predictor (Fig. 14), and basic summaries.
package stats

import "math"

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// BinomialCI returns the half-width of the 95 % normal-approximation
// confidence interval for a success rate p measured over n trials.
func BinomialCI(p float64, n int) float64 {
	if n == 0 {
		return 1
	}
	return 1.96 * math.Sqrt(p*(1-p)/float64(n))
}

// RepetitionsForCI returns the trial count needed to bound the 95 % CI
// half-width by w at worst-case p = 0.5 — the rationale behind the paper's
// ">= 100 repetitions" rule.
func RepetitionsForCI(w float64) int {
	if w <= 0 {
		return math.MaxInt32
	}
	return int(math.Ceil(1.96 * 1.96 * 0.25 / (w * w)))
}

// R2 returns the coefficient of determination of predictions against
// targets (Fig. 14(a) reports R^2 = 0.92 for the entropy predictor).
func R2(pred, target []float64) float64 {
	if len(pred) != len(target) || len(pred) == 0 {
		return 0
	}
	mu := Mean(target)
	var ssRes, ssTot float64
	for i := range pred {
		r := target[i] - pred[i]
		ssRes += r * r
		d := target[i] - mu
		ssTot += d * d
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Pearson returns the linear correlation coefficient.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MSE returns the mean squared error.
func MSE(pred, target []float64) float64 {
	if len(pred) != len(target) || len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - target[i]
		s += d * d
	}
	return s / float64(len(pred))
}

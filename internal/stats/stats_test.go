package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("variance %v", Variance(xs))
	}
	if Std(xs) != 2 {
		t.Fatalf("std %v", Std(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty inputs")
	}
}

func TestBinomialCI(t *testing.T) {
	// p=0.9, n=100: 1.96*sqrt(0.09/100) ~ 0.0588 — inside the paper's
	// "3-5%" claim region once n >= 100 for typical success rates.
	ci := BinomialCI(0.9, 100)
	if math.Abs(ci-0.0588) > 0.001 {
		t.Fatalf("ci %v", ci)
	}
	if BinomialCI(0.5, 0) != 1 {
		t.Fatal("zero trials should be vacuous")
	}
	if BinomialCI(0.9, 400) >= ci {
		t.Fatal("more trials must shrink the CI")
	}
}

func TestRepetitionsForCI(t *testing.T) {
	// Worst case p=0.5: +-5% needs ~385 trials; +-10% needs ~97.
	if n := RepetitionsForCI(0.10); n < 90 || n > 105 {
		t.Fatalf("n for 10%% = %d", n)
	}
	if n := RepetitionsForCI(0.05); n < 380 || n > 400 {
		t.Fatalf("n for 5%% = %d", n)
	}
}

func TestR2PerfectAndMean(t *testing.T) {
	target := []float64{1, 2, 3, 4}
	if r := R2(target, target); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect prediction R2 %v", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := R2(mean, target); math.Abs(r) > 1e-12 {
		t.Fatalf("mean prediction R2 %v", r)
	}
}

func TestR2MatchesNoiseLevel(t *testing.T) {
	// Gaussian predictions with noise variance q of the target variance
	// give R2 ~ 1-q.
	rng := rand.New(rand.NewSource(1))
	n := 20000
	target := make([]float64, n)
	pred := make([]float64, n)
	for i := range target {
		target[i] = rng.NormFloat64() * 2
		pred[i] = target[i] + rng.NormFloat64()*0.6 // q = 0.09
	}
	r := R2(pred, target)
	if math.Abs(r-0.91) > 0.02 {
		t.Fatalf("R2 %v, want ~0.91", r)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if p := Pearson(xs, ys); math.Abs(p-1) > 1e-12 {
		t.Fatalf("pearson %v", p)
	}
	neg := []float64{8, 6, 4, 2}
	if p := Pearson(xs, neg); math.Abs(p+1) > 1e-12 {
		t.Fatalf("pearson %v", p)
	}
	if Pearson(xs, []float64{5, 5, 5, 5}) != 0 {
		t.Fatal("constant series should correlate 0")
	}
}

func TestMSE(t *testing.T) {
	if m := MSE([]float64{1, 2}, []float64{1, 4}); m != 2 {
		t.Fatalf("mse %v", m)
	}
	if MSE(nil, nil) != 0 {
		t.Fatal("empty mse")
	}
}

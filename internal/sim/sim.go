// Package sim is the deterministic parallel execution engine behind the
// Monte-Carlo evaluation suite. Every paper figure repeats independent
// trials over an independent (task, config, voltage/BER) grid; this package
// fans that work out over a bounded worker pool while keeping result
// collection strictly index-ordered, so aggregation downstream is
// bit-for-bit identical to a serial loop.
//
// Determinism contract: fn must derive all randomness from its index (the
// callers seed per-trial RNGs as pure functions of i) and must not touch
// shared mutable state. Under that contract Map(n, w, fn) returns the same
// slice for every w, and the only observable effect of Workers is
// wall-clock time.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0) (one worker per schedulable core), and the count is
// clamped to n so short grids don't spawn idle goroutines.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS) and returns the results in index order.
// With workers == 1 it degenerates to a plain serial loop on the calling
// goroutine — no goroutines, no synchronization — so the serial path stays
// exactly the pre-engine code shape.
func Map[T any](n, workers int, fn func(i int) T) []T {
	return MapWith(n, workers,
		func() struct{} { return struct{}{} },
		func(i int, _ struct{}) T { return fn(i) })
}

// MapWith is Map with a per-worker scratch slot: newScratch runs once per
// worker goroutine (once total on the serial path), and fn receives that
// worker's scratch alongside the index. This is how per-episode buffer
// reuse composes with parallelism — workers × scratch instead of items ×
// scratch — without any locking on the hot path.
//
// The determinism contract extends to scratch: fn must fully reset every
// scratch field it reads before using it, so which worker (and therefore
// which scratch instance) serves an index cannot influence the result.
// Under that contract MapWith(n, w, ...) returns the same slice for every
// w, exactly like Map.
func MapWith[T, S any](n, workers int, newScratch func() S, fn func(i int, scratch S) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = Workers(workers, n)
	if workers == 1 {
		scratch := newScratch()
		for i := 0; i < n; i++ {
			out[i] = fn(i, scratch)
		}
		return out
	}
	// Bounded fan-out: workers pull indices from a shared atomic counter
	// (cheaper and fairer than pre-chunking when per-item cost varies, as
	// episode lengths do by orders of magnitude). Each result lands at its
	// own index, so collection is ordered by construction and lock-free.
	//
	// A panic inside fn is captured and re-raised on the calling goroutine
	// after the pool drains — an unrecovered panic on a bare worker
	// goroutine would kill the whole process, which a serving daemon must
	// survive (its per-job recover can only see panics on the job
	// goroutine). Matches the serial path, where fn's panic reaches the
	// caller directly.
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicMu sync.Mutex
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			scratch := newScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i, scratch)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return out
}

// Split divides a workers budget between an outer fan-out of n jobs and the
// nested fan-out inside each job, so two stacked Map calls stay within the
// budget instead of multiplying to workers^2: outer*inner <= workers, with
// the outer level saturated first (grid points are the coarser, better-
// balanced unit of work).
func Split(workers, n int) (outer, inner int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outer = workers
	if n > 0 && outer > n {
		outer = n
	}
	if outer < 1 {
		outer = 1
	}
	inner = workers / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// FlatMap runs fn(i) for every i in [0, n) in parallel and concatenates the
// resulting slices in index order — the shape of the sweep helpers, where
// one grid job emits several output rows.
func FlatMap[T any](n, workers int, fn func(i int) []T) []T {
	chunks := Map(n, workers, fn)
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out := make([]T, 0, total)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out
}

package sim

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want clamp to n=3", got)
	}
	if got := Workers(5, 0); got != 1 {
		t.Fatalf("Workers(5, 0) = %d, want floor of 1", got)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		got := Map(100, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("Map(0, ...) = %v, want nil", got)
	}
}

// TestMapBoundedFanOut asserts the pool never runs more than the requested
// number of fn invocations concurrently.
func TestMapBoundedFanOut(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	Map(64, workers, func(i int) int {
		cur := inFlight.Add(1)
		mu.Lock()
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Unlock()
		for k := 0; k < 1000; k++ {
			_ = k * k // keep the worker busy long enough to overlap
		}
		inFlight.Add(-1)
		return i
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent invocations, want <= %d", p, workers)
	}
}

func TestSplitStaysWithinBudget(t *testing.T) {
	cases := []struct {
		workers, n, outer, inner int
	}{
		{4, 32, 4, 1}, // wide grid: all budget to the outer level
		{64, 8, 8, 8}, // narrow grid: leftover budget goes inside
		{2, 32, 2, 1}, // tight budget: no nested parallelism
		{1, 10, 1, 1}, // serial stays serial at both levels
		{5, 2, 2, 2},  // uneven split rounds down, 2*2 <= 5
		{3, 0, 3, 1},  // degenerate grid: unclamped outer, no inner boost
	}
	for _, c := range cases {
		outer, inner := Split(c.workers, c.n)
		if outer != c.outer || inner != c.inner {
			t.Errorf("Split(%d, %d) = (%d, %d), want (%d, %d)",
				c.workers, c.n, outer, inner, c.outer, c.inner)
		}
		if c.workers >= 1 && outer*inner > c.workers {
			t.Errorf("Split(%d, %d): %d*%d exceeds the budget",
				c.workers, c.n, outer, inner)
		}
	}
	outer, inner := Split(0, 4)
	if outer < 1 || inner < 1 {
		t.Fatalf("Split(0, 4) = (%d, %d), want >= 1 each", outer, inner)
	}
}

func TestFlatMapOrderAndContent(t *testing.T) {
	got := FlatMap(10, 4, func(i int) []int { return []int{i * 10, i*10 + 1} })
	want := 20
	if len(got) != want {
		t.Fatalf("len = %d, want %d", len(got), want)
	}
	for i, v := range got {
		exp := (i/2)*10 + i%2
		if v != exp {
			t.Fatalf("out[%d] = %d, want %d", i, v, exp)
		}
	}
}

// TestMapPropagatesWorkerPanic: a panic inside fn on a pool worker reaches
// Map's caller (where a serving daemon's per-job recover can handle it)
// instead of killing the process, and the pool still drains cleanly.
func TestMapPropagatesWorkerPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		got := func() (r any) {
			defer func() { r = recover() }()
			Map(16, workers, func(i int) int {
				if i == 5 {
					panic("boom")
				}
				return i
			})
			return nil
		}()
		if got != "boom" {
			t.Fatalf("workers=%d: panic %v did not propagate to the caller", workers, got)
		}
	}
}

func TestMapWithScratchPerWorker(t *testing.T) {
	// Each worker goroutine gets exactly one scratch: the number of
	// newScratch calls equals the (clamped) worker count, and every fn call
	// receives a non-nil slot.
	var made atomic.Int64
	newScratch := func() *[]int {
		made.Add(1)
		s := make([]int, 0, 8)
		return &s
	}
	n, workers := 64, 4
	out := MapWith(n, workers, newScratch, func(i int, s *[]int) int {
		if s == nil {
			t.Error("nil scratch")
		}
		*s = append((*s)[:0], i) // reset-then-use, per the contract
		return (*s)[0] * 2
	})
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
	if got := made.Load(); got != int64(workers) {
		t.Fatalf("newScratch ran %d times, want one per worker (%d)", got, workers)
	}
}

func TestMapWithSerialSingleScratch(t *testing.T) {
	made := 0
	out := MapWith(10, 1, func() int { made++; return made }, func(i, s int) int { return s })
	if made != 1 {
		t.Fatalf("serial path made %d scratches, want 1", made)
	}
	for _, v := range out {
		if v != 1 {
			t.Fatal("serial path must reuse the single scratch")
		}
	}
}

func TestMapWithDeterministicAcrossWorkerCounts(t *testing.T) {
	// The scratch contract: fn resets what it reads, so results are
	// independent of which worker served which index.
	run := func(workers int) []int {
		return MapWith(100, workers, func() *int { v := -1; return &v },
			func(i int, s *int) int {
				*s = i * i // full reset before use
				return *s
			})
	}
	want := run(1)
	for _, w := range []int{2, 3, 7, 0} {
		if got := run(w); !slices.Equal(got, want) {
			t.Fatalf("workers=%d diverged from serial", w)
		}
	}
}

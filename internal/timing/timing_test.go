package timing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBERMonotoneInVoltage(t *testing.T) {
	m := Default()
	prev := math.Inf(1)
	for mv := 600; mv <= 900; mv += 10 {
		v := float64(mv) / 1000
		b := m.BER(v)
		if b > prev {
			t.Fatalf("BER not monotone: BER(%v)=%v > BER(prev)=%v", v, b, prev)
		}
		prev = b
	}
}

func TestBERCalibrationAnchors(t *testing.T) {
	m := Default()
	if b := m.BER(VNominal); b != m.BERMin {
		t.Fatalf("nominal BER = %v, want %v", b, m.BERMin)
	}
	if b := m.BER(VMin); b != m.BERMax {
		t.Fatalf("vmin BER = %v, want %v", b, m.BERMax)
	}
	// Fig. 4(a) shape: mid-range voltages land in the 1e-7..1e-4 band.
	if b := m.BER(0.75); b < 1e-7 || b > 1e-4 {
		t.Fatalf("BER(0.75) = %v outside plausible band", b)
	}
}

func TestHigherBitsFailMore(t *testing.T) {
	m := Default()
	for _, v := range []float64{0.65, 0.75, 0.85} {
		rates := m.BitRates(v)
		for b := 1; b < AccBits; b++ {
			if rates[b] < rates[b-1] {
				t.Fatalf("at %vV bit %d rate %v < bit %d rate %v; higher bits must fail more",
					v, b, rates[b], b-1, rates[b-1])
			}
		}
	}
}

func TestBitRatesAverageToBER(t *testing.T) {
	m := Default()
	for _, v := range []float64{0.62, 0.7, 0.8, 0.88} {
		rates := m.BitRates(v)
		var sum float64
		for _, r := range rates {
			sum += r
		}
		avg := sum / AccBits
		if rel := math.Abs(avg-m.BER(v)) / m.BER(v); rel > 0.01 {
			t.Fatalf("at %vV mean bit rate %v != BER %v", v, avg, m.BER(v))
		}
	}
}

func TestErrorConcentrationRelaxesAtLowVoltage(t *testing.T) {
	// Near nominal, errors concentrate on the top bits; at low voltage the
	// lower bits take a larger share (Fig. 4(a)).
	m := Default()
	shareTop := func(v float64) float64 {
		rates := m.BitRates(v)
		var top, all float64
		for b, r := range rates {
			all += r
			if b >= AccBits-4 {
				top += r
			}
		}
		return top / all
	}
	if shareTop(0.88) <= shareTop(0.62) {
		t.Fatalf("top-bit share should shrink as voltage drops: %v vs %v",
			shareTop(0.88), shareTop(0.62))
	}
}

func TestVoltageForBERInvertsBER(t *testing.T) {
	m := Default()
	f := func(seed int64) bool {
		// Targets spanning the calibrated range.
		k := seed % 60
		if k < 0 {
			k = -k
		}
		exp := -8.5 + float64(k)/10 // 1e-8.5 .. 1e-2.6
		target := math.Pow(10, exp)
		v := m.VoltageForBER(target)
		if v < VMin || v > VNominal {
			return false
		}
		// The returned voltage must satisfy the budget (within LUT rounding).
		return m.BER(v) <= target*1.05
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if v := m.VoltageForBER(1e-12); v != VNominal {
		t.Fatalf("unreachably low target should return nominal, got %v", v)
	}
	if v := m.VoltageForBER(1); v != VMin {
		t.Fatalf("huge budget should return VMin, got %v", v)
	}
}

func TestLUTCoversRange(t *testing.T) {
	m := Default()
	lut := m.LUT(10)
	if len(lut) != 31 {
		t.Fatalf("10mV LUT should have 31 entries, got %d", len(lut))
	}
	if lut[0].Voltage != VMin || lut[len(lut)-1].Voltage != VNominal {
		t.Fatalf("LUT endpoints wrong: %v .. %v", lut[0].Voltage, lut[len(lut)-1].Voltage)
	}
	for _, e := range lut {
		if len(e.BitRates) != AccBits {
			t.Fatalf("entry at %vV has %d bit rates", e.Voltage, len(e.BitRates))
		}
	}
}

func TestBitRatesCapped(t *testing.T) {
	m := Default()
	for _, r := range m.BitRates(VMin) {
		if r > 0.5 {
			t.Fatalf("bit rate %v exceeds 0.5 cap", r)
		}
	}
	if m.BitErrorRate(0.75, -1) != 0 || m.BitErrorRate(0.75, AccBits) != 0 {
		t.Fatal("out-of-range bits must have zero rate")
	}
}

// Package timing models voltage-underscaling-induced timing errors in the
// accelerator's 24-bit accumulators (paper Sec. 3.1, Fig. 4).
//
// The paper derives its error surface from Synopsys PrimeTime/HSPICE analysis
// of an 8-bit-multiplier / 24-bit-accumulator systolic array in a commercial
// 22 nm PDK. That toolchain is unavailable here, so this package provides an
// analytic surface with the same structure the paper reports and that prior
// silicon measurements corroborate:
//
//   - higher accumulator bits sit at the end of longer carry chains, so they
//     violate timing first and most often as voltage drops;
//   - the aggregate bit error rate (BER) grows roughly exponentially as the
//     supply scales from the nominal 0.9 V down to 0.6 V, sweeping about
//     seven orders of magnitude.
//
// Everything downstream consumes only the (voltage, bit) -> error-rate
// surface, so the substitution preserves system behaviour.
package timing

import (
	"math"
)

// Hardware constants of the synthesized array (paper Sec. 6.1).
const (
	VNominal = 0.90 // nominal supply voltage (V)
	VMin     = 0.60 // lowest LDO output (V)
	AccBits  = 24   // accumulator width the errors are injected into
)

// Model is the calibrated voltage -> per-bit timing-error-rate surface. The
// aggregate BER follows a two-segment log-linear curve: a steep onset just
// below nominal (the first critical paths start violating timing) followed
// by a flatter growth down to VMin — the shape Fig. 4(a) and prior silicon
// measurements report.
type Model struct {
	// BERMin is the aggregate BER at the nominal voltage: nominal operation
	// is effectively error free (guard-banded).
	BERMin float64
	// VBreak/BERBreak is the elbow between the steep onset and the flatter
	// deep-underscaling segment.
	VBreak   float64
	BERBreak float64
	// BERMax is the aggregate BER at VMin.
	BERMax float64
	// Beta0 controls how concentrated errors are on the high bits near
	// nominal voltage; the concentration relaxes as voltage drops and more
	// carry chains start failing.
	Beta0 float64
}

// Default returns the model calibrated against the shape of Fig. 4(a):
// effectively clean at 0.90 V, BER ~1e-8 at 0.86 V, ~2e-2 at 0.60 V.
func Default() *Model {
	return &Model{BERMin: 1e-12, VBreak: 0.86, BERBreak: 1e-8, BERMax: 2e-2, Beta0: 9}
}

// BER returns the aggregate (bit-averaged) error rate at voltage v. Voltages
// above nominal keep the nominal floor; voltages below VMin saturate.
func (m *Model) BER(v float64) float64 {
	if v >= VNominal {
		return m.BERMin
	}
	if v <= VMin {
		return m.BERMax
	}
	interp := func(vHi, vLo, berHi, berLo float64) float64 {
		frac := (vHi - v) / (vHi - vLo)
		lg := math.Log10(berHi) + frac*(math.Log10(berLo)-math.Log10(berHi))
		return math.Pow(10, lg)
	}
	if v >= m.VBreak {
		return interp(VNominal, m.VBreak, m.BERMin, m.BERBreak)
	}
	return interp(m.VBreak, VMin, m.BERBreak, m.BERMax)
}

// beta is the bit-concentration exponent at voltage v: large near nominal
// (only the longest carry chains fail), smaller at low voltage (errors spread
// to mid bits). It never drops below 1.5 so high bits always dominate, as in
// Fig. 4(a).
func (m *Model) beta(v float64) float64 {
	if v > VNominal {
		v = VNominal
	}
	if v < VMin {
		v = VMin
	}
	frac := (VNominal - v) / (VNominal - VMin) // 0 at nominal, 1 at VMin
	b := m.Beta0 * (1 - 0.75*frac)
	if b < 1.5 {
		b = 1.5
	}
	return b
}

// BitErrorRate returns the flip probability of accumulator bit `bit`
// (0 = LSB, AccBits-1 = MSB) per output at voltage v. The per-bit rates
// average to BER(v) across the accumulator, with a power-law share that
// concentrates errors on the high bits.
func (m *Model) BitErrorRate(v float64, bit int) float64 {
	if bit < 0 || bit >= AccBits {
		return 0
	}
	shares := m.bitShares(v)
	p := shares[bit] * m.BER(v) * AccBits
	if p > 0.5 {
		p = 0.5
	}
	return p
}

// BitRates returns the per-bit error rates for all AccBits bits at voltage v.
func (m *Model) BitRates(v float64) []float64 {
	rates := make([]float64, AccBits)
	for b := range rates {
		rates[b] = m.BitErrorRate(v, b)
	}
	return rates
}

// bitShares returns the normalized share of errors falling on each bit.
func (m *Model) bitShares(v float64) []float64 {
	beta := m.beta(v)
	shares := make([]float64, AccBits)
	var sum float64
	for b := 0; b < AccBits; b++ {
		w := math.Pow(float64(b+1)/AccBits, beta)
		shares[b] = w
		sum += w
	}
	for b := range shares {
		shares[b] /= sum
	}
	return shares
}

// VoltageForBER returns the lowest voltage whose aggregate BER does not
// exceed target, in 1 mV resolution; it answers "how far can I underscale
// for a given error budget" and is the inverse used by the voltage-scaling
// policies.
func (m *Model) VoltageForBER(target float64) float64 {
	if target <= m.BERMin {
		return VNominal
	}
	if target >= m.BERMax {
		return VMin
	}
	lo, hi := VMin, VNominal
	for hi-lo > 0.0005 {
		mid := (lo + hi) / 2
		if m.BER(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Round(hi*1000) / 1000
}

// LUTEntry is one row of the voltage -> per-bit-rate lookup table the
// evaluation harness uses (paper Sec. 3.2: "we build a look-up table based on
// Fig. 4(a)").
type LUTEntry struct {
	Voltage  float64
	BER      float64
	BitRates []float64
}

// LUT samples the model every stepMV millivolts from VMin to VNominal.
func (m *Model) LUT(stepMV int) []LUTEntry {
	if stepMV <= 0 {
		stepMV = 10
	}
	var out []LUTEntry
	for mv := int(VMin * 1000); mv <= int(VNominal*1000); mv += stepMV {
		v := float64(mv) / 1000
		out = append(out, LUTEntry{Voltage: v, BER: m.BER(v), BitRates: m.BitRates(v)})
	}
	return out
}

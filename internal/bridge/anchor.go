package bridge

import (
	"math"
	"strconv"

	"github.com/embodiedai/create/internal/quant"
	"github.com/embodiedai/create/internal/timing"
)

// The task-level fault model uses per-configuration knee anchors taken from
// the paper's measured operating points. Absolute fault-severity does not
// transfer from 64-wide miniatures to 4096-wide production models (it
// depends on trained-model margins and width-scale redundancy), so the
// miniature measurements supply the *structure* — per-bit weighting, the
// per-component ranking of Fig. 5(e)-(h), activation/normalization behaviour
// — while the knee of each protection configuration is pinned to where the
// paper observed it:
//
//   - planner bare: success collapses near BER 2e-8 (Fig. 5(a))
//   - planner WR only: works at 2e-5 with degradation (Fig. 13(c))
//   - planner AD only: restores success at 1e-5, degrades above (Fig. 13(a))
//   - planner AD+WR: preserves task quality up to ~1e-2 (Fig. 13(e), Table 6)
//   - controller bare: collapses near 1e-4 (Fig. 5(c))
//   - controller AD: large gains still at 5e-3 (Fig. 13(b))
//
// KneeBER of a configuration is where ~26 % of its invocation-units corrupt
// — enough to start collapsing task success. The planner's invocation-unit
// is one plan line (a subtask, ~12 decoded tokens); the controller's is one
// action step.
const (
	PlannerKneeBER    = 2e-8
	ControllerKneeBER = 1e-4
	// KneeLambda is the expected corrupt-event rate per invocation-unit at
	// the knee (CorruptProb(KneeLambda) ~ 26 %).
	KneeLambda = 0.3
	// SublinearExponent spreads corruption across error density: doubling
	// the BER less than doubles the corruption rate because co-occurring
	// errors mask each other. It widens the success collapse to the
	// ~1.5-decade span the paper's curves show.
	SublinearExponent = 0.65
)

// Task-level collapse (what the paper's figures plot) happens at a higher
// BER than unit-level corruption onset, because episodes absorb sporadic
// corruption: a corrupted plan line costs a replan cycle, a corrupted action
// costs a retry. The absorption factors place the unit-level knees so the
// *observed task-level* collapse matches the paper's anchor BERs: the
// controller absorbs more (per-step errors are individually recoverable,
// Sec. 4.1's insight 1) than the planner.
const (
	PlannerTaskAbsorption    = 0.25
	ControllerTaskAbsorption = 0.5
)

// PlannerKneeFor returns the anchored unit-level knee BER of a planner
// protection configuration.
func PlannerKneeFor(p Protection) float64 {
	switch {
	case p.AD && p.WR:
		return 1.5e-2 * PlannerTaskAbsorption
	case p.AD:
		return 2e-5 * PlannerTaskAbsorption
	case p.WR:
		return 1.2e-5 * PlannerTaskAbsorption
	default:
		return PlannerKneeBER * PlannerTaskAbsorption
	}
}

// ControllerKneeFor returns the anchored unit-level knee BER of a controller
// protection configuration (WR targets the planner's outlier structure; the
// controller has none, so WR is a no-op there).
func ControllerKneeFor(p Protection) float64 {
	if p.AD {
		return 8e-3 * ControllerTaskAbsorption
	}
	return ControllerKneeBER * ControllerTaskAbsorption
}

// Shape describes a paper platform's inference workload as it matters to the
// fault model. Instances live in internal/platforms (Table 4/7/8 data).
type Shape struct {
	Name string
	// OutputsPerUnit is the number of accumulator outputs per decoded token
	// (planners) or per control step (controllers). Knees scale inversely
	// with it: twice the compute per token means half the tolerable BER.
	OutputsPerUnit float64
	// Width is the platform's hidden dimension.
	Width int
}

// JARVIS-1 reference shapes, derived from Tables 4 and 7/8: the planner
// executes 2.67 TMACs per invocation (outputs ~= MACs/4096) across 251
// decoded plan tokens; the controller executes 51 GMACs per step with width
// 1024. internal/platforms derives the same values from the table data.
var (
	JARVIS1PlannerShape    = Shape{Name: "JARVIS-1 planner", OutputsPerUnit: 2.6e6, Width: 4096}
	JARVIS1ControllerShape = Shape{Name: "JARVIS-1 controller", OutputsPerUnit: 5.0e7, Width: 1024}
)

// FaultModel converts per-bit error rates into corruption probabilities for
// one platform model (planner or controller).
type FaultModel struct {
	Shape   Shape
	planner bool
	// opScale is the knee shift of this platform relative to the JARVIS-1
	// reference the anchors were measured on.
	opScale float64
	bits    quant.Bits
	// severity supplies the per-bit weighting (and the characterization
	// studies); replaceable for tests and component-targeted experiments.
	severity func(Protection) Severity
}

// NewPlannerFaultModel builds the fault model for a planner-shaped platform.
func NewPlannerFaultModel(shape Shape) *FaultModel {
	m := &FaultModel{Shape: shape, planner: true, bits: quant.INT8}
	m.opScale = JARVIS1PlannerShape.OutputsPerUnit / shape.OutputsPerUnit
	m.severity = func(p Protection) Severity { return PlannerSeverityFor(p, "", m.bits) }
	return m
}

// NewControllerFaultModel builds the fault model for a controller-shaped
// platform.
func NewControllerFaultModel(shape Shape) *FaultModel {
	m := &FaultModel{Shape: shape, planner: false, bits: quant.INT8}
	m.opScale = JARVIS1ControllerShape.OutputsPerUnit / shape.OutputsPerUnit
	m.severity = func(p Protection) Severity { return ControllerSeverityFor(p, "", m.bits) }
	return m
}

// ID canonically identifies this fault model for content-addressed result
// caching: the platform shape plus operand width. Severity-function
// overrides (SetSeverityFunc, a test/component-study hook) are deliberately
// not part of the identity — call sites using them must not cache.
func (m *FaultModel) ID() string {
	return m.Shape.Name + "/INT" + strconv.Itoa(int(m.bits))
}

// SetQuantBits switches the per-bit weighting measurements to a different
// operand width (Table 6 studies INT4).
func (m *FaultModel) SetQuantBits(b quant.Bits) {
	m.bits = b
	if m.planner {
		m.severity = func(p Protection) Severity { return PlannerSeverityFor(p, "", b) }
	} else {
		m.severity = func(p Protection) Severity { return ControllerSeverityFor(p, "", b) }
	}
}

// SetSeverityFunc overrides the severity source (tests, component studies).
func (m *FaultModel) SetSeverityFunc(f func(Protection) Severity) { m.severity = f }

// kneeFor returns this platform's knee BER for a protection configuration.
func (m *FaultModel) kneeFor(prot Protection) float64 {
	var knee float64
	if m.planner {
		knee = PlannerKneeFor(prot)
	} else {
		knee = ControllerKneeFor(prot)
	}
	return knee * m.opScale
}

// bitWeights returns the relative per-bit vulnerability profile from the
// miniature measurements (material severity plus noise power). A uniform
// fallback covers configurations whose measured severities are all zero.
func (m *FaultModel) bitWeights(prot Protection) [timing.AccBits]float64 {
	sev := m.severity(prot)
	var w [timing.AccBits]float64
	var sum float64
	for b := range w {
		w[b] = sev.Bits[b] + sev.Noise[b]
		sum += w[b]
	}
	if sum == 0 {
		for b := range w {
			w[b] = 1
		}
	}
	return w
}

// Lambda returns the expected corrupt events per invocation-unit: the knee
// anchor sets the scale under uniform rates, the measured per-bit weights
// set how non-uniform (voltage-dependent) rate profiles compose.
func (m *FaultModel) Lambda(bitRates []float64, prot Protection) float64 {
	if uniform(bitRates) {
		// Severity weighting cancels for uniform rates; skip the (lazily
		// measured) weights entirely.
		return m.lambdaFromEffBER(bitRates[0], prot)
	}
	w := m.bitWeights(prot)
	var num, den float64
	for b := range w {
		den += w[b]
		if b < len(bitRates) {
			num += bitRates[b] * w[b]
		}
	}
	if den == 0 {
		return 0
	}
	effBER := num / den // severity-weighted mean per-bit rate
	return m.lambdaFromEffBER(effBER, prot)
}

func (m *FaultModel) lambdaFromEffBER(effBER float64, prot Protection) float64 {
	if effBER <= 0 {
		return 0
	}
	return KneeLambda * math.Pow(effBER/m.kneeFor(prot), SublinearExponent)
}

// CorruptProb returns the probability one invocation-unit (plan line or
// step) is corrupted under the given per-bit error rates and protection.
func (m *FaultModel) CorruptProb(bitRates []float64, prot Protection) float64 {
	return CorruptProb(m.Lambda(bitRates, prot))
}

// CorruptProbAtBER is CorruptProb under the uniform error model.
func (m *FaultModel) CorruptProbAtBER(ber float64, prot Protection) float64 {
	return m.CorruptProb(UniformRates(ber), prot)
}

// CorruptProbAtVoltage is CorruptProb under the hardware timing model at
// supply voltage v.
func (m *FaultModel) CorruptProbAtVoltage(tm *timing.Model, v float64, prot Protection) float64 {
	return m.CorruptProb(tm.BitRates(v), prot)
}

// KneeBER returns the BER at which this model's corruption probability
// reaches the knee threshold under the uniform error model.
func (m *FaultModel) KneeBER(prot Protection) float64 {
	kneeProb := CorruptProb(KneeLambda)
	lo, hi := 1e-12, 1.0
	for i := 0; i < 80; i++ {
		mid := sqrtGeom(lo, hi)
		if m.CorruptProb(UniformRates(mid), prot) < kneeProb {
			lo = mid
		} else {
			hi = mid
		}
	}
	return sqrtGeom(lo, hi)
}

// sqrtGeom is the geometric midpoint, for log-domain bisection.
func sqrtGeom(a, b float64) float64 { return a * math.Sqrt(b/a) }

func uniform(rates []float64) bool {
	if len(rates) == 0 {
		return false
	}
	for _, r := range rates[1:] {
		if r != rates[0] {
			return false
		}
	}
	return true
}

// UniformRates returns the per-bit rate vector of the uniform error model.
func UniformRates(ber float64) []float64 {
	r := make([]float64, timing.AccBits)
	for i := range r {
		r[i] = ber
	}
	return r
}

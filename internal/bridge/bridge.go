// Package bridge connects the micro-level fault-severity measurements taken
// on the synthetic miniature networks (internal/model) to macro-level,
// paper-platform corruption probabilities that drive task-scale Monte Carlo.
//
// # Why a bridge is needed
//
// The paper injects errors into a 7.9 B-parameter planner (5.3 TMACs per
// inference) and a 61 M-parameter controller (102 GOps per step). Replaying
// those op counts per simulated step is impossible here, and per-error fault
// severity does not transfer naively across four orders of magnitude of
// model width. The bridge therefore decomposes corruption into:
//
//   - measured, transferable quantities: per-accumulator-bit severity s_b
//     (probability a single bit-b flip corrupts a decoded token / an action),
//     measured on the miniatures for every protection configuration (bare,
//     AD, WR, AD+WR) and component. All *relative* claims — how much AD/WR
//     help, which components are fragile, planner-vs-controller contrast —
//     come from these measurements.
//   - a width correction: a "local" error (in-range, or clamped to zero by
//     AD) perturbs one channel out of `width`, so its influence dilutes by
//     widthMini/widthPlatform at scale; a "global" error (an unclamped
//     out-of-range value) skews the row's normalization statistics no matter
//     how wide the row is, so it transfers unscaled. The boundary bit is the
//     anomaly bound's bit position measured during profiling.
//   - one absolute anchor per model class, pinned to the paper's measured
//     knees (planner success collapses near BER 2e-8, controller near 1e-4,
//     Fig. 5): the anchor fixes the scale factor between "expected corrupt
//     events per invocation" and our dimensionless severities for the
//     *unprotected* configuration; every protected configuration then lands
//     wherever the measured severity ratios put it.
package bridge

import (
	"math"
	"math/rand"
	"sync"

	"github.com/embodiedai/create/internal/inject"
	"github.com/embodiedai/create/internal/model"
	"github.com/embodiedai/create/internal/nn"
	"github.com/embodiedai/create/internal/quant"
	"github.com/embodiedai/create/internal/systolic"
	"github.com/embodiedai/create/internal/tensor"
	"github.com/embodiedai/create/internal/timing"
)

// Protection selects which CREATE techniques guard a model.
type Protection struct {
	AD bool // circuit-level anomaly detection and clearance (Sec. 5.1)
	WR bool // weight-rotation-enhanced planning, planner only (Sec. 5.2)
}

// Severity is the per-bit fault-severity profile of one (model, protection,
// component) configuration.
type Severity struct {
	// Bits[b] is the probability that a single flip of accumulator bit b,
	// at a uniformly random site, materially corrupts the model output (a
	// decoded token for the planner, the chosen action for the controller).
	// "Materially" means the logit perturbation is commensurate with the
	// clean logit scale (see Materiality): trained networks only change
	// decisions under perturbations of that size, whereas the random-weight
	// miniatures would flip argmax on any epsilon.
	Bits [timing.AccBits]float64
	// Noise[b] is the mean squared relative logit perturbation (Delta /
	// sigma_logits)^2 of the *sub-material* trials for bit b. Individually
	// harmless errors accumulate in quadrature; at high error densities this
	// noise channel is what eventually corrupts outputs. It is the channel
	// through which AD+WR's tighter bound and smaller activation scales pay
	// off (Sec. 6.6's synergy).
	Noise [timing.AccBits]float64
	// BoundBit is the accumulator bit position of the typical anomaly
	// bound: un-cleared flips at or above it produce out-of-range values
	// ("global" errors that skew a whole row's normalization); everything
	// else — in-range flips, and flips the AD units clear to zero — is a
	// "local" single-channel effect.
	BoundBit int
	// Cleared records whether AD was active during measurement: with AD on,
	// every error is local (either in range or clamped), so the width
	// dilution applies to all bits.
	Cleared bool
	// Width is the miniature's residual width the severities were measured
	// at; the transfer rule dilutes local severities by Width/platformWidth.
	Width int
}

// Materiality is the fraction of the clean logit standard deviation a fault
// must perturb some logit by before the output counts as corrupted.
const Materiality = 0.5

// MeasureOptions tunes a severity measurement.
type MeasureOptions struct {
	TrialsPerBit int
	Seed         int64
	PromptLen    int // planner prompt length / ignored for controller
	// Component restricts injection to components whose name contains the
	// substring (e.g. ".K", ".O"); empty measures the whole model.
	Component string
	Bits      quant.Bits // operand quantization; zero value means INT8
}

// DefaultMeasureOptions returns the options used for the cached tables.
func DefaultMeasureOptions() MeasureOptions {
	return MeasureOptions{TrialsPerBit: 10, Seed: 77, PromptLen: 16, Bits: quant.INT8}
}

// MeasurePlannerSeverity measures per-bit severity on the miniature planner.
// Severity is the mean fraction of prompt positions whose next-token logits
// are materially perturbed by a single injected flip.
func MeasurePlannerSeverity(cfg model.PlannerConfig, prot Protection, opt MeasureOptions) Severity {
	if opt.Bits == 0 {
		opt.Bits = quant.INT8
	}
	p := model.NewPlanner(cfg)
	if prot.WR {
		p.ApplyWeightRotation()
	}
	tokens := p.PromptTokens(opt.PromptLen, opt.Seed)

	be, counter := calibrate(prot, opt, func(b nn.Backend) { p.Forward(b, tokens) })
	clean := p.Forward(be, tokens)
	margins := make([]float64, clean.Rows)
	for i := range margins {
		margins[i] = Materiality * tensor.Std(clean.Row(i))
	}

	rng := rand.New(rand.NewSource(opt.Seed + 1))
	var sev Severity
	sev.Width = cfg.Dim
	sev.BoundBit = boundBit(be)
	sev.Cleared = prot.AD
	flip := &inject.SingleFlip{}
	for bit := 0; bit < timing.AccBits; bit++ {
		var acc, noise float64
		for t := 0; t < opt.TrialsPerBit; t++ {
			flip.Reset(bit, rng.Int63n(counter))
			be.Engine.Injector = flip
			faulty := p.Forward(be, tokens)
			be.Engine.Injector = inject.None{}
			corrupted := 0
			var sub float64
			for i := 0; i < clean.Rows; i++ {
				d := rowPerturbation(clean.Row(i), faulty.Row(i))
				if d > margins[i] {
					corrupted++
				} else if margins[i] > 0 {
					rel := d / margins[i] * Materiality // back to sigma_L units
					sub += rel * rel
				}
			}
			acc += float64(corrupted) / float64(clean.Rows)
			noise += sub / float64(clean.Rows)
		}
		sev.Bits[bit] = acc / float64(opt.TrialsPerBit)
		sev.Noise[bit] = noise / float64(opt.TrialsPerBit)
	}
	return sev
}

// rowPerturbation is the largest absolute logit change between a clean and a
// faulty output row.
func rowPerturbation(clean, faulty []float32) float64 {
	var mx float64
	for i := range clean {
		d := float64(faulty[i]) - float64(clean[i])
		if d < 0 {
			d = -d
		}
		if d > mx {
			mx = d
		}
	}
	return mx
}

// MeasureControllerSeverity measures per-bit severity on the miniature
// controller. Severity is the probability a single flip materially perturbs
// the action logits of a step.
func MeasureControllerSeverity(cfg model.ControllerConfig, prot Protection, opt MeasureOptions) Severity {
	if opt.Bits == 0 {
		opt.Bits = quant.INT8
	}
	c := model.NewController(cfg)
	obsRng := rand.New(rand.NewSource(opt.Seed + 2))
	observations := make([][]float32, 4)
	for i := range observations {
		observations[i] = model.RandomObservation(obsRng)
	}

	be, counter := calibrate(prot, opt, func(b nn.Backend) {
		for _, obs := range observations {
			c.Forward(b, obs)
		}
	})
	counter /= int64(len(observations)) // outputs per single step

	clean := make([][]float32, len(observations))
	margins := make([]float64, len(observations))
	for i, obs := range observations {
		clean[i] = c.Forward(be, obs)
		margins[i] = Materiality * tensor.Std(clean[i])
	}

	rng := rand.New(rand.NewSource(opt.Seed + 3))
	var sev Severity
	sev.Width = cfg.Dim
	sev.BoundBit = boundBit(be)
	sev.Cleared = prot.AD
	flip := &inject.SingleFlip{}
	for bit := 0; bit < timing.AccBits; bit++ {
		var acc, noise float64
		for t := 0; t < opt.TrialsPerBit; t++ {
			oi := t % len(observations)
			flip.Reset(bit, rng.Int63n(counter))
			be.Engine.Injector = flip
			logits := c.Forward(be, observations[oi])
			be.Engine.Injector = inject.None{}
			d := rowPerturbation(clean[oi], logits)
			if d > margins[oi] {
				acc++
			} else if margins[oi] > 0 {
				rel := d / margins[oi] * Materiality
				noise += rel * rel
			}
		}
		sev.Bits[bit] = acc / float64(opt.TrialsPerBit)
		sev.Noise[bit] = noise / float64(opt.TrialsPerBit)
	}
	return sev
}

// calibrate builds a systolic backend, profiles per-component output ranges
// with one error-free pass, configures AD, and counts the outputs of one
// pass for SingleFlip targeting.
func calibrate(prot Protection, opt MeasureOptions, run func(nn.Backend)) (*nn.Systolic, int64) {
	eng := systolic.NewEngine(opt.Seed)
	eng.Bits = opt.Bits
	be := nn.NewSystolic(eng)
	be.Target = opt.Component

	be.Calibrating = true
	run(be)
	be.Calibrating = false

	eng.AD = prot.AD

	counter := &inject.OutputCounter{}
	prev := eng.SwapInjector(counter)
	run(be)
	eng.SwapInjector(prev)
	if counter.N == 0 {
		// The component filter matched nothing that runs on the engine.
		counter.N = 1
	}
	return be, counter.N
}

// boundBit derives the typical anomaly-bound bit position from the profiled
// output ranges: the median component's bound, expressed as a bit index.
func boundBit(be *nn.Systolic) int {
	if len(be.Profile) == 0 {
		return timing.AccBits
	}
	// The bound in accumulator domain is outMax / (sx*sw); scales are data
	// dependent, so approximate with the engine's own bound computation on a
	// representative magnitude: quantization uses absmax/qmax scales, making
	// bound ~ qmax^2 regardless of outMax. Instead measure directly: the
	// bound bit is where 2^b exceeds qmax^2 * headroom. For INT8 inputs the
	// accumulator magnitude of a correct K-dot output is at most K*127*127;
	// profiled ranges sit well below. Use the conservative estimate
	// log2(127*127) ~ 14: flips of bit 14 and above typically leave the
	// valid range of any single product, and the profile tightens it
	// further. This matches the Fig. 4(b)/8(a) observation that "output
	// values rarely occupy the significant bits".
	return 14
}

// The severity cache is per-key singleflight rather than one global lock:
// a process's cold start measures many distinct (model, protection,
// component, bits) keys on first use, and holding one mutex across each
// multi-pass measurement would serialize them. Here the lock only guards
// the map; each key's measurement runs outside it, so distinct keys warm
// up concurrently while duplicate callers of the same key block on its
// entry and reuse the single result (TestSeveritySingleflight).
var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]*severityEntry{}
)

type cacheKey struct {
	planner   bool
	prot      Protection
	component string
	bits      quant.Bits
}

// severityEntry is one in-flight or completed measurement. done is closed
// once sev (or panicked) is set; waiters block on it.
type severityEntry struct {
	done     chan struct{}
	sev      Severity
	panicked any
}

// cachedSeverity returns the severity for key, invoking measure at most once
// per key across all concurrent callers. A panicking measurement is removed
// from the cache (a later call may retry) and the panic propagates to the
// owner and every waiter.
func cachedSeverity(key cacheKey, measure func() Severity) Severity {
	cacheMu.Lock()
	if e, ok := cache[key]; ok {
		cacheMu.Unlock()
		<-e.done
		if e.panicked != nil {
			panic(e.panicked)
		}
		return e.sev
	}
	e := &severityEntry{done: make(chan struct{})}
	cache[key] = e
	cacheMu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			e.panicked = r
			cacheMu.Lock()
			delete(cache, key)
			cacheMu.Unlock()
			close(e.done)
			panic(r)
		}
	}()
	e.sev = measure()
	close(e.done)
	return e.sev
}

// PlannerSeverity returns the cached severity table for the default
// miniature planner under prot, measuring it on first use.
func PlannerSeverity(prot Protection) Severity {
	return PlannerSeverityFor(prot, "", quant.INT8)
}

// PlannerSeverityFor is PlannerSeverity with component targeting and
// quantization width control.
func PlannerSeverityFor(prot Protection, component string, bits quant.Bits) Severity {
	key := cacheKey{planner: true, prot: prot, component: component, bits: bits}
	return cachedSeverity(key, func() Severity {
		opt := DefaultMeasureOptions()
		opt.Component = component
		opt.Bits = bits
		return MeasurePlannerSeverity(model.DefaultPlannerConfig(), prot, opt)
	})
}

// ControllerSeverity returns the cached severity table for the default
// miniature controller under prot, measuring it on first use.
func ControllerSeverity(prot Protection) Severity {
	return ControllerSeverityFor(prot, "", quant.INT8)
}

// ControllerSeverityFor is ControllerSeverity with component targeting and
// quantization width control.
func ControllerSeverityFor(prot Protection, component string, bits quant.Bits) Severity {
	key := cacheKey{planner: false, prot: prot, component: component, bits: bits}
	return cachedSeverity(key, func() Severity {
		opt := DefaultMeasureOptions()
		opt.Component = component
		opt.Bits = bits
		return MeasureControllerSeverity(model.DefaultControllerConfig(), prot, opt)
	})
}

// Lambda composes a severity table with per-bit error rates into the
// expected number of *materially* corrupting events per invocation-unit,
// applying the width transfer rule against platformWidth.
func (s Severity) Lambda(bitRates []float64, platformWidth int) float64 {
	dilute := s.dilution(platformWidth)
	var lambda float64
	for b, rate := range bitRates {
		if b >= len(s.Bits) {
			break
		}
		sv := s.Bits[b]
		if b < s.BoundBit || s.Cleared {
			// Local error — in range, or cleared to zero by AD: a
			// single-channel effect whose influence dilutes with width.
			sv *= dilute
		}
		lambda += rate * sv
	}
	return lambda
}

// NoiseVar composes the sub-material noise channel: the aggregate variance
// (in squared clean-logit-sigma units) contributed per invocation-unit by
// individually harmless errors. Amplitudes of local errors dilute linearly
// with width, so variances dilute quadratically.
func (s Severity) NoiseVar(bitRates []float64, platformWidth int) float64 {
	dilute := s.dilution(platformWidth)
	var v float64
	for b, rate := range bitRates {
		if b >= len(s.Noise) {
			break
		}
		q := s.Noise[b]
		if b < s.BoundBit || s.Cleared {
			q *= dilute * dilute
		}
		v += rate * q
	}
	return v
}

func (s Severity) dilution(platformWidth int) float64 {
	d := float64(s.Width) / float64(platformWidth)
	if d > 1 {
		d = 1
	}
	return d
}

// CorruptProb converts an event rate lambda into a corruption probability
// under a Poisson arrival assumption.
func CorruptProb(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	return 1 - math.Exp(-lambda)
}

// NoiseCorruptProb is the probability the accumulated sub-material noise
// (std sigma, in clean-logit-sigma units) crosses the materiality threshold.
func NoiseCorruptProb(noiseVar float64) float64 {
	if noiseVar <= 0 {
		return 0
	}
	sigma := math.Sqrt(noiseVar)
	// P(|N(0,sigma)| > Materiality) = erfc(theta / (sigma*sqrt(2)))
	return math.Erfc(Materiality / (sigma * math.Sqrt2))
}

package bridge

import (
	"math"
	"testing"

	"github.com/embodiedai/create/internal/model"
	"github.com/embodiedai/create/internal/timing"
)

// flatSeverity returns a synthetic severity table so fault-model tests don't
// pay for miniature measurements.
func flatSeverity(highBit float64) Severity {
	var s Severity
	s.BoundBit = 14
	s.Width = 64
	for b := range s.Bits {
		if b >= s.BoundBit {
			s.Bits[b] = highBit
		} else {
			s.Bits[b] = highBit / 100
		}
	}
	return s
}

func fastPlannerModel() *FaultModel {
	m := NewPlannerFaultModel(JARVIS1PlannerShape)
	m.SetSeverityFunc(func(Protection) Severity { return flatSeverity(0.1) })
	return m
}

func fastControllerModel() *FaultModel {
	m := NewControllerFaultModel(JARVIS1ControllerShape)
	m.SetSeverityFunc(func(Protection) Severity { return flatSeverity(0.1) })
	return m
}

func TestKneeAnchors(t *testing.T) {
	pm, cm := fastPlannerModel(), fastControllerModel()
	cases := []struct {
		name string
		m    *FaultModel
		prot Protection
		want float64
	}{
		{"planner bare", pm, Protection{}, PlannerKneeBER * PlannerTaskAbsorption},
		{"planner AD", pm, Protection{AD: true}, 2e-5 * PlannerTaskAbsorption},
		{"planner WR", pm, Protection{WR: true}, 1.2e-5 * PlannerTaskAbsorption},
		{"planner AD+WR", pm, Protection{AD: true, WR: true}, 1.5e-2 * PlannerTaskAbsorption},
		{"controller bare", cm, Protection{}, ControllerKneeBER * ControllerTaskAbsorption},
		{"controller AD", cm, Protection{AD: true}, 8e-3 * ControllerTaskAbsorption},
	}
	for _, c := range cases {
		got := c.m.KneeBER(c.prot)
		if got < c.want/1.3 || got > c.want*1.3 {
			t.Errorf("%s knee = %.3g, want ~%.3g", c.name, got, c.want)
		}
	}
}

func TestKneeOrdering(t *testing.T) {
	// Paper ordering: bare << WR < AD << AD+WR for the planner.
	pm := fastPlannerModel()
	bare := pm.KneeBER(Protection{})
	wr := pm.KneeBER(Protection{WR: true})
	ad := pm.KneeBER(Protection{AD: true})
	both := pm.KneeBER(Protection{AD: true, WR: true})
	if !(bare < wr && wr < ad && ad < both) {
		t.Fatalf("knee ordering violated: bare=%.3g wr=%.3g ad=%.3g both=%.3g", bare, wr, ad, both)
	}
	// Controller is far more resilient than the planner at every config.
	cm := fastControllerModel()
	if cm.KneeBER(Protection{}) <= pm.KneeBER(Protection{}) {
		t.Fatal("controller must tolerate higher BER than planner")
	}
}

func TestCorruptProbMonotoneInBER(t *testing.T) {
	pm := fastPlannerModel()
	prev := -1.0
	for _, ber := range []float64{1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5} {
		p := pm.CorruptProbAtBER(ber, Protection{})
		if p < prev {
			t.Fatalf("corruption prob not monotone at %v", ber)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		prev = p
	}
}

func TestCorruptProbAtVoltageMonotone(t *testing.T) {
	tm := timing.Default()
	cm := fastControllerModel()
	prev := 2.0
	for _, v := range []float64{0.62, 0.68, 0.74, 0.80, 0.86, 0.90} {
		p := cm.CorruptProbAtVoltage(tm, v, Protection{AD: true})
		if p > prev {
			t.Fatalf("higher voltage must not corrupt more: p(%v)=%v prev=%v", v, p, prev)
		}
		prev = p
	}
	if p := cm.CorruptProbAtVoltage(tm, timing.VNominal, Protection{AD: true}); p > 1e-4 {
		t.Fatalf("nominal voltage should be near error free, p=%v", p)
	}
}

func TestOpScaleShiftsKnee(t *testing.T) {
	// A platform with double the per-token compute knees at half the BER.
	heavy := Shape{Name: "heavy", OutputsPerUnit: JARVIS1PlannerShape.OutputsPerUnit * 2, Width: 4096}
	m := NewPlannerFaultModel(heavy)
	m.SetSeverityFunc(func(Protection) Severity { return flatSeverity(0.1) })
	got := m.KneeBER(Protection{})
	want := PlannerKneeBER * PlannerTaskAbsorption / 2
	if got < want/1.3 || got > want*1.3 {
		t.Fatalf("heavy platform knee = %.3g, want ~%.3g", got, want)
	}
}

func TestLambdaUniformFastPathMatchesWeighted(t *testing.T) {
	m := fastPlannerModel()
	ber := 3e-7
	viaUniform := m.Lambda(UniformRates(ber), Protection{})
	// Build an "almost uniform" rate vector that dodges the fast path but
	// should numerically agree.
	rates := UniformRates(ber)
	rates[0] *= 1.0000001
	viaWeighted := m.Lambda(rates, Protection{})
	if math.Abs(viaUniform-viaWeighted)/viaUniform > 1e-3 {
		t.Fatalf("fast path %v != weighted %v", viaUniform, viaWeighted)
	}
}

func TestHighBitsWeighMoreThanLowBits(t *testing.T) {
	// With the measured-severity weighting, concentrating a given error
	// budget on high bits must corrupt more than concentrating it on low
	// bits (Fig. 4: high-bit flips are the damaging ones).
	m := fastPlannerModel()
	high := make([]float64, timing.AccBits)
	low := make([]float64, timing.AccBits)
	for b := 0; b < 4; b++ {
		high[timing.AccBits-1-b] = 1e-6
		low[b] = 1e-6
	}
	if m.Lambda(high, Protection{}) <= m.Lambda(low, Protection{}) {
		t.Fatal("high-bit errors must dominate severity weighting")
	}
}

func TestCorruptProbHelpers(t *testing.T) {
	if CorruptProb(0) != 0 || CorruptProb(-1) != 0 {
		t.Fatal("zero lambda must give zero probability")
	}
	if p := CorruptProb(1e9); p < 0.999999 {
		t.Fatalf("huge lambda should saturate, got %v", p)
	}
	if NoiseCorruptProb(0) != 0 {
		t.Fatal("zero variance must give zero noise corruption")
	}
	if p := NoiseCorruptProb(1e6); p < 0.99 {
		t.Fatalf("huge noise should saturate, got %v", p)
	}
	small := NoiseCorruptProb(1e-4)
	big := NoiseCorruptProb(1.0)
	if small >= big {
		t.Fatal("noise corruption must grow with variance")
	}
}

func TestMeasuredSeverityStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature severity measurement is slow")
	}
	opt := DefaultMeasureOptions()
	opt.TrialsPerBit = 6
	cfg := model.DefaultPlannerConfig()
	cfg.Layers = 2

	bare := MeasurePlannerSeverity(cfg, Protection{}, opt)
	ad := MeasurePlannerSeverity(cfg, Protection{AD: true}, opt)

	sumHigh := func(s Severity) float64 {
		var x float64
		for b := s.BoundBit; b < timing.AccBits; b++ {
			x += s.Bits[b]
		}
		return x
	}
	sumLow := func(s Severity) float64 {
		var x float64
		for b := 0; b < s.BoundBit; b++ {
			x += s.Bits[b]
		}
		return x
	}
	if sumHigh(bare) <= sumLow(bare) {
		t.Fatalf("bare planner: high bits must dominate (high=%v low=%v)", sumHigh(bare), sumLow(bare))
	}
	if sumHigh(ad) >= sumHigh(bare) {
		t.Fatalf("AD must reduce high-bit severity: %v vs %v", sumHigh(ad), sumHigh(bare))
	}
	if !ad.Cleared || bare.Cleared {
		t.Fatal("Cleared flag must track AD")
	}
}

func TestMeasuredControllerMoreRobustThanPlanner(t *testing.T) {
	if testing.Short() {
		t.Skip("miniature severity measurement is slow")
	}
	opt := DefaultMeasureOptions()
	opt.TrialsPerBit = 6
	pcfg := model.DefaultPlannerConfig()
	pcfg.Layers = 2
	ccfg := model.DefaultControllerConfig()
	ccfg.Layers = 2

	p := MeasurePlannerSeverity(pcfg, Protection{}, opt)
	c := MeasureControllerSeverity(ccfg, Protection{}, opt)
	var ps, cs float64
	for b := 0; b < timing.AccBits; b++ {
		ps += p.Bits[b]
		cs += c.Bits[b]
	}
	// Insight 1 at the per-fault level: the outlier-bearing planner is at
	// least as fault sensitive as the controller.
	if ps < cs {
		t.Fatalf("planner per-fault severity (%v) should be >= controller (%v)", ps, cs)
	}
}

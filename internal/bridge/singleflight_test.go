package bridge

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/embodiedai/create/internal/model"
	"github.com/embodiedai/create/internal/quant"
)

// TestSeveritySingleflight drives cachedSeverity from many goroutines across
// a handful of keys and asserts each key's measurement runs exactly once
// while distinct keys are free to measure concurrently. Run under -race this
// also locks the lock discipline of the cache.
func TestSeveritySingleflight(t *testing.T) {
	keys := []cacheKey{
		{planner: true, component: "sf-test-a", bits: quant.INT8},
		{planner: false, component: "sf-test-a", bits: quant.INT8},
		{planner: true, component: "sf-test-b", bits: quant.INT4},
		{planner: true, component: "sf-test-b", prot: Protection{AD: true}, bits: quant.INT8},
	}
	t.Cleanup(func() {
		cacheMu.Lock()
		for _, k := range keys {
			delete(cache, k)
		}
		cacheMu.Unlock()
	})

	counts := make([]atomic.Int64, len(keys))
	var start, done sync.WaitGroup
	const callersPerKey = 8
	release := make(chan struct{})
	for ki := range keys {
		for c := 0; c < callersPerKey; c++ {
			start.Add(1)
			done.Add(1)
			go func(ki int) {
				defer done.Done()
				start.Done()
				<-release
				s := cachedSeverity(keys[ki], func() Severity {
					counts[ki].Add(1)
					return Severity{Width: ki + 1}
				})
				if s.Width != ki+1 {
					t.Errorf("key %d: got width %d", ki, s.Width)
				}
			}(ki)
		}
	}
	start.Wait()
	close(release)
	done.Wait()

	for ki := range keys {
		if n := counts[ki].Load(); n != 1 {
			t.Fatalf("key %d measured %d times, want 1", ki, n)
		}
	}
}

// TestSeveritySingleflightPanicRetries: a panicking measurement must
// propagate to the caller, leave no poisoned entry behind, and allow a
// later call to retry and succeed.
func TestSeveritySingleflightPanicRetries(t *testing.T) {
	key := cacheKey{planner: true, component: "sf-test-panic", bits: quant.INT8}
	t.Cleanup(func() {
		cacheMu.Lock()
		delete(cache, key)
		cacheMu.Unlock()
	})

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		cachedSeverity(key, func() Severity { panic("measurement failed") })
	}()

	calls := 0
	s := cachedSeverity(key, func() Severity {
		calls++
		return Severity{Width: 7}
	})
	if calls != 1 || s.Width != 7 {
		t.Fatalf("retry after panic: calls=%d width=%d", calls, s.Width)
	}
}

// BenchmarkSeverityColdStart is the uncached measurement cost one severity
// key pays on first use — the unit of work the singleflight cold start
// parallelizes across keys. Bypasses the cache on purpose.
func BenchmarkSeverityColdStart(b *testing.B) {
	opt := DefaultMeasureOptions()
	for i := 0; i < b.N; i++ {
		MeasureControllerSeverity(model.DefaultControllerConfig(), Protection{}, opt)
	}
}

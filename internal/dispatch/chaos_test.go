package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
)

// chaosWorker boots a real create-serve worker behind a scripted chaos
// proxy and returns the proxy's URL (what the coordinator dials) plus the
// proxy for stats assertions.
func chaosWorker(t *testing.T, script string) (string, *ChaosProxy) {
	t.Helper()
	target, _ := newWorker(t)
	phases, err := ParseChaosScript(script)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewChaosProxy(target, phases)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return ts.URL, p
}

// TestChaosSelfHealing is the harness's acceptance gate: a single worker
// behind a failure-injecting proxy — connection drops, 503 load shedding,
// hung connections, added latency — and the run must still produce
// byte-identical output, with the worker going through probation and
// readmission exactly when the script kills it. One worker on purpose:
// completion *proves* the revived worker was reused, because there is
// nobody else to finish the shards.
//
// The scripts are phrased in requests, not wall time, so each case is
// deterministic: a shard submission retries 3 times (MaxRetries 2), so
// "drop:6" burns the whole submission (3 attempts) plus the first 3
// health probes before the proxy heals.
func TestChaosSelfHealing(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig19")
	want := singleNode(t, sel, opt)

	cases := []struct {
		name           string
		script         string
		requestTimeout time.Duration // 0 = default; set to bound hangs
		wantReadmit    bool
		wantInjected   string
		wantCount      int
	}{
		// The worker crashes mid-request six times: every submission
		// attempt severed, then the first probes too, then it revives.
		{"drop-then-recover", "drop:6,pass:-1", 0, true, "drop", 6},
		// The worker sheds load with Retry-After'd 503s, long enough to
		// exhaust the submission's retry budget.
		{"error-then-recover", "error:6,pass:-1", 0, true, "error", 6},
		// The hung-TCP case the per-request timeout exists for: the worker
		// accepts connections and never answers.
		{"hang-then-recover", "hang:3,pass:-1", 500 * time.Millisecond, true, "hang", 3},
		// Pure latency is not a failure: no probation, no readmission.
		{"delay-only", "delay:4:25ms,pass:-1", 0, false, "delay", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			proxied, proxy := chaosWorker(t, tc.script)
			// Disk-backed: the staged shard entries the runner pulls back
			// need a persistent destination to merge into.
			store, err := cache.New(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			env := experiments.NewEnv()
			env.Cache = store
			coord := &Coordinator{
				Env: env, Store: store,
				Runners: []Runner{&HTTPRunner{
					BaseURL:        proxied,
					StageDir:       t.TempDir(),
					Local:          store,
					RequestTimeout: tc.requestTimeout,
					RetryBaseDelay: time.Millisecond,
				}},
				Health: fastHealth(),
				Logf:   t.Logf,
			}
			var out bytes.Buffer
			if _, err := coord.Run(context.Background(), &out, sel, opt, 2, false); err != nil {
				t.Fatalf("chaos script %q killed the run: %v", tc.script, err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("output diverged under chaos %q", tc.script)
			}

			readmits := coord.Metrics.Counter("create_dispatch_workers_readmitted_total", "",
				"worker", proxied).Value()
			if tc.wantReadmit && readmits != 1 {
				t.Errorf("readmissions = %d, want 1 — the run cannot have finished without the revived worker", readmits)
			}
			if !tc.wantReadmit && readmits != 0 {
				t.Errorf("readmissions = %d under pure latency, want 0", readmits)
			}
			if got := coord.Metrics.Counter("create_dispatch_workers_retired_total", "").Value(); got != 0 {
				t.Errorf("workers retired = %d, want 0", got)
			}
			st := proxy.Stats()
			if st.Injected[tc.wantInjected] != tc.wantCount {
				t.Errorf("proxy injected %v, want %d × %s", st.Injected, tc.wantCount, tc.wantInjected)
			}
			if st.Requests <= tc.wantCount {
				t.Errorf("proxy saw %d requests total, want more than the %d injected — the healed worker must have served the run", st.Requests, tc.wantCount)
			}
		})
	}
}

// TestChaosAdmin covers the proxy's control surface: stats reporting and
// mid-run script swaps.
func TestChaosAdmin(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()
	phases, err := ParseChaosScript("error:1,pass:-1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewChaosProxy(backend.URL, phases)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()
	admin := httptest.NewServer(p.Admin())
	defer admin.Close()

	get := func(url string) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(front.URL + "/anything"); code != http.StatusServiceUnavailable {
		t.Fatalf("first request = %d, want the scripted 503", code)
	}
	if code := get(front.URL + "/anything"); code != http.StatusOK {
		t.Fatalf("second request = %d, want pass-through 200", code)
	}

	resp, err := http.Post(admin.URL+"/chaos", "application/json",
		strings.NewReader(`{"script":"error:-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("script swap = %d", resp.StatusCode)
	}
	if code := get(front.URL + "/anything"); code != http.StatusServiceUnavailable {
		t.Fatalf("post-swap request = %d, want 503 forever", code)
	}
	if resp, err = http.Post(admin.URL+"/chaos", "application/json",
		strings.NewReader(`{"script":"nonsense:1"}`)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad script swap = %d, want 400", resp.StatusCode)
	}

	statsResp, err := http.Get(admin.URL + "/chaos")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st ChaosStats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 || st.Injected["error"] != 2 {
		t.Fatalf("stats = %+v, want 3 requests / 2 injected errors", st)
	}
}

func TestParseChaosScript(t *testing.T) {
	phases, err := ParseChaosScript("pass:3,drop:4,delay:2:50ms,error:2,hang:1,pass:-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 6 {
		t.Fatalf("parsed %d phases, want 6", len(phases))
	}
	if phases[2].Mode != ChaosDelay || phases[2].N != 2 || phases[2].Delay != 50*time.Millisecond {
		t.Fatalf("delay phase = %+v", phases[2])
	}
	if phases[5].N != -1 {
		t.Fatalf("trailing pass N = %d, want -1 (forever)", phases[5].N)
	}
	for _, bad := range []string{
		"", "nonsense:3", "drop", "delay:2", "drop:x", "drop:1:5s",
	} {
		if _, err := ParseChaosScript(bad); err == nil {
			t.Errorf("script %q parsed without error", bad)
		}
	}
}

// TestHTTPRunnerRetriesTransientErrors pins the retry classification: a
// 503 with a Retry-After hint is retried and succeeds transparently; a
// 404 is permanent and fails on the first attempt.
func TestHTTPRunnerRetriesTransientErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()
	r := &HTTPRunner{BaseURL: ts.URL, RetryBaseDelay: time.Millisecond}
	var out map[string]any
	if err := r.do(context.Background(), http.MethodGet, "/v1/anything", nil, &out); err != nil {
		t.Fatalf("transient 503 was not retried: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (one failure, one retry)", hits.Load())
	}

	var permHits atomic.Int64
	perm := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		permHits.Add(1)
		http.Error(w, "no such route", http.StatusNotFound)
	}))
	defer perm.Close()
	r2 := &HTTPRunner{BaseURL: perm.URL, RetryBaseDelay: time.Millisecond}
	if err := r2.do(context.Background(), http.MethodGet, "/v1/anything", nil, nil); err == nil {
		t.Fatal("404 did not surface as an error")
	}
	if permHits.Load() != 1 {
		t.Fatalf("server saw %d requests for a permanent error, want exactly 1 (no retry)", permHits.Load())
	}
}

// TestHTTPRunnerCheckHealth: 2xx means healthy, anything else (or an
// unreachable worker) does not.
func TestHTTPRunnerCheckHealth(t *testing.T) {
	url, _ := newWorker(t)
	healthy := &HTTPRunner{BaseURL: url}
	if err := healthy.CheckHealth(context.Background()); err != nil {
		t.Fatalf("live worker reported unhealthy: %v", err)
	}
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	if err := (&HTTPRunner{BaseURL: down.URL}).CheckHealth(context.Background()); err == nil {
		t.Fatal("503 worker reported healthy")
	}
	down.Close()
	if err := (&HTTPRunner{BaseURL: down.URL}).CheckHealth(context.Background()); err == nil {
		t.Fatal("dead worker reported healthy")
	}
}

package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"time"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/obs"
	"github.com/embodiedai/create/internal/obs/trace"
	"github.com/embodiedai/create/internal/registry"
	"github.com/embodiedai/create/internal/service"
)

//create:walltime-ok request deadlines, retry backoff, and the events-stream stall watchdog are failure-path timing; figure bytes come from the deterministic replay

// Runner executes one shard of a plan: every cacheable grid point the
// shard owns ends up either in the coordinator's own store or in a
// returned staging directory of content-addressed entries.
type Runner interface {
	// Label identifies the runner in logs and errors.
	Label() string
	// RunShard computes the shard's points. It returns the directory
	// holding the shard's cache entries, or "" when the points already
	// landed in the coordinator's store (the in-process path). A non-nil
	// error means the shard must be re-run; partial state is harmless
	// because entries are content-addressed and idempotent to merge.
	RunShard(ctx context.Context, plan ShardPlan, shard int) (dir string, err error)
}

// ---------------------------------------------------------------------------
// LocalRunner: today's in-process path.

// LocalRunner executes shards in-process against the coordinator's own
// environment — the exact code path a create-bench -shard run takes.
// Points land directly in Env.Cache, so RunShard returns no staging
// directory.
type LocalRunner struct {
	// Env is the evaluation substrate; Env.Cache must be the coordinator's
	// destination store.
	Env *experiments.Env
	// Workers bounds this runner's parallelism per shard (0 = all cores).
	// With several concurrent local runners, size this so the sum stays
	// within the machine.
	Workers int
	// Name labels the runner in logs (default "local").
	Name string
	// Trace, when set (share the coordinator's recorder), records one
	// compute span per shard under the dispatch span threaded through ctx.
	Trace *trace.Recorder
	// Costs, when set (share the coordinator's table), receives one
	// observation per computed job: the slice's predicted point count and
	// its measured wall time, the in-process leg of the cost feedback loop.
	Costs *registry.CostTable
}

func (r *LocalRunner) Label() string {
	if r.Name != "" {
		return r.Name
	}
	return "local"
}

// RunShard executes every experiment slice with owned cacheable points,
// discarding rendered output — only the cache entries matter; the
// coordinator's final replay renders. Slices that are fully cached or own
// no cacheable points are skipped: the replay recomputes uncached work
// locally anyway, identically to a single-node run.
func (r *LocalRunner) RunShard(ctx context.Context, plan ShardPlan, shard int) (string, error) {
	w := plan.Shards[shard]
	opt := experiments.Options{
		Trials: plan.Trials, Seed: plan.Seed, Workers: r.Workers,
		Shard: w.Index, NumShards: plan.NumShards, Ctx: ctx,
	}
	start := now()
	err := func() error {
		for _, job := range w.Jobs {
			if len(job.Keys) == 0 || job.ToCompute == 0 {
				continue
			}
			d, ok := registry.Lookup(job.Experiment)
			if !ok {
				return fmt.Errorf("plan names unregistered experiment %q", job.Experiment)
			}
			// Only touch the clock seam when someone collects the signal:
			// the fake-clock trace tests pin the exact read sequence of an
			// uncosted run.
			var jobStart time.Time
			if r.Costs != nil {
				jobStart = now()
			}
			if err := runQuietly(d, r.Env, opt); err != nil {
				return err
			}
			if r.Costs != nil {
				// ToCompute is the plan's predicted point count for this
				// slice (dynamic grids are supersets); the measured wall
				// time over it is the per-point cost signal the next plan
				// schedules by.
				r.Costs.Observe(job.Experiment, job.ToCompute, now().Sub(jobStart).Seconds())
			}
		}
		return nil
	}()
	if r.Trace != nil {
		parent, _ := spanFrom(ctx)
		attrs := map[string]string{
			"node": r.Label(), "shard": w.Selector,
			"to_compute": strconv.Itoa(w.ToCompute),
		}
		if err != nil {
			attrs["error"] = err.Error()
		}
		r.Trace.Record(trace.Span{
			TraceID: r.Trace.TraceID(), SpanID: r.Trace.NewSpanID(), ParentID: parent.SpanID,
			Name: "compute " + w.Selector, Start: start, End: now(), Attrs: attrs,
		})
	}
	return "", err
}

// runQuietly executes one experiment, converting panics — including the
// Canceled sentinel a canceled context raises between grid points — into
// errors, so a failing experiment retires its runner instead of killing
// the coordinator.
func runQuietly(d registry.Descriptor, env *experiments.Env, opt experiments.Options) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(experiments.Canceled); ok {
				err = context.Canceled
				return
			}
			err = fmt.Errorf("experiment %s panicked: %v", d.Name, r)
		}
	}()
	d.Run(env, opt)
	return nil
}

// ---------------------------------------------------------------------------
// HTTPRunner: shards on a remote create-serve worker.

// HTTPRunner executes shards on a create-serve worker: one shard job per
// experiment slice (the worker's own pool and cache do the computing),
// NDJSON progress streamed back, and the computed entries pulled by
// content address into a per-shard staging directory for the coordinator
// to merge. The worker must run with a disk-backed cache (-cache-dir);
// the service enforces this for sharded jobs at submission.
type HTTPRunner struct {
	// BaseURL is the worker root, e.g. "http://10.0.0.7:8080".
	BaseURL string
	// Client defaults to http.DefaultClient. Give it no overall timeout:
	// the events stream is open for the length of a shard.
	Client *http.Client
	// StageDir is where pulled shard entries land (a per-shard
	// subdirectory is created inside it). Keep it outside any live cache
	// directory: the coordinator deletes it after the merge.
	StageDir string
	// Local, when set, is the coordinator's destination store: the shard
	// pull is filtered to entries Local does not already hold, so a warm
	// cache transfers only the newly computed points.
	Local *cache.Store
	// Prewarm additionally pushes Local's entries from the shard's
	// manifest to the worker before submitting, so the worker's plan sees
	// them as hits instead of recomputing points the coordinator already
	// has. Best-effort: a failed push costs recompute, not correctness.
	Prewarm bool
	// OnEvent, when set, receives every progress event the worker streams.
	OnEvent func(shard int, ev service.Event)
	// Trace, when set (share the coordinator's recorder), stitches this
	// worker into the fleet timeline: every request carries a traceparent
	// header with the dispatch span from ctx, cache transfers record
	// import/export spans, and each finished job's worker-side spans are
	// pulled back and imported with their node rewritten to this worker's
	// label.
	Trace *trace.Recorder
	// Costs, when set (share the coordinator's table), harvests each
	// finished job's timing record (/v1/jobs/{id}/timing: computed points
	// and compute seconds) into the cost table — the remote leg of the
	// cost feedback loop. Best-effort, like the trace import.
	Costs *registry.CostTable
	// RequestTimeout bounds each control-plane request — submit, health
	// probe, timing/trace pulls, cache import — so one hung TCP connection
	// can never stall a shard indefinitely (0 = 30s).
	RequestTimeout time.Duration
	// MaxRetries bounds how many times a transient request failure
	// (transport error, 429, 5xx) is retried with backoff before the shard
	// is declared failed (0 = 2; negative disables retries). Retried
	// requests are safe: submissions dedupe on the worker and cache
	// transfers are content-addressed and idempotent.
	MaxRetries int
	// RetryBaseDelay seeds the retry backoff, doubled per attempt and
	// capped at 2s, with deterministic jitter (0 = 100ms). A Retry-After
	// hint from the worker overrides it, capped at 15s.
	RetryBaseDelay time.Duration
	// StallTimeout bounds *silence* on the events stream (0 = 2m). A shard
	// may legitimately run much longer — the worker emits keepalive lines
	// while computing — so a stream quiet past this is a hung connection
	// and the shard fails over. Keep it above the worker's keepalive
	// cadence (create-serve -event-keepalive, default 10s).
	StallTimeout time.Duration
}

func (r *HTTPRunner) Label() string { return r.BaseURL }

func (r *HTTPRunner) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

func (r *HTTPRunner) requestTimeout() time.Duration {
	if r.RequestTimeout > 0 {
		return r.RequestTimeout
	}
	return 30 * time.Second
}

func (r *HTTPRunner) maxRetries() int {
	if r.MaxRetries > 0 {
		return r.MaxRetries
	}
	if r.MaxRetries < 0 {
		return 0
	}
	return 2
}

func (r *HTTPRunner) retryBase() time.Duration {
	if r.RetryBaseDelay > 0 {
		return r.RetryBaseDelay
	}
	return 100 * time.Millisecond
}

func (r *HTTPRunner) stallTimeout() time.Duration {
	if r.StallTimeout > 0 {
		return r.StallTimeout
	}
	return 2 * time.Minute
}

// CheckHealth implements HealthChecker: one GET /v1/healthz under the
// request timeout. Any 2xx means the worker is serving again — the
// endpoint reports queue depth, in-flight jobs, and cache stats, but for
// readmission reachability is the signal.
func (r *HTTPRunner) CheckHealth(ctx context.Context) error {
	rctx, cancel := context.WithTimeout(ctx, r.requestTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, r.BaseURL+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	return nil
}

func (r *HTTPRunner) RunShard(ctx context.Context, plan ShardPlan, shard int) (string, error) {
	w := plan.Shards[shard]
	keys := w.Keys()
	if r.Prewarm && r.Local != nil {
		start := now()
		if n, err := r.prewarm(ctx, keys); n > 0 || err != nil {
			r.span(ctx, "cache import "+w.Selector, start,
				map[string]string{"shard": w.Selector, "entries": strconv.Itoa(n)}, err)
		}
	}
	for _, job := range w.Jobs {
		if len(job.Keys) == 0 || job.ToCompute == 0 {
			continue
		}
		if err := r.runJob(ctx, plan, w, job); err != nil {
			return "", err
		}
	}
	// Pull only what the coordinator is missing: entries it already holds
	// would be skipped at the merge anyway, so shipping them is pure waste.
	if r.Local != nil {
		missing := keys[:0]
		for _, k := range keys {
			if !r.Local.ContainsKey(k) {
				missing = append(missing, k)
			}
		}
		keys = missing
	}
	dir := filepath.Join(r.StageDir, "shard-"+strconv.Itoa(w.Index))
	stage, err := cache.New(dir)
	if err != nil {
		return "", err
	}
	if len(keys) == 0 {
		return dir, nil
	}
	start := now()
	err = r.pull(ctx, keys, stage)
	r.span(ctx, "cache export "+w.Selector, start,
		map[string]string{"shard": w.Selector, "keys": strconv.Itoa(len(keys))}, err)
	if err != nil {
		return "", err
	}
	return dir, nil
}

// span records one runner-side operation (a cache transfer) under the
// dispatch span threaded through ctx. No-op without a shared recorder.
func (r *HTTPRunner) span(ctx context.Context, name string, start time.Time, attrs map[string]string, err error) {
	if r.Trace == nil {
		return
	}
	parent, _ := spanFrom(ctx)
	if attrs == nil {
		attrs = map[string]string{}
	}
	attrs["node"] = r.Label()
	if err != nil {
		attrs["error"] = err.Error()
	}
	r.Trace.Record(trace.Span{
		TraceID: r.Trace.TraceID(), SpanID: r.Trace.NewSpanID(), ParentID: parent.SpanID,
		Name: name, Start: start, End: now(), Attrs: attrs,
	})
}

// runJob submits one (experiment, shard) job and follows its event stream
// to a terminal state.
func (r *HTTPRunner) runJob(ctx context.Context, plan ShardPlan, w ShardWork, job ShardJob) error {
	seed := plan.Seed
	spec := service.JobSpec{
		Experiment: job.Experiment,
		Trials:     plan.Trials,
		Seed:       &seed,
		Shard:      w.Selector,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	var st service.JobStatus
	if err := r.do(ctx, http.MethodPost, "/v1/jobs", body, &st); err != nil {
		return fmt.Errorf("submitting %s shard %s: %w", job.Experiment, w.Selector, err)
	}
	state, errMsg, err := r.follow(ctx, w.Index, st.ID)
	if err != nil {
		return fmt.Errorf("following %s shard %s (%s): %w", job.Experiment, w.Selector, st.ID, err)
	}
	if state != service.StateDone {
		return fmt.Errorf("%s shard %s (%s) ended %s: %s", job.Experiment, w.Selector, st.ID, state, errMsg)
	}
	r.importJobTrace(ctx, st.ID)
	r.harvestJobCost(ctx, st.ID)
	return nil
}

// harvestJobCost pulls a finished job's timing record and folds its
// measured per-point compute cost into the shared cost table. Best-effort:
// a worker that cannot serve its timing costs schedule quality, not
// correctness.
func (r *HTTPRunner) harvestJobCost(ctx context.Context, id string) {
	if r.Costs == nil {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, r.requestTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/v1/jobs/"+id+"/timing", nil)
	if err != nil {
		return
	}
	if sc, ok := spanFrom(ctx); ok {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var rec obs.JobTiming
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rec); err != nil {
		return
	}
	r.Costs.Observe(rec.Experiment, rec.ComputedPoints, rec.ComputeSeconds)
}

// importJobTrace pulls a finished job's worker-side spans into the
// shared fleet recorder, rewriting their node to this worker's label so
// the stitched timeline shows which worker ran them. Best-effort: a
// worker that cannot serve its trace costs visibility, not correctness.
func (r *HTTPRunner) importJobTrace(ctx context.Context, id string) {
	if r.Trace == nil {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, r.requestTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return
	}
	if sc, ok := spanFrom(ctx); ok {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	spans, err := trace.ReadNDJSON(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return
	}
	for i := range spans {
		if spans[i].Attrs == nil {
			spans[i].Attrs = map[string]string{}
		}
		spans[i].Attrs["node"] = r.Label()
	}
	r.Trace.Import(spans)
}

// follow streams a job's NDJSON events until a terminal state, forwarding
// each event to OnEvent. A broken stream is an error: the coordinator
// treats it as worker loss and re-queues the shard. There is no overall
// deadline — a shard legitimately runs for the length of its compute —
// but a watchdog bounds silence: the worker emits keepalive lines while
// idle, so a stream quiet past StallTimeout is a hung connection and the
// request is canceled.
func (r *HTTPRunner) follow(ctx context.Context, shard int, id string) (service.State, string, error) {
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, r.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return "", "", err
	}
	if sc, ok := spanFrom(ctx); ok {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	stall := r.stallTimeout()
	watchdog := time.AfterFunc(stall, cancel)
	defer watchdog.Stop()
	resp, err := r.client().Do(req)
	if err != nil {
		if fctx.Err() != nil && ctx.Err() == nil {
			return "", "", fmt.Errorf("events stream stalled for %v: %w", stall, err)
		}
		return "", "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("events stream returned %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var last service.Event
	terminal := false
	for {
		var ev service.Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			if fctx.Err() != nil && ctx.Err() == nil {
				return "", "", fmt.Errorf("events stream stalled for %v: %w", stall, err)
			}
			return "", "", fmt.Errorf("events stream broke: %w", err)
		}
		watchdog.Reset(stall)
		if ev.State == "" {
			// Keepalive line: liveness only, not a job event.
			continue
		}
		last = ev
		terminal = ev.State == service.StateDone || ev.State == service.StateFailed ||
			ev.State == service.StateCanceled
		if r.OnEvent != nil {
			r.OnEvent(shard, ev)
		}
	}
	if !terminal {
		return "", "", fmt.Errorf("events stream ended before a terminal state")
	}
	return last.State, last.Message, nil
}

// prewarm best-effort pushes locally resident entries from the shard's
// manifest to the worker, reporting how many entries it shipped (for the
// cache-import span; a failed push costs recompute, not correctness).
func (r *HTTPRunner) prewarm(ctx context.Context, keys []string) (int, error) {
	var buf bytes.Buffer
	n, err := r.Local.ExportTo(&buf, keys)
	if err != nil || n == 0 {
		return 0, err
	}
	return n, r.do(ctx, http.MethodPost, "/v1/cache/import", buf.Bytes(), nil)
}

// pull fetches the manifest's entries from the worker and lands them in
// the staging store, with the same bounded retries as do(): entries are
// content-addressed, so re-importing after a partial transfer is
// idempotent. Keys the worker never computed (dynamic-grid supersets) are
// simply absent from the stream.
func (r *HTTPRunner) pull(ctx context.Context, keys []string, stage *cache.Store) error {
	body, err := json.Marshal(map[string]any{"keys": keys})
	if err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = r.pullOnce(ctx, body, stage)
		if lastErr == nil {
			return nil
		}
		var re *retryableError
		if !errors.As(lastErr, &re) || attempt >= r.maxRetries() || ctx.Err() != nil {
			return lastErr
		}
		if !sleepCtx(ctx, r.retryDelay("/v1/cache/export", attempt, re.retryAfter)) {
			return lastErr
		}
	}
}

func (r *HTTPRunner) pullOnce(ctx context.Context, body []byte, stage *cache.Store) error {
	// The stall timeout, not the request timeout, bounds the transfer: a
	// full shard export can far outlast a control-plane round trip.
	rctx, cancel := context.WithTimeout(ctx, r.stallTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, r.BaseURL+"/v1/cache/export", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if sc, ok := spanFrom(ctx); ok {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	resp, err := r.client().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return err
		}
		return &retryableError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("cache export returned %d", resp.StatusCode)
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			return &retryableError{err: err, retryAfter: retryAfterHint(resp)}
		}
		return err
	}
	if _, err := stage.ImportFrom(resp.Body); err != nil {
		return fmt.Errorf("staging exported entries: %w", err)
	}
	return nil
}

// retryableError marks a request failure worth retrying: a transport
// error, a 429, or a 5xx. retryAfter carries the worker's Retry-After
// hint when it sent one.
type retryableError struct {
	err        error
	retryAfter time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// retryAfterHint parses a response's Retry-After header (seconds form).
func retryAfterHint(resp *http.Response) time.Duration {
	n, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || n < 0 {
		return 0
	}
	return time.Duration(n) * time.Second
}

// retryDelay is the wait before retry `attempt`: jittered exponential
// backoff from the base, overridden by the worker's Retry-After hint
// (capped at 15s so a confused worker cannot park the coordinator).
func (r *HTTPRunner) retryDelay(path string, attempt int, hint time.Duration) time.Duration {
	d := probeBackoff(r.retryBase(), 2*time.Second, 0, r.BaseURL+path, attempt)
	if hint > d {
		d = min(hint, 15*time.Second)
	}
	return d
}

// do issues one JSON request against the worker with a per-request
// deadline and bounded retries, decoding a 2xx response into out (when
// non-nil) and turning everything else into an error. Every request
// propagates the dispatch span from ctx as a traceparent header, so
// worker-side jobs and logs join the fleet trace. The body is a byte
// slice — not a Reader — precisely so retries can replay it.
func (r *HTTPRunner) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = r.doOnce(ctx, method, path, body, out)
		if lastErr == nil {
			return nil
		}
		var re *retryableError
		if !errors.As(lastErr, &re) || attempt >= r.maxRetries() || ctx.Err() != nil {
			return lastErr
		}
		if !sleepCtx(ctx, r.retryDelay(path, attempt, re.retryAfter)) {
			return lastErr
		}
	}
}

func (r *HTTPRunner) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	rctx, cancel := context.WithTimeout(ctx, r.requestTimeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, r.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if sc, ok := spanFrom(ctx); ok {
		req.Header.Set("traceparent", sc.Traceparent())
	}
	resp, err := r.client().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller gave up; do not classify its cancellation as a
			// worker fault worth retrying.
			return err
		}
		return &retryableError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("%s %s returned %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(msg))
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			return &retryableError{err: err, retryAfter: retryAfterHint(resp)}
		}
		return err
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

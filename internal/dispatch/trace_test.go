package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/obs/trace"
)

// TestFleetTraceIDDeterministic: the fleet trace ID is a pure function of
// the plan identity, so a replayed run traces under the same ID.
func TestFleetTraceIDDeterministic(t *testing.T) {
	a := FleetTraceID([]string{"fig16"}, 3, 2026, 4)
	b := FleetTraceID([]string{"fig16"}, 3, 2026, 4)
	if a != b || len(a) != 32 {
		t.Fatalf("fleet trace id unstable or malformed: %s vs %s", a, b)
	}
	if FleetTraceID([]string{"fig16"}, 3, 2027, 4) == a {
		t.Fatal("different seed should derive a different trace id")
	}
}

// TestCoordinatorStitchedTrace is the tentpole acceptance gate: a
// 2-worker sharded run produces ONE trace — coordinator plan/dispatch/
// merge spans and every worker's job/compute spans share the fleet trace
// ID, every span's parent exists, and worker job spans nest under the
// dispatch span that sent them (proof the traceparent header propagated
// over HTTP). The Chrome export of the stitched timeline parses.
func TestCoordinatorStitchedTrace(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig19")
	want := singleNode(t, sel, opt)

	w1, _ := newWorker(t)
	w2, _ := newWorker(t)
	store, err := cache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store

	const numShards = 4
	rec := trace.NewRecorder(FleetTraceID([]string{"fig19"}, opt.Trials, opt.Seed, numShards), "coordinator")
	stage := t.TempDir()
	coord := &Coordinator{
		Env: env, Store: store,
		Runners: []Runner{
			&HTTPRunner{BaseURL: w1, StageDir: filepath.Join(stage, "w1"), Local: store, Trace: rec},
			&HTTPRunner{BaseURL: w2, StageDir: filepath.Join(stage, "w2"), Local: store, Trace: rec},
		},
		Logf:  t.Logf,
		Trace: rec,
	}
	var out bytes.Buffer
	if _, err := coord.Run(context.Background(), &out, sel, opt, numShards, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("traced run diverged from single-node output")
	}

	spans := rec.Spans()
	ids := map[string]trace.Span{}
	for _, sp := range spans {
		if sp.TraceID != rec.TraceID() {
			t.Fatalf("span %q carries trace %s, want the fleet's %s", sp.Name, sp.TraceID, rec.TraceID())
		}
		ids[sp.SpanID] = sp
	}
	for _, sp := range spans {
		if sp.ParentID != "" {
			if _, ok := ids[sp.ParentID]; !ok {
				t.Fatalf("span %q has dangling parent %s", sp.Name, sp.ParentID)
			}
		}
	}

	count := func(prefix string) int {
		n := 0
		for _, sp := range spans {
			if strings.HasPrefix(sp.Name, prefix) {
				n++
			}
		}
		return n
	}
	// Coordinator-side singletons match on node: the workers' own "plan"
	// spans were stitched in too and must not be confused with them.
	countAt := func(name, node string) int {
		n := 0
		for _, sp := range spans {
			if sp.Name == name && sp.Attrs["node"] == node {
				n++
			}
		}
		return n
	}
	if countAt("coordinate", "coordinator") != 1 {
		t.Fatalf("want exactly one fleet root span, got %d", countAt("coordinate", "coordinator"))
	}
	if countAt("plan", "coordinator") != 1 || countAt("replay", "coordinator") != 1 {
		t.Fatalf("plan/replay spans = %d/%d, want 1/1",
			countAt("plan", "coordinator"), countAt("replay", "coordinator"))
	}
	if got := count("dispatch "); got != numShards {
		t.Fatalf("dispatch spans = %d, want one per shard (%d)", got, numShards)
	}
	if got := count("merge "); got != numShards {
		t.Fatalf("merge spans = %d, want one per shard (%d)", got, numShards)
	}

	// Worker-side job spans were pulled back and stitched: each "job *"
	// root nests under the dispatch span that sent its shard, and its node
	// attr names the worker that ran it.
	jobSpans := 0
	workers := map[string]bool{}
	for _, sp := range spans {
		if !strings.HasPrefix(sp.Name, "job ") {
			continue
		}
		jobSpans++
		parent, ok := ids[sp.ParentID]
		if !ok || !strings.HasPrefix(parent.Name, "dispatch ") {
			t.Fatalf("worker job span %q should nest under a dispatch span, parent = %+v", sp.Name, parent)
		}
		if sp.Attrs["node"] != w1 && sp.Attrs["node"] != w2 {
			t.Fatalf("job span node = %q, want a worker URL", sp.Attrs["node"])
		}
		workers[sp.Attrs["node"]] = true
	}
	if jobSpans != numShards {
		t.Fatalf("stitched %d worker job spans, want %d (one per dispatched shard)", jobSpans, numShards)
	}
	if len(workers) != 2 {
		t.Fatalf("job spans name %d distinct workers, want 2", len(workers))
	}
	// The per-shard compute children came along too.
	if got := count("shard "); got != numShards {
		t.Fatalf("worker shard-compute spans = %d, want %d", got, numShards)
	}

	// The stitched timeline exports as valid Chrome trace-event JSON with
	// one complete event per span — the artifact -trace-out writes.
	var chrome bytes.Buffer
	if err := trace.WriteChrome(&chrome, spans); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			PID int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &ct); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	complete, lanes := 0, map[int]bool{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" {
			complete++
			lanes[ev.PID] = true
		}
	}
	if complete != len(spans) {
		t.Fatalf("chrome export has %d complete events for %d spans", complete, len(spans))
	}
	// At least three process lanes: the coordinator and both workers.
	if len(lanes) < 3 {
		t.Fatalf("chrome export has %d process lanes, want coordinator + 2 workers", len(lanes))
	}
}

// TestDispatchFakeClockDurations: with the dispatch tier's clock seam
// stepped one second per read, every coordinator span has an exactly
// predictable duration — the seam turns span arithmetic into an equality
// assertion.
func TestDispatchFakeClockDurations(t *testing.T) {
	clk := struct {
		mu sync.Mutex
		t  time.Time
	}{t: time.Date(2026, 5, 6, 7, 8, 9, 0, time.UTC)}
	old := now
	now = func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		clk.t = clk.t.Add(time.Second)
		return clk.t
	}
	defer func() { now = old }()

	opt := testOptions()
	sel := selection(t, "fig19")
	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	rec := trace.NewRecorder(FleetTraceID([]string{"fig19"}, opt.Trials, opt.Seed, 1), "coordinator")
	coord := &Coordinator{
		Env: env, Store: store,
		Runners: []Runner{&LocalRunner{Env: env, Name: "local-1", Trace: rec}},
		Trace:   rec,
	}
	var out bytes.Buffer
	if _, err := coord.Run(context.Background(), &out, sel, opt, 1, false); err != nil {
		t.Fatal(err)
	}

	// Clock-call order with one shard on one local runner: runStart[1],
	// plan end[2], dispatch start[3], compute start[4], compute end[5],
	// dispatch end[6], merge start[7], merge end[8], replay start[9],
	// replay end[10], root end[11].
	byName := map[string]trace.Span{}
	for _, sp := range rec.Spans() {
		byName[sp.Name] = sp
	}
	for name, want := range map[string]time.Duration{
		"plan":         time.Second,
		"dispatch 1/1": 3 * time.Second,
		"compute 1/1":  time.Second,
		"merge 1/1":    time.Second,
		"replay":       time.Second,
		"coordinate":   10 * time.Second,
	} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("missing %s span; have %v", name, byName)
		}
		if got := sp.End.Sub(sp.Start); got != want {
			t.Errorf("%s span duration = %v, want exactly %v", name, got, want)
		}
	}
	if byName["compute 1/1"].ParentID != byName["dispatch 1/1"].SpanID {
		t.Fatal("local compute span should nest under its dispatch span")
	}
	if byName["merge 1/1"].ParentID != byName["dispatch 1/1"].SpanID {
		t.Fatal("merge span should nest under its dispatch span")
	}
}

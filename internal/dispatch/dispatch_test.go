package dispatch

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/registry"
	"github.com/embodiedai/create/internal/service"
	"github.com/embodiedai/create/internal/world"
)

func testOptions() experiments.Options { return experiments.Options{Trials: 3, Seed: 2026} }

// singleNode renders the selection the way an unsharded create-bench run
// would: fresh environment, in-memory cache.
func singleNode(t *testing.T, sel []registry.Descriptor, opt experiments.Options) []byte {
	t.Helper()
	env := experiments.NewEnv()
	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	env.Cache = store
	var buf bytes.Buffer
	Render(&buf, env, sel, opt, false)
	return buf.Bytes()
}

// newWorker boots an in-process create-serve worker over its own
// disk-backed cache and returns its base URL plus the store (for
// asserting what it computed).
func newWorker(t *testing.T) (string, *cache.Store) {
	t.Helper()
	store, err := cache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	s := service.New(service.Config{Env: env, Store: store, Workers: 2, MaxConcurrentJobs: 1, QueueDepth: 16})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL, store
}

func selection(t *testing.T, names ...string) []registry.Descriptor {
	t.Helper()
	var sel []registry.Descriptor
	for _, n := range names {
		d, ok := registry.Lookup(n)
		if !ok {
			t.Fatalf("experiment %q not registered", n)
		}
		sel = append(sel, d)
	}
	return sel
}

// TestLocalShardMergeReplayMatchesUnsharded gates the create-bench
// refactor at the library level: two Local shard sessions (the -shard
// path), a merge session (the -merge path), and a replay — byte-identical
// to the unsharded render, with zero recompute.
func TestLocalShardMergeReplayMatchesUnsharded(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig19", "fig15")
	want := singleNode(t, sel, opt)

	base := t.TempDir()
	shardDirs := make([]string, 2)
	for k := range shardDirs {
		shardDirs[k] = filepath.Join(base, "shard", string(rune('a'+k)))
		l, err := OpenLocal(
			[]string{"1/2", "2/2"}[k],
			shardDirs[k],
		)
		if err != nil {
			t.Fatal(err)
		}
		var scratch bytes.Buffer
		l.Run(&scratch, sel, l.Options(opt.Trials, opt.Seed, 0), false)
	}

	merged, err := OpenLocal("", filepath.Join(base, "merged"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := merged.MergeShardDirs(shardDirs...); err != nil || n == 0 {
		t.Fatalf("merge copied %d entries, err %v", n, err)
	}
	var got bytes.Buffer
	merged.Run(&got, sel, merged.Options(opt.Trials, opt.Seed, 0), false)
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("merged replay diverged from the unsharded run:\n--- merged ---\n%s\n--- single ---\n%s", got.Bytes(), want)
	}
	if merged.Store.Misses() != 0 {
		t.Fatalf("merged replay recomputed %d points", merged.Store.Misses())
	}

	// A memory-only session refuses -merge (nothing to merge into), and a
	// sharded session refuses to run without persistence.
	mem, err := OpenLocal("", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.MergeShardDirs(shardDirs...); err == nil {
		t.Fatal("memory-only merge accepted")
	}
	if _, err := OpenLocal("1/2", ""); err == nil {
		t.Fatal("sharded session without a cache dir accepted")
	}
}

// TestCoordinatorTwoWorkersByteIdentical is the distributed acceptance
// gate: a 2-worker sharded fig16 run (a dynamic grid, the hardest case)
// renders byte-identically to single-node create-bench, and a second run
// over the same coordinator cache dispatches nothing and recomputes zero
// points anywhere.
func TestCoordinatorTwoWorkersByteIdentical(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig16")
	want := singleNode(t, sel, opt)

	w1, s1 := newWorker(t)
	w2, s2 := newWorker(t)
	dest := t.TempDir()
	stage := t.TempDir()

	run := func() ([]byte, *cache.Store, ShardPlan) {
		store, err := cache.New(dest)
		if err != nil {
			t.Fatal(err)
		}
		env := experiments.NewEnv()
		env.Cache = store
		coord := &Coordinator{
			Env: env, Store: store,
			Runners: []Runner{
				&HTTPRunner{BaseURL: w1, StageDir: filepath.Join(stage, "w1"), Local: store, Prewarm: true},
				&HTTPRunner{BaseURL: w2, StageDir: filepath.Join(stage, "w2"), Local: store, Prewarm: true},
			},
			Logf: t.Logf,
		}
		var out bytes.Buffer
		plan, err := coord.Run(context.Background(), &out, sel, opt, 4, false)
		if err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), store, plan
	}

	got, store, plan := run()
	if !bytes.Equal(got, want) {
		t.Fatalf("coordinator output diverged from single-node:\n--- coordinator ---\n%s\n--- single ---\n%s", got, want)
	}
	if plan.ToCompute == 0 {
		t.Fatal("cold plan predicted no compute; the fan-out was not exercised")
	}
	if store.Misses() != 0 {
		t.Fatalf("replay after merge recomputed %d points locally", store.Misses())
	}
	// Both workers actually computed shards.
	if s1.Misses() == 0 || s2.Misses() == 0 {
		t.Fatalf("work was not distributed: worker misses %d / %d", s1.Misses(), s2.Misses())
	}

	// Resubmission over the same coordinator cache: zero points are
	// recomputed on any tier and the bytes still match. fig16's grid is
	// Dynamic — the enumeration is a superset of what any run computes, so
	// the warm plan still predicts compute for descent points no run ever
	// touches — but prewarm ships the coordinator's entries to whichever
	// worker a shard lands on, and the replayed descents take the same
	// early exits, so the store deltas are the true zero-recompute gate.
	w1Misses, w2Misses := s1.Misses(), s2.Misses()
	got2, store2, plan2 := run()
	if !bytes.Equal(got2, want) {
		t.Fatal("warm coordinator run diverged")
	}
	if plan2.Cached == 0 {
		t.Fatalf("warm plan saw no cached points: %+v", plan2)
	}
	if store2.Misses() != 0 {
		t.Fatalf("warm run recomputed %d points locally", store2.Misses())
	}
	if s1.Misses() != w1Misses || s2.Misses() != w2Misses {
		t.Fatalf("warm run recomputed points on a worker: %d/%d new misses",
			s1.Misses()-w1Misses, s2.Misses()-w2Misses)
	}
}

// flakyWorker accepts job submissions and then breaks every events
// stream — a worker that dies mid-shard, after taking the work.
func flakyWorker(t *testing.T) (string, *atomic.Int64) {
	t.Helper()
	var submissions atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submissions.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write([]byte(`{"id":"job-1","state":"queued"}`))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL, &submissions
}

// TestCoordinatorWorkerLossRequeues: with probation disabled (the legacy
// policy), a worker killed mid-shard does not fail the job — its shard is
// re-queued to the surviving worker, the dead worker is retired
// immediately, and the merged output still byte-matches the single-node
// run.
func TestCoordinatorWorkerLossRequeues(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig19")
	want := singleNode(t, sel, opt)

	healthy, _ := newWorker(t)
	dead, submissions := flakyWorker(t)

	store, err := cache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	coord := &Coordinator{
		Env: env, Store: store,
		Runners: []Runner{
			&HTTPRunner{BaseURL: healthy, StageDir: t.TempDir(), RetryBaseDelay: time.Millisecond},
			&HTTPRunner{BaseURL: dead, StageDir: t.TempDir(), RetryBaseDelay: time.Millisecond},
		},
		Health: HealthConfig{Disabled: true},
		Logf:   t.Logf,
	}
	var out bytes.Buffer
	if _, err := coord.Run(context.Background(), &out, sel, opt, 3, false); err != nil {
		t.Fatalf("worker loss failed the run: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("output diverged after a worker loss")
	}
	if submissions.Load() == 0 {
		t.Fatal("the flaky worker was never assigned a shard; the loss path was not exercised")
	}
	if store.Misses() != 0 {
		t.Fatalf("replay recomputed %d points", store.Misses())
	}

	// The loss is visible in the dispatch counters: the dead worker's
	// failures were counted as retries, exactly one runner was retired
	// (leaving one healthy), and every failed shard was re-queued.
	reg := coord.Metrics
	if reg == nil {
		t.Fatal("coordinator collected no metrics")
	}
	counter := func(name string, labels ...string) int64 {
		return reg.Counter(name, "", labels...).Value()
	}
	if got := counter("create_dispatch_retries_total", "worker", dead); got < 1 {
		t.Errorf("retries for the dead worker = %d, want >= 1", got)
	}
	if got := counter("create_dispatch_workers_retired_total"); got != 1 {
		t.Errorf("workers retired = %d, want 1", got)
	}
	if got := reg.Gauge("create_dispatch_workers_healthy", "").Value(); got != 1 {
		t.Errorf("healthy workers = %d, want 1", got)
	}
	if got := counter("create_dispatch_shards_total", "state", "requeued"); got < 1 {
		t.Errorf("requeued shards = %d, want >= 1", got)
	}
	if disp, done := counter("create_dispatch_shards_total", "state", "dispatched"),
		counter("create_dispatch_shards_total", "state", "completed"); disp != done+counter("create_dispatch_shards_total", "state", "requeued") {
		t.Errorf("dispatched (%d) should equal completed (%d) + requeued", disp, done)
	}
	var exp bytes.Buffer
	reg.WritePrometheus(&exp)
	if !strings.Contains(exp.String(), "create_dispatch_merged_entries_total") {
		t.Errorf("exposition missing merge counter:\n%s", exp.String())
	}
}

// TestCoordinatorAllWorkersLost: when every runner's probation is
// exhausted with shards still pending, the run fails with a diagnosable
// error instead of hanging — and only after the probe budget was actually
// spent against the dead worker.
func TestCoordinatorAllWorkersLost(t *testing.T) {
	dead, _ := flakyWorker(t)
	store, err := cache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	coord := &Coordinator{
		Env: env, Store: store,
		Runners: []Runner{&HTTPRunner{BaseURL: dead, StageDir: t.TempDir(), RetryBaseDelay: time.Millisecond}},
		Health: HealthConfig{
			MaxProbes: 3, Successes: 1,
			BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
		},
		Logf: t.Logf,
	}
	var out bytes.Buffer
	_, err = coord.Run(context.Background(), &out, selection(t, "fig19"), testOptions(), 2, false)
	if err == nil {
		t.Fatal("run with no surviving workers reported success")
	}
	if !strings.Contains(err.Error(), "no healthy runners left") {
		t.Fatalf("error does not name the condition: %v", err)
	}
	// The flaky worker 500s /v1/healthz, so the whole probe budget failed
	// before the pool gave up on it.
	if got := coord.Metrics.Counter("create_dispatch_probes_total", "",
		"worker", dead, "outcome", "fail").Value(); got != 3 {
		t.Fatalf("failed probes = %d, want the full budget of 3", got)
	}
	if got := coord.Metrics.Counter("create_dispatch_workers_retired_total", "").Value(); got != 1 {
		t.Fatalf("workers retired = %d, want 1", got)
	}
}

// TestMergeShardAtMostOnce: a duplicate shard completion (a retry after a
// lost acknowledgement) merges nothing the second time.
func TestMergeShardAtMostOnce(t *testing.T) {
	src, err := cache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := cache.Point{Task: "wooden_pickaxe", ErrorModel: "uniform", Trials: 2, Seed: 1}
	if err := src.Put(p, agent.RunManyWorkers(agent.Config{Task: world.TaskWooden, Seed: 1}, 2, 1)); err != nil {
		t.Fatal(err)
	}

	dest, err := cache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := &Coordinator{Store: dest}
	n, dup, err := c.mergeShard(0, src.Dir())
	if err != nil || dup || n != 1 {
		t.Fatalf("first merge: n=%d dup=%v err=%v", n, dup, err)
	}
	n, dup, err = c.mergeShard(0, src.Dir())
	if err != nil || !dup || n != 0 {
		t.Fatalf("duplicate merge: n=%d dup=%v err=%v, want skipped", n, dup, err)
	}
	// A different shard still merges (and the union stays idempotent).
	n, dup, err = c.mergeShard(1, src.Dir())
	if err != nil || dup || n != 0 {
		t.Fatalf("second shard merge: n=%d dup=%v err=%v (entries already present copy nothing)", n, dup, err)
	}
}

// TestPlanShardsHitAware: with the whole grid already cached locally,
// every shard plans free and Execute dispatches nothing — the scheduling
// primitive behind "a resubmission computes zero points anywhere".
func TestPlanShardsHitAware(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig19")
	env := experiments.NewEnv()
	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	env.Cache = store

	cold := PlanShards(env, sel, opt, 3)
	if cold.ToCompute != cold.GridPoints || cold.ToCompute == 0 {
		t.Fatalf("cold plan implausible: %+v", cold)
	}
	var keys int
	for _, w := range cold.Shards {
		keys += len(w.Keys())
	}
	if keys != cold.GridPoints {
		t.Fatalf("manifests carry %d keys for %d points", keys, cold.GridPoints)
	}

	// Warm the cache by running the figure, then re-plan.
	Render(&bytes.Buffer{}, env, sel, opt, false)
	warm := PlanShards(env, sel, opt, 3)
	if warm.ToCompute != 0 {
		t.Fatalf("warm plan still wants %d points", warm.ToCompute)
	}
	// Execute with a runner that must never be called.
	c := &Coordinator{Env: env, Store: store, Runners: []Runner{panicRunner{}}, Logf: t.Logf}
	if err := c.Execute(context.Background(), warm); err != nil {
		t.Fatal(err)
	}
}

// panicRunner fails the test if the coordinator dispatches to it.
type panicRunner struct{}

func (panicRunner) Label() string { return "must-not-run" }
func (panicRunner) RunShard(context.Context, ShardPlan, int) (string, error) {
	panic("free shard was dispatched")
}

package dispatch

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

//create:walltime-ok chaos-injected delays are test-harness timing; nothing here touches figure bytes

// ChaosMode is one failure the chaos proxy can inject in front of a
// worker.
type ChaosMode string

const (
	// ChaosPass forwards the request untouched.
	ChaosPass ChaosMode = "pass"
	// ChaosDrop severs the connection without a response — a worker
	// crashing mid-request.
	ChaosDrop ChaosMode = "drop"
	// ChaosDelay holds the request for Delay, then forwards it — a slow
	// network or an overloaded box.
	ChaosDelay ChaosMode = "delay"
	// ChaosError answers 503 with a Retry-After hint — a worker shedding
	// load.
	ChaosError ChaosMode = "error"
	// ChaosHang holds the connection open until the client gives up — the
	// hung-TCP case per-request timeouts exist for.
	ChaosHang ChaosMode = "hang"
)

// ChaosPhase injects Mode into the next N requests (N < 0 = every
// remaining request).
type ChaosPhase struct {
	Mode  ChaosMode
	N     int
	Delay time.Duration
}

// ParseChaosScript parses a comma-separated phase script, e.g.
//
//	pass:3,drop:4,delay:2:50ms,error:2,hang:1,pass:-1
//
// Each phase is mode:count, with delay taking a third duration field.
// Phases advance one request at a time, so a test knows exactly which
// request hits which fault.
func ParseChaosScript(s string) ([]ChaosPhase, error) {
	var phases []ChaosPhase
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		mode := ChaosMode(fields[0])
		switch mode {
		case ChaosPass, ChaosDrop, ChaosDelay, ChaosError, ChaosHang:
		default:
			return nil, fmt.Errorf("chaos script: unknown mode %q in %q", fields[0], part)
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("chaos script: phase %q needs a count (mode:count)", part)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("chaos script: bad count in %q: %w", part, err)
		}
		ph := ChaosPhase{Mode: mode, N: n}
		if mode == ChaosDelay {
			if len(fields) < 3 {
				return nil, fmt.Errorf("chaos script: delay phase %q needs a duration (delay:count:duration)", part)
			}
			d, err := time.ParseDuration(fields[2])
			if err != nil {
				return nil, fmt.Errorf("chaos script: bad duration in %q: %w", part, err)
			}
			ph.Delay = d
		} else if len(fields) > 2 {
			return nil, fmt.Errorf("chaos script: phase %q has extra fields", part)
		}
		phases = append(phases, ph)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("chaos script: empty")
	}
	return phases, nil
}

// ChaosStats is the proxy's accounting, served by Admin() — the numbers a
// chaos e2e asserts against.
type ChaosStats struct {
	Requests int            `json:"requests"`
	Phase    int            `json:"phase"`
	Injected map[string]int `json:"injected"`
}

// ChaosProxy is a failure-injecting reverse proxy for one worker: the
// chaos harness sits it between the coordinator and a create-serve
// worker, and a scripted phase list decides the fate of each request in
// arrival order. Deterministic by construction — no randomness, the
// script IS the schedule — so e2e tests can assert exact probe and retry
// counters.
type ChaosProxy struct {
	proxy *httputil.ReverseProxy

	mu       sync.Mutex
	phases   []ChaosPhase
	phase    int
	used     int // requests consumed from the current phase
	requests int
	injected map[ChaosMode]int
}

// NewChaosProxy builds a proxy to target (a worker base URL) driven by
// the script.
func NewChaosProxy(target string, phases []ChaosPhase) (*ChaosProxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("chaos proxy target: %w", err)
	}
	rp := httputil.NewSingleHostReverseProxy(u)
	// Workers stream NDJSON events and keepalives; buffering them would
	// starve the coordinator's stall watchdog, so flush immediately.
	rp.FlushInterval = -1
	return &ChaosProxy{
		proxy:    rp,
		phases:   phases,
		injected: make(map[ChaosMode]int),
	}, nil
}

// SetScript replaces the script and rewinds to its first phase.
func (p *ChaosProxy) SetScript(phases []ChaosPhase) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.phases = phases
	p.phase, p.used = 0, 0
}

// Stats snapshots the proxy's request accounting.
func (p *ChaosProxy) Stats() ChaosStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	inj := make(map[string]int, len(p.injected))
	for m, n := range p.injected {
		inj[string(m)] = n
	}
	return ChaosStats{Requests: p.requests, Phase: p.phase, Injected: inj}
}

// next consumes one request from the script and returns its fate.
func (p *ChaosProxy) next() ChaosPhase {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	for p.phase < len(p.phases) {
		ph := p.phases[p.phase]
		if ph.N < 0 || p.used < ph.N {
			p.used++
			if ph.Mode != ChaosPass {
				p.injected[ph.Mode]++
			}
			return ph
		}
		p.phase++
		p.used = 0
	}
	return ChaosPhase{Mode: ChaosPass}
}

func (p *ChaosProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ph := p.next()
	switch ph.Mode {
	case ChaosDrop:
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				_ = conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	case ChaosError:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "chaos: injected 503", http.StatusServiceUnavailable)
		return
	case ChaosHang:
		// Drain the body first: the server only watches for client
		// disconnects once the request body is consumed, and the hang must
		// end when the stalled client finally gives up.
		_, _ = io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		panic(http.ErrAbortHandler)
	case ChaosDelay:
		time.Sleep(ph.Delay)
	}
	p.proxy.ServeHTTP(w, r)
}

// Admin serves the proxy's control surface, kept off the proxied
// listener so it can never collide with (or be chaos'd like) worker
// routes:
//
//	GET  /chaos                     stats (requests, injected, phase)
//	POST /chaos {"script": "..."}   swap the script mid-run
func (p *ChaosProxy) Admin() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /chaos", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(p.Stats())
	})
	mux.HandleFunc("POST /chaos", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Script string `json:"script"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		phases, err := ParseChaosScript(body.Script)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		p.SetScript(phases)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"phases": len(phases)})
	})
	return mux
}

package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/registry"
)

// TestPlanShardsCostedDeterministic: the same environment and cost table
// always produce the same plan, the cost fields are the point counts scaled
// by the table, and a nil table marshals byte-identically to the pre-cost
// PlanShards output (cost fields are omitempty-zero).
func TestPlanShardsCostedDeterministic(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig19", "fig15")
	env := experiments.NewEnv()
	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	env.Cache = store

	costs := registry.NewCostTable()
	costs.Observe("fig19", 10, 25)  // 2.5 s/point
	costs.Observe("fig15", 100, 10) // 0.1 s/point

	a := PlanShardsCosted(env, sel, opt, 3, costs)
	b := PlanShardsCosted(env, sel, opt, 3, costs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical inputs produced different plans")
	}
	for _, w := range a.Shards {
		var want float64
		for _, j := range w.Jobs {
			cost := costs.PointCost(j.Experiment) * float64(j.ToCompute)
			if j.CostSeconds != cost {
				t.Fatalf("job %s cost %v, want %v", j.Experiment, j.CostSeconds, cost)
			}
			want += cost
		}
		if w.CostSeconds != want {
			t.Fatalf("shard %s cost %v, want sum %v", w.Selector, w.CostSeconds, want)
		}
	}

	plain, err := json.Marshal(PlanShards(env, sel, opt, 3))
	if err != nil {
		t.Fatal(err)
	}
	uncosted, err := json.Marshal(PlanShardsCosted(env, sel, opt, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, uncosted) {
		t.Fatal("nil cost table changed the marshaled plan")
	}
}

// TestCoordinatorCostWeightedByteIdentical: a heavily skewed cost table
// reorders scheduling only — the merged replay stays byte-identical to the
// single-node run, and the runners fold their measured timings back into
// the shared table.
func TestCoordinatorCostWeightedByteIdentical(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig19", "fig15")
	want := singleNode(t, sel, opt)

	costs := registry.NewCostTable()
	// Deliberately wrong weights: cost-aware scheduling must never be able
	// to change results, only order.
	costs.Observe("fig19", 1, 3600)
	costs.Observe("fig15", 1000, 1)

	store, err := cache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	coord := &Coordinator{
		Env: env, Store: store,
		Runners: []Runner{
			&LocalRunner{Env: env, Workers: 2, Name: "l1", Costs: costs},
			&LocalRunner{Env: env, Workers: 2, Name: "l2", Costs: costs},
		},
		Logf:  t.Logf,
		Costs: costs,
	}
	var got bytes.Buffer
	if _, err := coord.Run(context.Background(), &got, sel, opt, 4, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("cost-weighted run diverged from single-node:\n--- costed ---\n%s\n--- single ---\n%s", got.Bytes(), want)
	}
	// The feedback loop observed real timings on top of the seeds.
	if len(costs.Experiments()) != 2 {
		t.Fatalf("cost table experiments = %v", costs.Experiments())
	}
}

// TestExecuteCostOrder: the scheduler dispatches by predicted cost when the
// plan carries one, falling back to point counts otherwise.
func TestExecuteCostOrder(t *testing.T) {
	plan := ShardPlan{
		NumShards: 3,
		Shards: []ShardWork{
			{Index: 0, Selector: "1/3", ToCompute: 10, CostSeconds: 1},
			{Index: 1, Selector: "2/3", ToCompute: 1, CostSeconds: 100},
			{Index: 2, Selector: "3/3", ToCompute: 5, CostSeconds: 10},
		},
	}
	rec := &orderRunner{}
	c := &Coordinator{
		Env: experiments.NewEnv(), Runners: []Runner{rec}, Logf: t.Logf,
	}
	if err := c.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 0}; !reflect.DeepEqual(rec.order, want) {
		t.Fatalf("cost-weighted dispatch order %v, want %v", rec.order, want)
	}

	// Without costs the same shards order by raw ToCompute.
	for i := range plan.Shards {
		plan.Shards[i].CostSeconds = 0
	}
	rec2 := &orderRunner{}
	c2 := &Coordinator{Env: experiments.NewEnv(), Runners: []Runner{rec2}, Logf: t.Logf}
	if err := c2.Execute(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 2, 1}; !reflect.DeepEqual(rec2.order, want) {
		t.Fatalf("point-count dispatch order %v, want %v", rec2.order, want)
	}
}

// orderRunner records the shard order it was handed without computing.
type orderRunner struct {
	order []int
}

func (r *orderRunner) Label() string { return "order" }
func (r *orderRunner) RunShard(_ context.Context, _ ShardPlan, shard int) (string, error) {
	r.order = append(r.order, shard)
	return "", nil
}

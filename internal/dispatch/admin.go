package dispatch

import (
	"encoding/json"
	"net/http"
	"strings"
)

// WorkersHandler exposes dynamic pool membership over HTTP — the
// coordinator's admin surface (cmd/create-coordinator -workers-listen):
//
//	GET    /v1/workers                 pool listing with per-worker state
//	POST   /v1/workers {"url": "..."}  register a worker (late join)
//	DELETE /v1/workers?url=...         drain a worker (finish in-flight, leave)
//
// newRunner builds the Runner for a registered URL, so the binary wires
// its standard HTTPRunner construction (stage dir, prewarm, trace, cost
// table) in one place. Duplicate registrations answer 409; draining an
// unknown worker answers 404.
func (c *Coordinator) WorkersHandler(newRunner func(url string) (Runner, error)) http.Handler {
	writeJSON := func(w http.ResponseWriter, code int, v any) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(v)
	}
	workerURL := func(r *http.Request) string {
		var body struct {
			URL string `json:"url"`
		}
		_ = json.NewDecoder(r.Body).Decode(&body)
		if body.URL == "" {
			body.URL = r.URL.Query().Get("url")
		}
		return strings.TrimRight(strings.TrimSpace(body.URL), "/")
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
	})
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		url := workerURL(r)
		if url == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "missing worker url"})
			return
		}
		runner, err := newRunner(url)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		if err := c.AddRunner(runner); err != nil {
			writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"joined": runner.Label()})
	})
	mux.HandleFunc("DELETE /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		url := workerURL(r)
		if url == "" {
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": "missing worker url"})
			return
		}
		if err := c.DrainRunner(url); err != nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"draining": url})
	})
	return mux
}

package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/obs"
)

// fastHealth is a probe schedule quick enough for tests while exercising
// the real backoff arithmetic.
func fastHealth() HealthConfig {
	return HealthConfig{
		MaxProbes: 8, Successes: 2,
		BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond,
		ProbeTimeout: time.Second,
	}
}

// waitFor polls cond until it holds or the test deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// scriptedRunner wraps a real runner with scripted shard and probe
// failures — a worker that dies and then heals, minus the network.
type scriptedRunner struct {
	inner      Runner
	failShards int // fail this many RunShard calls before delegating
	failProbes int // fail this many CheckHealth calls before passing

	mu                     sync.Mutex
	shardCalls, probeCalls int
}

func (r *scriptedRunner) Label() string { return r.inner.Label() }

func (r *scriptedRunner) RunShard(ctx context.Context, plan ShardPlan, shard int) (string, error) {
	r.mu.Lock()
	r.shardCalls++
	fail := r.shardCalls <= r.failShards
	r.mu.Unlock()
	if fail {
		return "", errors.New("injected shard failure")
	}
	return r.inner.RunShard(ctx, plan, shard)
}

func (r *scriptedRunner) CheckHealth(context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.probeCalls++
	if r.probeCalls <= r.failProbes {
		return errors.New("still down")
	}
	return nil
}

// TestFlakyWorkerProbationReadmit is the one-flaky-worker regression: a
// pool of ONE worker that fails a shard and then recovers must complete
// the run via probation and readmission — before probation existed, this
// exact scenario died with "no healthy runners left".
func TestFlakyWorkerProbationReadmit(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig19")
	want := singleNode(t, sel, opt)

	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	flaky := &scriptedRunner{
		inner:      &LocalRunner{Env: env, Name: "flaky-1"},
		failShards: 1, failProbes: 2,
	}
	coord := &Coordinator{
		Env: env, Store: store,
		Runners: []Runner{flaky},
		Health:  fastHealth(),
		Logf:    t.Logf,
	}
	var out bytes.Buffer
	if _, err := coord.Run(context.Background(), &out, sel, opt, 2, false); err != nil {
		t.Fatalf("one flaky worker failed the whole run: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("output diverged after a probation readmit")
	}

	reg := coord.Metrics
	counter := func(name string, labels ...string) int64 {
		return reg.Counter(name, "", labels...).Value()
	}
	if got := counter("create_dispatch_workers_readmitted_total", "worker", "flaky-1"); got != 1 {
		t.Errorf("readmissions = %d, want 1", got)
	}
	if got := counter("create_dispatch_workers_retired_total"); got != 0 {
		t.Errorf("workers retired = %d, want 0 — the flaky worker must come back, not die", got)
	}
	if got := counter("create_dispatch_probes_total", "worker", "flaky-1", "outcome", "fail"); got != 2 {
		t.Errorf("failed probes = %d, want the scripted 2", got)
	}
	if got := counter("create_dispatch_probes_total", "worker", "flaky-1", "outcome", "ok"); got != 2 {
		t.Errorf("ok probes = %d, want Successes (2)", got)
	}
	if got := reg.Gauge("create_dispatch_workers_healthy", "").Value(); got != 1 {
		t.Errorf("healthy workers = %d after readmit, want 1", got)
	}
	if got := reg.Gauge("create_dispatch_workers_probation", "").Value(); got != 0 {
		t.Errorf("probation gauge = %d after the run, want 0", got)
	}
}

// TestProbationRequiresConsecutiveSuccesses: a flapping worker (ok, fail,
// ok, fail, ...) never strings together the required successes and is
// retired when the probe budget runs out.
func TestProbationRequiresConsecutiveSuccesses(t *testing.T) {
	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	flapper := &flappingRunner{inner: &LocalRunner{Env: env, Name: "flapper"}}
	coord := &Coordinator{
		Env: env, Store: store,
		Runners: []Runner{flapper},
		Health: HealthConfig{
			MaxProbes: 4, Successes: 2,
			BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		},
		Logf: t.Logf,
	}
	var out bytes.Buffer
	_, err = coord.Run(context.Background(), &out, selection(t, "fig19"), testOptions(), 2, false)
	if err == nil || !strings.Contains(err.Error(), "no healthy runners left") {
		t.Fatalf("flapping worker was not retired: %v", err)
	}
	if got := coord.Metrics.Counter("create_dispatch_workers_readmitted_total", "",
		"worker", "flapper").Value(); got != 0 {
		t.Fatalf("flapping worker was readmitted %d time(s) on non-consecutive successes", got)
	}
}

// flappingRunner always fails shards and alternates probe outcomes
// ok/fail — healthy-looking one moment, dead the next.
type flappingRunner struct {
	inner  Runner
	probes atomic.Int64
}

func (r *flappingRunner) Label() string { return r.inner.Label() }
func (r *flappingRunner) RunShard(context.Context, ShardPlan, int) (string, error) {
	return "", errors.New("injected shard failure")
}
func (r *flappingRunner) CheckHealth(context.Context) error {
	if r.probes.Add(1)%2 == 1 {
		return nil
	}
	return errors.New("flapped back down")
}

// gateRunner holds every shard until the gate closes — a worker busy on a
// long shard, for exercising mid-run membership changes.
type gateRunner struct {
	Runner
	gate chan struct{}
}

func (g *gateRunner) RunShard(ctx context.Context, plan ShardPlan, shard int) (string, error) {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return "", ctx.Err()
	}
	return g.Runner.RunShard(ctx, plan, shard)
}

// countRunner counts RunShard calls through to its delegate.
type countRunner struct {
	Runner
	calls atomic.Int64
}

func (c *countRunner) RunShard(ctx context.Context, plan ShardPlan, shard int) (string, error) {
	c.calls.Add(1)
	return c.Runner.RunShard(ctx, plan, shard)
}

// TestDynamicMembershipLateJoin: a worker registered mid-run immediately
// receives pending shards while the original worker is still busy, and
// the merged output is byte-identical to single-node.
func TestDynamicMembershipLateJoin(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig19")
	want := singleNode(t, sel, opt)

	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	gate := &gateRunner{
		Runner: &LocalRunner{Env: env, Name: "local-1"},
		gate:   make(chan struct{}),
	}
	coord := &Coordinator{
		Env: env, Store: store,
		Runners: []Runner{gate},
		Health:  fastHealth(),
		// Pre-set so the mid-run metric polls below never race the
		// registry's lazy initialization.
		Metrics: obs.NewRegistry(),
		Logf:    t.Logf,
	}

	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		_, err := coord.Run(context.Background(), &out, sel, opt, 3, false)
		done <- err
	}()

	// The only worker is stuck on its first shard; two shards are pending.
	waitFor(t, "the gated worker to go busy", func() bool {
		for _, w := range coord.Workers() {
			if w.Label == "local-1" && w.State == "busy" {
				return true
			}
		}
		return false
	})
	joiner := &countRunner{Runner: &LocalRunner{Env: env, Name: "local-2"}}
	if err := coord.AddRunner(joiner); err != nil {
		t.Fatal(err)
	}
	if err := coord.AddRunner(&LocalRunner{Env: env, Name: "local-2"}); err == nil {
		t.Fatal("duplicate label joined the pool twice")
	}
	// The late joiner drains the pending shards while local-1 is still
	// stuck; only then is the gate released.
	completed := func() int64 {
		return coord.Metrics.Counter("create_dispatch_shards_total", "", "state", "completed").Value()
	}
	waitFor(t, "the late joiner to finish the pending shards", func() bool { return completed() >= 2 })
	close(gate.gate)
	if err := <-done; err != nil {
		t.Fatalf("run with a late joiner failed: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("output diverged with a late joiner")
	}
	if joiner.calls.Load() < 2 {
		t.Fatalf("late joiner ran %d shard(s), want the 2 that were pending", joiner.calls.Load())
	}
	if got := coord.Metrics.Counter("create_dispatch_workers_joined_total", "",
		"worker", "local-2").Value(); got != 1 {
		t.Fatalf("joined counter = %d, want 1", got)
	}
	if got := len(coord.Workers()); got != 2 {
		t.Fatalf("pool lists %d workers after the run, want 2", got)
	}
}

// TestDrainRunnerMidRun: a drained worker finishes its in-flight shard
// (the staged work still merges), then leaves; remaining shards go to the
// survivor; between runs the drained worker is gone from the pool.
func TestDrainRunnerMidRun(t *testing.T) {
	opt := testOptions()
	sel := selection(t, "fig19")
	want := singleNode(t, sel, opt)

	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	gate := &gateRunner{
		Runner: &LocalRunner{Env: env, Name: "local-1"},
		gate:   make(chan struct{}),
	}
	survivor := &countRunner{Runner: &LocalRunner{Env: env, Name: "local-2"}}
	coord := &Coordinator{
		Env: env, Store: store,
		Runners: []Runner{gate, survivor},
		Health:  fastHealth(),
		Logf:    t.Logf,
	}

	done := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		_, err := coord.Run(context.Background(), &out, sel, opt, 4, false)
		done <- err
	}()
	waitFor(t, "the gated worker to go busy", func() bool {
		for _, w := range coord.Workers() {
			if w.Label == "local-1" && w.State == "busy" {
				return true
			}
		}
		return false
	})
	if err := coord.DrainRunner("local-1"); err != nil {
		t.Fatal(err)
	}
	var draining bool
	for _, w := range coord.Workers() {
		if w.Label == "local-1" && w.Draining {
			draining = true
		}
	}
	if !draining {
		t.Fatal("busy worker not marked draining")
	}
	close(gate.gate)
	if err := <-done; err != nil {
		t.Fatalf("run with a draining worker failed: %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("output diverged across a drain")
	}
	if got := coord.Metrics.Counter("create_dispatch_workers_drained_total", "",
		"worker", "local-1").Value(); got != 1 {
		t.Fatalf("drained counter = %d, want 1", got)
	}
	// The survivor took everything past the drained worker's one in-flight
	// shard, and the next run's pool no longer lists local-1.
	if survivor.calls.Load() < 3 {
		t.Fatalf("survivor ran %d shards, want the 3 the drained worker gave up", survivor.calls.Load())
	}
	workers := coord.Workers()
	if len(workers) != 1 || workers[0].Label != "local-2" {
		t.Fatalf("pool after the run = %+v, want only local-2", workers)
	}
	if err := coord.DrainRunner("local-404"); err == nil {
		t.Fatal("draining an unknown worker reported success")
	}
}

// TestWorkersHandler: the dynamic-membership admin endpoint registers,
// lists, and drains workers over HTTP with the documented status codes.
func TestWorkersHandler(t *testing.T) {
	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	env := experiments.NewEnv()
	env.Cache = store
	coord := &Coordinator{
		Env: env, Store: store,
		Runners: []Runner{&LocalRunner{Env: env, Name: "local-1"}},
	}
	ts := httptest.NewServer(coord.WorkersHandler(func(url string) (Runner, error) {
		return &HTTPRunner{BaseURL: url}, nil
	}))
	defer ts.Close()

	req := func(method, path, body string) (int, string) {
		t.Helper()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		r, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if code, body := req(http.MethodPost, "/v1/workers", `{"url":"http://worker-a:8080/"}`); code != http.StatusOK {
		t.Fatalf("registering a worker: %d %s", code, body)
	}
	if code, _ := req(http.MethodPost, "/v1/workers", `{"url":"http://worker-a:8080"}`); code != http.StatusConflict {
		t.Fatalf("duplicate registration = %d, want 409", code)
	}
	if code, _ := req(http.MethodPost, "/v1/workers", `{}`); code != http.StatusBadRequest {
		t.Fatalf("empty registration = %d, want 400", code)
	}
	code, body := req(http.MethodGet, "/v1/workers", "")
	if code != http.StatusOK {
		t.Fatalf("listing workers: %d", code)
	}
	var listing struct {
		Workers []WorkerInfo `json:"workers"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("listing is not JSON: %v", err)
	}
	labels := map[string]bool{}
	for _, w := range listing.Workers {
		labels[w.Label] = true
	}
	if !labels["local-1"] || !labels["http://worker-a:8080"] {
		t.Fatalf("listing = %+v, want local-1 and the registered worker", listing.Workers)
	}
	if code, _ := req(http.MethodDelete, "/v1/workers?url=http://worker-a:8080", ""); code != http.StatusOK {
		t.Fatalf("draining = %d, want 200", code)
	}
	if code, _ := req(http.MethodDelete, "/v1/workers?url=http://worker-a:8080", ""); code != http.StatusNotFound {
		t.Fatalf("draining an already-gone worker = %d, want 404", code)
	}
}

// TestProbeBackoffDeterministic: the probe schedule is a pure function of
// (config, worker, failure count) — reproducible across processes, jittered
// across workers, doubled per failure, capped at the max.
func TestProbeBackoffDeterministic(t *testing.T) {
	base, maxDelay := 250*time.Millisecond, 5*time.Second
	expected := base
	for fails := 0; fails < 12; fails++ {
		d1 := probeBackoff(base, maxDelay, 7, "http://w1", fails)
		d2 := probeBackoff(base, maxDelay, 7, "http://w1", fails)
		if d1 != d2 {
			t.Fatalf("fails=%d: backoff not deterministic (%v vs %v)", fails, d1, d2)
		}
		if d1 < expected/2 || d1 >= expected {
			t.Fatalf("fails=%d: backoff %v outside [%v, %v)", fails, d1, expected/2, expected)
		}
		if expected < maxDelay {
			expected *= 2
			if expected > maxDelay {
				expected = maxDelay
			}
		}
	}
	// Jitter actually spreads workers: not every key lands on one value.
	seen := map[time.Duration]bool{}
	for _, key := range []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"} {
		seen[probeBackoff(base, maxDelay, 7, key, 0)] = true
	}
	if len(seen) < 2 {
		t.Fatal("probe jitter collapsed every worker onto one delay")
	}
}

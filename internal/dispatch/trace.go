package dispatch

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"time"

	"github.com/embodiedai/create/internal/obs/trace"
)

//create:walltime-ok dispatch/merge/replay span stamps are operational metadata; figure bytes come from the deterministic replay

// now is the dispatch tier's single wall-clock seam: every span stamp
// flows through it so tests can inject a fake clock and assert exact
// durations.
var now = time.Now

var discardLogger = slog.New(slog.DiscardHandler)

// log returns the coordinator's structured logger (discard when unset).
// Human-readable progress still goes through Logf; this stream carries
// the trace/span IDs that join coordinator logs to worker logs.
func (c *Coordinator) log() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return discardLogger
}

// spanKey threads the active dispatch span across the Runner interface
// boundary: RunShard's signature is fixed, so the span context rides the
// context.Context, exactly like cancellation does.
type spanKey struct{}

func withSpan(ctx context.Context, sc trace.SpanContext) context.Context {
	return context.WithValue(ctx, spanKey{}, sc)
}

func spanFrom(ctx context.Context) (trace.SpanContext, bool) {
	sc, ok := ctx.Value(spanKey{}).(trace.SpanContext)
	return sc, ok && sc.Valid()
}

// FleetTraceID derives the deterministic trace ID of one coordinator run
// from its plan identity. Exported so cmd/create-coordinator can build
// the shared recorder (coordinator + all runners) before planning.
func FleetTraceID(experiments []string, trials int, seed int64, numShards int) string {
	fp := fmt.Sprintf("%s|%d|%d|%d", strings.Join(experiments, ","), trials, seed, numShards)
	return trace.DeriveTraceID(fp, 0)
}

// ensureTrace returns the run's recorder, lazily allocating one from the
// plan fingerprint when the caller did not inject a shared recorder —
// span accounting is always on, mirroring how Metrics lazily allocates.
func (c *Coordinator) ensureTrace(plan ShardPlan) *trace.Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Trace == nil {
		c.Trace = trace.NewRecorder(
			FleetTraceID(plan.Experiments, plan.Trials, plan.Seed, plan.NumShards),
			"coordinator")
	}
	return c.Trace
}

// rootSpanID mints the fleet root span ID once per coordinator; Execute
// reads it (possibly empty, when Execute is driven without Run) as the
// parent for dispatch spans.
func (c *Coordinator) mintRootSpan(rec *trace.Recorder) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rootSpan == "" {
		c.rootSpan = rec.NewSpanID()
	}
	return c.rootSpan
}

func (c *Coordinator) rootSpanID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rootSpan
}

package dispatch

import (
	"github.com/embodiedai/create/internal/obs"
)

// reg returns the coordinator's metric registry, creating a private one on
// first use so dispatch accounting is always collected; cmd/create-coordinator
// injects a registry to surface it (-metrics-out), and tests read it back.
func (c *Coordinator) reg() *obs.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c.Metrics
}

// Dispatch metric helpers. All counters live at shard granularity — one
// increment per dispatch/retry/merge decision — far off the episode hot
// path.

func (c *Coordinator) countShard(state string) {
	c.reg().Counter("create_dispatch_shards_total",
		"Shard scheduling decisions by state: free (never dispatched), dispatched, requeued, completed.",
		"state", state).Inc()
}

func (c *Coordinator) countAttempt(selector string) {
	c.reg().Counter("create_dispatch_shard_attempts_total",
		"Dispatch attempts per shard selector; >1 means the shard was retried after worker loss.",
		"shard", selector).Inc()
}

func (c *Coordinator) countRetry(worker string) {
	c.reg().Counter("create_dispatch_retries_total",
		"Shard failures by worker; each one re-queues the shard and sends the worker to probation (or retires it).",
		"worker", worker).Inc()
}

// countRetired accounts a runner leaving the pool for good: probation
// exhausted, or health probing disabled/unsupported for it.
func (c *Coordinator) countRetired() {
	c.reg().Counter("create_dispatch_workers_retired_total",
		"Runners retired from the pool: probation exhausted, or probing disabled/unsupported.").Inc()
}

// countProbe accounts one probation health check, outcome "ok" or "fail".
func (c *Coordinator) countProbe(worker, outcome string) {
	c.reg().Counter("create_dispatch_probes_total",
		"Health probes sent to workers in probation, by worker and outcome (ok, fail).",
		"worker", worker, "outcome", outcome).Inc()
}

func (c *Coordinator) countReadmitted(worker string) {
	c.reg().Counter("create_dispatch_workers_readmitted_total",
		"Workers that recovered during probation and rejoined the dispatch pool.",
		"worker", worker).Inc()
}

func (c *Coordinator) countJoined(worker string) {
	c.reg().Counter("create_dispatch_workers_joined_total",
		"Workers added to the pool at runtime (dynamic membership).",
		"worker", worker).Inc()
}

func (c *Coordinator) countDrained(worker string) {
	c.reg().Counter("create_dispatch_workers_drained_total",
		"Workers that finished their in-flight work and left the pool on request.",
		"worker", worker).Inc()
}

func (c *Coordinator) countMergedEntries(n int) {
	c.reg().Counter("create_dispatch_merged_entries_total",
		"Cache entries merged back from completed shards.").Add(int64(n))
}

func (c *Coordinator) healthyWorkers() *obs.Gauge {
	return c.reg().Gauge("create_dispatch_workers_healthy",
		"Runners currently eligible for shard dispatch.")
}

func (c *Coordinator) probationWorkers() *obs.Gauge {
	return c.reg().Gauge("create_dispatch_workers_probation",
		"Runners currently in probation, being health-probed for readmission.")
}

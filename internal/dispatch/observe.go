package dispatch

import (
	"github.com/embodiedai/create/internal/obs"
)

// reg returns the coordinator's metric registry, creating a private one on
// first use so dispatch accounting is always collected; cmd/create-coordinator
// injects a registry to surface it (-metrics-out), and tests read it back.
func (c *Coordinator) reg() *obs.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c.Metrics
}

// Dispatch metric helpers. All counters live at shard granularity — one
// increment per dispatch/retry/merge decision — far off the episode hot
// path.

func (c *Coordinator) countShard(state string) {
	c.reg().Counter("create_dispatch_shards_total",
		"Shard scheduling decisions by state: free (never dispatched), dispatched, requeued, completed.",
		"state", state).Inc()
}

func (c *Coordinator) countAttempt(selector string) {
	c.reg().Counter("create_dispatch_shard_attempts_total",
		"Dispatch attempts per shard selector; >1 means the shard was retried after worker loss.",
		"shard", selector).Inc()
}

func (c *Coordinator) countRetry(worker string) {
	c.reg().Counter("create_dispatch_retries_total",
		"Shard failures by worker; each one retires the worker and re-queues its shard.",
		"worker", worker).Inc()
	c.reg().Counter("create_dispatch_workers_retired_total",
		"Runners retired after a shard failure (worker loss).").Inc()
	c.healthyWorkers().Add(-1)
}

func (c *Coordinator) countMergedEntries(n int) {
	c.reg().Counter("create_dispatch_merged_entries_total",
		"Cache entries merged back from completed shards.").Add(int64(n))
}

func (c *Coordinator) healthyWorkers() *obs.Gauge {
	return c.reg().Gauge("create_dispatch_workers_healthy",
		"Runners currently eligible for shard dispatch.")
}

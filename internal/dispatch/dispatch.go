// Package dispatch is the shard planning and fan-out tier of the
// evaluation suite: everything between "a selection of experiments at a
// scale" and "a merged cache whose replay is byte-identical to a
// single-node run" lives here, shared by cmd/create-bench (the in-process
// path) and cmd/create-coordinator (the distributed path over a pool of
// create-serve workers).
//
// The three pieces:
//
//   - ShardPlan (PlanShards): a transport-agnostic execution plan built
//     from registry.ShardPlanFor — per shard and per experiment, the grid
//     points owned, the predicted cache hits, and the content-address
//     manifest. Because the plan carries predicted compute per shard, the
//     coordinator schedules hit-aware (heaviest shards first, fully
//     cached shards never dispatched) instead of treating every k/n slice
//     as equal work.
//
//   - Runner: how one shard executes. LocalRunner computes in-process
//     straight into the coordinator's store; HTTPRunner submits shard
//     jobs to a create-serve worker, follows its NDJSON progress, and
//     pulls the computed entries back by content address into a staging
//     directory.
//
//   - Coordinator: fans a plan's shards out over a Runner pool with
//     retry-on-worker-loss (a failed shard is re-queued to a healthy
//     runner; the failing runner enters probation and is health-probed
//     back into the pool, pool.go), merges each completed shard's staging
//     directory into the destination cache at most once (cache.MergeDirs
//     — content addressing makes the union the complete merge), and
//     finally replays the selection unsharded against the merged cache,
//     rendering output byte-identical to a single machine. Pool
//     membership is dynamic: workers join (AddRunner) and drain
//     (DrainRunner) mid-run, over HTTP via WorkersHandler (admin.go).
//
// The coordinator accounts every scheduling decision — shards dispatched,
// re-queued after worker loss, workers probed/readmitted/retired, entries
// merged — on internal/obs counters at shard granularity (observe.go),
// surfaced by cmd/create-coordinator's -metrics-out flag and catalogued
// in docs/METRICS.md. The tier's place in the stack is drawn out in
// docs/ARCHITECTURE.md.
package dispatch

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/obs"
	"github.com/embodiedai/create/internal/obs/trace"
	"github.com/embodiedai/create/internal/registry"
)

// ShardJob is one experiment's slice of one shard: the grid points this
// shard owns for that experiment, the predicted cache hits against the
// planning store, and the content addresses — the manifest a worker's
// computed entries are pulled back by.
type ShardJob struct {
	Experiment string `json:"experiment"`
	GridPoints int    `json:"grid_points"`
	Cached     int    `json:"cached"`
	ToCompute  int    `json:"to_compute"`
	// CostSeconds is the predicted compute cost of this slice under the
	// plan's cost table (ToCompute x the experiment's observed per-point
	// cost). Zero when the plan was built without a table, keeping such
	// plans byte-identical to pre-cost ones.
	CostSeconds float64  `json:"cost_seconds,omitempty"`
	Keys        []string `json:"keys,omitempty"`
}

// ShardWork is one shard of the plan: its 1-based "k/n" selector (the
// exact string a JobSpec or -shard flag accepts) and its per-experiment
// slices with summed totals.
type ShardWork struct {
	Index      int    `json:"index"` // 0-based
	Selector   string `json:"selector"`
	GridPoints int    `json:"grid_points"`
	Cached     int    `json:"cached"`
	ToCompute  int    `json:"to_compute"`
	// CostSeconds sums the jobs' predicted compute cost; the scheduler's
	// heaviest-first order uses it when present (cost-aware autotuning)
	// and falls back to raw ToCompute when zero.
	CostSeconds float64    `json:"cost_seconds,omitempty"`
	Jobs        []ShardJob `json:"jobs"`
}

// Free reports whether every point this shard owns is already resident in
// the planning store — such shards are never dispatched; the replay
// serves their points from the local cache. Enumerations of dynamic grids
// are supersets, so Free stays sound for them.
func (w ShardWork) Free() bool { return w.ToCompute == 0 }

// Keys returns the shard's deduplicated content-address manifest across
// all its experiments (experiments can share points; sharding is
// per-experiment grid index, so a shared point may appear in two jobs).
func (w ShardWork) Keys() []string {
	seen := make(map[string]bool)
	var keys []string
	for _, j := range w.Jobs {
		for _, k := range j.Keys {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	return keys
}

// ShardPlan is the transport-agnostic execution plan of one evaluation:
// which experiments, at what scale, split into how many shards, and per
// shard the predicted work. Totals sum the shards (a point shared by two
// experiments is counted once per experiment slice, mirroring how sharded
// runs execute).
type ShardPlan struct {
	Experiments []string    `json:"experiments"`
	Trials      int         `json:"trials"`
	Seed        int64       `json:"seed"`
	NumShards   int         `json:"num_shards"`
	GridPoints  int         `json:"grid_points"`
	Cached      int         `json:"cached"`
	ToCompute   int         `json:"to_compute"`
	Shards      []ShardWork `json:"shards"`
}

// PlanShards builds the execution plan for sel at opt's scale split
// numShards ways, probing env's cache through registry.ShardPlanFor so
// every shard carries its predicted hits and its key manifest. numShards
// < 1 plans a single shard covering the whole grid.
func PlanShards(env *experiments.Env, sel []registry.Descriptor, opt experiments.Options, numShards int) ShardPlan {
	return PlanShardsCosted(env, sel, opt, numShards, nil)
}

// PlanShardsCosted is PlanShards weighted by a cost table: each shard job
// additionally carries its predicted compute cost (ToCompute x observed
// per-point cost of its experiment), which the coordinator's scheduler
// orders by. The cost table only reweights scheduling — shard membership
// is still grid-index modulo numShards, so the computed points, their
// content addresses, and the merged cache are byte-identical whatever the
// table says. A nil table leaves every cost zero (the uncosted plan).
// Plans are deterministic given (env cache state, sel, opt, costs).
func PlanShardsCosted(env *experiments.Env, sel []registry.Descriptor, opt experiments.Options, numShards int, costs *registry.CostTable) ShardPlan {
	if numShards < 1 {
		numShards = 1
	}
	plan := ShardPlan{Trials: opt.Trials, Seed: opt.Seed, NumShards: numShards}
	for _, d := range sel {
		plan.Experiments = append(plan.Experiments, d.Name)
	}
	for k := 0; k < numShards; k++ {
		so := opt
		so.Shard, so.NumShards = k, numShards
		w := ShardWork{Index: k, Selector: fmt.Sprintf("%d/%d", k+1, numShards)}
		for _, d := range sel {
			p, keys := registry.ShardPlanFor(d, env, so)
			j := ShardJob{
				Experiment: d.Name,
				GridPoints: p.GridPoints, Cached: p.Cached, ToCompute: p.ToCompute,
				Keys: keys,
			}
			if costs != nil {
				j.CostSeconds = float64(p.ToCompute) * costs.PointCost(d.Name)
			}
			w.Jobs = append(w.Jobs, j)
			w.GridPoints += p.GridPoints
			w.Cached += p.Cached
			w.ToCompute += p.ToCompute
			w.CostSeconds += j.CostSeconds
		}
		plan.GridPoints += w.GridPoints
		plan.Cached += w.Cached
		plan.ToCompute += w.ToCompute
		plan.Shards = append(plan.Shards, w)
	}
	return plan
}

// Render executes each selected experiment against env in order and
// prints it in the reference create-bench format (section banners when
// banner is set — the -exp all layout). Every tier renders through this
// one loop, which is what keeps CLI, coordinator and replay output
// byte-identical.
func Render(w io.Writer, env *experiments.Env, sel []registry.Descriptor, opt experiments.Options, banner bool) {
	for _, d := range sel {
		if banner {
			fmt.Fprintf(w, "\n===== %s =====\n", strings.ToUpper(d.Name))
		}
		d.Run(env, opt).Render(w)
	}
}

// RenderPlans prints the cache-aware schedule (create-bench -plan): per
// experiment, the unique grid points its sweeps consult, how many are
// already in the cache, and how many a run would compute. "free" marks
// figures a run would serve entirely from cache.
func RenderPlans(w io.Writer, env *experiments.Env, opt experiments.Options, sel []registry.Descriptor) {
	fmt.Fprintf(w, "%-8s %8s %8s %10s  %s\n", "exp", "points", "cached", "to-compute", "notes")
	for _, d := range sel {
		p := registry.PlanFor(d, env, opt)
		var notes []string
		if p.Free() {
			notes = append(notes, "free")
		}
		if p.Dynamic {
			notes = append(notes, "dynamic upper bound")
		}
		if p.Uncached {
			notes = append(notes, "has uncached work")
		}
		fmt.Fprintf(w, "%-8s %8d %8d %10d  %s\n",
			d.Name, p.GridPoints, p.Cached, p.ToCompute, strings.Join(notes, ", "))
	}
}

// ---------------------------------------------------------------------------
// Coordinator: fan-out, retry, at-most-once merge, replay.

// Coordinator fans a plan's shards out over a pool of Runners and
// reassembles the results into Env's cache. Env.Cache and Store must be
// the same store; when any runner stages entries in directories (the HTTP
// path), the store must be disk-backed so merged entries are readable by
// the replay.
type Coordinator struct {
	Env   *experiments.Env
	Store *cache.Store
	// Runners is the worker pool. A runner whose RunShard fails is retired
	// for the rest of the run (worker loss); its shard is re-queued to a
	// healthy runner.
	Runners []Runner
	// MaxAttempts bounds how many times one shard may fail before the whole
	// run fails (default 3).
	MaxAttempts int
	// Logf, when set, receives human-readable progress (stderr-style).
	Logf func(format string, args ...any)
	// Metrics receives the create_dispatch_* instrument families (shard
	// dispatch/retry/merge counters, worker health gauge). nil lazily
	// allocates a private registry, so accounting is always on; inject a
	// shared registry to surface it (cmd/create-coordinator -metrics-out).
	Metrics *obs.Registry
	// Trace receives the run's spans — plan, per-attempt dispatch, merge,
	// replay — under one fleet root span. Share the same recorder with the
	// pool's runners so worker-side spans stitch into this timeline
	// (cmd/create-coordinator -trace-out). nil lazily allocates one with a
	// trace ID derived from the plan, so span accounting is always on.
	Trace *trace.Recorder
	// Logger receives structured progress with trace/span IDs (the machine
	// twin of Logf). nil discards.
	Logger *slog.Logger
	// Costs, when set, makes planning and scheduling cost-aware: shards
	// are weighted by observed per-point compute cost instead of raw point
	// counts, and every completed shard's measured timings are folded back
	// into the table (runners share it), so the schedule adapts across
	// runs of one coordinator process. nil keeps the point-count order.
	Costs *registry.CostTable
	// Health governs what happens to a runner after a shard failure:
	// probeable runners enter probation and are health-checked back into
	// the pool instead of being retired outright. The zero value enables
	// probation with defaults; set Disabled for the legacy
	// retire-on-first-failure policy.
	Health HealthConfig

	mu       sync.Mutex
	merged   map[int]bool // shards whose entries have landed, for at-most-once merge
	rootSpan string       // fleet root span ID; parent of dispatch/merge spans

	// Live pool state for one Execute (pool.go). Guarded by poolMu, never
	// mu: metric helpers lock mu, and they run while pool decisions are
	// being made.
	poolMu sync.Mutex
	pool   []*member
	poolOn bool
	wake   chan struct{}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Run is the end-to-end distributed evaluation: plan sel at numShards,
// execute the non-free shards across the runner pool, and replay the
// selection unsharded against the merged cache, rendering to w. The
// rendered bytes are identical to a single-node create-bench run of the
// same selection — the merge only ever adds cache entries the single-node
// run would have computed itself.
func (c *Coordinator) Run(ctx context.Context, w io.Writer, sel []registry.Descriptor, opt experiments.Options, numShards int, banner bool) (ShardPlan, error) {
	runStart := now()
	plan := PlanShardsCosted(c.Env, sel, opt, numShards, c.Costs)
	rec := c.ensureTrace(plan)
	root := c.mintRootSpan(rec)
	rec.Record(trace.Span{
		TraceID: rec.TraceID(), SpanID: rec.NewSpanID(), ParentID: root,
		Name: "plan", Start: runStart, End: now(),
		Attrs: map[string]string{
			"node":        "coordinator",
			"grid_points": strconv.Itoa(plan.GridPoints),
			"cached":      strconv.Itoa(plan.Cached),
			"to_compute":  strconv.Itoa(plan.ToCompute),
			"shards":      strconv.Itoa(plan.NumShards),
		},
	})
	c.log().Info("fleet run planned",
		"trace_id", rec.TraceID(), "span_id", root,
		"experiments", strings.Join(plan.Experiments, ","),
		"shards", plan.NumShards, "grid_points", plan.GridPoints,
		"cached", plan.Cached, "to_compute", plan.ToCompute)
	// The fleet root span closes when Run returns, whatever the outcome —
	// its duration is the end-to-end wall time of the distributed run.
	finish := func(err error) {
		attrs := map[string]string{
			"node":        "coordinator",
			"experiments": strings.Join(plan.Experiments, ","),
			"shards":      strconv.Itoa(plan.NumShards),
		}
		if err != nil {
			attrs["error"] = err.Error()
		}
		rec.Record(trace.Span{
			TraceID: rec.TraceID(), SpanID: root,
			Name: "coordinate", Start: runStart, End: now(), Attrs: attrs,
		})
	}
	if err := c.Execute(ctx, plan); err != nil {
		finish(err)
		return plan, err
	}
	replay := opt
	replay.Shard, replay.NumShards = 0, 0
	replay.Ctx = ctx
	replayStart := now()
	// An interrupt mid-replay surfaces as the Canceled panic at the next
	// grid-point boundary; convert it to the same clean error the fan-out
	// phase reports instead of crashing the caller.
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(experiments.Canceled); ok {
					err = ctx.Err()
					if err == nil {
						err = context.Canceled
					}
					return
				}
				panic(r)
			}
		}()
		Render(w, c.Env, sel, replay, banner)
		return nil
	}()
	replayAttrs := map[string]string{"node": "coordinator"}
	if err != nil {
		replayAttrs["error"] = err.Error()
	}
	rec.Record(trace.Span{
		TraceID: rec.TraceID(), SpanID: rec.NewSpanID(), ParentID: root,
		Name: "replay", Start: replayStart, End: now(), Attrs: replayAttrs,
	})
	finish(err)
	return plan, err
}

// Execute runs every non-free shard of the plan on the runner pool.
// Shards are dispatched heaviest-predicted-compute first (hit-aware
// balancing: a naive k/n round-robin would let one unlucky worker own the
// whole tail), failed shards are re-queued to surviving runners, and each
// completed shard's staged entries are merged into the destination store
// at most once.
//
// The pool is self-healing: a runner that fails a shard enters probation
// (pool.go) and is health-probed back in instead of being lost for the
// run, workers can join or drain mid-run (AddRunner/DrainRunner), and the
// run only fails for lack of workers once every member is retired with
// its probation exhausted.
func (c *Coordinator) Execute(ctx context.Context, plan ShardPlan) error {
	if len(c.Runners) == 0 {
		return fmt.Errorf("coordinator has no runners")
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	health := c.Health.withDefaults()
	if err := c.startPool(); err != nil {
		return err
	}
	defer c.stopPool()
	// Probes outlive individual scheduling iterations but not Execute:
	// canceling here stops every in-flight probation episode, and the Wait
	// keeps probe goroutines from outliving the run they account against.
	probeCtx, cancelProbes := context.WithCancel(ctx)
	var probeWG sync.WaitGroup
	defer func() {
		cancelProbes()
		probeWG.Wait()
	}()
	c.healthyWorkers().Set(int64(len(c.Runners)))
	rec := c.ensureTrace(plan)
	root := c.rootSpanID() // "" when Execute is driven without Run: dispatch spans become top-level

	// Hit-aware schedule: heaviest shards first; fully cached shards are
	// never dispatched at all — the replay serves their points locally.
	var pending []int
	for _, w := range plan.Shards {
		if w.Free() {
			c.logf("shard %s: all %d points cached; not dispatching", w.Selector, w.GridPoints)
			c.countShard("free")
			at := now()
			rec.Record(trace.Span{
				TraceID: rec.TraceID(), SpanID: rec.NewSpanID(), ParentID: root,
				Name: "free " + w.Selector, Start: at, End: at,
				Attrs: map[string]string{
					"node": "coordinator", "shard": w.Selector,
					"grid_points": strconv.Itoa(w.GridPoints),
				},
			})
			c.log().Info("shard fully cached; not dispatched",
				"trace_id", rec.TraceID(), "span_id", root,
				"shard", w.Selector, "grid_points", w.GridPoints)
			continue
		}
		pending = append(pending, w.Index)
	}
	// Heaviest-first by predicted cost when the plan carries one, raw
	// point count otherwise. The stable sort keeps shard-index order among
	// equals, so a nil cost table reproduces the pre-cost schedule exactly.
	weight := func(idx int) float64 {
		w := plan.Shards[idx]
		if w.CostSeconds > 0 {
			return w.CostSeconds
		}
		return float64(w.ToCompute)
	}
	sort.SliceStable(pending, func(i, j int) bool {
		return weight(pending[i]) > weight(pending[j])
	})
	if len(pending) == 0 {
		return nil
	}

	type result struct {
		shard  int
		member *member
		dir    string
		err    error
	}
	// Unbuffered: senders race their result against loopDone, so an error
	// return never strands an in-flight goroutine blocking on its send —
	// however large the pool has grown by then.
	results := make(chan result)
	loopDone := make(chan struct{})
	defer close(loopDone)
	attempts := make(map[int]int)
	inflight := make(map[int]trace.Span) // dispatch span per in-flight shard
	outstanding := 0
	for {
		for len(pending) > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			m, ok := c.claimIdle()
			if !ok {
				break
			}
			shard := pending[0]
			pending = pending[1:]
			w := plan.Shards[shard]
			label := m.runner.Label()
			c.logf("shard %s -> %s (%d points, %d cached, %d to compute)",
				w.Selector, label, w.GridPoints, w.Cached, w.ToCompute)
			c.countShard("dispatched")
			c.countAttempt(w.Selector)
			sp := trace.Span{
				TraceID: rec.TraceID(), SpanID: rec.NewSpanID(), ParentID: root,
				Name: "dispatch " + w.Selector, Start: now(),
				Attrs: map[string]string{
					"node": "coordinator", "shard": w.Selector,
					"worker":     label,
					"attempt":    strconv.Itoa(attempts[shard] + 1),
					"to_compute": strconv.Itoa(w.ToCompute),
				},
			}
			inflight[shard] = sp
			c.log().Info("shard dispatched",
				"trace_id", rec.TraceID(), "span_id", sp.SpanID,
				"shard", w.Selector, "worker", label,
				"attempt", attempts[shard]+1, "to_compute", w.ToCompute)
			outstanding++
			go func(shard int, m *member, dctx context.Context) {
				dir, err := m.runner.RunShard(dctx, plan, shard)
				select {
				case results <- result{shard: shard, member: m, dir: dir, err: err}:
				case <-loopDone:
				}
			}(shard, m, withSpan(ctx, sp.Context()))
		}
		if outstanding == 0 {
			if len(pending) == 0 {
				return nil
			}
			idleN, probation := c.poolHope()
			if idleN == 0 && probation == 0 {
				return fmt.Errorf("no healthy runners left with %d shard(s) unfinished (probation exhausted)", len(pending))
			}
			if idleN > 0 {
				// A readmit or join landed between claim attempts.
				continue
			}
			// Everything is in probation: wait for an episode to settle (or
			// a worker to join) before deciding the run's fate.
			select {
			case <-c.wake:
				continue
			case <-ctx.Done():
				return ctx.Err()
			}
		}

		var res result
		select {
		case res = <-results:
		case <-c.wake:
			// Membership changed (join/readmit/drain): revisit dispatch.
			continue
		case <-ctx.Done():
			return ctx.Err()
		}
		outstanding--
		w := plan.Shards[res.shard]
		label := res.member.runner.Label()
		sp := inflight[res.shard]
		delete(inflight, res.shard)
		sp.End = now()
		if res.err != nil {
			sp.Attrs["error"] = res.err.Error()
		}
		rec.Record(sp)
		if res.err != nil {
			// Worker loss: the runner goes to probation (or retirement) and
			// the shard is re-queued.
			attempts[res.shard]++
			c.countRetry(label)
			c.logf("shard %s failed on %s (attempt %d/%d): %v",
				w.Selector, label, attempts[res.shard], maxAttempts, res.err)
			c.log().Warn("shard failed; worker leaving service",
				"trace_id", rec.TraceID(), "span_id", sp.SpanID,
				"shard", w.Selector, "worker", label,
				"attempt", attempts[res.shard], "error", res.err.Error())
			c.handleFailure(res.member, health, rec, probeCtx, &probeWG)
			if attempts[res.shard] >= maxAttempts {
				return fmt.Errorf("shard %s failed %d times, last on %s: %w",
					w.Selector, attempts[res.shard], label, res.err)
			}
			c.countShard("requeued")
			pending = append(pending, res.shard)
			continue
		}
		mergeStart := now()
		n, dup, err := c.mergeShard(res.shard, res.dir)
		mergeAttrs := map[string]string{
			"node": "coordinator", "shard": w.Selector,
			"entries": strconv.Itoa(n), "dup": strconv.FormatBool(dup),
		}
		if err != nil {
			mergeAttrs["error"] = err.Error()
		}
		rec.Record(trace.Span{
			TraceID: rec.TraceID(), SpanID: rec.NewSpanID(), ParentID: sp.SpanID,
			Name: "merge " + w.Selector, Start: mergeStart, End: now(), Attrs: mergeAttrs,
		})
		if err != nil {
			return fmt.Errorf("merging shard %s: %w", w.Selector, err)
		}
		c.log().Info("shard merged",
			"trace_id", rec.TraceID(), "span_id", sp.SpanID,
			"shard", w.Selector, "worker", label,
			"entries", n, "dup", dup)
		if res.dir != "" {
			// The staging dir's entries now live in the destination (or, on
			// a duplicate completion, already did); drop the copies so they
			// never pollute cache-dir scans or later merges.
			_ = os.RemoveAll(res.dir)
		}
		c.countShard("completed")
		switch {
		case dup:
			c.logf("shard %s completed again on %s; merge skipped (already landed)",
				w.Selector, label)
		case res.dir != "":
			c.countMergedEntries(n)
			c.logf("shard %s done on %s: merged %d entries", w.Selector, label, n)
		default:
			c.logf("shard %s done on %s", w.Selector, label)
		}
		c.releaseMember(res.member)
	}
}

// mergeShard lands one completed shard's staged entries into the
// destination cache directory, exactly once per shard index: a duplicate
// completion (a shard retried after a lost acknowledgement, say) reports
// dup=true and merges nothing. dir "" means the runner computed straight
// into the destination store (LocalRunner) and there is nothing to copy —
// the shard is still marked, so a duplicate stays detectable.
func (c *Coordinator) mergeShard(shard int, dir string) (entries int, dup bool, err error) {
	c.mu.Lock()
	if c.merged == nil {
		c.merged = make(map[int]bool)
	}
	if c.merged[shard] {
		c.mu.Unlock()
		return 0, true, nil
	}
	c.merged[shard] = true
	c.mu.Unlock()
	if dir == "" {
		return 0, false, nil
	}
	if c.Store == nil || c.Store.Dir() == "" {
		return 0, false, fmt.Errorf("staged shard entries need a disk-backed destination cache (-cache-dir)")
	}
	entries, err = cache.MergeDirs(c.Store.Dir(), dir)
	return entries, false, err
}

package dispatch

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"github.com/embodiedai/create/internal/obs/trace"
)

//create:walltime-ok probe backoff sleeps and health-check deadlines are failure-path operational timing; figure bytes come from the deterministic replay

// HealthChecker is implemented by runners that can be probed for recovery
// after a shard failure. A runner without it (LocalRunner: an in-process
// panic does not heal) is retired on first failure, exactly as before
// probation existed.
type HealthChecker interface {
	// CheckHealth reports whether the worker is serving again. It must be
	// cheap and side-effect free — the coordinator calls it repeatedly
	// while the worker is in probation.
	CheckHealth(ctx context.Context) error
}

// HealthConfig governs probation: what happens to a runner after it fails
// a shard. Instead of being retired outright, a probeable runner enters
// probation and is health-checked with capped exponential backoff; enough
// consecutive successes readmit it to the pool, exhausting the probe
// budget retires it for good. The zero value enables probation with the
// defaults below.
type HealthConfig struct {
	// Disabled reverts to the legacy policy: any shard failure retires the
	// runner immediately, no probes.
	Disabled bool
	// MaxProbes bounds the total health checks spent on one probation
	// episode (default 6).
	MaxProbes int
	// Successes is how many consecutive healthy probes readmit the worker
	// (default 2) — one lucky response must not resurrect a flapping box.
	Successes int
	// BaseDelay seeds the exponential backoff between probes (default
	// 250ms); MaxDelay caps it (default 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// ProbeTimeout bounds each individual health check (default 2s).
	ProbeTimeout time.Duration
	// Seed varies the deterministic probe jitter between coordinator
	// processes; a fixed seed reproduces the exact probe schedule.
	Seed int64
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.MaxProbes <= 0 {
		h.MaxProbes = 6
	}
	if h.Successes <= 0 {
		h.Successes = 2
	}
	if h.BaseDelay <= 0 {
		h.BaseDelay = 250 * time.Millisecond
	}
	if h.MaxDelay <= 0 {
		h.MaxDelay = 5 * time.Second
	}
	if h.ProbeTimeout <= 0 {
		h.ProbeTimeout = 2 * time.Second
	}
	return h
}

// memberState is one pool member's scheduling eligibility.
type memberState int

const (
	memberIdle memberState = iota
	memberBusy
	memberProbation
	memberRetired
	memberDrained
)

func (s memberState) String() string {
	switch s {
	case memberIdle:
		return "idle"
	case memberBusy:
		return "busy"
	case memberProbation:
		return "probation"
	case memberRetired:
		return "retired"
	case memberDrained:
		return "drained"
	}
	return "unknown"
}

// member is one runner's slot in the live pool. All fields are guarded by
// Coordinator.poolMu (never c.mu: metric helpers lock c.mu, and they are
// called while pool decisions are in flight).
type member struct {
	runner Runner
	state  memberState
	// drain marks a worker asked to leave: it finishes its in-flight
	// shard (or probation episode) and is then excluded from dispatch.
	drain bool
}

// WorkerInfo is one pool member as reported by Workers() and the
// /v1/workers admin endpoint.
type WorkerInfo struct {
	Label    string `json:"label"`
	State    string `json:"state"`
	Draining bool   `json:"draining,omitempty"`
}

// startPool snapshots c.Runners into the live member pool for one Execute.
func (c *Coordinator) startPool() error {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	if c.poolOn {
		return fmt.Errorf("coordinator is already executing a plan")
	}
	c.pool = make([]*member, 0, len(c.Runners))
	for _, r := range c.Runners {
		c.pool = append(c.pool, &member{runner: r, state: memberIdle})
	}
	if c.wake == nil {
		c.wake = make(chan struct{}, 1)
	}
	c.poolOn = true
	return nil
}

func (c *Coordinator) stopPool() {
	c.poolMu.Lock()
	c.poolOn = false
	c.poolMu.Unlock()
}

// wakePool nudges Execute's scheduling loop after a membership change
// (readmit, join, drain). Capacity-1 nonblocking send: coalesced signals
// are fine, the loop re-examines the whole pool on every wake.
func (c *Coordinator) wakePool() {
	c.poolMu.Lock()
	ch := c.wake
	c.poolMu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// claimIdle marks the first idle, non-draining member busy and returns it.
// Scanning in pool order keeps the dispatch order of the pre-pool
// scheduler (runner i gets shard i of the heaviest-first queue).
func (c *Coordinator) claimIdle() (*member, bool) {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	for _, m := range c.pool {
		if m.state == memberIdle && !m.drain {
			m.state = memberBusy
			return m, true
		}
	}
	return nil, false
}

// releaseMember returns a busy member to the idle set after a successful
// shard — or completes its drain, if one was requested mid-shard.
func (c *Coordinator) releaseMember(m *member) {
	c.poolMu.Lock()
	drained := m.drain
	if drained {
		m.state = memberDrained
	} else {
		m.state = memberIdle
	}
	label := m.runner.Label()
	c.poolMu.Unlock()
	if drained {
		c.healthyWorkers().Add(-1)
		c.countDrained(label)
		c.logf("worker %s drained: in-flight shard finished, leaving the pool", label)
	}
	c.wakePool()
}

// poolHope reports how many members could still take work: idle now, or
// in probation (might be readmitted). When both are zero with shards
// pending and nothing in flight, the run is unrecoverable.
func (c *Coordinator) poolHope() (idle, probation int) {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	for _, m := range c.pool {
		switch m.state {
		case memberIdle:
			if !m.drain {
				idle++
			}
		case memberProbation:
			probation++
		}
	}
	return idle, probation
}

// handleFailure decides a failed member's fate: probation with a probe
// goroutine when the runner is probeable and probation is enabled,
// immediate retirement otherwise (the legacy policy).
func (c *Coordinator) handleFailure(m *member, health HealthConfig, rec *trace.Recorder, probeCtx context.Context, probeWG *sync.WaitGroup) {
	hc, probeable := m.runner.(HealthChecker)
	label := m.runner.Label()
	c.poolMu.Lock()
	if health.Disabled || !probeable || m.drain {
		m.state = memberRetired
		c.poolMu.Unlock()
		c.healthyWorkers().Add(-1)
		c.countRetired()
		c.wakePool()
		return
	}
	m.state = memberProbation
	c.poolMu.Unlock()
	c.healthyWorkers().Add(-1)
	c.probationWorkers().Add(1)
	c.logf("worker %s entering probation: up to %d probes before retirement", label, health.MaxProbes)
	probeWG.Add(1)
	go c.probeMember(probeCtx, m, hc, health, rec, probeWG)
}

// probeMember is one probation episode: health-check the member with
// capped exponential backoff and deterministic jitter until Successes
// consecutive OKs readmit it, MaxProbes attempts retire it, or the run
// ends. One "probation <label>" span records the episode — clock reads
// here are failure-path only, so the happy path's fake-clock arithmetic
// is untouched.
func (c *Coordinator) probeMember(ctx context.Context, m *member, hc HealthChecker, health HealthConfig, rec *trace.Recorder, wg *sync.WaitGroup) {
	defer wg.Done()
	label := m.runner.Label()
	start := now()
	streak, probes, fails := 0, 0, 0
	readmitted := false
	var lastErr error
	for probes < health.MaxProbes {
		if !sleepCtx(ctx, probeBackoff(health.BaseDelay, health.MaxDelay, health.Seed, label, fails)) {
			break
		}
		probes++
		pctx, cancel := context.WithTimeout(ctx, health.ProbeTimeout)
		err := hc.CheckHealth(pctx)
		cancel()
		if err != nil {
			lastErr = err
			streak = 0
			fails++
			c.countProbe(label, "fail")
			continue
		}
		c.countProbe(label, "ok")
		streak++
		fails = 0
		if streak >= health.Successes {
			readmitted = true
			break
		}
	}

	c.poolMu.Lock()
	drained := m.drain
	switch {
	case drained:
		m.state = memberDrained
	case readmitted:
		m.state = memberIdle
	default:
		m.state = memberRetired
	}
	c.poolMu.Unlock()

	c.probationWorkers().Add(-1)
	outcome := "retired"
	switch {
	case drained:
		outcome = "drained"
		c.countDrained(label)
	case readmitted:
		outcome = "readmitted"
		c.healthyWorkers().Add(1)
		c.countReadmitted(label)
	default:
		c.countRetired()
	}
	attrs := map[string]string{
		"node": "coordinator", "worker": label,
		"probes": strconv.Itoa(probes), "outcome": outcome,
	}
	if lastErr != nil {
		attrs["error"] = lastErr.Error()
	}
	rec.Record(trace.Span{
		TraceID: rec.TraceID(), SpanID: rec.NewSpanID(), ParentID: c.rootSpanID(),
		Name: "probation " + label, Start: start, End: now(), Attrs: attrs,
	})
	if readmitted && !drained {
		c.logf("worker %s readmitted after %d probe(s)", label, probes)
		c.log().Info("worker readmitted from probation",
			"worker", label, "probes", probes)
	} else {
		c.logf("worker %s %s after %d probe(s)", label, outcome, probes)
		c.log().Warn("worker left probation without readmission",
			"worker", label, "outcome", outcome, "probes", probes)
	}
	c.wakePool()
}

// probeBackoff is the delay before the next probe given `fails`
// consecutive failures: base doubled per failure, capped at max, with
// deterministic jitter in [d/2, d) from an FNV-1a hash of (seed, key,
// fails) — reproducible given the config, and no global math/rand state.
func probeBackoff(base, max time.Duration, seed int64, key string, fails int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < fails && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", seed, key, fails)
	frac := time.Duration(h.Sum64() & 1023)
	return d/2 + d/2*frac/1024
}

// sleepCtx waits d unless ctx ends first, reporting whether the full
// delay elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ---------------------------------------------------------------------------
// Dynamic membership: workers join and leave a live pool.

// AddRunner adds a worker to the pool. During an Execute the new worker
// is immediately eligible for pending shards (late join); a worker whose
// label matches a retired or drained member rejoins in its place.
// Between runs it lands in Runners for the next Execute. A label already
// active in the pool is rejected.
func (c *Coordinator) AddRunner(r Runner) error {
	label := r.Label()
	c.poolMu.Lock()
	if c.poolOn {
		for _, m := range c.pool {
			if m.runner.Label() != label {
				continue
			}
			if m.state != memberRetired && m.state != memberDrained {
				c.poolMu.Unlock()
				return fmt.Errorf("worker %q is already in the pool", label)
			}
			// Rejoin: the replacement runner takes over the dead member's
			// slot (kill-then-revive, or an operator re-adding a drained
			// box).
			m.runner = r
			m.state = memberIdle
			m.drain = false
			c.replaceRunnerLocked(label, r)
			c.poolMu.Unlock()
			c.healthyWorkers().Add(1)
			c.countJoined(label)
			c.wakePool()
			return nil
		}
		c.pool = append(c.pool, &member{runner: r, state: memberIdle})
		c.replaceRunnerLocked(label, r)
		c.poolMu.Unlock()
		c.healthyWorkers().Add(1)
		c.countJoined(label)
		c.wakePool()
		return nil
	}
	for _, ex := range c.Runners {
		if ex.Label() == label {
			c.poolMu.Unlock()
			return fmt.Errorf("worker %q is already in the pool", label)
		}
	}
	c.Runners = append(c.Runners, r)
	c.poolMu.Unlock()
	c.countJoined(label)
	return nil
}

// replaceRunnerLocked keeps c.Runners mirroring the pool across joins:
// same-label entries are replaced, new labels appended. Caller holds
// poolMu.
func (c *Coordinator) replaceRunnerLocked(label string, r Runner) {
	for i, ex := range c.Runners {
		if ex.Label() == label {
			c.Runners[i] = r
			return
		}
	}
	c.Runners = append(c.Runners, r)
}

// DrainRunner asks the labeled worker to leave the pool. An idle worker
// leaves immediately; a busy one finishes its in-flight shard first (its
// staged results still merge); one in probation leaves when the episode
// settles. The worker is removed from Runners either way, so the next
// Execute excludes it.
func (c *Coordinator) DrainRunner(label string) error {
	c.poolMu.Lock()
	removed := false
	for i, r := range c.Runners {
		if r.Label() == label {
			c.Runners = append(c.Runners[:i], c.Runners[i+1:]...)
			removed = true
			break
		}
	}
	if !c.poolOn {
		c.poolMu.Unlock()
		if !removed {
			return fmt.Errorf("no worker %q in the pool", label)
		}
		c.countDrained(label)
		return nil
	}
	for _, m := range c.pool {
		if m.runner.Label() != label {
			continue
		}
		switch m.state {
		case memberIdle:
			m.state = memberDrained
			c.poolMu.Unlock()
			c.healthyWorkers().Add(-1)
			c.countDrained(label)
			c.wakePool()
			return nil
		case memberBusy, memberProbation:
			m.drain = true
			c.poolMu.Unlock()
			c.logf("worker %s draining: will leave after its in-flight work", label)
			return nil
		default: // already retired or drained
			c.poolMu.Unlock()
			return nil
		}
	}
	c.poolMu.Unlock()
	if !removed {
		return fmt.Errorf("no worker %q in the pool", label)
	}
	return nil
}

// Workers reports every pool member and its state — the live pool during
// an Execute, the configured Runners between runs.
func (c *Coordinator) Workers() []WorkerInfo {
	c.poolMu.Lock()
	defer c.poolMu.Unlock()
	if c.poolOn {
		out := make([]WorkerInfo, 0, len(c.pool))
		for _, m := range c.pool {
			out = append(out, WorkerInfo{Label: m.runner.Label(), State: m.state.String(), Draining: m.drain})
		}
		return out
	}
	out := make([]WorkerInfo, 0, len(c.Runners))
	for _, r := range c.Runners {
		out = append(out, WorkerInfo{Label: r.Label(), State: memberIdle.String()})
	}
	return out
}

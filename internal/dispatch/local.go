package dispatch

import (
	"fmt"
	"io"
	"strings"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/registry"
)

// Local is the single-node evaluation session cmd/create-bench delegates
// to: the sharded cache open, the shard-directory merge, and the render
// loop all live here, so the CLI carries no shard or merge logic of its
// own — the flags are parsed there, the semantics are decided here, and
// the same semantics back the distributed Coordinator.
type Local struct {
	Env   *experiments.Env
	Store *cache.Store
	// Shard/NumShards are the parsed -shard selection (0/0 = unsharded).
	Shard, NumShards int
}

// OpenLocal parses the -shard selector, opens (or creates) the cache
// behind cacheDir, and wires a fresh environment over it. Sharded
// sessions require a disk-backed cache: a shard's stdout is partial
// scaffolding, so without persistence its computed points would die with
// the process.
func OpenLocal(shardSel, cacheDir string) (*Local, error) {
	shard, numShards, store, err := experiments.OpenShardedCache(shardSel, cacheDir)
	if err != nil {
		return nil, err
	}
	env := experiments.NewEnv()
	env.Cache = store
	return &Local{Env: env, Store: store, Shard: shard, NumShards: numShards}, nil
}

// MergeShardDirs unions shard cache directories into this session's cache
// directory (create-bench -merge), returning how many entries were
// copied. Content addressing makes the union the complete merge; a
// subsequent Run replays the merged points byte-identically to an
// unsharded run.
func (l *Local) MergeShardDirs(dirs ...string) (int, error) {
	if l.Store.Dir() == "" {
		return 0, fmt.Errorf("merging shard caches requires a cache directory as the destination")
	}
	return cache.MergeDirs(l.Store.Dir(), dirs...)
}

// LimitDisk arms the LRU disk cap at maxMB mebibytes (0 leaves the cache
// unbounded). Call after MergeShardDirs: the cap scans the directory, so
// merged-in entries are indexed and enforced over too.
func (l *Local) LimitDisk(maxMB int) error {
	if maxMB <= 0 {
		return nil
	}
	return l.Store.SetMaxBytes(int64(maxMB) << 20)
}

// Options assembles the session's evaluation options: the caller's scale
// plus this session's shard selection.
func (l *Local) Options(trials int, seed int64, workers int) experiments.Options {
	return experiments.Options{
		Trials: trials, Seed: seed, Workers: workers,
		Shard: l.Shard, NumShards: l.NumShards,
	}
}

// Selection resolves an -exp argument against the registry: "all" is every
// experiment in canonical order; anything else must be a registered name.
func Selection(exp string) ([]registry.Descriptor, error) {
	if exp == "all" {
		return registry.All(), nil
	}
	d, ok := registry.Lookup(exp)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (registered: %s, all)",
			exp, strings.Join(registry.Names(), ", "))
	}
	return []registry.Descriptor{d}, nil
}

// Run renders the selection against this session's environment — the
// single-node path create-bench prints, and the replay path the
// Coordinator reuses after its merge.
func (l *Local) Run(w io.Writer, sel []registry.Descriptor, opt experiments.Options, banner bool) {
	Render(w, l.Env, sel, opt, banner)
}

// RenderPlans prints the -plan view for the selection against this
// session's cache.
func (l *Local) RenderPlans(w io.Writer, sel []registry.Descriptor, opt experiments.Options) {
	RenderPlans(w, l.Env, opt, sel)
}

// Package scope classifies this module's packages for the determinism
// analyzers. The split mirrors the architecture: a deterministic core whose
// outputs are published figure bytes (episode engine, world, kernels,
// energy model, experiments), and a service tier (cache, serving daemon,
// dispatch coordinator, CLIs) that may read the wall clock because its job
// is operational, not reproducible.
package scope

import "strings"

// Module is this repository's module path.
const Module = "github.com/embodiedai/create"

// serviceTier lists the exact internal packages allowed to interact with
// wall-clock time when annotated. Everything else under the module —
// including the root package and every other internal package — is
// deterministic core.
var serviceTier = map[string]bool{
	Module + "/internal/cache":     true,
	Module + "/internal/service":   true,
	Module + "/internal/dispatch":  true,
	Module + "/internal/obs":       true,
	Module + "/internal/obs/trace": true,
}

// ServiceTier reports whether pkgPath belongs to the operational service
// tier: the listed internal packages, every command under cmd/, and the
// runnable examples. Test-variant suffixes must already be stripped
// (analysis.Pass.PkgPath does this).
func ServiceTier(pkgPath string) bool {
	if serviceTier[pkgPath] {
		return true
	}
	return strings.HasPrefix(pkgPath, Module+"/cmd/") ||
		strings.HasPrefix(pkgPath, Module+"/examples/") ||
		strings.HasPrefix(pkgPath, Module+"/internal/analysis")
}

// EpisodeHotPath reports whether pkgPath is part of the episode hot path,
// where every RNG draw site is load-bearing for the published byte streams
// (PERFORMANCE.md: "RNG stream consumption") and therefore must carry a
// review annotation.
func EpisodeHotPath(pkgPath string) bool {
	return pkgPath == Module+"/internal/agent" || pkgPath == Module+"/internal/world"
}

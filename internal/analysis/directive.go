package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// A Verb names one //create: directive.
//
// The grammar is deliberately rigid — one directive per line comment, the
// verb glued to the prefix, a justification where the table below demands
// one:
//
//	//create:zeroalloc
//	//create:rng-reviewed <justification>
//	//create:walltime-ok <justification>
//	//create:maprange-ok <justification>
//	//create:alloc-ok <justification>
//
// Anything close-but-wrong (unknown verb, missing justification, a spaced
// "// create:", a /* block */ form) is a parse error, and a parse error
// never suppresses a finding: the malformed text is itself reported by the
// directive analyzer, so a typo fails the lint run loudly instead of
// silently disabling a check.
type Verb string

// The directive vocabulary.
const (
	// VerbZeroAlloc marks a function as part of the steady-state
	// zero-allocation contract; the hotalloc analyzer then rejects
	// allocation-introducing constructs in its body.
	VerbZeroAlloc Verb = "zeroalloc"
	// VerbRNGReviewed acknowledges one RNG draw site in an episode
	// hot-path package: the justification records why this draw's position
	// in the stream is intended (rngdiscipline).
	VerbRNGReviewed Verb = "rng-reviewed"
	// VerbWalltimeOK marks one service-tier file as allowed to read the
	// wall clock (walltime). File-level: it must precede all declarations.
	VerbWalltimeOK Verb = "walltime-ok"
	// VerbMapRangeOK suppresses one maprange finding after a human has
	// argued the iteration is order-insensitive.
	VerbMapRangeOK Verb = "maprange-ok"
	// VerbAllocOK suppresses one hotalloc finding, typically for an
	// amortized append whose backing array survives in worker scratch.
	VerbAllocOK Verb = "alloc-ok"
)

// verbSpec describes one verb's argument contract.
type verbSpec struct {
	needsArg bool
}

var verbs = map[Verb]verbSpec{
	VerbZeroAlloc:   {needsArg: false},
	VerbRNGReviewed: {needsArg: true},
	VerbWalltimeOK:  {needsArg: true},
	VerbMapRangeOK:  {needsArg: true},
	VerbAllocOK:     {needsArg: true},
}

// Prefix is the exact byte sequence opening every directive.
const Prefix = "//create:"

// A Directive is one well-formed //create: comment.
type Directive struct {
	Pos  token.Pos
	Verb Verb
	// Arg is the justification text (empty exactly for zeroalloc).
	Arg string
}

// A ParseError is one malformed would-be directive.
type ParseError struct {
	Pos token.Pos
	Msg string
}

// nearMiss matches comments that were clearly meant to be directives but
// do not use the exact canonical prefix (stray space, wrong case).
var nearMiss = regexp.MustCompile(`^(//|/\*)[ \t]*(?i:create):`)

// ParseComment classifies one comment's text. It returns (nil, nil) for
// ordinary comments, a Directive for well-formed ones, and a ParseError
// (with a zero Pos, filled in by the caller) for malformed ones.
func ParseComment(text string) (*Directive, *ParseError) {
	if !strings.HasPrefix(text, Prefix) {
		if nearMiss.MatchString(text) {
			return nil, &ParseError{Msg: fmt.Sprintf("malformed create directive %q: directives are spelled exactly %q with no space and in a // line comment", firstLine(text), Prefix+"<verb>")}
		}
		return nil, nil
	}
	rest := strings.TrimPrefix(text, Prefix)
	verb := rest
	arg := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, arg = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if verb == "" {
		return nil, &ParseError{Msg: fmt.Sprintf("malformed create directive %q: missing verb", firstLine(text))}
	}
	spec, known := verbs[Verb(verb)]
	if !known {
		return nil, &ParseError{Msg: fmt.Sprintf("unknown create directive verb %q (known: %s)", verb, knownVerbs())}
	}
	if spec.needsArg && arg == "" {
		return nil, &ParseError{Msg: fmt.Sprintf("create directive %q requires a justification: %s<%s> <why this is safe>", verb, Prefix, verb)}
	}
	if !spec.needsArg && arg != "" {
		return nil, &ParseError{Msg: fmt.Sprintf("create directive %q takes no argument (got %q)", verb, arg)}
	}
	return &Directive{Verb: Verb(verb), Arg: arg}, nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + "..."
	}
	return s
}

func knownVerbs() string {
	return strings.Join([]string{
		string(VerbZeroAlloc), string(VerbRNGReviewed), string(VerbWalltimeOK),
		string(VerbMapRangeOK), string(VerbAllocOK),
	}, ", ")
}

// An Index holds every directive of one package, addressable by line, by
// file, and by function.
type Index struct {
	fset  *token.FileSet
	files []*ast.File
	// byLine maps filename -> line -> the directives ending on that line.
	byLine map[string]map[int][]*Directive
	// perFile keeps each file's directives and its first-declaration
	// boundary for file-level placement checks.
	perFile map[*ast.File]*fileDirectives

	// Errors are the malformed directives, in file order.
	Errors []ParseError
}

type fileDirectives struct {
	directives []*Directive
	// headerEnd is the position before which a file-level directive must
	// appear: the start of the first non-import declaration (or file end).
	headerEnd token.Pos
}

// NewIndex parses every comment of every file. Files must have been parsed
// with parser.ParseComments.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{
		fset:    fset,
		files:   files,
		byLine:  make(map[string]map[int][]*Directive),
		perFile: make(map[*ast.File]*fileDirectives),
	}
	for _, f := range files {
		fd := &fileDirectives{headerEnd: f.End()}
		for _, decl := range f.Decls {
			if g, ok := decl.(*ast.GenDecl); ok && g.Tok == token.IMPORT {
				continue
			}
			fd.headerEnd = decl.Pos()
			break
		}
		ix.perFile[f] = fd
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, perr := ParseComment(c.Text)
				if perr != nil {
					perr.Pos = c.Pos()
					ix.Errors = append(ix.Errors, *perr)
					continue
				}
				if d == nil {
					continue
				}
				d.Pos = c.Pos()
				fd.directives = append(fd.directives, d)
				posn := fset.Position(c.Pos())
				lines := ix.byLine[posn.Filename]
				if lines == nil {
					lines = make(map[int][]*Directive)
					ix.byLine[posn.Filename] = lines
				}
				// Anchor the directive on its end line: a multi-line
				// comment group's last line is what sits adjacent to code.
				end := fset.Position(c.End()).Line
				lines[end] = append(lines[end], d)
			}
		}
	}
	return ix
}

// At returns a directive with the given verb on the same line as pos or on
// the line immediately above it — the two placements that count as
// annotating a statement.
func (ix *Index) At(pos token.Pos, verb Verb) *Directive {
	posn := ix.fset.Position(pos)
	lines := ix.byLine[posn.Filename]
	for _, line := range [2]int{posn.Line, posn.Line - 1} {
		for _, d := range lines[line] {
			if d.Verb == verb {
				return d
			}
		}
	}
	return nil
}

// File returns a file-level directive with the given verb: one placed in
// the file's header, before any non-import declaration.
func (ix *Index) File(f *ast.File, verb Verb) *Directive {
	fd := ix.perFile[f]
	if fd == nil {
		return nil
	}
	for _, d := range fd.directives {
		if d.Verb == verb && d.Pos < fd.headerEnd {
			return d
		}
	}
	return nil
}

// ForFunc returns a directive with the given verb attached to fn: inside
// its doc comment group, or on the line immediately above its declaration.
func (ix *Index) ForFunc(fn *ast.FuncDecl, verb Verb) *Directive {
	if fn.Doc != nil {
		for _, d := range ix.fileDirectivesAt(fn.Doc.Pos()) {
			if d.Verb == verb && fn.Doc.Pos() <= d.Pos && d.Pos <= fn.Doc.End() {
				return d
			}
		}
	}
	return ix.At(fn.Pos(), verb)
}

// fileDirectivesAt returns all directives in the file containing pos.
func (ix *Index) fileDirectivesAt(pos token.Pos) []*Directive {
	for _, f := range ix.files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return ix.perFile[f].directives
		}
	}
	return nil
}

// All returns every well-formed directive of file f, in source order.
func (ix *Index) All(f *ast.File) []*Directive {
	fd := ix.perFile[f]
	if fd == nil {
		return nil
	}
	return fd.directives
}

// HeaderEnd exposes the file-level placement boundary of f for the
// directive analyzer's placement validation.
func (ix *Index) HeaderEnd(f *ast.File) token.Pos {
	fd := ix.perFile[f]
	if fd == nil {
		return token.NoPos
	}
	return fd.headerEnd
}

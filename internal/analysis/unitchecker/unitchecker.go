// Package unitchecker makes an analyzer suite callable by the go vet
// driver, one compilation unit at a time.
//
// `go vet -vettool=<tool>` speaks a small protocol to the tool:
//
//  1. `<tool> -V=full` must print a version line whose content changes
//     whenever the tool binary changes (vet keys its result cache on it);
//  2. `<tool> -flags` must print a JSON description of the tool's flags so
//     vet knows which of the user's command-line flags to forward;
//  3. per package, `<tool> <dir>/vet.cfg` runs the analysis: vet.cfg is a
//     JSON file naming the unit's Go sources, its import map, and the
//     export-data files of every dependency (already compiled — vet
//     guarantees dependency order), plus the .vetx facts file the tool must
//     write for units that import this one.
//
// The usual implementation of the tool side lives in
// golang.org/x/tools/go/analysis/unitchecker; this package is a
// self-contained stdlib-only reimplementation of the subset the create
// suite needs, because the build environment vendors nothing and fetches
// nothing. Facts are not implemented: every create analyzer is local to one
// package, so the .vetx files written here are empty placeholders.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"regexp"
	"runtime"
	"strings"

	"github.com/embodiedai/create/internal/analysis"
)

// Config is the JSON schema of a vet.cfg file, as written by the go
// command (see cmd/go/internal/work.vetConfig).
type Config struct {
	ID                        string // e.g. "fmt [fmt.test]"
	Compiler                  string // gc or gccgo; affects export-data format
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string // import path as written -> canonical path
	PackageFile               map[string]string // canonical path -> export-data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // canonical path -> dependency .vetx (unused: no facts)
	VetxOnly                  bool              // facts only, no diagnostics wanted
	VetxOutput                string            // where to write this unit's facts
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool built around an analyzer suite.
// It dispatches on the protocol argument and does not return.
func Main(analyzers ...*analysis.Analyzer) {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
		os.Exit(0)
	case len(args) == 2 && args[0] == "-V" && args[1] == "full":
		printVersion()
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		// No tool flags: analyzers are always-on and unconfigurable.
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		run(args[0], analyzers)
		os.Exit(0)
	}
	fmt.Fprintf(os.Stderr, "usage: %s <unit>.cfg\t(invoked by go vet -vettool)\n", os.Args[0])
	os.Exit(1)
}

// printVersion emits the cache-busting version line. The shape replicates
// cmd/internal/objabi.AddVersionFlag's devel form, which is what the vet
// driver parses; the buildID is a content hash so rebuilding the tool
// invalidates vet's cache.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
}

func run(cfgFile string, analyzers []*analysis.Analyzer) {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fatalf("%v", err)
	}

	// A unit's facts file must exist for vet's bookkeeping even though the
	// create suite exports none.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fatalf("writing vetx: %v", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	diags, err := analyze(fset, cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The go command will report the type error itself.
			writeVetx()
			return
		}
		fatalf("%v", err)
	}
	writeVetx()
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		}
		os.Exit(2)
	}
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", path, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("%s: no Go files", path)
	}
	return cfg, nil
}

// goMajorMinor trims a toolchain version like go1.24.5 to the go1.24 form
// go/types accepts as a language version.
var goMajorMinor = regexp.MustCompile(`^go\d+\.\d+`)

func analyze(fset *token.FileSet, cfg *Config, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	// Dependencies arrive as compiler export data; resolve source import
	// paths through the vendor/ImportMap indirection first, then read the
	// named export-data file.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		canonical, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if canonical == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(canonical)
	})

	tc := &types.Config{
		Importer:  imp,
		GoVersion: goMajorMinor.FindString(cfg.GoVersion),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return analysis.Run(analyzers, fset, files, pkg, info)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "create-lint: "+format+"\n", args...)
	os.Exit(1)
}

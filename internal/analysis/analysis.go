// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// typechecked package through a Pass and reports Diagnostics. It exists
// because this repository's determinism rules (PERFORMANCE.md) deserve
// compile-time enforcement, and the build environment bakes in only the
// standard library — go/ast, go/types and go/importer are enough to drive
// the same `go vet -vettool` protocol the x/tools unitchecker speaks.
//
// The deliberate differences from x/tools are scope, not shape: there is no
// cross-package fact propagation (none of the CREATE invariants need it),
// analyzers cannot depend on each other, and suppression runs through the
// strict `//create:` directive grammar in this package instead of
// free-form //lint: comments. Analyzer and Pass keep the upstream field
// names so the suite could migrate to x/tools mechanically if the toolchain
// ever ships it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer statically checks one invariant over one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, JSON output and the
	// enable/disable command-line flags. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank line,
	// then detail. The first line shows up in `create-lint` usage output.
	Doc string

	// Run performs the check. It reports findings through pass.Reportf and
	// returns an error only for internal failures (which abort the whole
	// run), never for findings.
	Run func(*Pass) error
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Pass hands one analyzer everything it may inspect about one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Directives indexes every well-formed //create: directive in the
	// package, shared by all analyzers of one run. Malformed directives are
	// in Directives.Errors and never suppress anything — the directive
	// analyzer turns them into findings.
	Directives *Index

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Several analyzers
// relax their rules there: tests legitimately poll deadlines and construct
// throwaway RNGs, and their outputs are assertions, not published bytes.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// PkgPath returns the package-under-analysis import path with any go-test
// variant decoration stripped: "pkg_test" external test packages and
// "pkg [pkg.test]" compilation IDs classify like "pkg" itself.
func (p *Pass) PkgPath() string {
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return strings.TrimSuffix(path, "_test")
}

// CalleePkgFunc resolves a call of the form pkgname.F(...) to the imported
// package's path and the function name. ok is false for method calls,
// locally defined functions, and calls through variables.
func (p *Pass) CalleePkgFunc(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := p.TypesInfo.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// CalleeMethod resolves a method call x.M(...) to the defining type's
// package path, type name, and method name. ok is false for anything that
// is not a method value call on a named (possibly pointed-to) receiver.
func (p *Pass) CalleeMethod(call *ast.CallExpr) (pkgPath, typeName, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", "", false
	}
	s := p.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", "", "", false
	}
	recv := s.Recv()
	if ptr, okPtr := recv.(*types.Pointer); okPtr {
		recv = ptr.Elem()
	}
	named, okNamed := recv.(*types.Named)
	if !okNamed || named.Obj().Pkg() == nil {
		return "", "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name, true
}

// Run executes the analyzers over one typechecked package and returns their
// findings sorted by position. The directive index is built once and shared.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	index := NewIndex(fset, files)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			Directives: index,
			report:     func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

package rngdiscipline_test

import (
	"testing"

	"github.com/embodiedai/create/internal/analysis/analysistest"
	"github.com/embodiedai/create/internal/analysis/passes/rngdiscipline"
)

func TestRNGDiscipline(t *testing.T) {
	orig := rngdiscipline.IsHotPath
	rngdiscipline.IsHotPath = func(path string) bool { return path == "hot" }
	defer func() { rngdiscipline.IsHotPath = orig }()
	analysistest.Run(t, "testdata", rngdiscipline.Analyzer, "hot", "cold")
}

// Package cold stands in for a package off the episode hot path: seeded
// streams draw freely, but the global source stays banned.
package cold

import "math/rand"

func ok(rng *rand.Rand) int {
	return rng.Intn(10) // off the hot path: no annotation needed
}

func bad() {
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand`
	rand.Seed(1)                       // want `global math/rand`
}

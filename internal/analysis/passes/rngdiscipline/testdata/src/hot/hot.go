// Package hot stands in for an episode hot-path package: every *rand.Rand
// draw site must be reviewed, and the global source is banned like
// everywhere else.
package hot

import "math/rand"

func draws(rng *rand.Rand) float64 {
	bad := rng.Float64() // want `unreviewed RNG draw \(\*rand\.Rand\)\.Float64`
	//create:rng-reviewed predictor noise draw; its stream position anchors the traced dataset
	good := rng.NormFloat64()
	reseed(rng)
	return bad + good
}

func reseed(rng *rand.Rand) {
	rng.Seed(2026) // want `unreviewed RNG draw \(\*rand\.Rand\)\.Seed`
}

func sameLine(rng *rand.Rand) int {
	return rng.Intn(10) //create:rng-reviewed corrupt-action resample, consumes one draw after the gate
}

func global() float64 {
	return rand.Float64() // want `global math/rand`
}

func seeded() *rand.Rand {
	// Constructors build explicit streams; only draws need review.
	return rand.New(rand.NewSource(7))
}

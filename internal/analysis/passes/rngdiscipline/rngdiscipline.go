// Package rngdiscipline enforces the repository's RNG stream rules.
//
// Two invariants from PERFORMANCE.md ("RNG stream consumption"):
//
//  1. The process-global math/rand source is banned everywhere. Its draws
//     are unseeded (or globally seeded behind the program's back), so any
//     call like rand.Float64() makes output depend on process history.
//     Deterministic code constructs rand.New(rand.NewSource(seed)).
//
//  2. In the episode hot-path packages (internal/agent, internal/world)
//     every method call on a *rand.Rand is part of the published byte
//     stream: adding, removing or reordering one draw shifts every
//     subsequent draw and silently changes figure bytes (the Fig. 10/14
//     trace incident class). Each draw site must therefore carry
//
//     //create:rng-reviewed <why this draw sits exactly here in the stream>
//
//     on its line or the line above, making stream changes visible in
//     review diffs instead of only in golden-hash failures minutes later.
package rngdiscipline

import (
	"go/ast"

	"github.com/embodiedai/create/internal/analysis"
	"github.com/embodiedai/create/internal/analysis/scope"
)

// IsHotPath classifies the package under analysis; a variable so the
// analysistest suite can substitute testdata package names.
var IsHotPath = scope.EpisodeHotPath

// globalBanned lists math/rand package-level functions that draw from (or
// mutate) the shared global source. Constructors are exempt: rand.New,
// rand.NewSource and rand.NewZipf build explicitly seeded streams.
var globalBanned = map[string]bool{
	"Float64": true, "Float32": true, "NormFloat64": true, "ExpFloat64": true,
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// randPkgs are the import paths whose global sources are banned.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Analyzer is the rngdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "rngdiscipline",
	Doc: "enforce seeded RNG streams and reviewed hot-path draw sites\n\n" +
		"global math/rand functions are banned everywhere; *rand.Rand method\n" +
		"calls in episode hot-path packages need //create:rng-reviewed.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	hot := IsHotPath(pass.PkgPath())
	for _, f := range pass.Files {
		test := pass.InTestFile(f.Pos())
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, name, ok := pass.CalleePkgFunc(call); ok && randPkgs[pkgPath] && globalBanned[name] {
				// Banned even in tests: an unseeded test is a flaky test.
				pass.Reportf(call.Pos(), "global math/rand call rand.%s draws from the unseeded process-global source: construct rand.New(rand.NewSource(seed)) so the stream is reproducible", name)
				return true
			}
			if !hot || test {
				return true
			}
			pkgPath, typeName, method, ok := pass.CalleeMethod(call)
			if !ok || !randPkgs[pkgPath] || typeName != "Rand" {
				return true
			}
			if pass.Directives.At(call.Pos(), analysis.VerbRNGReviewed) == nil {
				pass.Reportf(call.Pos(), "unreviewed RNG draw (*rand.Rand).%s in episode hot-path package %s: annotate the call with //create:rng-reviewed <why> — adding, removing or reordering a draw shifts the stream and changes published figure bytes (PERFORMANCE.md)", method, pass.PkgPath())
			}
			return true
		})
	}
	return nil
}

package maprange_test

import (
	"testing"

	"github.com/embodiedai/create/internal/analysis/analysistest"
	"github.com/embodiedai/create/internal/analysis/passes/maprange"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata", maprange.Analyzer, "a")
}

// Package a exercises the maprange analyzer: order-sensitive work inside
// map ranges is a finding, integer merges and the sorted-keys idiom are
// not, and one loop demonstrates annotated suppression.
package a

import (
	"fmt"
	"sort"
)

func sums(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `float accumulation in map iteration order`
	}
	var s2 float64
	for _, v := range m {
		s2 = s2 + v // want `float accumulation in map iteration order`
	}
	return s + s2
}

func sortedFix(m map[int]float64) float64 {
	// The canonical repair (power.sortedMV): collect keys, sort, then sum.
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // int keys: no finding
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += m[k] // slice range: order is deterministic
	}
	return s
}

func collect(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want `collecting floats in map iteration order`
	}
	return out
}

func intMerge(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v // integer merge commutes exactly: no finding
	}
	return n
}

func search(m map[int]int, want int) int {
	for k, v := range m {
		if v == want {
			return k // want `return of a value derived from map iteration`
		}
	}
	return -1
}

func exit(m map[int]int) bool {
	found := false
	for k := range m {
		if k > 10 {
			found = true
			break // want `break out of a map range`
		}
	}
	return found
}

func existence(m map[int]bool, k int) bool {
	for kk := range m {
		if kk == k {
			return true // constant result: which key triggered it cannot matter
		}
	}
	return false
}

func show(m map[int]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside a map range`
	}
}

func suppressed(m map[int]float64) float64 {
	var s float64
	//create:maprange-ok demonstration: this fixture argues order-insensitivity in review
	for _, v := range m {
		s += v
	}
	return s
}

func nestedInner(m map[int]int) int {
	n := 0
	for k := range m {
		for i := 0; i < k; i++ {
			if i == 3 {
				break // breaks the inner for, not the map range: no finding
			}
			n++
		}
	}
	return n
}

func nestedMap(m map[int]map[int]float64) float64 {
	var s float64
	for _, inner := range m {
		for _, v := range inner {
			s += v // want `float accumulation in map iteration order`
		}
	}
	return s
}

// Package maprange flags order-sensitive work inside `for … range map`.
//
// Go randomizes map iteration order per run. Integer merges over maps are
// fine (exact addition commutes), but the PERFORMANCE.md bit-identity rules
// forbid anything whose result depends on visit order in deterministic
// packages:
//
//   - float accumulation (float sums re-associate: the last ulp of
//     power.EffectiveVoltage-style metrics flips between runs — the
//     power.sortedMV bug class),
//   - collecting float values into a slice (defers the same re-association
//     to whoever consumes the slice),
//   - early exit via break, or a return whose value depends on the
//     iteration variables (which element wins is a coin flip),
//   - writing output inside the loop (line order is nondeterministic).
//
// The fix is almost always to sort the keys first (see power.sortedMV,
// world.inputOrder). A loop argued to be genuinely order-insensitive can be
// annotated on its `for` line (or the line above):
//
//	//create:maprange-ok <why order cannot matter here>
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/embodiedai/create/internal/analysis"
	"github.com/embodiedai/create/internal/analysis/scope"
)

// IsServiceTier classifies the package under analysis; a variable so the
// analysistest suite can substitute testdata package names. Service-tier
// packages are exempt: their maps hold operational state (job tables,
// cache indexes), not figure bytes.
var IsServiceTier = scope.ServiceTier

// Analyzer is the maprange pass.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag order-sensitive work inside for…range over a map\n\n" +
		"float accumulation, float collection, break/value-dependent return\n" +
		"and output writes depend on Go's randomized map iteration order;\n" +
		"sort the keys first or annotate with //create:maprange-ok.",
	Run: run,
}

// printers are fmt output calls whose emission order becomes output bytes.
var printers = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func run(pass *analysis.Pass) error {
	if IsServiceTier(pass.PkgPath()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Directives.At(rs.Pos(), analysis.VerbMapRangeOK) != nil {
				return true // the whole loop is argued order-insensitive
			}
			checkBody(pass, rs)
			return true // nested map ranges are checked independently
		})
	}
	return nil
}

// checkBody walks one map-range body looking for order-sensitive work.
func checkBody(pass *analysis.Pass, rs *ast.RangeStmt) {
	loopVars := rangeVarObjects(pass, rs)
	// breakDepth tracks how many breakable statements (for/range/switch/
	// select) are nested between the map range and the walker's position: a
	// break at depth 0 exits the map range itself.
	var walk func(n ast.Node, breakDepth int)
	walk = func(n ast.Node, breakDepth int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			// A closure's body runs on its own schedule; if it captures
			// the loop vars and misbehaves, the call site is the bug.
			return
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					// A nested map range is a checking root of its own
					// (run's Inspect visits it); don't double-report.
					return
				}
			}
			breakDepth++
		case *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			breakDepth++
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && n.Label == nil && breakDepth == 0 {
				pass.Reportf(n.Pos(), "break out of a map range: which key is visited before the exit is nondeterministic; iterate sorted keys or annotate the loop with //create:maprange-ok <why>")
			}
			return
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesAny(pass, res, loopVars) {
					pass.Reportf(n.Pos(), "return of a value derived from map iteration variables: which key wins is nondeterministic; iterate sorted keys or annotate the loop with //create:maprange-ok <why>")
					break
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, n)
		case *ast.IncDecStmt:
			if isFloat(pass.TypesInfo.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), "float update in map iteration order: float accumulation re-associates with visit order (PERFORMANCE.md); iterate sorted keys (see power.sortedMV)")
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		// Manual recursion so breakDepth scopes to subtrees.
		cur := n
		ast.Inspect(cur, func(child ast.Node) bool {
			if child == nil || child == cur {
				return child == cur
			}
			walk(child, breakDepth)
			return false
		})
	}
	walk(rs.Body, 0)
}

// checkAssign flags float accumulation into variables that outlive the loop.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			if isFloat(pass.TypesInfo.TypeOf(lhs)) {
				pass.Reportf(as.Pos(), "float accumulation in map iteration order: the sum re-associates with visit order and can differ in the last ulp between runs (PERFORMANCE.md); iterate sorted keys (see power.sortedMV)")
				return
			}
		}
	case token.ASSIGN:
		// x = x <op> … spelled long-hand.
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			obj := rootObject(pass, lhs)
			if obj == nil || !isFloat(pass.TypesInfo.TypeOf(lhs)) {
				continue
			}
			if usesAny(pass, as.Rhs[i], map[types.Object]bool{obj: true}) {
				pass.Reportf(as.Pos(), "float accumulation in map iteration order: the sum re-associates with visit order and can differ in the last ulp between runs (PERFORMANCE.md); iterate sorted keys (see power.sortedMV)")
				return
			}
		}
	}
}

// checkCall flags float collection via append and output writes.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if sl, ok := pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Slice); ok && isFloat(sl.Elem()) {
				pass.Reportf(call.Pos(), "collecting floats in map iteration order: the slice's element order is nondeterministic and any later reduction re-associates; iterate sorted keys (see power.sortedMV)")
			}
		}
		return
	}
	if pkgPath, name, ok := pass.CalleePkgFunc(call); ok && pkgPath == "fmt" && printers[name] {
		pass.Reportf(call.Pos(), "fmt.%s inside a map range emits lines in nondeterministic order; iterate sorted keys (see world.inputOrder) or annotate the loop with //create:maprange-ok <why>", name)
	}
}

// rangeVarObjects returns the objects bound by the range statement's key
// and value, if any.
func rangeVarObjects(pass *analysis.Pass, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// usesAny reports whether expr references any of the given objects.
func usesAny(pass *analysis.Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[pass.TypesInfo.ObjectOf(id)] {
			found = true
		}
		return !found
	})
	return found
}

// rootObject resolves the variable at the base of an assignable expression
// (x, x.f, x[i] all root at x).
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// isFloat reports whether t's core type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

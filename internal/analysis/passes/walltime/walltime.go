// Package walltime forbids wall-clock reads in the deterministic core.
//
// Every published figure is a pure function of (config, seed); a time.Now
// anywhere in the episode engine, the world, the kernels or the experiment
// sweeps would thread nondeterminism straight into the byte streams the CI
// determinism gates pin. Service-tier files (cache eviction clocks, job
// timestamps, dispatch retries) legitimately read the clock, but must say
// so with a file-level annotation:
//
//	//create:walltime-ok <why this file is operational, not reproducible>
//
// placed before the file's first declaration. In deterministic-core
// packages the annotation is rejected outright — no justification makes a
// wall-clock read reproducible.
package walltime

import (
	"go/ast"

	"github.com/embodiedai/create/internal/analysis"
	"github.com/embodiedai/create/internal/analysis/scope"
)

// IsServiceTier classifies the package under analysis; it is a variable so
// the analysistest suite can substitute testdata package names.
var IsServiceTier = scope.ServiceTier

// forbidden is the set of time package functions that read or schedule
// against the wall clock. Purely arithmetic helpers (time.Duration math,
// time.Unix construction from explicit integers) stay legal.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
	"Sleep":     true,
}

// Analyzer is the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock reads outside annotated service-tier files\n\n" +
		"time.Now/Since/Until/After/Tick/NewTimer/NewTicker/AfterFunc/Sleep are\n" +
		"banned in the deterministic core and require a file-level\n" +
		"//create:walltime-ok <justification> in service-tier packages.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	service := IsServiceTier(pass.PkgPath())
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			// Tests poll deadlines and time out; their outputs are
			// assertions, not published bytes.
			continue
		}
		fileOK := pass.Directives.File(f, analysis.VerbWalltimeOK)
		if fileOK != nil && !service {
			pass.Reportf(fileOK.Pos, "//create:walltime-ok has no effect in deterministic-core package %s: no annotation can allow wall-clock reads here (PERFORMANCE.md, bit-identity rules)", pass.PkgPath())
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pass.CalleePkgFunc(call)
			if !ok || pkgPath != "time" || !forbidden[name] {
				return true
			}
			switch {
			case !service:
				pass.Reportf(call.Pos(), "wall-clock call time.%s in deterministic-core package %s: published figure bytes must be a pure function of (config, seed)", name, pass.PkgPath())
			case fileOK == nil:
				pass.Reportf(call.Pos(), "wall-clock call time.%s in an unannotated file: add a file-level //create:walltime-ok <justification> before the first declaration if this file is genuinely operational", name)
			}
			return true
		})
	}
	return nil
}

package walltime_test

import (
	"testing"

	"github.com/embodiedai/create/internal/analysis/analysistest"
	"github.com/embodiedai/create/internal/analysis/passes/walltime"
)

func TestWalltime(t *testing.T) {
	orig := walltime.IsServiceTier
	walltime.IsServiceTier = func(path string) bool { return path == "svc" }
	defer func() { walltime.IsServiceTier = orig }()
	analysistest.Run(t, "testdata", walltime.Analyzer, "core", "svc")
}

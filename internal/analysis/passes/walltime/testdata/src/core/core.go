// Package core stands in for a deterministic-core package: wall-clock
// reads are findings here no matter what, and the file-level annotation is
// itself a finding.
package core

import "time"

/* want `has no effect in deterministic-core package` */ //create:walltime-ok pleading does not make the core reproducible

func bad() time.Time {
	return time.Now() // want `wall-clock call time\.Now in deterministic-core package`
}

func worse() {
	time.Sleep(time.Second)     // want `wall-clock call time\.Sleep`
	_ = time.Since(time.Time{}) // want `wall-clock call time\.Since`
	t := time.NewTimer(0)       // want `wall-clock call time\.NewTimer`
	t.Stop()
}

func fine() time.Time {
	// Constructing times from explicit integers reads no clock.
	return time.Unix(0, 0).Add(3 * time.Second)
}

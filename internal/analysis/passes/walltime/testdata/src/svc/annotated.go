// The header annotation below is the blessed service-tier pattern: one
// justification per file, before any declaration.

//create:walltime-ok job timestamps are operational metadata, never figure bytes
package svc

import "time"

func stamp() time.Time {
	return time.Now() // annotated file: no finding
}

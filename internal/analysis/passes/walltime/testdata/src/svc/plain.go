package svc

import "time"

func sinceStart(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock call time\.Since in an unannotated file`
}

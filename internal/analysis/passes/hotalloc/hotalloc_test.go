package hotalloc_test

import (
	"testing"

	"github.com/embodiedai/create/internal/analysis/analysistest"
	"github.com/embodiedai/create/internal/analysis/passes/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "a")
}

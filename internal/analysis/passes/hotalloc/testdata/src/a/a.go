// Package a exercises the hotalloc analyzer: functions under the
// //create:zeroalloc contract reject allocation-introducing constructs,
// annotated amortized sites and unmarked functions do not.
package a

import "fmt"

type state struct {
	buf   []float64
	table map[string]int
}

//create:zeroalloc
func clean(s *state, x float64) float64 {
	// In-place arithmetic over preallocated storage: the contract holds.
	var acc float64
	for i := range s.buf {
		s.buf[i] *= x
		acc += s.buf[i]
	}
	return acc
}

//create:zeroalloc
func dirty(s *state, msg string) string {
	b := make([]float64, 8)           // want `dirty is marked //create:zeroalloc: make allocates`
	m := map[string]int{"a": 1}       // want `map literal allocates its hash table`
	sl := []int{1, 2, 3}              // want `slice literal allocates its backing array`
	p := &state{}                     // want `address of composite literal escapes`
	q := new(state)                   // want `new allocates`
	s.buf = append(s.buf, 1)          // want `append may grow and reallocate`
	f := func() int { return len(m) } // want `closure literal captures variables`
	go clean(s, 1)                    // want `go statement spawns a goroutine`
	t := fmt.Sprintf("%d", f())       // want `fmt\.Sprintf formats into a fresh allocation`
	t = t + msg                       // want `string concatenation allocates`
	t += "!"                          // want `string concatenation allocates`
	raw := []byte(t)                  // want `string conversion copies its data`
	_, _, _, _, _ = b, sl, p, q, raw
	return t
}

//create:zeroalloc
func amortized(s *state, v float64) {
	//create:alloc-ok scratch append is amortized: capacity is retained across episodes
	s.buf = append(s.buf, v)
}

func unmarked() []float64 {
	// No contract, no findings: allocate freely.
	out := make([]float64, 0, 4)
	return append(out, 1, 2, 3)
}

//create:zeroalloc
func valueLiteral(s *state) {
	// A value-typed struct literal stored through a pointer does not
	// heap-allocate and is not flagged.
	*s = state{}
}

// Package hotalloc turns the zero-allocation hot path into a per-function
// static contract.
//
// PR 5 made the steady-state episode step loop allocation-free and locked
// it with a runtime gate (TestStepLoopZeroAllocs: one AllocsPerRun window
// over one configuration). That gate is necessary but coarse: it fires
// minutes after the offending line, and only for code the benchmark window
// happens to execute. This analyzer checks the same contract function by
// function at compile time. Marking a function
//
//	//create:zeroalloc
//
// (in its doc comment or on the line above) rejects allocation-introducing
// constructs anywhere in its body:
//
//   - make, new, composite literals whose address is taken, and map/slice
//     literals (their backing stores always heap-allocate when they escape,
//     and escape is the default assumption here),
//   - append (growth allocates; amortized-growth scratch appends are the
//     canonical annotated exception),
//   - closures (func literals capture by reference and escape),
//   - fmt.Sprintf/Sprint/Sprintln/Errorf and string concatenation (string
//     building allocates),
//   - string <-> []byte/[]rune conversions (they copy),
//   - go statements (a new goroutine is hardly allocation-free).
//
// A construct that is provably amortized or off the steady-state path is
// acknowledged in place:
//
//	//create:alloc-ok <why this does not allocate in steady state>
//
// The analyzer is deliberately stricter than the optimizer: value-typed
// struct literals assigned through a pointer (*ep = episode{…}) do not
// allocate and are not flagged, but anything the compiler might heap-box is.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/embodiedai/create/internal/analysis"
)

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid allocation-introducing constructs in //create:zeroalloc functions\n\n" +
		"make/new/literals/append/closures/fmt.Sprintf/string building are\n" +
		"rejected inside functions marked with the zeroalloc directive unless\n" +
		"a line carries //create:alloc-ok <justification>.",
	Run: run,
}

// sprinters are fmt functions that build strings (and therefore allocate).
var sprinters = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.Directives.ForFunc(fn, analysis.VerbZeroAlloc) == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	report := func(pos token.Pos, format string, args ...any) {
		if pass.Directives.At(pos, analysis.VerbAllocOK) != nil {
			return
		}
		prefixed := append([]any{fn.Name.Name}, args...)
		pass.Reportf(pos, "%s is marked //create:zeroalloc: "+format+" (annotate with //create:alloc-ok <why> if amortized or off the steady-state path)", prefixed...)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure literal captures variables and escapes to the heap")
			return false // its body is the closure's problem, reported once
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine (stack + closure allocation)")
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				report(n.Pos(), "map literal allocates its hash table")
			case *types.Slice:
				report(n.Pos(), "slice literal allocates its backing array")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n)) {
				report(n.Pos(), "string concatenation allocates the result")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypesInfo.TypeOf(n.Lhs[0])) {
				report(n.Pos(), "string concatenation allocates the result")
			}
		case *ast.CallExpr:
			checkCall(pass, n, report)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow and reallocate its backing array")
			}
			return
		}
	}
	if pkgPath, name, ok := pass.CalleePkgFunc(call); ok && pkgPath == "fmt" && sprinters[name] {
		report(call.Pos(), "fmt.%s formats into a fresh allocation", name)
		return
	}
	// string <-> []byte/[]rune conversions copy their data.
	if len(call.Args) == 1 && pass.TypesInfo.Types[call.Fun].IsType() {
		from := pass.TypesInfo.TypeOf(call.Args[0])
		to := pass.TypesInfo.TypeOf(call.Fun)
		if conversionAllocates(from, to) {
			report(call.Pos(), "string conversion copies its data")
		}
	}
}

func conversionAllocates(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

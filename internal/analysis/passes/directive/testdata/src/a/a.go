// Package a exercises the directive analyzer: every malformed or misplaced
// //create: annotation is a finding, so a typo can never silently disable a
// check.
package a

//create:walltime-ok fixture header directive, correctly placed before all declarations

/* want `unknown create directive verb "frobnicate"` */ //create:frobnicate

/* want `create directive "rng-reviewed" requires a justification` */ //create:rng-reviewed

/* want `create directive "zeroalloc" takes no argument` */ //create:zeroalloc but with a trailing note

/* want `malformed create directive` */ // create:zeroalloc

/* want `malformed create directive` */ /*create:walltime-ok block comments are not directives*/

/* want `missing verb` */ //create:

func anchor() {}

/* want `//create:walltime-ok is file-level` */ //create:walltime-ok too late, a declaration already passed

/* want `//create:zeroalloc must be attached to a function declaration` */ //create:zeroalloc

var floating = 1

//create:zeroalloc
func attached() int {
	return floating
}

// Package directive validates every //create: annotation in a package.
//
// The suppression grammar only works if a typo cannot silently disable a
// check: a malformed directive never suppresses anything (the other
// analyzers ignore it), and this analyzer turns it into a finding of its
// own, so the lint run fails loudly instead. It also validates placement —
// a file-level verb buried mid-file or a function contract floating free
// would otherwise quietly bind to nothing.
package directive

import (
	"go/ast"

	"github.com/embodiedai/create/internal/analysis"
)

// Analyzer is the directive pass.
var Analyzer = &analysis.Analyzer{
	Name: "directive",
	Doc: "validate //create: directive syntax and placement\n\n" +
		"unknown verbs, missing justifications, spaced or block-comment\n" +
		"spellings, misplaced file-level and function-level directives are\n" +
		"all errors: a malformed directive never suppresses a finding.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, e := range pass.Directives.Errors {
		pass.Reportf(e.Pos, "%s", e.Msg)
	}
	for _, f := range pass.Files {
		attached := make(map[*analysis.Directive]bool)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if d := pass.Directives.ForFunc(fn, analysis.VerbZeroAlloc); d != nil {
				attached[d] = true
			}
		}
		headerEnd := pass.Directives.HeaderEnd(f)
		for _, d := range pass.Directives.All(f) {
			switch d.Verb {
			case analysis.VerbWalltimeOK:
				if d.Pos >= headerEnd {
					pass.Reportf(d.Pos, "//create:walltime-ok is file-level: place it before the file's first declaration")
				}
			case analysis.VerbZeroAlloc:
				if !attached[d] {
					pass.Reportf(d.Pos, "//create:zeroalloc must be attached to a function declaration (in its doc comment or on the line above)")
				}
			}
		}
	}
	return nil
}

package directive_test

import (
	"testing"

	"github.com/embodiedai/create/internal/analysis/analysistest"
	"github.com/embodiedai/create/internal/analysis/passes/directive"
)

func TestDirective(t *testing.T) {
	analysistest.Run(t, "testdata", directive.Analyzer, "a")
}

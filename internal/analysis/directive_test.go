package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestParseCommentWellFormed(t *testing.T) {
	cases := []struct {
		text string
		verb Verb
		arg  string
	}{
		{"//create:zeroalloc", VerbZeroAlloc, ""},
		{"//create:rng-reviewed corrupt gate draw, stream position is load-bearing", VerbRNGReviewed, "corrupt gate draw, stream position is load-bearing"},
		{"//create:walltime-ok cache eviction clock, operational only", VerbWalltimeOK, "cache eviction clock, operational only"},
		{"//create:maprange-ok integer merge, addition commutes exactly", VerbMapRangeOK, "integer merge, addition commutes exactly"},
		{"//create:alloc-ok amortized: scratch capacity survives across trials", VerbAllocOK, "amortized: scratch capacity survives across trials"},
		{"//create:zeroalloc\t", VerbZeroAlloc, ""}, // trailing whitespace is not an argument
	}
	for _, c := range cases {
		d, perr := ParseComment(c.text)
		if perr != nil {
			t.Errorf("ParseComment(%q): unexpected error %q", c.text, perr.Msg)
			continue
		}
		if d == nil {
			t.Errorf("ParseComment(%q): not recognized as a directive", c.text)
			continue
		}
		if d.Verb != c.verb || d.Arg != c.arg {
			t.Errorf("ParseComment(%q) = (%q, %q), want (%q, %q)", c.text, d.Verb, d.Arg, c.verb, c.arg)
		}
	}
}

// TestParseCommentMalformed is the loud-failure contract: anything close to
// a directive that is not exactly well-formed must produce a ParseError —
// never a nil,nil "not a directive" result that would silently disable a
// suppression.
func TestParseCommentMalformed(t *testing.T) {
	cases := []struct {
		text    string
		wantMsg string
	}{
		{"//create:", "missing verb"},
		{"//create:rngreviewed stream ok", "unknown create directive verb"},
		{"//create:rng-reviewed", "requires a justification"},
		{"//create:rng-reviewed ", "requires a justification"},
		{"//create:walltime-ok", "requires a justification"},
		{"//create:maprange-ok", "requires a justification"},
		{"//create:alloc-ok", "requires a justification"},
		{"//create:zeroalloc but with a trailing note", "takes no argument"},
		{"//create:zero-alloc", "unknown create directive verb"},
		{"//create:ZEROALLOC", "unknown create directive verb"},
		{"// create:zeroalloc", "malformed create directive"},
		{"//  create:rng-reviewed why", "malformed create directive"},
		{"//Create:zeroalloc", "malformed create directive"},
		{"//CREATE:walltime-ok why", "malformed create directive"},
		{"/*create:zeroalloc*/", "malformed create directive"},
		{"/* create:walltime-ok why */", "malformed create directive"},
	}
	for _, c := range cases {
		d, perr := ParseComment(c.text)
		if perr == nil {
			t.Errorf("ParseComment(%q): want loud parse error containing %q, got directive=%v", c.text, c.wantMsg, d)
			continue
		}
		if !strings.Contains(perr.Msg, c.wantMsg) {
			t.Errorf("ParseComment(%q) error %q does not mention %q", c.text, perr.Msg, c.wantMsg)
		}
		if d != nil {
			t.Errorf("ParseComment(%q): returned both a directive and an error; a malformed directive must never suppress", c.text)
		}
	}
}

func TestParseCommentIgnoresOrdinaryComments(t *testing.T) {
	for _, text := range []string{
		"// a normal comment",
		"// created by hand",
		"// the //create:zeroalloc directive is documented elsewhere",
		"/* block prose */",
		"//go:generate stringer",
		"//nolint:gofmt",
	} {
		d, perr := ParseComment(text)
		if d != nil || perr != nil {
			t.Errorf("ParseComment(%q) = (%v, %v), want (nil, nil)", text, d, perr)
		}
	}
}

const indexSrc = `package p

//create:walltime-ok this file talks to the scheduler, timestamps are operational

import "fmt"

//create:zeroalloc
func hot(a, b int) int {
	return a + b // fine
}

func warm() {
	x := 1 //create:rng-reviewed the draw on this line is reviewed
	_ = x
	//create:maprange-ok next line's loop merges integers only
	y := 2
	_ = y
	fmt.Println(x, y)
}

//create:walltime-ok too late, declarations already started
var after = 3

//create:bogus-verb nope
var bad = 4
`

func TestIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", indexSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(fset, []*ast.File{f})

	// The malformed bogus-verb directive lands in Errors, not the index.
	if len(ix.Errors) != 1 || !strings.Contains(ix.Errors[0].Msg, "unknown create directive verb") {
		t.Fatalf("Errors = %+v, want exactly the bogus-verb parse error", ix.Errors)
	}

	// File-level lookup sees only the header walltime-ok, not the late one.
	d := ix.File(f, VerbWalltimeOK)
	if d == nil || !strings.Contains(d.Arg, "scheduler") {
		t.Fatalf("File(walltime-ok) = %+v, want the header directive", d)
	}

	// Function attachment: hot carries zeroalloc, warm does not.
	var hot, warm *ast.FuncDecl
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok {
			switch fn.Name.Name {
			case "hot":
				hot = fn
			case "warm":
				warm = fn
			}
		}
	}
	if ix.ForFunc(hot, VerbZeroAlloc) == nil {
		t.Error("ForFunc(hot, zeroalloc) = nil, want the doc-comment directive")
	}
	if ix.ForFunc(warm, VerbZeroAlloc) != nil {
		t.Error("ForFunc(warm, zeroalloc) != nil, want nil")
	}

	// Line anchoring: same line and line-above both count; two lines away
	// does not.
	lineOf := func(substr string) token.Pos {
		off := strings.Index(indexSrc, substr)
		if off < 0 {
			t.Fatalf("substring %q not found", substr)
		}
		return f.FileStart + token.Pos(off)
	}
	if ix.At(lineOf("x := 1"), VerbRNGReviewed) == nil {
		t.Error("At(same line, rng-reviewed) = nil, want directive")
	}
	if ix.At(lineOf("y := 2"), VerbMapRangeOK) == nil {
		t.Error("At(line above, maprange-ok) = nil, want directive")
	}
	if ix.At(lineOf("fmt.Println"), VerbMapRangeOK) != nil {
		t.Error("At(two lines below, maprange-ok) != nil, want nil")
	}
}

// Package analysistest runs an analyzer over golden testdata packages and
// checks its diagnostics against `// want "regexp"` expectations, the same
// convention as golang.org/x/tools/go/analysis/analysistest but built on
// the standard library alone.
//
// Layout: <testdata>/src/<pkg>/*.go, one self-contained package per
// directory. A line expecting diagnostics carries a trailing comment
//
//	x := rand.Float64() // want "global math/rand"
//
// with one quoted (or backquoted) regexp per expected diagnostic. Every
// diagnostic must be expected and every expectation must fire; either
// mismatch fails the test with positions.
//
// Imports inside testdata resolve through the standard library's source
// importer, so fixtures may import stdlib packages (math/rand, time, fmt)
// but not each other.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/embodiedai/create/internal/analysis"
)

// The source importer re-typechecks stdlib packages from source; share one
// across all Run calls in a test binary so each dependency is checked once.
var (
	stdOnce sync.Once
	stdFset *token.FileSet
	stdImp  types.Importer
	stdMu   sync.Mutex
)

func sharedImporter() (*token.FileSet, types.Importer) {
	stdOnce.Do(func() {
		stdFset = token.NewFileSet()
		stdImp = importer.ForCompiler(stdFset, "source", nil)
	})
	return stdFset, stdImp
}

// Run checks analyzer a against each named package under dir/src.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, filepath.Join(dir, "src", pkg), pkg, a)
		})
	}
}

func runOne(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	fset, imp := sharedImporter()

	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no Go files under %s: %v", dir, err)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		stdMu.Lock()
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		stdMu.Unlock()
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	stdMu.Lock()
	pkg, err := conf.Check(pkgPath, fset, files, info)
	stdMu.Unlock()
	if err != nil {
		t.Fatalf("typecheck %s: %v", pkgPath, err)
	}

	diags, err := analysis.Run([]*analysis.Analyzer{a}, fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	check(t, fset, files, diags)
}

// lineKey identifies one file line.
type lineKey struct {
	file string
	line int
}

type expectation struct {
	re  *regexp.Regexp
	pos string // printable position of the want comment
	hit bool
}

// wantToken pulls quoted and backquoted strings out of a want comment.
var wantToken = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Both comment forms carry expectations: `// want "re"`
				// trails ordinary code; `/* want "re" */` precedes a
				// //create: directive under test, which owns the rest of
				// its line.
				text := c.Text
				if strings.HasPrefix(text, "/*") {
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				} else {
					text = strings.TrimPrefix(text, "//")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, tok := range wantToken.FindAllString(text[len("want "):], -1) {
					pattern := strings.Trim(tok, "`")
					if strings.HasPrefix(tok, "\"") {
						var err error
						pattern, err = strconv.Unquote(tok)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", posn, tok, err)
						}
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, pattern, err)
					}
					key := lineKey{posn.Filename, posn.Line}
					wants[key] = append(wants[key], &expectation{re: re, pos: posn.String()})
				}
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := lineKey{posn.Filename, posn.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: expected diagnostic matching %q was not reported", w.pos, w.re)
			}
		}
	}
}

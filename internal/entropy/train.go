package entropy

import (
	"math/rand"

	"github.com/embodiedai/create/internal/nn"
	"github.com/embodiedai/create/internal/stats"
	"github.com/embodiedai/create/internal/world"
)

// Sample is one training frame: the rendered observation, the subtask
// prompt embedding, and the ground-truth error-free entropy (Sec. 5.3: "a
// prompt embedding, an observed image, and a ground-truth entropy value
// derived from error-free controller executions").
type Sample struct {
	Image   *nn.Vol
	Prompt  []float32
	Entropy float32
}

// BuildDataset collects frames from error-free episodes across all
// Minecraft tasks (the paper gathers >250 k frames; size scales that down
// for the pure-Go trainer). Frames are sampled uniformly across steps so
// all phases are represented.
func BuildDataset(size int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []Sample
	taskIdx := 0
	for len(out) < size {
		task := world.AllTasks[taskIdx%len(world.AllTasks)]
		taskIdx++
		spec := world.Specs[task]
		w := world.New(spec.Biome, seed+int64(taskIdx)*131)
		expert := world.NewExpert(seed + int64(taskIdx)*733)
		plan := planFor(task, w)
		stepsInSubtask := 0
		for step := 0; step < 1500 && len(out) < size; step++ {
			for len(plan) > 0 && plan[0].Done(w) {
				plan = plan[1:]
				stepsInSubtask = 0
			}
			if len(plan) == 0 {
				break
			}
			if stepsInSubtask > 600 {
				break
			}
			st := plan[0]
			dec := expert.Decide(w, st)
			// Keep roughly every third frame to decorrelate samples.
			if step%3 == 0 {
				out = append(out, Sample{
					Image:   w.RenderView(),
					Prompt:  PromptEmbedding(st),
					Entropy: float32(dec.Entropy()),
				})
			}
			w.Step(dec.Sample(rng), dec.Goal)
			stepsInSubtask++
		}
	}
	return out
}

// planFor produces the golden decomposition without importing the planner
// package (avoiding a dependency cycle is not the issue — keeping the
// dataset generator self-contained is).
func planFor(task world.TaskName, w *world.World) []world.Subtask {
	// The expert only needs grounded subtasks; reuse the specs' goal chain
	// via a tiny local table mirroring planner.Golden's from-scratch plans.
	switch task {
	case world.TaskWooden:
		return []world.Subtask{
			{Kind: world.MineLog, Item: world.Log, Count: 3},
			{Kind: world.CraftItem, Item: world.CraftingTable, Count: 1},
			{Kind: world.PlaceTable},
			{Kind: world.CraftItem, Item: world.WoodenPickaxe, Count: 1},
		}
	case world.TaskStone:
		return append(planFor(world.TaskWooden, w),
			world.Subtask{Kind: world.MineStone, Item: world.Cobblestone, Count: 3},
			world.Subtask{Kind: world.CraftItem, Item: world.StonePickaxe, Count: 1},
		)
	case world.TaskCoal:
		return append(planFor(world.TaskWooden, w),
			world.Subtask{Kind: world.MineCoal, Item: world.Coal, Count: 1},
		)
	case world.TaskWool:
		return []world.Subtask{{Kind: world.ShearWool, Item: world.Wool, Count: 5}}
	case world.TaskSeed:
		return []world.Subtask{{Kind: world.CollectSeeds, Item: world.WheatSeeds, Count: 10}}
	case world.TaskLog:
		return []world.Subtask{{Kind: world.MineLog, Item: world.Log, Count: 10}}
	case world.TaskChicken:
		return []world.Subtask{{Kind: world.HuntChicken, Item: world.RawChicken, Count: 1}}
	default: // charcoal, iron: reuse the stone prefix for frame diversity
		return planFor(world.TaskStone, w)
	}
}

// TrainConfig tunes the trainer. The paper trains 200 epochs at batch 128
// with AdamW(lr=1e-4, wd=1e-2) on 250 k frames; the defaults scale that to
// what a pure-Go run can afford while reproducing the accuracy headline.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
}

// DefaultTrainConfig returns the scaled-down training setup.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 16, BatchSize: 16, LR: 1.5e-3, Seed: 9}
}

// Metrics reports a training or evaluation pass.
type Metrics struct {
	MSE float64
	R2  float64
}

// Train fits the predictor on samples and returns per-epoch training MSE.
func Train(p *Predictor, samples []Sample, cfg TrainConfig) []float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdamW(cfg.LR)
	params := p.Params()
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	var losses []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		batchN := 0
		for i, si := range idx {
			s := samples[si]
			pred := p.Forward(s.Image, s.Prompt, true, rng)
			loss, grad := nn.MSE([]float32{pred}, []float32{s.Entropy})
			epochLoss += loss
			p.Backward(grad[0])
			batchN++
			if batchN == cfg.BatchSize || i == len(idx)-1 {
				scaleGrads(params, 1/float32(batchN))
				opt.Step(params)
				batchN = 0
			}
		}
		losses = append(losses, epochLoss/float64(len(samples)))
	}
	return losses
}

func scaleGrads(params []*nn.Param, s float32) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] *= s
		}
	}
}

// Evaluate computes MSE and R^2 on held-out samples (Fig. 14(a)).
func Evaluate(p *Predictor, samples []Sample) Metrics {
	preds := make([]float64, len(samples))
	targets := make([]float64, len(samples))
	for i, s := range samples {
		preds[i] = float64(p.Forward(s.Image, s.Prompt, false, nil))
		targets[i] = float64(s.Entropy)
	}
	return Metrics{MSE: stats.MSE(preds, targets), R2: stats.R2(preds, targets)}
}

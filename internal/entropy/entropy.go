// Package entropy implements the pre-execution entropy predictor of
// autonomy-adaptive voltage scaling (Sec. 5.3, Fig. 11(a), Table 9): a small
// CNN over the observed image fused with an MLP over the subtask prompt
// embedding, trained with MSE + AdamW to estimate the controller's
// error-free action-logit entropy before the step executes.
package entropy

import (
	"hash/fnv"
	"math/rand"

	"github.com/embodiedai/create/internal/nn"
	"github.com/embodiedai/create/internal/world"
)

// PromptDim is the subtask prompt-embedding width (Table 9: Linear in=512).
const PromptDim = 512

// PromptEmbedding returns the frozen 512-d embedding of a subtask — a
// deterministic pseudo-random unit-scale vector per (kind, item), standing
// in for the language model's prompt embedding.
func PromptEmbedding(st world.Subtask) []float32 {
	h := fnv.New64a()
	h.Write([]byte{byte(st.Kind), byte(st.Item)})
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	e := make([]float32, PromptDim)
	for i := range e {
		e[i] = float32(rng.NormFloat64() * 0.5)
	}
	return e
}

// Predictor is the Table 9 network: three stride-3 convolutions with
// pooling over the 3x64x64 view, a prompt MLP, and a fusion MLP emitting a
// scalar entropy estimate.
type Predictor struct {
	conv1, conv2, conv3 *nn.Conv2d
	relu1, relu2, relu3 *nn.ReLUVol
	pool1, pool2        *nn.MaxPool2
	gap                 *nn.GlobalAvgPool

	promptFC   *nn.Dense
	promptReLU *nn.ReLUVec
	dropout    *nn.Dropout

	fuse1    *nn.Dense
	fuseReLU *nn.ReLUVec
	fuse2    *nn.Dense

	// caches for backward
	imgFeat, promptFeat []float32
}

// NewPredictor builds the predictor with seeded initialization.
func NewPredictor(seed int64) *Predictor {
	rng := rand.New(rand.NewSource(seed))
	return &Predictor{
		conv1: nn.NewConv2d(3, 16, 3, 3, 1, rng),
		conv2: nn.NewConv2d(16, 32, 3, 3, 1, rng),
		conv3: nn.NewConv2d(32, 64, 3, 3, 1, rng),
		relu1: &nn.ReLUVol{}, relu2: &nn.ReLUVol{}, relu3: &nn.ReLUVol{},
		pool1: &nn.MaxPool2{}, pool2: &nn.MaxPool2{},
		gap:        &nn.GlobalAvgPool{},
		promptFC:   nn.NewDense(PromptDim, 64, rng),
		promptReLU: &nn.ReLUVec{},
		dropout:    &nn.Dropout{P: 0.1},
		fuse1:      nn.NewDense(128, 128, rng),
		fuseReLU:   &nn.ReLUVec{},
		fuse2:      nn.NewDense(128, 1, rng),
	}
}

// Params returns all trainable parameters.
func (p *Predictor) Params() []*nn.Param {
	return []*nn.Param{
		p.conv1.W, p.conv1.B, p.conv2.W, p.conv2.B, p.conv3.W, p.conv3.B,
		p.promptFC.W, p.promptFC.B,
		p.fuse1.W, p.fuse1.B, p.fuse2.W, p.fuse2.B,
	}
}

// ParamCount returns the number of trainable scalars (Table 4 lists 55 k).
func (p *Predictor) ParamCount() int {
	n := 0
	for _, pr := range p.Params() {
		n += len(pr.Val)
	}
	return n
}

// Forward predicts the entropy for an observation image and prompt
// embedding. Set train to enable dropout.
func (p *Predictor) Forward(img *nn.Vol, prompt []float32, train bool, rng *rand.Rand) float32 {
	x := p.relu1.Forward(p.conv1.Forward(img))
	x = p.pool1.Forward(x)
	x = p.relu2.Forward(p.conv2.Forward(x))
	x = p.pool2.Forward(x)
	x = p.relu3.Forward(p.conv3.Forward(x))
	p.imgFeat = p.gap.Forward(x)

	p.dropout.Train = train
	pf := p.promptReLU.Forward(p.promptFC.Forward(prompt))
	p.promptFeat = p.dropout.Forward(pf, rng)

	fused := make([]float32, 0, 128)
	fused = append(fused, p.imgFeat...)
	fused = append(fused, p.promptFeat...)
	h := p.fuseReLU.Forward(p.fuse1.Forward(fused))
	return p.fuse2.Forward(h)[0]
}

// Backward propagates the scalar output gradient through the whole network,
// accumulating parameter gradients.
func (p *Predictor) Backward(gradOut float32) {
	g := p.fuse2.Backward([]float32{gradOut})
	g = p.fuse1.Backward(p.fuseReLU.Backward(g))

	gImg, gPrompt := g[:64], g[64:]

	gv := p.gap.Backward(gImg)
	gv = p.conv3.Backward(p.relu3.Backward(gv))
	gv = p.pool2.Backward(gv)
	gv = p.conv2.Backward(p.relu2.Backward(gv))
	gv = p.pool1.Backward(gv)
	p.conv1.Backward(p.relu1.Backward(gv))

	gp := p.dropout.Backward(gPrompt)
	p.promptFC.Backward(p.promptReLU.Backward(gp))
}

package entropy

import (
	"math"
	"testing"

	"github.com/embodiedai/create/internal/world"
)

func TestPromptEmbeddingDeterministicAndDistinct(t *testing.T) {
	a := PromptEmbedding(world.Subtask{Kind: world.MineLog, Item: world.Log})
	b := PromptEmbedding(world.Subtask{Kind: world.MineLog, Item: world.Log})
	c := PromptEmbedding(world.Subtask{Kind: world.HuntChicken, Item: world.RawChicken})
	if len(a) != PromptDim {
		t.Fatalf("embedding dim %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same subtask must embed identically")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different subtasks must embed differently")
	}
}

func TestPredictorForwardShape(t *testing.T) {
	p := NewPredictor(1)
	w := world.New(world.Plains, 2)
	img := w.RenderView()
	prompt := PromptEmbedding(world.Subtask{Kind: world.MineLog, Item: world.Log})
	out := p.Forward(img, prompt, false, nil)
	if math.IsNaN(float64(out)) || math.IsInf(float64(out), 0) {
		t.Fatal("non-finite prediction")
	}
	// Table 4 sizes the predictor at ~55k parameters; ours lands in the
	// same class.
	if n := p.ParamCount(); n < 40000 || n > 110000 {
		t.Fatalf("parameter count %d out of Table 4's class", n)
	}
}

func TestBuildDatasetCoversPhases(t *testing.T) {
	samples := BuildDataset(300, 3)
	if len(samples) != 300 {
		t.Fatalf("dataset size %d", len(samples))
	}
	low, high := 0, 0
	for _, s := range samples {
		if s.Image.C != 3 || s.Image.H != world.ViewSize {
			t.Fatal("bad sample image")
		}
		if s.Entropy < 0 || float64(s.Entropy) > math.Log(float64(world.NumActions))+1e-3 {
			t.Fatalf("entropy %v out of range", s.Entropy)
		}
		if s.Entropy < 1 {
			low++
		}
		if s.Entropy > 2.5 {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Fatalf("dataset must cover critical and exploratory frames: low=%d high=%d", low, high)
	}
}

func TestTrainingReducesLossAndLearnsSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	train := BuildDataset(900, 11)
	test := BuildDataset(150, 917)
	p := NewPredictor(5)
	before := Evaluate(p, test)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 5
	losses := Train(p, train, cfg)
	after := Evaluate(p, test)
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("training loss did not drop: %v -> %v", losses[0], losses[len(losses)-1])
	}
	if after.MSE >= before.MSE {
		t.Fatalf("held-out MSE did not improve: %v -> %v", before.MSE, after.MSE)
	}
}

func TestEvaluateAgainstOracleBaseline(t *testing.T) {
	// An untrained predictor must have R2 <= 0 against real targets.
	test := BuildDataset(120, 23)
	p := NewPredictor(7)
	m := Evaluate(p, test)
	if m.R2 > 0.2 {
		t.Fatalf("untrained predictor suspiciously accurate: R2=%v", m.R2)
	}
}

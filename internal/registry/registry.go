// Package registry is the typed experiment index of the evaluation suite:
// every figure and table of the paper is registered as a Descriptor that
// can be enumerated, cache-planned, executed and rendered by name. The
// CLIs (cmd/create-bench, cmd/create-characterize) and the serving tier
// (internal/service, cmd/create-serve) all dispatch through this registry,
// so an experiment submitted over HTTP renders byte-identically to the same
// experiment run locally.
//
// Beyond dispatch, descriptors expose cache-aware planning: Points
// enumerates the content-addressed fingerprints a run will consult
// (internal/cache), and PlanFor probes them against a store to predict
// cache hits versus points-to-compute before any work is scheduled — the
// primitive behind "this whole figure is already served by the cache".
// Every tier plans through it: create-bench -plan prints the prediction,
// the service surfaces it per job, and internal/dispatch plans per shard
// so fully cached shards are never dispatched. The registry sits between
// the serving/dispatch tiers and the deterministic core in the stack
// described by docs/ARCHITECTURE.md.
package registry

import (
	"fmt"
	"io"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/ldo"
	"github.com/embodiedai/create/internal/platforms"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/power"
	"github.com/embodiedai/create/internal/world"
)

// Result is one executed experiment: typed rows plus the renderer that
// prints them in the reference CLI format. Render closes over Rows, so a
// Result is self-contained — a server can hold it and render on demand.
type Result struct {
	Rows   any
	Render func(w io.Writer)
}

// Descriptor registers one experiment.
type Descriptor struct {
	// Name is the CLI/API identifier (fig1..fig21, table2..table6).
	Name string
	// Title is a one-line description for listings.
	Title string
	// Run executes the experiment against the shared environment.
	Run func(*experiments.Env, experiments.Options) Result
	// Points enumerates the cache fingerprints a run will consult; nil
	// means the experiment has no cached Monte-Carlo grid.
	Points func(*experiments.Env, experiments.Options) []cache.Point
	// Dynamic marks experiments whose real grid is data-dependent
	// (minimal-voltage descents): Points is then a superset of what a run
	// consults, so a plan's ToCompute is an upper bound.
	Dynamic bool
	// Uncached marks experiments that do Monte-Carlo or training work
	// outside the summary cache: even a fully cached grid does not make
	// their run free.
	Uncached bool
}

// Plan predicts what running an experiment would cost the cache: how many
// unique grid points it consults, how many are already resident, and how
// many it would have to compute.
type Plan struct {
	Experiment string `json:"experiment"`
	GridPoints int    `json:"grid_points"`
	Cached     int    `json:"cached"`
	ToCompute  int    `json:"to_compute"`
	// Dynamic: the grid is data-dependent and GridPoints/ToCompute are
	// upper bounds. Uncached: the experiment does work outside the cache,
	// so it is never free regardless of residency.
	Dynamic  bool `json:"dynamic,omitempty"`
	Uncached bool `json:"uncached,omitempty"`
}

// Free reports whether a run would compute no new grid points and do no
// uncached Monte-Carlo work — the "skip this whole figure" predicate. For
// Dynamic experiments the enumeration is a superset, so Free remains sound:
// if every potential point is cached, the actual subset certainly is.
func (p Plan) Free() bool { return !p.Uncached && p.ToCompute == 0 }

// PlanFor probes an experiment's fingerprints against the environment's
// cache store. Fingerprints are deduplicated by content address (sweeps
// share points), and the probe never perturbs the store's hit/miss
// accounting.
func PlanFor(d Descriptor, e *experiments.Env, opt experiments.Options) Plan {
	p, _ := ShardPlanFor(d, e, opt)
	return p
}

// ShardPlanFor is PlanFor plus the deduplicated content addresses the
// probe consulted, in enumeration order. With opt carrying a shard
// selection the keys are exactly the manifest that shard owns — what the
// dispatch tier ships between a coordinator and its workers to pre-warm
// caches and pull computed entries back by address.
func ShardPlanFor(d Descriptor, e *experiments.Env, opt experiments.Options) (Plan, []string) {
	p := Plan{Experiment: d.Name, Dynamic: d.Dynamic, Uncached: d.Uncached}
	if d.Points == nil {
		return p, nil
	}
	pts := d.Points(e, opt)
	keys := make([]string, 0, len(pts))
	seen := make(map[string]bool, len(pts))
	for _, pt := range pts {
		key := pt.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		keys = append(keys, key)
		p.GridPoints++
		if e.Cache != nil && e.Cache.Contains(pt) {
			p.Cached++
		} else {
			p.ToCompute++
		}
	}
	return p, keys
}

// All returns every registered experiment in the paper's canonical order.
func All() []Descriptor {
	out := make([]Descriptor, len(descriptors))
	copy(out, descriptors)
	return out
}

// Names lists the registered experiment names in canonical order.
func Names() []string {
	names := make([]string, len(descriptors))
	for i, d := range descriptors {
		names[i] = d.Name
	}
	return names
}

// Lookup resolves an experiment by name.
func Lookup(name string) (Descriptor, bool) {
	for _, d := range descriptors {
		if d.Name == name {
			return d, true
		}
	}
	return Descriptor{}, false
}

var descriptors = []Descriptor{
	{
		Name: "fig1", Title: "BER vs voltage and task degradation under controller errors",
		Run: runFig1, Points: experiments.Fig1Points,
	},
	{
		Name: "fig4", Title: "per-bit timing error rates and injected error magnitudes",
		Run: runFig4, Uncached: true,
	},
	{
		Name: "fig5", Title: "planner vs controller resilience, component severities, activations",
		Run: runFig5, Points: experiments.Fig5Points, Uncached: true,
	},
	{
		Name: "fig6", Title: "subtask resilience diversity",
		Run: runFig6, Points: experiments.Fig6Points,
	},
	{
		Name: "fig7", Title: "stage profiles and phase-targeted corruption",
		Run: runFig7, Points: experiments.Fig7Points, Uncached: true,
	},
	{
		Name: "fig8", Title: "runtime GEMM output distribution",
		Run: runFig8, Uncached: true,
	},
	{
		Name: "fig9", Title: "activation outliers before/after weight rotation",
		Run: runFig9, Uncached: true,
	},
	{
		Name: "fig10", Title: "entropy curve across episode timesteps",
		Run: runFig10, Uncached: true,
	},
	{
		Name: "fig12", Title: "hardware platform area/power breakdown and LDO waveforms",
		Run: runFig12,
	},
	{
		Name: "fig13", Title: "AD/WR protection sweeps and voltage scaling",
		Run: runFig13, Points: experiments.Fig13Points,
	},
	{
		Name: "fig14", Title: "entropy predictor training and runtime tracking",
		Run: runFig14, Uncached: true,
	},
	{
		Name: "fig15", Title: "voltage update interval sweep",
		Run: runFig15, Points: experiments.Fig15Points,
	},
	{
		Name: "fig16", Title: "overall reliability and minimal-voltage efficiency",
		Run: runFig16, Points: experiments.Fig16Points, Dynamic: true,
	},
	{
		Name: "fig17", Title: "cross-platform energy savings",
		Run: runFig17, Points: experiments.Fig17Points, Dynamic: true,
	},
	{
		Name: "fig18", Title: "chip-level energy breakdown and battery life",
		Run: runFig18, Points: experiments.Fig17Points, Dynamic: true,
	},
	{
		Name: "fig19", Title: "uniform vs hardware error model",
		Run: runFig19, Points: experiments.Fig19Points,
	},
	{
		Name: "fig20", Title: "comparison with existing protection techniques",
		Run: runFig20, Points: experiments.Fig20Points,
	},
	{
		Name: "fig21", Title: "entropy-to-voltage mapping policies",
		Run: runFig21,
	},
	{
		Name: "table2", Title: "LDO specifications",
		Run: runTable2,
	},
	{
		Name: "table3", Title: "accelerator performance on the cycle model",
		Run: runTable3,
	},
	{
		Name: "table4", Title: "model parameters and ops",
		Run: runTable4,
	},
	{
		Name: "table5", Title: "success rate vs repetition count",
		Run: runTable5, Uncached: true,
	},
	{
		Name: "table6", Title: "INT8 vs INT4 under AD+WR",
		Run: runTable6, Points: experiments.Table6Points,
	},
}

// ---------------------------------------------------------------------------
// Run implementations. Each returns the typed rows and a renderer printing
// the reference CLI format.

// Fig1Rows pairs the BER curve with the controller degradation sweep.
type Fig1Rows struct {
	BER         []experiments.VoltageBERPoint
	Degradation []experiments.ResiliencePoint
}

func runFig1(e *experiments.Env, opt experiments.Options) Result {
	rows := Fig1Rows{
		BER:         experiments.Fig1b(e),
		Degradation: experiments.Fig5Controller(e, opt),
	}
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 1(b): BER vs operating voltage")
		for _, p := range rows.BER {
			fmt.Fprintf(w, "  %.2f V -> BER %.2e\n", p.Voltage, p.BER)
		}
		fmt.Fprintln(w, "Fig 1(c)/(d): stone task degradation under controller BER")
		experiments.RenderResilience(w, "", rows.Degradation)
	}}
}

// Fig4Rows pairs the per-bit rate surface with the magnitude comparison.
type Fig4Rows struct {
	Bits   []experiments.BitRatePoint
	Errors experiments.Fig4bResult
}

func runFig4(e *experiments.Env, opt experiments.Options) Result {
	rows := Fig4Rows{
		Bits:   experiments.Fig4a(e),
		Errors: experiments.Fig4b(e, opt),
	}
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 4(a): per-bit timing error rate (bits 12..23)")
		for _, p := range rows.Bits {
			if p.Bit >= 12 && p.Bit%2 == 1 {
				fmt.Fprintf(w, "  V=%.2f bit=%2d rate=%.2e\n", p.Voltage, p.Bit, p.Rate)
			}
		}
		r := rows.Errors
		fmt.Fprintf(w, "Fig 4(b): clean |max|=%.2f, median error=%.2f, %.0f%% of errors exceed the data range\n",
			r.CleanAbsMax, r.ErrorAbsMedian, r.LargeErrorFrac*100)
	}}
}

// Fig5Rows bundles the four panels of Fig. 5.
type Fig5Rows struct {
	Planner     []experiments.ResiliencePoint
	Controller  []experiments.ResiliencePoint
	Components  []experiments.ComponentSeverity
	Activations []experiments.ActivationProfile
}

func runFig5(e *experiments.Env, opt experiments.Options) Result {
	rows := Fig5Rows{
		Planner:     experiments.Fig5Planner(e, opt),
		Controller:  experiments.Fig5Controller(e, opt),
		Components:  experiments.Fig5Components(opt),
		Activations: experiments.Fig5Activations(opt),
	}
	return Result{Rows: rows, Render: func(w io.Writer) {
		experiments.RenderResilience(w, "Fig 5(a)/(b): planner resilience", rows.Planner)
		experiments.RenderResilience(w, "Fig 5(c)/(d): controller resilience", rows.Controller)
		fmt.Fprintln(w, "Fig 5(e)-(h): per-component high-bit severity (miniatures)")
		for _, c := range rows.Components {
			fmt.Fprintf(w, "  %-10s %-5s %.4f\n", c.Model, c.Component, c.HighBitSeverity)
		}
		fmt.Fprintln(w, "Fig 5(i)-(l): activations and normalization skew")
		for _, a := range rows.Activations {
			fmt.Fprintf(w, "  %-10s absmax=%7.2f std=%6.2f | sigma %6.2f -> %6.2f under one in-range fault\n",
				a.Model, a.AbsMax, a.Std, a.SigmaClean, a.SigmaFaulty)
		}
	}}
}

func runFig6(e *experiments.Env, opt experiments.Options) Result {
	rows := experiments.Fig6Subtasks(e, opt)
	return Result{Rows: rows, Render: func(w io.Writer) {
		experiments.RenderResilience(w, "Fig 6: subtask resilience diversity", rows)
	}}
}

// Fig7Rows pairs the clean stage profile with the targeted-corruption rows.
type Fig7Rows struct {
	Stages    []experiments.StageProfile
	Injection []experiments.StageCorruption
}

func runFig7(e *experiments.Env, opt experiments.Options) Result {
	rows := Fig7Rows{
		Stages:    experiments.Fig7Stages(e, opt),
		Injection: experiments.Fig7PhaseInjection(e, opt, experiments.Fig7InjectionQ),
	}
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 7: stage profile (clean log episodes)")
		for _, s := range rows.Stages {
			fmt.Fprintf(w, "  %-9s mean entropy %.2f (%.0f%% of steps)\n", s.Phase, s.MeanEntropy, s.Fraction*100)
		}
		fmt.Fprintf(w, "Fig 7: phase-targeted corruption (q=%.1f)\n", experiments.Fig7InjectionQ)
		for _, s := range rows.Injection {
			fmt.Fprintf(w, "  corrupt %-9s success %.0f%% avg steps %.0f\n", s.Phase, s.SuccessRate*100, s.AvgSteps)
		}
	}}
}

func runFig8(_ *experiments.Env, opt experiments.Options) Result {
	rows := experiments.Fig8GEMMProfile(opt)
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintf(w, "Fig 8(a): %.0f%% of GEMM outputs near zero; highest accumulator bit touched: %d of 23\n",
			rows.FracNearZero*100, rows.MaxAccBits)
	}}
}

func runFig9(_ *experiments.Env, opt experiments.Options) Result {
	rows := experiments.Fig9Rotation(opt)
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintf(w, "Fig 9(b): residual absmax %.1f -> %.1f, std %.2f -> %.2f (output drift %.2e)\n",
			rows.AbsMaxBefore, rows.AbsMaxAfter, rows.StdBefore, rows.StdAfter, rows.OutputDrift)
	}}
}

// Fig10Rows is the per-step entropy trace of one clean episode.
type Fig10Rows struct {
	Entropy []float64
	Phases  []world.Phase
}

func runFig10(_ *experiments.Env, opt experiments.Options) Result {
	trace, phases := experiments.Fig10EntropyCurve(opt, world.TaskLog)
	rows := Fig10Rows{Entropy: trace, Phases: phases}
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 10: entropy curve (first 120 steps; E=execute A=approach X=explore)")
		for i := 0; i < len(rows.Entropy) && i < 120; i += 4 {
			tag := map[world.Phase]string{world.PhaseExplore: "X", world.PhaseApproach: "A", world.PhaseExecute: "E"}[rows.Phases[i]]
			fmt.Fprintf(w, "  step %3d %s entropy %.2f\n", i, tag, rows.Entropy[i])
		}
	}}
}

// Fig12Rows pairs the block breakdown with the LDO waveform.
type Fig12Rows struct {
	Breakdown []power.AreaPowerRow
	Waveform  []ldo.WavePoint
}

func runFig12(_ *experiments.Env, _ experiments.Options) Result {
	rows := Fig12Rows{
		Breakdown: experiments.Fig12Breakdown(),
		Waveform:  experiments.Fig12Waveforms(),
	}
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 12(c): area/power breakdown")
		for _, r := range rows.Breakdown {
			fmt.Fprintf(w, "  %-9s %7.2f mm^2  %s W\n", r.Block, r.AreaMM2, r.PowerW)
		}
		wf := rows.Waveform
		fmt.Fprintf(w, "Fig 12(d)/(e): waveform with %d samples, %.0f ns span\n", len(wf), wf[len(wf)-1].TimeNS)
	}}
}

// Fig13Rows bundles the protection sweeps and the voltage-scaling grid.
type Fig13Rows struct {
	PlannerAD    []experiments.ProtectionPoint
	ControllerAD []experiments.ProtectionPoint
	PlannerWR    []experiments.ProtectionPoint
	Ablation     []experiments.ProtectionPoint
	VS           []experiments.VSPoint
}

func runFig13(e *experiments.Env, opt experiments.Options) Result {
	pl, ctl := experiments.Fig13AD(e, opt)
	rows := Fig13Rows{
		PlannerAD:    pl,
		ControllerAD: ctl,
		PlannerWR:    experiments.Fig13WR(e, opt),
		Ablation:     experiments.Fig13AblationPlanner(e, opt),
		VS:           experiments.Fig13VS(e, opt),
	}
	return Result{Rows: rows, Render: func(w io.Writer) {
		renderProt(w, "Fig 13(a): AD on planner", rows.PlannerAD)
		renderProt(w, "Fig 13(b): AD on controller", rows.ControllerAD)
		renderProt(w, "Fig 13(c): WR on planner", rows.PlannerWR)
		renderProt(w, "Fig 13(e): AD+WR ablation", rows.Ablation)
		fmt.Fprintln(w, "Fig 13(d)/(f): voltage scaling")
		for _, p := range rows.VS {
			fmt.Fprintf(w, "  %-7s AD=%-5v policy=%-6s success %5.1f%%  Veff %.3f  E %.2f J\n",
				p.Task, p.AD, p.Policy, p.SuccessRate*100, p.EffectiveVoltage, p.EnergyJ)
		}
	}}
}

func renderProt(w io.Writer, title string, pts []experiments.ProtectionPoint) {
	fmt.Fprintln(w, title)
	for _, p := range pts {
		fmt.Fprintf(w, "  %-7s %-5s BER %.1e success %5.1f%% steps %6.0f\n",
			p.Task, p.Protection, p.BER, p.SuccessRate*100, p.AvgSteps)
	}
}

// Fig14Rows bundles predictor training, the oracle proxy and the runtime
// tracking trace.
type Fig14Rows struct {
	Predictor experiments.PredictorResult
	OracleR2  float64
	Tracking  []experiments.TrackingPoint
}

func runFig14(e *experiments.Env, opt experiments.Options) Result {
	rows := Fig14Rows{
		Predictor: e.Fig14PredictorCached(opt, experiments.QuickPredictorScale()),
		OracleR2:  experiments.OracleR2(opt, 0.34, 2000),
		Tracking:  experiments.Fig14Tracking(opt, 200, policy.Default.Func()),
	}
	return Result{Rows: rows, Render: func(w io.Writer) {
		res := rows.Predictor
		fmt.Fprintf(w, "Fig 14(a): predictor %d params, %d frames, %d epochs -> test MSE %.3f, R^2 %.3f\n",
			res.ParamCount, res.TrainFrames, res.Epochs, res.TestMSE, res.R2)
		fmt.Fprintf(w, "  (noisy-oracle proxy used in task sims: R^2 %.3f)\n", rows.OracleR2)
		fmt.Fprintln(w, "Fig 14(b): runtime tracking (every 20th step)")
		for _, p := range rows.Tracking {
			if p.Step%20 == 0 {
				fmt.Fprintf(w, "  step %3d true %.2f pred %.2f -> %.2f V\n", p.Step, p.Entropy, p.Predicted, p.Voltage)
			}
		}
	}}
}

func runFig15(e *experiments.Env, opt experiments.Options) Result {
	rows := experiments.Fig15Interval(e, opt)
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 15: voltage update interval")
		for _, p := range rows {
			fmt.Fprintf(w, "  %-7s interval %2d success %5.1f%% energy %.2f J\n",
				p.Task, p.Interval, p.SuccessRate*100, p.EnergyJ)
		}
	}}
}

// Fig16Rows pairs the fixed-supply reliability grid with the
// minimal-voltage efficiency sweep.
type Fig16Rows struct {
	Reliability []experiments.OverallPoint
	Efficiency  []experiments.EfficiencyPoint
}

func runFig16(e *experiments.Env, opt experiments.Options) Result {
	rows := Fig16Rows{
		Reliability: experiments.Fig16Reliability(e, opt),
		Efficiency:  experiments.Fig16Efficiency(e, opt),
	}
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 16(a): reliability at 0.75 V")
		for _, p := range rows.Reliability {
			fmt.Fprintf(w, "  %-9s %-9s success %5.1f%% steps %6.0f energy %.2f J\n",
				p.Task, p.Config, p.SuccessRate*100, p.AvgSteps, p.EnergyJ)
		}
		fmt.Fprintln(w, "Fig 16(b): minimal-voltage efficiency")
		for _, p := range rows.Efficiency {
			fmt.Fprintf(w, "  %-9s %-9s Vmin %.3f energy %.2f J saving %5.1f%%\n",
				p.Task, p.Config, p.MinVoltage, p.EnergyJ, p.SavingVsNominal*100)
		}
		for _, cfgName := range experiments.Fig16Configs {
			fmt.Fprintf(w, "  average saving %-9s: %5.1f%%\n", cfgName, experiments.AverageSaving(rows.Efficiency, cfgName)*100)
		}
	}}
}

func runFig17(e *experiments.Env, opt experiments.Options) Result {
	rows := experiments.Fig17CrossPlatform(e, opt)
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 17: cross-platform savings")
		for _, p := range rows {
			fmt.Fprintf(w, "  %-20s %-9s success %5.1f%% saving %5.1f%%\n",
				p.Platform, p.Task, p.SuccessRate*100, p.Saving*100)
		}
		fmt.Fprintf(w, "  planner average (AD+WR): %.1f%%\n",
			experiments.AverageSavingByClass(rows, platforms.PlannerClass)*100)
		fmt.Fprintf(w, "  controller average (AD+VS): %.1f%%\n",
			experiments.AverageSavingByClass(rows, platforms.ControllerClass)*100)
	}}
}

// Fig18Rows pairs the chip-level rows with the battery-life range.
type Fig18Rows struct {
	Chip                    []experiments.ChipEnergyRow
	BatteryLow, BatteryHigh float64
}

func runFig18(e *experiments.Env, opt experiments.Options) Result {
	pts := experiments.Fig17CrossPlatform(e, opt)
	pAvg := experiments.AverageSavingByClass(pts, platforms.PlannerClass)
	cAvg := experiments.AverageSavingByClass(pts, platforms.ControllerClass)
	chip := experiments.Fig18ChipEnergy(e.Power, pAvg, cAvg)
	var chipAvg float64
	for _, r := range chip {
		chipAvg += r.ChipSaving
	}
	chipAvg /= float64(len(chip))
	lo, hi := experiments.BatteryLifeRange(chipAvg)
	rows := Fig18Rows{Chip: chip, BatteryLow: lo, BatteryHigh: hi}
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 18: chip-level energy breakdown")
		for _, r := range rows.Chip {
			fmt.Fprintf(w, "  %-20s compute share %5.1f%% -> chip saving %5.1f%%\n",
				r.Model, r.ComputeShare*100, r.ChipSaving*100)
		}
		fmt.Fprintf(w, "  battery life extension: %.0f%% to %.0f%%\n", rows.BatteryLow*100, rows.BatteryHigh*100)
	}}
}

func runFig19(e *experiments.Env, opt experiments.Options) Result {
	rows := experiments.Fig19ErrorModels(e, opt)
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 19: uniform vs hardware error model (wooden)")
		for _, p := range rows {
			fmt.Fprintf(w, "  %-10s %-8s BER %.1e success %5.1f%%\n", p.Target, p.Model, p.BER, p.SuccessRate*100)
		}
	}}
}

func runFig20(e *experiments.Env, opt experiments.Options) Result {
	rows := experiments.Fig20Baselines(e, opt)
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 20: comparison with existing techniques")
		for _, p := range rows {
			fmt.Fprintf(w, "  %-12s %-7s %.2f V success %5.1f%% energy %7.2f J\n",
				p.Technique, p.Task, p.Voltage, p.SuccessRate*100, p.EnergyJ)
		}
	}}
}

func runFig21(_ *experiments.Env, _ experiments.Options) Result {
	rows := experiments.Fig21Policies()
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Fig 21: entropy-to-voltage mapping policies")
		for _, m := range rows {
			fmt.Fprintf(w, "  policy %s:", m.Name)
			for _, l := range m.Levels {
				fmt.Fprintf(w, "  H>=%.1f -> %.2f V", l.MinEntropy, l.Voltage)
			}
			fmt.Fprintln(w)
		}
	}}
}

func runTable2(_ *experiments.Env, _ experiments.Options) Result {
	rows := experiments.Table2LDO()
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Table 2: LDO specifications")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-12s %s\n", r.Name, r.Value)
		}
	}}
}

func runTable3(_ *experiments.Env, _ experiments.Options) Result {
	rows := experiments.Table3Accelerator()
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Table 3: accelerator performance (our cycle model)")
		fmt.Fprintf(w, "  peak           %.1f TOPS/tile\n", rows.PeakTOPS)
		fmt.Fprintf(w, "  planner        %.2e MACs  latency %.2f ms\n", rows.PlannerMACs, rows.PlannerLatencyMS)
		fmt.Fprintf(w, "  controller     %.2e MACs  latency %.0f us\n", rows.ControllerMACs, rows.ControllerLatencyUS)
		fmt.Fprintf(w, "  predictor      %.2e MACs  latency %.2f us\n", rows.PredictorMACs, rows.PredictorLatencyUS)
		fmt.Fprintf(w, "  switching      %.0f ns\n", rows.SwitchingLatencyNS)
	}}
}

func runTable4(_ *experiments.Env, _ experiments.Options) Result {
	rows := experiments.Table4Models()
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Table 4: model parameters and ops")
		for _, r := range rows {
			fmt.Fprintf(w, "  %-20s %9.1f M params %9.1f GOps\n", r.Name, r.ParamsM, r.GOps)
		}
	}}
}

func runTable5(e *experiments.Env, opt experiments.Options) Result {
	rows := experiments.Table5Repetitions(e, opt)
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Table 5: success rate vs repetitions (wooden, BER 1e-7)")
		for _, r := range rows {
			fmt.Fprintf(w, "  n=%3d success %5.1f%% (95%% CI +-%.1f%%)\n", r.Repetitions, r.SuccessRate*100, r.CI95*100)
		}
	}}
}

func runTable6(e *experiments.Env, opt experiments.Options) Result {
	rows := experiments.Table6Quantization(e, opt)
	return Result{Rows: rows, Render: func(w io.Writer) {
		fmt.Fprintln(w, "Table 6: INT8 vs INT4 under AD+WR (stone)")
		for _, r := range rows {
			fmt.Fprintf(w, "  INT%d BER %.0e success %5.1f%%\n", int(r.Bits), r.BER, r.SuccessRate*100)
		}
	}}
}

package registry

import (
	"bytes"
	"strings"
	"testing"

	"github.com/embodiedai/create/internal/obs"
)

func TestCostTableObserveAndPointCost(t *testing.T) {
	var nilTable *CostTable
	if got := nilTable.PointCost("fig19"); got != 1 {
		t.Fatalf("nil table cost = %v, want neutral 1", got)
	}
	nilTable.Observe("fig19", 10, 5) // must not panic

	ct := NewCostTable()
	if got := ct.PointCost("fig19"); got != 1 {
		t.Fatalf("empty table cost = %v, want 1", got)
	}
	ct.DefaultSeconds = 0.25
	if got := ct.PointCost("fig19"); got != 0.25 {
		t.Fatalf("default cost = %v, want 0.25", got)
	}
	ct.Observe("fig19", 10, 25)
	if got := ct.PointCost("fig19"); got != 2.5 {
		t.Fatalf("observed cost = %v, want 2.5", got)
	}
	// A second observation folds into the running mean: 50s / 20 points.
	ct.Observe("fig19", 10, 25)
	if got := ct.PointCost("fig19"); got != 2.5 {
		t.Fatalf("mean cost = %v, want 2.5", got)
	}
	// Degenerate records carry no signal.
	ct.Observe("fig19", 0, 99)
	ct.Observe("fig19", 5, 0)
	ct.Observe("", 5, 5)
	if got := ct.PointCost("fig19"); got != 2.5 {
		t.Fatalf("degenerate observations moved the mean: %v", got)
	}
}

func TestCostTableHarvestTimings(t *testing.T) {
	ct := NewCostTable()
	ct.Harvest([]obs.JobTiming{
		{Experiment: "fig16", ComputedPoints: 4, ComputeSeconds: 8},
		{Experiment: "fig16", ComputedPoints: 4, ComputeSeconds: 8},
		{Experiment: "fig19", ComputedPoints: 10, ComputeSeconds: 1},
		{Experiment: "canceled", ComputedPoints: 0, ComputeSeconds: 0},
	})
	if got := ct.PointCost("fig16"); got != 2 {
		t.Fatalf("fig16 cost = %v, want 2", got)
	}
	if got := ct.PointCost("fig19"); got != 0.1 {
		t.Fatalf("fig19 cost = %v, want 0.1", got)
	}
	if got := ct.Experiments(); len(got) != 2 || got[0] != "fig16" || got[1] != "fig19" {
		t.Fatalf("experiments = %v", got)
	}
}

func TestCostTableJSONRoundTrip(t *testing.T) {
	ct := NewCostTable()
	ct.Observe("fig16", 4, 8)
	var buf bytes.Buffer
	if err := ct.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCostTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.PointCost("fig16"); got != 2 {
		t.Fatalf("round-tripped cost = %v, want 2", got)
	}
	// A loaded table keeps averaging against its seeded mean.
	back.Observe("fig16", 1, 4)
	if got := back.PointCost("fig16"); got != 3 {
		t.Fatalf("post-load mean = %v, want (2+4)/2 = 3", got)
	}
}

func TestReadCostTableAcceptsTimingArray(t *testing.T) {
	in := `[{"experiment":"fig13","computed_points":5,"compute_seconds":10}]`
	ct, err := ReadCostTable(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := ct.PointCost("fig13"); got != 2 {
		t.Fatalf("harvested cost = %v, want 2", got)
	}
	if _, err := ReadCostTable(strings.NewReader("[1,2,3]")); err == nil {
		t.Fatal("garbage array accepted")
	}
	if _, err := ReadCostTable(strings.NewReader("not json")); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

package registry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"github.com/embodiedai/create/internal/obs"
)

// CostTable holds observed per-grid-point compute cost by experiment, the
// feedback signal cost-aware shard planning weighs shards with. Costs are
// harvested from obs.JobTiming records (ComputeSeconds over ComputedPoints
// — exactly what the serving tier exports at /v1/jobs/{id}/timing and the
// coordinator's runners observe in-process), so a fleet's schedule adapts
// to the measured heterogeneity of its experiments instead of assuming
// every point costs the same.
//
// The table only ever influences *scheduling order and weights*: given the
// same table, plans are deterministic, and because merges are
// content-addressed and order-independent, any table — including none —
// produces byte-identical merged results.
type CostTable struct {
	// SecondsPerPoint is the mean observed compute cost of one grid point,
	// keyed by experiment name. It is the table's serialized form.
	SecondsPerPoint map[string]float64 `json:"seconds_per_point"`
	// DefaultSeconds is the fallback cost for experiments without an
	// observation (0 means use the neutral cost 1, which degrades
	// weighting to raw point counts).
	DefaultSeconds float64 `json:"default_seconds,omitempty"`

	mu           sync.Mutex
	totalSeconds map[string]float64
	totalPoints  map[string]int64
}

// NewCostTable returns an empty table ready to Observe into.
func NewCostTable() *CostTable {
	return &CostTable{SecondsPerPoint: map[string]float64{}}
}

// Observe folds one measurement — points grid points computed in seconds —
// into the experiment's running mean. Records with nothing computed or a
// non-positive duration carry no cost signal and are ignored. Safe for
// concurrent use (runners observe from shard goroutines).
func (t *CostTable) Observe(experiment string, points int, seconds float64) {
	if t == nil || experiment == "" || points <= 0 || seconds <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.totalSeconds == nil {
		t.totalSeconds = map[string]float64{}
		t.totalPoints = map[string]int64{}
	}
	t.totalSeconds[experiment] += seconds
	t.totalPoints[experiment] += int64(points)
	if t.SecondsPerPoint == nil {
		t.SecondsPerPoint = map[string]float64{}
	}
	t.SecondsPerPoint[experiment] = t.totalSeconds[experiment] / float64(t.totalPoints[experiment])
}

// Harvest folds a batch of job timing records into the table.
func (t *CostTable) Harvest(recs []obs.JobTiming) {
	for _, r := range recs {
		t.Observe(r.Experiment, r.ComputedPoints, r.ComputeSeconds)
	}
}

// PointCost returns the seconds one grid point of the experiment is
// expected to cost: the observed mean, else DefaultSeconds, else the
// neutral cost 1 (under which cost weighting reduces to point counting).
// A nil table is the neutral table.
func (t *CostTable) PointCost(experiment string) float64 {
	if t == nil {
		return 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.SecondsPerPoint[experiment]; ok && v > 0 {
		return v
	}
	if t.DefaultSeconds > 0 {
		return t.DefaultSeconds
	}
	return 1
}

// Experiments returns the experiment names with observed costs, sorted —
// the deterministic iteration order for rendering or serializing.
func (t *CostTable) Experiments() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.SecondsPerPoint))
	for n := range t.SecondsPerPoint {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON serializes the table (its SecondsPerPoint form) to w.
func (t *CostTable) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	out := struct {
		SecondsPerPoint map[string]float64 `json:"seconds_per_point"`
		DefaultSeconds  float64            `json:"default_seconds,omitempty"`
	}{SecondsPerPoint: t.SecondsPerPoint, DefaultSeconds: t.DefaultSeconds}
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadCostTable parses a cost table from r. Two shapes are accepted: the
// table's own serialized form ({"seconds_per_point": {...}}), and a JSON
// array of obs.JobTiming records (the serving tier's timing export), which
// is harvested into a fresh table.
func ReadCostTable(r io.Reader) (*CostTable, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var recs []obs.JobTiming
	if err := json.Unmarshal(raw, &recs); err == nil {
		t := NewCostTable()
		t.Harvest(recs)
		return t, nil
	}
	var t CostTable
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("cost table: neither a seconds_per_point table nor a timing-record array: %w", err)
	}
	if t.SecondsPerPoint == nil {
		t.SecondsPerPoint = map[string]float64{}
	}
	// Seed the running totals so later Observe calls average against the
	// loaded means (each counted as one point's worth of evidence).
	t.totalSeconds = map[string]float64{}
	t.totalPoints = map[string]int64{}
	for n, v := range t.SecondsPerPoint {
		t.totalSeconds[n] = v
		t.totalPoints[n] = 1
	}
	return &t, nil
}

// LoadCostTable reads a cost table from a file via ReadCostTable.
func LoadCostTable(path string) (*CostTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCostTable(f)
}

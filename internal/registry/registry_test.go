package registry

import (
	"bytes"
	"strings"
	"testing"

	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/experiments"
)

func testOptions() experiments.Options { return experiments.Options{Trials: 3, Seed: 2026} }

func TestRegistryCoversEveryExperiment(t *testing.T) {
	names := Names()
	if len(names) != 23 {
		t.Fatalf("registry lists %d experiments, want 23 (fig1..fig21 + table2..table6)", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate registration %q", n)
		}
		seen[n] = true
		d, ok := Lookup(n)
		if !ok || d.Name != n {
			t.Fatalf("Lookup(%q) failed", n)
		}
		if d.Run == nil || d.Title == "" {
			t.Fatalf("%s: incomplete descriptor", n)
		}
	}
	if _, ok := Lookup("fig99"); ok {
		t.Fatal("Lookup invented an experiment")
	}
}

// TestPointsEnumerationMatchesRuns is the anti-drift gate between the
// runners and the planning enumerators: for every experiment with a cached
// grid, running against a fresh store must (a) compute each unique point at
// most once, (b) leave every computed point inside the enumerated set, and
// (c) for static grids, compute exactly the enumerated set. A divergence
// here means a runner's config and its fingerprint were edited apart.
func TestPointsEnumerationMatchesRuns(t *testing.T) {
	opt := testOptions()
	// fig5/fig7 are skipped only for their uncached panels' runtime (their
	// cached sweeps are the same job builders fig1/fig6 exercise); fig18
	// shares fig17's point set by construction.
	for _, name := range []string{"fig1", "fig6", "fig13", "fig15", "fig16", "fig17", "fig19", "fig20", "table6"} {
		name := name
		t.Run(name, func(t *testing.T) {
			d, ok := Lookup(name)
			if !ok || d.Points == nil {
				t.Fatalf("%s: no cached grid registered", name)
			}
			e := experiments.NewEnv()
			store, err := cache.New("")
			if err != nil {
				t.Fatal(err)
			}
			e.Cache = store

			d.Run(e, opt)
			if got, want := store.Misses(), int64(store.Len()); got != want {
				t.Fatalf("%d misses for %d unique points: some point was computed twice", got, want)
			}

			pts := d.Points(e, opt)
			unique := map[string]bool{}
			resident := 0
			for _, p := range pts {
				key := p.Key()
				if unique[key] {
					continue
				}
				unique[key] = true
				if store.Contains(p) {
					resident++
				}
			}
			// Every resident point is enumerated (computed set is a subset
			// of the enumeration)...
			if resident != store.Len() {
				t.Fatalf("run computed %d points but only %d are enumerated: the enumerator is missing configs",
					store.Len(), resident)
			}
			// ...and static grids are enumerated exactly.
			if !d.Dynamic && len(unique) != store.Len() {
				t.Fatalf("static grid enumerates %d points but the run computed %d", len(unique), store.Len())
			}
		})
	}
}

// TestShardedEnumerationPartitionsTheGrid: for every experiment with a
// cached grid, the per-shard enumerations union to exactly the unsharded
// enumeration — so a sharded job's plan counts only its own points, and
// the shards' plans jointly cover the figure. Pure enumeration, no runs.
func TestShardedEnumerationPartitionsTheGrid(t *testing.T) {
	opt := testOptions()
	const numShards = 3
	e := experiments.NewEnv()
	for _, d := range All() {
		if d.Points == nil {
			continue
		}
		full := map[string]bool{}
		for _, p := range d.Points(e, opt) {
			full[p.Key()] = true
		}
		union := map[string]bool{}
		for k := 0; k < numShards; k++ {
			so := opt
			so.Shard, so.NumShards = k, numShards
			for _, p := range d.Points(e, so) {
				key := p.Key()
				if !full[key] {
					t.Fatalf("%s: shard %d enumerated a point outside the unsharded grid", d.Name, k)
				}
				union[key] = true
			}
		}
		if len(union) != len(full) {
			t.Fatalf("%s: shards enumerate %d of %d unique points", d.Name, len(union), len(full))
		}
	}
}

// TestShardedPlanMatchesShardedRun: a sharded run computes exactly its
// shard's enumerated points (static grid), so the surfaced plan and the
// job's cache accounting agree.
func TestShardedPlanMatchesShardedRun(t *testing.T) {
	opt := testOptions()
	opt.Shard, opt.NumShards = 1, 3
	d, _ := Lookup("fig19")
	e := experiments.NewEnv()
	store, _ := cache.New("")
	e.Cache = store

	plan := PlanFor(d, e, opt)
	d.Run(e, opt)
	if int(store.Misses()) != plan.ToCompute {
		t.Fatalf("shard plan predicted %d points, run computed %d", plan.ToCompute, store.Misses())
	}
	if warm := PlanFor(d, e, opt); !warm.Free() {
		t.Fatalf("sharded replay should plan free: %+v", warm)
	}
}

// TestPlanPredictsRun: an empty store plans everything as to-compute; after
// the run the same plan reports the figure as free, and a replay driven by
// that prediction recomputes nothing.
func TestPlanPredictsRun(t *testing.T) {
	opt := testOptions()
	d, _ := Lookup("fig19")
	e := experiments.NewEnv()
	store, _ := cache.New("")
	e.Cache = store

	cold := PlanFor(d, e, opt)
	if cold.GridPoints == 0 || cold.ToCompute != cold.GridPoints || cold.Cached != 0 {
		t.Fatalf("cold plan implausible: %+v", cold)
	}
	if cold.Free() {
		t.Fatal("cold plan cannot be free")
	}
	// Planning must not perturb accounting.
	if store.Hits() != 0 || store.Misses() != 0 {
		t.Fatalf("planning touched accounting: %d/%d", store.Hits(), store.Misses())
	}

	d.Run(e, opt)
	warm := PlanFor(d, e, opt)
	if warm.ToCompute != 0 || warm.Cached != warm.GridPoints || !warm.Free() {
		t.Fatalf("warm plan should be free: %+v", warm)
	}

	// Uncached experiments are never free, even with no grid to compute.
	d5, _ := Lookup("table5")
	if p := PlanFor(d5, e, opt); p.Free() {
		t.Fatalf("uncached experiment planned as free: %+v", p)
	}
}

// TestRenderIsDeterministic: a Result renders the same bytes every time —
// the property the service relies on to serve cached renders.
func TestRenderIsDeterministic(t *testing.T) {
	opt := testOptions()
	d, _ := Lookup("fig15")
	e := experiments.NewEnv()
	store, _ := cache.New("")
	e.Cache = store
	res := d.Run(e, opt)

	var a, b bytes.Buffer
	res.Render(&a)
	res.Render(&b)
	if a.Len() == 0 {
		t.Fatal("renderer produced nothing")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-rendering a Result changed its bytes")
	}
	if !strings.Contains(a.String(), "Fig 15") {
		t.Fatalf("unexpected render: %q", a.String())
	}

	// A second Run served from cache renders byte-identically.
	res2 := d.Run(e, opt)
	var c bytes.Buffer
	res2.Render(&c)
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("cache-served run rendered different bytes")
	}
}

// TestShardPlanForKeyManifest: the key manifest ShardPlanFor returns is
// the plan itself in address form — one key per counted grid point, and
// the per-shard manifests union to exactly the unsharded manifest. This
// is the contract the dispatch tier ships between coordinator and
// workers.
func TestShardPlanForKeyManifest(t *testing.T) {
	opt := testOptions()
	e := experiments.NewEnv()
	const numShards = 3
	for _, name := range []string{"fig16", "fig19", "table6"} {
		d, _ := Lookup(name)
		full, fullKeys := ShardPlanFor(d, e, opt)
		if len(fullKeys) != full.GridPoints {
			t.Fatalf("%s: %d keys for %d grid points", name, len(fullKeys), full.GridPoints)
		}
		fullSet := map[string]bool{}
		for _, k := range fullKeys {
			if fullSet[k] {
				t.Fatalf("%s: duplicate key in manifest", name)
			}
			fullSet[k] = true
		}
		union := map[string]bool{}
		for k := 0; k < numShards; k++ {
			so := opt
			so.Shard, so.NumShards = k, numShards
			p, keys := ShardPlanFor(d, e, so)
			if len(keys) != p.GridPoints {
				t.Fatalf("%s shard %d: %d keys for %d grid points", name, k, len(keys), p.GridPoints)
			}
			for _, key := range keys {
				if !fullSet[key] {
					t.Fatalf("%s shard %d: key outside the unsharded manifest", name, k)
				}
				union[key] = true
			}
		}
		if len(union) != len(fullSet) {
			t.Fatalf("%s: shard manifests cover %d of %d keys", name, len(union), len(fullSet))
		}
	}
}

package experiments

import (
	"math"
	"math/rand"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/platforms"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// ---------------------------------------------------------------------------
// Figure 17: cross-platform generality.
//
// Planner savings (AD+WR) are evaluated on JARVIS-1 (Minecraft episodes),
// OpenVLA (LIBERO) and RoboFlamingo (CALVIN); controller savings (AD+VS) on
// JARVIS-1, Octo and RT-1 (OXE). LIBERO/CALVIN/OXE episodes are abstract
// phase/step models (see platforms.CrossTask) driven by the same fault
// models; what transfers is the workload shape from Table 4.

// CrossPoint is one (platform, task) energy-saving sample.
type CrossPoint struct {
	Platform    string
	Task        string
	Class       platforms.Class
	SuccessRate float64
	// Saving is the computational energy saving at the lowest
	// quality-preserving voltage versus nominal operation.
	Saving float64
}

// Fig17CrossPlatform evaluates energy savings across all platforms and
// tasks (Fig. 17: planners average ~50 % with AD+WR, controllers ~40 % with
// AD+VS).
func Fig17CrossPlatform(e *Env, opt Options) []CrossPoint {
	var out []CrossPoint

	// JARVIS-1 rows reuse the Minecraft pipeline.
	for _, task := range []world.TaskName{world.TaskWooden, world.TaskStone} {
		out = append(out, e.jarvisPlannerPoint(task, opt))
	}
	for _, task := range []world.TaskName{world.TaskCharcoal, world.TaskChicken} {
		out = append(out, e.jarvisControllerPoint(task, opt))
	}

	// Cross-platform rows run the abstract manipulation episodes.
	for _, pair := range []struct {
		spec  platforms.Spec
		tasks []platforms.CrossTask
	}{
		{platforms.OpenVLA, platforms.LIBEROTasks},
		{platforms.RoboFlamingo, platforms.CALVINTasks},
	} {
		fm := pair.spec.FaultModel()
		for _, task := range pair.tasks {
			out = append(out, crossPlannerPoint(e, fm, pair.spec, task, opt))
		}
	}
	for _, pair := range []struct {
		spec  platforms.Spec
		tasks []platforms.CrossTask
	}{
		{platforms.Octo, platforms.OXEControllerTasks[:3]},
		{platforms.RT1, platforms.OXEControllerTasks[3:]},
	} {
		fm := pair.spec.FaultModel()
		for _, task := range pair.tasks {
			out = append(out, crossControllerPoint(e, fm, pair.spec, task, opt))
		}
	}
	return out
}

// jarvisPlannerPoint finds the planner's minimal AD+WR voltage on a
// Minecraft task and reports the saving.
func (e *Env) jarvisPlannerPoint(task world.TaskName, opt Options) CrossPoint {
	prot := bridge.Protection{AD: true, WR: true}
	clean := e.runTaskCached(task, agent.Config{UniformBER: 0}, opt, "", "")
	target := clean.SuccessRate * 0.9
	best := timing.VNominal
	var bestRate float64 = clean.SuccessRate
	for v := 0.88; v >= 0.60; v -= 0.02 {
		cfg := agent.Config{
			Planner: e.Planner, PlannerProt: prot,
			UniformBER: agent.VoltageMode, Timing: e.Timing, PlannerVoltage: v,
		}
		s := e.runTaskCached(task, cfg, opt, "", "")
		if s.SuccessRate < target {
			break
		}
		best, bestRate = v, s.SuccessRate
	}
	return CrossPoint{
		Platform: platforms.JARVIS1Planner.Name, Task: string(task),
		Class: platforms.PlannerClass, SuccessRate: bestRate,
		Saving: 1 - (best/timing.VNominal)*(best/timing.VNominal),
	}
}

// jarvisControllerPoint runs AD+VS on a Minecraft task.
func (e *Env) jarvisControllerPoint(task world.TaskName, opt Options) CrossPoint {
	cfg := agent.Config{
		Controller: e.Controller, ControlProt: bridge.Protection{AD: true},
		UniformBER: agent.VoltageMode, Timing: e.Timing,
		VSPolicy: policy.PolicyF.Func(),
	}
	s := e.runTaskCached(task, cfg, opt, policy.PolicyF.Name, "")
	veff := e.Power.EffectiveVoltage(s.StepsAtMV)
	return CrossPoint{
		Platform: platforms.JARVIS1Controller.Name, Task: string(task),
		Class: platforms.ControllerClass, SuccessRate: s.SuccessRate,
		Saving: 1 - (veff/timing.VNominal)*(veff/timing.VNominal),
	}
}

// crossPlannerPoint evaluates AD+WR on an abstract manipulation task: the
// planner decomposes the instruction into phases; a corrupted phase forces
// a re-plan; the episode fails after too many re-plans.
func crossPlannerPoint(e *Env, fm *bridge.FaultModel, spec platforms.Spec,
	task platforms.CrossTask, opt Options) CrossPoint {
	prot := bridge.Protection{AD: true, WR: true}
	best := timing.VNominal
	bestRate := 1.0
	for v := 0.88; v >= 0.60; v -= 0.02 {
		rate := crossPlannerSuccess(e, fm, prot, task, v, opt)
		if rate < 0.9 {
			break
		}
		best, bestRate = v, rate
	}
	return CrossPoint{
		Platform: spec.Name, Task: task.Name, Class: platforms.PlannerClass,
		SuccessRate: bestRate,
		Saving:      1 - (best/timing.VNominal)*(best/timing.VNominal),
	}
}

func crossPlannerSuccess(e *Env, fm *bridge.FaultModel, prot bridge.Protection,
	task platforms.CrossTask, v float64, opt Options) float64 {
	pCorrupt := fm.CorruptProbAtVoltage(e.Timing, v, prot)
	rng := rand.New(rand.NewSource(opt.Seed))
	success := 0
	for t := 0; t < opt.Trials; t++ {
		replans := 0
		phase := 0
		for phase < task.Phases && replans <= 3 {
			if rng.Float64() < pCorrupt {
				replans++ // corrupted instruction wastes the phase budget
				continue
			}
			phase++
		}
		if phase >= task.Phases {
			success++
		}
	}
	return float64(success) / float64(opt.Trials)
}

// crossControllerPoint evaluates AD+VS on an abstract manipulation task:
// steps alternate between approach (high entropy) and precision segments
// (low entropy); corrupted precision steps repeat the segment.
func crossControllerPoint(e *Env, fm *bridge.FaultModel, spec platforms.Spec,
	task platforms.CrossTask, opt Options) CrossPoint {
	prot := bridge.Protection{AD: true}
	vs := policy.PolicyF
	rng := rand.New(rand.NewSource(opt.Seed))
	success := 0
	var weightedV2, stepsTotal float64
	for t := 0; t < opt.Trials; t++ {
		steps := 0
		ok := true
		for ph := 0; ph < task.Phases && ok; ph++ {
			// Approach segment: high entropy, tolerant.
			for i := 0; i < task.StepsPerPhase/2; i++ {
				v := vs.Voltage(3.5)
				weightedV2 += v * v
				stepsTotal++
				steps++
			}
			// Precision segment: low entropy, corruption repeats progress.
			remaining := task.StepsPerPhase / 2
			for remaining > 0 {
				v := vs.Voltage(0.3)
				q := fm.CorruptProbAtVoltage(e.Timing, v, prot)
				weightedV2 += v * v
				stepsTotal++
				steps++
				if steps > task.Phases*task.StepsPerPhase*6 {
					ok = false
					break
				}
				if rng.Float64() < q {
					remaining = task.StepsPerPhase / 2 // segment restarts
					continue
				}
				remaining--
			}
		}
		if ok {
			success++
		}
	}
	veff := timing.VNominal
	if stepsTotal > 0 {
		veff = math.Sqrt(weightedV2 / stepsTotal)
	}
	return CrossPoint{
		Platform: spec.Name, Task: task.Name, Class: platforms.ControllerClass,
		SuccessRate: float64(success) / float64(opt.Trials),
		Saving:      1 - (veff/timing.VNominal)*(veff/timing.VNominal),
	}
}

// AverageSavingByClass aggregates Fig. 17 rows.
func AverageSavingByClass(pts []CrossPoint, class platforms.Class) float64 {
	var sum float64
	n := 0
	for _, p := range pts {
		if p.Class == class {
			sum += p.Saving
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

package experiments

import (
	"fmt"
	"math/rand"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/platforms"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// ---------------------------------------------------------------------------
// Figure 17: cross-platform generality.
//
// Planner savings (AD+WR) are evaluated on JARVIS-1 (Minecraft episodes),
// OpenVLA (LIBERO) and RoboFlamingo (CALVIN); controller savings (AD+VS) on
// JARVIS-1, Octo and RT-1 (OXE). LIBERO/CALVIN/OXE episodes are abstract
// phase/step models (see platforms.CrossTask) driven by the same fault
// models; what transfers is the workload shape from Table 4.

// CrossPoint is one (platform, task) energy-saving sample.
type CrossPoint struct {
	Platform    string
	Task        string
	Class       platforms.Class
	SuccessRate float64
	// Saving is the computational energy saving at the lowest
	// quality-preserving voltage versus nominal operation.
	Saving float64
}

// plannerDescentVoltages is the shared minimal-voltage search grid. The
// runner and the cache-planning enumerator must iterate the exact same
// floats (the fingerprint embeds them), so the descending loop lives in one
// place.
func plannerDescentVoltages() []float64 {
	var out []float64
	for v := 0.88; v >= 0.60; v -= 0.02 {
		out = append(out, v)
	}
	return out
}

// crossPlatformPairs are the abstract-episode platform/task groups of
// Fig. 17, in row order.
var crossPlannerPairs = []struct {
	Spec  platforms.Spec
	Tasks []platforms.CrossTask
}{
	{platforms.OpenVLA, platforms.LIBEROTasks},
	{platforms.RoboFlamingo, platforms.CALVINTasks},
}

var crossControllerPairs = []struct {
	Spec  platforms.Spec
	Tasks []platforms.CrossTask
}{
	{platforms.Octo, platforms.OXEControllerTasks[:3]},
	{platforms.RT1, platforms.OXEControllerTasks[3:]},
}

// jarvisPlannerTasks and jarvisControllerTasks are the Minecraft rows.
var (
	jarvisPlannerTasks    = []world.TaskName{world.TaskWooden, world.TaskStone}
	jarvisControllerTasks = []world.TaskName{world.TaskCharcoal, world.TaskChicken}
)

// Fig17CrossPlatform evaluates energy savings across all platforms and
// tasks (Fig. 17: planners average ~50 % with AD+WR, controllers ~40 % with
// AD+VS). Rows shard at (platform, task) grain; every Monte-Carlo loop
// behind a row — Minecraft episodes and abstract episodes alike — is served
// through the content-addressed cache.
func Fig17CrossPlatform(e *Env, opt Options) []CrossPoint {
	var out []CrossPoint
	idx := 0
	owns := func() bool {
		ok := opt.owns(idx)
		idx++
		return ok
	}

	// JARVIS-1 rows reuse the Minecraft pipeline.
	for _, task := range jarvisPlannerTasks {
		if owns() {
			out = append(out, e.jarvisPlannerPoint(task, opt))
		}
	}
	for _, task := range jarvisControllerTasks {
		if owns() {
			out = append(out, e.jarvisControllerPoint(task, opt))
		}
	}

	// Cross-platform rows run the abstract manipulation episodes.
	for _, pair := range crossPlannerPairs {
		fm := pair.Spec.FaultModel()
		for _, task := range pair.Tasks {
			if owns() {
				out = append(out, crossPlannerPoint(e, fm, pair.Spec, task, opt))
			}
		}
	}
	for _, pair := range crossControllerPairs {
		fm := pair.Spec.FaultModel()
		for _, task := range pair.Tasks {
			if owns() {
				out = append(out, crossControllerPoint(e, fm, pair.Spec, task, opt))
			}
		}
	}
	return out
}

// jarvisPlannerConfig is the planner's AD+WR voltage-mode configuration at
// supply v, shared by the descent and the fingerprint enumerator.
func (e *Env) jarvisPlannerConfig(v float64) agent.Config {
	return agent.Config{
		Planner:        e.Planner,
		PlannerProt:    bridge.Protection{AD: true, WR: true},
		UniformBER:     agent.VoltageMode,
		Timing:         e.Timing,
		PlannerVoltage: v,
	}
}

// jarvisPlannerPoint finds the planner's minimal AD+WR voltage on a
// Minecraft task and reports the saving.
func (e *Env) jarvisPlannerPoint(task world.TaskName, opt Options) CrossPoint {
	clean := e.runTaskCached(task, agent.Config{UniformBER: 0}, opt, "", "")
	target := clean.SuccessRate * 0.9
	best := timing.VNominal
	var bestRate float64 = clean.SuccessRate
	for _, v := range plannerDescentVoltages() {
		s := e.runTaskCached(task, e.jarvisPlannerConfig(v), opt, "", "")
		if s.SuccessRate < target {
			break
		}
		best, bestRate = v, s.SuccessRate
	}
	return CrossPoint{
		Platform: platforms.JARVIS1Planner.Name, Task: string(task),
		Class: platforms.PlannerClass, SuccessRate: bestRate,
		Saving: 1 - (best/timing.VNominal)*(best/timing.VNominal),
	}
}

// jarvisControllerConfig is the controller's AD+VS configuration, shared by
// the runner and the fingerprint enumerator.
func (e *Env) jarvisControllerConfig() (agent.Config, string) {
	return agent.Config{
		Controller: e.Controller, ControlProt: bridge.Protection{AD: true},
		UniformBER: agent.VoltageMode, Timing: e.Timing,
		VSPolicy: policy.PolicyF.Func(),
		VSLevels: policy.PolicyF.VoltageLevels(),
	}, policy.PolicyF.Name
}

// jarvisControllerPoint runs AD+VS on a Minecraft task.
func (e *Env) jarvisControllerPoint(task world.TaskName, opt Options) CrossPoint {
	cfg, policyID := e.jarvisControllerConfig()
	s := e.runTaskCached(task, cfg, opt, policyID, "")
	veff := e.Power.EffectiveVoltage(s.StepsAtMV)
	return CrossPoint{
		Platform: platforms.JARVIS1Controller.Name, Task: string(task),
		Class: platforms.ControllerClass, SuccessRate: s.SuccessRate,
		Saving: 1 - (veff/timing.VNominal)*(veff/timing.VNominal),
	}
}

// crossPlannerCachePoint fingerprints one abstract planner episode sweep.
// The bespoke loop has no agent.Config to map mechanically, so the override
// names the loop and the task string embeds the episode shape (the phase
// count the loop actually consumes).
func crossPlannerCachePoint(fm *bridge.FaultModel, prot bridge.Protection,
	task platforms.CrossTask, v float64, opt Options) cache.Point {
	return cache.Point{
		Task:        fmt.Sprintf("cross/%s#p%d", task.Name, task.Phases),
		Planner:     fm.ID(),
		PlannerProt: protLabel(prot),
		ErrorModel:  "voltage",
		PlannerV:    v,
		Override:    "cross-planner",
		Trials:      opt.Trials,
		Seed:        opt.Seed,
	}
}

// crossPlannerPoint evaluates AD+WR on an abstract manipulation task: the
// planner decomposes the instruction into phases; a corrupted phase forces
// a re-plan; the episode fails after too many re-plans.
func crossPlannerPoint(e *Env, fm *bridge.FaultModel, spec platforms.Spec,
	task platforms.CrossTask, opt Options) CrossPoint {
	prot := bridge.Protection{AD: true, WR: true}
	best := timing.VNominal
	bestRate := 1.0
	for _, v := range plannerDescentVoltages() {
		rate := crossPlannerSuccess(e, fm, prot, task, v, opt)
		if rate < 0.9 {
			break
		}
		best, bestRate = v, rate
	}
	return CrossPoint{
		Platform: spec.Name, Task: task.Name, Class: platforms.PlannerClass,
		SuccessRate: bestRate,
		Saving:      1 - (best/timing.VNominal)*(best/timing.VNominal),
	}
}

func crossPlannerSuccess(e *Env, fm *bridge.FaultModel, prot bridge.Protection,
	task platforms.CrossTask, v float64, opt Options) float64 {
	compute := func() agent.Summary {
		pCorrupt := fm.CorruptProbAtVoltage(e.Timing, v, prot)
		rng := rand.New(rand.NewSource(opt.Seed))
		success := 0
		for t := 0; t < opt.Trials; t++ {
			replans := 0
			phase := 0
			for phase < task.Phases && replans <= 3 {
				if rng.Float64() < pCorrupt {
					replans++ // corrupted instruction wastes the phase budget
					continue
				}
				phase++
			}
			if phase >= task.Phases {
				success++
			}
		}
		return agent.Summary{Trials: opt.Trials, SuccessRate: float64(success) / float64(opt.Trials)}
	}
	if e.Cache == nil {
		return compute().SuccessRate
	}
	return e.cachedCompute(opt, crossPlannerCachePoint(fm, prot, task, v, opt), compute).SuccessRate
}

// crossControllerCachePoint fingerprints one abstract controller episode
// sweep; the task string embeds both shape parameters the loop consumes.
func crossControllerCachePoint(fm *bridge.FaultModel, task platforms.CrossTask, opt Options) cache.Point {
	return cache.Point{
		Task:        fmt.Sprintf("cross/%s#p%dx%d", task.Name, task.Phases, task.StepsPerPhase),
		Controller:  fm.ID(),
		ControlProt: protLabel(bridge.Protection{AD: true}),
		ErrorModel:  "voltage",
		Policy:      policy.PolicyF.Name,
		Override:    "cross-controller",
		Trials:      opt.Trials,
		Seed:        opt.Seed,
	}
}

// crossControllerPoint evaluates AD+VS on an abstract manipulation task:
// steps alternate between approach (high entropy) and precision segments
// (low entropy); corrupted precision steps repeat the segment.
func crossControllerPoint(e *Env, fm *bridge.FaultModel, spec platforms.Spec,
	task platforms.CrossTask, opt Options) CrossPoint {
	s := e.crossControllerSummary(fm, task, opt)
	veff := e.Power.EffectiveVoltage(s.StepsAtMV)
	return CrossPoint{
		Platform: spec.Name, Task: task.Name, Class: platforms.ControllerClass,
		SuccessRate: s.SuccessRate,
		Saving:      1 - (veff/timing.VNominal)*(veff/timing.VNominal),
	}
}

// crossControllerSummary runs (or replays) the abstract controller episode
// loop, aggregating into the same Summary shape the cache stores: success
// rate plus the per-voltage step histogram the effective-voltage metric is
// derived from. Deriving Veff from the histogram on the compute path too
// keeps computed and replayed rows bit-identical.
func (e *Env) crossControllerSummary(fm *bridge.FaultModel, task platforms.CrossTask, opt Options) agent.Summary {
	compute := func() agent.Summary {
		prot := bridge.Protection{AD: true}
		vs := policy.PolicyF
		rng := rand.New(rand.NewSource(opt.Seed))
		sum := agent.Summary{Trials: opt.Trials, StepsAtMV: make(map[int]int)}
		record := func(v float64) {
			sum.StepsAtMV[int(v*1000+0.5)]++
		}
		// Both segments run at fixed entropies, so the policy voltages — and
		// the precision segment's corruption probability, a pure function of
		// (timing model, voltage, protection) — are loop invariants. Hoisting
		// them out of the trial loop replaces a fault-model composition per
		// precision step with one per sweep, byte-identically.
		vApproach := vs.Voltage(3.5)
		vPrecision := vs.Voltage(0.3)
		q := fm.CorruptProbAtVoltage(e.Timing, vPrecision, prot)
		success := 0
		for t := 0; t < opt.Trials; t++ {
			steps := 0
			ok := true
			for ph := 0; ph < task.Phases && ok; ph++ {
				// Approach segment: high entropy, tolerant.
				for i := 0; i < task.StepsPerPhase/2; i++ {
					record(vApproach)
					steps++
				}
				// Precision segment: low entropy, corruption repeats progress.
				remaining := task.StepsPerPhase / 2
				for remaining > 0 {
					record(vPrecision)
					steps++
					if steps > task.Phases*task.StepsPerPhase*6 {
						ok = false
						break
					}
					if rng.Float64() < q {
						remaining = task.StepsPerPhase / 2 // segment restarts
						continue
					}
					remaining--
				}
			}
			if ok {
				success++
			}
		}
		sum.SuccessRate = float64(success) / float64(opt.Trials)
		return sum
	}
	if e.Cache == nil {
		return compute()
	}
	return e.cachedCompute(opt, crossControllerCachePoint(fm, task, opt), compute)
}

// AverageSavingByClass aggregates Fig. 17 rows.
func AverageSavingByClass(pts []CrossPoint, class platforms.Class) float64 {
	var sum float64
	n := 0
	for _, p := range pts {
		if p.Class == class {
			sum += p.Saving
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

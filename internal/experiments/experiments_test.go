package experiments

import (
	"bytes"
	"math"
	"testing"

	"github.com/embodiedai/create/internal/platforms"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

func tinyOptions() Options { return Options{Trials: 10, Seed: 2026} }

func TestFig1bMonotone(t *testing.T) {
	e := NewEnv()
	pts := Fig1b(e)
	if len(pts) == 0 {
		t.Fatal("empty curve")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Voltage > pts[i-1].Voltage && pts[i].BER > pts[i-1].BER {
			t.Fatal("BER must fall as voltage rises")
		}
	}
}

func TestFig4bLargeErrors(t *testing.T) {
	e := NewEnv()
	r := Fig4b(e, tinyOptions())
	// The Fig. 4(b) observation: timing errors are dominated by
	// large-magnitude high-bit flips that exceed the clean data range.
	if r.LargeErrorFrac < 0.5 {
		t.Fatalf("only %.2f of injected errors were large", r.LargeErrorFrac)
	}
	if r.CleanAbsMax <= 0 {
		t.Fatal("missing clean range")
	}
}

func TestFig5PlannerVsControllerKnees(t *testing.T) {
	e := NewEnv()
	opt := tinyOptions()
	planner := Fig5Planner(e, opt)
	controller := Fig5Controller(e, opt)

	// Insight 1: the controller tolerates orders of magnitude more BER.
	// Find the highest BER where each still exceeds 50% success on stone.
	lastGood := func(pts []ResiliencePoint) float64 {
		best := 0.0
		for _, p := range pts {
			if p.Task == world.TaskStone && p.SuccessRate >= 0.5 && p.BER > best {
				best = p.BER
			}
		}
		return best
	}
	pKnee, cKnee := lastGood(planner), lastGood(controller)
	if pKnee == 0 || cKnee == 0 {
		t.Fatalf("could not locate knees: %v %v", pKnee, cKnee)
	}
	if cKnee < pKnee*100 {
		t.Fatalf("controller knee %.1e should be >=100x planner knee %.1e", cKnee, pKnee)
	}
	// Planner collapse near 2e-8 (within the paper's decade).
	if pKnee < 5e-9 || pKnee > 3e-7 {
		t.Fatalf("planner task knee %.1e not near 2e-8", pKnee)
	}
	var buf bytes.Buffer
	RenderResilience(&buf, "x", planner)
	if buf.Len() == 0 {
		t.Fatal("renderer produced nothing")
	}
}

func TestFig5ActivationsContrast(t *testing.T) {
	profiles := Fig5Activations(tinyOptions())
	var p, c ActivationProfile
	for _, a := range profiles {
		if a.Model == "planner" {
			p = a
		} else {
			c = a
		}
	}
	// Insight 2: the planner's residual stream has systematic outliers; a
	// single in-range fault skews its normalization statistics far more
	// than the controller's.
	if p.AbsMax/p.Std < 2*(c.AbsMax/c.Std) {
		t.Fatalf("planner outlier ratio %.1f vs controller %.1f", p.AbsMax/p.Std, c.AbsMax/c.Std)
	}
	pSkew := p.SigmaFaulty / p.SigmaClean
	cSkew := c.SigmaFaulty / c.SigmaClean
	if pSkew < cSkew {
		t.Fatalf("planner norm skew %.2f should exceed controller %.2f", pSkew, cSkew)
	}
}

func TestFig6SubtaskDiversity(t *testing.T) {
	e := NewEnv()
	pts := Fig6Subtasks(e, tinyOptions())
	at := func(task world.TaskName, ber float64) float64 {
		for _, p := range pts {
			if p.Task == task && p.BER == ber {
				return p.SuccessRate
			}
		}
		t.Fatalf("missing point %v %v", task, ber)
		return 0
	}
	// Deterministic chains collapse at 1e-3; stochastic tasks keep more.
	if at(world.TaskLog, 1e-3) >= at(world.TaskWool, 1e-3)+0.2 {
		t.Fatalf("log %.2f should degrade at least as hard as wool %.2f at 1e-3",
			at(world.TaskLog, 1e-3), at(world.TaskWool, 1e-3))
	}
}

func TestFig7StageStructure(t *testing.T) {
	e := NewEnv()
	stages := Fig7Stages(e, tinyOptions())
	entropies := map[world.Phase]float64{}
	for _, s := range stages {
		entropies[s.Phase] = s.MeanEntropy
	}
	if !(entropies[world.PhaseExecute] < entropies[world.PhaseApproach] &&
		entropies[world.PhaseApproach] < entropies[world.PhaseExplore]) {
		t.Fatalf("phase entropy ordering wrong: %+v", entropies)
	}

	inj := Fig7PhaseInjection(e, tinyOptions(), 0.5)
	var explore, execute StageCorruption
	for _, s := range inj {
		if s.Phase == world.PhaseExplore {
			explore = s
		} else {
			execute = s
		}
	}
	// Fig. 7: corrupting exploration is survivable; corrupting execution is
	// what breaks chains.
	if execute.SuccessRate > explore.SuccessRate {
		t.Fatalf("execution corruption should hurt more: exec %.2f explore %.2f",
			execute.SuccessRate, explore.SuccessRate)
	}
}

func TestFig9RotationContract(t *testing.T) {
	r := Fig9Rotation(tinyOptions())
	if r.AbsMaxAfter > r.AbsMaxBefore/2 {
		t.Fatalf("rotation should disperse outliers: %v -> %v", r.AbsMaxBefore, r.AbsMaxAfter)
	}
	if r.OutputDrift > 1e-2 {
		t.Fatalf("rotation changed network function by %v", r.OutputDrift)
	}
}

func TestFig10EntropyCurveSpansPhases(t *testing.T) {
	trace, phases := Fig10EntropyCurve(tinyOptions(), world.TaskLog)
	if len(trace) != len(phases) || len(trace) == 0 {
		t.Fatal("bad trace")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, h := range trace {
		lo = math.Min(lo, h)
		hi = math.Max(hi, h)
	}
	if hi-lo < 1.5 {
		t.Fatalf("entropy curve too flat: [%v, %v]", lo, hi)
	}
}

func TestFig13VSFrontier(t *testing.T) {
	e := NewEnv()
	pts := Fig13VS(e, tinyOptions())
	// Find the nominal constant point and Policy C with AD on stone.
	var nominal, polC *VSPoint
	for i := range pts {
		p := &pts[i]
		if p.Task != world.TaskStone || !p.AD {
			continue
		}
		if p.Policy == "const" && p.EffectiveVoltage > 0.89 {
			nominal = p
		}
		if p.Policy == "C" {
			polC = p
		}
	}
	if nominal == nil || polC == nil {
		t.Fatal("missing frontier points")
	}
	// Policy C: lower effective voltage at comparable success (Sec. 6.5).
	if polC.EffectiveVoltage >= nominal.EffectiveVoltage-0.02 {
		t.Fatalf("policy C effective voltage %.3f not meaningfully below nominal %.3f",
			polC.EffectiveVoltage, nominal.EffectiveVoltage)
	}
	if polC.SuccessRate < nominal.SuccessRate-0.15 {
		t.Fatalf("policy C sacrificed success: %.2f vs %.2f", polC.SuccessRate, nominal.SuccessRate)
	}
}

func TestFig16ReliabilityOrdering(t *testing.T) {
	e := NewEnv()
	pts := Fig16Reliability(e, Options{Trials: 12, Seed: 2026})
	avg := map[string]float64{}
	n := map[string]int{}
	for _, p := range pts {
		avg[p.Config] += p.SuccessRate
		n[p.Config]++
	}
	//create:maprange-ok per-key normalization: each avg[k] is divided once by its own count, no cross-iteration accumulation
	for k := range avg {
		avg[k] /= float64(n[k])
	}
	// Fig. 16(a): none << AD < AD+WR at 0.75 V; VS adds no degradation.
	if avg["none"] > 0.3 {
		t.Fatalf("unprotected at 0.75V should collapse: %v", avg["none"])
	}
	if avg["AD"] < avg["none"]+0.3 {
		t.Fatalf("AD should recover most success: %v vs %v", avg["AD"], avg["none"])
	}
	if avg["AD+WR"] < avg["AD"]-0.05 {
		t.Fatalf("AD+WR should not regress AD: %v vs %v", avg["AD+WR"], avg["AD"])
	}
	if avg["AD+WR+VS"] < avg["AD+WR"]-0.1 {
		t.Fatalf("VS should add no degradation: %v vs %v", avg["AD+WR+VS"], avg["AD+WR"])
	}
}

func TestTable3Budgets(t *testing.T) {
	r := Table3Accelerator()
	// Sec. 6.2: controller + predictor fit the 30 Hz real-time budget, and
	// voltage switching is orders of magnitude faster than inference.
	if r.ControllerLatencyUS > 33000 {
		t.Fatalf("controller misses 30 Hz: %v us", r.ControllerLatencyUS)
	}
	if r.PredictorLatencyUS > r.ControllerLatencyUS {
		t.Fatal("predictor must be far cheaper than the controller")
	}
	if r.SwitchingLatencyNS != 540 {
		t.Fatalf("switching latency %v ns, want 540", r.SwitchingLatencyNS)
	}
	if r.PlannerLatencyMS <= 0 {
		t.Fatal("missing planner latency")
	}
}

func TestTable5Convergence(t *testing.T) {
	e := NewEnv()
	rows := Table5Repetitions(e, tinyOptions())
	if len(rows) < 5 {
		t.Fatal("missing repetition rows")
	}
	last := rows[len(rows)-1]
	if last.CI95 > 0.1 {
		t.Fatalf("200 repetitions should bound the CI under 10%%: %v", last.CI95)
	}
	// The estimates of the last three counts agree within their CIs.
	for _, r := range rows[len(rows)-3:] {
		if math.Abs(r.SuccessRate-last.SuccessRate) > r.CI95+last.CI95 {
			t.Fatalf("estimate at n=%d (%.2f) incompatible with n=%d (%.2f)",
				r.Repetitions, r.SuccessRate, last.Repetitions, last.SuccessRate)
		}
	}
}

func TestFig18SharesAndBattery(t *testing.T) {
	e := NewEnv()
	rows := Fig18ChipEnergy(e.Power, 0.507, 0.393)
	if len(rows) != 6 {
		t.Fatalf("expected 6 models, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Class == platforms.PlannerClass && (r.ComputeShare < 0.55 || r.ComputeShare > 0.80) {
			t.Fatalf("%s compute share %.2f outside planner band", r.Model, r.ComputeShare)
		}
		if r.Class == platforms.ControllerClass && (r.ComputeShare < 0.70 || r.ComputeShare > 0.90) {
			t.Fatalf("%s compute share %.2f outside controller band", r.Model, r.ComputeShare)
		}
		if r.ChipSaving <= 0 || r.ChipSaving >= r.ComputeSaving {
			t.Fatalf("%s chip saving %.2f implausible", r.Model, r.ChipSaving)
		}
	}
	lo, hi := BatteryLifeRange(0.33)
	if lo < 0.10 || hi > 0.40 || lo >= hi {
		t.Fatalf("battery range [%v %v]", lo, hi)
	}
}

func TestPolicySearchFindsFrontier(t *testing.T) {
	e := NewEnv()
	scored := PolicySearch(e, Options{Trials: 8, Seed: 2026}, policy.Selected, world.TaskWooden)
	if len(scored) != len(policy.Selected) {
		t.Fatal("missing scores")
	}
	front := policy.ParetoFront(scored)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	if _, ok := policy.Best(scored, 0.05); !ok {
		t.Fatal("no best policy found")
	}
}

func TestOracleMatchesPaperAccuracy(t *testing.T) {
	r2 := OracleR2(tinyOptions(), 0.34, 1500)
	if r2 < 0.85 || r2 > 0.97 {
		t.Fatalf("noisy oracle R2 %.3f not in the Fig. 14 class (~0.92)", r2)
	}
}

func TestBERSweepGrid(t *testing.T) {
	grid := BERSweep(1e-8, 1e-6)
	if len(grid) != 5 {
		t.Fatalf("grid %v", grid)
	}
	if grid[0] != 1e-8 || grid[len(grid)-1] != 1e-6 {
		t.Fatalf("grid endpoints %v", grid)
	}
	_ = timing.Default() // keep import meaningful in minimal builds
}

package experiments

import (
	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/baselines"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// This file enumerates, per experiment, the cache fingerprints a run will
// consult — without running anything. The experiment registry probes these
// against a store (cache.Store.Contains) to predict hits versus
// points-to-compute before scheduling work, which is what lets a server or
// CLI recognize a whole figure as already served by the cache.
//
// Enumerators are built from the same grid builders the runners execute
// (gridJob/jobPoints), so fingerprints cannot drift from the configs, and
// they honour Options.Shard/NumShards at the same grain as each runner, so
// a sharded run plans only its own points. For experiments whose grids are
// data-dependent (minimal-voltage descents that early-exit), the
// enumeration is a superset of what a run consults: a plan may then
// overestimate points-to-compute, but "everything enumerated is cached"
// still soundly implies a compute-free run.

// Fig7InjectionQ is the per-step corruption probability of the Fig. 7
// phase-targeted injection experiment, shared by every runner of the figure.
const Fig7InjectionQ = 0.5

// Fig1Points covers fig1's cached sweep (the controller degradation curve;
// the BER-vs-voltage curve is closed-form).
func Fig1Points(e *Env, opt Options) []cache.Point {
	return ownedJobPoints(fig5ControllerJobs(e), opt)
}

// Fig5Points covers the planner and controller resilience sweeps of Fig. 5
// (the per-component severities and activation profiles run outside the
// summary cache).
func Fig5Points(e *Env, opt Options) []cache.Point {
	pts := ownedJobPoints(fig5PlannerJobs(e), opt)
	return append(pts, ownedJobPoints(fig5ControllerJobs(e), opt)...)
}

// Fig6Points covers the subtask-diversity sweep.
func Fig6Points(e *Env, opt Options) []cache.Point {
	return ownedJobPoints(fig6Jobs(e), opt)
}

// Fig7Points covers the phase-targeted injection rows (the stage profile
// runs uncached episodes).
func Fig7Points(e *Env, opt Options) []cache.Point {
	var pts []cache.Point
	for idx, target := range fig7InjectionTargets {
		if !opt.owns(idx) {
			continue
		}
		pts = append(pts, fig7InjectionPoint(Fig7InjectionQ, target, opt))
	}
	return pts
}

// Fig13Points covers all four panels: the AD, WR and AD+WR protection
// sweeps and the voltage-scaling grid.
func Fig13Points(e *Env, opt Options) []cache.Point {
	var pts []cache.Point
	// Fig. 13(a)/(b): AD on planner and controller.
	for _, prot := range []bridge.Protection{{}, {AD: true}} {
		pts = append(pts, ownedJobPoints(protSweepJobs(e, BERSweep(1e-8, 1e-4), true, prot), opt)...)
		pts = append(pts, ownedJobPoints(protSweepJobs(e, BERSweep(1e-5, 1e-2), false, prot), opt)...)
	}
	// Fig. 13(c): WR on planner.
	for _, prot := range []bridge.Protection{{}, {WR: true}} {
		pts = append(pts, ownedJobPoints(protSweepJobs(e, BERSweep(1e-8, 1e-4), true, prot), opt)...)
	}
	// Fig. 13(e): AD+WR ablation.
	for _, prot := range []bridge.Protection{{}, {AD: true}, {WR: true}, {AD: true, WR: true}} {
		pts = append(pts, ownedJobPoints(protSweepJobs(e, BERSweep(1e-8, 1e-2), true, prot), opt)...)
	}
	// Fig. 13(d)/(f): voltage scaling.
	for i, j := range fig13VSJobs() {
		if !opt.owns(i) {
			continue
		}
		cfg, policyID := e.vsConfig(j)
		pts = append(pts, cachePoint(j.task, cfg, opt, policyID, ""))
	}
	return pts
}

// Fig15Points covers the update-interval sweep.
func Fig15Points(e *Env, opt Options) []cache.Point {
	return ownedJobPoints(fig15Jobs(e), opt)
}

// Fig16Points covers the reliability grid at 0.75 V plus the efficiency
// sweep's full supply grid. The reliability sweep shards at grid-point
// grain, the efficiency descent at task grain (its inner points are
// data-dependent), mirroring the runners. The descent early-exits per
// (task, config), so this is a superset of a cold run's compute set.
func Fig16Points(e *Env, opt Options) []cache.Point {
	var pts []cache.Point
	point := func(task world.TaskName, name string, v float64) {
		cfg, policyID := e.overallConfig(name, v)
		pts = append(pts, cachePoint(task, cfg, opt, policyID, ""))
	}
	for ti, task := range Fig16Tasks {
		for ci, name := range Fig16Configs {
			if opt.owns(ti*len(Fig16Configs) + ci) {
				point(task, name, 0.75)
			}
		}
	}
	for ti, task := range Fig16Tasks {
		if !opt.owns(ti) {
			continue
		}
		point(task, "none", timing.VNominal) // the clean baseline of the descent
		for _, name := range Fig16Configs {
			for _, v := range fig16Voltages {
				point(task, name, v)
			}
		}
	}
	return pts
}

// Fig17Points covers every cross-platform row: Minecraft planner descents
// and controller points, and the abstract-episode sweeps, sharded at the
// runner's row grain. The descents early-exit, so this is a superset of a
// cold run's compute set. Fig. 18 shares this exact point set (its
// chip-level rows are derived from the same Fig. 17 sweep).
func Fig17Points(e *Env, opt Options) []cache.Point {
	var pts []cache.Point
	idx := 0
	owns := func() bool {
		ok := opt.owns(idx)
		idx++
		return ok
	}
	descent := plannerDescentVoltages()
	for _, task := range jarvisPlannerTasks {
		if !owns() {
			continue
		}
		pts = append(pts, cachePoint(task, agent.Config{UniformBER: 0}, opt, "", ""))
		for _, v := range descent {
			pts = append(pts, cachePoint(task, e.jarvisPlannerConfig(v), opt, "", ""))
		}
	}
	for _, task := range jarvisControllerTasks {
		if !owns() {
			continue
		}
		cfg, policyID := e.jarvisControllerConfig()
		pts = append(pts, cachePoint(task, cfg, opt, policyID, ""))
	}
	prot := bridge.Protection{AD: true, WR: true}
	for _, pair := range crossPlannerPairs {
		fm := pair.Spec.FaultModel()
		for _, task := range pair.Tasks {
			if !owns() {
				continue
			}
			for _, v := range descent {
				pts = append(pts, crossPlannerCachePoint(fm, prot, task, v, opt))
			}
		}
	}
	for _, pair := range crossControllerPairs {
		fm := pair.Spec.FaultModel()
		for _, task := range pair.Tasks {
			if !owns() {
				continue
			}
			pts = append(pts, crossControllerCachePoint(fm, task, opt))
		}
	}
	return pts
}

// Fig19Points covers both error models at every owned (BER, target) pair.
func Fig19Points(e *Env, opt Options) []cache.Point {
	var pts []cache.Point
	for i, j := range fig19Jobs() {
		if !opt.owns(i) {
			continue
		}
		for _, modelName := range errorModelNames {
			cfg := e.errorModelConfig(j.ber, j.target, modelName)
			pts = append(pts, cachePoint(world.TaskWooden, cfg, opt, "", ""))
		}
	}
	return pts
}

// Fig20Points covers CREATE and every baseline across the comparison's
// supply grid, sharded at (task, voltage) grain like the runner.
func Fig20Points(e *Env, opt Options) []cache.Point {
	var pts []cache.Point
	idx := 0
	for _, task := range []world.TaskName{world.TaskWooden, world.TaskStone} {
		for _, v := range Fig20Voltages {
			if !opt.owns(idx) {
				idx++
				continue
			}
			idx++
			cfg, policyID := e.createConfig(v)
			pts = append(pts, cachePoint(task, cfg, opt, policyID, ""))
			for _, b := range baselines.All {
				bcfg, override := e.baselineConfig(b, v)
				pts = append(pts, cachePoint(task, bcfg, opt, "", override))
			}
		}
	}
	return pts
}

// Table6Points covers both quantization formats across the high-BER band.
// The Table 6 runner does not shard its grid, so neither does the
// enumeration.
func Table6Points(e *Env, opt Options) []cache.Point {
	var jobs []gridJob
	for _, bits := range table6Bits {
		jobs = append(jobs, table6Jobs(e, bits)...)
	}
	return jobPoints(jobs, opt)
}

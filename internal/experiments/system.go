package experiments

import (
	"github.com/embodiedai/create/internal/ldo"
	"github.com/embodiedai/create/internal/platforms"
	"github.com/embodiedai/create/internal/power"
	"github.com/embodiedai/create/internal/scalesim"
	"github.com/embodiedai/create/internal/timing"
)

// ---------------------------------------------------------------------------
// Figure 12 / Table 2: hardware platform.

// Fig12Breakdown reproduces the area/power block table of Fig. 12(c): the
// AD units and LDOs are ~0.1 % overheads against the PE array and SRAM.
func Fig12Breakdown() []power.AreaPowerRow { return power.AreaPowerBreakdown() }

// Table2Row is one LDO specification line.
type Table2Row struct {
	Name  string
	Value string
}

// Table2LDO reproduces the LDO specification table.
func Table2LDO() []Table2Row {
	l := ldo.Default()
	return []Table2Row{
		{"Technology", "22 nm"},
		{"Vout", "0.6-0.9 V"},
		{"t_resp", "90 ns / 50 mV"},
		{"V_step", "10 mV"},
		{"Area", f2(l.AreaMM2) + " mm^2"},
		{"I_load,max", f2(l.ILoadMax) + " A"},
		{"eta_peak", pct(l.PeakEfficiency)},
		{"J", f2(l.CurrentDensity) + " A/mm^2"},
	}
}

// Fig12Waveforms simulates the LDO scaling waveforms of Fig. 12(d)/(e): a
// step sequence across the output range with the Table 2 slew rate.
func Fig12Waveforms() []ldo.WavePoint {
	l := ldo.Default()
	return l.Waveform([]float64{0.90, 0.75, 0.62, 0.84, 0.70, 0.90}, 400, 50)
}

// ---------------------------------------------------------------------------
// Table 3: accelerator performance.

// Table3Result reproduces the accelerator performance table on the
// weight-stationary cycle model.
type Table3Result struct {
	PeakTOPS            float64
	PlannerMACs         float64
	ControllerMACs      float64
	PredictorMACs       float64
	PlannerLatencyMS    float64
	ControllerLatencyUS float64
	PredictorLatencyUS  float64
	SwitchingLatencyNS  float64
}

// Table3Accelerator evaluates the Table 4 workloads on the systolic cycle
// model. The controller and predictor meet the 30 Hz real-time budget and
// the LDO's full-swing switching latency stays orders of magnitude below
// the controller's inference latency (Sec. 6.2).
func Table3Accelerator() Table3Result {
	arr := scalesim.Default()

	plannerGEMMs := scalesim.TransformerGEMMs(
		platforms.JARVIS1Planner.InTokens+platforms.JARVIS1Planner.OutTokens,
		platforms.JARVIS1Planner.Hidden, platforms.JARVIS1Planner.MLPDim,
		platforms.JARVIS1Planner.Layers)
	controllerGEMMs := scalesim.TransformerGEMMs(
		256, platforms.JARVIS1Controller.Hidden, platforms.JARVIS1Controller.MLPDim,
		platforms.JARVIS1Controller.Layers)
	predictorGEMMs := []scalesim.GEMM{
		{M: 484, K: 27, N: 16}, {M: 16, K: 144, N: 32}, {M: 1, K: 288, N: 64},
		{M: 1, K: 512, N: 64}, {M: 1, K: 128, N: 128}, {M: 1, K: 128, N: 1},
	}

	plannerDRAM := platforms.JARVIS1Planner.Params * 1e6
	return Table3Result{
		PeakTOPS:            arr.PeakTOPS(),
		PlannerMACs:         platforms.JARVIS1Planner.MACs(),
		ControllerMACs:      platforms.JARVIS1Controller.MACs(),
		PredictorMACs:       platforms.EntropyPredictor.MACs(),
		PlannerLatencyMS:    arr.Latency(plannerGEMMs, plannerDRAM) / 1e6,
		ControllerLatencyUS: arr.Latency(controllerGEMMs, 0) / 1e3,
		PredictorLatencyUS:  arr.Latency(predictorGEMMs, 0) / 1e3,
		SwitchingLatencyNS:  ldo.Default().MaxSwitchingLatency() * 1e9,
	}
}

// ---------------------------------------------------------------------------
// Table 4: model parameters and computational requirements.

// Table4Row is one model-zoo line.
type Table4Row struct {
	Name    string
	ParamsM float64
	GOps    float64
}

// Table4Models reproduces the parameter/op table from the platform specs.
func Table4Models() []Table4Row {
	var out []Table4Row
	for _, s := range platforms.All {
		out = append(out, Table4Row{s.Name, s.Params, s.GOps})
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 18: chip-level energy breakdown.

// ChipEnergyRow is one model's chip-level energy split and what CREATE's
// computational saving translates to at chip level.
type ChipEnergyRow struct {
	Model        string
	Class        platforms.Class
	ComputeShare float64
	// ComputeSaving is the technique's computational energy saving
	// (planners: AD+WR; controllers: AD+VS) from the Fig. 17 evaluation.
	ComputeSaving float64
	// ChipSaving = ComputeShare * ComputeSaving (memory rails are not
	// voltage scaled).
	ChipSaving float64
}

// Fig18ChipEnergy combines the power-model breakdowns with per-class
// computational savings: planners compute ~65 % of chip energy, controllers
// ~78 %, translating ~50 %/~40 % compute savings into ~30-37 % chip-level
// savings (Fig. 18).
func Fig18ChipEnergy(pm *power.Model, plannerSaving, controllerSaving float64) []ChipEnergyRow {
	var out []ChipEnergyRow
	for _, s := range platforms.All {
		if s.Name == platforms.EntropyPredictor.Name {
			continue
		}
		bd := pm.Breakdown(s.Workload(), timing.VNominal)
		saving := controllerSaving
		if s.Class == platforms.PlannerClass {
			saving = plannerSaving
		}
		out = append(out, ChipEnergyRow{
			Model:         s.Name,
			Class:         s.Class,
			ComputeShare:  bd.ComputeShare(),
			ComputeSaving: saving,
			ChipSaving:    bd.ComputeShare() * saving,
		})
	}
	return out
}

// BatteryLifeRange maps chip-level savings to battery-life extensions over
// the compute-share range of realistic robots (Sec. 6.8: compute accounts
// for energy "comparable to or exceeding" mechanical).
func BatteryLifeRange(chipSaving float64) (low, high float64) {
	return power.BatteryExtension(chipSaving, 0.45), power.BatteryExtension(chipSaving, 0.65)
}

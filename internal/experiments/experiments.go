// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each Fig*/Table*
// function runs the corresponding workload and returns typed rows; Render
// helpers print them in the shape the paper reports. Absolute numbers come
// from our simulated substrate; the reproduced claims are the shapes — who
// wins, by what factor, where the knees and crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/platforms"
	"github.com/embodiedai/create/internal/power"
	"github.com/embodiedai/create/internal/sim"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// Options control experiment scale. The paper repeats every trial at least
// 100 times (Sec. 6.9); Quick mode trades confidence for wall-clock time.
type Options struct {
	Trials int
	// Seed is the base seed applied to every data point; all grid points
	// derive their per-trial seeds from it, so any value — including 0 — is
	// a valid, reproducible choice.
	Seed int64
	// Workers bounds the parallel fan-out of both the per-point trial loop
	// and the sweep grids: 0 (the default) uses runtime.GOMAXPROCS(0),
	// 1 forces the fully serial path. Results are identical either way —
	// the engine's ordered collection keeps aggregation deterministic.
	Workers int
}

// split divides the Workers budget between a sweep grid of n points and the
// trial loops nested inside each point, returning the grid-level worker
// count and an Options carrying the per-point remainder. Keeps total
// concurrent episodes within Workers instead of multiplying to Workers^2.
func (o Options) split(n int) (int, Options) {
	gridW, trialW := sim.Split(o.Workers, n)
	o.Workers = trialW
	return gridW, o
}

// DefaultOptions reproduces the paper's repetition count.
func DefaultOptions() Options { return Options{Trials: 100, Seed: 2026} }

// QuickOptions is for tests and fast iteration.
func QuickOptions() Options { return Options{Trials: 24, Seed: 2026} }

// Env bundles the shared simulation substrate of the evaluation.
type Env struct {
	Timing     *timing.Model
	Power      *power.Model
	Planner    *bridge.FaultModel
	Controller *bridge.FaultModel
}

// NewEnv builds the default JARVIS-1 environment.
func NewEnv() *Env {
	return &Env{
		Timing:     timing.Default(),
		Power:      power.Default(),
		Planner:    platforms.JARVIS1Planner.FaultModel(),
		Controller: platforms.JARVIS1Controller.FaultModel(),
	}
}

// episodeSpec is the JARVIS-1 energy footprint per invocation (Table 4).
func episodeSpec(vsActive bool) power.EpisodeSpec {
	spec := power.EpisodeSpec{
		PlannerMACsPerCall: platforms.JARVIS1Planner.MACs(),
		ControllerMACsStep: platforms.JARVIS1Controller.MACs(),
	}
	if vsActive {
		spec.PredictorMACsStep = platforms.EntropyPredictor.MACs()
	}
	return spec
}

// EpisodeEnergy computes the computational energy of an aggregated run,
// charging failed episodes at full execution (Sec. 6.1).
func (e *Env) EpisodeEnergy(s agent.Summary, vsActive bool) float64 {
	spec := episodeSpec(vsActive)
	total := e.Power.EpisodeEnergy(spec, s.AvgPlannerInvocations*float64(s.Trials),
		s.PlannerVoltageMV, s.StepsAtMV)
	return total / float64(s.Trials)
}

// runTask is the shared episode sweep helper. The base seed always comes
// from Options — callers pass fault/voltage configs, never seeds — so
// Options{Seed: 0} is honoured instead of being mistaken for "unset".
func (e *Env) runTask(task world.TaskName, cfg agent.Config, opt Options) agent.Summary {
	cfg.Task = task
	cfg.Seed = opt.Seed
	if cfg.Timing == nil {
		cfg.Timing = e.Timing
	}
	return agent.RunManyWorkers(cfg, opt.Trials, opt.Workers)
}

// BERSweep is the standard characterization BER grid.
func BERSweep(lo, hi float64) []float64 {
	var out []float64
	for b := lo; b <= hi*1.0001; b *= 10 {
		out = append(out, b, b*3)
	}
	if len(out) > 0 {
		out = out[:len(out)-1] // drop the 3x point past hi
	}
	return out
}

// table is a minimal fixed-width table renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func sci(x float64) string { return fmt.Sprintf("%.1e", x) }
func steps(x float64) string {
	if x == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", x)
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each Fig*/Table*
// function runs the corresponding workload and returns typed rows; Render
// helpers print them in the shape the paper reports. Absolute numbers come
// from our simulated substrate; the reproduced claims are the shapes — who
// wins, by what factor, where the knees and crossovers fall.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/platforms"
	"github.com/embodiedai/create/internal/power"
	"github.com/embodiedai/create/internal/sim"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// Options control experiment scale. The paper repeats every trial at least
// 100 times (Sec. 6.9); Quick mode trades confidence for wall-clock time.
type Options struct {
	Trials int
	// Seed is the base seed applied to every data point; all grid points
	// derive their per-trial seeds from it, so any value — including 0 — is
	// a valid, reproducible choice.
	Seed int64
	// Workers bounds the parallel fan-out of both the per-point trial loop
	// and the sweep grids: 0 (the default) uses runtime.GOMAXPROCS(0),
	// 1 forces the fully serial path. Results are identical either way —
	// the engine's ordered collection keeps aggregation deterministic.
	Workers int
	// Shard/NumShards partition every sweep grid by stable point index:
	// with NumShards = n > 1, this process computes only points whose grid
	// index i satisfies i % n == Shard (0-based). Skipped points yield
	// zero rows, so a sharded run's printed output is partial scaffolding;
	// the full result set is reassembled by merging the shards' cache
	// directories and replaying with sharding off (create-bench -merge).
	// Sharding is deliberately NOT part of the cache fingerprint: a point
	// computed by any shard replays identically everywhere.
	Shard     int
	NumShards int
	// Ctx, when non-nil, lets the caller abort a running evaluation between
	// grid points: once Ctx is canceled, the next point boundary panics with
	// Canceled, which the serving tier recovers into a canceled job. The
	// check sits outside the per-point compute, so a point that has started
	// always runs to completion — concurrent jobs waiting on its flight
	// slot are never poisoned by another job's cancellation. A nil Ctx (the
	// default) never cancels.
	Ctx context.Context
}

// Canceled is the panic value raised at a grid-point boundary once
// Options.Ctx is canceled. It unwinds the sweep through the deterministic
// engine (sim.Map re-raises worker panics on the caller) and is recovered
// by the service layer, which marks the job canceled rather than failed.
type Canceled struct{}

func (Canceled) Error() string { return "evaluation canceled" }

// checkCanceled panics with Canceled once the caller's context is done.
// Called between grid points, never inside a point's compute.
func (o Options) checkCanceled() {
	if o.Ctx == nil {
		return
	}
	select {
	case <-o.Ctx.Done():
		panic(Canceled{})
	default:
	}
}

// owns reports whether this process's shard is responsible for computing
// grid point i. NumShards <= 1 means no sharding: every point is owned.
func (o Options) owns(i int) bool {
	return o.NumShards <= 1 || i%o.NumShards == o.Shard
}

// split divides the Workers budget between a sweep grid of n points and the
// trial loops nested inside each point, returning the grid-level worker
// count and an Options carrying the per-point remainder. Keeps total
// concurrent episodes within Workers instead of multiplying to Workers^2.
// Under sharding the budget is sized by the points this shard owns, not
// the full grid: skipped points return instantly, so splitting over the
// full n would starve the owned points' trial loops and idle cores.
// sim.Split guarantees both levels are at least 1 (a 0 would select
// GOMAXPROCS downstream; see TestOptionsSplitNeverZero).
func (o Options) split(n int) (int, Options) {
	if o.NumShards > 1 {
		owned := 0
		for i := 0; i < n; i++ {
			if o.owns(i) {
				owned++
			}
		}
		n = owned
	}
	gridW, trialW := sim.Split(o.Workers, n)
	o.Workers = trialW
	return gridW, o
}

// ParseShard parses a "k/n" shard selector (1-based k, as in -shard 2/3)
// into the 0-based Shard and the NumShards Options fields. An empty
// selector disables sharding.
func ParseShard(s string) (shard, numShards int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	k, n, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("shard selector %q is not of the form k/n", s)
	}
	ki, err := strconv.Atoi(strings.TrimSpace(k))
	if err != nil {
		return 0, 0, fmt.Errorf("shard selector %q: bad shard index: %v", s, err)
	}
	ni, err := strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return 0, 0, fmt.Errorf("shard selector %q: bad shard count: %v", s, err)
	}
	if ni < 1 || ki < 1 || ki > ni {
		return 0, 0, fmt.Errorf("shard selector %q: want 1 <= k <= n", s)
	}
	return ki - 1, ni, nil
}

// OpenShardedCache handles the -shard/-cache-dir pair both CLIs share:
// parse the selector, refuse sharded runs that would not persist their
// points (a sharded run's stdout is partial scaffolding — without a cache
// dir the computed points die with the process and nothing merges), and
// open the store. Disk entries are only read lazily on Get, so callers may
// still merge shard directories into cacheDir after this returns.
func OpenShardedCache(shardSel, cacheDir string) (shard, numShards int, store *cache.Store, err error) {
	shard, numShards, err = ParseShard(shardSel)
	if err != nil {
		return 0, 0, nil, err
	}
	if numShards > 1 && cacheDir == "" {
		return 0, 0, nil, fmt.Errorf("-shard requires -cache-dir to persist the shard's points")
	}
	store, err = cache.New(cacheDir)
	if err != nil {
		return 0, 0, nil, fmt.Errorf("opening cache %s: %w", cacheDir, err)
	}
	return shard, numShards, store, nil
}

// DefaultOptions reproduces the paper's repetition count.
func DefaultOptions() Options { return Options{Trials: 100, Seed: 2026} }

// QuickOptions is for tests and fast iteration.
func QuickOptions() Options { return Options{Trials: 24, Seed: 2026} }

// Env bundles the shared simulation substrate of the evaluation.
type Env struct {
	Timing     *timing.Model
	Power      *power.Model
	Planner    *bridge.FaultModel
	Controller *bridge.FaultModel
	// Cache, when set, transparently reuses agent.Summary results across
	// identical grid points — within one process (Fig. 16's reliability
	// and efficiency sweeps share runOverall points), across warm reruns
	// (disk-backed stores), and across sharded machines (merged stores).
	Cache *cache.Store

	// flight coalesces concurrent misses on the same fingerprint: when two
	// sweeps running in parallel on this Env (e.g. two service jobs with
	// overlapping grids) both miss a point, one computes and the rest wait
	// for its summary instead of duplicating the Monte-Carlo work.
	flight flightGroup
}

// flightGroup is a minimal singleflight keyed by cache fingerprint. The
// zero value is ready to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done     chan struct{}
	sum      agent.Summary
	panicked any // compute's panic value, re-raised in every caller
}

// do runs compute for key exactly once among concurrent callers; latecomers
// block until the owner finishes and share its result. Sequential calls
// each compute (the cache, not the flight group, carries results forward).
// A panicking compute is cleaned up — the slot is released and the done
// channel closed, so the fingerprint never wedges — and the panic is
// re-raised in the owner and every waiter.
func (g *flightGroup) do(key string, compute func() agent.Summary) agent.Summary {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		if c.panicked != nil {
			panic(c.panicked)
		}
		return c.sum
	}
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			c.panicked = r
		}
		close(c.done)
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		if c.panicked != nil {
			panic(c.panicked)
		}
	}()
	c.sum = compute()
	return c.sum
}

// cachedCompute is the shared cache-or-compute path behind every cached
// sweep (runTaskCached and the bespoke episode loops): consult the cache,
// and on a miss compute under the per-fingerprint flight group so the same
// point is never computed twice concurrently. The owner re-checks the
// cache after winning the flight slot, closing the window where a previous
// owner finished (and was deleted from the group) between this caller's
// miss and its do(). The cancellation poll lives here — at the point
// boundary, before the cache consult and outside the flight closure — so
// canceling one job can never panic a concurrent job waiting on a shared
// flight slot.
func (e *Env) cachedCompute(opt Options, p cache.Point, compute func() agent.Summary) agent.Summary {
	opt.checkCanceled()
	if s, ok := e.Cache.Get(p); ok {
		return s
	}
	return e.flight.do(p.Key(), func() agent.Summary {
		// The probe-then-Get shape keeps accounting exact: on the common
		// path (nothing landed in between) no extra miss is counted, and
		// when a just-finished owner did land the point, the Get records
		// the reuse as a hit.
		if e.Cache.Contains(p) {
			if s, ok := e.Cache.Get(p); ok {
				return s
			}
		}
		s := compute()
		// A Put failure (e.g. an unwritable cache dir) must not fail the
		// sweep: the computed summary is still correct, only reuse is lost.
		_ = e.Cache.Put(p, s)
		return s
	})
}

// NewEnv builds the default JARVIS-1 environment.
func NewEnv() *Env {
	return &Env{
		Timing:     timing.Default(),
		Power:      power.Default(),
		Planner:    platforms.JARVIS1Planner.FaultModel(),
		Controller: platforms.JARVIS1Controller.FaultModel(),
	}
}

// episodeSpec is the JARVIS-1 energy footprint per invocation (Table 4).
func episodeSpec(vsActive bool) power.EpisodeSpec {
	spec := power.EpisodeSpec{
		PlannerMACsPerCall: platforms.JARVIS1Planner.MACs(),
		ControllerMACsStep: platforms.JARVIS1Controller.MACs(),
	}
	if vsActive {
		spec.PredictorMACsStep = platforms.EntropyPredictor.MACs()
	}
	return spec
}

// EpisodeEnergy computes the computational energy of an aggregated run,
// charging failed episodes at full execution (Sec. 6.1).
func (e *Env) EpisodeEnergy(s agent.Summary, vsActive bool) float64 {
	spec := episodeSpec(vsActive)
	total := e.Power.EpisodeEnergy(spec, s.AvgPlannerInvocations*float64(s.Trials),
		s.PlannerVoltageMV, s.StepsAtMV)
	return total / float64(s.Trials)
}

// runTask is the shared episode sweep helper. The base seed always comes
// from Options — callers pass fault/voltage configs, never seeds — so
// Options{Seed: 0} is honoured instead of being mistaken for "unset".
//
// Every sweep above this helper reads only the Summary aggregates, so the
// per-trial Result slice is dropped at the aggregation boundary
// (DiscardResults): without it, a grid sweep retained trials x points
// Result structs — each with its own StepsAtMV map — for the whole run.
// Callers that need per-trial results (traces, single-episode studies) use
// agent.Run/RunMany directly.
func (e *Env) runTask(task world.TaskName, cfg agent.Config, opt Options) agent.Summary {
	cfg.Task = task
	cfg.Seed = opt.Seed
	if cfg.Timing == nil {
		cfg.Timing = e.Timing
	}
	return agent.RunManyOpts(cfg, opt.Trials,
		agent.RunOptions{Workers: opt.Workers, DiscardResults: true})
}

// cachePoint derives the canonical content-address of a runTask invocation.
// Every field of agent.Config that the episode outcome depends on is either
// mapped mechanically (task, fault-model identities, protections, error
// condition, voltages, trials, seed) or — for the two function-valued hooks
// a fingerprint cannot inspect — named by the caller: policyID identifies
// cfg.VSPolicy and override identifies corruption-override hooks. Call
// sites with unnamed function hooks or custom entropy predictors must use
// runTask directly instead of the cached path.
func cachePoint(task world.TaskName, cfg agent.Config, opt Options, policyID, override string) cache.Point {
	p := cache.Point{
		Task:        string(task),
		PlannerProt: protLabel(cfg.PlannerProt),
		ControlProt: protLabel(cfg.ControlProt),
		Policy:      policyID,
		VSInterval:  cfg.VSInterval,
		Override:    override,
		Trials:      opt.Trials,
		Seed:        opt.Seed,
	}
	if cfg.Planner != nil {
		p.Planner = cfg.Planner.ID()
	}
	if cfg.Controller != nil {
		p.Controller = cfg.Controller.ID()
	}
	// Normalize the defaults agent.Run applies, so a caller leaving a knob
	// at zero shares the point of one spelling the default out.
	if p.VSInterval == 0 {
		p.VSInterval = agent.DefaultVSInterval
	}
	p.PlannerV, p.ControllerV = cfg.PlannerVoltage, cfg.ControllerVoltage
	if p.PlannerV == 0 {
		p.PlannerV = timing.VNominal
	}
	if p.ControllerV == 0 || cfg.VSPolicy != nil {
		// An active VS policy owns the controller supply outright (the
		// episode starts at nominal until the first prediction), so the
		// constant-voltage knob is canonicalized away.
		p.ControllerV = timing.VNominal
	}
	if cfg.UniformBER >= 0 {
		p.ErrorModel = "uniform"
		p.BER = cfg.UniformBER
	} else {
		p.ErrorModel = "voltage"
	}
	return p
}

// runTaskCached is runTask behind the content-addressed cache: identical
// grid points — same fingerprint per cachePoint — are computed once and
// replayed everywhere else. With no cache attached it is exactly runTask.
//
// Cached summaries carry no per-trial Results: the sweeps only read the
// aggregates, and persisting trials-many Result structs would inflate every
// entry (disk and resident memory) by the trial count. The slice is dropped
// on the compute path too, so hits and misses return the same shape.
func (e *Env) runTaskCached(task world.TaskName, cfg agent.Config, opt Options, policyID, override string) agent.Summary {
	if e.Cache == nil {
		opt.checkCanceled()
		return e.runTask(task, cfg, opt)
	}
	return e.cachedCompute(opt, cachePoint(task, cfg, opt, policyID, override), func() agent.Summary {
		s := e.runTask(task, cfg, opt)
		s.Results = nil
		return s
	})
}

// gridJob is one cacheable runTask invocation: the grid coordinate shared
// by a sweep's runner and its cache-planning enumerator (the *Points
// functions in points.go), so the executed configs and the predicted
// fingerprints are built by the same code and cannot drift apart.
type gridJob struct {
	task     world.TaskName
	cfg      agent.Config
	policyID string
	override string
}

// runJob evaluates one grid job through the content-addressed cache.
func (e *Env) runJob(j gridJob, opt Options) agent.Summary {
	return e.runTaskCached(j.task, j.cfg, opt, j.policyID, j.override)
}

// jobPoints maps a job grid to the cache fingerprints its run consults,
// ignoring sharding — for the few sweeps that run their whole grid on
// every shard (Table 6).
func jobPoints(jobs []gridJob, opt Options) []cache.Point {
	pts := make([]cache.Point, len(jobs))
	for i, j := range jobs {
		pts[i] = cachePoint(j.task, j.cfg, opt, j.policyID, j.override)
	}
	return pts
}

// ownedJobPoints maps one sweep's job grid to the fingerprints this shard
// will consult. Every sharded runner indexes its own grid from zero, so
// ownership must be applied per job list — never across a concatenation of
// several sweeps' lists.
func ownedJobPoints(jobs []gridJob, opt Options) []cache.Point {
	var pts []cache.Point
	for i, j := range jobs {
		if !opt.owns(i) {
			continue
		}
		pts = append(pts, cachePoint(j.task, j.cfg, opt, j.policyID, j.override))
	}
	return pts
}

// BERSweep is the standard characterization BER grid.
func BERSweep(lo, hi float64) []float64 {
	var out []float64
	for b := lo; b <= hi*1.0001; b *= 10 {
		out = append(out, b, b*3)
	}
	if len(out) > 0 {
		out = out[:len(out)-1] // drop the 3x point past hi
	}
	return out
}

// table is a minimal fixed-width table renderer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", x*100) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func sci(x float64) string { return fmt.Sprintf("%.1e", x) }
func steps(x float64) string {
	if x == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", x)
}

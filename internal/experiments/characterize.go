package experiments

import (
	"io"
	"math/rand"
	"strconv"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/cache"
	"github.com/embodiedai/create/internal/inject"
	"github.com/embodiedai/create/internal/model"
	"github.com/embodiedai/create/internal/nn"
	"github.com/embodiedai/create/internal/systolic"
	"github.com/embodiedai/create/internal/tensor"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// ---------------------------------------------------------------------------
// Figure 1 / Figure 4: error model characterization.

// VoltageBERPoint is one sample of the voltage -> BER curve (Fig. 1(b)).
type VoltageBERPoint struct {
	Voltage float64
	BER     float64
}

// Fig1b samples the aggregate BER across the LDO voltage range.
func Fig1b(e *Env) []VoltageBERPoint {
	var out []VoltageBERPoint
	for _, entry := range e.Timing.LUT(20) {
		out = append(out, VoltageBERPoint{entry.Voltage, entry.BER})
	}
	return out
}

// BitRatePoint is one per-bit error rate sample (Fig. 4(a)).
type BitRatePoint struct {
	Voltage float64
	Bit     int
	Rate    float64
}

// Fig4a samples the per-bit timing-error surface.
func Fig4a(e *Env) []BitRatePoint {
	var out []BitRatePoint
	for _, v := range []float64{0.85, 0.80, 0.75, 0.70, 0.65} {
		for bit, r := range e.Timing.BitRates(v) {
			out = append(out, BitRatePoint{v, bit, r})
		}
	}
	return out
}

// Fig4bResult compares injected error magnitudes against the clean runtime
// activation range at 0.85 V (Fig. 4(b)).
type Fig4bResult struct {
	CleanAbsMax    float64
	ErrorAbsMedian float64
	// LargeErrorFrac is the fraction of injected errors whose magnitude
	// exceeds the whole clean activation range.
	LargeErrorFrac float64
}

// Fig4b injects at 0.85 V into a planner-shaped GEMM and histograms the
// error magnitudes against the clean output distribution.
func Fig4b(e *Env, opt Options) Fig4bResult {
	rng := rand.New(rand.NewSource(opt.Seed))
	x := tensor.NewMat(64, 256)
	w := tensor.NewMat(256, 256)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	for i := range w.Data {
		w.Data[i] = float32(rng.NormFloat64() * 0.1)
	}
	clean := systolic.NewEngine(1).MatMul(x, w, 0)
	cleanMax := float64(tensor.AbsMax(clean.Data))

	eng := systolic.NewEngine(2)
	eng.Injector = inject.Voltage{Model: e.Timing, V: 0.85}
	var mags []float64
	for rep := 0; rep < 400 && len(mags) < 400; rep++ {
		out := eng.MatMul(x, w, 0)
		for i := range out.Data {
			d := float64(out.Data[i]) - float64(clean.Data[i])
			if d != 0 {
				if d < 0 {
					d = -d
				}
				mags = append(mags, d)
			}
		}
	}
	large := 0
	for _, m := range mags {
		if m > cleanMax {
			large++
		}
	}
	res := Fig4bResult{CleanAbsMax: cleanMax}
	if len(mags) > 0 {
		res.ErrorAbsMedian = median(mags)
		res.LargeErrorFrac = float64(large) / float64(len(mags))
	}
	return res
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// ---------------------------------------------------------------------------
// Figure 5(a)-(d): planner vs controller resilience.

// ResiliencePoint is one (BER, task quality) sample.
type ResiliencePoint struct {
	BER         float64
	Task        world.TaskName
	SuccessRate float64
	AvgSteps    float64
}

// Fig5Planner sweeps uniform BER through the planner only (Fig. 5(a)/(b)).
func Fig5Planner(e *Env, opt Options) []ResiliencePoint {
	return resilienceSweep(e, opt, fig5PlannerJobs(e))
}

// Fig5Controller sweeps uniform BER through the controller only
// (Fig. 5(c)/(d)).
func Fig5Controller(e *Env, opt Options) []ResiliencePoint {
	return resilienceSweep(e, opt, fig5ControllerJobs(e))
}

func fig5PlannerJobs(e *Env) []gridJob {
	return resilienceJobs(e, []world.TaskName{world.TaskWooden, world.TaskStone},
		BERSweep(1e-9, 1e-6), true, false)
}

func fig5ControllerJobs(e *Env) []gridJob {
	return resilienceJobs(e, []world.TaskName{world.TaskWooden, world.TaskStone},
		BERSweep(1e-6, 1e-3), false, true)
}

// resilienceJobs builds the task-major (task x BER) grid of an unprotected
// resilience sweep.
func resilienceJobs(e *Env, tasks []world.TaskName, bers []float64, hitPlanner, hitController bool) []gridJob {
	jobs := make([]gridJob, 0, len(tasks)*len(bers))
	for _, task := range tasks {
		for _, ber := range bers {
			cfg := agent.Config{UniformBER: ber}
			if hitPlanner {
				cfg.Planner = e.Planner
			}
			if hitController {
				cfg.Controller = e.Controller
			}
			jobs = append(jobs, gridJob{task: task, cfg: cfg})
		}
	}
	return jobs
}

func resilienceSweep(e *Env, opt Options, jobs []gridJob) []ResiliencePoint {
	var out []ResiliencePoint
	for idx, j := range jobs {
		if !opt.owns(idx) {
			continue
		}
		s := e.runJob(j, opt)
		out = append(out, ResiliencePoint{j.cfg.UniformBER, j.task, s.SuccessRate, s.AvgSteps})
	}
	return out
}

// RenderResilience prints a resilience sweep as the paper's success/steps
// series.
func RenderResilience(w io.Writer, title string, pts []ResiliencePoint) {
	t := &table{header: []string{"task", "BER", "success", "avg steps"}}
	for _, p := range pts {
		t.add(string(p.Task), sci(p.BER), pct(p.SuccessRate), steps(p.AvgSteps))
	}
	io.WriteString(w, title+"\n")
	t.render(w)
}

// ---------------------------------------------------------------------------
// Figure 5(e)-(h): per-component resilience of the miniatures.

// ComponentSeverity is the measured per-fault severity of one network
// component.
type ComponentSeverity struct {
	Model     string // "planner" or "controller"
	Component string
	// HighBitSeverity sums the material per-fault severities of the
	// out-of-range bits — the damage channel that separates pre-norm
	// components (O, Down) from the rest.
	HighBitSeverity float64
}

// Fig5Components measures per-component fault severity on the miniature
// planner and controller: in the planner, components feeding normalization
// (O, Down) are markedly weaker than K; the controller varies little.
func Fig5Components(opt Options) []ComponentSeverity {
	mo := bridge.DefaultMeasureOptions()
	mo.TrialsPerBit = 8
	mo.Seed = opt.Seed
	var out []ComponentSeverity
	for _, comp := range []string{".K", ".O", ".Down", ".Up"} {
		sev := bridge.MeasurePlannerSeverity(model.DefaultPlannerConfig(), bridge.Protection{},
			withComponent(mo, comp))
		out = append(out, ComponentSeverity{"planner", comp[1:], highBits(sev)})
	}
	for _, comp := range []string{".K", ".O", ".FC1", ".FC2"} {
		sev := bridge.MeasureControllerSeverity(model.DefaultControllerConfig(), bridge.Protection{},
			withComponent(mo, comp))
		out = append(out, ComponentSeverity{"controller", comp[1:], highBits(sev)})
	}
	return out
}

func withComponent(mo bridge.MeasureOptions, comp string) bridge.MeasureOptions {
	mo.Component = comp
	return mo
}

func highBits(s bridge.Severity) float64 {
	var x float64
	for b := s.BoundBit; b < timing.AccBits; b++ {
		x += s.Bits[b]
	}
	return x
}

// ---------------------------------------------------------------------------
// Figure 5(i)-(l): activation distributions and normalization skew.

// ActivationProfile summarizes a model's pre-norm residual stream and how a
// single in-range fault skews its normalization statistics.
type ActivationProfile struct {
	Model string
	// AbsMax and Std of the clean residual stream (Fig. 5(i)/(j)).
	AbsMax, Std float64
	// SigmaClean/SigmaFaulty are the normalization scale statistics of one
	// row before and after planting a fault at the activation range's edge
	// (Fig. 5(k)/(l)).
	SigmaClean, SigmaFaulty float64
}

// Fig5Activations profiles the planner's outlier-ridden residual stream
// against the controller's uniform one, and the corresponding normalization
// skew under a single in-range fault.
func Fig5Activations(opt Options) []ActivationProfile {
	p := model.NewPlanner(model.DefaultPlannerConfig())
	var planner []float32
	p.Probe = func(layer int, h *tensor.Mat) {
		if layer == p.Cfg.Layers-1 {
			planner = append(planner[:0], h.Data...)
		}
	}
	p.Forward(nn.Float{}, p.PromptTokens(16, opt.Seed))

	c := model.NewController(model.DefaultControllerConfig())
	var controller []float32
	c.Probe = func(layer int, h *tensor.Mat) {
		if layer == c.Cfg.Layers-1 {
			controller = append(controller[:0], h.Data...)
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	c.Forward(nn.Float{}, model.RandomObservation(rng))

	profile := func(name string, data []float32, width int) ActivationProfile {
		row := append([]float32(nil), data[:width]...)
		_, sClean := nn.RowMoments(row)
		// Plant a fault at the edge of the observed range (what survives
		// AD) on a non-outlier channel.
		row[1] = tensor.AbsMax(data)
		_, sFaulty := nn.RowMoments(row)
		return ActivationProfile{
			Model:       name,
			AbsMax:      float64(tensor.AbsMax(data)),
			Std:         tensor.Std(data),
			SigmaClean:  sClean,
			SigmaFaulty: sFaulty,
		}
	}
	return []ActivationProfile{
		profile("planner", planner, p.Cfg.Dim),
		profile("controller", controller, c.Cfg.Dim),
	}
}

// ---------------------------------------------------------------------------
// Figure 6: subtask resilience diversity.

// Fig6Tasks are the six subtask-diversity workloads.
var Fig6Tasks = []world.TaskName{
	world.TaskStone, world.TaskLog, world.TaskIron,
	world.TaskCoal, world.TaskWool, world.TaskChicken,
}

// Fig6Subtasks sweeps controller BER across structurally different tasks:
// deterministic chains (log, stone) collapse abruptly past 1e-4 while
// stochastic interactions (chicken, wool) degrade gradually.
func Fig6Subtasks(e *Env, opt Options) []ResiliencePoint {
	return resilienceSweep(e, opt, fig6Jobs(e))
}

func fig6Jobs(e *Env) []gridJob {
	return resilienceJobs(e, Fig6Tasks, BERSweep(1e-6, 1e-2), false, true)
}

// ---------------------------------------------------------------------------
// Figure 7: stage-specific resilience.

// StageProfile aggregates per-phase statistics of clean episodes.
type StageProfile struct {
	Phase world.Phase
	// MeanEntropy of the action logits in this phase (uniform vs picky,
	// Fig. 7).
	MeanEntropy float64
	Fraction    float64 // share of steps spent in this phase
}

// Fig7Stages runs a clean log-task episode and profiles action-logit
// entropy by phase: exploration is near-uniform, execution is picky.
func Fig7Stages(e *Env, opt Options) []StageProfile {
	cfg := agent.Config{Task: world.TaskLog, UniformBER: 0, Trace: true, Seed: opt.Seed}
	sums := map[world.Phase]float64{}
	counts := map[world.Phase]int{}
	total := 0
	// Only the seed varies across trials: one Runner shares the resolved
	// config, corruption table, and episode scratch across the sweep.
	runner := agent.NewRunner(cfg)
	for t := 0; t < opt.Trials/4+1; t++ {
		r := runner.RunSeed(opt.Seed + int64(t)*31)
		for i, ph := range r.PhaseTrace {
			sums[ph] += r.EntropyTrace[i]
			counts[ph]++
			total++
		}
	}
	var out []StageProfile
	for _, ph := range []world.Phase{world.PhaseExplore, world.PhaseApproach, world.PhaseExecute} {
		if counts[ph] == 0 {
			continue
		}
		out = append(out, StageProfile{
			Phase:       ph,
			MeanEntropy: sums[ph] / float64(counts[ph]),
			Fraction:    float64(counts[ph]) / float64(total),
		})
	}
	return out
}

// StageCorruption measures how corruption during a specific phase affects
// the mine-logs subtask (Fig. 7: critical steps break chains, exploration
// tolerates noise). It returns success rates when errors are confined to
// one phase.
type StageCorruption struct {
	Phase       world.Phase
	SuccessRate float64
	AvgSteps    float64
}

// fig7InjectionTargets are the corrupted phases of the Fig. 7 experiment,
// in row order (also the sharding grain).
var fig7InjectionTargets = []world.Phase{world.PhaseExplore, world.PhaseExecute}

// fig7InjectionPoint fingerprints one phase-targeted corruption row. The
// bespoke episode loop has no agent.Config to map mechanically, so the
// error-model tag and override name identify the loop and its target phase;
// BER carries the per-step corruption probability q.
func fig7InjectionPoint(q float64, target world.Phase, opt Options) cache.Point {
	return cache.Point{
		Task:       string(world.TaskLog),
		ErrorModel: "phase-targeted",
		BER:        q,
		Override:   "phase-inject/" + strconv.Itoa(int(target)),
		Trials:     opt.Trials,
		Seed:       opt.Seed,
	}
}

// Fig7PhaseInjection injects a fixed action-corruption probability only
// during the given phase of the log task. Rows are cached (the aggregate is
// a pure function of the fingerprint) and sharded at row grain, so sharded
// and served runs reuse them like any other grid point.
func Fig7PhaseInjection(e *Env, opt Options, q float64) []StageCorruption {
	var out []StageCorruption
	for idx, target := range fig7InjectionTargets {
		if !opt.owns(idx) {
			continue
		}
		out = append(out, e.phaseInjectionRow(q, target, opt))
	}
	return out
}

func (e *Env) phaseInjectionRow(q float64, target world.Phase, opt Options) StageCorruption {
	compute := func() agent.Summary {
		success, stepsSum, n := 0, 0.0, 0
		sc := &phaseScratch{}
		for t := 0; t < opt.Trials; t++ {
			r := runPhaseTargeted(sc, world.TaskLog, q, target, opt.Seed+int64(t)*17)
			if r.ok {
				success++
				stepsSum += float64(r.steps)
				n++
			}
		}
		sum := agent.Summary{Trials: opt.Trials, SuccessRate: float64(success) / float64(opt.Trials)}
		if n > 0 {
			sum.AvgSteps = stepsSum / float64(n)
		}
		return sum
	}
	var s agent.Summary
	if e.Cache == nil {
		s = compute()
	} else {
		s = e.cachedCompute(opt, fig7InjectionPoint(q, target, opt), compute)
	}
	return StageCorruption{Phase: target, SuccessRate: s.SuccessRate, AvgSteps: s.AvgSteps}
}

type phaseResult struct {
	ok    bool
	steps int
}

// phaseScratch pools the bespoke loop's per-trial state the same way the
// agent's runScratch does: world, expert and RNG are reseeded per trial —
// byte-identical to fresh construction — instead of reallocated.
type phaseScratch struct {
	rng    *rand.Rand
	w      *world.World
	expert *world.Expert
}

// runPhaseTargeted is a bespoke episode loop that corrupts actions only in
// the targeted phase.
func runPhaseTargeted(sc *phaseScratch, task world.TaskName, q float64, target world.Phase, seed int64) phaseResult {
	if sc.rng == nil {
		sc.rng = rand.New(rand.NewSource(seed))
	} else {
		sc.rng.Seed(seed) //create:rng-reviewed per-trial rewind: the stream restarts from seed so every trial is a function of its seed alone
	}
	rng := sc.rng
	spec := world.Specs[task]
	if sc.w == nil {
		sc.w = world.New(spec.Biome, seed+1)
	} else {
		sc.w.Reset(spec.Biome, seed+1)
	}
	if sc.expert == nil {
		sc.expert = world.NewExpert(seed + 2)
	} else {
		sc.expert.Reseed(seed + 2)
	}
	w, expert := sc.w, sc.expert
	st := world.Subtask{Kind: world.MineLog, Item: world.Log, Count: spec.Count}
	for step := 0; step < 4000; step++ {
		if st.Done(w) {
			return phaseResult{ok: true, steps: step}
		}
		dec := expert.Decide(w, st)
		action := dec.Sample(rng)
		if dec.Phase == target && rng.Float64() < q {
			action = world.Action(rng.Intn(world.NumActions))
		}
		w.Step(action, dec.Goal)
	}
	return phaseResult{}
}

// ---------------------------------------------------------------------------
// Figure 8(a): runtime GEMM output distribution.

// GEMMProfile summarizes the runtime GEMM output distribution of the
// miniature pipeline: most values near zero, none near the accumulator's
// significant-bit range — the property the anomaly bound exploits.
type GEMMProfile struct {
	// FracNearZero is the fraction of outputs within 10 % of the range.
	FracNearZero float64
	// MaxAccBits is the highest accumulator bit any clean output touches.
	MaxAccBits int
}

// Fig8GEMMProfile profiles clean accumulator values across a planner
// forward pass.
func Fig8GEMMProfile(opt Options) GEMMProfile {
	p := model.NewPlanner(model.DefaultPlannerConfig())
	eng := systolic.NewEngine(opt.Seed)
	be := nn.NewSystolic(eng)
	be.Calibrating = true

	var all []int32
	// Wrap: accumulate raw accumulator values via a counting pass.
	tokens := p.PromptTokens(16, opt.Seed)
	// Run calibration to install profiles, then collect accumulators
	// layer by layer using Accumulate on representative shapes.
	p.Forward(be, tokens)
	be.Calibrating = false

	x := tensor.NewMat(16, 64)
	rng := rand.New(rand.NewSource(opt.Seed))
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	acc, _ := eng.Accumulate(x, p.Blocks[0].Attn.Q.W)
	all = append(all, acc...)
	acc, _ = eng.Accumulate(x, p.Blocks[0].Attn.K.W)
	all = append(all, acc...)

	maxBit := 0
	nearZero := 0
	var absMax int32
	for _, v := range all {
		if v < 0 {
			v = -v
		}
		if v > absMax {
			absMax = v
		}
	}
	for _, v := range all {
		if v < 0 {
			v = -v
		}
		if float64(v) < 0.1*float64(absMax) {
			nearZero++
		}
	}
	for b := timing.AccBits - 1; b >= 0; b-- {
		if absMax >= int32(1)<<uint(b) {
			maxBit = b
			break
		}
	}
	return GEMMProfile{
		FracNearZero: float64(nearZero) / float64(len(all)),
		MaxAccBits:   maxBit,
	}
}

// ---------------------------------------------------------------------------
// Figure 9(b): pre/post-rotation activation distribution.

// RotationProfile compares the planner residual stream before and after the
// Hadamard weight rotation.
type RotationProfile struct {
	AbsMaxBefore, AbsMaxAfter float64
	StdBefore, StdAfter       float64
	// OutputDrift is the max logit difference between the rotated and
	// original networks on the same prompt (must be ~0: rotation is
	// function preserving).
	OutputDrift float64
}

// Fig9Rotation measures outlier dispersal by weight rotation.
func Fig9Rotation(opt Options) RotationProfile {
	cfg := model.DefaultPlannerConfig()
	base := model.NewPlanner(cfg)
	rot := model.NewPlanner(cfg)
	rot.ApplyWeightRotation()

	capture := func(p *model.Planner) []float32 {
		var data []float32
		p.Probe = func(layer int, h *tensor.Mat) {
			if layer == p.Cfg.Layers-1 {
				data = append(data[:0], h.Data...)
			}
		}
		p.Forward(nn.Float{}, p.PromptTokens(16, opt.Seed))
		p.Probe = nil
		return data
	}
	before := capture(base)
	after := capture(rot)

	tokens := base.PromptTokens(16, opt.Seed)
	l1 := base.Forward(nn.Float{}, tokens)
	l2 := rot.Forward(nn.Float{}, tokens)

	return RotationProfile{
		AbsMaxBefore: float64(tensor.AbsMax(before)),
		AbsMaxAfter:  float64(tensor.AbsMax(after)),
		StdBefore:    tensor.Std(before),
		StdAfter:     tensor.Std(after),
		OutputDrift:  tensor.MaxAbsDiff(l1, l2),
	}
}

// ---------------------------------------------------------------------------
// Figure 10: entropy curve across timesteps.

// Fig10EntropyCurve returns the per-step entropy trace of one clean episode
// (higher entropy = non-critical exploration, lower = critical execution).
func Fig10EntropyCurve(opt Options, task world.TaskName) ([]float64, []world.Phase) {
	cfg := agent.Config{Task: task, UniformBER: 0, Trace: true, Seed: opt.Seed}
	r := agent.Run(cfg)
	return r.EntropyTrace, r.PhaseTrace
}

package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/cache"
)

// cachedOptions keeps trials small: these tests assert reuse accounting and
// replay identity, not statistical quality.
func cachedOptions() Options { return Options{Trials: 4, Seed: 2026} }

// TestFig16CacheComputesEachPointOnce is the acceptance gate for the reuse
// layer: across the whole fig16 workload (reliability at 0.75 V plus the
// per-task voltage descent), each unique (task, config, voltage, trials,
// seed) point is computed exactly once, and the overlap between the two
// sweeps — the descent re-evaluates the supplies reliability already ran —
// is served from cache.
func TestFig16CacheComputesEachPointOnce(t *testing.T) {
	e := NewEnv()
	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	e.Cache = store
	opt := cachedOptions()

	rel := Fig16Reliability(e, opt)
	eff := Fig16Efficiency(e, opt)

	if got, want := store.Misses(), int64(store.Len()); got != want {
		t.Fatalf("%d misses for %d unique points: some point was computed more than once", got, want)
	}
	// The efficiency sweep's clean baseline runs at the nominal supply,
	// which is also each descent's first grid voltage — so cross-sweep
	// hits are guaranteed, beyond whatever depth the descents reach.
	if store.Hits() == 0 {
		t.Fatal("Fig16Reliability and Fig16Efficiency share runOverall points; expected cache hits")
	}

	// A replay is pure hits and reproduces identical rows.
	misses := store.Misses()
	rel2 := Fig16Reliability(e, opt)
	eff2 := Fig16Efficiency(e, opt)
	if store.Misses() != misses {
		t.Fatalf("replay recomputed %d points", store.Misses()-misses)
	}
	if !reflect.DeepEqual(rel, rel2) {
		t.Fatal("cached replay of Fig16Reliability diverged")
	}
	if !reflect.DeepEqual(eff, eff2) {
		t.Fatal("cached replay of Fig16Efficiency diverged")
	}
}

// TestCachedSweepsMatchUncached: attaching a cache must never change a
// result — first runs go through the compute path and replays through the
// decode path, and both must equal the cache-free rows.
func TestCachedSweepsMatchUncached(t *testing.T) {
	opt := cachedOptions()
	plain := NewEnv()
	cached := NewEnv()
	store, _ := cache.New(t.TempDir())
	cached.Cache = store

	if a, b := Fig13WR(plain, opt), Fig13WR(cached, opt); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig13WR diverged with a cache attached:\n%+v\n%+v", a, b)
	}
	if a, b := Fig19ErrorModels(plain, opt), Fig19ErrorModels(cached, opt); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig19ErrorModels diverged with a cache attached:\n%+v\n%+v", a, b)
	}
	if a, b := Fig15Interval(plain, opt), Fig15Interval(cached, opt); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig15Interval diverged with a cache attached:\n%+v\n%+v", a, b)
	}
}

// TestBespokeSweepsCached: the cross-platform abstract episodes and the
// phase-targeted injection rows — the Monte-Carlo loops that live outside
// runTask — are served through the content-addressed cache like any grid
// point: attaching a cache never changes a row, and a replay recomputes
// nothing.
func TestBespokeSweepsCached(t *testing.T) {
	opt := cachedOptions()
	plain := NewEnv()
	wantCross := Fig17CrossPlatform(plain, opt)
	wantPhase := Fig7PhaseInjection(plain, opt, Fig7InjectionQ)

	cached := NewEnv()
	store, err := cache.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cached.Cache = store
	if got := Fig17CrossPlatform(cached, opt); !reflect.DeepEqual(wantCross, got) {
		t.Fatalf("Fig17CrossPlatform diverged with a cache attached:\n%+v\n%+v", wantCross, got)
	}
	if got := Fig7PhaseInjection(cached, opt, Fig7InjectionQ); !reflect.DeepEqual(wantPhase, got) {
		t.Fatalf("Fig7PhaseInjection diverged with a cache attached:\n%+v\n%+v", wantPhase, got)
	}

	misses := store.Misses()
	if got := Fig17CrossPlatform(cached, opt); !reflect.DeepEqual(wantCross, got) {
		t.Fatal("cached replay of Fig17CrossPlatform diverged")
	}
	if got := Fig7PhaseInjection(cached, opt, Fig7InjectionQ); !reflect.DeepEqual(wantPhase, got) {
		t.Fatal("cached replay of Fig7PhaseInjection diverged")
	}
	if store.Misses() != misses {
		t.Fatalf("replay recomputed %d bespoke points", store.Misses()-misses)
	}

	// A cold store over the same directory decodes every entry from disk —
	// the JSON round trip must be exact for the abstract-episode summaries
	// (success rates and voltage histograms) too.
	colder := NewEnv()
	coldStore, err := cache.New(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	colder.Cache = coldStore
	if got := Fig17CrossPlatform(colder, opt); !reflect.DeepEqual(wantCross, got) {
		t.Fatal("disk replay of Fig17CrossPlatform diverged")
	}
	if coldStore.Misses() != 0 {
		t.Fatalf("disk replay recomputed %d points", coldStore.Misses())
	}
}

// TestFlightCoalescesConcurrentMisses: when parallel sweeps miss the same
// fingerprint simultaneously (overlapping service jobs), exactly one
// computes; the rest share its summary.
func TestFlightCoalescesConcurrentMisses(t *testing.T) {
	var g flightGroup
	var computes atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]float64, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			s := g.do("point", func() agent.Summary {
				computes.Add(1)
				time.Sleep(10 * time.Millisecond) // widen the race window
				return agent.Summary{SuccessRate: 0.75}
			})
			results[i] = s.SuccessRate
		}(i)
	}
	close(start)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("concurrent misses computed %d times, want 1", got)
	}
	for i, r := range results {
		if r != 0.75 {
			t.Fatalf("caller %d got %v", i, r)
		}
	}

	// Sequential calls after completion compute again — results live in the
	// cache, not the flight group.
	g.do("point", func() agent.Summary { computes.Add(1); return agent.Summary{} })
	if computes.Load() != 2 {
		t.Fatal("flight group retained a completed call")
	}
}

// TestFlightPanicDoesNotWedge: a panicking compute releases the flight
// slot and re-raises in the owner and every waiter — the fingerprint stays
// usable instead of blocking all future misses forever.
func TestFlightPanicDoesNotWedge(t *testing.T) {
	var g flightGroup
	recovered := func(fn func()) (r any) {
		defer func() { r = recover() }()
		fn()
		return nil
	}

	inFlight := make(chan struct{})
	release := make(chan struct{})
	var waiterPanic any
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = recovered(func() {
			g.do("p", func() agent.Summary {
				close(inFlight)
				<-release
				panic("episode exploded")
			})
		})
	}()
	waiterJoined := make(chan struct{})
	go func() {
		defer wg.Done()
		<-inFlight // the owner's slot is registered and blocked in compute
		close(waiterJoined)
		waiterPanic = recovered(func() { g.do("p", func() agent.Summary { return agent.Summary{} }) })
	}()
	<-waiterJoined
	time.Sleep(20 * time.Millisecond) // let the waiter block on the owner's done channel
	close(release)
	wg.Wait()
	if waiterPanic != "episode exploded" {
		t.Fatalf("waiter saw %v, want the owner's panic", waiterPanic)
	}

	// The slot is free: the next caller computes normally.
	s := g.do("p", func() agent.Summary { return agent.Summary{SuccessRate: 1} })
	if s.SuccessRate != 1 {
		t.Fatal("flight slot wedged after a panic")
	}
}

// TestCachedComputeSharedAcrossSweeps drives the whole stack: two
// goroutines running overlapping sweeps against one Env compute each shared
// point once (misses may double-count — both callers legitimately missed —
// but Monte-Carlo work, measured by resident points vs flight computes,
// does not duplicate).
func TestCachedComputeSharedAcrossSweeps(t *testing.T) {
	e := NewEnv()
	store, _ := cache.New("")
	e.Cache = store
	opt := cachedOptions()

	var wg sync.WaitGroup
	outs := make([][]ResiliencePoint, 2)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = Fig5Controller(e, opt) // identical grids, racing
		}(i)
	}
	wg.Wait()
	if !reflect.DeepEqual(outs[0], outs[1]) {
		t.Fatal("racing identical sweeps diverged")
	}
	// Every point resident exactly once; the cache-free reference matches.
	want := Fig5Controller(NewEnv(), opt)
	if !reflect.DeepEqual(outs[0], want) {
		t.Fatal("raced sweep diverged from the cache-free reference")
	}
}

// TestShardedRunsMergeToUnshardedResults is the library-level determinism
// gate behind the CI matrix: three sharded runs, each persisting only its
// own grid points, merge into a cache whose replay (a) recomputes nothing
// and (b) is indistinguishable from a cache-free unsharded run.
func TestShardedRunsMergeToUnshardedResults(t *testing.T) {
	base := t.TempDir()
	opt := cachedOptions()
	const numShards = 3

	shardDirs := make([]string, numShards)
	for k := 0; k < numShards; k++ {
		shardDirs[k] = filepath.Join(base, fmt.Sprintf("shard%d", k))
		store, err := cache.New(shardDirs[k])
		if err != nil {
			t.Fatal(err)
		}
		e := NewEnv()
		e.Cache = store
		so := opt
		so.Shard, so.NumShards = k, numShards
		Fig16Reliability(e, so)
		Fig13WR(e, so)
		Fig19ErrorModels(e, so)
		Fig6Subtasks(e, so)
		Fig17CrossPlatform(e, so)
		Fig7PhaseInjection(e, so, Fig7InjectionQ)
	}

	merged := filepath.Join(base, "merged")
	if _, err := cache.MergeDirs(merged, shardDirs...); err != nil {
		t.Fatal(err)
	}

	store, err := cache.New(merged)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnv()
	e.Cache = store
	rel := Fig16Reliability(e, opt)
	wr := Fig13WR(e, opt)
	em := Fig19ErrorModels(e, opt)
	sub := Fig6Subtasks(e, opt)
	cross := Fig17CrossPlatform(e, opt)
	phase := Fig7PhaseInjection(e, opt, Fig7InjectionQ)
	if store.Misses() != 0 {
		t.Fatalf("merged replay recomputed %d points: shards did not cover the grid", store.Misses())
	}

	plain := NewEnv()
	if want := Fig16Reliability(plain, opt); !reflect.DeepEqual(rel, want) {
		t.Fatal("merged Fig16Reliability diverged from the unsharded run")
	}
	if want := Fig13WR(plain, opt); !reflect.DeepEqual(wr, want) {
		t.Fatal("merged Fig13WR diverged from the unsharded run")
	}
	if want := Fig19ErrorModels(plain, opt); !reflect.DeepEqual(em, want) {
		t.Fatal("merged Fig19ErrorModels diverged from the unsharded run")
	}
	if want := Fig6Subtasks(plain, opt); !reflect.DeepEqual(sub, want) {
		t.Fatal("merged Fig6Subtasks diverged from the unsharded run")
	}
	if want := Fig17CrossPlatform(plain, opt); !reflect.DeepEqual(cross, want) {
		t.Fatal("merged Fig17CrossPlatform diverged from the unsharded run")
	}
	if want := Fig7PhaseInjection(plain, opt, Fig7InjectionQ); !reflect.DeepEqual(phase, want) {
		t.Fatal("merged Fig7PhaseInjection diverged from the unsharded run")
	}
}

// TestShardsPartitionTheGrid: every grid point is owned by exactly one
// shard, so concatenating the shards' non-zero rows covers the unsharded
// row set exactly once.
func TestShardsPartitionTheGrid(t *testing.T) {
	opt := cachedOptions()
	e := NewEnv()
	full := Fig16Reliability(e, opt)

	owned := 0
	for k := 0; k < 3; k++ {
		so := opt
		so.Shard, so.NumShards = k, 3
		pts := Fig16Reliability(e, so)
		if len(pts) != len(full) {
			t.Fatalf("sharded grid changed shape: %d vs %d rows", len(pts), len(full))
		}
		for i, p := range pts {
			if p.Task == "" { // skipped scaffolding row
				continue
			}
			owned++
			if !reflect.DeepEqual(p, full[i]) {
				t.Fatalf("shard %d row %d diverged: %+v vs %+v", k, i, p, full[i])
			}
		}
	}
	if owned != len(full) {
		t.Fatalf("shards covered %d of %d points", owned, len(full))
	}
}

func TestParseShard(t *testing.T) {
	cases := []struct {
		in       string
		shard, n int
		wantErr  bool
	}{
		{"", 0, 0, false},
		{"1/3", 0, 3, false},
		{"3/3", 2, 3, false},
		{"1/1", 0, 1, false},
		{"0/3", 0, 0, true},
		{"4/3", 0, 0, true},
		{"x/3", 0, 0, true},
		{"2", 0, 0, true},
		{"2/", 0, 0, true},
	}
	for _, c := range cases {
		shard, n, err := ParseShard(c.in)
		if (err != nil) != c.wantErr {
			t.Fatalf("ParseShard(%q) err=%v, wantErr=%v", c.in, err, c.wantErr)
		}
		if err == nil && (shard != c.shard || n != c.n) {
			t.Fatalf("ParseShard(%q) = %d,%d want %d,%d", c.in, shard, n, c.shard, c.n)
		}
	}
}

// TestOptionsSplitNeverZero is the regression test for the nested-worker
// clamp: a 0 at either level would select GOMAXPROCS downstream (<= 0 means
// "all cores" throughout the engine) and blow the concurrency budget.
func TestOptionsSplitNeverZero(t *testing.T) {
	for w := -2; w <= 16; w++ {
		for n := 0; n <= 48; n++ {
			gridW, opt := Options{Trials: 1, Workers: w}.split(n)
			if gridW < 1 || opt.Workers < 1 {
				t.Fatalf("split(workers=%d, n=%d) handed out a starved level: grid=%d trial=%d",
					w, n, gridW, opt.Workers)
			}
			if w >= 1 && gridW*opt.Workers > w && gridW > 1 {
				t.Fatalf("split(workers=%d, n=%d) exceeds the budget: grid=%d trial=%d",
					w, n, gridW, opt.Workers)
			}
		}
	}
}

// TestCanceledContextAbortsBetweenGridPoints: once Options.Ctx is
// canceled, the next grid-point boundary panics with Canceled — the
// mechanism behind DELETE /v1/jobs/{id} on a running job — and a nil Ctx
// never cancels.
func TestCanceledContextAbortsBetweenGridPoints(t *testing.T) {
	e := NewEnv()
	store, _ := cache.New("")
	e.Cache = store
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := cachedOptions()
	opt.Workers = 1
	opt.Ctx = ctx

	caught := func() (r any) {
		defer func() { r = recover() }()
		Fig15Interval(e, opt)
		return nil
	}()
	if _, ok := caught.(Canceled); !ok {
		t.Fatalf("canceled sweep raised %v, want Canceled", caught)
	}
	if store.Misses() != 0 {
		t.Fatalf("canceled sweep still computed %d points", store.Misses())
	}

	// The uncancelled path is untouched, and a live (un-canceled) context
	// lets the sweep run to completion.
	opt.Ctx = context.Background()
	if rows := Fig15Interval(e, opt); len(rows) == 0 {
		t.Fatal("live context blocked the sweep")
	}
}

// TestFig14PredictorCached: the predictor training run — dataset build
// plus epoch loop — is content-addressed like any grid point: the second
// call replays the stored result without retraining, a cold store replays
// from disk, and the cached result equals the direct computation.
func TestFig14PredictorCached(t *testing.T) {
	opt := Options{Trials: 1, Seed: 2026}
	scale := PredictorScale{TrainFrames: 24, TestFrames: 8, Epochs: 1}
	want := Fig14Predictor(opt, scale)

	dir := t.TempDir()
	e := NewEnv()
	store, err := cache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	e.Cache = store
	if got := e.Fig14PredictorCached(opt, scale); got != want {
		t.Fatalf("cached training diverged: %+v vs %+v", got, want)
	}
	misses := store.Misses()
	if got := e.Fig14PredictorCached(opt, scale); got != want {
		t.Fatal("replayed training result diverged")
	}
	if store.Misses() != misses {
		t.Fatal("second call retrained instead of replaying")
	}

	// A different scale is a different fingerprint: no false sharing.
	other := scale
	other.Epochs = 2
	if got := e.Fig14PredictorCached(opt, other); got == want {
		t.Fatal("distinct training schedules shared a fingerprint")
	}

	// A cold environment over the same directory replays from disk.
	cold := NewEnv()
	coldStore, err := cache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold.Cache = coldStore
	if got := cold.Fig14PredictorCached(opt, scale); got != want {
		t.Fatal("disk replay of the training result diverged")
	}
	if coldStore.Misses() != 0 {
		t.Fatalf("disk replay retrained (%d misses)", coldStore.Misses())
	}
}

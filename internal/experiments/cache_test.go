package experiments

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/embodiedai/create/internal/cache"
)

// cachedOptions keeps trials small: these tests assert reuse accounting and
// replay identity, not statistical quality.
func cachedOptions() Options { return Options{Trials: 4, Seed: 2026} }

// TestFig16CacheComputesEachPointOnce is the acceptance gate for the reuse
// layer: across the whole fig16 workload (reliability at 0.75 V plus the
// per-task voltage descent), each unique (task, config, voltage, trials,
// seed) point is computed exactly once, and the overlap between the two
// sweeps — the descent re-evaluates the supplies reliability already ran —
// is served from cache.
func TestFig16CacheComputesEachPointOnce(t *testing.T) {
	e := NewEnv()
	store, err := cache.New("")
	if err != nil {
		t.Fatal(err)
	}
	e.Cache = store
	opt := cachedOptions()

	rel := Fig16Reliability(e, opt)
	eff := Fig16Efficiency(e, opt)

	if got, want := store.Misses(), int64(store.Len()); got != want {
		t.Fatalf("%d misses for %d unique points: some point was computed more than once", got, want)
	}
	// The efficiency sweep's clean baseline runs at the nominal supply,
	// which is also each descent's first grid voltage — so cross-sweep
	// hits are guaranteed, beyond whatever depth the descents reach.
	if store.Hits() == 0 {
		t.Fatal("Fig16Reliability and Fig16Efficiency share runOverall points; expected cache hits")
	}

	// A replay is pure hits and reproduces identical rows.
	misses := store.Misses()
	rel2 := Fig16Reliability(e, opt)
	eff2 := Fig16Efficiency(e, opt)
	if store.Misses() != misses {
		t.Fatalf("replay recomputed %d points", store.Misses()-misses)
	}
	if !reflect.DeepEqual(rel, rel2) {
		t.Fatal("cached replay of Fig16Reliability diverged")
	}
	if !reflect.DeepEqual(eff, eff2) {
		t.Fatal("cached replay of Fig16Efficiency diverged")
	}
}

// TestCachedSweepsMatchUncached: attaching a cache must never change a
// result — first runs go through the compute path and replays through the
// decode path, and both must equal the cache-free rows.
func TestCachedSweepsMatchUncached(t *testing.T) {
	opt := cachedOptions()
	plain := NewEnv()
	cached := NewEnv()
	store, _ := cache.New(t.TempDir())
	cached.Cache = store

	if a, b := Fig13WR(plain, opt), Fig13WR(cached, opt); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig13WR diverged with a cache attached:\n%+v\n%+v", a, b)
	}
	if a, b := Fig19ErrorModels(plain, opt), Fig19ErrorModels(cached, opt); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig19ErrorModels diverged with a cache attached:\n%+v\n%+v", a, b)
	}
	if a, b := Fig15Interval(plain, opt), Fig15Interval(cached, opt); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig15Interval diverged with a cache attached:\n%+v\n%+v", a, b)
	}
}

// TestShardedRunsMergeToUnshardedResults is the library-level determinism
// gate behind the CI matrix: three sharded runs, each persisting only its
// own grid points, merge into a cache whose replay (a) recomputes nothing
// and (b) is indistinguishable from a cache-free unsharded run.
func TestShardedRunsMergeToUnshardedResults(t *testing.T) {
	base := t.TempDir()
	opt := cachedOptions()
	const numShards = 3

	shardDirs := make([]string, numShards)
	for k := 0; k < numShards; k++ {
		shardDirs[k] = filepath.Join(base, fmt.Sprintf("shard%d", k))
		store, err := cache.New(shardDirs[k])
		if err != nil {
			t.Fatal(err)
		}
		e := NewEnv()
		e.Cache = store
		so := opt
		so.Shard, so.NumShards = k, numShards
		Fig16Reliability(e, so)
		Fig13WR(e, so)
		Fig19ErrorModels(e, so)
		Fig6Subtasks(e, so)
	}

	merged := filepath.Join(base, "merged")
	if _, err := cache.MergeDirs(merged, shardDirs...); err != nil {
		t.Fatal(err)
	}

	store, err := cache.New(merged)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnv()
	e.Cache = store
	rel := Fig16Reliability(e, opt)
	wr := Fig13WR(e, opt)
	em := Fig19ErrorModels(e, opt)
	sub := Fig6Subtasks(e, opt)
	if store.Misses() != 0 {
		t.Fatalf("merged replay recomputed %d points: shards did not cover the grid", store.Misses())
	}

	plain := NewEnv()
	if want := Fig16Reliability(plain, opt); !reflect.DeepEqual(rel, want) {
		t.Fatal("merged Fig16Reliability diverged from the unsharded run")
	}
	if want := Fig13WR(plain, opt); !reflect.DeepEqual(wr, want) {
		t.Fatal("merged Fig13WR diverged from the unsharded run")
	}
	if want := Fig19ErrorModels(plain, opt); !reflect.DeepEqual(em, want) {
		t.Fatal("merged Fig19ErrorModels diverged from the unsharded run")
	}
	if want := Fig6Subtasks(plain, opt); !reflect.DeepEqual(sub, want) {
		t.Fatal("merged Fig6Subtasks diverged from the unsharded run")
	}
}

// TestShardsPartitionTheGrid: every grid point is owned by exactly one
// shard, so concatenating the shards' non-zero rows covers the unsharded
// row set exactly once.
func TestShardsPartitionTheGrid(t *testing.T) {
	opt := cachedOptions()
	e := NewEnv()
	full := Fig16Reliability(e, opt)

	owned := 0
	for k := 0; k < 3; k++ {
		so := opt
		so.Shard, so.NumShards = k, 3
		pts := Fig16Reliability(e, so)
		if len(pts) != len(full) {
			t.Fatalf("sharded grid changed shape: %d vs %d rows", len(pts), len(full))
		}
		for i, p := range pts {
			if p.Task == "" { // skipped scaffolding row
				continue
			}
			owned++
			if !reflect.DeepEqual(p, full[i]) {
				t.Fatalf("shard %d row %d diverged: %+v vs %+v", k, i, p, full[i])
			}
		}
	}
	if owned != len(full) {
		t.Fatalf("shards covered %d of %d points", owned, len(full))
	}
}

func TestParseShard(t *testing.T) {
	cases := []struct {
		in       string
		shard, n int
		wantErr  bool
	}{
		{"", 0, 0, false},
		{"1/3", 0, 3, false},
		{"3/3", 2, 3, false},
		{"1/1", 0, 1, false},
		{"0/3", 0, 0, true},
		{"4/3", 0, 0, true},
		{"x/3", 0, 0, true},
		{"2", 0, 0, true},
		{"2/", 0, 0, true},
	}
	for _, c := range cases {
		shard, n, err := ParseShard(c.in)
		if (err != nil) != c.wantErr {
			t.Fatalf("ParseShard(%q) err=%v, wantErr=%v", c.in, err, c.wantErr)
		}
		if err == nil && (shard != c.shard || n != c.n) {
			t.Fatalf("ParseShard(%q) = %d,%d want %d,%d", c.in, shard, n, c.shard, c.n)
		}
	}
}

// TestOptionsSplitNeverZero is the regression test for the nested-worker
// clamp: a 0 at either level would select GOMAXPROCS downstream (<= 0 means
// "all cores" throughout the engine) and blow the concurrency budget.
func TestOptionsSplitNeverZero(t *testing.T) {
	for w := -2; w <= 16; w++ {
		for n := 0; n <= 48; n++ {
			gridW, opt := Options{Trials: 1, Workers: w}.split(n)
			if gridW < 1 || opt.Workers < 1 {
				t.Fatalf("split(workers=%d, n=%d) handed out a starved level: grid=%d trial=%d",
					w, n, gridW, opt.Workers)
			}
			if w >= 1 && gridW*opt.Workers > w && gridW > 1 {
				t.Fatalf("split(workers=%d, n=%d) exceeds the budget: grid=%d trial=%d",
					w, n, gridW, opt.Workers)
			}
		}
	}
}

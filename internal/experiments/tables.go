package experiments

import (
	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/quant"
	"github.com/embodiedai/create/internal/stats"
	"github.com/embodiedai/create/internal/world"
)

// ---------------------------------------------------------------------------
// Table 5: statistical significance of repetitions.

// Table5Row is one repetition-count sample.
type Table5Row struct {
	Repetitions int
	SuccessRate float64
	// CI95 is the 95 % confidence half-width at this repetition count.
	CI95 float64
}

// Table5Repetitions measures the wooden task's success rate (controller BER
// 1e-7, as in the paper's Table 5) across growing repetition counts: by 100
// repetitions the estimate has converged within the paper's 3-5 % CI band.
func Table5Repetitions(e *Env, opt Options) []Table5Row {
	counts := []int{20, 40, 60, 80, 100, 140, 200}
	var out []Table5Row
	for _, n := range counts {
		cfg := agent.Config{
			Task:       world.TaskWooden,
			Controller: e.Controller,
			UniformBER: 1e-7,
			Seed:       opt.Seed,
		}
		s := agent.RunMany(cfg, n)
		out = append(out, Table5Row{
			Repetitions: n,
			SuccessRate: s.SuccessRate,
			CI95:        stats.BinomialCI(s.SuccessRate, n),
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Table 6: INT8 vs INT4 under AD+WR.

// Table6Row is one (quantization, BER) success sample on stone.
type Table6Row struct {
	Bits        quant.Bits
	BER         float64
	SuccessRate float64
}

// Table6Quantization evaluates AD+WR on the stone task under INT8 and INT4
// operand quantization across the high-BER band: the protected success
// rates are statistically indistinguishable (Sec. 6.9), because AD+WR
// compresses the undetected error range below the anomaly threshold in both
// formats. INT4's severity weighting comes from miniature measurements at
// INT4 (which only matter under non-uniform rates); the AD+WR knee applies
// to both.
func Table6Quantization(e *Env, opt Options) []Table6Row {
	var out []Table6Row
	for _, bits := range table6Bits {
		for _, j := range table6Jobs(e, bits) {
			// fm.ID() separates the INT4 variant; the INT8 rows share the
			// Fig. 13 ablation's points where the BER grids overlap.
			s := e.runJob(j, opt)
			out = append(out, Table6Row{Bits: bits, BER: j.cfg.UniformBER, SuccessRate: s.SuccessRate})
		}
	}
	return out
}

var (
	table6Bits = []quant.Bits{quant.INT8, quant.INT4}
	table6BERs = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2}
)

// table6Jobs builds one quantization format's BER grid, shared by the
// runner and the fingerprint enumerator.
func table6Jobs(e *Env, bits quant.Bits) []gridJob {
	fm := e.Planner
	if bits == quant.INT4 {
		fm = platformPlannerWithBits(bits)
	}
	jobs := make([]gridJob, 0, len(table6BERs))
	for _, ber := range table6BERs {
		cfg := agent.Config{
			Planner:     fm,
			PlannerProt: bridge.Protection{AD: true, WR: true},
			UniformBER:  ber,
		}
		jobs = append(jobs, gridJob{task: world.TaskStone, cfg: cfg})
	}
	return jobs
}

func platformPlannerWithBits(bits quant.Bits) *bridge.FaultModel {
	fm := bridge.NewPlannerFaultModel(bridge.JARVIS1PlannerShape)
	fm.SetQuantBits(bits)
	return fm
}

package experiments

import (
	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/baselines"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/world"
)

// ---------------------------------------------------------------------------
// Figure 20: comparison with existing techniques.

// ComparisonPoint is one (technique, voltage) sample of the Sec. 6.10
// comparison.
type ComparisonPoint struct {
	Technique   string
	Task        world.TaskName
	Voltage     float64
	SuccessRate float64
	AvgSteps    float64
	EnergyJ     float64
}

// Fig20Voltages is the comparison's supply grid.
var Fig20Voltages = []float64{0.90, 0.85, 0.80, 0.75, 0.70, 0.65}

// Fig20Baselines sweeps supply voltage for CREATE and the three baselines
// on wooden and stone: DMR stays reliable but pays >= 2x energy;
// ThUnderVolt's pruning degrades quality at low voltage; ABFT's recovery
// overhead explodes below ~0.85 V; CREATE alone keeps both quality and
// energy (Sec. 6.10: 35.0 % / 33.8 % savings over the best baseline).
func Fig20Baselines(e *Env, opt Options) []ComparisonPoint {
	var out []ComparisonPoint
	idx := 0
	for _, task := range []world.TaskName{world.TaskWooden, world.TaskStone} {
		for _, v := range Fig20Voltages {
			if !opt.owns(idx) {
				idx++
				continue
			}
			idx++
			out = append(out, e.createPoint(task, v, opt))
			for _, b := range baselines.All {
				out = append(out, e.baselinePoint(task, b, v, opt))
			}
		}
	}
	return out
}

// createConfig is the full CREATE stack at supply v (AD+WR planner, AD+VS
// controller with the supply as the VS ceiling), shared by the runner and
// the fingerprint enumerator.
func (e *Env) createConfig(v float64) (agent.Config, string) {
	cfg := agent.Config{
		Planner:     e.Planner,
		Controller:  e.Controller,
		PlannerProt: bridge.Protection{AD: true, WR: true},
		ControlProt: bridge.Protection{AD: true},
		UniformBER:  agent.VoltageMode,
		Timing:      e.Timing,
	}
	cfg.PlannerVoltage = v
	// The shared ceiling-at-supply policy of runOverall's "AD+WR+VS": same
	// closure, same cache identity, so matching (task, v, trials, seed)
	// points are shared with the Fig. 16 sweeps outright.
	vs, levels, policyID := ceiledPolicy(v)
	cfg.VSPolicy = vs
	cfg.VSLevels = levels
	return cfg, policyID
}

// createPoint runs the full CREATE stack.
func (e *Env) createPoint(task world.TaskName, v float64, opt Options) ComparisonPoint {
	cfg, policyID := e.createConfig(v)
	s := e.runTaskCached(task, cfg, opt, policyID, "")
	return ComparisonPoint{
		Technique: "CREATE", Task: task, Voltage: v,
		SuccessRate: s.SuccessRate, AvgSteps: s.AvgSteps,
		EnergyJ: e.EpisodeEnergy(s, true),
	}
}

// baselineConfig is one prior-art technique at a fixed supply via the
// agent's override hooks. The hooks are pure functions of (technique,
// voltage), so the baseline's name plus the voltage fields fingerprint them
// exactly.
func (e *Env) baselineConfig(b baselines.Baseline, v float64) (agent.Config, string) {
	return agent.Config{
		UniformBER:        agent.VoltageMode,
		Timing:            e.Timing,
		PlannerVoltage:    v,
		ControllerVoltage: v,
		PlannerCorruptOverride: func() float64 {
			return b.PlannerCorrupt(e.Timing, v)
		},
		ControllerCorruptOverride: func(cv float64) float64 {
			return b.ControllerCorrupt(e.Timing, cv)
		},
	}, b.Name
}

// baselinePoint runs one prior-art technique, applying its energy factor.
func (e *Env) baselinePoint(task world.TaskName, b baselines.Baseline, v float64, opt Options) ComparisonPoint {
	cfg, override := e.baselineConfig(b, v)
	s := e.runTaskCached(task, cfg, opt, "", override)
	energy := e.EpisodeEnergy(s, false) * b.EnergyFactor(e.Timing, v)
	return ComparisonPoint{
		Technique: b.Name, Task: task, Voltage: v,
		SuccessRate: s.SuccessRate, AvgSteps: s.AvgSteps, EnergyJ: energy,
	}
}

// BestEnergyAtQuality returns, for one technique, the lowest per-task energy
// among voltage points preserving success >= floor.
func BestEnergyAtQuality(pts []ComparisonPoint, technique string, task world.TaskName, floor float64) (float64, bool) {
	best := 0.0
	found := false
	for _, p := range pts {
		if p.Technique != technique || p.Task != task || p.SuccessRate < floor {
			continue
		}
		if !found || p.EnergyJ < best {
			best, found = p.EnergyJ, true
		}
	}
	return best, found
}

// ---------------------------------------------------------------------------
// Figure 21 / policy search (Sec. 6.5).

// Fig21Policies returns the selected mappings with their level structure.
func Fig21Policies() []policy.Mapping { return policy.Selected }

// PolicySearch scores candidate mappings on a task (success rate and
// effective voltage) and returns the scored set — the search that selected
// policies A-F from 100 candidates.
func PolicySearch(e *Env, opt Options, candidates []policy.Mapping, task world.TaskName) []policy.Scored {
	var scored []policy.Scored
	for _, m := range candidates {
		cfg := agent.Config{
			Controller:  e.Controller,
			ControlProt: bridge.Protection{AD: true},
			UniformBER:  agent.VoltageMode,
			Timing:      e.Timing,
			VSPolicy:    m.Func(),
			VSLevels:    m.VoltageLevels(),
		}
		s := e.runTask(task, cfg, opt)
		scored = append(scored, policy.Scored{
			Mapping:          m,
			SuccessRate:      s.SuccessRate,
			EffectiveVoltage: e.Power.EffectiveVoltage(s.StepsAtMV),
		})
	}
	return scored
}

package experiments

import (
	"math/rand"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/entropy"
	"github.com/embodiedai/create/internal/stats"
	"github.com/embodiedai/create/internal/world"
)

// ---------------------------------------------------------------------------
// Figure 14: entropy predictor accuracy.

// PredictorResult reports the Fig. 14 reproduction.
type PredictorResult struct {
	TrainFrames, TestFrames int
	Epochs                  int
	FinalTrainMSE           float64
	TestMSE                 float64
	R2                      float64
	ParamCount              int
}

// PredictorScale sizes the Fig. 14 run. The paper trains on >250 k frames
// for 200 epochs; the pure-Go trainer reproduces the accuracy trend at a
// configurable fraction of that budget.
type PredictorScale struct {
	TrainFrames, TestFrames, Epochs int
}

// QuickPredictorScale finishes in roughly a minute (R^2 ~ 0.6).
func QuickPredictorScale() PredictorScale {
	return PredictorScale{TrainFrames: 4000, TestFrames: 400, Epochs: 8}
}

// FullPredictorScale is the EXPERIMENTS.md reference run (several minutes,
// R^2 approaching the paper's 0.92 asymptotically).
func FullPredictorScale() PredictorScale {
	return PredictorScale{TrainFrames: 16000, TestFrames: 1200, Epochs: 16}
}

// Fig14Predictor trains and evaluates the Table 9 predictor end to end.
func Fig14Predictor(opt Options, scale PredictorScale) PredictorResult {
	train := entropy.BuildDataset(scale.TrainFrames, opt.Seed)
	test := entropy.BuildDataset(scale.TestFrames, opt.Seed+99991)
	p := entropy.NewPredictor(opt.Seed + 7)
	cfg := entropy.DefaultTrainConfig()
	cfg.Epochs = scale.Epochs
	cfg.Seed = opt.Seed
	losses := entropy.Train(p, train, cfg)
	m := entropy.Evaluate(p, test)
	return PredictorResult{
		TrainFrames:   scale.TrainFrames,
		TestFrames:    scale.TestFrames,
		Epochs:        scale.Epochs,
		FinalTrainMSE: losses[len(losses)-1],
		TestMSE:       m.MSE,
		R2:            m.R2,
		ParamCount:    p.ParamCount(),
	}
}

// TrackingPoint is one step of the Fig. 14(b) runtime trace: true entropy,
// prediction, and the resulting policy voltage.
type TrackingPoint struct {
	Step      int
	Entropy   float64
	Predicted float64
	Voltage   float64
}

// Fig14Tracking produces the runtime prediction-tracking trace using the
// calibrated noisy-oracle predictor and Policy C (Sec. 6.5's Fig. 14(b)).
func Fig14Tracking(opt Options, steps int, vs func(float64) float64) []TrackingPoint {
	cfg := agent.Config{
		Task:       world.TaskLog,
		UniformBER: 0,
		Trace:      true,
		Seed:       opt.Seed,
		VSPolicy:   vs,
	}
	r := agent.Run(cfg)
	n := len(r.EntropyTrace)
	if steps > n {
		steps = n
	}
	out := make([]TrackingPoint, steps)
	for i := 0; i < steps; i++ {
		out[i] = TrackingPoint{
			Step:      i,
			Entropy:   r.EntropyTrace[i],
			Predicted: r.PredictedTrace[i],
			Voltage:   r.VoltageTrace[i],
		}
	}
	return out
}

// OracleR2 measures the R^2 of the calibrated noisy-oracle predictor used
// by task-scale simulations, confirming it matches the trained predictor's
// accuracy class.
func OracleR2(opt Options, sigma float64, n int) float64 {
	rng := rand.New(rand.NewSource(opt.Seed))
	oracle := agent.NoisyOracle(sigma)
	truths := make([]float64, 0, n)
	preds := make([]float64, 0, n)
	cfg := agent.Config{Task: world.TaskStone, UniformBER: 0, Trace: true, Seed: opt.Seed}
	for len(truths) < n {
		cfg.Seed += 13
		r := agent.Run(cfg)
		for _, h := range r.EntropyTrace {
			truths = append(truths, h)
			preds = append(preds, oracle(h, rng))
			if len(truths) == n {
				break
			}
		}
	}
	return stats.R2(preds, truths)
}

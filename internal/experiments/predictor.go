package experiments

import (
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/entropy"
	"github.com/embodiedai/create/internal/stats"
	"github.com/embodiedai/create/internal/world"
)

// ---------------------------------------------------------------------------
// Figure 14: entropy predictor accuracy.

// PredictorResult reports the Fig. 14 reproduction.
type PredictorResult struct {
	TrainFrames, TestFrames int
	Epochs                  int
	FinalTrainMSE           float64
	TestMSE                 float64
	R2                      float64
	ParamCount              int
}

// PredictorScale sizes the Fig. 14 run. The paper trains on >250 k frames
// for 200 epochs; the pure-Go trainer reproduces the accuracy trend at a
// configurable fraction of that budget.
type PredictorScale struct {
	TrainFrames, TestFrames, Epochs int
}

// QuickPredictorScale finishes in roughly a minute (R^2 ~ 0.6).
func QuickPredictorScale() PredictorScale {
	return PredictorScale{TrainFrames: 4000, TestFrames: 400, Epochs: 8}
}

// FullPredictorScale is the EXPERIMENTS.md reference run (several minutes,
// R^2 approaching the paper's 0.92 asymptotically).
func FullPredictorScale() PredictorScale {
	return PredictorScale{TrainFrames: 16000, TestFrames: 1200, Epochs: 16}
}

// Fig14Predictor trains and evaluates the Table 9 predictor end to end.
func Fig14Predictor(opt Options, scale PredictorScale) PredictorResult {
	train := entropy.BuildDataset(scale.TrainFrames, opt.Seed)
	test := entropy.BuildDataset(scale.TestFrames, opt.Seed+99991)
	p := entropy.NewPredictor(opt.Seed + 7)
	cfg := entropy.DefaultTrainConfig()
	cfg.Epochs = scale.Epochs
	cfg.Seed = opt.Seed
	losses := entropy.Train(p, train, cfg)
	m := entropy.Evaluate(p, test)
	return PredictorResult{
		TrainFrames:   scale.TrainFrames,
		TestFrames:    scale.TestFrames,
		Epochs:        scale.Epochs,
		FinalTrainMSE: losses[len(losses)-1],
		TestMSE:       m.MSE,
		R2:            m.R2,
		ParamCount:    p.ParamCount(),
	}
}

// predictorFingerprint is the content address of one Fig. 14 training run.
// Every input that determines the trained predictor's metrics is spelled
// into the canonical string: the dataset sizes (train and held-out sets
// are regenerated from opt.Seed and its fixed offset), the full training
// schedule, and the architecture via its parameter count — so an
// architecture change retires stale entries instead of replaying them.
// The "payload|" prefix keeps the identity disjoint from grid points; the
// trailing version tag invalidates entries if the trainer itself changes.
func predictorFingerprint(opt Options, scale PredictorScale, cfg entropy.TrainConfig, params int) string {
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	return strings.Join([]string{
		"payload|fig14-predictor/v1",
		"train=" + strconv.Itoa(scale.TrainFrames),
		"test=" + strconv.Itoa(scale.TestFrames),
		"epochs=" + strconv.Itoa(cfg.Epochs),
		"batch=" + strconv.Itoa(cfg.BatchSize),
		"lr=" + f(cfg.LR),
		"params=" + strconv.Itoa(params),
		"seed=" + strconv.FormatInt(opt.Seed, 10),
	}, "|")
}

// Fig14PredictorCached is Fig14Predictor behind the content-addressed
// cache: the training dataset build and the epoch loop — by far the most
// expensive uncached work in the suite — run once per fingerprint and
// replay everywhere else, exactly like a grid point's Summary. With no
// cache attached it is Fig14Predictor.
func (e *Env) Fig14PredictorCached(opt Options, scale PredictorScale) PredictorResult {
	if e == nil || e.Cache == nil {
		return Fig14Predictor(opt, scale)
	}
	cfg := entropy.DefaultTrainConfig()
	cfg.Epochs = scale.Epochs
	cfg.Seed = opt.Seed
	fp := predictorFingerprint(opt, scale, cfg, predictorParamCount())
	var res PredictorResult
	if e.Cache.GetPayload(fp, &res) {
		return res
	}
	res = Fig14Predictor(opt, scale)
	// A Put failure must not fail the figure: the result is still correct,
	// only reuse is lost.
	_ = e.Cache.PutPayload(fp, res)
	return res
}

// predictorParamCount is the predictor architecture's parameter count — a
// pure function of the fixed layer shapes, not the seed — built once so
// cache-hit lookups never allocate a throwaway network.
var predictorParamCount = sync.OnceValue(func() int {
	return entropy.NewPredictor(0).ParamCount()
})

// TrackingPoint is one step of the Fig. 14(b) runtime trace: true entropy,
// prediction, and the resulting policy voltage.
type TrackingPoint struct {
	Step      int
	Entropy   float64
	Predicted float64
	Voltage   float64
}

// Fig14Tracking produces the runtime prediction-tracking trace using the
// calibrated noisy-oracle predictor and Policy C (Sec. 6.5's Fig. 14(b)).
func Fig14Tracking(opt Options, steps int, vs func(float64) float64) []TrackingPoint {
	cfg := agent.Config{
		Task:       world.TaskLog,
		UniformBER: 0,
		Trace:      true,
		Seed:       opt.Seed,
		VSPolicy:   vs,
	}
	r := agent.Run(cfg)
	n := len(r.EntropyTrace)
	if steps > n {
		steps = n
	}
	out := make([]TrackingPoint, steps)
	for i := 0; i < steps; i++ {
		out[i] = TrackingPoint{
			Step:      i,
			Entropy:   r.EntropyTrace[i],
			Predicted: r.PredictedTrace[i],
			Voltage:   r.VoltageTrace[i],
		}
	}
	return out
}

// OracleR2 measures the R^2 of the calibrated noisy-oracle predictor used
// by task-scale simulations, confirming it matches the trained predictor's
// accuracy class.
func OracleR2(opt Options, sigma float64, n int) float64 {
	rng := rand.New(rand.NewSource(opt.Seed))
	oracle := agent.NoisyOracle(sigma)
	truths := make([]float64, 0, n)
	preds := make([]float64, 0, n)
	cfg := agent.Config{Task: world.TaskStone, UniformBER: 0, Trace: true, Seed: opt.Seed}
	// The sweep varies only the seed, so one Runner amortizes config
	// resolution, corruption-table composition, and episode scratch.
	runner := agent.NewRunner(cfg)
	seed := opt.Seed
	for len(truths) < n {
		seed += 13
		r := runner.RunSeed(seed)
		for _, h := range r.EntropyTrace {
			truths = append(truths, h)
			preds = append(preds, oracle(h, rng))
			if len(truths) == n {
				break
			}
		}
	}
	return stats.R2(preds, truths)
}

package experiments

import (
	"strconv"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/sim"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

// ---------------------------------------------------------------------------
// Figure 13(a)-(c) and (e): AD / WR on planner and controller, and the
// AD+WR ablation.

// ProtectionPoint is one (BER, protection, task quality) sample.
type ProtectionPoint struct {
	BER         float64
	Task        world.TaskName
	Protection  string
	SuccessRate float64
	AvgSteps    float64
}

// protLabel names a protection configuration.
func protLabel(p bridge.Protection) string {
	switch {
	case p.AD && p.WR:
		return "AD+WR"
	case p.AD:
		return "AD"
	case p.WR:
		return "WR"
	default:
		return "none"
	}
}

// Fig13AD compares planner (a) and controller (b) resilience with and
// without anomaly detection and clearance.
func Fig13AD(e *Env, opt Options) (plannerPts, controllerPts []ProtectionPoint) {
	for _, prot := range []bridge.Protection{{}, {AD: true}} {
		plannerPts = append(plannerPts,
			protSweep(e, opt, BERSweep(1e-8, 1e-4), true, prot)...)
		controllerPts = append(controllerPts,
			protSweep(e, opt, BERSweep(1e-5, 1e-2), false, prot)...)
	}
	return plannerPts, controllerPts
}

// Fig13WR compares the planner with and without weight rotation.
func Fig13WR(e *Env, opt Options) []ProtectionPoint {
	var out []ProtectionPoint
	for _, prot := range []bridge.Protection{{}, {WR: true}} {
		out = append(out, protSweep(e, opt, BERSweep(1e-8, 1e-4), true, prot)...)
	}
	return out
}

// Fig13AblationPlanner runs the AD+WR ablation (Fig. 13(e)): the combination
// preserves task quality up to BER ~1e-2.
func Fig13AblationPlanner(e *Env, opt Options) []ProtectionPoint {
	var out []ProtectionPoint
	for _, prot := range []bridge.Protection{{}, {AD: true}, {WR: true}, {AD: true, WR: true}} {
		out = append(out, protSweep(e, opt, BERSweep(1e-8, 1e-2), true, prot)...)
	}
	return out
}

// protSweepJobs builds the task-major (task x BER) grid of one protection
// sweep — the shared coordinate source for the runner and the fingerprint
// enumerator.
func protSweepJobs(e *Env, bers []float64, hitPlanner bool, prot bridge.Protection) []gridJob {
	tasks := []world.TaskName{world.TaskWooden, world.TaskStone}
	jobs := make([]gridJob, 0, len(tasks)*len(bers))
	for _, task := range tasks {
		for _, ber := range bers {
			cfg := agent.Config{UniformBER: ber}
			if hitPlanner {
				cfg.Planner = e.Planner
				cfg.PlannerProt = prot
			} else {
				cfg.Controller = e.Controller
				cfg.ControlProt = prot
			}
			jobs = append(jobs, gridJob{task: task, cfg: cfg})
		}
	}
	return jobs
}

func protSweep(e *Env, opt Options, bers []float64, hitPlanner bool, prot bridge.Protection) []ProtectionPoint {
	jobs := protSweepJobs(e, bers, hitPlanner, prot)
	// Grid points are independent trials sweeps; fan them out with ordered
	// collection so the row order matches the serial task-major loop. The
	// Workers budget is split between the grid and the per-point trial
	// loops so nesting can't exceed it.
	gridW, opt := opt.split(len(jobs))
	return sim.Map(len(jobs), gridW, func(i int) ProtectionPoint {
		if !opt.owns(i) {
			return ProtectionPoint{}
		}
		j := jobs[i]
		s := e.runJob(j, opt)
		return ProtectionPoint{j.cfg.UniformBER, j.task, protLabel(prot), s.SuccessRate, s.AvgSteps}
	})
}

// ---------------------------------------------------------------------------
// Figure 13(d)/(f): autonomy-adaptive voltage scaling.

// VSPoint is one voltage-scaling evaluation sample: a policy (or constant
// voltage) with its task quality and effective voltage.
type VSPoint struct {
	Task             world.TaskName
	Policy           string
	AD               bool
	SuccessRate      float64
	AvgSteps         float64
	EffectiveVoltage float64
	EnergyJ          float64
}

// vsJob is one Fig. 13(d)/(f) grid coordinate.
type vsJob struct {
	task   world.TaskName
	name   string
	prot   bridge.Protection
	vs     func(float64) float64
	levels []float64 // the policy's reachable voltages (agent.Config.VSLevels)
	constV float64
}

// fig13VSJobs enumerates the policy/constant-voltage grid of Fig. 13(d)/(f).
func fig13VSJobs() []vsJob {
	var jobs []vsJob
	for _, task := range []world.TaskName{world.TaskWooden, world.TaskStone} {
		for _, ad := range []bool{false, true} {
			prot := bridge.Protection{AD: ad}
			// Constant-voltage baselines.
			for _, v := range []float64{0.90, 0.85, 0.80, 0.75, 0.70, 0.65} {
				jobs = append(jobs, vsJob{task: task, name: "const", prot: prot, constV: v})
			}
			// Adaptive policies A-F.
			for _, m := range policy.Selected {
				jobs = append(jobs, vsJob{task: task, name: m.Name, prot: prot,
					vs: m.Func(), levels: m.VoltageLevels()})
			}
		}
	}
	return jobs
}

// vsConfig is the agent configuration and cache identity of one VS grid job.
func (e *Env) vsConfig(j vsJob) (agent.Config, string) {
	cfg := agent.Config{
		Controller:  e.Controller,
		ControlProt: j.prot,
		UniformBER:  agent.VoltageMode,
		Timing:      e.Timing,
	}
	if j.vs != nil {
		cfg.VSPolicy = j.vs
		cfg.VSLevels = j.levels
		return cfg, j.name
	}
	cfg.ControllerVoltage = j.constV
	return cfg, ""
}

// Fig13VS evaluates the Fig. 21 policies plus constant-voltage baselines on
// wooden and stone, with and without AD (Fig. 13(d) and the (f) ablation):
// adaptive policies advance the success-vs-effective-voltage frontier, and
// AD shifts the whole frontier to lower voltages.
func Fig13VS(e *Env, opt Options) []VSPoint {
	jobs := fig13VSJobs()
	gridW, opt := opt.split(len(jobs))
	return sim.Map(len(jobs), gridW, func(i int) VSPoint {
		if !opt.owns(i) {
			return VSPoint{}
		}
		return e.vsPoint(jobs[i], opt)
	})
}

func (e *Env) vsPoint(j vsJob, opt Options) VSPoint {
	cfg, policyID := e.vsConfig(j)
	s := e.runTaskCached(j.task, cfg, opt, policyID, "")
	return VSPoint{
		Task:             j.task,
		Policy:           j.name,
		AD:               j.prot.AD,
		SuccessRate:      s.SuccessRate,
		AvgSteps:         s.AvgSteps,
		EffectiveVoltage: e.Power.EffectiveVoltage(s.StepsAtMV),
		EnergyJ:          e.EpisodeEnergy(s, j.vs != nil),
	}
}

// ---------------------------------------------------------------------------
// Figure 15: voltage update interval.

// IntervalPoint is one (interval, quality, energy) sample.
type IntervalPoint struct {
	Task        world.TaskName
	Interval    int
	SuccessRate float64
	EnergyJ     float64
}

// fig15Jobs enumerates the (task x update interval) grid of Fig. 15.
func fig15Jobs(e *Env) []gridJob {
	var jobs []gridJob
	for _, task := range []world.TaskName{world.TaskWooden, world.TaskStone} {
		for _, interval := range []int{1, 5, 10, 20} {
			cfg := agent.Config{
				Controller:  e.Controller,
				ControlProt: bridge.Protection{AD: true},
				UniformBER:  agent.VoltageMode,
				Timing:      e.Timing,
				VSPolicy:    policy.Default.Func(),
				VSLevels:    policy.Default.VoltageLevels(),
				VSInterval:  interval,
			}
			jobs = append(jobs, gridJob{task: task, cfg: cfg, policyID: policy.Default.Name})
		}
	}
	return jobs
}

// Fig15Interval sweeps the VS update interval {1, 5, 10, 20}: 1 and 5 track
// workload changes, 10 and 20 respond too slowly; 5 has slightly lower
// overhead than 1 (Sec. 6.5).
func Fig15Interval(e *Env, opt Options) []IntervalPoint {
	var out []IntervalPoint
	for idx, j := range fig15Jobs(e) {
		if !opt.owns(idx) {
			continue
		}
		s := e.runJob(j, opt)
		// Slower updates leave the voltage stale across phase changes;
		// per-update predictor/LDO overhead favours 5 over 1.
		energy := e.EpisodeEnergy(s, true)
		out = append(out, IntervalPoint{j.task, j.cfg.VSInterval, s.SuccessRate, energy})
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 16: overall evaluation across tasks.

// OverallPoint is one (task, configuration) sample of the full-system
// evaluation.
type OverallPoint struct {
	Task        world.TaskName
	Config      string
	SuccessRate float64
	AvgSteps    float64
	EnergyJ     float64
}

// Fig16Configs are the four stacked configurations of Fig. 16.
var Fig16Configs = []string{"none", "AD", "AD+WR", "AD+WR+VS"}

// Fig16Tasks are the eight evaluation workloads of Fig. 16.
var Fig16Tasks = []world.TaskName{
	world.TaskWooden, world.TaskStone, world.TaskCharcoal, world.TaskChicken,
	world.TaskCoal, world.TaskIron, world.TaskWool, world.TaskSeed,
}

// Fig16Reliability evaluates all four configurations at a fixed 0.75 V
// supply (Fig. 16(a)): unprotected operation collapses, AD recovers most
// success, AD+WR approaches error-free quality, VS adds no degradation.
func Fig16Reliability(e *Env, opt Options) []OverallPoint {
	gridW, opt := opt.split(len(Fig16Tasks) * len(Fig16Configs))
	return sim.Map(len(Fig16Tasks)*len(Fig16Configs), gridW, func(i int) OverallPoint {
		if !opt.owns(i) {
			return OverallPoint{}
		}
		task := Fig16Tasks[i/len(Fig16Configs)]
		name := Fig16Configs[i%len(Fig16Configs)]
		s := e.runOverall(task, name, 0.75, opt)
		return OverallPoint{task, name, s.SuccessRate, s.AvgSteps, e.EpisodeEnergy(s, name == "AD+WR+VS")}
	})
}

// overallConfig is the agent configuration and cache identity of one
// Fig. 16 grid point. For "AD+WR+VS" the controller runs the adaptive
// policy (floored at the supplied voltage) while the planner stays at the
// fixed supply.
func (e *Env) overallConfig(name string, v float64) (agent.Config, string) {
	cfg := agent.Config{
		Planner:    e.Planner,
		Controller: e.Controller,
		UniformBER: agent.VoltageMode,
		Timing:     e.Timing,
	}
	cfg.PlannerVoltage = v
	cfg.ControllerVoltage = v
	switch name {
	case "AD":
		cfg.PlannerProt = bridge.Protection{AD: true}
		cfg.ControlProt = bridge.Protection{AD: true}
	case "AD+WR":
		cfg.PlannerProt = bridge.Protection{AD: true, WR: true}
		cfg.ControlProt = bridge.Protection{AD: true}
	case "AD+WR+VS":
		cfg.PlannerProt = bridge.Protection{AD: true, WR: true}
		cfg.ControlProt = bridge.Protection{AD: true}
	}
	policyID := ""
	if name == "AD+WR+VS" {
		cfg.VSPolicy, cfg.VSLevels, policyID = ceiledPolicy(v)
	}
	return cfg, policyID
}

// runOverall runs one Fig. 16 configuration.
func (e *Env) runOverall(task world.TaskName, name string, v float64, opt Options) agent.Summary {
	cfg, policyID := e.overallConfig(name, v)
	return e.runTaskCached(task, cfg, opt, policyID, "")
}

// ceiledPolicy returns the default VS mapping ceilinged at supply v (never
// above the scenario's budget) together with its reachable voltage set and
// its cache identity. runOverall and Fig. 20's createPoint share this exact
// closure and therefore its fingerprint — keeping both in one place is what
// makes that sharing safe: the behaviour and the identity cannot drift
// apart. The ceiling is spelled into the identity rather than inferred from
// the voltage fields, so the fingerprint stays correct even for call sites
// whose planner supply differs from the ceiling. Closure and VSLevels
// declaration share one clamp transform (VoltageLevelsWith), so the
// declared set is exactly the closure's image — the precondition for the
// precomputed corruption table to be bit-identical to the lazy path.
func ceiledPolicy(v float64) (func(float64) float64, []float64, string) {
	base := policy.Default
	clamp := func(pv float64) float64 {
		if pv > v {
			return v
		}
		return pv
	}
	vs := func(h float64) float64 { return clamp(base.Voltage(h)) }
	return vs, base.VoltageLevelsWith(clamp), base.Name + "<=" + strconv.FormatFloat(v, 'g', -1, 64)
}

// EfficiencyPoint is one task's minimal-voltage energy for a configuration
// (Fig. 16(b)).
type EfficiencyPoint struct {
	Task world.TaskName
	// MinVoltage is the lowest supply sustaining >= 90 % of the error-free
	// success rate.
	Config     string
	MinVoltage float64
	EnergyJ    float64
	// SavingVsNominal is 1 - E/E_nominal.
	SavingVsNominal float64
}

// Fig16Efficiency finds, per task and configuration, the lowest voltage
// preserving success, and the resulting computational energy saving
// (Fig. 16(b): 40.6 % average for full CREATE).
// fig16Voltages is the efficiency sweep's descending supply grid, shared
// with the cache-planning enumerator (the descent's early exit makes the
// enumeration a superset of what a run consults).
var fig16Voltages = []float64{0.90, 0.875, 0.85, 0.825, 0.80, 0.775, 0.75, 0.725, 0.70, 0.675, 0.65}

func Fig16Efficiency(e *Env, opt Options) []EfficiencyPoint {
	voltages := fig16Voltages
	// Parallelize across tasks only: the per-config voltage descent must
	// stay serial because it early-exits at the first quality-violating
	// supply, and that exit decides which runs exist at all.
	// Sharding also follows the task grain: the descent's early exit makes
	// its inner points data-dependent, so only the outer index is stable.
	gridW, opt := opt.split(len(Fig16Tasks))
	return sim.FlatMap(len(Fig16Tasks), gridW, func(i int) []EfficiencyPoint {
		if !opt.owns(i) {
			return nil
		}
		task := Fig16Tasks[i]
		var out []EfficiencyPoint
		clean := e.runOverall(task, "none", timing.VNominal, opt)
		target := clean.SuccessRate * 0.9
		nominalEnergy := e.EpisodeEnergy(clean, false)
		for _, name := range Fig16Configs {
			best := EfficiencyPoint{Task: task, Config: name, MinVoltage: timing.VNominal, EnergyJ: nominalEnergy}
			for _, v := range voltages {
				s := e.runOverall(task, name, v, opt)
				if s.SuccessRate+1e-9 < target {
					break // voltages are descending; success only gets worse
				}
				// Pick the energy optimum among quality-preserving
				// voltages: past it, error-induced step inflation outgrows
				// the per-step saving (the Fig. 1(d) inversion).
				if energy := e.EpisodeEnergy(s, name == "AD+WR+VS"); energy < best.EnergyJ {
					best = EfficiencyPoint{Task: task, Config: name, MinVoltage: v, EnergyJ: energy}
				}
			}
			best.SavingVsNominal = 1 - best.EnergyJ/nominalEnergy
			out = append(out, best)
		}
		return out
	})
}

// AverageSaving aggregates Fig. 16(b) rows for one configuration.
func AverageSaving(pts []EfficiencyPoint, config string) float64 {
	var sum float64
	n := 0
	for _, p := range pts {
		if p.Config == config {
			sum += p.SavingVsNominal
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ---------------------------------------------------------------------------
// Figure 19: uniform vs hardware error model.

// ErrorModelPoint compares the two error models at matched aggregate BER.
type ErrorModelPoint struct {
	BER         float64
	Model       string // "uniform" or "hardware"
	Target      string // "planner" or "controller"
	SuccessRate float64
}

// emJob is one Fig. 19 grid coordinate: a (BER, target) pair evaluated
// under both error models. Sharding stays at this pair grain so a shard's
// rows keep the uniform/hardware interleaving of the unsharded output.
type emJob struct {
	ber    float64
	target string
}

func fig19Jobs() []emJob {
	var jobs []emJob
	for _, ber := range BERSweep(1e-9, 1e-7) {
		jobs = append(jobs, emJob{ber, "planner"})
	}
	for _, ber := range BERSweep(1e-6, 1e-3) {
		jobs = append(jobs, emJob{ber, "controller"})
	}
	return jobs
}

// errorModelConfig is the agent configuration of one Fig. 19 run.
func (e *Env) errorModelConfig(ber float64, target, modelName string) agent.Config {
	cfg := agent.Config{Timing: e.Timing}
	if modelName == "uniform" {
		cfg.UniformBER = ber
	} else {
		cfg.UniformBER = agent.VoltageMode
		v := e.Timing.VoltageForBER(ber)
		cfg.PlannerVoltage = v
		cfg.ControllerVoltage = v
	}
	if target == "planner" {
		cfg.Planner = e.Planner
	} else {
		cfg.Controller = e.Controller
	}
	return cfg
}

// errorModelNames are the two error abstractions Fig. 19 compares.
var errorModelNames = []string{"uniform", "hardware"}

// Fig19ErrorModels validates that resilience conclusions hold under both
// the uniform abstraction (Sec. 4) and the voltage-profiled LUT (Sec. 6):
// trends agree despite slight numerical differences (Sec. 6.9).
func Fig19ErrorModels(e *Env, opt Options) []ErrorModelPoint {
	jobs := fig19Jobs()
	gridW, opt := opt.split(len(jobs))
	return sim.FlatMap(len(jobs), gridW, func(i int) []ErrorModelPoint {
		if !opt.owns(i) {
			return nil
		}
		return e.errorModelPoint(jobs[i].ber, jobs[i].target, opt)
	})
}

func (e *Env) errorModelPoint(ber float64, target string, opt Options) []ErrorModelPoint {
	var out []ErrorModelPoint
	for _, modelName := range errorModelNames {
		cfg := e.errorModelConfig(ber, target, modelName)
		s := e.runTaskCached(world.TaskWooden, cfg, opt, "", "")
		out = append(out, ErrorModelPoint{ber, modelName, target, s.SuccessRate})
	}
	return out
}

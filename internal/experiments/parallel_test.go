package experiments

import (
	"reflect"
	"testing"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/world"
)

// TestSweepParallelDeterminism locks the sweep-layer contract: a figure's
// rows — values and order — must not depend on the Workers knob, at either
// the grid or the trial fan-out level.
func TestSweepParallelDeterminism(t *testing.T) {
	e := NewEnv()
	serial := Options{Trials: 4, Seed: 2026, Workers: 1}
	parallel := Options{Trials: 4, Seed: 2026, Workers: 4}

	if a, b := Fig16Reliability(e, serial), Fig16Reliability(e, parallel); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig16Reliability diverged between serial and parallel:\n%+v\n%+v", a, b)
	}
	if a, b := Fig19ErrorModels(e, serial), Fig19ErrorModels(e, parallel); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig19ErrorModels diverged between serial and parallel:\n%+v\n%+v", a, b)
	}
	if a, b := Fig13WR(e, serial), Fig13WR(e, parallel); !reflect.DeepEqual(a, b) {
		t.Errorf("Fig13WR diverged between serial and parallel:\n%+v\n%+v", a, b)
	}
}

// TestSeedZeroHonoured guards the runTask bugfix: Options{Seed: 0} is a
// legitimate base seed, not "unset", so it must produce a run distinct from
// (and as reproducible as) any other seed.
func TestSeedZeroHonoured(t *testing.T) {
	e := NewEnv()
	zero := Options{Trials: 4, Seed: 0}
	other := Options{Trials: 4, Seed: 2026}

	a := e.runTask(world.TaskWooden, agent.Config{UniformBER: 0}, zero)
	b := e.runTask(world.TaskWooden, agent.Config{UniformBER: 0}, zero)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("seed 0 is not reproducible")
	}
	// runTask discards per-trial Results (sweeps read only aggregates), so
	// distinctness shows in the aggregated step histogram.
	c := e.runTask(world.TaskWooden, agent.Config{UniformBER: 0}, other)
	if reflect.DeepEqual(a.StepsAtMV, c.StepsAtMV) {
		t.Fatal("seed 0 produced the same episodes as seed 2026 — it was replaced as 'unset'")
	}
	if a.AvgSteps == 0 {
		t.Fatal("seed-0 run produced no steps")
	}
}

package model

import (
	"math"
	"math/rand"
	"testing"

	"github.com/embodiedai/create/internal/nn"
	"github.com/embodiedai/create/internal/systolic"
	"github.com/embodiedai/create/internal/tensor"
)

func smallPlannerConfig() PlannerConfig {
	cfg := DefaultPlannerConfig()
	cfg.Layers = 2
	return cfg
}

func TestPlannerDeterministic(t *testing.T) {
	cfg := smallPlannerConfig()
	p1, p2 := NewPlanner(cfg), NewPlanner(cfg)
	tokens := p1.PromptTokens(8, 1)
	l1 := p1.Forward(nn.Float{}, tokens)
	l2 := p2.Forward(nn.Float{}, tokens)
	if tensor.MaxAbsDiff(l1, l2) != 0 {
		t.Fatal("same seed must give identical planners")
	}
}

func TestPlannerLogitsShape(t *testing.T) {
	p := NewPlanner(smallPlannerConfig())
	tokens := p.PromptTokens(10, 2)
	logits := p.Forward(nn.Float{}, tokens)
	if logits.Rows != 10 || logits.Cols != p.Cfg.Vocab {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
	for _, v := range logits.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite logits")
		}
	}
}

func TestPlannerResidualHasOutliers(t *testing.T) {
	// Fig. 5(i): the planner's pre-norm residual stream must exhibit
	// systematic outliers — std across channels far above the median channel
	// magnitude, concentrated on fixed channels.
	p := NewPlanner(smallPlannerConfig())
	var captured []float32
	p.Probe = func(layer int, h *tensor.Mat) {
		if layer == 1 {
			captured = append(captured[:0], h.Data...)
		}
	}
	p.Forward(nn.Float{}, p.PromptTokens(12, 3))
	if captured == nil {
		t.Fatal("probe never fired")
	}
	mx := float64(tensor.AbsMax(captured))
	sd := tensor.Std(captured)
	if mx < 6*sd {
		t.Fatalf("expected heavy outliers: absmax %v vs std %v", mx, sd)
	}
}

func TestControllerResidualUniform(t *testing.T) {
	// Fig. 5(j): the controller's residual stream has no extreme outliers.
	c := NewController(DefaultControllerConfig())
	var captured []float32
	c.Probe = func(layer int, h *tensor.Mat) {
		if layer == c.Cfg.Layers-1 {
			captured = append(captured[:0], h.Data...)
		}
	}
	rng := rand.New(rand.NewSource(4))
	c.Forward(nn.Float{}, RandomObservation(rng))
	mx := float64(tensor.AbsMax(captured))
	sd := tensor.Std(captured)
	if mx > 8*sd {
		t.Fatalf("controller activations should be outlier free: absmax %v vs std %v", mx, sd)
	}
}

func TestWeightRotationPreservesFunction(t *testing.T) {
	// Sec. 5.2: rotations fold into the weights offline "without altering
	// overall network outputs". Exact in float; we allow float32 roundoff.
	cfg := smallPlannerConfig()
	base := NewPlanner(cfg)
	rot := NewPlanner(cfg)
	rot.ApplyWeightRotation()
	if !rot.Rotated() || base.Rotated() {
		t.Fatal("rotation flags wrong")
	}
	tokens := base.PromptTokens(8, 5)
	l1 := base.Forward(nn.Float{}, tokens)
	l2 := rot.Forward(nn.Float{}, tokens)
	scale := float64(tensor.AbsMax(l1.Data))
	if d := tensor.MaxAbsDiff(l1, l2); d > 1e-3*scale+1e-3 {
		t.Fatalf("rotation changed network function: maxdiff %v (logit scale %v)", d, scale)
	}
}

func TestWeightRotationDispersesResidualOutliers(t *testing.T) {
	// Fig. 9(b): post-rotation residual activations are outlier free.
	cfg := smallPlannerConfig()
	spread := func(rotate bool) float64 {
		p := NewPlanner(cfg)
		if rotate {
			p.ApplyWeightRotation()
		}
		var mx float64
		p.Probe = func(_ int, h *tensor.Mat) {
			if m := float64(tensor.AbsMax(h.Data)); m > mx {
				mx = m
			}
		}
		p.Forward(nn.Float{}, p.PromptTokens(12, 6))
		return mx
	}
	// Compare absolute maxima of the residual stream.
	before, after := spread(false), spread(true)
	if after > before/2 {
		t.Fatalf("rotation should shrink residual absmax: before %v after %v", before, after)
	}
}

func TestWeightRotationIdempotent(t *testing.T) {
	p := NewPlanner(smallPlannerConfig())
	p.ApplyWeightRotation()
	w := p.Blocks[0].Attn.Q.W.Clone()
	p.ApplyWeightRotation() // second call must be a no-op
	if tensor.MaxAbsDiff(w, p.Blocks[0].Attn.Q.W) != 0 {
		t.Fatal("double rotation modified weights")
	}
}

func TestControllerForwardShapeAndDeterminism(t *testing.T) {
	cfg := DefaultControllerConfig()
	c := NewController(cfg)
	rng := rand.New(rand.NewSource(7))
	obs := RandomObservation(rng)
	l1 := c.Forward(nn.Float{}, obs)
	l2 := c.Forward(nn.Float{}, obs)
	if len(l1) != cfg.Actions {
		t.Fatalf("logit count %d", len(l1))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("controller forward must be deterministic")
		}
	}
}

func TestPlannerOnSystolicBackendMatchesFloatShape(t *testing.T) {
	// Error-free systolic execution should produce logits that agree with
	// the float path on the argmax for most positions (quantization noise
	// only).
	p := NewPlanner(smallPlannerConfig())
	tokens := p.PromptTokens(8, 8)
	floatTokens := p.GreedyTokens(nn.Float{}, tokens)

	be := nn.NewSystolic(systolic.NewEngine(1))
	be.Calibrating = true
	p.Forward(be, tokens)
	be.Calibrating = false
	sysTokens := p.GreedyTokens(be, tokens)

	agree := 0
	for i := range floatTokens {
		if floatTokens[i] == sysTokens[i] {
			agree++
		}
	}
	if agree < len(floatTokens)/2 {
		t.Fatalf("INT8 datapath too lossy: only %d/%d argmax agree", agree, len(floatTokens))
	}
}

func TestEncodeObservationValidatesLength(t *testing.T) {
	c := NewController(DefaultControllerConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong feature length")
		}
	}()
	c.EncodeObservation(make([]float32, 3))
}

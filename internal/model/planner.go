// Package model builds the synthetic planner and controller networks used
// for resilience characterization.
//
// The paper characterizes JARVIS-1: an 8 B-parameter LLaVA planner and a
// STEVE-1 Transformer controller. Networks of that scale are out of reach
// here, so this package constructs architecture-faithful miniatures:
//
//   - the planner is a stack of pre-RMSNorm Transformer blocks with a SwiGLU
//     MLP (components Q, K, V, O, Gate, Up, Down — Fig. 3 left) and, crucially,
//     *planted activation outlier channels*: a few residual-stream channels
//     carry magnitudes tens of times larger than the rest, reproducing the
//     systematic outliers of billion-parameter LLMs (Fig. 5(i));
//   - the controller is a stack of pre-LayerNorm Transformer blocks with a
//     plain ReLU MLP (components Q, K, V, O, FC1, FC2 — Fig. 3 right) and
//     uniform activations (Fig. 5(j)).
//
// Resilience conclusions transfer because they depend on this activation/
// normalization structure, not on model capability (see DESIGN.md).
package model

import (
	"fmt"
	"math/rand"

	"github.com/embodiedai/create/internal/hadamard"
	"github.com/embodiedai/create/internal/nn"
	"github.com/embodiedai/create/internal/tensor"
)

// PlannerConfig sizes the synthetic planner.
type PlannerConfig struct {
	Layers, Dim, MLPDim, Heads, Vocab int
	// OutlierChannels is the number of planted outlier channels in the
	// residual stream; OutlierScale is their magnitude multiplier.
	OutlierChannels int
	OutlierScale    float32
	Seed            int64
}

// DefaultPlannerConfig returns the miniature used throughout the
// characterization: dim 64 (a power of two, so the Hadamard rotation applies
// directly), 4 layers, 4 outlier channels at 24x magnitude.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{
		Layers: 4, Dim: 64, MLPDim: 192, Heads: 4, Vocab: 128,
		OutlierChannels: 4, OutlierScale: 24, Seed: 20260322,
	}
}

// PlannerBlock is one pre-norm Transformer block of the planner.
type PlannerBlock struct {
	Norm1, Norm2 *nn.RMSNorm
	Attn         *nn.Attention
	MLP          *nn.GatedMLP
}

// Planner is the synthetic LLM planner.
type Planner struct {
	Cfg       PlannerConfig
	Embed     *tensor.Mat // Vocab x Dim
	Blocks    []*PlannerBlock
	FinalNorm *nn.RMSNorm
	Head      *nn.Linear // "Head": Dim x Vocab

	// Probe, when non-nil, observes the residual stream entering each
	// block's first normalization — the activation the paper profiles in
	// Fig. 5(i)/(k).
	Probe func(layer int, residual *tensor.Mat)

	rotated bool
}

// NewPlanner constructs the planner with deterministic weights and planted
// outlier channels.
func NewPlanner(cfg PlannerConfig) *Planner {
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Planner{Cfg: cfg}

	p.Embed = tensor.NewMat(cfg.Vocab, cfg.Dim)
	for i := range p.Embed.Data {
		p.Embed.Data[i] = float32(rng.NormFloat64())
	}
	// Plant systematic outlier channels: the same few channels carry large
	// magnitudes for every token, as observed in large LLMs.
	for t := 0; t < cfg.Vocab; t++ {
		row := p.Embed.Row(t)
		for c := 0; c < cfg.OutlierChannels; c++ {
			ch := outlierChannel(c, cfg.Dim)
			row[ch] *= cfg.OutlierScale
		}
	}

	lin := func(name string, in, out int, gain float64) *nn.Linear {
		w := tensor.NewMat(in, out)
		nn.RandInit(w, rng, gain)
		return &nn.Linear{Name: name, W: w}
	}
	for l := 0; l < cfg.Layers; l++ {
		blk := &PlannerBlock{
			Norm1: nn.NewRMSNorm(cfg.Dim),
			Norm2: nn.NewRMSNorm(cfg.Dim),
			Attn: &nn.Attention{
				Heads:  cfg.Heads,
				Causal: true,
				Q:      lin(fmt.Sprintf("L%d.Q", l), cfg.Dim, cfg.Dim, 1),
				K:      lin(fmt.Sprintf("L%d.K", l), cfg.Dim, cfg.Dim, 1),
				V:      lin(fmt.Sprintf("L%d.V", l), cfg.Dim, cfg.Dim, 1),
				O:      lin(fmt.Sprintf("L%d.O", l), cfg.Dim, cfg.Dim, 0.5),
			},
			MLP: &nn.GatedMLP{
				Gate: lin(fmt.Sprintf("L%d.Gate", l), cfg.Dim, cfg.MLPDim, 1),
				Up:   lin(fmt.Sprintf("L%d.Up", l), cfg.Dim, cfg.MLPDim, 1),
				Down: lin(fmt.Sprintf("L%d.Down", l), cfg.MLPDim, cfg.Dim, 0.5),
			},
		}
		// Keep the outlier channels of the block outputs aligned with the
		// residual stream so outliers persist through depth, as they do in
		// real LLMs.
		for c := 0; c < cfg.OutlierChannels; c++ {
			ch := outlierChannel(c, cfg.Dim)
			scaleColumn(blk.Attn.O.W, ch, cfg.OutlierScale/4)
			scaleColumn(blk.MLP.Down.W, ch, cfg.OutlierScale/4)
		}
		p.Blocks = append(p.Blocks, blk)
	}
	p.FinalNorm = nn.NewRMSNorm(cfg.Dim)
	p.Head = lin("Head", cfg.Dim, cfg.Vocab, 1)
	return p
}

func outlierChannel(i, dim int) int { return (i*13 + 3) % dim }

func scaleColumn(w *tensor.Mat, col int, s float32) {
	for r := 0; r < w.Rows; r++ {
		w.Set(r, col, w.At(r, col)*s)
	}
}

// Forward runs the planner over a token sequence and returns the
// (tokens x Vocab) logits.
func (p *Planner) Forward(be nn.Backend, tokens []int) *tensor.Mat {
	h := tensor.NewMat(len(tokens), p.Cfg.Dim)
	for i, t := range tokens {
		copy(h.Row(i), p.Embed.Row(t%p.Cfg.Vocab))
	}
	for l, blk := range p.Blocks {
		if p.Probe != nil {
			p.Probe(l, h)
		}
		attnIn := blk.Norm1.Forward(h)
		h.AddInPlace(blk.Attn.Forward(be, attnIn))
		mlpIn := blk.Norm2.Forward(h)
		h.AddInPlace(blk.MLP.Forward(be, mlpIn))
	}
	return p.Head.Forward(be, p.FinalNorm.Forward(h))
}

// GreedyTokens returns the argmax next-token prediction at every position.
func (p *Planner) GreedyTokens(be nn.Backend, tokens []int) []int {
	logits := p.Forward(be, tokens)
	out := make([]int, logits.Rows)
	for i := range out {
		out[i] = tensor.ArgMax(logits.Row(i))
	}
	return out
}

// Rotated reports whether ApplyWeightRotation has been applied.
func (p *Planner) Rotated() bool { return p.rotated }

// ApplyWeightRotation folds the Hadamard rotation into the planner weights
// offline (Sec. 5.2, Fig. 9(a)): producers of the residual stream (embedding,
// O, Down) are right-multiplied by H; consumers (Q, K, V, Gate, Up, head) are
// left-multiplied by H^T. Unit-gain RMSNorm commutes with the rotation, so
// the network function is unchanged while the residual-stream outliers are
// dispersed across all channels.
func (p *Planner) ApplyWeightRotation() {
	if p.rotated {
		return
	}
	h := hadamard.Matrix(p.Cfg.Dim)
	p.Embed = hadamard.RotateRight(p.Embed, h)
	for _, blk := range p.Blocks {
		blk.Attn.Q.W = hadamard.RotateLeft(h, blk.Attn.Q.W)
		blk.Attn.K.W = hadamard.RotateLeft(h, blk.Attn.K.W)
		blk.Attn.V.W = hadamard.RotateLeft(h, blk.Attn.V.W)
		blk.Attn.O.W = hadamard.RotateRight(blk.Attn.O.W, h)
		blk.MLP.Gate.W = hadamard.RotateLeft(h, blk.MLP.Gate.W)
		blk.MLP.Up.W = hadamard.RotateLeft(h, blk.MLP.Up.W)
		blk.MLP.Down.W = hadamard.RotateRight(blk.MLP.Down.W, h)
	}
	p.Head.W = hadamard.RotateLeft(h, p.Head.W)
	p.rotated = true
}

// PromptTokens returns a deterministic pseudo-prompt of n tokens for seeding
// characterization runs.
func (p *Planner) PromptTokens(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(p.Cfg.Vocab)
	}
	return out
}

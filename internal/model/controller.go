package model

import (
	"fmt"
	"math/rand"

	"github.com/embodiedai/create/internal/nn"
	"github.com/embodiedai/create/internal/tensor"
)

// ControllerConfig sizes the synthetic RL controller.
type ControllerConfig struct {
	Layers, Dim, MLPDim, Heads int
	// Actions is the size of the action-logit head; ObsTokens is the length
	// of the fused observation/prompt token sequence the controller attends
	// over.
	Actions, ObsTokens int
	Seed               int64
}

// DefaultControllerConfig returns the miniature controller used for
// characterization.
func DefaultControllerConfig() ControllerConfig {
	return ControllerConfig{
		Layers: 4, Dim: 64, MLPDim: 256, Heads: 4,
		Actions: 36, ObsTokens: 12, Seed: 20260323,
	}
}

// ControllerBlock is one pre-LayerNorm Transformer block of the controller.
type ControllerBlock struct {
	Norm1, Norm2 *nn.LayerNorm
	Attn         *nn.Attention
	MLP          *nn.MLP
}

// Controller is the synthetic low-level action policy.
type Controller struct {
	Cfg    ControllerConfig
	InProj *tensor.Mat // fixed observation encoder (ObsFeatures x Dim)
	Blocks []*ControllerBlock
	Norm   *nn.LayerNorm
	Head   *nn.Linear // policy head: Dim x Actions

	// Probe, when non-nil, observes the residual stream entering each
	// block's first normalization (Fig. 5(j)/(l)).
	Probe func(layer int, residual *tensor.Mat)
}

// ObsFeatures is the dimensionality of the flattened observation feature
// vector the controller consumes each step.
const ObsFeatures = 32

// NewController constructs the controller with deterministic weights and
// uniform (outlier-free) activations.
func NewController(cfg ControllerConfig) *Controller {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Controller{Cfg: cfg}

	c.InProj = tensor.NewMat(ObsFeatures, cfg.Dim)
	nn.RandInit(c.InProj, rng, 2)

	lin := func(name string, in, out int, gain float64) *nn.Linear {
		w := tensor.NewMat(in, out)
		nn.RandInit(w, rng, gain)
		return &nn.Linear{Name: name, W: w, B: make([]float32, out)}
	}
	for l := 0; l < cfg.Layers; l++ {
		c.Blocks = append(c.Blocks, &ControllerBlock{
			Norm1: nn.NewLayerNorm(cfg.Dim),
			Norm2: nn.NewLayerNorm(cfg.Dim),
			Attn: &nn.Attention{
				Heads: cfg.Heads,
				Q:     lin(fmt.Sprintf("L%d.Q", l), cfg.Dim, cfg.Dim, 1),
				K:     lin(fmt.Sprintf("L%d.K", l), cfg.Dim, cfg.Dim, 1),
				V:     lin(fmt.Sprintf("L%d.V", l), cfg.Dim, cfg.Dim, 1),
				O:     lin(fmt.Sprintf("L%d.O", l), cfg.Dim, cfg.Dim, 0.5),
			},
			MLP: &nn.MLP{
				FC1: lin(fmt.Sprintf("L%d.FC1", l), cfg.Dim, cfg.MLPDim, 1),
				FC2: lin(fmt.Sprintf("L%d.FC2", l), cfg.MLPDim, cfg.Dim, 0.5),
			},
		})
	}
	c.Norm = nn.NewLayerNorm(cfg.Dim)
	c.Head = lin("Head", cfg.Dim, cfg.Actions, 1)
	return c
}

// EncodeObservation expands a flat observation feature vector into the token
// sequence the controller attends over (a stand-in for the prompt-embed +
// image-process fusion front end of Fig. 3).
func (c *Controller) EncodeObservation(features []float32) *tensor.Mat {
	if len(features) != ObsFeatures {
		panic(fmt.Sprintf("model: controller expects %d features, got %d", ObsFeatures, len(features)))
	}
	x := tensor.NewMat(c.Cfg.ObsTokens, ObsFeatures)
	for t := 0; t < c.Cfg.ObsTokens; t++ {
		row := x.Row(t)
		for j, f := range features {
			// Token-position-dependent mixing keeps the sequence informative
			// without another learned component.
			row[j] = f * float32(1+(t+j)%3)
		}
	}
	return tensor.MatMul(x, c.InProj)
}

// Forward runs the controller and returns the action logits of the final
// token (the step's action distribution, Fig. 3 bottom-right).
func (c *Controller) Forward(be nn.Backend, features []float32) []float32 {
	h := c.EncodeObservation(features)
	for l, blk := range c.Blocks {
		if c.Probe != nil {
			c.Probe(l, h)
		}
		attnIn := blk.Norm1.Forward(h)
		h.AddInPlace(blk.Attn.Forward(be, attnIn))
		mlpIn := blk.Norm2.Forward(h)
		h.AddInPlace(blk.MLP.Forward(be, mlpIn))
	}
	out := c.Head.Forward(be, c.Norm.Forward(h))
	logits := make([]float32, c.Cfg.Actions)
	copy(logits, out.Row(out.Rows-1))
	return logits
}

// RandomObservation draws a plausible observation feature vector.
func RandomObservation(rng *rand.Rand) []float32 {
	obs := make([]float32, ObsFeatures)
	for i := range obs {
		obs[i] = float32(rng.NormFloat64())
	}
	return obs
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulSmall(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := FromRows([][]float32{{19, 22}, {43, 50}})
	if d := MaxAbsDiff(c, want); d != 0 {
		t.Fatalf("matmul wrong by %v", d)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMat(7, 7)
	id := NewMat(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
		for j := 0; j < 7; j++ {
			a.Set(i, j, rng.Float32()*4-2)
		}
	}
	if d := MaxAbsDiff(MatMul(a, id), a); d > 1e-6 {
		t.Fatalf("A*I != A (diff %v)", d)
	}
	if d := MaxAbsDiff(MatMul(id, a), a); d > 1e-6 {
		t.Fatalf("I*A != A (diff %v)", d)
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(NewMat(2, 3), NewMat(4, 2))
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMat(1+rng.Intn(8), 1+rng.Intn(8))
		for i := range m.Data {
			m.Data[i] = rng.Float32()
		}
		return MaxAbsDiff(m.Transpose().Transpose(), m) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		logits := make([]float32, 1+rng.Intn(20))
		for i := range logits {
			logits[i] = rng.Float32()*20 - 10
		}
		p := Softmax(logits)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	logits := []float32{1, 2, 3, 4}
	shifted := []float32{101, 102, 103, 104}
	a, b := Softmax(logits), Softmax(shifted)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-6 {
			t.Fatalf("softmax not shift invariant at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEntropyBounds(t *testing.T) {
	uniform := []float32{0.25, 0.25, 0.25, 0.25}
	if h := Entropy(uniform); math.Abs(h-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform entropy = %v, want ln(4)", h)
	}
	peaked := []float32{1, 0, 0, 0}
	if h := Entropy(peaked); h != 0 {
		t.Fatalf("one-hot entropy = %v, want 0", h)
	}
	// Entropy of any distribution is within [0, ln(n)].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		logits := make([]float32, 2+rng.Intn(30))
		for i := range logits {
			logits[i] = rng.Float32()*8 - 4
		}
		h := EntropyOfLogits(logits)
		return h >= 0 && h <= math.Log(float64(len(logits)))+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float32, 1000)
	for i := range xs {
		xs[i] = rng.Float32()*30 - 15 // some outside [-10, 10]
	}
	h := Histogram(xs, -10, 10, 16)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("histogram lost samples: %d != %d", total, len(xs))
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 {
		t.Fatal("empty argmax should be -1")
	}
	if got := ArgMax([]float32{1, 5, 3, 5}); got != 1 {
		t.Fatalf("tie should resolve low: got %d", got)
	}
}

func TestStatsKnownValues(t *testing.T) {
	xs := []float32{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-9 {
		t.Fatalf("std = %v", s)
	}
	if mx := AbsMax([]float32{-9, 3}); mx != 9 {
		t.Fatalf("absmax = %v", mx)
	}
}

func TestRowAliasesStorage(t *testing.T) {
	m := NewMat(3, 4)
	m.Row(1)[2] = 42
	if m.At(1, 2) != 42 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestL2NormAndDot(t *testing.T) {
	if n := L2Norm([]float32{3, 4}); math.Abs(n-5) > 1e-9 {
		t.Fatalf("l2 = %v", n)
	}
	if d := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); d != 32 {
		t.Fatalf("dot = %v", d)
	}
}

func TestSoftmaxIntoMatchesSoftmaxBitwise(t *testing.T) {
	// The episode hot loop swaps Softmax for SoftmaxInto on a reused
	// buffer; published bytes depend on the two being bit-identical.
	rng := rand.New(rand.NewSource(5))
	dst := make([]float32, 63)
	for trial := 0; trial < 50; trial++ {
		logits := make([]float32, 63)
		for i := range logits {
			logits[i] = float32(rng.NormFloat64() * 4)
		}
		fresh := Softmax(logits)
		// Dirty buffer: reuse must not depend on prior contents.
		for i := range dst {
			dst[i] = float32(trial)
		}
		SoftmaxInto(dst, logits)
		for i := range fresh {
			if math.Float32bits(fresh[i]) != math.Float32bits(dst[i]) {
				t.Fatalf("trial %d: SoftmaxInto[%d] = %x, Softmax = %x",
					trial, i, math.Float32bits(dst[i]), math.Float32bits(fresh[i]))
			}
		}
	}
}

func TestSoftmaxIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	SoftmaxInto(make([]float32, 2), make([]float32, 3))
}

func TestSampleFromProbsMatchesDecisionSampleArithmetic(t *testing.T) {
	// One rng.Float64 per draw, inverse-CDF over a left-to-right float64
	// cumulative sum: drawing with a cloned rng must agree with a manual
	// replication of that exact arithmetic.
	probs := Softmax([]float32{2, 0.5, 1, 0.25, 3})
	a, b := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		got := SampleFromProbs(probs, a)
		r := b.Float64()
		var cum float64
		want := len(probs) - 1
		for i, p := range probs {
			cum += float64(p)
			if r < cum {
				want = i
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: sampled %d, want %d", trial, got, want)
		}
	}
}

func TestSampleFromProbsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// A degenerate all-mass-on-one-entry vector always returns that entry.
	for i := 0; i < 20; i++ {
		if got := SampleFromProbs([]float32{0, 0, 1, 0}, rng); got != 2 {
			t.Fatalf("degenerate draw returned %d", got)
		}
	}
	// Float32 round-off can leave the cumulative sum below 1; the final
	// index is the documented clamp.
	if got := SampleFromProbs([]float32{0, 0}, rng); got != 1 {
		t.Fatalf("clamp returned %d, want last index", got)
	}
}

func TestEntropyOfProbsAliasesEntropy(t *testing.T) {
	probs := Softmax([]float32{1, 2, 3, 4})
	if EntropyOfProbs(probs) != Entropy(probs) {
		t.Fatal("EntropyOfProbs must be exactly Entropy")
	}
}

// Package tensor provides the dense float32 matrix and vector primitives the
// rest of the simulator is built on. It is intentionally small: row-major 2-D
// matrices, a float matmul reference, and the statistics helpers the
// resilience characterization needs (means, deviations, histograms).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major float32 matrix.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// NewMat returns a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a matrix from a slice of equally sized rows.
func FromRows(rows [][]float32) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("tensor: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Fill sets every element to v.
func (m *Mat) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// MatMul computes a*b with float32 accumulation (the error-free reference
// datapath; the systolic package provides the quantized, injectable one).
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := ar[k]
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				or[j] += av * br[j]
			}
		}
	}
	return out
}

// AddInPlace adds b element-wise into m.
func (m *Mat) AddInPlace(b *Mat) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("tensor: add shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// Scale multiplies every element by s.
func (m *Mat) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Transpose returns a new transposed matrix.
func (m *Mat) Transpose() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// AbsMax returns the maximum absolute value in xs (0 for empty input).
func AbsMax(xs []float32) float32 {
	var mx float32
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float32) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += float64(v)
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float32) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var s float64
	for _, v := range xs {
		d := float64(v) - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Histogram bins xs into bins equal-width buckets over [lo, hi]. Values
// outside the range are clamped into the edge buckets so no sample is lost.
func Histogram(xs []float32, lo, hi float64, bins int) []int {
	if bins <= 0 || hi <= lo {
		panic("tensor: invalid histogram spec")
	}
	h := make([]int, bins)
	w := (hi - lo) / float64(bins)
	for _, v := range xs {
		b := int((float64(v) - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h[b]++
	}
	return h
}

// Softmax returns the softmax of logits as a fresh slice, computed with the
// usual max-subtraction trick for numerical stability.
func Softmax(logits []float32) []float32 {
	out := make([]float32, len(logits))
	SoftmaxInto(out, logits)
	return out
}

// SoftmaxInto writes the softmax of logits into dst (which must have the
// same length) and returns dst. It is the allocation-free primitive behind
// Softmax: both share one arithmetic sequence — max-subtraction, float64
// exponential accumulation, one float32 inverse-sum scale — so a caller
// switching from Softmax to a reused dst buffer gets bit-identical
// probabilities (the episode hot loop depends on this; see PERFORMANCE.md).
//
//create:zeroalloc
func SoftmaxInto(dst, logits []float32) []float32 {
	if len(dst) != len(logits) {
		panic(fmt.Sprintf("tensor: softmax dst length %d != logits length %d", len(dst), len(logits))) //create:alloc-ok panic formatting is the failure path, never the steady state
	}
	if len(logits) == 0 {
		return dst
	}
	mx := logits[0]
	for _, v := range logits[1:] {
		if v > mx {
			mx = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - mx))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1.0 / sum)
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// Entropy returns the Shannon entropy in nats of a probability vector.
// Zero-probability entries contribute nothing.
//
//create:zeroalloc
func Entropy(probs []float32) float64 {
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= float64(p) * math.Log(float64(p))
		}
	}
	return h
}

// EntropyOfProbs is Entropy under its hot-path name: the in-place episode
// loop computes one probability vector per step (SoftmaxInto) and derives
// both the entropy and the sampled action from it.
//
//create:zeroalloc
func EntropyOfProbs(probs []float32) float64 { return Entropy(probs) }

// EntropyOfLogits is the entropy of Softmax(logits).
func EntropyOfLogits(logits []float32) float64 { return Entropy(Softmax(logits)) }

// SampleFromProbs draws an index from a probability vector by inverse-CDF
// sampling with float64 accumulation, consuming exactly one rng.Float64().
// The accumulation order is part of the determinism contract: it must stay
// a single left-to-right float64 sum (the historical Decision.Sample
// arithmetic) or published episode bytes change.
//
//create:zeroalloc
func SampleFromProbs(probs []float32, rng *rand.Rand) int {
	r := rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += float64(p)
		if r < cum {
			return i
		}
	}
	return len(probs) - 1
}

// ArgMax returns the index of the largest element (-1 for empty input).
// Ties resolve to the lowest index.
//
//create:zeroalloc
func ArgMax(xs []float32) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// Dot returns the float64 dot product of a and b.
//
//create:zeroalloc
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: dot length mismatch")
	}
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// L2Norm returns the Euclidean norm of xs.
func L2Norm(xs []float32) float64 {
	var s float64
	for _, v := range xs {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns the largest absolute element-wise difference between two
// equally shaped matrices; used by equivalence tests (e.g. weight rotation).
func MaxAbsDiff(a, b *Mat) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: diff shape mismatch")
	}
	var mx float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > mx {
			mx = d
		}
	}
	return mx
}

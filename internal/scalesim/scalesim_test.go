package scalesim

import (
	"testing"
	"testing/quick"
)

func TestPeakTOPS(t *testing.T) {
	a := Default()
	// 128*128 MACs * 2 ops at 500 MHz = 16.384 TOPS per tile.
	if got := a.PeakTOPS(); got < 16.3 || got > 16.5 {
		t.Fatalf("peak %v TOPS", got)
	}
}

func TestCyclesScaleWithTiles(t *testing.T) {
	a := Default()
	small := GEMM{M: 64, K: 128, N: 128}
	doubleK := GEMM{M: 64, K: 256, N: 128}
	doubleN := GEMM{M: 64, K: 128, N: 256}
	if a.Cycles(doubleK) != 2*a.Cycles(small) {
		t.Fatal("K tiling should double passes")
	}
	if a.Cycles(doubleN) != 2*a.Cycles(small) {
		t.Fatal("N tiling should double passes")
	}
}

func TestUtilizationBounds(t *testing.T) {
	a := Default()
	f := func(m, k, n uint16) bool {
		g := GEMM{M: int(m)%512 + 1, K: int(k)%512 + 1, N: int(n)%512 + 1}
		u := a.Utilization(g)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Big square GEMMs keep the array busy; tiny ones do not.
	big := a.Utilization(GEMM{M: 4096, K: 128, N: 128})
	small := a.Utilization(GEMM{M: 1, K: 128, N: 128})
	if big < 0.5 {
		t.Fatalf("large GEMM utilization only %v", big)
	}
	if small > 0.1 {
		t.Fatalf("tiny GEMM utilization %v", small)
	}
}

func TestLatencyMemoryBound(t *testing.T) {
	a := Default()
	gemms := []GEMM{{M: 1, K: 128, N: 128}}
	compute := a.Latency(gemms, 0)
	memBound := a.Latency(gemms, 8e9) // 8 GB of weights
	if memBound <= compute {
		t.Fatal("streaming 8GB must dominate a single tiny GEMM")
	}
	// The memory bound equals bytes/bandwidth.
	want := 8e9 / a.HBMBytesPerNS
	if memBound != want {
		t.Fatalf("memory-bound latency %v, want %v", memBound, want)
	}
}

func TestTransformerGEMMs(t *testing.T) {
	gemms := TransformerGEMMs(16, 64, 192, 4)
	if len(gemms) != 4*6 {
		t.Fatalf("expected 24 GEMMs, got %d", len(gemms))
	}
	var macs float64
	for _, g := range gemms {
		macs += g.MACs()
	}
	// Per layer: 4*16*64*64 + 2*16*64*192 = 655360; times 4 layers.
	if want := 4.0 * (4*16*64*64 + 2*16*64*192); macs != want {
		t.Fatalf("MACs %v, want %v", macs, want)
	}
}

func TestGEMMTrafficPositive(t *testing.T) {
	a := Default()
	tr := a.GEMMTraffic(GEMM{M: 16, K: 256, N: 256})
	if tr.SRAMBytes <= 0 {
		t.Fatal("no SRAM traffic")
	}
}

// Package scalesim models cycle-level behaviour of the 128x128
// weight-stationary systolic accelerator — latency, utilization, and memory
// traffic — in the manner of SCALE-Sim, which the paper uses for the same
// purpose (Sec. 6.1: "cycle-level behaviors, including inference latency and
// memory access, are modeled based on SCALE-Sim").
package scalesim

import "math"

// Array describes the accelerator (Sec. 6.1: 128x128 PEs, 2 ns clock).
type Array struct {
	Rows, Cols int
	ClockNS    float64
	// HBMBytesPerNS is the off-chip bandwidth (HBM2).
	HBMBytesPerNS float64
}

// Default returns the paper's configuration.
func Default() Array {
	return Array{Rows: 128, Cols: 128, ClockNS: 2, HBMBytesPerNS: 450}
}

// PeakTOPS is the array's peak INT8 throughput in tera-operations per
// second (2 ops per MAC). The default array reaches 16.4 TOPS per clock
// domain; the paper's 144 TOPS system aggregates multiple such tiles —
// relative latencies are what the table reproduction tracks.
func (a Array) PeakTOPS() float64 {
	return float64(a.Rows) * float64(a.Cols) * 2 / a.ClockNS / 1000
}

// GEMM is an M x K x N matrix multiplication workload.
type GEMM struct {
	M, K, N int
}

// MACs returns the multiply-accumulate count.
func (g GEMM) MACs() float64 { return float64(g.M) * float64(g.K) * float64(g.N) }

// Cycles returns the weight-stationary execution cycles: the K and N
// dimensions fold onto the array rows/cols; each (K-tile, N-tile) pass loads
// weights (Rows cycles) and streams M inputs with the systolic fill/drain
// overhead (Rows + Cols - 2 cycles).
func (a Array) Cycles(g GEMM) float64 {
	kTiles := math.Ceil(float64(g.K) / float64(a.Rows))
	nTiles := math.Ceil(float64(g.N) / float64(a.Cols))
	perPass := float64(a.Rows) + float64(g.M) + float64(a.Rows+a.Cols-2)
	return kTiles * nTiles * perPass
}

// Utilization is the fraction of peak MAC slots a workload keeps busy.
func (a Array) Utilization(g GEMM) float64 {
	used := g.MACs()
	slots := a.Cycles(g) * float64(a.Rows) * float64(a.Cols)
	if slots == 0 {
		return 0
	}
	u := used / slots
	if u > 1 {
		return 1
	}
	return u
}

// Traffic estimates memory movement for a GEMM: weights and inputs are read
// from SRAM per pass; outputs written back once.
type Traffic struct {
	SRAMBytes float64
	DRAMBytes float64
}

// GEMMTraffic returns the SRAM traffic of one weight-stationary GEMM with
// INT8 operands (weights loaded once per K/N tile pass, inputs streamed per
// pass, INT32 partial sums kept in-array).
func (a Array) GEMMTraffic(g GEMM) Traffic {
	kTiles := math.Ceil(float64(g.K) / float64(a.Rows))
	nTiles := math.Ceil(float64(g.N) / float64(a.Cols))
	weights := float64(g.K) * float64(g.N) // each weight byte loaded once
	inputs := float64(g.M) * float64(g.K) * nTiles
	outputs := float64(g.M) * float64(g.N)
	_ = kTiles
	return Traffic{SRAMBytes: weights + inputs + outputs}
}

// Latency returns the wall-clock time of a sequence of GEMMs in
// nanoseconds: compute cycles, bounded below by streaming dramBytes from
// HBM2 (weight-loading dominates large-model decoding).
func (a Array) Latency(gemms []GEMM, dramBytes float64) float64 {
	var cycles float64
	for _, g := range gemms {
		cycles += a.Cycles(g)
	}
	compute := cycles * a.ClockNS
	mem := dramBytes / a.HBMBytesPerNS
	if mem > compute {
		return mem
	}
	return compute
}

// TransformerGEMMs expands a Transformer inference into its GEMM list:
// per layer Q/K/V/O (dim x dim) and the MLP pair, over `tokens` rows,
// repeated `layers` times.
func TransformerGEMMs(tokens, dim, mlpDim, layers int) []GEMM {
	var out []GEMM
	for l := 0; l < layers; l++ {
		for i := 0; i < 4; i++ {
			out = append(out, GEMM{M: tokens, K: dim, N: dim})
		}
		out = append(out, GEMM{M: tokens, K: dim, N: mlpDim})
		out = append(out, GEMM{M: tokens, K: mlpDim, N: dim})
	}
	return out
}

// Package systolic simulates the INT8 systolic-array GEMM datapath the paper
// deploys embodied AI systems on (Sec. 2.2, Sec. 6.1): weights stationary in
// the PEs, inputs streamed horizontally, partial sums accumulated down the
// columns into 24-bit accumulators, results requantized at the bottom.
//
// The package is the injection site for timing errors (bit flips on the
// accumulator outputs, before requantization) and hosts the circuit-level
// CREATE technique: a row of anomaly-detection (AD) units — one comparator
// plus multiplexer per column — that clamps any out-of-bound result to zero
// (Sec. 5.1, Fig. 8(b)).
package systolic

import (
	"math/rand"

	"github.com/embodiedai/create/internal/inject"
	"github.com/embodiedai/create/internal/quant"
	"github.com/embodiedai/create/internal/tensor"
)

// Engine executes quantized GEMMs with optional error injection and anomaly
// clearance. The zero value is not usable; construct with NewEngine.
type Engine struct {
	// Bits selects INT8 or INT4 operand quantization.
	Bits quant.Bits
	// Injector models voltage-induced bit flips on accumulator outputs.
	// Nil means error-free execution.
	Injector inject.Injector
	// AD enables the anomaly detection and clearance unit row.
	AD bool
	// ADBoundScale loosens (>1) or tightens (<1) the profiled anomaly bound.
	// 1 reproduces the paper's "127 x output scaling factor" rule; weight
	// rotation lets the bound tighten because rotated activations are
	// outlier free (Sec. 5.2).
	ADBoundScale float64
	// Rng drives the stochastic injection. Never nil after NewEngine.
	Rng *rand.Rand

	// Stats accumulate across calls until ResetStats.
	Stats Stats
}

// Stats counts datapath events across GEMM calls.
type Stats struct {
	GEMMs      int   // number of GEMM invocations
	MACs       int64 // multiply-accumulate operations executed
	Outputs    int64 // accumulator results produced
	Flips      int   // bit flips injected
	Anomalies  int   // results clamped to zero by the AD units
	OutOfRange int64 // results outside the profiled output range (clamped only when AD is on)
}

// NewEngine returns an INT8 engine with deterministic seeding and no
// injection. Callers override fields as needed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		Bits:         quant.INT8,
		Injector:     inject.None{},
		ADBoundScale: 1,
		Rng:          rand.New(rand.NewSource(seed)),
	}
}

// ResetStats zeroes the accumulated statistics.
func (e *Engine) ResetStats() { e.Stats = Stats{} }

// MatMul computes x*w on the simulated datapath:
//
//  1. quantize x and w symmetrically per tensor,
//  2. integer matmul into 24-bit accumulators,
//  3. inject bit flips into the accumulator outputs,
//  4. (optional) AD: clamp |acc| above the profiled bound to zero,
//  5. dequantize back to float32.
//
// outAbsMax is the offline-profiled output dynamic range the anomaly bound
// derives from; pass 0 in profiling mode (no bound known yet). Faulty values
// are deliberately NOT saturated on the way out: as in the paper's error
// model, an un-cleared high-bit flip flows downstream at full magnitude —
// that is precisely the failure mode AD exists to stop (Fig. 4(b)).
func (e *Engine) MatMul(x, w *tensor.Mat, outAbsMax float32) *tensor.Mat {
	if x.Cols != w.Rows {
		panic("systolic: shape mismatch")
	}
	px := quant.Calibrate(x.Data, e.Bits)
	pw := quant.Calibrate(w.Data, e.Bits)

	xq := make([]int32, len(x.Data))
	wq := make([]int32, len(w.Data))
	px.QuantizeSlice(xq, x.Data)
	pw.QuantizeSlice(wq, w.Data)

	acc := make([]int32, x.Rows*w.Cols)
	integerMatMul(acc, xq, wq, x.Rows, x.Cols, w.Cols)

	e.Stats.GEMMs++
	e.Stats.MACs += int64(x.Rows) * int64(x.Cols) * int64(w.Cols)
	e.Stats.Outputs += int64(len(acc))

	if e.Injector != nil {
		e.Stats.Flips += e.Injector.Inject(acc, e.Rng)
	}

	var bound int32
	if outAbsMax > 0 {
		bound = quant.AccumulatorBound(px, pw, outAbsMax)
		if e.ADBoundScale != 1 && e.ADBoundScale > 0 {
			bound = int32(float64(bound) * e.ADBoundScale)
		}
	}
	if bound > 0 {
		for i, v := range acc {
			if v > bound || v < -bound {
				e.Stats.OutOfRange++
				if e.AD {
					acc[i] = 0
					e.Stats.Anomalies++
				}
			}
		}
	}

	out := tensor.NewMat(x.Rows, w.Cols)
	scale := px.Scale * pw.Scale
	for i, v := range acc {
		out.Data[i] = float32(v) * scale
	}
	return out
}

// integerMatMul computes the int32 accumulator matrix for xq (r x k) times
// wq (k x c).
func integerMatMul(acc, xq, wq []int32, r, k, c int) {
	for i := 0; i < r; i++ {
		xrow := xq[i*k : (i+1)*k]
		arow := acc[i*c : (i+1)*c]
		for kk := 0; kk < k; kk++ {
			xv := xrow[kk]
			if xv == 0 {
				continue
			}
			wrow := wq[kk*c : (kk+1)*c]
			for j := 0; j < c; j++ {
				arow[j] += xv * wrow[j]
			}
		}
	}
}

// Accumulate runs only steps 1-4 of the datapath and returns the raw
// accumulator values plus the input scales. The characterization harness
// uses this to look at error magnitudes in the accumulator domain (Fig. 4(b),
// Fig. 8(a)).
func (e *Engine) Accumulate(x, w *tensor.Mat) (acc []int32, scale float32) {
	px := quant.Calibrate(x.Data, e.Bits)
	pw := quant.Calibrate(w.Data, e.Bits)
	xq := make([]int32, len(x.Data))
	wq := make([]int32, len(w.Data))
	px.QuantizeSlice(xq, x.Data)
	pw.QuantizeSlice(wq, w.Data)
	acc = make([]int32, x.Rows*w.Cols)
	integerMatMul(acc, xq, wq, x.Rows, x.Cols, w.Cols)
	if e.Injector != nil {
		e.Stats.Flips += e.Injector.Inject(acc, e.Rng)
	}
	return acc, px.Scale * pw.Scale
}

// Package systolic simulates the INT8 systolic-array GEMM datapath the paper
// deploys embodied AI systems on (Sec. 2.2, Sec. 6.1): weights stationary in
// the PEs, inputs streamed horizontally, partial sums accumulated down the
// columns into 24-bit accumulators, results requantized at the bottom.
//
// The package is the injection site for timing errors (bit flips on the
// accumulator outputs, before requantization) and hosts the circuit-level
// CREATE technique: a row of anomaly-detection (AD) units — one comparator
// plus multiplexer per column — that clamps any out-of-bound result to zero
// (Sec. 5.1, Fig. 8(b)).
//
// The GEMM kernel here is the severity-measurement hot path: every
// bridge.Measure*Severity cold start runs thousands of miniature forwards
// through it. It is therefore written for throughput under a strict
// bit-identity contract (PERFORMANCE.md): the quantize/accumulate buffers
// live in a per-engine scratch arena (no steady-state allocation), and the
// integer matmul is tiled for cache locality with an unrolled inner loop —
// legal because int32 addition is associative and commutative (wrap-around
// two's complement), so any summation order produces the same bytes. The
// tiled kernel is locked against a naive reference by
// TestBlockedMatMulBitIdentical.
package systolic

import (
	"math/rand"

	"github.com/embodiedai/create/internal/inject"
	"github.com/embodiedai/create/internal/quant"
	"github.com/embodiedai/create/internal/tensor"
)

// Engine executes quantized GEMMs with optional error injection and anomaly
// clearance. The zero value is not usable; construct with NewEngine.
//
// An Engine is not safe for concurrent use: Stats, Rng and the scratch
// arena are per-engine state (one engine per worker/backend, the same
// discipline the rest of the repository follows).
type Engine struct {
	// Bits selects INT8 or INT4 operand quantization.
	Bits quant.Bits
	// Injector models voltage-induced bit flips on accumulator outputs.
	// Nil means error-free execution.
	Injector inject.Injector
	// AD enables the anomaly detection and clearance unit row.
	AD bool
	// ADBoundScale loosens (>1) or tightens (<1) the profiled anomaly bound.
	// 1 reproduces the paper's "127 x output scaling factor" rule; weight
	// rotation lets the bound tighten because rotated activations are
	// outlier free (Sec. 5.2).
	ADBoundScale float64
	// Rng drives the stochastic injection. Never nil after NewEngine.
	Rng *rand.Rand

	// Stats accumulate across calls until ResetStats.
	Stats Stats

	// scratch is the reusable quantize/accumulate arena: buffers grow to
	// the high-water shape once and are reused by every subsequent call,
	// so steady-state MatMul allocates nothing but its returned output.
	scratch struct {
		xq, wq, acc []int32
	}
}

// Stats counts datapath events across GEMM calls.
type Stats struct {
	GEMMs int   // number of GEMM invocations
	MACs  int64 // multiply-accumulate operations actually executed
	// SkippedMACs counts the MACs the zero-activation-row skip elided: a
	// quantized activation of 0 contributes nothing to any column, so the
	// kernel never issues its row of multiplies. MACs+SkippedMACs is the
	// dense r*k*c product a naive datapath would charge.
	SkippedMACs int64
	Flips       int   // bit flips injected
	Anomalies   int   // results clamped to zero by the AD units
	Outputs     int64 // accumulator results produced
	OutOfRange  int64 // results outside the profiled output range (clamped only when AD is on)
}

// NewEngine returns an INT8 engine with deterministic seeding and no
// injection. Callers override fields as needed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		Bits:         quant.INT8,
		Injector:     inject.None{},
		ADBoundScale: 1,
		Rng:          rand.New(rand.NewSource(seed)),
	}
}

// ResetStats zeroes the accumulated statistics.
func (e *Engine) ResetStats() { e.Stats = Stats{} }

// SwapInjector installs inj and returns the previously installed injector,
// so calibration and measurement passes can disable or redirect injection
// without repeating the save/restore dance at every site.
func (e *Engine) SwapInjector(inj inject.Injector) inject.Injector {
	prev := e.Injector
	e.Injector = inj
	return prev
}

// grow returns a length-n int32 scratch buffer backed by *buf, reusing the
// existing backing array whenever it is large enough.
//
//create:zeroalloc
func grow(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n) //create:alloc-ok amortized: the arena grows to the high-water shape once and is reused by every later call
	}
	return (*buf)[:n]
}

// MatMul computes x*w on the simulated datapath:
//
//  1. quantize x and w symmetrically per tensor,
//  2. integer matmul into 24-bit accumulators,
//  3. inject bit flips into the accumulator outputs,
//  4. (optional) AD: clamp |acc| above the profiled bound to zero,
//  5. dequantize back to float32.
//
// outAbsMax is the offline-profiled output dynamic range the anomaly bound
// derives from; pass 0 in profiling mode (no bound known yet). Faulty values
// are deliberately NOT saturated on the way out: as in the paper's error
// model, an un-cleared high-bit flip flows downstream at full magnitude —
// that is precisely the failure mode AD exists to stop (Fig. 4(b)).
func (e *Engine) MatMul(x, w *tensor.Mat, outAbsMax float32) *tensor.Mat {
	out := tensor.NewMat(x.Rows, w.Cols)
	e.MatMulInto(out, x, w, outAbsMax)
	return out
}

// MatMulInto is MatMul into a caller-owned output matrix (which must be
// x.Rows by w.Cols). It is the allocation-free steady-state entry: all
// intermediate buffers come from the engine's scratch arena, locked by the
// TestMatMulScratchZeroAllocs gate.
//
//create:zeroalloc
func (e *Engine) MatMulInto(out, x, w *tensor.Mat, outAbsMax float32) {
	if x.Cols != w.Rows {
		panic("systolic: shape mismatch")
	}
	if out.Rows != x.Rows || out.Cols != w.Cols {
		panic("systolic: output shape mismatch")
	}
	px, pw, acc := e.accumulate(x, w)

	e.Stats.GEMMs++
	e.Stats.Outputs += int64(len(acc))

	if e.Injector != nil {
		e.Stats.Flips += e.Injector.Inject(acc, e.Rng)
	}

	var bound int32
	if outAbsMax > 0 {
		bound = quant.AccumulatorBound(px, pw, outAbsMax)
		if e.ADBoundScale != 1 && e.ADBoundScale > 0 {
			bound = int32(float64(bound) * e.ADBoundScale)
		}
	}
	if bound > 0 {
		for i, v := range acc {
			if v > bound || v < -bound {
				e.Stats.OutOfRange++
				if e.AD {
					acc[i] = 0
					e.Stats.Anomalies++
				}
			}
		}
	}

	scale := px.Scale * pw.Scale
	for i, v := range acc {
		out.Data[i] = float32(v) * scale
	}
}

// accumulate is the shared steps 1-2 prefix of MatMul and Accumulate:
// calibrate, quantize into the scratch arena, and run the tiled integer
// matmul. The returned accumulator slice aliases the arena and is only
// valid until the next call. MAC accounting (executed vs skipped) happens
// here so both entry points charge identically.
//
//create:zeroalloc
func (e *Engine) accumulate(x, w *tensor.Mat) (px, pw quant.Params, acc []int32) {
	px = quant.Calibrate(x.Data, e.Bits)
	pw = quant.Calibrate(w.Data, e.Bits)

	xq := grow(&e.scratch.xq, len(x.Data))
	wq := grow(&e.scratch.wq, len(w.Data))
	px.QuantizeSlice(xq, x.Data)
	pw.QuantizeSlice(wq, w.Data)

	acc = grow(&e.scratch.acc, x.Rows*w.Cols)
	for i := range acc {
		acc[i] = 0
	}
	integerMatMul(acc, xq, wq, x.Rows, x.Cols, w.Cols)

	// Executed MACs: each nonzero quantized activation drives one multiply
	// per output column; zero activations are skipped by the kernel.
	nz := 0
	for _, v := range xq {
		if v != 0 {
			nz++
		}
	}
	dense := int64(x.Rows) * int64(x.Cols) * int64(w.Cols)
	executed := int64(nz) * int64(w.Cols)
	e.Stats.MACs += executed
	e.Stats.SkippedMACs += dense - executed
	return px, pw, acc
}

// Tile sizes of the blocked integer matmul: a kTile x jTile weight tile
// (64 KiB at jTile=256) stays cache-resident while every activation row
// streams over it, instead of re-streaming the whole weight matrix per row.
const (
	matmulKTile = 64
	matmulJTile = 256
)

// integerMatMul computes the int32 accumulator matrix for xq (r x k) times
// wq (k x c), accumulating into acc (which must be zeroed by the caller).
//
// The loop nest is tiled over (k, j) for cache locality and the innermost
// loop is unrolled four wide (axpyInt32). Bit-identity: int32 addition is
// associative and commutative under two's-complement wrap-around, so the
// tiled summation order produces exactly the bytes of the naive row-major
// triple loop (TestBlockedMatMulBitIdentical). Zero activations are
// skipped — they cannot contribute to any column — which is also why
// executed-MAC accounting excludes them.
//
//create:zeroalloc
func integerMatMul(acc, xq, wq []int32, r, k, c int) {
	for kk0 := 0; kk0 < k; kk0 += matmulKTile {
		kend := min(kk0+matmulKTile, k)
		for jj0 := 0; jj0 < c; jj0 += matmulJTile {
			jend := min(jj0+matmulJTile, c)
			for i := 0; i < r; i++ {
				xrow := xq[i*k : (i+1)*k]
				arow := acc[i*c+jj0 : i*c+jend]
				for kk := kk0; kk < kend; kk++ {
					xv := xrow[kk]
					if xv == 0 {
						continue
					}
					axpyInt32(arow, wq[kk*c+jj0:kk*c+jend], xv)
				}
			}
		}
	}
}

// axpyInt32 computes dst[j] += xv * src[j], unrolled four wide. The order
// of the independent += updates across j does not affect any byte of the
// result (each dst element is touched once per call).
//
//create:zeroalloc
func axpyInt32(dst, src []int32, xv int32) {
	src = src[:len(dst)] // bounds-check hint
	n := len(dst) &^ 3
	for j := 0; j < n; j += 4 {
		dst[j] += xv * src[j]
		dst[j+1] += xv * src[j+1]
		dst[j+2] += xv * src[j+2]
		dst[j+3] += xv * src[j+3]
	}
	for j := n; j < len(dst); j++ {
		dst[j] += xv * src[j]
	}
}

// Accumulate runs only steps 1-3 of the datapath and returns the raw
// accumulator values plus the input scales. The characterization harness
// uses this to look at error magnitudes in the accumulator domain (Fig. 4(b),
// Fig. 8(a)). The returned slice is freshly allocated (callers keep it);
// only the quantization buffers ride the scratch arena.
func (e *Engine) Accumulate(x, w *tensor.Mat) (acc []int32, scale float32) {
	px, pw, scratchAcc := e.accumulate(x, w)
	acc = make([]int32, len(scratchAcc))
	copy(acc, scratchAcc)
	if e.Injector != nil {
		e.Stats.Flips += e.Injector.Inject(acc, e.Rng)
	}
	return acc, px.Scale * pw.Scale
}

package systolic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/embodiedai/create/internal/inject"
	"github.com/embodiedai/create/internal/quant"
	"github.com/embodiedai/create/internal/tensor"
)

func randMat(rng *rand.Rand, r, c int, scale float32) *tensor.Mat {
	m := tensor.NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

func TestErrorFreeGEMMCloseToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randMat(rng, 8, 32, 1)
	w := randMat(rng, 32, 16, 1)
	e := NewEngine(1)
	got := e.MatMul(x, w, 0)
	want := tensor.MatMul(x, w)
	// INT8 quantization error on a K=32 dot product stays small relative to
	// the output range.
	if d := tensor.MaxAbsDiff(got, want); d > 0.5 {
		t.Fatalf("quantized GEMM too far from float: %v", d)
	}
}

func TestGEMMStatsAccounting(t *testing.T) {
	e := NewEngine(2)
	rng := rand.New(rand.NewSource(2))
	e.MatMul(randMat(rng, 4, 8, 1), randMat(rng, 8, 3, 1), 0)
	if e.Stats.GEMMs != 1 {
		t.Fatalf("gemms = %d", e.Stats.GEMMs)
	}
	if e.Stats.MACs != 4*8*3 {
		t.Fatalf("macs = %d", e.Stats.MACs)
	}
	if e.Stats.Outputs != 12 {
		t.Fatalf("outputs = %d", e.Stats.Outputs)
	}
	e.ResetStats()
	if e.Stats.GEMMs != 0 {
		t.Fatal("reset failed")
	}
}

func TestInjectionCorruptsOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMat(rng, 16, 64, 1)
	w := randMat(rng, 64, 64, 1)
	clean := NewEngine(7).MatMul(x, w, 0)
	e := NewEngine(7)
	e.Injector = inject.Uniform{BER: 1e-3}
	dirty := e.MatMul(x, w, 0)
	if e.Stats.Flips == 0 {
		t.Fatal("no flips injected at BER 1e-3")
	}
	if tensor.MaxAbsDiff(clean, dirty) == 0 {
		t.Fatal("injection had no observable effect")
	}
}

func TestADClampsHighBitErrors(t *testing.T) {
	// With AD on, a high-bit flip that pushes a result far outside the
	// profiled output range must be cleared to zero rather than surviving.
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 16, 64, 1)
	w := randMat(rng, 64, 64, 1)

	clean := NewEngine(5).MatMul(x, w, 0)
	outMax := tensor.AbsMax(clean.Data) * 1.05

	mkEngine := func(ad bool) *Engine {
		e := NewEngine(5)
		e.Injector = inject.Uniform{BER: 2e-4}
		e.AD = ad
		return e
	}

	noAD := mkEngine(false)
	outNoAD := noAD.MatMul(x, w, outMax)
	withAD := mkEngine(true)
	outAD := withAD.MatMul(x, w, outMax)

	if withAD.Stats.Anomalies == 0 {
		t.Fatal("AD never fired despite high-bit flips")
	}
	// The worst-case deviation from the clean result must shrink under AD:
	// out-of-range garbage becomes a zero, whose deviation is bounded by the
	// clean magnitude.
	devNoAD := tensor.MaxAbsDiff(outNoAD, clean)
	devAD := tensor.MaxAbsDiff(outAD, clean)
	if devAD >= devNoAD {
		t.Fatalf("AD did not reduce worst-case deviation: %v vs %v", devAD, devNoAD)
	}
	if devAD > float64(outMax)*2.01 {
		t.Fatalf("AD deviation %v exceeds clamp guarantee %v", devAD, outMax*2)
	}
}

func TestADDoesNotFireOnCleanExecution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randMat(rng, 4, 16, 1)
		w := randMat(rng, 16, 8, 1)
		clean := NewEngine(seed).MatMul(x, w, 0)
		outMax := tensor.AbsMax(clean.Data)
		if outMax == 0 {
			return true
		}
		e := NewEngine(seed)
		e.AD = true
		e.MatMul(x, w, outMax*1.01)
		return e.Stats.Anomalies == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestADBoundScaleTightens(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randMat(rng, 16, 64, 1)
	w := randMat(rng, 64, 64, 1)
	clean := NewEngine(8).MatMul(x, w, 0)
	outMax := tensor.AbsMax(clean.Data)

	run := func(scale float64) int {
		e := NewEngine(8)
		e.Injector = inject.Uniform{BER: 5e-4}
		e.AD = true
		e.ADBoundScale = scale
		e.MatMul(x, w, outMax)
		return e.Stats.Anomalies
	}
	loose, tight := run(1.0), run(0.25)
	if tight <= loose {
		t.Fatalf("tighter bound should clamp more: tight=%d loose=%d", tight, loose)
	}
}

func TestFaultyValuesFlowUnsaturatedWithoutAD(t *testing.T) {
	// The paper's error model: an un-cleared high-bit flip flows downstream
	// at full magnitude. Out-of-range results are counted but not modified
	// unless AD is enabled.
	rng := rand.New(rand.NewSource(9))
	x := randMat(rng, 16, 64, 1)
	w := randMat(rng, 64, 64, 1)
	clean := NewEngine(5).MatMul(x, w, 0)
	outMax := tensor.AbsMax(clean.Data) * 1.05

	e := NewEngine(5)
	e.Injector = inject.Uniform{BER: 2e-4}
	out := e.MatMul(x, w, outMax)
	if e.Stats.OutOfRange == 0 {
		t.Fatal("expected out-of-range results from high-bit flips")
	}
	if e.Stats.Anomalies != 0 {
		t.Fatal("AD must not clamp when disabled")
	}
	escaped := 0
	for _, v := range out.Data {
		if v > outMax || v < -outMax {
			escaped++
		}
	}
	if escaped == 0 {
		t.Fatal("faulty values should escape the profiled range when AD is off")
	}
}

func TestINT4Engine(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randMat(rng, 8, 32, 1)
	w := randMat(rng, 32, 8, 1)
	e8, e4 := NewEngine(1), NewEngine(1)
	e4.Bits = quant.INT4
	want := tensor.MatMul(x, w)
	d8 := tensor.MaxAbsDiff(e8.MatMul(x, w, 0), want)
	d4 := tensor.MaxAbsDiff(e4.MatMul(x, w, 0), want)
	if d4 <= d8 {
		t.Fatalf("INT4 should be coarser than INT8: %v vs %v", d4, d8)
	}
}

func TestAccumulateScaleConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randMat(rng, 4, 16, 1)
	w := randMat(rng, 16, 4, 1)
	e := NewEngine(1)
	acc, scale := e.Accumulate(x, w)
	out := e.MatMul(x, w, 0)
	for i, a := range acc {
		if math.Abs(float64(float32(a)*scale-out.Data[i])) > 1e-6 {
			t.Fatalf("acc*scale mismatch at %d", i)
		}
	}
}

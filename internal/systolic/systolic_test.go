package systolic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/embodiedai/create/internal/inject"
	"github.com/embodiedai/create/internal/quant"
	"github.com/embodiedai/create/internal/tensor"
)

func randMat(rng *rand.Rand, r, c int, scale float32) *tensor.Mat {
	m := tensor.NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

func TestErrorFreeGEMMCloseToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randMat(rng, 8, 32, 1)
	w := randMat(rng, 32, 16, 1)
	e := NewEngine(1)
	got := e.MatMul(x, w, 0)
	want := tensor.MatMul(x, w)
	// INT8 quantization error on a K=32 dot product stays small relative to
	// the output range.
	if d := tensor.MaxAbsDiff(got, want); d > 0.5 {
		t.Fatalf("quantized GEMM too far from float: %v", d)
	}
}

func TestGEMMStatsAccounting(t *testing.T) {
	e := NewEngine(2)
	rng := rand.New(rand.NewSource(2))
	x, w := randMat(rng, 4, 8, 1), randMat(rng, 8, 3, 1)
	e.MatMul(x, w, 0)
	if e.Stats.GEMMs != 1 {
		t.Fatalf("gemms = %d", e.Stats.GEMMs)
	}
	// Executed + skipped must always reassemble the dense r*k*c product.
	if got := e.Stats.MACs + e.Stats.SkippedMACs; got != 4*8*3 {
		t.Fatalf("macs+skipped = %d, want %d", got, 4*8*3)
	}
	if e.Stats.Outputs != 12 {
		t.Fatalf("outputs = %d", e.Stats.Outputs)
	}
	e.ResetStats()
	if e.Stats.GEMMs != 0 {
		t.Fatal("reset failed")
	}
}

// TestExecutedMACsExcludeSkippedRows is the regression test for the MAC
// overcounting bug: the kernel skips zero quantized activations, so Stats.MACs
// must charge only the multiplies actually issued, with the elided ones in
// SkippedMACs.
func TestExecutedMACsExcludeSkippedRows(t *testing.T) {
	x := tensor.NewMat(3, 4)
	// Row 0 all zero (4 zero activations), row 1 half zero, row 2 dense.
	copy(x.Data, []float32{
		0, 0, 0, 0,
		1, 0, -1, 0,
		1, 1, 1, 1,
	})
	w := tensor.NewMat(4, 5)
	for i := range w.Data {
		w.Data[i] = 1
	}
	e := NewEngine(3)
	e.MatMul(x, w, 0)
	// 6 nonzero activations x 5 columns executed; 6 zero activations skipped.
	if e.Stats.MACs != 6*5 {
		t.Fatalf("executed macs = %d, want %d", e.Stats.MACs, 6*5)
	}
	if e.Stats.SkippedMACs != 6*5 {
		t.Fatalf("skipped macs = %d, want %d", e.Stats.SkippedMACs, 6*5)
	}
	if e.Stats.MACs+e.Stats.SkippedMACs != 3*4*5 {
		t.Fatalf("macs+skipped != dense: %d", e.Stats.MACs+e.Stats.SkippedMACs)
	}
}

// naiveIntegerMatMul is the reference row-major triple loop the blocked
// kernel must match byte for byte.
func naiveIntegerMatMul(acc, xq, wq []int32, r, k, c int) {
	for i := 0; i < r; i++ {
		for kk := 0; kk < k; kk++ {
			xv := xq[i*k+kk]
			if xv == 0 {
				continue
			}
			for j := 0; j < c; j++ {
				acc[i*c+j] += xv * wq[kk*c+j]
			}
		}
	}
}

func TestBlockedMatMulBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{1, 1, 1},
		{4, 8, 3},
		{7, 64, 256},   // exactly one k tile, one j tile
		{3, 65, 257},   // one element past each tile boundary
		{16, 200, 300}, // interior tiles plus ragged tails
		{2, 128, 512},  // multiple full tiles both ways
		{5, matmulKTile, matmulJTile},
		{1, 300, 1},
	}
	for _, s := range shapes {
		r, k, c := s[0], s[1], s[2]
		xq := make([]int32, r*k)
		wq := make([]int32, k*c)
		for i := range xq {
			// Include zero activations (the skip path) and negatives.
			xq[i] = int32(rng.Intn(255)) - 127
			if rng.Intn(4) == 0 {
				xq[i] = 0
			}
		}
		for i := range wq {
			wq[i] = int32(rng.Intn(255)) - 127
		}
		// Zero out a whole activation row sometimes: the all-skip case.
		if r > 1 {
			row := rng.Intn(r)
			for kk := 0; kk < k; kk++ {
				xq[row*k+kk] = 0
			}
		}
		got := make([]int32, r*c)
		want := make([]int32, r*c)
		integerMatMul(got, xq, wq, r, k, c)
		naiveIntegerMatMul(want, xq, wq, r, k, c)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shape %dx%dx%d: acc[%d] = %d, naive %d", r, k, c, i, got[i], want[i])
			}
		}
	}
}

// TestMatMulScratchZeroAllocs is the allocs-per-run gate on the steady-state
// kernel: once the arena has grown to the working shape, MatMulInto must not
// allocate at all.
func TestMatMulScratchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randMat(rng, 16, 64, 1)
	w := randMat(rng, 64, 64, 1)
	e := NewEngine(11)
	out := tensor.NewMat(x.Rows, w.Cols)
	e.MatMulInto(out, x, w, 0) // warm the arena
	allocs := testing.AllocsPerRun(20, func() {
		e.MatMulInto(out, x, w, 0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state MatMulInto allocates: %v allocs/run", allocs)
	}
}

func TestMatMulMatchesMatMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := randMat(rng, 9, 33, 1)
	w := randMat(rng, 33, 21, 1)
	a := NewEngine(17).MatMul(x, w, 0)
	b := tensor.NewMat(x.Rows, w.Cols)
	NewEngine(17).MatMulInto(b, x, w, 0)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("MatMul vs MatMulInto differ at %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func TestSwapInjector(t *testing.T) {
	e := NewEngine(1)
	orig := e.Injector
	prev := e.SwapInjector(inject.Uniform{BER: 1e-3})
	if prev != orig {
		t.Fatal("SwapInjector did not return the previous injector")
	}
	if _, ok := e.Injector.(inject.Uniform); !ok {
		t.Fatal("SwapInjector did not install the new injector")
	}
	e.SwapInjector(prev)
	if e.Injector != orig {
		t.Fatal("SwapInjector restore failed")
	}
}

func BenchmarkIntegerMatMul(b *testing.B) {
	// The severity-measurement GEMM shape class: small batch, model-sized
	// hidden dims (model.DefaultControllerConfig is 64-wide, planner 128).
	rng := rand.New(rand.NewSource(1))
	const r, k, c = 16, 128, 128
	xq := make([]int32, r*k)
	wq := make([]int32, k*c)
	for i := range xq {
		xq[i] = int32(rng.Intn(255)) - 127
	}
	for i := range wq {
		wq[i] = int32(rng.Intn(255)) - 127
	}
	acc := make([]int32, r*c)
	b.SetBytes(int64(r*k*c) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range acc {
			acc[j] = 0
		}
		integerMatMul(acc, xq, wq, r, k, c)
	}
}

func BenchmarkEngineMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := randMat(rng, 16, 128, 1)
	w := randMat(rng, 128, 128, 1)
	e := NewEngine(2)
	out := tensor.NewMat(x.Rows, w.Cols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MatMulInto(out, x, w, 0)
	}
}

func TestInjectionCorruptsOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randMat(rng, 16, 64, 1)
	w := randMat(rng, 64, 64, 1)
	clean := NewEngine(7).MatMul(x, w, 0)
	e := NewEngine(7)
	e.Injector = inject.Uniform{BER: 1e-3}
	dirty := e.MatMul(x, w, 0)
	if e.Stats.Flips == 0 {
		t.Fatal("no flips injected at BER 1e-3")
	}
	if tensor.MaxAbsDiff(clean, dirty) == 0 {
		t.Fatal("injection had no observable effect")
	}
}

func TestADClampsHighBitErrors(t *testing.T) {
	// With AD on, a high-bit flip that pushes a result far outside the
	// profiled output range must be cleared to zero rather than surviving.
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 16, 64, 1)
	w := randMat(rng, 64, 64, 1)

	clean := NewEngine(5).MatMul(x, w, 0)
	outMax := tensor.AbsMax(clean.Data) * 1.05

	mkEngine := func(ad bool) *Engine {
		e := NewEngine(5)
		e.Injector = inject.Uniform{BER: 2e-4}
		e.AD = ad
		return e
	}

	noAD := mkEngine(false)
	outNoAD := noAD.MatMul(x, w, outMax)
	withAD := mkEngine(true)
	outAD := withAD.MatMul(x, w, outMax)

	if withAD.Stats.Anomalies == 0 {
		t.Fatal("AD never fired despite high-bit flips")
	}
	// The worst-case deviation from the clean result must shrink under AD:
	// out-of-range garbage becomes a zero, whose deviation is bounded by the
	// clean magnitude.
	devNoAD := tensor.MaxAbsDiff(outNoAD, clean)
	devAD := tensor.MaxAbsDiff(outAD, clean)
	if devAD >= devNoAD {
		t.Fatalf("AD did not reduce worst-case deviation: %v vs %v", devAD, devNoAD)
	}
	if devAD > float64(outMax)*2.01 {
		t.Fatalf("AD deviation %v exceeds clamp guarantee %v", devAD, outMax*2)
	}
}

func TestADDoesNotFireOnCleanExecution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randMat(rng, 4, 16, 1)
		w := randMat(rng, 16, 8, 1)
		clean := NewEngine(seed).MatMul(x, w, 0)
		outMax := tensor.AbsMax(clean.Data)
		if outMax == 0 {
			return true
		}
		e := NewEngine(seed)
		e.AD = true
		e.MatMul(x, w, outMax*1.01)
		return e.Stats.Anomalies == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestADBoundScaleTightens(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randMat(rng, 16, 64, 1)
	w := randMat(rng, 64, 64, 1)
	clean := NewEngine(8).MatMul(x, w, 0)
	outMax := tensor.AbsMax(clean.Data)

	run := func(scale float64) int {
		e := NewEngine(8)
		e.Injector = inject.Uniform{BER: 5e-4}
		e.AD = true
		e.ADBoundScale = scale
		e.MatMul(x, w, outMax)
		return e.Stats.Anomalies
	}
	loose, tight := run(1.0), run(0.25)
	if tight <= loose {
		t.Fatalf("tighter bound should clamp more: tight=%d loose=%d", tight, loose)
	}
}

func TestFaultyValuesFlowUnsaturatedWithoutAD(t *testing.T) {
	// The paper's error model: an un-cleared high-bit flip flows downstream
	// at full magnitude. Out-of-range results are counted but not modified
	// unless AD is enabled.
	rng := rand.New(rand.NewSource(9))
	x := randMat(rng, 16, 64, 1)
	w := randMat(rng, 64, 64, 1)
	clean := NewEngine(5).MatMul(x, w, 0)
	outMax := tensor.AbsMax(clean.Data) * 1.05

	e := NewEngine(5)
	e.Injector = inject.Uniform{BER: 2e-4}
	out := e.MatMul(x, w, outMax)
	if e.Stats.OutOfRange == 0 {
		t.Fatal("expected out-of-range results from high-bit flips")
	}
	if e.Stats.Anomalies != 0 {
		t.Fatal("AD must not clamp when disabled")
	}
	escaped := 0
	for _, v := range out.Data {
		if v > outMax || v < -outMax {
			escaped++
		}
	}
	if escaped == 0 {
		t.Fatal("faulty values should escape the profiled range when AD is off")
	}
}

func TestINT4Engine(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randMat(rng, 8, 32, 1)
	w := randMat(rng, 32, 8, 1)
	e8, e4 := NewEngine(1), NewEngine(1)
	e4.Bits = quant.INT4
	want := tensor.MatMul(x, w)
	d8 := tensor.MaxAbsDiff(e8.MatMul(x, w, 0), want)
	d4 := tensor.MaxAbsDiff(e4.MatMul(x, w, 0), want)
	if d4 <= d8 {
		t.Fatalf("INT4 should be coarser than INT8: %v vs %v", d4, d8)
	}
}

func TestAccumulateScaleConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randMat(rng, 4, 16, 1)
	w := randMat(rng, 16, 4, 1)
	e := NewEngine(1)
	acc, scale := e.Accumulate(x, w)
	out := e.MatMul(x, w, 0)
	for i, a := range acc {
		if math.Abs(float64(float32(a)*scale-out.Data[i])) > 1e-6 {
			t.Fatalf("acc*scale mismatch at %d", i)
		}
	}
}

package power

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/embodiedai/create/internal/timing"
)

func TestMACEnergyQuadraticInVoltage(t *testing.T) {
	m := Default()
	full := m.MACEnergy(0.9)
	half := m.MACEnergy(0.45)
	if math.Abs(half-full/4)/full > 1e-9 {
		t.Fatalf("V^2 scaling violated: %v vs %v", half, full/4)
	}
}

func TestEffectiveVoltageProperties(t *testing.T) {
	m := Default()
	// Constant histogram: effective voltage equals the constant.
	if v := m.EffectiveVoltage(map[int]int{750: 100}); math.Abs(v-0.75) > 1e-9 {
		t.Fatalf("constant histogram gives %v", v)
	}
	// Empty histogram: nominal.
	if v := m.EffectiveVoltage(nil); v != m.VNominal {
		t.Fatalf("empty histogram gives %v", v)
	}
	// Mixed: between the extremes, and closer to the majority rail.
	v := m.EffectiveVoltage(map[int]int{900: 20, 700: 80})
	if v <= 0.70 || v >= 0.90 {
		t.Fatalf("mixed veff out of range: %v", v)
	}
	if v > 0.80 {
		t.Fatalf("majority-weighted veff should lean low: %v", v)
	}
}

func TestEffectiveVoltageEnergyEquivalence(t *testing.T) {
	// Defining property: running all steps at Veff consumes the same
	// compute energy as the actual histogram.
	m := Default()
	f := func(a, b uint8) bool {
		na, nb := int(a)%200+1, int(b)%200+1
		hist := map[int]int{820: na, 660: nb}
		veff := m.EffectiveVoltage(hist)
		macs := 1e9
		mvs := make([]int, 0, len(hist))
		for mv := range hist {
			mvs = append(mvs, mv)
		}
		sort.Ints(mvs)
		var actual float64
		total := 0
		for _, mv := range mvs {
			n := hist[mv]
			actual += float64(n) * m.ComputeEnergy(macs, float64(mv)/1000)
			total += n
		}
		equiv := float64(total) * m.ComputeEnergy(macs, veff)
		return math.Abs(actual-equiv)/actual < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownShares(t *testing.T) {
	m := Default()
	// JARVIS-1-planner-like workload: compute share ~2/3 (Fig. 18).
	w := Workload{MACs: 2.67e12, SRAMBytes: 2.67e12 / 64, DRAMBytes: 7.87e9 * 1.2}
	bd := m.Breakdown(w, timing.VNominal)
	if s := bd.ComputeShare(); s < 0.55 || s < 0 || s > 0.8 {
		t.Fatalf("planner compute share %v outside Fig. 18's band", s)
	}
	// Controller-like: SRAM-resident weights, compute share ~3/4.
	wc := Workload{MACs: 51e9, SRAMBytes: 51e9 / 8}
	bdc := m.Breakdown(wc, timing.VNominal)
	if s := bdc.ComputeShare(); s < 0.7 || s > 0.9 {
		t.Fatalf("controller compute share %v outside Fig. 18's band", s)
	}
	if bd.Total() <= 0 {
		t.Fatal("zero total energy")
	}
}

func TestEpisodeEnergyComposition(t *testing.T) {
	m := Default()
	spec := EpisodeSpec{PlannerMACsPerCall: 1e12, ControllerMACsStep: 1e9}
	e1 := m.EpisodeEnergy(spec, 1, 900, map[int]int{900: 100})
	e2 := m.EpisodeEnergy(spec, 2, 900, map[int]int{900: 100})
	if e2 <= e1 {
		t.Fatal("more planner calls must cost more")
	}
	low := m.EpisodeEnergy(spec, 1, 900, map[int]int{700: 100})
	if low >= e1 {
		t.Fatal("lower controller voltage must cost less")
	}
	// Predictor runs at nominal regardless of controller rail.
	spec.PredictorMACsStep = 1e9
	withPred := m.EpisodeEnergy(spec, 1, 900, map[int]int{700: 100})
	if withPred <= low {
		t.Fatal("predictor energy missing")
	}
}

func TestBatteryExtension(t *testing.T) {
	// 35% compute saving at 50% compute share => ~21% longer battery life.
	got := BatteryExtension(0.35, 0.5)
	if math.Abs(got-0.2121) > 0.01 {
		t.Fatalf("battery extension %v", got)
	}
	if BatteryExtension(0, 0.5) != 0 {
		t.Fatal("no saving, no extension")
	}
	lo := BatteryExtension(0.33, 0.45)
	hi := BatteryExtension(0.33, 0.65)
	// The paper's 15-30% band over realistic compute shares.
	if lo < 0.12 || hi > 0.35 || lo >= hi {
		t.Fatalf("battery band [%v, %v] implausible", lo, hi)
	}
}

func TestAreaPowerBreakdownOverheads(t *testing.T) {
	rows := AreaPowerBreakdown()
	var total, ad, ldo float64
	for _, r := range rows {
		switch r.Block {
		case "Total":
			total = r.AreaMM2
		case "AD Unit":
			ad = r.AreaMM2
		case "LDO":
			ldo = r.AreaMM2
		}
	}
	if ad/total > 0.002 || ldo/total > 0.002 {
		t.Fatalf("AD/LDO area overheads must be ~0.1%%: %v %v of %v", ad, ldo, total)
	}
}

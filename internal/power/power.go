// Package power models the accelerator's energy: dynamic compute energy
// scaling quadratically with supply voltage, SRAM and HBM2 access energies,
// chip-level breakdowns (Fig. 18), the effective-voltage metric (Sec. 6.1),
// and battery-life extension (Sec. 6.8).
package power

import (
	"math"
	"sort"

	"github.com/embodiedai/create/internal/timing"
)

// Model holds the energy constants of the 22 nm platform. They are
// calibrated so the JARVIS-1 chip-level breakdown matches Fig. 18
// (computation ~67 % of planner energy, ~78 % of controller energy).
type Model struct {
	// EMACNominal is the INT8 multiply-accumulate energy at the nominal
	// voltage, in joules.
	EMACNominal float64
	// ESRAMPerByte and EDRAMPerByte are access energies in joules. The
	// memory rails are not voltage scaled (only the PE array is), so these
	// stay constant under VS.
	ESRAMPerByte float64
	EDRAMPerByte float64
	VNominal     float64
}

// Default returns the calibrated 22 nm model.
func Default() *Model {
	return &Model{
		EMACNominal:  0.25e-12,
		ESRAMPerByte: 0.55e-12,
		EDRAMPerByte: 38e-12, // HBM2 including PHY/controller
		VNominal:     timing.VNominal,
	}
}

// MACEnergy returns the per-MAC energy at supply voltage v (dynamic energy
// scales with V^2).
func (m *Model) MACEnergy(v float64) float64 {
	r := v / m.VNominal
	return m.EMACNominal * r * r
}

// ComputeEnergy returns the compute energy of `macs` MACs at voltage v.
func (m *Model) ComputeEnergy(macs, v float64) float64 { return macs * m.MACEnergy(v) }

// Workload is one inference invocation's resource footprint.
type Workload struct {
	MACs      float64
	SRAMBytes float64
	DRAMBytes float64
}

// Breakdown is a chip-level energy split (Fig. 18).
type Breakdown struct {
	Compute float64
	SRAM    float64
	DRAM    float64
}

// Total is the summed energy.
func (b Breakdown) Total() float64 { return b.Compute + b.SRAM + b.DRAM }

// ComputeShare is the fraction of total energy spent on computation.
func (b Breakdown) ComputeShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Compute / t
}

// Breakdown evaluates a workload at compute voltage v.
func (m *Model) Breakdown(w Workload, v float64) Breakdown {
	return Breakdown{
		Compute: m.ComputeEnergy(w.MACs, v),
		SRAM:    w.SRAMBytes * m.ESRAMPerByte,
		DRAM:    w.DRAMBytes * m.EDRAMPerByte,
	}
}

// EffectiveVoltage is the constant voltage with the same total compute
// energy as the observed per-step voltage histogram (Sec. 6.1's metric for
// adaptive policies): Veff = Vnom * sqrt(mean((Vi/Vnom)^2)).
func (m *Model) EffectiveVoltage(stepsAtMV map[int]int) float64 {
	var num float64
	total := 0
	// Accumulate in sorted-key order: float sums over Go's randomized map
	// iteration can differ in the last ulp between runs, and the CI
	// determinism gate byte-diffs outputs built from this value.
	for _, mv := range sortedMV(stepsAtMV) {
		n := stepsAtMV[mv]
		v := float64(mv) / 1000
		num += float64(n) * v * v
		total += n
	}
	if total == 0 {
		return m.VNominal
	}
	return math.Sqrt(num / float64(total))
}

// sortedMV returns the histogram's keys in ascending order, making every
// float accumulation over a voltage histogram order-stable.
func sortedMV(stepsAtMV map[int]int) []int {
	keys := make([]int, 0, len(stepsAtMV))
	for mv := range stepsAtMV {
		keys = append(keys, mv)
	}
	sort.Ints(keys)
	return keys
}

// EpisodeEnergy sums the computational energy of an episode: planner
// invocations at the planner voltage, controller steps at their per-step
// voltages, plus the always-at-nominal entropy predictor when VS is active
// (Sec. 5.3: "the predictor operates at nominal voltage").
type EpisodeSpec struct {
	PlannerMACsPerCall float64
	ControllerMACsStep float64
	PredictorMACsStep  float64 // 0 when VS is off
}

// EpisodeEnergy computes computational joules for one episode or an
// aggregate of episodes.
func (m *Model) EpisodeEnergy(spec EpisodeSpec, plannerCalls float64, plannerMV int, stepsAtMV map[int]int) float64 {
	e := plannerCalls * m.ComputeEnergy(spec.PlannerMACsPerCall, float64(plannerMV)/1000)
	steps := 0
	for _, mv := range sortedMV(stepsAtMV) {
		n := stepsAtMV[mv]
		e += float64(n) * m.ComputeEnergy(spec.ControllerMACsStep, float64(mv)/1000)
		steps += n
	}
	e += float64(steps) * m.ComputeEnergy(spec.PredictorMACsStep, m.VNominal)
	return e
}

// BatteryExtension returns the battery-life extension factor (e.g. 0.21 for
// +21 %) when computation saves computeSavingFrac of its energy and
// computation accounts for computeShare of total system power (Sec. 6.8:
// compute is "comparable to or exceeding" mechanical power on the cited
// platforms).
func BatteryExtension(computeSavingFrac, computeShare float64) float64 {
	pNew := (1 - computeShare) + computeShare*(1-computeSavingFrac)
	if pNew <= 0 {
		return math.Inf(1)
	}
	return 1/pNew - 1
}

// AreaPowerRow is one line of the Fig. 12(c) block breakdown.
type AreaPowerRow struct {
	Block   string
	AreaMM2 float64
	PowerW  string
}

// AreaPowerBreakdown reproduces the Fig. 12(c) table: the AD units and LDOs
// add ~0.1 % overhead against the PE array and SRAM.
func AreaPowerBreakdown() []AreaPowerRow {
	return []AreaPowerRow{
		{"LDO", 0.43, "0.03"},
		{"AD Unit", 0.25, "0.02"},
		{"PE Array", 195.50, "6.93-15.39"},
		{"SRAM", 85.96, "0.84*"},
		{"Total", 322.50, "12.82-17.75"},
	}
}

// Package planner implements the high-level task decomposition of the
// LLM-based planner and how planner faults corrupt it.
//
// The real JARVIS-1 planner turns a natural-language task into a subtask
// sequence by decoding tokens; a fault-corrupted decode yields wrong or
// nonsense instructions (Sec. 4.1). Here the golden decomposition is
// rule-derived from the task's dependency chain (state-aware, so replans
// resume from progress), and corruption operates at subtask granularity:
// each subtask spans ~TokensPerSubtask decode tokens, and any materially
// corrupted token spoils its subtask, replacing it with a nonsense or
// misordered instruction the controller cannot complete.
package planner

import (
	"math"
	"math/rand"

	"github.com/embodiedai/create/internal/world"
)

// TokensPerSubtask is the number of decoded tokens that determine one
// subtask line of a plan.
const TokensPerSubtask = 12

// SubtaskCorruptProb converts a per-token corruption probability into a
// per-subtask one.
func SubtaskCorruptProb(pToken float64) float64 {
	if pToken <= 0 {
		return 0
	}
	if pToken >= 1 {
		return 1
	}
	return 1 - math.Pow(1-pToken, TokensPerSubtask)
}

// Golden returns the remaining subtask sequence for the task given the
// current world state — the decomposition an error-free planner produces.
// On a fresh world this is the full plan; after partial progress (replans)
// completed milestones are skipped.
func Golden(task world.TaskName, w *world.World) []world.Subtask {
	full := fullPlan(task)
	// Resume after the furthest completed milestone: tool crafts, placements
	// and final items are monotone conditions, so everything before the last
	// completed subtask is no longer needed even if its own condition has
	// since been consumed away (e.g. logs turned into planks).
	start := 0
	for i := len(full) - 1; i >= 0; i-- {
		if full[i].Done(w) {
			start = i + 1
			break
		}
	}
	var out []world.Subtask
	for _, st := range full[start:] {
		if !st.Done(w) {
			out = append(out, st)
		}
	}
	return out
}

// fullPlan is the from-scratch decomposition of each task (Table 10).
func fullPlan(task world.TaskName) []world.Subtask {
	mine := func(kind world.SubtaskKind, item world.Item, n int) world.Subtask {
		return world.Subtask{Kind: kind, Item: item, Count: n}
	}
	craft := func(item world.Item) world.Subtask {
		return world.Subtask{Kind: world.CraftItem, Item: item, Count: 1}
	}
	smelt := func(item world.Item, n int) world.Subtask {
		return world.Subtask{Kind: world.SmeltItem, Item: item, Count: n}
	}
	placeTable := world.Subtask{Kind: world.PlaceTable}
	placeFurnace := world.Subtask{Kind: world.PlaceFurnace}

	woodenChain := func(logs int) []world.Subtask {
		return []world.Subtask{
			mine(world.MineLog, world.Log, logs),
			craft(world.CraftingTable),
			placeTable,
			craft(world.WoodenPickaxe),
		}
	}
	furnaceChain := []world.Subtask{
		mine(world.MineStone, world.Cobblestone, 8),
		craft(world.Furnace),
		placeFurnace,
	}

	switch task {
	case world.TaskWooden:
		return woodenChain(3)
	case world.TaskStone:
		return append(woodenChain(3),
			mine(world.MineStone, world.Cobblestone, 3),
			craft(world.StonePickaxe),
		)
	case world.TaskCharcoal:
		plan := append(woodenChain(5), furnaceChain...)
		return append(plan, smelt(world.Charcoal, 1))
	case world.TaskChicken:
		plan := append(woodenChain(4), furnaceChain...)
		return append(plan,
			mine(world.HuntChicken, world.RawChicken, 1),
			smelt(world.CookedChicken, 1),
		)
	case world.TaskCoal:
		return append(woodenChain(3), mine(world.MineCoal, world.Coal, 1))
	case world.TaskIron:
		plan := append(woodenChain(4),
			mine(world.MineStone, world.Cobblestone, 3),
			craft(world.StonePickaxe),
		)
		plan = append(plan, furnaceChain...)
		return append(plan,
			mine(world.MineIron, world.RawIron, 2),
			smelt(world.IronIngot, 2),
			craft(world.IronSword),
		)
	case world.TaskWool:
		return []world.Subtask{mine(world.ShearWool, world.Wool, 5)}
	case world.TaskSeed:
		return []world.Subtask{mine(world.CollectSeeds, world.WheatSeeds, 10)}
	case world.TaskLog:
		return []world.Subtask{mine(world.MineLog, world.Log, 10)}
	default:
		return nil
	}
}

// Corrupt applies planner faults to a plan: each subtask independently
// corrupts with probability pSubtask. A corrupted line becomes nonsense
// (ungroundable text) or a misordered instruction picked at random —
// "prolonged irrelevant or incorrect actions" (Sec. 4.1).
func Corrupt(plan []world.Subtask, pSubtask float64, rng *rand.Rand) []world.Subtask {
	if pSubtask <= 0 {
		return plan
	}
	out := make([]world.Subtask, len(plan))
	copy(out, plan)
	for i := range out {
		if rng.Float64() >= pSubtask {
			continue
		}
		if rng.Float64() < 0.5 {
			out[i] = world.Subtask{Kind: world.Nonsense}
		} else {
			out[i] = randomMisordered(rng)
		}
	}
	return out
}

// randomMisordered picks a plausible-looking but contextually wrong subtask.
func randomMisordered(rng *rand.Rand) world.Subtask {
	options := []world.Subtask{
		{Kind: world.MineIron, Item: world.RawIron, Count: 2},
		{Kind: world.MineCoal, Item: world.Coal, Count: 1},
		{Kind: world.CraftItem, Item: world.IronSword, Count: 1},
		{Kind: world.CraftItem, Item: world.Furnace, Count: 1},
		{Kind: world.SmeltItem, Item: world.IronIngot, Count: 1},
		{Kind: world.HuntChicken, Item: world.RawChicken, Count: 1},
		{Kind: world.MineStone, Item: world.Cobblestone, Count: 8},
	}
	return options[rng.Intn(len(options))]
}

package planner

import (
	"math"
	"math/rand"
	"testing"

	"github.com/embodiedai/create/internal/world"
)

func TestGoldenPlansExistForAllTasks(t *testing.T) {
	for _, task := range world.AllTasks {
		w := world.New(world.Specs[task].Biome, 1)
		plan := Golden(task, w)
		if len(plan) == 0 {
			t.Fatalf("%s: empty plan", task)
		}
		// A fresh plan must not contain nonsense and must end with a
		// subtask that yields the task's goal item.
		for _, st := range plan {
			if st.Kind == world.Nonsense {
				t.Fatalf("%s: golden plan contains nonsense", task)
			}
		}
		last := plan[len(plan)-1]
		if last.Item != world.Specs[task].Goal {
			t.Fatalf("%s: plan ends with %v, want %v", task, last.Item, world.Specs[task].Goal)
		}
	}
}

func TestGoldenPlanSubtaskCounts(t *testing.T) {
	// The paper's tasks decompose into a handful of subtasks (Sec. 2.1:
	// typically 5-20 basic subtasks for complex ones; simple gather tasks
	// are single subtasks).
	w := world.New(world.Plains, 2)
	if n := len(Golden(world.TaskIron, w)); n < 8 {
		t.Fatalf("iron should be a long decomposition, got %d", n)
	}
	if n := len(Golden(world.TaskLog, w)); n != 1 {
		t.Fatalf("log should be a single subtask, got %d", n)
	}
}

func TestGoldenResumesAfterMilestones(t *testing.T) {
	w := world.New(world.Jungle, 3)
	full := Golden(world.TaskStone, w)

	// Simulate having crafted the wooden pickaxe (logs consumed).
	w.Inventory[world.WoodenPickaxe] = 1
	w.Inventory[world.Planks] = 3
	resumed := Golden(world.TaskStone, w)
	if len(resumed) >= len(full) {
		t.Fatalf("replan did not skip completed milestones: %d vs %d", len(resumed), len(full))
	}
	for _, st := range resumed {
		if st.Kind == world.MineLog {
			t.Fatal("replan re-mines logs after the pickaxe milestone")
		}
	}
}

func TestSubtaskCorruptProb(t *testing.T) {
	if SubtaskCorruptProb(0) != 0 {
		t.Fatal("zero token corruption must give zero")
	}
	if SubtaskCorruptProb(1) != 1 {
		t.Fatal("certain token corruption must give one")
	}
	p := SubtaskCorruptProb(0.01)
	want := 1 - math.Pow(0.99, TokensPerSubtask)
	if math.Abs(p-want) > 1e-12 {
		t.Fatalf("subtask corruption %v, want %v", p, want)
	}
}

func TestCorruptStatistics(t *testing.T) {
	w := world.New(world.Plains, 4)
	plan := Golden(world.TaskIron, w)
	rng := rand.New(rand.NewSource(5))
	const reps = 400
	corrupted := 0
	for r := 0; r < reps; r++ {
		out := Corrupt(plan, 0.3, rng)
		if len(out) != len(plan) {
			t.Fatal("corruption changed plan length")
		}
		for i := range out {
			if out[i] != plan[i] {
				corrupted++
			}
		}
	}
	rate := float64(corrupted) / float64(reps*len(plan))
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("corruption rate %v far from requested 0.3", rate)
	}
}

func TestCorruptZeroProbIsIdentity(t *testing.T) {
	w := world.New(world.Plains, 6)
	plan := Golden(world.TaskStone, w)
	out := Corrupt(plan, 0, rand.New(rand.NewSource(1)))
	for i := range out {
		if out[i] != plan[i] {
			t.Fatal("p=0 corruption modified the plan")
		}
	}
}

func TestCharcoalPlanIsExecutable(t *testing.T) {
	// Material accounting: following the charcoal plan's crafting chain must
	// leave a log for smelting and fuel to burn (the 5-log decomposition).
	w := world.New(world.Plains, 7)
	plan := Golden(world.TaskCharcoal, w)
	if plan[0].Count < 5 {
		t.Fatalf("charcoal needs 5 logs (crafting consumes 3, smelt input 1, fuel margin), got %d", plan[0].Count)
	}
}

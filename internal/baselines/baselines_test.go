package baselines

import (
	"testing"

	"github.com/embodiedai/create/internal/timing"
)

func TestDMRReliableButExpensive(t *testing.T) {
	tm := timing.Default()
	// Reliable across the whole range...
	for _, v := range []float64{0.9, 0.8, 0.7, 0.65} {
		if p := DMR.ControllerCorrupt(tm, v); p > 0.05 {
			t.Fatalf("DMR should stay reliable at %vV, corrupt=%v", v, p)
		}
	}
	// ...but always at >= 2x compute energy.
	for _, v := range []float64{0.9, 0.8, 0.7} {
		if f := DMR.EnergyFactor(tm, v); f < 2.0 {
			t.Fatalf("DMR energy factor %v at %vV", f, v)
		}
	}
	// Recovery grows at low voltage.
	if DMR.EnergyFactor(tm, 0.62) <= DMR.EnergyFactor(tm, 0.88) {
		t.Fatal("DMR recovery cost should grow with error rate")
	}
}

func TestThUnderVoltPruningFloor(t *testing.T) {
	tm := timing.Default()
	// Cheap...
	if f := ThUnderVolt.EnergyFactor(tm, 0.8); f > 1.15 {
		t.Fatalf("ThUnderVolt should be cheap, factor %v", f)
	}
	// ...but quality degrades at low voltage through the pruning floor.
	lo := ThUnderVolt.ControllerCorrupt(tm, 0.65)
	hi := ThUnderVolt.ControllerCorrupt(tm, 0.88)
	if lo <= hi {
		t.Fatal("pruning corruption should grow as voltage drops")
	}
	if lo < 0.1 {
		t.Fatalf("deep underscaling should hurt ThUnderVolt: %v", lo)
	}
}

func TestABFTConfinedAbove085(t *testing.T) {
	tm := timing.Default()
	// Near 0.88 V the checksum overhead is small.
	if f := ABFT.EnergyFactor(tm, 0.88); f > 1.25 {
		t.Fatalf("ABFT at 0.88V should be cheap: %v", f)
	}
	// Below 0.85 V recovery explodes (Sec. 6.10).
	if f := ABFT.EnergyFactor(tm, 0.78); f < 1.5 {
		t.Fatalf("ABFT at 0.78V should pay recovery: %v", f)
	}
	// Reliability itself stays high (errors are corrected).
	if p := ABFT.ControllerCorrupt(tm, 0.7); p > 0.1 {
		t.Fatalf("ABFT corruption %v", p)
	}
}

func TestBaselinesMonotoneInVoltage(t *testing.T) {
	tm := timing.Default()
	for _, b := range All {
		prev := -1.0
		for _, v := range []float64{0.88, 0.82, 0.76, 0.70, 0.64} {
			p := b.PlannerCorrupt(tm, v)
			if p < prev {
				t.Fatalf("%s planner corruption not monotone at %v", b.Name, v)
			}
			if p < 0 || p > 1 {
				t.Fatalf("%s probability out of range: %v", b.Name, p)
			}
			prev = p
		}
	}
}

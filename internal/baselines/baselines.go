// Package baselines implements the prior-art protection techniques CREATE
// is compared against in Sec. 6.10:
//
//   - DMR (dual modular redundancy, [39]): every computation runs twice and
//     mismatches trigger a third run — near-perfect reliability at >= 2x
//     compute energy plus recovery cost.
//   - ThUnderVolt ([40]): per-PE timing-error detection with result
//     bypassing (faulty partial results skipped, i.e. zeroed) — cheap, but
//     the implied neuron pruning degrades accuracy as error rates grow.
//   - ABFT ([49]): checksum-based GEMM error detection with recomputation —
//     lightweight checksums, but recovery dominates once errors are
//     frequent, which confines it above ~0.85 V.
//
// Each baseline supplies (a) corruption probabilities that plug into the
// agent's override hooks and (b) an energy factor on compute energy.
package baselines

import (
	"math"

	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/timing"
)

// Baseline models one protection technique.
type Baseline struct {
	Name string
	// PlannerKneeScale / ControllerKneeScale multiply the *unprotected*
	// unit-level knees: how much more error density the technique tolerates
	// before outputs corrupt.
	PlannerKneeScale    float64
	ControllerKneeScale float64
	// PruneFloor is an additive corruption floor from the technique's own
	// intervention (ThUnderVolt's zeroed results act like pruned neurons);
	// it grows with the error rate and does not go away with voltage
	// margin on the chain's own logic.
	PruneFloor func(ber float64) float64
	// EnergyFactor multiplies compute energy at supply voltage v, covering
	// redundancy, checksums, and recomputation (recovery rates depend on the
	// timing model's BER at v).
	EnergyFactor func(tm *timing.Model, v float64) float64
}

// DMR is dual modular redundancy with triple-vote recovery.
var DMR = Baseline{
	Name:                "DMR",
	PlannerKneeScale:    5e5, // detects and re-executes almost everything
	ControllerKneeScale: 5e4,
	EnergyFactor: func(tm *timing.Model, v float64) float64 {
		// Two copies plus comparison, plus a third run for mismatching
		// GEMM tiles: mismatch probability grows with BER.
		recover := math.Min(1, tm.BER(v)*2e4)
		return 2.05 + recover
	},
}

// ThUnderVolt detects per-PE timing violations and bypasses (zeroes) faulty
// results.
var ThUnderVolt = Baseline{
	Name:                "ThUnderVolt",
	PlannerKneeScale:    80, // bypassing removes large errors, not the loss
	ControllerKneeScale: 25,
	PruneFloor: func(ber float64) float64 {
		// Every detected error zeroes a partial result; dense zeroing acts
		// like aggressive neuron pruning ("excessive neuron pruning...
		// significantly degrades performance", Sec. 6.10).
		return math.Min(0.45, ber*timing.AccBits*2e2)
	},
	EnergyFactor: func(tm *timing.Model, v float64) float64 {
		return 1.06 // bypass circuits in every PE
	},
}

// ABFT is checksum-based detection with tile recomputation.
var ABFT = Baseline{
	Name:                "ABFT",
	PlannerKneeScale:    3e5, // checksums catch nearly everything...
	ControllerKneeScale: 3e4,
	EnergyFactor: func(tm *timing.Model, v float64) float64 {
		// ...but every detected error recomputes its GEMM tile; the
		// recovery fraction explodes below ~0.85 V (Sec. 6.10).
		recover := math.Min(2.5, tm.BER(v)/1.2e-8)
		return 1.08 + recover
	},
}

// All lists the comparison baselines of Fig. 20.
var All = []Baseline{DMR, ThUnderVolt, ABFT}

// PlannerCorrupt returns the per-plan-line corruption probability under the
// baseline at supply voltage v.
func (b Baseline) PlannerCorrupt(tm *timing.Model, v float64) float64 {
	knee := bridge.PlannerKneeFor(bridge.Protection{}) * b.PlannerKneeScale
	p := corrupt(tm.BER(v), knee)
	if b.PruneFloor != nil {
		p = combine(p, b.PruneFloor(tm.BER(v)))
	}
	return p
}

// ControllerCorrupt returns the per-step action corruption probability
// under the baseline at supply voltage v.
func (b Baseline) ControllerCorrupt(tm *timing.Model, v float64) float64 {
	knee := bridge.ControllerKneeFor(bridge.Protection{}) * b.ControllerKneeScale
	p := corrupt(tm.BER(v), knee)
	if b.PruneFloor != nil {
		p = combine(p, b.PruneFloor(tm.BER(v)))
	}
	return p
}

func corrupt(ber, knee float64) float64 {
	if ber <= 0 {
		return 0
	}
	lambda := bridge.KneeLambda * math.Pow(ber/knee, bridge.SublinearExponent)
	return bridge.CorruptProb(lambda)
}

func combine(p, q float64) float64 { return 1 - (1-p)*(1-q) }

package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the full exposition rendering: HELP/TYPE
// comments, family and series sort order, label canonicalization and
// escaping, cumulative histogram buckets, and value formatting. Any
// format drift breaks real scrapers, so the expected output is exact.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	jobs := r.Counter("create_jobs_total", "Jobs by terminal state.", "state", "done", "experiment", "fig19")
	jobs.Add(3)
	r.Counter("create_jobs_total", "Jobs by terminal state.", "state", "failed", "experiment", "fig19").Inc()

	g := r.Gauge("create_jobs_inflight", "Jobs currently executing.")
	g.Set(2)
	g.Add(-1)

	r.GaugeFunc("create_cache_disk_bytes", "Bytes on disk under the cache dir.", func() float64 { return 4096 })
	r.CounterFunc("create_cache_hits_total", "Cache hits.", func() int64 { return 41 })

	h := r.Histogram("create_job_stage_seconds", "Stage latency.", []float64{0.1, 1, 10}, "stage", "compute")
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(1.0) // lands in le="1" exactly
	h.Observe(25)  // +Inf only

	// Label values with every escapable character, keys deliberately
	// passed in non-sorted order.
	r.Counter("create_escapes_total", `Help with \ backslash and
newline.`, "zkey", "a\\b\"c\nd", "akey", "plain").Inc()

	var b strings.Builder
	r.WritePrometheus(&b)

	want := strings.Join([]string{
		`# HELP create_cache_disk_bytes Bytes on disk under the cache dir.`,
		`# TYPE create_cache_disk_bytes gauge`,
		`create_cache_disk_bytes 4096`,
		`# HELP create_cache_hits_total Cache hits.`,
		`# TYPE create_cache_hits_total counter`,
		`create_cache_hits_total 41`,
		`# HELP create_escapes_total Help with \\ backslash and\nnewline.`,
		`# TYPE create_escapes_total counter`,
		`create_escapes_total{akey="plain",zkey="a\\b\"c\nd"} 1`,
		`# HELP create_job_stage_seconds Stage latency.`,
		`# TYPE create_job_stage_seconds histogram`,
		`create_job_stage_seconds_bucket{stage="compute",le="0.1"} 2`,
		`create_job_stage_seconds_bucket{stage="compute",le="1"} 3`,
		`create_job_stage_seconds_bucket{stage="compute",le="10"} 3`,
		`create_job_stage_seconds_bucket{stage="compute",le="+Inf"} 4`,
		`create_job_stage_seconds_sum{stage="compute"} 26.1`,
		`create_job_stage_seconds_count{stage="compute"} 4`,
		`# HELP create_jobs_inflight Jobs currently executing.`,
		`# TYPE create_jobs_inflight gauge`,
		`create_jobs_inflight 1`,
		`# HELP create_jobs_total Jobs by terminal state.`,
		`# TYPE create_jobs_total counter`,
		`create_jobs_total{experiment="fig19",state="done"} 3`,
		`create_jobs_total{experiment="fig19",state="failed"} 1`,
		``,
	}, "\n")
	if b.String() != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// TestInstrumentMemoization asserts same name+labels returns the same
// instrument regardless of label pair order.
func TestInstrumentMemoization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "a", "1", "b", "2")
	b := r.Counter("x_total", "x", "b", "2", "a", "1")
	if a != b {
		t.Fatal("label order should not change instrument identity")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared counter value = %d, want 1", b.Value())
	}
	if r.Gauge("y", "y") != r.Gauge("y", "y") {
		t.Fatal("gauge not memoized")
	}
	h1 := r.Histogram("z", "z", []float64{1, 2})
	h2 := r.Histogram("z", "z", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("histogram not memoized")
	}
}

// TestRegistryPanics asserts misuse fails loudly at the call site.
func TestRegistryPanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"kind mismatch":   func(r *Registry) { r.Counter("m", "m"); r.Gauge("m", "m") },
		"odd labels":      func(r *Registry) { r.Counter("m", "m", "key") },
		"bad metric name": func(r *Registry) { r.Counter("0bad", "m") },
		"bad label name":  func(r *Registry) { r.Counter("m", "m", "0bad", "v") },
		"duplicate label": func(r *Registry) { r.Counter("m", "m", "k", "1", "k", "2") },
		"bounds mismatch": func(r *Registry) {
			r.Histogram("h", "h", []float64{1}, "a", "1")
			r.Histogram("h", "h", []float64{2}, "a", "2")
		},
		"unsorted bounds":  func(r *Registry) { r.Histogram("h", "h", []float64{2, 1}) },
		"negative counter": func(r *Registry) { r.Counter("m", "m").Add(-1) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

// TestHandler asserts the /metrics content type and body.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "Up.").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("body missing sample: %q", body)
	}

	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status = %d, want 405", post.StatusCode)
	}
}

// TestJobTimingFinalizeAndCSV covers duration derivation and the CSV row
// shape, including an early-canceled job with unreached stages.
func TestJobTimingFinalizeAndCSV(t *testing.T) {
	base := time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC)
	jt := &JobTiming{
		Job:        "j1",
		Experiment: "fig19",
		Tenant:     "default",
		Shard:      "2/4",
		Outcome:    "done",
		QueuedAt:   base,
		StartedAt:  base.Add(100 * time.Millisecond),
		PlannedAt:  base.Add(150 * time.Millisecond),
		ComputedAt: base.Add(2 * time.Second),
		RenderedAt: base.Add(2*time.Second + 10*time.Millisecond),
		GridPoints: 24, CacheHits: 8, ComputedPoints: 16, DedupeJoins: 1,
	}
	jt.Finalize()
	for name, got := range map[string]float64{
		"queue": jt.QueueWaitSeconds, "plan": jt.PlanSeconds,
		"compute": jt.ComputeSeconds, "render": jt.RenderSeconds, "total": jt.TotalSeconds,
	} {
		if got <= 0 {
			t.Errorf("%s duration = %v, want > 0", name, got)
		}
	}
	if jt.TotalSeconds != 2.01 {
		t.Errorf("total = %v, want 2.01", jt.TotalSeconds)
	}

	row := jt.CSVRow()
	if got, want := len(strings.Split(row, ",")), len(strings.Split(TimingCSVHeader, ",")); got != want {
		t.Fatalf("row has %d fields, header has %d\nrow: %s", got, want, row)
	}
	if !strings.Contains(row, `"2/4"`) && !strings.Contains(row, ",2/4,") {
		t.Errorf("row missing shard: %s", row)
	}

	canceled := &JobTiming{Job: "j2", Experiment: "fig19", Tenant: "default", Outcome: "canceled", QueuedAt: base}
	canceled.Finalize()
	if canceled.TotalSeconds != 0 || canceled.QueueWaitSeconds != 0 {
		t.Errorf("canceled-in-queue job should have zero durations: %+v", canceled)
	}
	if got, want := len(strings.Split(canceled.CSVRow(), ",")), len(strings.Split(TimingCSVHeader, ",")); got != want {
		t.Fatalf("canceled row field count = %d, want %d", got, want)
	}
}

// TestJobTimingCSVGoldenBytes pins the exact CSV encoding — timestamp
// format, duration precision, empty fields for unreached stages — so the
// row format cannot drift without a deliberate golden update.
func TestJobTimingCSVGoldenBytes(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	done := &JobTiming{
		Job: "job-9", Experiment: "fig19", Tenant: "default", Shard: "2/4", Outcome: "done",
		QueuedAt:   base,
		StartedAt:  base.Add(2 * time.Second),
		PlannedAt:  base.Add(3 * time.Second),
		ComputedAt: base.Add(5 * time.Second),
		RenderedAt: base.Add(6 * time.Second),
		GridPoints: 12, CacheHits: 5, ComputedPoints: 7, DedupeJoins: 1,
	}
	done.Finalize()
	want := "job-9,fig19,default,2/4,done," +
		"2026-01-02T03:04:05Z,2026-01-02T03:04:07Z,2026-01-02T03:04:08Z,2026-01-02T03:04:10Z,2026-01-02T03:04:11Z," +
		"2.000000,1.000000,2.000000,1.000000,6.000000," +
		"12,5,7,1"
	if got := done.CSVRow(); got != want {
		t.Errorf("done row:\n got %s\nwant %s", got, want)
	}

	// Canceled while queued: only the queued stamp exists; every other
	// timestamp renders empty and every duration exactly zero.
	queued := &JobTiming{Job: "job-10", Experiment: "fig19", Tenant: "acme", Outcome: "canceled", QueuedAt: base}
	queued.Finalize()
	wantQueued := "job-10,fig19,acme,,canceled," +
		"2026-01-02T03:04:05Z,,,,," +
		"0.000000,0.000000,0.000000,0.000000,0.000000," +
		"0,0,0,0"
	if got := queued.CSVRow(); got != wantQueued {
		t.Errorf("canceled-queued row:\n got %s\nwant %s", got, wantQueued)
	}
}

// TestRegistryConcurrentResolution is the race regression for lazy
// instrument creation: goroutines resolving the same name+labels
// concurrently (the concurrent-job-worker pattern in internal/service)
// must all get the one instrument, with scrapes interleaved throughout.
// Run under -race this also proves registration and exposition are
// data-race-free.
func TestRegistryConcurrentResolution(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("conc_total", "c", "k", "v").Inc()
				r.Gauge("conc_inflight", "g").Set(int64(i))
				r.Histogram("conc_seconds", "h", []float64{1}, "k", "v").Observe(0.5)
				r.GaugeFunc("conc_depth", "d", func() float64 { return 1 })
				r.WritePrometheus(io.Discard)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "c", "k", "v").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d (lost increments mean duplicate instruments)", got, goroutines*perG)
	}
	if got := r.Histogram("conc_seconds", "h", []float64{1}, "k", "v").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestHistogramBuckets pins the le boundary semantics: v == bound counts
// in that bucket, v above every bound only in +Inf.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", []float64{1, 2})
	h.Observe(1) // le="1"
	h.Observe(2) // le="2"
	h.Observe(3) // +Inf
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, line := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="2"} 2`,
		`h_bucket{le="+Inf"} 3`,
		`h_sum 6`,
		`h_count 3`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("missing %q in:\n%s", line, b.String())
		}
	}
}

// Package trace is the span core for the serving tier: a dependency-free,
// wall-clock-free building block in the internal/obs style. The package
// never reads the clock — callers stamp time.Time values on spans at
// job/shard boundaries and trace only does timestamp arithmetic — so the
// deterministic replay invariant (see docs/DETERMINISM.md) is untouched.
//
// IDs are derived, not random: the trace ID hashes the job's spec
// fingerprint plus its submit sequence number, and span IDs hash the
// trace ID, a recorder scope, and a per-recorder counter. Replaying the
// same submission sequence against a fresh daemon therefore yields
// byte-identical trace output, which is what lets tests pin traces the
// same way they pin figure bytes.
package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
	"time"
)

// Span is one timed operation. Start and End are stamped by the caller;
// a zero End marks a span that never completed (the exporters render it
// with zero duration). Attrs carry small string key/values — node and
// shard get special treatment in the Chrome exporter (process and thread
// lanes); everything else is passed through as args.
type Span struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end,omitzero"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Context returns the span's identity for propagation to children.
func (s Span) Context() SpanContext {
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// SpanContext identifies a position in a trace: the trace a caller is
// part of and the span that should become the callee's parent. It
// crosses process boundaries as a W3C-style traceparent header.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context carries a well-formed, non-zero
// trace and span ID (32 and 16 lowercase hex digits respectively).
func (c SpanContext) Valid() bool {
	return isHexID(c.TraceID, 32) && isHexID(c.SpanID, 16)
}

// Traceparent renders the context in W3C trace-context form:
// 00-<trace-id>-<span-id>-01.
func (c SpanContext) Traceparent() string {
	return "00-" + c.TraceID + "-" + c.SpanID + "-01"
}

// ParseTraceparent parses a W3C traceparent header. Only version 00 is
// accepted; the trailing flags byte is validated for shape but ignored.
func ParseTraceparent(s string) (SpanContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[3]) != 2 {
		return SpanContext{}, false
	}
	if !isHexLower(parts[3]) {
		return SpanContext{}, false
	}
	c := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

func isHexID(s string, n int) bool {
	if len(s) != n || !isHexLower(s) {
		return false
	}
	// An all-zero ID is the W3C "absent" sentinel, not a valid identity.
	return strings.Trim(s, "0") != ""
}

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}

// DeriveTraceID derives a 32-hex-digit trace ID from a stable identity
// fingerprint (the service uses the job's spec key — the same identity
// the dedupe and cache layers key on) and a submit sequence number. The
// derivation is versioned so the format can evolve without silently
// changing existing golden traces.
func DeriveTraceID(fingerprint string, seq int) string {
	sum := sha256.Sum256([]byte("create-trace|v1|" + fingerprint + "|" + strconv.Itoa(seq)))
	return hex.EncodeToString(sum[:16])
}

// deriveSpanID derives a 16-hex-digit span ID from the trace ID, the
// recorder's scope, and the recorder-local counter value. Scopes keep
// counters from colliding when several processes contribute spans to one
// trace (each worker job and the coordinator use distinct scopes).
func deriveSpanID(traceID, scope string, n int) string {
	sum := sha256.Sum256([]byte("create-span|v1|" + traceID + "|" + scope + "|" + strconv.Itoa(n)))
	return hex.EncodeToString(sum[:8])
}

// Sort orders spans canonically: by start stamp, then name, then span
// ID. Exporters sort before writing so output bytes do not depend on the
// scheduling order in which concurrent shards recorded their spans.
func Sort(spans []Span) {
	sortSpans(spans)
}

package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestDeriveTraceIDDeterministic(t *testing.T) {
	a := DeriveTraceID("fig19|4|2026||default", 1)
	b := DeriveTraceID("fig19|4|2026||default", 1)
	if a != b {
		t.Fatalf("same inputs produced different trace IDs: %s vs %s", a, b)
	}
	if len(a) != 32 || !isHexLower(a) {
		t.Fatalf("trace ID %q is not 32 lowercase hex digits", a)
	}
	if DeriveTraceID("fig19|4|2026||default", 2) == a {
		t.Fatal("different submit sequence produced the same trace ID")
	}
	if DeriveTraceID("fig16|4|2026||default", 1) == a {
		t.Fatal("different fingerprint produced the same trace ID")
	}
}

func TestSpanIDsDeterministicPerScope(t *testing.T) {
	id := DeriveTraceID("fp", 1)
	a := NewRecorder(id, "job-1")
	b := NewRecorder(id, "job-1")
	for i := 0; i < 3; i++ {
		sa, sb := a.NewSpanID(), b.NewSpanID()
		if sa != sb {
			t.Fatalf("allocation %d: same scope diverged: %s vs %s", i, sa, sb)
		}
		if len(sa) != 16 || !isHexLower(sa) {
			t.Fatalf("span ID %q is not 16 lowercase hex digits", sa)
		}
	}
	c := NewRecorder(id, "coordinator")
	if got := c.NewSpanID(); got == NewRecorder(id, "job-1").NewSpanID() {
		t.Fatalf("distinct scopes minted the same first span ID %s", got)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: DeriveTraceID("fp", 7), SpanID: deriveSpanID(DeriveTraceID("fp", 7), "s", 1)}
	if !sc.Valid() {
		t.Fatal("derived context should be valid")
	}
	hdr := sc.Traceparent()
	got, ok := ParseTraceparent(hdr)
	if !ok || got != sc {
		t.Fatalf("round trip failed: %q -> %+v ok=%v", hdr, got, ok)
	}
	bad := []string{
		"",
		"00-abc-def-01",
		"01-" + sc.TraceID + "-" + sc.SpanID + "-01",              // unknown version
		"00-" + strings.Repeat("0", 32) + "-" + sc.SpanID + "-01", // zero trace id
		"00-" + sc.TraceID + "-" + strings.Repeat("0", 16) + "-01",
		"00-" + strings.ToUpper(sc.TraceID) + "-" + sc.SpanID + "-01",
		"00-" + sc.TraceID + "-" + sc.SpanID, // missing flags
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
}

func TestRecorderBounded(t *testing.T) {
	r := NewRecorder(DeriveTraceID("fp", 1), "s")
	r.SetMaxSpans(2)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		r.Record(Span{TraceID: r.TraceID(), SpanID: r.NewSpanID(), Name: "s", Start: base})
	}
	if got := len(r.Spans()); got != 2 {
		t.Fatalf("bounded recorder kept %d spans, want 2", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	if n := r.Import([]Span{{Name: "x"}}); n != 0 {
		t.Fatalf("Import into full recorder accepted %d spans", n)
	}
}

func testSpans() []Span {
	id := DeriveTraceID("fig19|4|2026||default", 1)
	rec := NewRecorder(id, "job-1")
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	root := Span{TraceID: id, SpanID: rec.NewSpanID(), Name: "job fig19",
		Start: base, End: base.Add(4 * time.Second),
		Attrs: map[string]string{"node": "serve", "job": "job-1"}}
	queue := Span{TraceID: id, SpanID: rec.NewSpanID(), ParentID: root.SpanID,
		Name: "queue", Start: base, End: base.Add(time.Second),
		Attrs: map[string]string{"node": "serve"}}
	shard := Span{TraceID: id, SpanID: rec.NewSpanID(), ParentID: root.SpanID,
		Name: "compute", Start: base.Add(time.Second), End: base.Add(3 * time.Second),
		Attrs: map[string]string{"node": "worker-a", "shard": "1/4"}}
	open := Span{TraceID: id, SpanID: rec.NewSpanID(), ParentID: root.SpanID,
		Name: "render", Start: base.Add(3 * time.Second), // zero End: never finished
		Attrs: map[string]string{"node": "serve"}}
	return []Span{shard, open, root, queue} // deliberately unsorted
}

func TestNDJSONRoundTripAndOrder(t *testing.T) {
	spans := testSpans()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	back, err := ReadNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 {
		t.Fatalf("read back %d spans, want 4", len(back))
	}
	// Canonical order: by start stamp, ties by name.
	wantNames := []string{"job fig19", "queue", "compute", "render"}
	for i, s := range back {
		if s.Name != wantNames[i] {
			t.Fatalf("span %d is %q, want %q (canonical order)", i, s.Name, wantNames[i])
		}
	}
	if !back[0].Start.Equal(spans[2].Start) || !back[0].End.Equal(spans[2].End) {
		t.Fatal("timestamps did not survive the round trip")
	}
	if back[3].End.IsZero() != true {
		t.Fatal("zero End should survive the round trip as zero")
	}
	// Byte stability: same spans, same bytes.
	var again bytes.Buffer
	if err := WriteNDJSON(&again, testSpans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("WriteNDJSON is not byte-stable for equal input")
	}
}

func TestWriteChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, testSpans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			Dur  *int64            `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var meta, complete int
	pids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name == "process_name" {
				pids[ev.Args["name"]] = ev.PID
			}
		case "X":
			complete++
			if ev.Args["trace_id"] == "" || ev.Args["span_id"] == "" {
				t.Fatalf("X event %q missing trace/span id args", ev.Name)
			}
			if ev.Dur == nil {
				t.Fatalf("X event %q missing dur", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 4 {
		t.Fatalf("got %d X events, want 4", complete)
	}
	// Two nodes -> two process lanes; the shard span gets its own thread
	// lane named after the selector.
	if len(pids) != 2 || pids["serve"] == 0 || pids["worker-a"] == 0 {
		t.Fatalf("process lanes = %v, want serve and worker-a", pids)
	}
	foundShardLane := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "shard 1/4" {
			foundShardLane = true
			if ev.PID != pids["worker-a"] || ev.TID != 2 {
				t.Fatalf("shard lane on pid=%d tid=%d, want pid=%d tid=2", ev.PID, ev.TID, pids["worker-a"])
			}
		}
	}
	if !foundShardLane {
		t.Fatal("no thread_name metadata for shard 1/4")
	}
	// Relative microsecond timestamps: earliest span at ts=0.
	minTS := int64(1 << 62)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.TS < minTS {
			minTS = ev.TS
		}
	}
	if minTS != 0 {
		t.Fatalf("earliest X event at ts=%d, want 0", minTS)
	}
	// Byte stability.
	var again bytes.Buffer
	if err := WriteChrome(&again, testSpans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("WriteChrome is not byte-stable for equal input")
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if evs, ok := doc["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("empty trace should still carry an empty traceEvents array, got %v", doc["traceEvents"])
	}
}

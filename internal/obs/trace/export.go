package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

func sortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		if spans[i].Name != spans[j].Name {
			return spans[i].Name < spans[j].Name
		}
		return spans[i].SpanID < spans[j].SpanID
	})
}

// WriteNDJSON writes one span per line in canonical order. Field order
// inside each line is fixed by the Span struct, so equal span slices
// produce equal bytes (map-valued Attrs marshal with sorted keys).
func WriteNDJSON(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sortSpans(sorted)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range sorted {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses spans written by WriteNDJSON (blank lines are
// skipped). It is what the coordinator uses to pull worker-side spans
// back over HTTP.
func ReadNDJSON(r io.Reader) ([]Span, error) {
	var spans []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return spans, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode span %d: %w", len(spans), err)
		}
		spans = append(spans, s)
	}
}

// chromeEvent is one Chrome trace-event; "X" complete events carry a
// duration, "M" metadata events name the process/thread lanes.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`
	Dur  *int64            `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChrome writes the spans as a Chrome trace-event JSON document
// loadable in Perfetto or chrome://tracing. Each distinct "node" attr
// becomes a process lane (the coordinator rewrites worker spans' node to
// the worker label before stitching); the leading integer of a "shard"
// attr ("k/n") becomes the thread lane within that process. Timestamps
// are microseconds relative to the earliest span start, so traces from a
// fake clock render identically regardless of the epoch used.
func WriteChrome(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sortSpans(sorted)

	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	if len(sorted) == 0 {
		return writeJSON(w, doc)
	}

	epoch := sorted[0].Start
	for _, s := range sorted[1:] {
		if s.Start.Before(epoch) {
			epoch = s.Start
		}
	}

	// Process lanes: one per distinct node, numbered in first-seen order
	// over the canonically sorted spans (stable across runs).
	pids := map[string]int{}
	var nodes []string
	type lane struct {
		pid, tid int
	}
	threadNames := map[lane]string{}
	for _, s := range sorted {
		node := s.Attrs["node"]
		if node == "" {
			node = "create"
		}
		if _, ok := pids[node]; !ok {
			pids[node] = len(nodes) + 1
			nodes = append(nodes, node)
		}
		if tid := shardLane(s.Attrs["shard"]); tid != 0 {
			threadNames[lane{pids[node], tid}] = "shard " + s.Attrs["shard"]
		}
	}

	for i, node := range nodes {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: i + 1,
			Args: map[string]string{"name": node},
		})
	}
	// Thread-name metadata in deterministic lane order.
	lanes := make([]lane, 0, len(threadNames))
	for l := range threadNames {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].pid != lanes[j].pid {
			return lanes[i].pid < lanes[j].pid
		}
		return lanes[i].tid < lanes[j].tid
	})
	for _, l := range lanes {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: l.pid, TID: l.tid,
			Args: map[string]string{"name": threadNames[l]},
		})
	}

	for _, s := range sorted {
		node := s.Attrs["node"]
		if node == "" {
			node = "create"
		}
		args := map[string]string{
			"trace_id": s.TraceID,
			"span_id":  s.SpanID,
		}
		if s.ParentID != "" {
			args["parent_id"] = s.ParentID
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		var dur int64
		if !s.End.IsZero() && s.End.After(s.Start) {
			dur = s.End.Sub(s.Start).Microseconds()
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name, Cat: "create", Ph: "X",
			TS: s.Start.Sub(epoch).Microseconds(), Dur: &dur,
			PID: pids[node], TID: shardLane(s.Attrs["shard"]),
			Args: args,
		})
	}
	return writeJSON(w, doc)
}

// shardLane maps a "k/n" shard selector to thread lane k+1 (lane 0 is
// the process's unsharded work).
func shardLane(sel string) int {
	k, _, ok := strings.Cut(sel, "/")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(k)
	if err != nil || n < 0 {
		return 0
	}
	return n + 1
}

func writeJSON(w io.Writer, doc chromeTrace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

package trace

import "sync"

// DefaultMaxSpans bounds a recorder's buffer. A fleet-wide trace for a
// large sharded run is a few hundred spans; the cap exists so a
// misbehaving caller cannot grow trace memory without bound. Overflow is
// counted, not silently ignored.
const DefaultMaxSpans = 4096

// Recorder accumulates the spans of one trace. It hands out
// deterministic span IDs from a per-recorder counter and keeps recorded
// spans in a bounded buffer. Safe for concurrent use — parallel shards
// record into one recorder.
type Recorder struct {
	mu      sync.Mutex
	traceID string
	scope   string
	next    int
	max     int
	spans   []Span
	dropped int
}

// NewRecorder returns a recorder for one trace. The scope seeds span-ID
// derivation; two recorders contributing to the same trace (for example
// a worker job and the coordinator) must use distinct scopes so their
// counters cannot mint colliding IDs.
func NewRecorder(traceID, scope string) *Recorder {
	return &Recorder{traceID: traceID, scope: scope, max: DefaultMaxSpans}
}

// TraceID returns the trace this recorder contributes to.
func (r *Recorder) TraceID() string {
	return r.traceID
}

// SetMaxSpans overrides the span-buffer bound; n <= 0 is ignored.
func (r *Recorder) SetMaxSpans(n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.max = n
}

// NewSpanID mints the next deterministic span ID for this trace. IDs
// depend only on (trace ID, scope, allocation order), so a replayed run
// that allocates in the same order gets the same IDs.
func (r *Recorder) NewSpanID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	return deriveSpanID(r.traceID, r.scope, r.next)
}

// Record appends one finished (or abandoned, zero-End) span. Returns
// false when the buffer is full; the span is dropped and counted.
func (r *Recorder) Record(s Span) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) >= r.max {
		r.dropped++
		return false
	}
	r.spans = append(r.spans, s)
	return true
}

// Import appends spans recorded elsewhere (worker-side spans pulled back
// by the coordinator) and returns how many were accepted. Spans whose ID
// is already present are skipped — a shard retried after a lost
// acknowledgement can coalesce onto a live worker job and be pulled
// twice — and the buffer bound applies as in Record.
func (r *Recorder) Import(spans []Span) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.spans))
	for _, s := range r.spans {
		seen[s.SpanID] = true
	}
	added := 0
	for _, s := range spans {
		if s.SpanID != "" && seen[s.SpanID] {
			continue
		}
		if len(r.spans) >= r.max {
			r.dropped++
			continue
		}
		r.spans = append(r.spans, s)
		seen[s.SpanID] = true
		added++
	}
	return added
}

// Spans returns a canonically sorted copy of everything recorded so far.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	sortSpans(out)
	return out
}

// Dropped reports how many spans the buffer bound rejected.
func (r *Recorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Package obs is the observability core for the serving tier: atomic
// counters, gauges, and fixed-bucket histograms collected in a Registry
// that renders Prometheus text exposition format (version 0.0.4), plus
// per-job flat timing records (JobTiming) in the style of stage-timestamped
// CSV rows.
//
// The package is dependency-free and wall-clock-free: it never reads the
// clock itself — callers stamp time.Time values and pass durations in as
// float64 seconds — so it needs no walltime annotation and can never leak
// nondeterminism into figure bytes. Instrumentation call sites live at
// job and grid-point boundaries in internal/service, internal/dispatch,
// and internal/cache, never inside the episode hot path.
//
// Instruments are memoized by (family name, label set): calling
// Registry.Counter twice with the same name and labels returns the same
// *Counter, so packages can resolve handles at call sites without
// plumbing. CounterFunc and GaugeFunc register read-only views over
// externally owned state (e.g. the cache store's hit counters), which is
// how /v1/cache/stats and /metrics are kept on one code path.
//
// docs/METRICS.md catalogues every family the stack registers here;
// docs/ARCHITECTURE.md places the package in the tier diagram.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use, so structs can embed Counters directly and register views
// over them with Registry.CounterFunc.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotonic; negative n is a programmer error
// and panics rather than silently corrupting rates.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: negative Counter.Add")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down (queue depths,
// resident entries, healthy workers). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations. Bucket
// upper bounds are set at registration and immutable; observations and
// the running sum are lock-free.
type Histogram struct {
	bounds []float64      // sorted upper bounds; bucket i counts v <= bounds[i]
	counts []atomic.Int64 // len(bounds)+1; the last bucket is +Inf
	sum    atomic.Uint64  // float64 bits, updated by CAS
	count  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefaultStageBuckets are the bucket bounds used for job-stage latency
// histograms: sub-millisecond plan/render stages up through multi-minute
// cold sweeps.
var DefaultStageBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120}

// DefaultHTTPBuckets are the bucket bounds for HTTP request-duration
// histograms: most routes answer in microseconds from memory, while
// submit-and-follow event streams and cache transfers run to seconds.
var DefaultHTTPBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30, 120}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument inside a family. Exactly one of the
// value fields is set, matching the family's kind.
type series struct {
	labels    string // canonical rendered label block, "" for unlabeled
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	counterFn func() int64
	gaugeFn   func() float64
}

// family groups all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64
	series map[string]*series
}

// Registry collects instrument families and renders them in Prometheus
// text exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter for name and the given label pairs,
// creating it on first use. labels alternate key, value. Registering the
// same name with a different kind panics.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesForLocked(name, help, counterKind, nil, sig)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for name and the given label pairs, creating it
// on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesForLocked(name, help, gaugeKind, nil, sig)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns the histogram for name and the given label pairs,
// creating it on first use with the given bucket upper bounds (which must
// be sorted ascending and are shared by every series in the family; a
// mismatch on a later call panics).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound: " + name)
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be sorted ascending: " + name)
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesForLocked(name, help, histogramKind, bounds, sig)
	if s.hist == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		s.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	}
	return s.hist
}

// CounterFunc registers a read-only counter view computed by fn at scrape
// time — for exposing counters owned elsewhere (e.g. cache store hits)
// without double-counting. Re-registering the same name+labels replaces
// the function.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...string) {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesForLocked(name, help, counterKind, nil, sig)
	s.counterFn = fn
}

// GaugeFunc registers a read-only gauge view computed by fn at scrape
// time (queue depth, resident cache points, disk bytes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.seriesForLocked(name, help, gaugeKind, nil, sig)
	s.gaugeFn = fn
}

// seriesForLocked resolves (or creates) the series for name+sig, enforcing
// kind, help, and bound consistency across the family. Caller holds r.mu
// and installs the instrument (or scrape function) before releasing it, so
// concurrent resolutions of the same name+labels always observe one fully
// initialized instrument.
func (r *Registry) seriesForLocked(name, help string, k kind, bounds []float64, sig string) *series {
	if !validMetricName(name) {
		panic("obs: invalid metric name: " + name)
	}
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
	} else {
		if f.kind != k {
			panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, f.kind, k))
		}
		if k == histogramKind && !equalBounds(f.bounds, bounds) {
			panic("obs: histogram bounds differ across series of " + name)
		}
	}
	s := f.series[sig]
	if s == nil {
		s = &series{labels: sig}
		f.series[sig] = s
	}
	return s
}

// WritePrometheus renders every family in text exposition format 0.0.4,
// families sorted by name and series by label signature, so output is
// deterministic and golden-testable.
func (r *Registry) WritePrometheus(w io.Writer) {
	// Snapshot families and series (by value — every series field is
	// written only under r.mu, and instruments are internally atomic)
	// under the lock, then render without it so scrape functions run
	// outside the registry's critical section.
	type famSnap struct {
		name   string
		help   string
		kind   kind
		series []series
	}
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.families))
	for name, f := range r.families {
		fs := famSnap{name: name, help: f.help, kind: f.kind, series: make([]series, 0, len(f.series))}
		for _, s := range f.series {
			fs.series = append(fs.series, *s)
		}
		fams = append(fams, fs)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for i := range f.series {
			renderSeries(&b, f.name, f.kind, &f.series[i])
		}
	}
	io.WriteString(w, b.String())
}

// renderSeries appends one series' sample lines.
func renderSeries(b *strings.Builder, name string, k kind, s *series) {
	switch k {
	case counterKind:
		v := int64(0)
		switch {
		case s.counterFn != nil:
			v = s.counterFn()
		case s.counter != nil:
			v = s.counter.Value()
		}
		fmt.Fprintf(b, "%s%s %d\n", name, s.labels, v)
	case gaugeKind:
		if s.gaugeFn != nil {
			fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatFloat(s.gaugeFn()))
			return
		}
		v := int64(0)
		if s.gauge != nil {
			v = s.gauge.Value()
		}
		fmt.Fprintf(b, "%s%s %d\n", name, s.labels, v)
	case histogramKind:
		h := s.hist
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", name, spliceLabel(s.labels, "le", formatFloat(bound)), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, spliceLabel(s.labels, "le", "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatFloat(h.Sum()))
		// _count is rendered from the cumulative bucket total rather than
		// h.Count(): the per-bucket and total counters are independent
		// atomics, so a concurrent Observe between the two loads could
		// otherwise break the le="+Inf" == _count invariant within one
		// scrape.
		fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, cum)
	}
}

// Handler returns an http.Handler serving the registry in text exposition
// format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// labelSignature canonicalizes label pairs into a rendered label block:
// pairs sorted by key, values escaped. Returns "" for no labels. Odd pair
// counts, invalid names, and duplicate keys panic — these are call-site
// typos, not runtime conditions.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: odd label list; want alternating key, value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validLabelName(labels[i]) {
			panic("obs: invalid label name: " + labels[i])
		}
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			if pairs[i-1].k == p.k {
				panic("obs: duplicate label key: " + p.k)
			}
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// spliceLabel inserts one extra label pair (already escaped by the
// caller's construction — le values are numeric) into a rendered block.
func spliceLabel(block, key, value string) string {
	extra := key + `="` + value + `"`
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// validLabelName reports whether name matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// equalBounds reports whether two bound slices are identical.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

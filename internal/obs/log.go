package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemons' structured logger from the -log-format /
// -log-level flag values: "text" (the slog key=value form, the default)
// or "json" (one object per line, ready for log shippers), at "debug",
// "info", "warn" or "error". Unknown values are an error so a typo fails
// startup instead of silently discarding logs. The handlers stamp record
// times themselves; like the rest of obs, this file adds no clock reads
// of its own.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

package obs

import (
	"strconv"
	"strings"
	"time"
)

// JobTiming is the flat per-job timing record: one CSV-friendly row per
// job capturing the queued→planned→computing→rendered stage timestamps,
// grid-point accounting (computed vs cache-hit), shard id, and tenant
// label. The service stamps the timestamps at stage boundaries (the only
// places the serving tier reads the wall clock) and calls Finalize once
// the job reaches a terminal state; obs itself never touches the clock.
//
// Timestamps are absolute wall-clock times; the derived *Seconds fields
// are the stage durations a latency dashboard wants without doing
// timestamp arithmetic. For a job that never ran (canceled while queued,
// or failed during planning) the unreached stage timestamps are zero and
// their durations 0.
type JobTiming struct {
	Job        string `json:"job"`
	Experiment string `json:"experiment"`
	Tenant     string `json:"tenant"`
	Shard      string `json:"shard,omitempty"`
	Outcome    string `json:"outcome"` // done | failed | canceled

	QueuedAt   time.Time `json:"queued_at"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	PlannedAt  time.Time `json:"planned_at,omitzero"`
	ComputedAt time.Time `json:"computed_at,omitzero"`
	RenderedAt time.Time `json:"rendered_at,omitzero"`

	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	PlanSeconds      float64 `json:"plan_seconds"`
	ComputeSeconds   float64 `json:"compute_seconds"`
	RenderSeconds    float64 `json:"render_seconds"`
	TotalSeconds     float64 `json:"total_seconds"`

	GridPoints     int `json:"grid_points"`
	CacheHits      int `json:"cache_hits"`
	ComputedPoints int `json:"computed_points"`
	DedupeJoins    int `json:"dedupe_joins"`
}

// Finalize derives the stage durations from whichever timestamps were
// stamped. It is pure timestamp arithmetic (time.Time.Sub), so it may run
// anywhere.
func (t *JobTiming) Finalize() {
	if !t.StartedAt.IsZero() {
		t.QueueWaitSeconds = t.StartedAt.Sub(t.QueuedAt).Seconds()
	}
	if !t.PlannedAt.IsZero() {
		t.PlanSeconds = t.PlannedAt.Sub(t.StartedAt).Seconds()
	}
	if !t.ComputedAt.IsZero() {
		t.ComputeSeconds = t.ComputedAt.Sub(t.PlannedAt).Seconds()
	}
	if !t.RenderedAt.IsZero() {
		t.RenderSeconds = t.RenderedAt.Sub(t.ComputedAt).Seconds()
	}
	end := t.RenderedAt
	for _, ts := range []time.Time{t.ComputedAt, t.PlannedAt, t.StartedAt} {
		if end.IsZero() {
			end = ts
		}
	}
	if !end.IsZero() {
		t.TotalSeconds = end.Sub(t.QueuedAt).Seconds()
	}
}

// TimingCSVHeader is the header row matching JobTiming.CSVRow.
const TimingCSVHeader = "job,experiment,tenant,shard,outcome," +
	"queued_at,started_at,planned_at,computed_at,rendered_at," +
	"queue_wait_seconds,plan_seconds,compute_seconds,render_seconds,total_seconds," +
	"grid_points,cache_hits,computed_points,dedupe_joins"

// CSVRow renders the record as one comma-separated row in header order.
// Timestamps are RFC 3339 with nanoseconds (empty for unreached stages);
// durations use fixed six-decimal seconds so rows column-align.
func (t *JobTiming) CSVRow() string {
	stamp := func(ts time.Time) string {
		if ts.IsZero() {
			return ""
		}
		return ts.UTC().Format(time.RFC3339Nano)
	}
	dur := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	fields := []string{
		csvEscape(t.Job), csvEscape(t.Experiment), csvEscape(t.Tenant), csvEscape(t.Shard), t.Outcome,
		stamp(t.QueuedAt), stamp(t.StartedAt), stamp(t.PlannedAt), stamp(t.ComputedAt), stamp(t.RenderedAt),
		dur(t.QueueWaitSeconds), dur(t.PlanSeconds), dur(t.ComputeSeconds), dur(t.RenderSeconds), dur(t.TotalSeconds),
		strconv.Itoa(t.GridPoints), strconv.Itoa(t.CacheHits), strconv.Itoa(t.ComputedPoints), strconv.Itoa(t.DedupeJoins),
	}
	return strings.Join(fields, ",")
}

// csvEscape quotes a field if it contains a comma, quote, or newline.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

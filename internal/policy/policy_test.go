package policy

import (
	"math/rand"
	"testing"
)

func TestSelectedPoliciesValid(t *testing.T) {
	for _, m := range Selected {
		if !m.Valid() {
			t.Fatalf("policy %s structurally invalid", m.Name)
		}
	}
}

func TestVoltageMonotoneInEntropy(t *testing.T) {
	for _, m := range Selected {
		prev := 1.0
		for h := 0.0; h <= 4.2; h += 0.1 {
			v := m.Voltage(h)
			if v > prev {
				t.Fatalf("policy %s: voltage rises with entropy at %v", m.Name, h)
			}
			prev = v
		}
	}
}

func TestPolicyOrderingConservativeToAggressive(t *testing.T) {
	// A is the most conservative, F the most aggressive, at every entropy.
	for h := 0.0; h <= 4.2; h += 0.5 {
		if PolicyA.Voltage(h) < PolicyF.Voltage(h) {
			t.Fatalf("A should never go below F (h=%v)", h)
		}
	}
	if PolicyF.Voltage(4) >= PolicyA.Voltage(4) {
		t.Fatal("F should be strictly more aggressive at high entropy")
	}
}

func TestCandidatesValidAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cands := Candidates(100, rng)
	if len(cands) != 100 {
		t.Fatalf("got %d candidates", len(cands))
	}
	for _, m := range cands {
		if !m.Valid() {
			t.Fatalf("invalid candidate %s: %+v", m.Name, m.Levels)
		}
	}
}

func TestParetoFront(t *testing.T) {
	scored := []Scored{
		{Mapping: Mapping{Name: "good"}, SuccessRate: 0.95, EffectiveVoltage: 0.80},
		{Mapping: Mapping{Name: "dominated"}, SuccessRate: 0.90, EffectiveVoltage: 0.85},
		{Mapping: Mapping{Name: "safe"}, SuccessRate: 0.99, EffectiveVoltage: 0.88},
		{Mapping: Mapping{Name: "cheap"}, SuccessRate: 0.70, EffectiveVoltage: 0.70},
	}
	front := ParetoFront(scored)
	names := map[string]bool{}
	for _, s := range front {
		names[s.Mapping.Name] = true
	}
	if names["dominated"] {
		t.Fatal("dominated point survived")
	}
	if !names["good"] || !names["safe"] || !names["cheap"] {
		t.Fatalf("frontier missing points: %v", names)
	}
	// Sorted by effective voltage ascending.
	for i := 1; i < len(front); i++ {
		if front[i].EffectiveVoltage < front[i-1].EffectiveVoltage {
			t.Fatal("frontier not sorted")
		}
	}
}

func TestBestSelection(t *testing.T) {
	scored := []Scored{
		{Mapping: Mapping{Name: "safe"}, SuccessRate: 0.99, EffectiveVoltage: 0.88},
		{Mapping: Mapping{Name: "optimal"}, SuccessRate: 0.97, EffectiveVoltage: 0.80},
		{Mapping: Mapping{Name: "risky"}, SuccessRate: 0.60, EffectiveVoltage: 0.66},
	}
	got, ok := Best(scored, 0.03)
	if !ok || got.Mapping.Name != "optimal" {
		t.Fatalf("Best picked %v", got.Mapping.Name)
	}
	if _, ok := Best(nil, 0.03); ok {
		t.Fatal("empty input should report no pick")
	}
}

func TestMappingValidRejectsBadStructures(t *testing.T) {
	bad := []Mapping{
		{Name: "empty"},
		{Name: "no-zero", Levels: []Level{{0.5, 0.9}}},
		{Name: "rising-v", Levels: []Level{{0, 0.8}, {1, 0.85}}},
		{Name: "out-of-range", Levels: []Level{{0, 0.95}}},
		{Name: "non-ascending", Levels: []Level{{0, 0.9}, {0, 0.85}}},
	}
	for _, m := range bad {
		if m.Valid() {
			t.Fatalf("%s should be invalid", m.Name)
		}
	}
}

// Package policy implements the entropy-to-voltage mappings of
// autonomy-adaptive voltage scaling (Sec. 5.3, Fig. 21, Appendix C): step
// functions that assign lower supply voltages to higher-entropy
// (non-critical) steps, a candidate generator for the 100-candidate search
// the paper runs, and Pareto selection over (success rate, effective
// voltage).
package policy

import (
	"fmt"
	"math/rand"
	"sort"
)

// Level is one step of a mapping: entropies at or above MinEntropy (and
// below the next level's threshold) run at Voltage.
type Level struct {
	MinEntropy float64
	Voltage    float64
}

// Mapping is a monotone non-increasing entropy-to-voltage step function:
// low entropy (critical steps) keeps robust voltage margins, high entropy
// (exploratory steps) drops the supply for efficiency.
type Mapping struct {
	Name   string
	Levels []Level // ascending MinEntropy, non-increasing Voltage
}

// Voltage returns the supply for a predicted entropy.
func (m Mapping) Voltage(entropy float64) float64 {
	v := m.Levels[0].Voltage
	for _, l := range m.Levels {
		if entropy >= l.MinEntropy {
			v = l.Voltage
		}
	}
	return v
}

// Func adapts the mapping to the agent's VSPolicy hook.
func (m Mapping) Func() func(float64) float64 {
	return func(h float64) float64 { return m.Voltage(h) }
}

// VoltageLevels returns the distinct supply voltages the mapping can emit,
// in level order — the declaration agent.Config.VSLevels expects, letting
// the episode engine precompute its corruption table once per config
// instead of lazily per episode.
func (m Mapping) VoltageLevels() []float64 { return m.VoltageLevelsWith(nil) }

// VoltageLevelsWith returns the distinct values of transform applied to the
// mapping's level voltages (nil means identity), in level order — the exact
// image of a VSPolicy built as transform(m.Voltage(h)). Call sites that
// wrap a mapping (supply ceilings, LDO quantization) derive both the
// closure and its VSLevels declaration from one transform, so the two
// cannot drift apart.
func (m Mapping) VoltageLevelsWith(transform func(float64) float64) []float64 {
	out := make([]float64, 0, len(m.Levels))
	for _, l := range m.Levels {
		v := l.Voltage
		if transform != nil {
			v = transform(v)
		}
		dup := false
		for _, have := range out {
			if have == v {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// Valid checks the structural invariants: thresholds ascend from 0,
// voltages are within the LDO range and non-increasing.
func (m Mapping) Valid() bool {
	if len(m.Levels) == 0 || m.Levels[0].MinEntropy != 0 {
		return false
	}
	for i, l := range m.Levels {
		if l.Voltage < 0.60 || l.Voltage > 0.90 {
			return false
		}
		if i > 0 {
			if l.MinEntropy <= m.Levels[i-1].MinEntropy {
				return false
			}
			if l.Voltage > m.Levels[i-1].Voltage {
				return false
			}
		}
	}
	return true
}

// The six selected policies of Fig. 21 (Appendix C), ordered from
// conservative (A) to aggressive (F). Policy C is the paper's default: it
// advances the reliability-efficiency Pareto frontier, cutting effective
// voltage ~7 % at iso-success (Sec. 6.5).
var (
	PolicyA = Mapping{Name: "A", Levels: []Level{{0, 0.90}, {1.0, 0.88}, {2.0, 0.86}, {3.0, 0.84}}}
	PolicyB = Mapping{Name: "B", Levels: []Level{{0, 0.89}, {1.0, 0.86}, {2.0, 0.83}, {3.0, 0.80}}}
	PolicyC = Mapping{Name: "C", Levels: []Level{{0, 0.88}, {0.8, 0.84}, {2.0, 0.80}, {3.0, 0.76}}}
	PolicyD = Mapping{Name: "D", Levels: []Level{{0, 0.86}, {0.8, 0.82}, {2.0, 0.78}, {3.0, 0.73}}}
	PolicyE = Mapping{Name: "E", Levels: []Level{{0, 0.85}, {0.8, 0.80}, {2.0, 0.75}, {3.0, 0.70}}}
	PolicyF = Mapping{Name: "F", Levels: []Level{{0, 0.84}, {0.5, 0.78}, {2.0, 0.72}, {3.0, 0.66}}}

	// Selected is the Fig. 21 set.
	Selected = []Mapping{PolicyA, PolicyB, PolicyC, PolicyD, PolicyE, PolicyF}
	// Default is Policy C (Sec. 6.5).
	Default = PolicyC
)

// Candidates generates n random but structurally valid mappings — the
// search space the paper's 100-candidate exploration draws from. Entropy
// thresholds span [0, 4.2) (the 63-action logit range); voltages are LDO
// levels.
func Candidates(n int, rng *rand.Rand) []Mapping {
	out := make([]Mapping, 0, n)
	for i := 0; i < n; i++ {
		levels := 3 + rng.Intn(3)
		thresholds := make([]float64, levels)
		thresholds[0] = 0
		for j := 1; j < levels; j++ {
			thresholds[j] = rng.Float64() * 4.2
		}
		sort.Float64s(thresholds)
		ok := true
		for j := 1; j < levels; j++ {
			if thresholds[j]-thresholds[j-1] < 0.2 {
				ok = false
				break
			}
		}
		if !ok {
			i--
			continue
		}
		v := 0.84 + rng.Float64()*0.06
		m := Mapping{Name: fmt.Sprintf("cand%03d", i)}
		for j := 0; j < levels; j++ {
			m.Levels = append(m.Levels, Level{MinEntropy: thresholds[j], Voltage: quantize(v)})
			v -= 0.01 + rng.Float64()*0.06
			if v < 0.60 {
				v = 0.60
			}
		}
		out = append(out, m)
	}
	return out
}

func quantize(v float64) float64 {
	q := 0.60 + 0.01*float64(int((v-0.60)/0.01+0.5))
	if q > 0.90 {
		q = 0.90
	}
	if q < 0.60 {
		q = 0.60
	}
	return q
}

// Scored pairs a mapping with its evaluation.
type Scored struct {
	Mapping     Mapping
	SuccessRate float64
	// EffectiveVoltage is the constant-equivalent supply (lower = more
	// efficient).
	EffectiveVoltage float64
}

// ParetoFront filters scored mappings to the reliability-efficiency
// frontier: mappings not dominated by any other (higher success AND lower
// effective voltage), sorted by effective voltage ascending.
func ParetoFront(scored []Scored) []Scored {
	var front []Scored
	for i, s := range scored {
		dominated := false
		for j, o := range scored {
			if i == j {
				continue
			}
			if o.SuccessRate >= s.SuccessRate && o.EffectiveVoltage < s.EffectiveVoltage ||
				o.SuccessRate > s.SuccessRate && o.EffectiveVoltage <= s.EffectiveVoltage {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, s)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		return front[i].EffectiveVoltage < front[j].EffectiveVoltage
	})
	return front
}

// Best picks the frontier mapping with the lowest effective voltage among
// those whose success rate is within tolerance of the best achieved — how
// Policy C is selected in Sec. 6.5.
func Best(scored []Scored, tolerance float64) (Scored, bool) {
	if len(scored) == 0 {
		return Scored{}, false
	}
	bestSuccess := 0.0
	for _, s := range scored {
		if s.SuccessRate > bestSuccess {
			bestSuccess = s.SuccessRate
		}
	}
	var pick *Scored
	for i := range scored {
		s := &scored[i]
		if s.SuccessRate >= bestSuccess-tolerance {
			if pick == nil || s.EffectiveVoltage < pick.EffectiveVoltage {
				pick = s
			}
		}
	}
	if pick == nil {
		return Scored{}, false
	}
	return *pick, true
}

package hadamard

import (
	"math"
	"math/rand"
	"testing"

	"github.com/embodiedai/create/internal/tensor"
)

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 64, 1024} {
		if !IsPowerOfTwo(n) {
			t.Fatalf("%d should be a power of two", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 96} {
		if IsPowerOfTwo(n) {
			t.Fatalf("%d should not be a power of two", n)
		}
	}
}

func TestMatrixOrthonormal(t *testing.T) {
	for _, n := range []int{2, 8, 64} {
		h := Matrix(n)
		prod := tensor.MatMul(h, h.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := float32(0)
				if i == j {
					want = 1
				}
				if d := math.Abs(float64(prod.At(i, j) - want)); d > 1e-5 {
					t.Fatalf("n=%d: H*H^T[%d][%d]=%v, want %v", n, i, j, prod.At(i, j), want)
				}
			}
		}
	}
}

func TestMatrixPreservesL2Norm(t *testing.T) {
	h := Matrix(64)
	rng := rand.New(rand.NewSource(1))
	x := tensor.NewMat(1, 64)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*10 - 5
	}
	y := tensor.MatMul(x, h)
	if d := math.Abs(tensor.L2Norm(x.Data) - tensor.L2Norm(y.Data)); d > 1e-3 {
		t.Fatalf("rotation changed L2 norm by %v", d)
	}
}

func TestRotationDispersesOutliers(t *testing.T) {
	// A vector with one huge coordinate must come out with a much smaller
	// absolute maximum after rotation — the outlier-dispersal property WR
	// relies on.
	h := Matrix(64)
	x := tensor.NewMat(1, 64)
	x.Data[7] = 100
	y := tensor.MatMul(x, h)
	if mx := float64(tensor.AbsMax(y.Data)); mx > 100/math.Sqrt(64)+1e-3 {
		t.Fatalf("outlier not dispersed: absmax %v", mx)
	}
}

func TestRotateLeftRightInverse(t *testing.T) {
	// (x*H) * (H^T*W) == x*W
	h := Matrix(16)
	rng := rand.New(rand.NewSource(2))
	x := tensor.NewMat(3, 16)
	w := tensor.NewMat(16, 5)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	for i := range w.Data {
		w.Data[i] = rng.Float32()
	}
	want := tensor.MatMul(x, w)
	got := tensor.MatMul(tensor.MatMul(x, h), RotateLeft(h, w))
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("rotation not function preserving: %v", d)
	}
}

func TestMatrixPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two size")
		}
	}()
	Matrix(12)
}

// Package hadamard builds the orthonormal Hadamard rotations used by
// weight-rotation-enhanced planning (paper Sec. 5.2). H is defined
// recursively via the Kronecker product
//
//	H2 = 1/sqrt(2) * [[1, 1], [1, -1]],   H(2^k) = H2 (x) H(2^(k-1))
//
// and satisfies H * H^T = I, so it preserves L2 norms (hence commutes with
// unit-gain RMSNorm) while spreading any single large coordinate across all
// dimensions — exactly the property that disperses LLM activation outliers.
package hadamard

import (
	"fmt"
	"math"

	"github.com/embodiedai/create/internal/tensor"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// Matrix returns the orthonormal n x n Hadamard matrix (n a power of two).
func Matrix(n int) *tensor.Mat {
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("hadamard: size %d is not a power of two", n))
	}
	h := tensor.NewMat(n, n)
	// Sylvester construction: entry (i, j) = (-1)^popcount(i AND j).
	norm := float32(1 / math.Sqrt(float64(n)))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if popcount(uint(i&j))%2 == 0 {
				h.Set(i, j, norm)
			} else {
				h.Set(i, j, -norm)
			}
		}
	}
	return h
}

func popcount(x uint) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// RotateRight returns W*H: applied to residual-stream *producers* (O, Down,
// the embedding), whose outputs land in the rotated stream.
func RotateRight(w, h *tensor.Mat) *tensor.Mat { return tensor.MatMul(w, h) }

// RotateLeft returns H^T*W: applied to residual-stream *consumers* (Q, K, V,
// Gate, Up, the output head), which must undo the rotation on their inputs.
func RotateLeft(h, w *tensor.Mat) *tensor.Mat { return tensor.MatMul(h.Transpose(), w) }

package world

import "sort"

// Recipe describes one crafting output.
type Recipe struct {
	Out        Item
	OutCount   int
	In         map[Item]int
	NeedsTable bool
}

// Recipes is the crafting book, ordered from raw to refined.
var Recipes = map[Item]Recipe{
	Planks:        {Out: Planks, OutCount: 4, In: map[Item]int{Log: 1}},
	Sticks:        {Out: Sticks, OutCount: 4, In: map[Item]int{Planks: 2}},
	CraftingTable: {Out: CraftingTable, OutCount: 1, In: map[Item]int{Planks: 4}},
	WoodenPickaxe: {Out: WoodenPickaxe, OutCount: 1, In: map[Item]int{Planks: 3, Sticks: 2}, NeedsTable: true},
	Furnace:       {Out: Furnace, OutCount: 1, In: map[Item]int{Cobblestone: 8}, NeedsTable: true},
	StonePickaxe:  {Out: StonePickaxe, OutCount: 1, In: map[Item]int{Cobblestone: 3, Sticks: 2}, NeedsTable: true},
	IronSword:     {Out: IronSword, OutCount: 1, In: map[Item]int{IronIngot: 2, Sticks: 1}, NeedsTable: true},
}

// SmeltRecipe describes one furnace output. Each smelt consumes the input
// plus fuel and takes SmeltHits consecutive Smelt actions at the furnace —
// a fragile execution chain like mining.
type SmeltRecipe struct {
	Out Item
	In  Item
}

// SmeltRecipes is the furnace book.
var SmeltRecipes = map[Item]SmeltRecipe{
	Charcoal:      {Out: Charcoal, In: Log},
	IronIngot:     {Out: IronIngot, In: RawIron},
	CookedChicken: {Out: CookedChicken, In: RawChicken},
}

// fuelItems are consumed one unit per smelt, tried in order.
var fuelItems = []Item{Planks, Coal, Charcoal, Log}

// CanCraft reports whether the recipe's inputs are in the inventory and the
// table requirement is met.
func (w *World) CanCraft(r Recipe) bool {
	if r.NeedsTable && !w.adjacentBlock(TableBlock) {
		return false
	}
	for item, n := range r.In {
		if w.Inventory[item] < n {
			return false
		}
	}
	return true
}

func (w *World) adjacentBlock(b Block) bool {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if w.At(w.AgentX+dx, w.AgentY+dy) == b {
				return true
			}
		}
	}
	return false
}

// Step advances the world by one tick with the agent performing action a in
// pursuit of goal (the item the current subtask wants; crafting and smelting
// resolve against the goal's prerequisite chain).
//
//create:zeroalloc
func (w *World) Step(a Action, goal Item) {
	w.Steps++
	mv, in := a.Parts()

	attackedChain := false
	switch in {
	case IntAttack:
		attackedChain = w.doAttack()
	case IntUse:
		w.doUse()
	case IntCraft:
		w.doCraft(goal)
	case IntPlace:
		w.doPlace()
	case IntSmelt:
		attackedChain = w.doSmelt(goal)
	}

	if !attackedChain {
		// Interrupted chains decay: mining progress bleeds off and the
		// smelting sequence resets — the mechanism behind stage-specific
		// fragility (Fig. 7(b)).
		if w.mineHits > 0 {
			w.mineHits -= MineDecay
			if w.mineHits < 0 {
				w.mineHits = 0
			}
		}
		w.smeltHits = 0
	}

	if dx, dy := mv.Delta(); dx != 0 || dy != 0 {
		nx, ny := w.AgentX+dx, w.AgentY+dy
		if !w.At(nx, ny).Solid() && !w.mobAt(nx, ny) {
			w.AgentX, w.AgentY = nx, ny
		}
	}

	w.stepMobs()
}

func (w *World) mobAt(x, y int) bool {
	for i := range w.Mobs {
		if w.Mobs[i].Alive && w.Mobs[i].X == x && w.Mobs[i].Y == y {
			return true
		}
	}
	return false
}

// doAttack progresses a mining chain or strikes an adjacent mob. It returns
// whether a mining chain advanced (so decay is skipped).
//
//create:zeroalloc
func (w *World) doAttack() bool {
	// Mobs take priority if adjacent (hunting).
	if i := w.adjacentMob(); i >= 0 {
		m := &w.Mobs[i]
		m.HP--
		if m.HP <= 0 {
			m.Alive = false
			if m.Kind == Chicken {
				w.Inventory[RawChicken]++
			}
		}
		return false
	}
	x, y, b := w.adjacentMineable()
	if b == Air {
		return false
	}
	hits, drop, tool := mineSpec(b)
	if tool != NoItem && w.Inventory[tool] == 0 {
		return false // wrong tool: no progress, like Minecraft
	}
	if x != w.mineX || y != w.mineY {
		w.mineX, w.mineY, w.mineHits = x, y, 0
	}
	w.mineHits++
	if w.mineHits >= hits {
		w.set(x, y, Air)
		w.Inventory[drop]++
		w.mineX, w.mineY, w.mineHits = -1, -1, 0
	}
	return true
}

// mineSpec returns the chain length, drop, and required tool for a block.
func mineSpec(b Block) (hits int, drop Item, tool Item) {
	switch b {
	case Tree:
		return TreeHits, Log, NoItem
	case Stone:
		return StoneHits, Cobblestone, WoodenPickaxe
	case CoalOre:
		return CoalHits, Coal, WoodenPickaxe
	case IronOre:
		return IronHits, RawIron, StonePickaxe
	default:
		return 0, NoItem, NoItem
	}
}

// adjacentMineable returns the first adjacent mineable block, preferring the
// block already under attack so chains continue naturally.
func (w *World) adjacentMineable() (int, int, Block) {
	if w.mineX >= 0 && w.AdjacentTo(w.mineX, w.mineY) {
		if b := w.At(w.mineX, w.mineY); mineable(b) {
			return w.mineX, w.mineY, b
		}
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			x, y := w.AgentX+dx, w.AgentY+dy
			if b := w.At(x, y); mineable(b) {
				return x, y, b
			}
		}
	}
	return 0, 0, Air
}

func mineable(b Block) bool {
	switch b {
	case Tree, Stone, CoalOre, IronOre:
		return true
	default:
		return false
	}
}

// doUse shears an adjacent sheep or harvests adjacent grass for seeds
// (stochastic interactions, Fig. 6's error-tolerant subtask family).
//
//create:zeroalloc
func (w *World) doUse() {
	if i := w.adjacentMobOfKind(Sheep, true); i >= 0 {
		w.Mobs[i].Sheared = true
		w.Inventory[Wool]++
		return
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			x, y := w.AgentX+dx, w.AgentY+dy
			if w.At(x, y) == Grass {
				w.set(x, y, Air)
				if w.rng.Float64() < 0.5 { //create:rng-reviewed 50% seed drop: exactly one draw per grass block broken
					w.Inventory[WheatSeeds]++
				}
				return
			}
		}
	}
}

func (w *World) adjacentMob() int {
	for i := range w.Mobs {
		m := &w.Mobs[i]
		if m.Alive && chebyshev(w.AgentX, w.AgentY, m.X, m.Y) == 1 {
			return i
		}
	}
	return -1
}

func (w *World) adjacentMobOfKind(kind MobKind, needUnsheared bool) int {
	for i := range w.Mobs {
		m := &w.Mobs[i]
		if m.Alive && m.Kind == kind && chebyshev(w.AgentX, w.AgentY, m.X, m.Y) == 1 {
			if needUnsheared && m.Sheared {
				continue
			}
			return i
		}
	}
	return -1
}

// doCraft crafts the deepest missing prerequisite of the goal item.
//
//create:zeroalloc
func (w *World) doCraft(goal Item) {
	r, ok := nextCraft(w, goal)
	if !ok {
		return
	}
	for item, n := range r.In {
		w.Inventory[item] -= n
	}
	w.Inventory[r.Out] += r.OutCount
}

// nextCraft walks the goal's prerequisite chain and returns the first recipe
// that is currently craftable and still needed.
func nextCraft(w *World, goal Item) (Recipe, bool) {
	r, ok := Recipes[goal]
	if !ok {
		return Recipe{}, false
	}
	if w.Inventory[goal] > 0 && goal != Planks && goal != Sticks {
		return Recipe{}, false // already have the tool
	}
	// Depth-first: craft missing inputs before the goal itself. Iterate in
	// item order, NOT map order — which missing input we descend into picks
	// the next craft, and randomized map iteration here made whole episodes
	// irreproducible for a fixed seed (caught by the parallel-engine
	// determinism tests).
	for _, item := range inputOrder(r) {
		if w.Inventory[item] < r.In[item] {
			if sub, ok := nextCraft(w, item); ok {
				return sub, true
			}
			return Recipe{}, false // missing raw material; crafting can't help
		}
	}
	if !w.CanCraft(r) {
		return Recipe{}, false
	}
	return r, true
}

// inputOrders caches each recipe's input items in ascending Item order:
// the recipe book is static, and nextCraft sits in the per-step hot path.
var inputOrders = func() map[Item][]Item {
	m := make(map[Item][]Item, len(Recipes))
	for out, r := range Recipes {
		items := make([]Item, 0, len(r.In))
		for item := range r.In {
			items = append(items, item)
		}
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		m[out] = items
	}
	return m
}()

// inputOrder returns a recipe's input items in ascending Item order, giving
// map-backed recipes a deterministic traversal.
func inputOrder(r Recipe) []Item { return inputOrders[r.Out] }

// doPlace places a crafting table or furnace from the inventory into an
// adjacent free cell (table first — the order tasks need them).
//
//create:zeroalloc
func (w *World) doPlace() {
	place := func(item Item, block Block) bool { //create:alloc-ok closure is called directly and never escapes doPlace; the runtime gate (TestStepLoopZeroAllocs) confirms it stays on the stack
		if w.Inventory[item] == 0 || w.adjacentBlock(block) {
			return false
		}
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				x, y := w.AgentX+dx, w.AgentY+dy
				if w.At(x, y) == Air && !w.mobAt(x, y) {
					w.set(x, y, block)
					w.Inventory[item]--
					if block == TableBlock {
						w.TableX, w.TableY = x, y
					} else {
						w.FurnaceX, w.FurnaceY = x, y
					}
					return true
				}
			}
		}
		return false
	}
	if place(CraftingTable, TableBlock) {
		return
	}
	place(Furnace, FurnaceBlock)
}

// doSmelt progresses a smelting chain at an adjacent furnace. Returns
// whether the chain advanced.
//
//create:zeroalloc
func (w *World) doSmelt(goal Item) bool {
	r, ok := SmeltRecipes[goal]
	if !ok || !w.adjacentBlock(FurnaceBlock) || w.Inventory[r.In] == 0 {
		return false
	}
	if !w.hasFuel() {
		return false
	}
	if w.smeltGoal != goal {
		w.smeltGoal, w.smeltHits = goal, 0
	}
	w.smeltHits++
	if w.smeltHits >= SmeltHits {
		w.Inventory[r.In]--
		w.consumeFuel()
		w.Inventory[r.Out]++
		w.smeltHits = 0
	}
	return true
}

func (w *World) hasFuel() bool {
	for _, f := range fuelItems {
		if w.Inventory[f] > 0 {
			return true
		}
	}
	return false
}

func (w *World) consumeFuel() {
	for _, f := range fuelItems {
		if w.Inventory[f] > 0 {
			w.Inventory[f]--
			return
		}
	}
}

// stepMobs moves animals: chickens flee an adjacent agent, everything else
// drifts randomly every other tick.
//
//create:zeroalloc
func (w *World) stepMobs() {
	for i := range w.Mobs {
		m := &w.Mobs[i]
		if !m.Alive {
			continue
		}
		var dx, dy int
		d := chebyshev(w.AgentX, w.AgentY, m.X, m.Y)
		switch {
		case m.Kind == Chicken && d <= 2 && w.rng.Float64() < 0.6: //create:rng-reviewed chicken flee check draws once only when adjacent; the conditioning is part of the fixed mob stream
			dx, dy = sign(m.X-w.AgentX), sign(m.Y-w.AgentY)
		case w.Steps%2 == 0:
			dx, dy = w.rng.Intn(3)-1, w.rng.Intn(3)-1 //create:rng-reviewed random mob walk: two draws on even world steps, argument order fixed by the assignment
		}
		nx, ny := m.X+dx, m.Y+dy
		if (dx != 0 || dy != 0) && !w.At(nx, ny).Solid() && !w.mobAt(nx, ny) &&
			(nx != w.AgentX || ny != w.AgentY) {
			m.X, m.Y = nx, ny
		}
	}
}

package world

import (
	"math/rand"

	"github.com/embodiedai/create/internal/tensor"
)

// Phase classifies a step's criticality (Sec. 4.2, Fig. 7): exploration
// tolerates almost any action, approach tolerates detours, execution demands
// precise sequential actions.
type Phase int

// Step phases.
const (
	PhaseExplore Phase = iota
	PhaseApproach
	PhaseExecute
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseExplore:
		return "explore"
	case PhaseApproach:
		return "approach"
	default:
		return "execute"
	}
}

// Decision is the expert policy's output for one step: a full action-logit
// vector (what a trained controller's policy head would emit), the desired
// action, and the phase. Logit sharpness tracks phase criticality, which is
// exactly the signal the entropy predictor learns to anticipate (Sec. 5.3).
//
// Logits aliases the issuing Expert's reusable scratch buffer and is valid
// only until that Expert's next Decide call. Every step consumer (entropy,
// sampling, tracing) reads it within the step; a caller that needs the
// vector longer must copy it.
type Decision struct {
	Logits  []float32
	Desired Action
	Phase   Phase
	// Goal is the item the world's craft/smelt resolution should target.
	Goal Item
}

// Entropy returns the Shannon entropy of the decision's action distribution.
func (d Decision) Entropy() float64 { return tensor.EntropyOfLogits(d.Logits) }

// Expert is the scripted controller policy: it grounds a subtask into
// per-step action logits. It stands in for the trained STEVE-1 controller,
// whose behavioural structure (directed when a target is engaged, diffuse
// when searching) is what the resilience dynamics depend on.
type Expert struct {
	rng         *rand.Rand
	exploreMove Move
	exploreLeft int
	// logits is the reusable buffer backing every returned Decision — the
	// episode loop runs up to 12,000 Decide calls, and a fresh NumActions
	// slice per call was the single largest steady-state allocation.
	logits []float32
}

// NewExpert returns an expert with its own deterministic stream.
func NewExpert(seed int64) *Expert {
	return &Expert{
		rng:         rand.New(rand.NewSource(seed)),
		exploreMove: MoveN,
		logits:      make([]float32, NumActions),
	}
}

// Reseed rewinds the expert to the exact state NewExpert(seed) constructs,
// reusing its allocations. rand's source re-initializes fully on Seed, so a
// reseeded expert emits the same decision stream as a fresh one — which is
// what lets the trial engine keep one Expert per worker (see agent's
// per-worker scratch).
func (e *Expert) Reseed(seed int64) {
	e.rng.Seed(seed) //create:rng-reviewed rewinds the expert stream to NewExpert(seed)'s exact state for per-worker reuse
	e.exploreMove = MoveN
	e.exploreLeft = 0
}

// zeroLogits clears and returns the scratch logit buffer.
//
//create:zeroalloc
func (e *Expert) zeroLogits() []float32 {
	l := e.logits
	for i := range l {
		l[i] = 0
	}
	return l
}

// Logit sharpness per phase, tuned so execution entropy sits well below 1
// nat, approach around 1.5-2.5, exploration around 3-4 (Fig. 10's range with
// a 63-action space).
const (
	logitExecute    = 9.0
	logitStochastic = 5.0
	logitApproach   = 3.2
	logitRelated    = 2.2
	logitExplore    = 3.0
	logitMove       = 2.0
	logitFloor      = 0.3
)

// Decide produces the expert's decision for the current world state and
// subtask.
//
//create:zeroalloc
func (e *Expert) Decide(w *World, st Subtask) Decision {
	switch st.Kind {
	case MineLog:
		return e.mine(w, st, Tree)
	case MineStone:
		return e.mine(w, st, Stone)
	case MineCoal:
		return e.mine(w, st, CoalOre)
	case MineIron:
		return e.mine(w, st, IronOre)
	case CraftItem:
		return e.craft(w, st)
	case PlaceTable:
		return e.place(w, st, CraftingTable)
	case PlaceFurnace:
		return e.place(w, st, Furnace)
	case SmeltItem:
		return e.smelt(w, st)
	case HuntChicken:
		return e.hunt(w, st)
	case ShearWool:
		return e.shear(w, st)
	case CollectSeeds:
		return e.gather(w, st)
	default: // Nonsense and anything unknown: the controller flounders.
		return e.explore(w, st)
	}
}

//create:zeroalloc
func (e *Expert) mine(w *World, st Subtask, kind Block) Decision {
	// Required tool missing (a corrupted or mis-ordered plan): nothing
	// useful to do but wander.
	if _, _, tool := mineSpec(kind); tool != NoItem && w.Count(tool) == 0 {
		return e.explore(w, st)
	}
	if x, y, ok := w.NearestBlock(kind); ok {
		if w.AdjacentTo(x, y) {
			return e.execute(MakeAction(MoveNone, IntAttack), st, true)
		}
		return e.approach(w, st, x, y)
	}
	return e.explore(w, st)
}

//create:zeroalloc
func (e *Expert) craft(w *World, st Subtask) Decision {
	r, ok := Recipes[st.Item]
	if !ok {
		return e.explore(w, st)
	}
	if _, craftable := nextCraft(w, st.Item); craftable {
		return e.execute(MakeAction(MoveNone, IntCraft), st, true)
	}
	// The chain is blocked on the table: walk to one if visible.
	if r.NeedsTable && !w.adjacentBlock(TableBlock) {
		if x, y, ok := w.NearestBlock(TableBlock); ok {
			return e.approach(w, st, x, y)
		}
	}
	// Missing raw materials: a well-formed plan acquired them in earlier
	// subtasks, so this is the corrupted-plan dead end.
	return e.explore(w, st)
}

//create:zeroalloc
func (e *Expert) place(w *World, st Subtask, item Item) Decision {
	if w.Count(item) > 0 {
		return e.execute(MakeAction(MoveNone, IntPlace), st, true)
	}
	return e.explore(w, st)
}

//create:zeroalloc
func (e *Expert) smelt(w *World, st Subtask) Decision {
	r, ok := SmeltRecipes[st.Item]
	if !ok || w.Count(r.In) == 0 || !w.hasFuel() {
		return e.explore(w, st)
	}
	if w.adjacentBlock(FurnaceBlock) {
		return e.execute(MakeAction(MoveNone, IntSmelt), st, true)
	}
	if x, y, ok := w.NearestBlock(FurnaceBlock); ok {
		return e.approach(w, st, x, y)
	}
	return e.explore(w, st)
}

//create:zeroalloc
func (e *Expert) hunt(w *World, st Subtask) Decision {
	if i, ok := w.NearestMob(Chicken, false); ok {
		m := w.Mobs[i]
		if chebyshev(w.AgentX, w.AgentY, m.X, m.Y) == 1 {
			return e.execute(MakeAction(MoveNone, IntAttack), st, false)
		}
		return e.approach(w, st, m.X, m.Y)
	}
	return e.explore(w, st)
}

//create:zeroalloc
func (e *Expert) shear(w *World, st Subtask) Decision {
	if i, ok := w.NearestMob(Sheep, true); ok {
		m := w.Mobs[i]
		if chebyshev(w.AgentX, w.AgentY, m.X, m.Y) == 1 {
			return e.execute(MakeAction(MoveNone, IntUse), st, false)
		}
		return e.approach(w, st, m.X, m.Y)
	}
	return e.explore(w, st)
}

//create:zeroalloc
func (e *Expert) gather(w *World, st Subtask) Decision {
	if x, y, ok := w.NearestBlock(Grass); ok {
		if w.AdjacentTo(x, y) || (x == w.AgentX && y == w.AgentY) {
			return e.execute(MakeAction(MoveNone, IntUse), st, false)
		}
		return e.approach(w, st, x, y)
	}
	return e.explore(w, st)
}

// execute builds a sharply peaked decision. Deterministic chains get the
// sharpest logits; stochastic interactions (hunting, shearing) are
// moderately peaked, reflecting their tolerance (Fig. 6).
//
//create:zeroalloc
func (e *Expert) execute(desired Action, st Subtask, deterministic bool) Decision {
	peak := logitExecute
	if !deterministic {
		peak = logitStochastic
	}
	logits := e.zeroLogits()
	logits[desired] = float32(peak)
	return Decision{Logits: logits, Desired: desired, Phase: PhaseExecute, Goal: st.Item}
}

// approach builds a medium-entropy decision: the distance-reducing moves are
// all plausible, the best one preferred.
//
//create:zeroalloc
func (e *Expert) approach(w *World, st Subtask, tx, ty int) Decision {
	logits := e.zeroLogits()
	d0 := chebyshev(w.AgentX, w.AgentY, tx, ty)
	best := MoveNone
	bestD := d0
	for m := MoveN; m < NumMoves; m++ {
		dx, dy := m.Delta()
		nx, ny := w.AgentX+dx, w.AgentY+dy
		if w.At(nx, ny).Solid() {
			continue
		}
		nd := chebyshev(nx, ny, tx, ty)
		if nd < d0 {
			logits[MakeAction(m, IntNone)] = logitRelated
		}
		if nd < bestD {
			bestD, best = nd, m
		}
	}
	desired := MakeAction(best, IntNone)
	logits[desired] = logitApproach
	return Decision{Logits: logits, Desired: desired, Phase: PhaseApproach, Goal: st.Item}
}

// explore builds a high-entropy decision: a persistent drift direction with
// every movement plausible — the searching behaviour of Fig. 7(a).
//
//create:zeroalloc
func (e *Expert) explore(w *World, st Subtask) Decision {
	e.exploreLeft--
	if e.exploreLeft <= 0 || e.blocked(w, e.exploreMove) {
		e.exploreMove = Move(1 + e.rng.Intn(int(NumMoves)-1)) //create:rng-reviewed drift refresh consumes two draws (direction, duration) only when a leg expires or is blocked
		e.exploreLeft = 8 + e.rng.Intn(10)
	}
	logits := e.logits
	for i := range logits {
		logits[i] = logitFloor
	}
	for m := MoveN; m < NumMoves; m++ {
		if !e.blocked(w, m) {
			logits[MakeAction(m, IntNone)] = logitMove
		}
	}
	desired := MakeAction(e.exploreMove, IntNone)
	logits[desired] = logitExplore
	return Decision{Logits: logits, Desired: desired, Phase: PhaseExplore, Goal: st.Item}
}

//create:zeroalloc
func (e *Expert) blocked(w *World, m Move) bool {
	dx, dy := m.Delta()
	return w.At(w.AgentX+dx, w.AgentY+dy).Solid()
}

// Sample draws an action from the decision's softmax distribution — the
// controller "samples actions based on its output action logits" (Sec. 2.1).
// The episode hot loop does not call this (it would re-derive the softmax);
// it samples via tensor.SampleFromProbs on the step's shared probability
// vector, which consumes the identical single rng.Float64().
func (d Decision) Sample(rng *rand.Rand) Action {
	return Action(tensor.SampleFromProbs(tensor.Softmax(d.Logits), rng))
}

package world

import "fmt"

// SubtaskKind is one of the basic subtask families the planner decomposes
// tasks into.
type SubtaskKind int

// Subtask families. Nonsense is what a fault-corrupted plan step degenerates
// to: an instruction the controller cannot ground, burning steps until the
// replan limit (Sec. 4.1: the faulty planner produces "irrelevant or
// nonsense text that hinders the controller").
const (
	MineLog SubtaskKind = iota
	MineStone
	MineCoal
	MineIron
	CraftItem
	PlaceTable
	PlaceFurnace
	SmeltItem
	HuntChicken
	ShearWool
	CollectSeeds
	Nonsense
	numSubtaskKinds
)

// Subtask is one plan step: acquire Count of Item via the Kind's mechanic.
type Subtask struct {
	Kind  SubtaskKind
	Item  Item
	Count int
}

// String renders the subtask like a plan line.
func (s Subtask) String() string {
	switch s.Kind {
	case PlaceTable:
		return "place crafting_table"
	case PlaceFurnace:
		return "place furnace"
	case Nonsense:
		return "<corrupted instruction>"
	case CraftItem:
		return fmt.Sprintf("craft %d %s", s.Count, s.Item)
	case SmeltItem:
		return fmt.Sprintf("smelt %d %s", s.Count, s.Item)
	default:
		return fmt.Sprintf("obtain %d %s", s.Count, s.Item)
	}
}

// Done reports whether the subtask's goal condition holds in w.
func (s Subtask) Done(w *World) bool {
	switch s.Kind {
	case PlaceTable:
		return w.adjacentBlock(TableBlock)
	case PlaceFurnace:
		return w.adjacentBlock(FurnaceBlock)
	case Nonsense:
		return false // never completes; only the replan limit ends it
	default:
		return w.Count(s.Item) >= s.Count
	}
}

// Deterministic reports whether the subtask's execution phase is a fragile
// sequential chain (mining, smelting, crafting) as opposed to a stochastic
// interaction (hunting, shearing, gathering) — the structural property
// behind the subtask-resilience diversity of Fig. 6.
func (s Subtask) Deterministic() bool {
	switch s.Kind {
	case HuntChicken, ShearWool, CollectSeeds, Nonsense:
		return false
	default:
		return true
	}
}

// TaskName identifies one of the paper's evaluation tasks (Table 10,
// abbreviated teletype names).
type TaskName string

// The nine Minecraft tasks of Table 10.
const (
	TaskWooden   TaskName = "wooden"
	TaskStone    TaskName = "stone"
	TaskCharcoal TaskName = "charcoal"
	TaskChicken  TaskName = "chicken"
	TaskCoal     TaskName = "coal"
	TaskIron     TaskName = "iron"
	TaskWool     TaskName = "wool"
	TaskSeed     TaskName = "seed"
	TaskLog      TaskName = "log"
)

// AllTasks lists the evaluation tasks in the paper's order.
var AllTasks = []TaskName{
	TaskWooden, TaskStone, TaskCharcoal, TaskChicken,
	TaskCoal, TaskIron, TaskWool, TaskSeed, TaskLog,
}

// TaskSpec describes a task's goal and environment.
type TaskSpec struct {
	Name  TaskName
	Goal  Item
	Count int
	Biome Biome
}

// Specs maps each task to its goal item and biome (Table 10).
var Specs = map[TaskName]TaskSpec{
	TaskWooden:   {TaskWooden, WoodenPickaxe, 1, Jungle},
	TaskStone:    {TaskStone, StonePickaxe, 1, Plains},
	TaskCharcoal: {TaskCharcoal, Charcoal, 1, Plains},
	TaskChicken:  {TaskChicken, CookedChicken, 1, Plains},
	TaskCoal:     {TaskCoal, Coal, 1, Savanna},
	TaskIron:     {TaskIron, IronSword, 1, Plains},
	TaskWool:     {TaskWool, Wool, 5, Plains},
	TaskSeed:     {TaskSeed, WheatSeeds, 10, Savanna},
	TaskLog:      {TaskLog, Log, 10, ForestBiome},
}

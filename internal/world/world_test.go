package world

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestGenerationDeterministic(t *testing.T) {
	a, b := New(Plains, 5), New(Plains, 5)
	for i := range a.grid {
		if a.grid[i] != b.grid[i] {
			t.Fatal("same seed must generate identical worlds")
		}
	}
	c := New(Plains, 6)
	same := true
	for i := range a.grid {
		if a.grid[i] != c.grid[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestWorldBordersAreBedrock(t *testing.T) {
	w := New(Jungle, 1)
	for i := 0; i < w.Size; i++ {
		if w.At(i, 0) != Bedrock || w.At(0, i) != Bedrock ||
			w.At(i, w.Size-1) != Bedrock || w.At(w.Size-1, i) != Bedrock {
			t.Fatal("border must be bedrock")
		}
	}
	if w.At(-5, 3) != Bedrock || w.At(3, 99) != Bedrock {
		t.Fatal("out of range must read as bedrock")
	}
}

func TestSpawnAreaCleared(t *testing.T) {
	w := New(ForestBiome, 2)
	for dy := -9; dy <= 9; dy++ {
		for dx := -9; dx <= 9; dx++ {
			b := w.At(w.AgentX+dx, w.AgentY+dy)
			if b == Tree || b == Stone || b == CoalOre || b == IronOre {
				t.Fatalf("resource %v inside cleared spawn at (%d,%d)", b, dx, dy)
			}
		}
	}
}

func TestMovementRespectsSolidity(t *testing.T) {
	w := New(Plains, 3)
	// Surround agent with stone except east.
	for _, d := range [][2]int{{0, -1}, {0, 1}, {-1, 0}, {1, -1}, {-1, -1}, {-1, 1}, {1, 1}} {
		w.set(w.AgentX+d[0], w.AgentY+d[1], Stone)
	}
	x, y := w.AgentX, w.AgentY
	w.Step(MakeAction(MoveN, IntNone), NoItem)
	if w.AgentX != x || w.AgentY != y {
		t.Fatal("moved into solid block")
	}
	w.Step(MakeAction(MoveE, IntNone), NoItem)
	if w.AgentX != x+1 {
		t.Fatal("failed to move into open cell")
	}
}

func TestMiningChainAndDecay(t *testing.T) {
	w := New(Plains, 4)
	w.Mobs = nil // animals would soak up attacks
	w.set(w.AgentX+1, w.AgentY, Tree)
	attack := MakeAction(MoveNone, IntAttack)
	noop := MakeAction(MoveNone, IntNone)

	for i := 0; i < TreeHits-1; i++ {
		w.Step(attack, Log)
	}
	if _, _, hits := w.MineProgress(); hits != TreeHits-1 {
		t.Fatalf("chain progress %d", hits)
	}
	// Interrupt: progress decays.
	w.Step(noop, Log)
	if _, _, hits := w.MineProgress(); hits != TreeHits-1-MineDecay {
		t.Fatalf("decay wrong: %d", hits)
	}
	// Finish the chain.
	for i := 0; i < MineDecay+1; i++ {
		w.Step(attack, Log)
	}
	if w.Count(Log) != 1 {
		t.Fatalf("log not collected: %d", w.Count(Log))
	}
	if w.At(w.AgentX+1, w.AgentY) != Air {
		t.Fatal("tree not removed")
	}
}

func TestMiningRequiresTool(t *testing.T) {
	w := New(Plains, 5)
	w.Mobs = nil
	w.set(w.AgentX+1, w.AgentY, Stone)
	attack := MakeAction(MoveNone, IntAttack)
	for i := 0; i < StoneHits*2; i++ {
		w.Step(attack, Cobblestone)
	}
	if w.Count(Cobblestone) != 0 {
		t.Fatal("mined stone without a pickaxe")
	}
	w.Inventory[WoodenPickaxe] = 1
	for i := 0; i < StoneHits; i++ {
		w.Step(attack, Cobblestone)
	}
	if w.Count(Cobblestone) != 1 {
		t.Fatal("failed to mine stone with pickaxe")
	}
}

func TestCraftChainToWoodenPickaxe(t *testing.T) {
	w := New(Jungle, 6)
	w.Inventory[Log] = 3
	craft := MakeAction(MoveNone, IntCraft)
	place := MakeAction(MoveNone, IntPlace)

	// Craft the table (auto-chains planks), place it, craft the pickaxe.
	for i := 0; i < 4 && w.Count(CraftingTable) == 0; i++ {
		w.Step(craft, CraftingTable)
	}
	if w.Count(CraftingTable) != 1 {
		t.Fatal("crafting table chain failed")
	}
	w.Step(place, CraftingTable)
	if w.TableX < 0 {
		t.Fatal("table not placed / landmark not recorded")
	}
	for i := 0; i < 6 && w.Count(WoodenPickaxe) == 0; i++ {
		w.Step(craft, WoodenPickaxe)
	}
	if w.Count(WoodenPickaxe) != 1 {
		t.Fatal("wooden pickaxe chain failed")
	}
}

func TestCraftNeedsTableAdjacency(t *testing.T) {
	w := New(Jungle, 7)
	w.Inventory[Planks] = 3
	w.Inventory[Sticks] = 2
	w.Step(MakeAction(MoveNone, IntCraft), WoodenPickaxe)
	if w.Count(WoodenPickaxe) != 0 {
		t.Fatal("crafted a pickaxe without a table")
	}
}

func TestSmeltChain(t *testing.T) {
	w := New(Plains, 8)
	w.set(w.AgentX+1, w.AgentY, FurnaceBlock)
	w.Inventory[Log] = 1
	w.Inventory[Planks] = 1
	smelt := MakeAction(MoveNone, IntSmelt)
	for i := 0; i < SmeltHits; i++ {
		w.Step(smelt, Charcoal)
	}
	if w.Count(Charcoal) != 1 {
		t.Fatalf("smelt failed: %d", w.Count(Charcoal))
	}
	if w.Count(Log) != 0 || w.Count(Planks) != 0 {
		t.Fatal("smelt did not consume input and fuel")
	}
}

func TestSmeltInterruptionResets(t *testing.T) {
	w := New(Plains, 9)
	w.set(w.AgentX+1, w.AgentY, FurnaceBlock)
	w.Inventory[Log] = 1
	w.Inventory[Planks] = 1
	smelt := MakeAction(MoveNone, IntSmelt)
	for i := 0; i < SmeltHits-1; i++ {
		w.Step(smelt, Charcoal)
	}
	w.Step(MakeAction(MoveNone, IntNone), Charcoal) // interruption
	if _, hits := w.SmeltProgress(); hits != 0 {
		t.Fatalf("smelt chain should reset, got %d", hits)
	}
}

func TestHuntChicken(t *testing.T) {
	w := New(Plains, 10)
	w.Mobs = []Mob{{Kind: Chicken, X: w.AgentX + 1, Y: w.AgentY, HP: ChickenHP, Alive: true}}
	attack := MakeAction(MoveNone, IntAttack)
	for i := 0; i < 40 && w.Count(RawChicken) == 0; i++ {
		// Chase: step toward the chicken then strike when adjacent.
		m := w.Mobs[0]
		if chebyshev(w.AgentX, w.AgentY, m.X, m.Y) == 1 {
			w.Step(attack, RawChicken)
		} else {
			w.Step(MakeAction(MoveToward(w.AgentX, w.AgentY, m.X, m.Y), IntNone), RawChicken)
		}
	}
	if w.Count(RawChicken) != 1 {
		t.Fatal("hunt failed")
	}
}

func TestShearAndSeeds(t *testing.T) {
	w := New(Plains, 11)
	w.Mobs = []Mob{{Kind: Sheep, X: w.AgentX + 1, Y: w.AgentY, HP: 8, Alive: true}}
	w.Step(MakeAction(MoveNone, IntUse), Wool)
	if w.Count(Wool) != 1 || !w.Mobs[0].Sheared {
		t.Fatal("shear failed")
	}
	// Sheared sheep yields nothing more.
	w.Step(MakeAction(MoveNone, IntUse), Wool)
	if w.Count(Wool) != 1 {
		t.Fatal("sheared twice")
	}

	w2 := New(Savanna, 12)
	w2.set(w2.AgentX+1, w2.AgentY, Grass)
	got := 0
	for i := 0; i < 50 && got == 0; i++ {
		w2.set(w2.AgentX+1, w2.AgentY, Grass)
		w2.Step(MakeAction(MoveNone, IntUse), WheatSeeds)
		got = w2.Count(WheatSeeds)
	}
	if got == 0 {
		t.Fatal("no seeds after 50 grass harvests (p=0.5 each)")
	}
}

func TestActionEncodingRoundTrip(t *testing.T) {
	f := func(m, i uint8) bool {
		mv := Move(m % uint8(NumMoves))
		in := Interact(i % uint8(NumInteracts))
		gm, gi := MakeAction(mv, in).Parts()
		return gm == mv && gi == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if NumActions != int(NumMoves)*int(NumInteracts) {
		t.Fatal("action space size wrong")
	}
}

func TestExpertPhaseEntropyOrdering(t *testing.T) {
	// The expert's logit entropy must satisfy execute < approach < explore
	// (Fig. 7 / Fig. 10 structure).
	w := New(Plains, 13)
	e := NewExpert(1)
	st := Subtask{Kind: MineLog, Item: Log, Count: 1}

	// Decision.Logits aliases the expert's scratch buffer and is only valid
	// until the next Decide call, so each phase's entropy is taken
	// immediately.
	// Execution: tree adjacent.
	w.set(w.AgentX+1, w.AgentY, Tree)
	exec := e.Decide(w, st)
	if exec.Phase != PhaseExecute {
		t.Fatalf("expected execute, got %v", exec.Phase)
	}
	he := exec.Entropy()
	// Approach: tree visible but not adjacent.
	w.set(w.AgentX+1, w.AgentY, Air)
	w.set(w.AgentX+6, w.AgentY, Tree)
	app := e.Decide(w, st)
	if app.Phase != PhaseApproach {
		t.Fatalf("expected approach, got %v", app.Phase)
	}
	ha := app.Entropy()
	// Exploration: nothing visible.
	w.set(w.AgentX+6, w.AgentY, Air)
	for yy := 0; yy < w.Size; yy++ {
		for xx := 0; xx < w.Size; xx++ {
			if w.At(xx, yy) == Tree {
				w.set(xx, yy, Air)
			}
		}
	}
	exp := e.Decide(w, st)
	if exp.Phase != PhaseExplore {
		t.Fatalf("expected explore, got %v", exp.Phase)
	}
	hx := exp.Entropy()
	if !(he < ha && ha < hx) {
		t.Fatalf("entropy ordering violated: exec %.2f approach %.2f explore %.2f", he, ha, hx)
	}
	if he > 1 {
		t.Fatalf("execute entropy too high: %v", he)
	}
	if hx < 2.5 {
		t.Fatalf("explore entropy too low: %v", hx)
	}
}

func TestExpertNonsenseNeverCompletes(t *testing.T) {
	w := New(Plains, 14)
	e := NewExpert(2)
	st := Subtask{Kind: Nonsense}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		dec := e.Decide(w, st)
		w.Step(dec.Sample(rng), dec.Goal)
	}
	if st.Done(w) {
		t.Fatal("nonsense subtask must never complete")
	}
}

func TestDecisionSampleDistribution(t *testing.T) {
	// Sampling a sharply peaked decision must pick the desired action the
	// vast majority of the time.
	w := New(Plains, 15)
	w.set(w.AgentX+1, w.AgentY, Tree)
	e := NewExpert(3)
	dec := e.Decide(w, Subtask{Kind: MineLog, Item: Log, Count: 1})
	rng := rand.New(rand.NewSource(4))
	hit := 0
	for i := 0; i < 1000; i++ {
		if dec.Sample(rng) == dec.Desired {
			hit++
		}
	}
	if hit < 950 {
		t.Fatalf("critical decision sampled desired only %d/1000", hit)
	}
}

func TestRenderViewShapeAndAgentMarker(t *testing.T) {
	w := New(Plains, 16)
	img := w.RenderView()
	if img.C != 3 || img.H != ViewSize || img.W != ViewSize {
		t.Fatalf("render shape %dx%dx%d", img.C, img.H, img.W)
	}
	// Agent marker at the center block: red channel 1.
	c := ViewSize / 2
	if img.At(0, c, c) != 1 {
		t.Fatal("agent marker missing")
	}
	for _, v := range img.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel out of range: %v", v)
		}
	}
}

func TestNearestBlockVisionLimitAndLandmark(t *testing.T) {
	w := New(Plains, 17)
	// Wipe everything, then place a table landmark far away.
	for yy := 1; yy < w.Size-1; yy++ {
		for xx := 1; xx < w.Size-1; xx++ {
			w.set(xx, yy, Air)
		}
	}
	w.set(2, 2, Tree)
	if _, _, ok := w.NearestBlock(Tree); ok {
		t.Fatal("tree beyond vision range should be invisible")
	}
	w.set(2, 2, TableBlock)
	w.TableX, w.TableY = 2, 2
	if _, _, ok := w.NearestBlock(TableBlock); !ok {
		t.Fatal("placed table landmark must be remembered beyond vision")
	}
}

func TestSubtaskDeterministicClassification(t *testing.T) {
	det := Subtask{Kind: MineLog}
	sto := Subtask{Kind: HuntChicken}
	if !det.Deterministic() || sto.Deterministic() {
		t.Fatal("subtask structural classification wrong")
	}
}

// TestResetMatchesNew: a reset world must be indistinguishable from a fresh
// one — same grid, mobs, landmarks, and (critically) the same RNG stream
// going forward. The trial engine reuses one World per worker on this
// guarantee.
func TestResetMatchesNew(t *testing.T) {
	for _, b := range []Biome{Plains, ForestBiome, Jungle, Savanna} {
		fresh := New(b, 77)
		reused := New(Savanna, 123) // dirty it with a different biome first
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 200; i++ {
			reused.Step(Action(rng.Intn(NumActions)), Log)
		}
		reused.Reset(b, 77)
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("biome %v: Reset state diverged from New", b)
		}
		// Post-reset stream: identical random evolution.
		r2 := rand.New(rand.NewSource(6))
		for i := 0; i < 100; i++ {
			a := Action(r2.Intn(NumActions))
			fresh.Step(a, Log)
			reused.Step(a, Log)
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("biome %v: post-Reset evolution diverged", b)
		}
	}
}

// TestExpertReseedMatchesNew: a reseeded expert must emit the same decision
// stream as a fresh one, including explore-drift state.
func TestExpertReseedMatchesNew(t *testing.T) {
	w1 := New(Plains, 31)
	w2 := New(Plains, 31)
	fresh := NewExpert(9)
	reused := NewExpert(1234)
	// Dirty the reused expert's rng and drift state on an explore-heavy run.
	for i := 0; i < 150; i++ {
		reused.Decide(w2, Subtask{Kind: Nonsense})
	}
	w2.Reset(Plains, 31)
	reused.Reseed(9)
	rng1, rng2 := rand.New(rand.NewSource(2)), rand.New(rand.NewSource(2))
	st := Subtask{Kind: MineLog, Item: Log, Count: 3}
	for i := 0; i < 300; i++ {
		d1 := fresh.Decide(w1, st)
		d2 := reused.Decide(w2, st)
		if d1.Desired != d2.Desired || d1.Phase != d2.Phase {
			t.Fatalf("step %d: decisions diverged (%v/%v vs %v/%v)",
				i, d1.Desired, d1.Phase, d2.Desired, d2.Phase)
		}
		if !reflect.DeepEqual(d1.Logits, d2.Logits) {
			t.Fatalf("step %d: logits diverged", i)
		}
		w1.Step(d1.Sample(rng1), d1.Goal)
		w2.Step(d2.Sample(rng2), d2.Goal)
	}
}

package world

import "github.com/embodiedai/create/internal/nn"

// ViewCells is the side length of the agent-centred square the observation
// image covers (chosen to cover the expert's VisionRange so phase is
// inferable from pixels); ViewScale blows each cell up to 2x2 pixels,
// yielding the 64x64 RGB input of the entropy predictor (Table 9,
// Fig. 11(a)).
const (
	ViewCells = 32
	ViewScale = 2
	ViewSize  = ViewCells * ViewScale
)

// blockColor maps a block to an RGB triple in [0, 1].
func blockColor(b Block) (float32, float32, float32) {
	switch b {
	case Bedrock:
		return 0.1, 0.1, 0.1
	case Tree:
		return 0.1, 0.6, 0.1
	case Stone:
		return 0.5, 0.5, 0.5
	case CoalOre:
		return 0.25, 0.25, 0.3
	case IronOre:
		return 0.8, 0.7, 0.6
	case Grass:
		return 0.4, 0.8, 0.3
	case TableBlock:
		return 0.7, 0.5, 0.2
	case FurnaceBlock:
		return 0.6, 0.3, 0.3
	default: // Air
		return 0.9, 0.9, 0.8
	}
}

// RenderView rasterizes the agent-centred neighborhood into a 3x64x64 CHW
// volume — the "observed image" input of the entropy predictor.
func (w *World) RenderView() *nn.Vol {
	img := nn.NewVol(3, ViewSize, ViewSize)
	half := ViewCells / 2
	for cy := 0; cy < ViewCells; cy++ {
		for cx := 0; cx < ViewCells; cx++ {
			gx, gy := w.AgentX-half+cx, w.AgentY-half+cy
			r, g, b := blockColor(w.At(gx, gy))
			if gx == w.AgentX && gy == w.AgentY {
				r, g, b = 1, 0.2, 0.2 // agent marker
			} else if m := w.mobColorAt(gx, gy); m != nil {
				r, g, b = m[0], m[1], m[2]
			}
			for py := 0; py < ViewScale; py++ {
				for px := 0; px < ViewScale; px++ {
					x, y := cx*ViewScale+px, cy*ViewScale+py
					img.Set(0, y, x, r)
					img.Set(1, y, x, g)
					img.Set(2, y, x, b)
				}
			}
		}
	}
	return img
}

func (w *World) mobColorAt(x, y int) *[3]float32 {
	for i := range w.Mobs {
		m := &w.Mobs[i]
		if !m.Alive || m.X != x || m.Y != y {
			continue
		}
		if m.Kind == Chicken {
			return &[3]float32{1, 1, 0.3}
		}
		return &[3]float32{1, 1, 1}
	}
	return nil
}

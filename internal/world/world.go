// Package world implements the embodied playground the agent acts in: a
// deterministic-seed grid world with biomes, mineable resources, mobs,
// crafting infrastructure, and the nine Minecraft subtask families the paper
// evaluates (Table 10).
//
// The paper runs JARVIS-1 in Minecraft via MineRL. What the resilience
// characterization actually exercises is task *structure*: long-horizon
// subtask sequences, exploration phases where many actions are acceptable,
// and execution phases with precise sequential action dependencies (chopping
// a specific tree block, smelting at a furnace) where a single wrong action
// breaks a chain. This grid world reproduces those structures — sequential
// subtasks (logs, stone) have consecutive-hit mining chains that reset under
// interruption, while stochastic subtasks (chicken, wool) tolerate detours —
// which is what yields the subtask- and stage-dependent resilience of
// Figs. 6 and 7.
package world

import (
	"math/rand"
)

// Block is a grid cell's content.
type Block uint8

// Block kinds.
const (
	Air Block = iota
	Bedrock
	Tree
	Stone
	CoalOre
	IronOre
	Grass
	TableBlock
	FurnaceBlock
	numBlocks
)

// Solid reports whether the block obstructs movement.
func (b Block) Solid() bool {
	switch b {
	case Air, Grass:
		return false
	default:
		return true
	}
}

// Item is an inventory entry.
type Item uint8

// Item kinds.
const (
	NoItem Item = iota
	Log
	Planks
	Sticks
	CraftingTable
	WoodenPickaxe
	Cobblestone
	StonePickaxe
	Furnace
	Coal
	Charcoal
	RawIron
	IronIngot
	IronSword
	RawChicken
	CookedChicken
	Wool
	WheatSeeds
	NumItems
)

var itemNames = [NumItems]string{
	"none", "log", "planks", "sticks", "crafting_table", "wooden_pickaxe",
	"cobblestone", "stone_pickaxe", "furnace", "coal", "charcoal", "raw_iron",
	"iron_ingot", "iron_sword", "raw_chicken", "cooked_chicken", "wool", "wheat_seeds",
}

// String returns the item's Minecraft-style name.
func (i Item) String() string {
	if int(i) < len(itemNames) {
		return itemNames[i]
	}
	return "unknown"
}

// Biome selects the generation profile.
type Biome int

// Biomes used by the task suite (Table 10).
const (
	Plains Biome = iota
	ForestBiome
	Jungle
	Savanna
)

// MobKind distinguishes the two animal types the tasks need.
type MobKind uint8

// Mob kinds.
const (
	Chicken MobKind = iota
	Sheep
)

// Mob is a roaming animal.
type Mob struct {
	Kind    MobKind
	X, Y    int
	HP      int
	Sheared bool
	Alive   bool
}

// World is the simulation state. Construct with New.
type World struct {
	Size int
	grid []Block

	AgentX, AgentY int
	Inventory      [NumItems]int
	Mobs           []Mob

	// Mining chain state: the block under attack and accumulated hits.
	// Interruptions decay progress, which is what makes execution phases
	// fragile (Fig. 7(b)).
	mineX, mineY int
	mineHits     int

	// Smelting chain state (consecutive Smelt actions at a furnace).
	smeltGoal Item
	smeltHits int

	// Landmark memory: where the agent placed its crafting table and
	// furnace (JARVIS-1 keeps such locations in its memory). -1 = unplaced.
	TableX, TableY     int
	FurnaceX, FurnaceY int

	Steps int

	rng *rand.Rand
}

// Hit counts for mining/smelting chains and mob HP.
const (
	TreeHits    = 10
	StoneHits   = 10
	CoalHits    = 14
	IronHits    = 16
	SmeltHits   = 10
	ChickenHP   = 3
	MineDecay   = 2 // progress lost per step the chain is interrupted
	VisionRange = 12
)

// New generates a world for the given biome with a deterministic seed.
func New(b Biome, seed int64) *World {
	const size = 64
	w := &World{
		Size: size,
		grid: make([]Block, size*size),
		rng:  rand.New(rand.NewSource(seed)),
	}
	w.Reset(b, seed)
	return w
}

// Reset regenerates the world in place to the exact state New(b, seed)
// constructs, reusing the grid and mob storage. rand's source re-initializes
// fully on Seed, so generation consumes an identical random stream and the
// reset world is indistinguishable from a fresh one — the trial engine keeps
// one World per worker and resets it per episode instead of reallocating
// the 4 KiB grid trials-many times (see TestResetMatchesNew).
func (w *World) Reset(b Biome, seed int64) {
	w.rng.Seed(seed) //create:rng-reviewed rewinds the world stream to New(b, seed)'s exact state for per-worker reuse
	for i := range w.grid {
		w.grid[i] = Air
	}
	w.Inventory = [NumItems]int{}
	w.Mobs = w.Mobs[:0]
	w.Steps = 0
	w.AgentX, w.AgentY = w.Size/2, w.Size/2
	w.generate(b)
	if len(w.Mobs) == 0 {
		// A mob-free biome leaves a fresh world's slice nil; match that
		// exactly so a reset world is deeply equal to a new one.
		w.Mobs = nil
	}
	w.mineX, w.mineY, w.mineHits = -1, -1, 0
	w.smeltGoal, w.smeltHits = NoItem, 0
	w.TableX, w.TableY = -1, -1
	w.FurnaceX, w.FurnaceY = -1, -1
}

// At returns the block at (x, y); out-of-range coordinates read as Bedrock.
func (w *World) At(x, y int) Block {
	if x < 0 || y < 0 || x >= w.Size || y >= w.Size {
		return Bedrock
	}
	return w.grid[y*w.Size+x]
}

func (w *World) set(x, y int, b Block) {
	if x < 0 || y < 0 || x >= w.Size || y >= w.Size {
		return
	}
	w.grid[y*w.Size+x] = b
}

func (w *World) generate(b Biome) {
	type density struct {
		tree, stone, coal, iron, grass float64
		chickens, sheep                int
	}
	var d density
	switch b {
	case Jungle:
		d = density{tree: 0.012, stone: 0.008, grass: 0.01}
	case ForestBiome:
		d = density{tree: 0.02, stone: 0.006, grass: 0.01}
	case Plains:
		d = density{tree: 0.007, stone: 0.009, coal: 0.004, iron: 0.004, grass: 0.02, chickens: 5, sheep: 6}
	case Savanna:
		d = density{tree: 0.006, stone: 0.008, coal: 0.006, grass: 0.035, chickens: 2}
	}
	for y := 0; y < w.Size; y++ {
		for x := 0; x < w.Size; x++ {
			if x == 0 || y == 0 || x == w.Size-1 || y == w.Size-1 {
				w.set(x, y, Bedrock)
				continue
			}
			if x == w.AgentX && y == w.AgentY {
				continue
			}
			// A cleared spawn area forces an exploration phase before each
			// resource trip, like the open-world spawns the paper's tasks
			// start from.
			if chebyshev(x, y, w.AgentX, w.AgentY) <= 9 {
				if w.rng.Float64() < d.grass { //create:rng-reviewed terrain generation: one draw per spawn-area cell in fixed raster order
					w.set(x, y, Grass)
				}
				continue
			}
			r := w.rng.Float64() //create:rng-reviewed terrain generation: one draw per far cell in fixed raster order
			switch {
			case r < d.tree:
				w.set(x, y, Tree)
			case r < d.tree+d.stone:
				w.set(x, y, Stone)
			case r < d.tree+d.stone+d.coal:
				w.set(x, y, CoalOre)
			case r < d.tree+d.stone+d.coal+d.iron:
				w.set(x, y, IronOre)
			case r < d.tree+d.stone+d.coal+d.iron+d.grass:
				w.set(x, y, Grass)
			}
		}
	}
	for i := 0; i < d.chickens; i++ {
		x, y := w.randomOpenCell()
		w.Mobs = append(w.Mobs, Mob{Kind: Chicken, X: x, Y: y, HP: ChickenHP, Alive: true})
	}
	for i := 0; i < d.sheep; i++ {
		x, y := w.randomOpenCell()
		w.Mobs = append(w.Mobs, Mob{Kind: Sheep, X: x, Y: y, HP: 8, Alive: true})
	}
}

func (w *World) randomOpenCell() (int, int) {
	for i := 0; i < 10000; i++ {
		x := 1 + w.rng.Intn(w.Size-2) //create:rng-reviewed rejection sampling draws x,y pairs until an open cell; the attempt count depends only on the stream so far
		y := 1 + w.rng.Intn(w.Size-2)
		if !w.At(x, y).Solid() && (x != w.AgentX || y != w.AgentY) {
			return x, y
		}
	}
	return w.Size / 2, w.Size/2 + 1
}

// Count returns the inventory count of an item.
func (w *World) Count(i Item) int { return w.Inventory[i] }

// NearestBlock returns the closest block of the given kind within
// VisionRange (Chebyshev), and whether one was found. Placed infrastructure
// (table, furnace) is remembered as a landmark and found even beyond vision.
func (w *World) NearestBlock(kind Block) (x, y int, ok bool) {
	switch kind {
	case TableBlock:
		if w.TableX >= 0 && w.At(w.TableX, w.TableY) == TableBlock {
			return w.TableX, w.TableY, true
		}
	case FurnaceBlock:
		if w.FurnaceX >= 0 && w.At(w.FurnaceX, w.FurnaceY) == FurnaceBlock {
			return w.FurnaceX, w.FurnaceY, true
		}
	}
	bestD := VisionRange + 1
	ax, ay := w.AgentX, w.AgentY
	// Plain clamped bounds (no closures): this scan runs on most steps of
	// every approach/execute phase and must stay allocation- and
	// indirection-free.
	yLo, yHi := max(ay-VisionRange, 0), min(ay+VisionRange, w.Size-1)
	xLo, xHi := max(ax-VisionRange, 0), min(ax+VisionRange, w.Size-1)
	for yy := yLo; yy <= yHi; yy++ {
		for xx := xLo; xx <= xHi; xx++ {
			if w.grid[yy*w.Size+xx] != kind {
				continue
			}
			d := chebyshev(ax, ay, xx, yy)
			if d < bestD {
				bestD, x, y = d, xx, yy
			}
		}
	}
	return x, y, bestD <= VisionRange
}

// NearestMob returns the closest living mob of the given kind within
// VisionRange; sheared sheep are skipped when needWool is set.
func (w *World) NearestMob(kind MobKind, needWool bool) (idx int, ok bool) {
	bestD := VisionRange + 1
	idx = -1
	for i := range w.Mobs {
		m := &w.Mobs[i]
		if !m.Alive || m.Kind != kind {
			continue
		}
		if needWool && m.Sheared {
			continue
		}
		d := chebyshev(w.AgentX, w.AgentY, m.X, m.Y)
		if d < bestD {
			bestD, idx = d, i
		}
	}
	return idx, idx >= 0
}

func chebyshev(x1, y1, x2, y2 int) int {
	dx, dy := x1-x2, y1-y2
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// AdjacentTo reports whether the agent is within interaction range
// (Chebyshev distance 1) of (x, y).
func (w *World) AdjacentTo(x, y int) bool {
	return chebyshev(w.AgentX, w.AgentY, x, y) == 1
}

// MineProgress exposes the current mining chain state for tests and the
// expert policy.
func (w *World) MineProgress() (x, y, hits int) { return w.mineX, w.mineY, w.mineHits }

// SmeltProgress exposes the current smelting chain state.
func (w *World) SmeltProgress() (Item, int) { return w.smeltGoal, w.smeltHits }

// Rand exposes the world's RNG so policies can share the deterministic
// stream.
func (w *World) Rand() *rand.Rand { return w.rng }

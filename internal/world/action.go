package world

// The action space is factored into a movement component and an interaction
// component, mirroring the factored keyboard/mouse action space of
// Minecraft agents (Fig. 3 bottom-right). 9 moves x 7 interactions = 63
// composite actions, giving a maximum action-logit entropy of ln(63) ~ 4.14
// nats — matching the paper's observation that most entropies fall below 4.

// Move is the movement component of an action.
type Move uint8

// Movement components (8-neighborhood plus staying put).
const (
	MoveNone Move = iota
	MoveN
	MoveS
	MoveE
	MoveW
	MoveNE
	MoveNW
	MoveSE
	MoveSW
	NumMoves
)

// Delta returns the (dx, dy) of the move.
func (m Move) Delta() (int, int) {
	switch m {
	case MoveN:
		return 0, -1
	case MoveS:
		return 0, 1
	case MoveE:
		return 1, 0
	case MoveW:
		return -1, 0
	case MoveNE:
		return 1, -1
	case MoveNW:
		return -1, -1
	case MoveSE:
		return 1, 1
	case MoveSW:
		return -1, 1
	default:
		return 0, 0
	}
}

// MoveToward returns the move stepping from (x, y) toward (tx, ty).
func MoveToward(x, y, tx, ty int) Move {
	dx, dy := sign(tx-x), sign(ty-y)
	for m := MoveNone; m < NumMoves; m++ {
		mx, my := m.Delta()
		if mx == dx && my == dy {
			return m
		}
	}
	return MoveNone
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// Interact is the interaction component of an action.
type Interact uint8

// Interaction components.
const (
	IntNone Interact = iota
	IntAttack
	IntUse
	IntCraft
	IntPlace
	IntSmelt
	IntJump
	NumInteracts
)

// NumActions is the size of the composite action space.
const NumActions = int(NumMoves) * int(NumInteracts)

// Action is a composite (move, interact) pair encoded as an index in
// [0, NumActions).
type Action int

// MakeAction encodes a (move, interact) pair.
func MakeAction(m Move, i Interact) Action {
	return Action(int(m)*int(NumInteracts) + int(i))
}

// Parts decodes the action into its components.
func (a Action) Parts() (Move, Interact) {
	return Move(int(a) / int(NumInteracts)), Interact(int(a) % int(NumInteracts))
}

// Package platforms carries the model-zoo data of the paper's evaluation:
// parameter counts, op counts, token/image workloads (Table 4), and layer
// shapes (Tables 7 and 8) for JARVIS-1, OpenVLA, RoboFlamingo, Octo, RT-1,
// and the entropy predictor — plus the cross-platform task suites
// (LIBERO, CALVIN, OXE; Table 10).
package platforms

import (
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/power"
)

// Class separates planner-shaped models (LLM/VLA backbones invoked per
// task) from controller-shaped ones (policies invoked per step).
type Class int

// Model classes.
const (
	PlannerClass Class = iota
	ControllerClass
)

// Spec describes one platform model (Table 4, with shapes from Tables 7/8).
type Spec struct {
	Name   string
	Class  Class
	Bench  string // benchmark suite the paper evaluates it on
	Params float64
	// GOps is giga INT8 operations per invocation (planner: one task
	// decomposition; controller: one step). MACs = GOps/2 * 1e9.
	GOps float64
	// Hidden is the backbone width; Layers the depth (Tables 7/8).
	Hidden, Layers int
	// InTokens/OutTokens for planners (prefill/decode); InRes for
	// controllers (square RGB input resolution).
	InTokens, OutTokens int
	InRes               int
	MLPDim              int
	// SRAMReuse is the average operand reuse on the systolic array (high
	// for large planner GEMMs, low for the controller's skinny ones); it
	// sets SRAM traffic = MACs/SRAMReuse bytes.
	SRAMReuse float64
	// WeightsResident marks models whose weights fit on-chip SRAM (the
	// controllers, Sec. 6.1), avoiding per-invocation DRAM traffic.
	WeightsResident bool
}

// MACs per invocation.
func (s Spec) MACs() float64 { return s.GOps / 2 * 1e9 }

// Shape derives the bridge fault-model shape: outputs per invocation-unit
// (plan line for planners, step for controllers) and the hidden width.
func (s Spec) Shape() bridge.Shape {
	units := 1.0
	if s.Class == PlannerClass {
		units = float64(s.OutTokens)
	}
	return bridge.Shape{
		Name:           s.Name,
		OutputsPerUnit: s.MACs() / float64(s.Hidden) / units,
		Width:          s.Hidden,
	}
}

// FaultModel builds the anchored fault model for this platform.
func (s Spec) FaultModel() *bridge.FaultModel {
	if s.Class == PlannerClass {
		return bridge.NewPlannerFaultModel(s.Shape())
	}
	return bridge.NewControllerFaultModel(s.Shape())
}

// Workload derives the power-model footprint of one invocation.
func (s Spec) Workload() power.Workload {
	w := power.Workload{MACs: s.MACs()}
	w.SRAMBytes = w.MACs / s.SRAMReuse
	if !s.WeightsResident {
		// Weights are streamed from HBM2 each invocation (INT8: one byte
		// per parameter), plus a smaller activation/KV share.
		w.DRAMBytes = s.Params * 1e6 * 1.2
	}
	return w
}

// The model zoo (Tables 4, 7, 8).
var (
	JARVIS1Planner = Spec{
		Name: "JARVIS-1 planner", Class: PlannerClass, Bench: "Minecraft",
		Params: 7869, GOps: 5344, Hidden: 4096, Layers: 32, MLPDim: 14336,
		InTokens: 740, OutTokens: 251, SRAMReuse: 64,
	}
	OpenVLA = Spec{
		Name: "OpenVLA", Class: PlannerClass, Bench: "LIBERO",
		Params: 6929, GOps: 4595, Hidden: 4096, Layers: 32, MLPDim: 11008,
		InTokens: 617, OutTokens: 71, SRAMReuse: 64,
	}
	RoboFlamingo = Spec{
		Name: "RoboFlamingo", Class: PlannerClass, Bench: "CALVIN",
		Params: 2552, GOps: 2411, Hidden: 2048, Layers: 24, MLPDim: 8192,
		InTokens: 505, OutTokens: 61, SRAMReuse: 64,
	}
	JARVIS1Controller = Spec{
		Name: "JARVIS-1 controller", Class: ControllerClass, Bench: "Minecraft",
		Params: 61, GOps: 102, Hidden: 1024, Layers: 4, MLPDim: 4096,
		InRes: 128, SRAMReuse: 8, WeightsResident: true,
	}
	RT1 = Spec{
		Name: "RT-1", Class: ControllerClass, Bench: "OXE",
		Params: 35, GOps: 78, Hidden: 768, Layers: 11, MLPDim: 3072,
		InRes: 224, SRAMReuse: 8, WeightsResident: true,
	}
	Octo = Spec{
		Name: "Octo", Class: ControllerClass, Bench: "OXE",
		Params: 27, GOps: 76, Hidden: 384, Layers: 12, MLPDim: 1536,
		InRes: 224, SRAMReuse: 8, WeightsResident: true,
	}
	EntropyPredictor = Spec{
		Name: "Entropy predictor", Class: ControllerClass, Bench: "-",
		Params: 0.055, GOps: 0.043, Hidden: 128, Layers: 8,
		InRes: 64, SRAMReuse: 8, WeightsResident: true,
	}
)

// Planners and Controllers list the cross-platform evaluation sets of
// Fig. 17.
var (
	Planners    = []Spec{JARVIS1Planner, OpenVLA, RoboFlamingo}
	Controllers = []Spec{JARVIS1Controller, Octo, RT1}
	All         = []Spec{JARVIS1Planner, OpenVLA, RoboFlamingo, JARVIS1Controller, RT1, Octo, EntropyPredictor}
)

// CrossTask is one manipulation task of the LIBERO/CALVIN/OXE suites
// (Table 10). They are modelled as abstract episodes: a planner-shaped
// model decomposes the instruction into Phases plan lines, each taking
// StepsPerPhase controller steps.
type CrossTask struct {
	Name          string
	Suite         string
	Phases        int
	StepsPerPhase int
}

// Cross-platform task suites (Table 10 abbreviations).
var (
	LIBEROTasks = []CrossTask{
		{"wine", "LIBERO", 4, 60},
		{"alphabet", "LIBERO", 5, 55},
		{"bbq", "LIBERO", 5, 50},
	}
	CALVINTasks = []CrossTask{
		{"button", "CALVIN", 3, 45},
		{"block", "CALVIN", 4, 60},
		{"handle", "CALVIN", 4, 55},
	}
	OXEControllerTasks = []CrossTask{
		{"eggplant", "OXE", 3, 70},
		{"coke", "OXE", 3, 60},
		{"carrot", "OXE", 3, 65},
		{"open", "OXE", 3, 55},
		{"move", "OXE", 3, 65},
		{"place", "OXE", 4, 60},
	}
)

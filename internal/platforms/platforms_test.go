package platforms

import (
	"math"
	"testing"

	"github.com/embodiedai/create/internal/bridge"
)

func TestTable4Data(t *testing.T) {
	// Spot-check the headline Table 4 numbers.
	if JARVIS1Planner.Params != 7869 || JARVIS1Planner.GOps != 5344 {
		t.Fatal("JARVIS-1 planner Table 4 row wrong")
	}
	if JARVIS1Controller.Params != 61 || JARVIS1Controller.GOps != 102 {
		t.Fatal("JARVIS-1 controller Table 4 row wrong")
	}
	if EntropyPredictor.Params != 0.055 || EntropyPredictor.GOps != 0.043 {
		t.Fatal("entropy predictor Table 4 row wrong")
	}
	if len(All) != 7 {
		t.Fatalf("model zoo should have 7 entries, got %d", len(All))
	}
}

func TestShapesMatchBridgeReference(t *testing.T) {
	// The bridge's anchored reference shapes must agree with the Table 4
	// derivation (within rounding of the published constants).
	p := JARVIS1Planner.Shape()
	if rel := math.Abs(p.OutputsPerUnit-bridge.JARVIS1PlannerShape.OutputsPerUnit) /
		bridge.JARVIS1PlannerShape.OutputsPerUnit; rel > 0.05 {
		t.Fatalf("planner shape drifted from bridge reference: %v vs %v",
			p.OutputsPerUnit, bridge.JARVIS1PlannerShape.OutputsPerUnit)
	}
	c := JARVIS1Controller.Shape()
	if rel := math.Abs(c.OutputsPerUnit-bridge.JARVIS1ControllerShape.OutputsPerUnit) /
		bridge.JARVIS1ControllerShape.OutputsPerUnit; rel > 0.05 {
		t.Fatalf("controller shape drifted: %v vs %v",
			c.OutputsPerUnit, bridge.JARVIS1ControllerShape.OutputsPerUnit)
	}
	if p.Width != 4096 || c.Width != 1024 {
		t.Fatal("hidden widths wrong")
	}
}

func TestClassesAndSuites(t *testing.T) {
	for _, s := range Planners {
		if s.Class != PlannerClass {
			t.Fatalf("%s misclassified", s.Name)
		}
	}
	for _, s := range Controllers {
		if s.Class != ControllerClass {
			t.Fatalf("%s misclassified", s.Name)
		}
	}
	if len(LIBEROTasks) != 3 || len(CALVINTasks) != 3 || len(OXEControllerTasks) != 6 {
		t.Fatal("Table 10 cross-platform suites incomplete")
	}
}

func TestWorkloadFootprints(t *testing.T) {
	// Planners stream weights from DRAM; controllers are SRAM resident.
	wp := JARVIS1Planner.Workload()
	if wp.DRAMBytes < JARVIS1Planner.Params*1e6 {
		t.Fatal("planner must stream at least its weights")
	}
	wc := JARVIS1Controller.Workload()
	if wc.DRAMBytes != 0 {
		t.Fatal("controller weights are SRAM resident (Sec. 6.1)")
	}
	if wp.MACs != 5344.0/2*1e9 {
		t.Fatalf("planner MACs %v", wp.MACs)
	}
}

func TestFaultModelKneesScaleWithOps(t *testing.T) {
	// A smaller planner (fewer ops per decoded token) tolerates more BER.
	jarvis := JARVIS1Planner.FaultModel()
	flamingo := RoboFlamingo.FaultModel()
	fake := func(bridge.Protection) bridge.Severity {
		var s bridge.Severity
		s.BoundBit = 14
		s.Width = 64
		for b := range s.Bits {
			s.Bits[b] = 0.1
		}
		return s
	}
	jarvis.SetSeverityFunc(fake)
	flamingo.SetSeverityFunc(fake)
	kj := jarvis.KneeBER(bridge.Protection{})
	kf := flamingo.KneeBER(bridge.Protection{})
	// Knees scale inversely with per-token output counts: RoboFlamingo
	// concentrates more compute per decoded token (heavy prefill, few
	// decode tokens), so it knees lower.
	ratioShapes := JARVIS1Planner.Shape().OutputsPerUnit / RoboFlamingo.Shape().OutputsPerUnit
	if r := (kf / kj) * (1 / ratioShapes); r < 0.8 || r > 1.25 {
		t.Fatalf("knee scaling %v inconsistent with op ratio %v", kf/kj, ratioShapes)
	}
}

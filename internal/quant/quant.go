// Package quant implements the symmetric integer quantization used by the
// simulated accelerator. GEMM inputs are quantized per tensor to INT8 (or
// INT4, Sec. 6.9 of the paper), multiplied in integer arithmetic with wide
// accumulators, and results are requantized against an offline-profiled
// output scale — the same flow SmoothQuant-style INT8 deployments use and the
// flow the paper's anomaly bound is defined against.
package quant

import (
	"fmt"
	"math"
)

// Bits selects the quantization grid width.
type Bits int

// Supported quantization widths.
const (
	INT8 Bits = 8
	INT4 Bits = 4
)

// QMax returns the largest representable magnitude on the grid, e.g. 127 for
// INT8 and 7 for INT4.
func (b Bits) QMax() int32 {
	switch b {
	case INT8:
		return 127
	case INT4:
		return 7
	default:
		panic(fmt.Sprintf("quant: unsupported width %d", int(b)))
	}
}

// Params holds the symmetric (zero-point-free) scale for one tensor.
type Params struct {
	Scale float32 // real value represented by one integer step
	Bits  Bits
}

// Calibrate derives quantization parameters from the absolute maximum of the
// calibration data. A zero absmax yields a scale of 1 so that quantization of
// all-zero tensors stays well defined.
//
// The scan runs four independent comparison lanes (absMax is called per
// GEMM operand on the severity-measurement hot path). Byte-safety: max is
// associative and commutative, and the per-lane comparisons are exactly
// the naive loop's — including the NaN behavior, where a NaN fails both
// `v < 0` and `v > lane` and so never becomes the maximum in either
// version. Locked by TestCalibrateUnrolledMatchesNaive.
//
//create:zeroalloc
func Calibrate(data []float32, bits Bits) Params {
	var m0, m1, m2, m3 float32
	n := len(data) &^ 3
	for i := 0; i < n; i += 4 {
		v0, v1, v2, v3 := data[i], data[i+1], data[i+2], data[i+3]
		if v0 < 0 {
			v0 = -v0
		}
		if v1 < 0 {
			v1 = -v1
		}
		if v2 < 0 {
			v2 = -v2
		}
		if v3 < 0 {
			v3 = -v3
		}
		if v0 > m0 {
			m0 = v0
		}
		if v1 > m1 {
			m1 = v1
		}
		if v2 > m2 {
			m2 = v2
		}
		if v3 > m3 {
			m3 = v3
		}
	}
	for _, v := range data[n:] {
		if v < 0 {
			v = -v
		}
		if v > m0 {
			m0 = v
		}
	}
	absMax := m0
	if m1 > absMax {
		absMax = m1
	}
	if m2 > absMax {
		absMax = m2
	}
	if m3 > absMax {
		absMax = m3
	}
	if absMax == 0 {
		return Params{Scale: 1, Bits: bits}
	}
	return Params{Scale: absMax / float32(bits.QMax()), Bits: bits}
}

// ParamsForAbsMax builds quantization parameters directly from a known
// dynamic range, as an offline profiling pass would.
func ParamsForAbsMax(absMax float32, bits Bits) Params {
	if absMax <= 0 {
		return Params{Scale: 1, Bits: bits}
	}
	return Params{Scale: absMax / float32(bits.QMax()), Bits: bits}
}

// Quantize maps a real value onto the integer grid with round-to-nearest and
// saturation. Non-finite or out-of-range inputs saturate before the integer
// conversion so the result is always on the grid.
func (p Params) Quantize(x float32) int32 {
	mx := p.Bits.QMax()
	r := math.RoundToEven(float64(x) / float64(p.Scale))
	if math.IsNaN(r) {
		return 0
	}
	if r >= float64(mx) {
		return mx
	}
	if r <= float64(-mx) {
		return -mx
	}
	return int32(r)
}

// Dequantize maps an integer back to the real domain.
func (p Params) Dequantize(q int32) float32 { return float32(q) * p.Scale }

// QuantizeSlice quantizes src into dst (which must have the same length).
func (p Params) QuantizeSlice(dst []int32, src []float32) {
	if len(dst) != len(src) {
		panic("quant: length mismatch")
	}
	for i, v := range src {
		dst[i] = p.Quantize(v)
	}
}

// QuantizeError returns the real-domain error introduced by quantizing x.
func (p Params) QuantizeError(x float32) float64 {
	return float64(p.Dequantize(p.Quantize(x))) - float64(x)
}

// AccumulatorBound returns the anomaly bound for a GEMM whose inputs use
// params (px, pw) and whose profiled output range is outAbsMax: any
// accumulator value whose dequantized magnitude exceeds outAbsMax is, by
// construction, unreachable by correct execution (Sec. 5.1) and is flagged by
// the AD unit. The bound is expressed in accumulator (integer) domain.
func AccumulatorBound(px, pw Params, outAbsMax float32) int32 {
	if outAbsMax <= 0 {
		return 0
	}
	scale := float64(px.Scale) * float64(pw.Scale)
	b := float64(outAbsMax) / scale
	if b > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(math.Ceil(b))
}

package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQMax(t *testing.T) {
	if INT8.QMax() != 127 {
		t.Fatalf("INT8 qmax = %d", INT8.QMax())
	}
	if INT4.QMax() != 7 {
		t.Fatalf("INT4 qmax = %d", INT4.QMax())
	}
}

func TestCalibrateZeroData(t *testing.T) {
	p := Calibrate([]float32{0, 0, 0}, INT8)
	if p.Scale != 1 {
		t.Fatalf("zero data should give scale 1, got %v", p.Scale)
	}
	if p.Quantize(0) != 0 {
		t.Fatal("quantize(0) != 0")
	}
}

func TestRoundTripBoundedError(t *testing.T) {
	// Property: for any data within the calibrated range, the quantization
	// error never exceeds half a step.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]float32, 64)
		for i := range data {
			data[i] = rng.Float32()*20 - 10
		}
		p := Calibrate(data, INT8)
		for _, v := range data {
			if math.Abs(p.QuantizeError(v)) > float64(p.Scale)/2+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeSaturates(t *testing.T) {
	p := Params{Scale: 1, Bits: INT8}
	if q := p.Quantize(1e6); q != 127 {
		t.Fatalf("positive saturation: %d", q)
	}
	if q := p.Quantize(-1e6); q != -127 {
		t.Fatalf("negative saturation: %d", q)
	}
}

func TestQuantizeSymmetry(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		p := Params{Scale: 0.37, Bits: INT8}
		return p.Quantize(x) == -p.Quantize(-x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestINT4CoarserThanINT8(t *testing.T) {
	data := make([]float32, 128)
	rng := rand.New(rand.NewSource(3))
	for i := range data {
		data[i] = rng.Float32()*8 - 4
	}
	p8 := Calibrate(data, INT8)
	p4 := Calibrate(data, INT4)
	var e8, e4 float64
	for _, v := range data {
		e8 += math.Abs(p8.QuantizeError(v))
		e4 += math.Abs(p4.QuantizeError(v))
	}
	if e4 <= e8 {
		t.Fatalf("INT4 should quantize more coarsely: e4=%v e8=%v", e4, e8)
	}
}

func TestAccumulatorBound(t *testing.T) {
	px := Params{Scale: 0.1, Bits: INT8}
	pw := Params{Scale: 0.2, Bits: INT8}
	// outAbsMax 12.7 => bound = 12.7 / 0.02 = 635
	b := AccumulatorBound(px, pw, 12.7)
	if b != 635 {
		t.Fatalf("bound = %d, want 635", b)
	}
	if AccumulatorBound(px, pw, 0) != 0 {
		t.Fatal("zero range should give zero bound")
	}
}

func TestAccumulatorBoundAdmitsValidResults(t *testing.T) {
	// Any correct GEMM result within the profiled output range must sit
	// within the anomaly bound: the AD unit never clamps correct outputs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		px := Params{Scale: rng.Float32()*0.2 + 0.01, Bits: INT8}
		pw := Params{Scale: rng.Float32()*0.2 + 0.01, Bits: INT8}
		outMax := rng.Float32()*50 + 1
		bound := AccumulatorBound(px, pw, outMax)
		// A result with dequantized magnitude <= outMax:
		val := (rng.Float64()*2 - 1) * float64(outMax)
		acc := int32(val / (float64(px.Scale) * float64(pw.Scale)))
		return acc <= bound && -acc <= bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// naiveCalibrate is the straight-line absmax scan the unrolled Calibrate must
// reproduce exactly, including its NaN behavior (a NaN fails both the
// negation and the max comparison, so it never becomes the absmax).
func naiveCalibrate(data []float32, bits Bits) Params {
	var absMax float32
	for _, v := range data {
		if v < 0 {
			v = -v
		}
		if v > absMax {
			absMax = v
		}
	}
	if absMax == 0 {
		return Params{Scale: 1, Bits: bits}
	}
	return Params{Scale: absMax / float32(bits.QMax()), Bits: bits}
}

func TestCalibrateUnrolledMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nan := float32(math.NaN())
	cases := [][]float32{
		nil,
		{},
		{0},
		{-3},
		{0, 0, 0, 0, 0},
		{1, -2, 3, -4},             // exactly one unrolled step
		{1, -2, 3, -4, 5},          // tail of one
		{nan, 1, nan, -2, nan},     // NaN never wins
		{nan, nan, nan, nan},       // all-NaN degenerates to zero absmax
		{float32(math.Inf(1)), -1}, // +Inf wins
	}
	for i := 0; i < 50; i++ {
		n := rng.Intn(40)
		d := make([]float32, n)
		for j := range d {
			d[j] = (rng.Float32()*2 - 1) * 10
		}
		cases = append(cases, d)
	}
	for i, d := range cases {
		for _, bits := range []Bits{INT8, INT4} {
			got := Calibrate(d, bits)
			want := naiveCalibrate(d, bits)
			if got != want {
				t.Fatalf("case %d bits %d: Calibrate = %+v, naive = %+v", i, bits, got, want)
			}
		}
	}
}

func BenchmarkCalibrate(b *testing.B) {
	// 128x128 weight-matrix-sized scan: the per-GEMM calibration cost on the
	// severity-measurement hot path.
	rng := rand.New(rand.NewSource(1))
	data := make([]float32, 128*128)
	for i := range data {
		data[i] = rng.Float32()*2 - 1
	}
	b.SetBytes(int64(len(data)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Calibrate(data, INT8)
	}
}

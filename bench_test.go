// Benchmarks regenerating the paper's tables and figures (deliverable (d)):
// one testing.B target per evaluation artifact, each running the
// corresponding experiments harness at a reduced trial count. Run them all
// with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for paper-vs-measured values at full trial counts
// (cmd/create-bench -trials 100).
package create

import (
	"testing"

	"github.com/embodiedai/create/internal/agent"
	"github.com/embodiedai/create/internal/bridge"
	"github.com/embodiedai/create/internal/experiments"
	"github.com/embodiedai/create/internal/platforms"
	"github.com/embodiedai/create/internal/policy"
	"github.com/embodiedai/create/internal/timing"
	"github.com/embodiedai/create/internal/world"
)

func benchOptions() experiments.Options { return experiments.Options{Trials: 12, Seed: 2026} }

var benchEnv = experiments.NewEnv()

// ---------------------------------------------------------------------------
// Steady-state episode benchmarks: the per-trial unit every figure above
// multiplies. Each trial runs on the engine's reused per-worker scratch, so
// allocs/op here is the per-episode residual (plan construction and the
// Result histogram) — the per-step loop itself is allocation-free, locked
// by internal/agent's TestStepLoopZeroAllocs and measured in isolation by
// its BenchmarkStepLoop.

// steadyEpisodeConfig is the hot-path-complete workload: voltage-scaled
// controller under the hardware error model on a long-horizon task.
func steadyEpisodeConfig() agent.Config {
	return agent.Config{
		Task:        world.TaskIron,
		Controller:  platforms.JARVIS1Controller.FaultModel(),
		ControlProt: bridge.Protection{AD: true},
		UniformBER:  agent.VoltageMode,
		Timing:      timing.Default(),
		VSPolicy:    policy.Default.Func(),
		VSLevels:    policy.Default.VoltageLevels(),
		StepLimit:   1200,
		Seed:        2026,
	}
}

// BenchmarkEpisodes_VoltageScaled measures b.N voltage-scaled episodes
// through RunManyOpts — scratch reuse, shared corruption table, discarded
// per-trial results: the sweep-grid inner loop exactly as production runs
// it. One untimed episode first absorbs the process-wide cold start (the
// bridge's lazily measured severity tables), which would otherwise dominate
// single-iteration (-benchtime 1x) baselines.
func BenchmarkEpisodes_VoltageScaled(b *testing.B) {
	cfg := steadyEpisodeConfig()
	agent.RunManyOpts(cfg, 1, agent.RunOptions{Workers: 1, DiscardResults: true})
	b.ReportAllocs()
	b.ResetTimer()
	agent.RunManyOpts(cfg, b.N, agent.RunOptions{Workers: 1, DiscardResults: true})
}

// BenchmarkEpisodes_CleanStone is the fault-free counterpart: no corruption
// draws, no VS predictor — isolates the expert/softmax/world step cost.
func BenchmarkEpisodes_CleanStone(b *testing.B) {
	cfg := agent.Config{Task: world.TaskStone, UniformBER: 0, StepLimit: 1200, Seed: 2026}
	agent.RunManyOpts(cfg, 1, agent.RunOptions{Workers: 1, DiscardResults: true})
	b.ReportAllocs()
	b.ResetTimer()
	agent.RunManyOpts(cfg, b.N, agent.RunOptions{Workers: 1, DiscardResults: true})
}

// BenchmarkFig01_VoltageBER regenerates the voltage -> BER curve (Fig. 1(b)).
func BenchmarkFig01_VoltageBER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if pts := experiments.Fig1b(benchEnv); len(pts) == 0 {
			b.Fatal("empty curve")
		}
	}
}

// BenchmarkFig01_EnergyPerTask regenerates the energy-vs-voltage inversion
// (Fig. 1(d)) via the unprotected stone sweep.
func BenchmarkFig01_EnergyPerTask(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig20Baselines(benchEnv, experiments.Options{Trials: 6, Seed: 2026})
	}
}

// BenchmarkFig04_TimingModel regenerates the per-bit error surface and the
// error-magnitude histogram (Fig. 4).
func BenchmarkFig04_TimingModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4a(benchEnv)
		experiments.Fig4b(benchEnv, benchOptions())
	}
}

// BenchmarkFig05_PlannerController regenerates the planner/controller
// resilience sweeps (Fig. 5(a)-(d)).
func BenchmarkFig05_PlannerController(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5Planner(benchEnv, benchOptions())
		experiments.Fig5Controller(benchEnv, benchOptions())
	}
}

// BenchmarkFig05_Components regenerates the per-component severity study
// (Fig. 5(e)-(h)) on the miniature networks.
func BenchmarkFig05_Components(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5Components(experiments.Options{Trials: 4, Seed: 2026})
	}
}

// BenchmarkFig05_Activations regenerates the activation/normalization
// profiles (Fig. 5(i)-(l)).
func BenchmarkFig05_Activations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5Activations(benchOptions())
	}
}

// BenchmarkFig06_SubtaskDiversity regenerates the subtask-resilience study
// (Fig. 6).
func BenchmarkFig06_SubtaskDiversity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6Subtasks(benchEnv, experiments.Options{Trials: 6, Seed: 2026})
	}
}

// BenchmarkFig07_StageDynamics regenerates the stage-specific resilience
// study (Fig. 7).
func BenchmarkFig07_StageDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7Stages(benchEnv, benchOptions())
		experiments.Fig7PhaseInjection(benchEnv, benchOptions(), 0.5)
	}
}

// BenchmarkFig08_GEMMProfile regenerates the runtime GEMM output
// distribution (Fig. 8(a)).
func BenchmarkFig08_GEMMProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8GEMMProfile(benchOptions())
	}
}

// BenchmarkFig09_WeightRotation regenerates the pre/post-rotation activation
// comparison (Fig. 9(b)).
func BenchmarkFig09_WeightRotation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9Rotation(benchOptions())
	}
}

// BenchmarkFig10_EntropyCurve regenerates the per-step entropy trace
// (Fig. 10).
func BenchmarkFig10_EntropyCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10EntropyCurve(benchOptions(), world.TaskLog)
	}
}

// BenchmarkFig12_Hardware regenerates the block breakdown and LDO waveforms
// (Fig. 12).
func BenchmarkFig12_Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig12Breakdown()
		experiments.Fig12Waveforms()
	}
}

// BenchmarkFig13_AD regenerates the anomaly detection evaluation
// (Fig. 13(a)/(b)).
func BenchmarkFig13_AD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig13AD(benchEnv, experiments.Options{Trials: 6, Seed: 2026})
	}
}

// BenchmarkFig13_WR regenerates the weight rotation evaluation (Fig. 13(c)).
func BenchmarkFig13_WR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig13WR(benchEnv, experiments.Options{Trials: 6, Seed: 2026})
	}
}

// BenchmarkFig13_VS regenerates the voltage-scaling frontier
// (Fig. 13(d)/(f)).
func BenchmarkFig13_VS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig13VS(benchEnv, experiments.Options{Trials: 6, Seed: 2026})
	}
}

// BenchmarkFig13_Ablation regenerates the AD+WR ablation (Fig. 13(e)).
func BenchmarkFig13_Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig13AblationPlanner(benchEnv, experiments.Options{Trials: 6, Seed: 2026})
	}
}

// BenchmarkFig14_Predictor regenerates the entropy-predictor evaluation
// (Fig. 14) at a small training scale plus the oracle calibration.
func BenchmarkFig14_Predictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig14Predictor(benchOptions(),
			experiments.PredictorScale{TrainFrames: 600, TestFrames: 120, Epochs: 2})
		experiments.OracleR2(benchOptions(), 0.34, 1000)
	}
}

// BenchmarkFig15_UpdateInterval regenerates the voltage-update-interval
// study (Fig. 15).
func BenchmarkFig15_UpdateInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig15Interval(benchEnv, experiments.Options{Trials: 6, Seed: 2026})
	}
}

// BenchmarkFig16_Overall regenerates the overall task evaluation
// (Fig. 16(a)/(b)) with the default all-cores fan-out.
func BenchmarkFig16_Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := experiments.Options{Trials: 4, Seed: 2026}
		experiments.Fig16Reliability(benchEnv, opt)
		experiments.Fig16Efficiency(benchEnv, opt)
	}
}

// BenchmarkFig16_OverallSerial is the Workers: 1 baseline for the parallel
// engine — compare against BenchmarkFig16_OverallParallel to measure the
// speedup on this host (the outputs are bit-identical by construction).
func BenchmarkFig16_OverallSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := experiments.Options{Trials: 4, Seed: 2026, Workers: 1}
		experiments.Fig16Reliability(benchEnv, opt)
	}
}

// BenchmarkFig16_OverallParallel fans the same workload out over all cores.
func BenchmarkFig16_OverallParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := experiments.Options{Trials: 4, Seed: 2026, Workers: 0}
		experiments.Fig16Reliability(benchEnv, opt)
	}
}

// BenchmarkFig17_CrossPlatform regenerates the cross-platform generality
// evaluation (Fig. 17).
func BenchmarkFig17_CrossPlatform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig17CrossPlatform(benchEnv, experiments.Options{Trials: 8, Seed: 2026})
	}
}

// BenchmarkFig18_ChipEnergy regenerates the chip-level energy breakdown
// (Fig. 18).
func BenchmarkFig18_ChipEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig18ChipEnergy(benchEnv.Power, 0.507, 0.393)
		if len(rows) != 6 {
			b.Fatal("wrong row count")
		}
		experiments.BatteryLifeRange(0.33)
	}
}

// BenchmarkFig19_ErrorModels regenerates the uniform-vs-hardware error-model
// validation (Fig. 19).
func BenchmarkFig19_ErrorModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig19ErrorModels(benchEnv, experiments.Options{Trials: 6, Seed: 2026})
	}
}

// BenchmarkFig20_Baselines regenerates the prior-art comparison (Fig. 20).
func BenchmarkFig20_Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig20Baselines(benchEnv, experiments.Options{Trials: 6, Seed: 2026})
	}
}

// BenchmarkFig21_Policies regenerates the policy set and a search round
// (Fig. 21, Sec. 6.5).
func BenchmarkFig21_Policies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig21Policies()
		experiments.PolicySearch(benchEnv, experiments.Options{Trials: 4, Seed: 2026},
			policy.Selected[:2], world.TaskWooden)
	}
}

// BenchmarkTable2_LDO regenerates the LDO specification table.
func BenchmarkTable2_LDO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table2LDO(); len(rows) != 8 {
			b.Fatal("wrong table")
		}
	}
}

// BenchmarkTable3_Accelerator regenerates the accelerator performance table.
func BenchmarkTable3_Accelerator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3Accelerator()
	}
}

// BenchmarkTable4_Models regenerates the model-zoo table.
func BenchmarkTable4_Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table4Models(); len(rows) != len(platforms.All) {
			b.Fatal("wrong zoo")
		}
	}
}

// BenchmarkTable5_Repetitions regenerates the repetition-convergence table.
func BenchmarkTable5_Repetitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table5Repetitions(benchEnv, benchOptions())
	}
}

// BenchmarkTable6_Quantization regenerates the INT8-vs-INT4 table.
func BenchmarkTable6_Quantization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table6Quantization(benchEnv, experiments.Options{Trials: 6, Seed: 2026})
	}
}

package create

import "testing"

func TestFacadeEndToEnd(t *testing.T) {
	sys := NewSystem()
	cfg := Nominal()
	cfg.Trials = 8
	baseline := sys.Run(TaskWooden, cfg)
	if baseline.SuccessRate < 0.8 {
		t.Fatalf("baseline success %.2f", baseline.SuccessRate)
	}

	full := Full(0.78)
	full.Trials = 8
	protected := sys.Run(TaskWooden, full)
	if protected.SuccessRate < 0.7 {
		t.Fatalf("protected success %.2f", protected.SuccessRate)
	}
	if Saving(baseline, protected) <= 0 {
		t.Fatal("no saving from the full stack")
	}
}

func TestFacadeExportsTasksAndPolicies(t *testing.T) {
	if len(Tasks) != 9 {
		t.Fatalf("expected 9 tasks, got %d", len(Tasks))
	}
	ps := Policies()
	if len(ps) != 6 {
		t.Fatalf("expected 6 policies, got %d", len(ps))
	}
	if ps[2].Name != "C" {
		t.Fatalf("default policy should be C, got %s", ps[2].Name)
	}
}

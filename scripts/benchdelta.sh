#!/usr/bin/env bash
# benchdelta.sh OLD.json NEW.json — print a benchstat-style per-benchmark
# ns/op delta (and the allocs/op movement) between two BENCH.json files
# produced by scripts/bench.sh. Used non-blocking in CI to surface perf
# regressions against the committed baseline without gating merges on noisy
# shared runners.
set -euo pipefail
if [ $# -ne 2 ]; then
  echo "usage: $0 OLD.json NEW.json" >&2
  exit 2
fi

python3 - "$1" "$2" <<'PY'
import json
import sys

def load(path):
    with open(path) as f:
        return {(b["pkg"], b["name"]): b for b in json.load(f)["benchmarks"]}

old, new = load(sys.argv[1]), load(sys.argv[2])
print(f'{"benchmark":44s} {"old ns/op":>14s} {"new ns/op":>14s} {"delta":>8s}  allocs/op')
for key in sorted(set(old) | set(new)):
    o, n = old.get(key), new.get(key)
    pkg, name = key
    label = name if pkg in (".", "") else f"{pkg}:{name}"
    if o and n:
        delta = (n["ns_per_op"] - o["ns_per_op"]) / o["ns_per_op"] * 100 if o["ns_per_op"] else 0.0
        allocs = f'{o.get("allocs_per_op", "?")} -> {n.get("allocs_per_op", "?")}'
        print(f'{label:44s} {o["ns_per_op"]:>14.1f} {n["ns_per_op"]:>14.1f} {delta:>+7.1f}%  {allocs}')
    elif n:
        print(f'{label:44s} {"-":>14s} {n["ns_per_op"]:>14.1f} {"new":>8s}  {n.get("allocs_per_op", "?")}')
    else:
        print(f'{label:44s} {o["ns_per_op"]:>14.1f} {"-":>14s} {"gone":>8s}  {o.get("allocs_per_op", "?")}')
PY

#!/usr/bin/env bash
# docscheck.sh — fail on dead relative links in the repo's Markdown.
#
# Scans every tracked *.md for [text](target) links, skips absolute URLs
# (http/https/mailto) and pure in-page anchors (#...), strips #fragment
# suffixes, resolves each target relative to the file that links it, and
# reports targets that do not exist. CI runs this as the docs-check job.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r md; do
  case "$md" in
    # Retrieval scaffolding (paper abstracts, exemplar snippets, session
    # log) is machine-generated and may carry links into sources we do
    # not vendor; only authored docs are held to the link contract.
    PAPER.md|PAPERS.md|SNIPPETS.md|ISSUE.md|CHANGES.md) continue ;;
  esac
  dir=$(dirname "$md")
  # One target per line; inline code spans are left in — a dead link in a
  # code span is still a dead link to a reader.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      '#'*) continue ;;
      '') continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "docscheck: $md: dead link -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\[[^][]*\]\(([^()[:space:]]+)\)' "$md" | sed -E 's/^\[[^][]*\]\(([^()[:space:]]+)\)$/\1/')
done < <(git ls-files '*.md')

if [ "$fail" -ne 0 ]; then
  echo "docscheck: FAILED" >&2
  exit 1
fi
echo "docscheck: all relative links resolve"

#!/usr/bin/env bash
# lint.sh — run the full lint stack locally with the same flags CI uses
# (.github/workflows/ci.yml, lint job):
#
#   1. gofmt       — formatting (fails listing unformatted files)
#   2. go vet      — the standard analyzers
#   3. create-lint — the repo's determinism invariants (internal/analysis),
#                    run the supported way: go vet -vettool
#   4. staticcheck — if installed (CI pins honnef.co/go/tools @2025.1.1;
#                    skipped with a notice when absent locally)
#   5. govulncheck — if installed (CI pins golang.org/x/vuln @v1.1.4;
#                    skipped with a notice when absent locally)
#
# Usage: scripts/lint.sh [package patterns]   (default: ./...)
set -euo pipefail
cd "$(dirname "$0")/.."

pkgs=("${@:-./...}")
fail=0

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  fail=1
fi

echo "== go vet"
go vet "${pkgs[@]}" || fail=1

echo "== create-lint (determinism invariants)"
tool=$(mktemp -t create-lint.XXXXXX)
trap 'rm -f "$tool"' EXIT
go build -o "$tool" ./cmd/create-lint
go vet -vettool="$tool" "${pkgs[@]}" || fail=1

echo "== staticcheck"
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck "${pkgs[@]}" || fail=1
else
  echo "staticcheck not installed; skipping (CI runs honnef.co/go/tools/cmd/staticcheck@2025.1.1)"
fi

echo "== govulncheck"
if command -v govulncheck >/dev/null 2>&1; then
  govulncheck "${pkgs[@]}" || fail=1
else
  echo "govulncheck not installed; skipping (CI runs golang.org/x/vuln/cmd/govulncheck@v1.1.4)"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"

#!/usr/bin/env bash
# bench.sh — run the benchmark suite and emit a machine-readable BENCH.json
# alongside the raw `go test -bench` text, so the perf trajectory has data
# points instead of scrollback. Every entry records ns/op, B/op and
# allocs/op per benchmark (allocs/op is how the zero-allocation step-loop
# guarantee stays observable).
#
# Environment knobs (all optional):
#   BENCH_PATTERN  -bench regex                    (default: .)
#   BENCH_TIME     -benchtime                      (default: 1x)
#   BENCH_PKGS     packages to bench               (default: ./...)
#   BENCH_OUT      JSON output path                (default: BENCH.json)
#   BENCH_TXT      raw benchmark text path         (default: bench.txt)
#
# Examples:
#   scripts/bench.sh                                        # everything, once
#   BENCH_PATTERN='Fig16|StepLoop' scripts/bench.sh         # the hot subset
#   BENCH_TIME=3x BENCH_OUT=after.json scripts/bench.sh     # steadier timing
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${BENCH_PATTERN:-.}"
benchtime="${BENCH_TIME:-1x}"
pkgs="${BENCH_PKGS:-./...}"
out="${BENCH_OUT:-BENCH.json}"
txt="${BENCH_TXT:-bench.txt}"

# shellcheck disable=SC2086  # pkgs is deliberately word-split
go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem $pkgs | tee "$txt"

awk '
  /^pkg: / {
    pkg = $2
    sub(/^github\.com\/embodiedai\/create\/?/, "", pkg)
    if (pkg == "") pkg = "."
    next
  }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    iters = $2
    ns = ""; bytes = "null"; allocs = "null"
    for (i = 3; i < NF; i++) {
      if ($(i + 1) == "ns/op") ns = $i
      if ($(i + 1) == "B/op") bytes = $i
      if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    lines[n++] = sprintf("    {\"pkg\":\"%s\",\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}",
                         pkg, name, iters, ns, bytes, allocs)
  }
  END {
    printf "{\n  \"schema\": \"create-bench/v1\",\n  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", lines[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
  }
' "$txt" > "$out"

echo "bench.sh: wrote $out ($(grep -c '"name"' "$out") benchmarks) and $txt" >&2

module github.com/embodiedai/create

go 1.24

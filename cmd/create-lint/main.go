// Command create-lint is the determinism-invariant checker for this
// repository: a go vet tool bundling the custom analyzers that enforce the
// PERFORMANCE.md bit-identity rules at compile time.
//
// Two ways to run it:
//
//	create-lint ./...
//
// builds nothing by hand — it re-executes `go vet -vettool=<itself>` with
// the given package patterns, which is the supported way to drive per-unit
// analyzers. CI and scripts/lint.sh call the explicit form:
//
//	go vet -vettool=$(command -v create-lint) ./...
//
// The analyzers (see internal/analysis/passes/...):
//
//	maprange      order-sensitive work inside for-range over maps
//	walltime      wall-clock reads outside annotated service-tier files
//	rngdiscipline global math/rand anywhere; unreviewed draws on the hot path
//	hotalloc      allocation constructs in //create:zeroalloc functions
//	directive     malformed or misplaced //create: annotations
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"github.com/embodiedai/create/internal/analysis"
	"github.com/embodiedai/create/internal/analysis/passes/directive"
	"github.com/embodiedai/create/internal/analysis/passes/hotalloc"
	"github.com/embodiedai/create/internal/analysis/passes/maprange"
	"github.com/embodiedai/create/internal/analysis/passes/rngdiscipline"
	"github.com/embodiedai/create/internal/analysis/passes/walltime"
	"github.com/embodiedai/create/internal/analysis/unitchecker"
)

// Suite is the full create analyzer set, in report order.
var Suite = []*analysis.Analyzer{
	directive.Analyzer,
	hotalloc.Analyzer,
	maprange.Analyzer,
	rngdiscipline.Analyzer,
	walltime.Analyzer,
}

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(Suite...) // does not return
	}
	if len(args) == 0 {
		usage()
		os.Exit(1)
	}
	// Convenience mode: create-lint ./... re-executes go vet against itself.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "create-lint: %v\n", err)
		os.Exit(1)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "create-lint: %v\n", err)
		os.Exit(1)
	}
}

// vetProtocol reports whether args look like the go vet driver calling us
// (-V=full, -flags, or a path to a vet.cfg) rather than a human.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: create-lint <package patterns>\t(e.g. create-lint ./...)\n\nAnalyzers:\n")
	for _, a := range Suite {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
	}
}

// Command create-coordinator is the distributed front end of the
// evaluation suite: it plans a selection of experiments into shards
// (internal/dispatch), fans the shards out over a pool of create-serve
// workers and/or in-process runners, pulls every worker's computed cache
// entries back by content address, merges them into a local cache
// directory, and replays the selection against the merged cache — so its
// stdout is byte-identical to a single create-bench run of the same
// selection, however many machines did the computing.
//
//	create-serve -addr :8081 -cache-dir w1 &          # worker 1
//	create-serve -addr :8082 -cache-dir w2 &          # worker 2
//	create-coordinator -exp fig16 -trials 48 -shards 4 -cache-dir coord \
//	    -workers http://127.0.0.1:8081,http://127.0.0.1:8082 > fig16.txt
//
// Scheduling is hit-aware: shards are planned against the local cache
// (registry.PlanFor per shard), fully cached shards are never dispatched,
// and the heaviest predicted compute goes out first. A worker that fails
// a shard is placed on probation and probed (-probe-* flags) — readmitted
// when its health endpoint answers again, retired only when the probe
// budget runs out — and the shard is re-queued to a surviving worker;
// each shard's entries merge into -cache-dir at most once. -prewarm
// pushes points the coordinator already holds to each worker before it
// runs, so a warm coordinator cache saves remote recompute too.
//
// -workers-listen serves the pool's membership API during the run:
// GET /v1/workers lists the pool with per-worker state, POST registers a
// worker mid-run (it starts pulling queued shards immediately), DELETE
// drains one (it finishes its in-flight shard, then leaves).
//
// A second run over the same -cache-dir replays entirely from cache: the
// plan marks every shard free, nothing is dispatched, and no grid point
// is recomputed anywhere.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"

	"github.com/embodiedai/create/internal/dispatch"
	"github.com/embodiedai/create/internal/obs"
	"github.com/embodiedai/create/internal/obs/trace"
	"github.com/embodiedai/create/internal/registry"
	"github.com/embodiedai/create/internal/service"
)

func main() {
	exp := flag.String("exp", "all", "experiment selection (fig1..fig21, table2..table6, all)")
	trials := flag.Int("trials", 48, "episode repetitions per data point")
	seed := flag.Int64("seed", 2026, "base random seed")
	shards := flag.Int("shards", 0, "shard count (0 = twice the runner count, so balancing has slack)")
	workerList := flag.String("workers", "", "comma-separated create-serve worker URLs")
	local := flag.Int("local", 0, "in-process runners to add to the pool (with no -workers, defaults to 1)")
	localWorkers := flag.Int("local-compute", 0, "per-shard parallelism of each in-process runner (0 = all cores)")
	cacheDir := flag.String("cache-dir", "", "destination cache directory (required with remote workers; shard entries merge here)")
	prewarm := flag.Bool("prewarm", false, "push locally cached points to each worker before it runs its shard")
	planOnly := flag.Bool("plan", false, "print the shard plan and exit without running")
	costsIn := flag.String("costs", "", "cost table JSON (seconds_per_point map, or an array of job timing records) to weight shard scheduling by observed per-point compute cost")
	costsOut := flag.String("costs-out", "", "write the run's harvested cost table as JSON to this file (\"-\" for stderr) for the next run's -costs")
	events := flag.Bool("events", false, "log every worker progress event (verbose)")
	metricsOut := flag.String("metrics-out", "", "write the run's metrics in Prometheus text format to this file (\"-\" for stderr)")
	traceOut := flag.String("trace-out", "", "write the run's stitched Chrome trace-event JSON (Perfetto-loadable) to this file (\"-\" for stderr)")
	logFormat := flag.String("log-format", "text", "structured log format on stderr: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	workersListen := flag.String("workers-listen", "", "serve the pool membership API (GET/POST/DELETE /v1/workers) on this address during the run")
	noProbation := flag.Bool("no-probation", false, "retire a failed worker immediately instead of probing it for readmission")
	probeAttempts := flag.Int("probe-attempts", 0, "health probes before a failed worker is retired (0 = 6)")
	probeSuccesses := flag.Int("probe-successes", 0, "consecutive probe successes before readmission (0 = 2)")
	probeBase := flag.Duration("probe-base", 0, "first probe backoff delay, doubled per failure (0 = 250ms)")
	probeMax := flag.Duration("probe-max", 0, "probe backoff ceiling (0 = 5s)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline for worker control-plane calls (0 = 30s)")
	requestRetries := flag.Int("request-retries", 0, "retries per transient worker request failure (0 = 2, negative disables)")
	stallTimeout := flag.Duration("stall-timeout", 0, "max silence on a worker's events stream before the shard fails over (0 = 2m; keep above the worker's -event-keepalive)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	l, err := dispatch.OpenLocal("", *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	selection, err := dispatch.Selection(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := l.Options(*trials, *seed, 0)

	// The cost table is shared by the planner (shard weights), every runner
	// (timing harvest), and -costs-out (the next run's input): one feedback
	// loop from observed per-point compute cost back into the schedule.
	var costs *registry.CostTable
	if *costsIn != "" {
		costs, err = registry.LoadCostTable(*costsIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading -costs: %v\n", err)
			os.Exit(2)
		}
	} else if *costsOut != "" {
		costs = registry.NewCostTable()
	}

	var runners []dispatch.Runner
	stage := "" // staging root for pulled entries; removed before every exit
	cleanup := func() {
		if stage != "" {
			os.RemoveAll(stage)
		}
	}
	// One construction path for every remote worker — the -workers list and
	// anything registered later through -workers-listen — so a joined
	// worker gets the same staging, prewarm, retry, and trace wiring.
	newHTTPRunner := func(url, stageName string) *dispatch.HTTPRunner {
		r := &dispatch.HTTPRunner{
			BaseURL:        strings.TrimRight(strings.TrimSpace(url), "/"),
			StageDir:       filepath.Join(stage, stageName),
			Local:          l.Store,
			Prewarm:        *prewarm,
			Costs:          costs,
			RequestTimeout: *requestTimeout,
			MaxRetries:     *requestRetries,
			StallTimeout:   *stallTimeout,
		}
		if *events {
			r.OnEvent = func(shard int, ev service.Event) {
				logger.Info("worker event", "shard", shard+1,
					"job", ev.Job, "state", ev.State, "message", ev.Message)
			}
		}
		return r
	}
	if *workerList != "" || *workersListen != "" {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "remote workers need -cache-dir: their shard entries are pulled and merged there")
			os.Exit(2)
		}
		// Stage pulled entries outside the cache dir: staged copies are
		// deleted after each merge, and must never pollute cache-dir scans.
		var err error
		stage, err = os.MkdirTemp("", "create-coordinator-stage-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "creating staging dir: %v\n", err)
			os.Exit(2)
		}
		defer cleanup()
	}
	if *workerList != "" {
		for i, url := range strings.Split(*workerList, ",") {
			runners = append(runners, newHTTPRunner(url, fmt.Sprintf("worker-%d", i)))
		}
	}
	if *local == 0 && len(runners) == 0 {
		*local = 1
	}
	for i := 0; i < *local; i++ {
		runners = append(runners, &dispatch.LocalRunner{
			Env: l.Env, Workers: *localWorkers, Name: fmt.Sprintf("local-%d", i+1),
			Costs: costs,
		})
	}
	numShards := *shards
	if numShards <= 0 {
		numShards = 2 * len(runners)
	}

	// One recorder is shared by the coordinator and every runner, so the
	// whole fleet — dispatch, retries, merges, worker compute pulled back
	// over HTTP — lands in a single stitched timeline. The trace ID is
	// derived from the plan identity, so a replayed run traces identically.
	names := make([]string, len(selection))
	for i, d := range selection {
		names[i] = d.Name
	}
	rec := trace.NewRecorder(dispatch.FleetTraceID(names, *trials, *seed, numShards), "coordinator")
	for _, r := range runners {
		switch rr := r.(type) {
		case *dispatch.HTTPRunner:
			rr.Trace = rec
		case *dispatch.LocalRunner:
			rr.Trace = rec
		}
	}

	if *planOnly {
		plan := dispatch.PlanShardsCosted(l.Env, selection, opt, numShards, costs)
		fmt.Printf("%d experiment(s), %d shards: %d points, %d cached, %d to compute\n",
			len(plan.Experiments), plan.NumShards, plan.GridPoints, plan.Cached, plan.ToCompute)
		for _, w := range plan.Shards {
			note := ""
			if w.CostSeconds > 0 {
				note = fmt.Sprintf("  (predicted %.2fs)", w.CostSeconds)
			}
			if w.Free() {
				note += "  (free: will not dispatch)"
			}
			fmt.Printf("  shard %-6s %6d points %6d cached %6d to compute%s\n",
				w.Selector, w.GridPoints, w.Cached, w.ToCompute, note)
		}
		return
	}

	// One registry carries both tiers' families: the store's create_cache_*
	// counters (the same numbers the final summary line prints) and the
	// coordinator's create_dispatch_* shard/retry/merge accounting.
	reg := obs.NewRegistry()
	l.Store.Register(reg)
	coord := &dispatch.Coordinator{
		Env: l.Env, Store: l.Store, Runners: runners,
		Logf:    log.New(os.Stderr, "coordinator: ", 0).Printf,
		Metrics: reg,
		Trace:   rec,
		Logger:  logger,
		Costs:   costs,
		Health: dispatch.HealthConfig{
			Disabled:  *noProbation,
			MaxProbes: *probeAttempts,
			Successes: *probeSuccesses,
			BaseDelay: *probeBase,
			MaxDelay:  *probeMax,
		},
	}

	if *workersListen != "" {
		var joined atomic.Int64
		ln, err := net.Listen("tcp", *workersListen)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coordinator: -workers-listen: %v\n", err)
			cleanup()
			os.Exit(2)
		}
		srv := &http.Server{Handler: coord.WorkersHandler(func(url string) (dispatch.Runner, error) {
			r := newHTTPRunner(url, fmt.Sprintf("joined-%d", joined.Add(1)))
			r.Trace = rec
			return r, nil
		})}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				logger.Error("workers admin server", "error", err.Error())
			}
		}()
		defer srv.Close()
		logger.Info("workers admin listening", "addr", ln.Addr().String())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	plan, err := coord.Run(ctx, os.Stdout, selection, opt, numShards, *exp == "all")
	if err != nil {
		fmt.Fprintf(os.Stderr, "coordinator: %v\n", err)
		cleanup()
		os.Exit(1)
	}
	logger.Info("fleet run complete", "trace_id", rec.TraceID(),
		"shards", plan.NumShards, "grid_points", plan.GridPoints,
		"cached", plan.Cached, "to_compute", plan.ToCompute)
	st := l.Store.Stats()
	fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d points resident\n",
		st.Hits, st.Misses, st.Resident)
	if *metricsOut != "" {
		if err := dumpMetrics(reg, *metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "coordinator: writing metrics: %v\n", err)
			cleanup()
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := dumpTrace(rec, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "coordinator: writing trace: %v\n", err)
			cleanup()
			os.Exit(1)
		}
	}
	if *costsOut != "" {
		if err := dumpCosts(costs, *costsOut); err != nil {
			fmt.Fprintf(os.Stderr, "coordinator: writing costs: %v\n", err)
			cleanup()
			os.Exit(1)
		}
	}
}

// dumpCosts writes the harvested cost table as JSON to path ("-" = stderr):
// feed it to the next run's -costs so schedules keep adapting across runs.
func dumpCosts(costs *registry.CostTable, path string) error {
	if path == "-" {
		return costs.WriteJSON(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := costs.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpMetrics renders the registry to path ("-" = stderr) after the run —
// the batch-CLI counterpart of create-serve's GET /metrics.
func dumpMetrics(reg *obs.Registry, path string) error {
	if path == "-" {
		reg.WritePrometheus(os.Stderr)
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	reg.WritePrometheus(f)
	return f.Close()
}

// dumpTrace renders the fleet's stitched spans as one Chrome trace-event
// JSON document to path ("-" = stderr) — open it in Perfetto or
// chrome://tracing to see coordinator, dispatch, and worker lanes on one
// timeline.
func dumpTrace(rec *trace.Recorder, path string) error {
	if path == "-" {
		return trace.WriteChrome(os.Stderr, rec.Spans())
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, rec.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
